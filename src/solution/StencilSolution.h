//===- solution/StencilSolution.h - Executable stencil solution --*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing "solution" layer, mirroring YaskSite's API surface: a
/// StencilSolution owns the grids of a (possibly multi-equation) stencil
/// bundle, compiles the bundle into an execution plan — program-ordered
/// sweeps with legally fused equation groups — and can both run the plan
/// and price it with the ECM model.  DSL text parses straight into a
/// solution, closing the front-end -> codegen -> model loop.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SOLUTION_STENCILSOLUTION_H
#define YS_SOLUTION_STENCILSOLUTION_H

#include "codegen/KernelConfig.h"
#include "ecm/ECMModel.h"
#include "stencil/Grid.h"
#include "stencil/StencilBundle.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <memory>
#include <string>
#include <vector>

namespace ys {

/// One sweep of the compiled plan: a maximal legally-fused group of
/// bundle equations executed in a single pass over the grid.
struct PlanSweep {
  std::vector<unsigned> Equations; ///< Bundle equation indices, in order.
  /// Equivalent multi-grid stencil used by the performance model.
  StencilSpec ModelSpec;
};

/// An executable, modelable stencil program instance.
class StencilSolution {
public:
  /// Builds a solution for \p Bundle over \p Dims with \p Config.  Fails
  /// when the bundle does not validate.  \p EnableFusion controls whether
  /// legally fusable equations share a sweep (the ablation knob).
  static Expected<StencilSolution> create(StencilBundle Bundle,
                                          GridDims Dims,
                                          KernelConfig Config = {},
                                          bool EnableFusion = true);

  /// Parses DSL source (one definition) and builds its solution.
  static Expected<StencilSolution> fromDslSource(const std::string &Source,
                                                 GridDims Dims,
                                                 KernelConfig Config = {},
                                                 bool EnableFusion = true);

  StencilSolution(StencilSolution &&) = default;
  StencilSolution &operator=(StencilSolution &&) = default;

  const StencilBundle &bundle() const { return Bundle; }
  const GridDims &dims() const { return Dims; }
  const KernelConfig &config() const { return Config; }
  int halo() const { return Halo; }

  /// Grid access by bundle index / name (nullptr when unknown).
  Grid &grid(unsigned Idx) { return *Grids[Idx]; }
  const Grid &grid(unsigned Idx) const { return *Grids[Idx]; }
  Grid *gridByName(const std::string &Name);

  /// The compiled execution plan.
  const std::vector<PlanSweep> &plan() const { return Plan; }

  /// Human-readable plan description (one line per sweep).
  std::string describePlan() const;

  /// Executes the whole bundle once (every plan sweep in order).
  void run(ThreadPool *Pool = nullptr);

  /// Executes \p Steps bundle applications.
  void runSteps(int Steps, ThreadPool *Pool = nullptr);

  /// Predicts the seconds per bundle application on \p Model's machine at
  /// \p Cores cores (sum of per-sweep ECM predictions).
  double predictSecondsPerStep(const ECMModel &Model,
                               unsigned Cores = 1) const;

  /// Sum over the interiors of all grids (a cheap checksum for tests and
  /// the CLI).
  double checksum() const;

private:
  StencilSolution() = default;

  void executeSweep(const PlanSweep &Sweep, ThreadPool *Pool);

  StencilBundle Bundle;
  GridDims Dims;
  KernelConfig Config;
  int Halo = 1;
  std::vector<std::unique_ptr<Grid>> Grids;
  std::vector<PlanSweep> Plan;
};

} // namespace ys

#endif // YS_SOLUTION_STENCILSOLUTION_H
