//===- solution/StencilSolution.cpp - Executable stencil solution ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solution/StencilSolution.h"

#include "codegen/KernelExecutor.h"
#include "frontend/Parser.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ys;

Expected<StencilSolution> StencilSolution::create(StencilBundle Bundle,
                                                  GridDims Dims,
                                                  KernelConfig Config,
                                                  bool EnableFusion) {
  std::string Err = Bundle.validate();
  if (!Err.empty())
    return Error::failure(Err);

  StencilSolution S;
  S.Bundle = std::move(Bundle);
  S.Dims = Dims;
  S.Config = Config;
  S.Halo = std::max(1, S.Bundle.maxRadius());
  for (unsigned G = 0; G < S.Bundle.numGrids(); ++G)
    S.Grids.push_back(
        std::make_unique<Grid>(Dims, S.Halo, Config.VectorFold));

  // Compile the plan: greedy maximal fusion groups in program order
  // (or one sweep per equation when fusion is disabled), each with the
  // equivalent multi-grid stencil for the model.
  std::vector<std::vector<unsigned>> Groups;
  if (EnableFusion) {
    Groups = S.Bundle.greedyFusionGroups();
  } else {
    for (unsigned Eq = 0; Eq < S.Bundle.numEquations(); ++Eq)
      Groups.push_back({Eq});
  }
  for (const std::vector<unsigned> &Group : Groups) {
    PlanSweep Sweep;
    Sweep.Equations = Group;

    // Merge the group's reads into one spec: dedupe (grid, offset) pairs
    // and renumber the grids actually read to a dense range.
    std::map<unsigned, unsigned> Renumber;
    std::map<std::tuple<unsigned, int, int, int>, double> Merged;
    unsigned Flops = 0;
    for (unsigned EqIdx : Group) {
      const StencilSpec &Spec = S.Bundle.equations()[EqIdx].Spec;
      Flops += Spec.flopsPerLup();
      for (const StencilPoint &P : Spec.points()) {
        if (!Renumber.count(P.GridIdx)) {
          unsigned Next = static_cast<unsigned>(Renumber.size());
          Renumber[P.GridIdx] = Next;
        }
        Merged[{Renumber[P.GridIdx], P.Dx, P.Dy, P.Dz}] += P.Coeff;
      }
    }
    std::vector<StencilPoint> Points;
    for (const auto &[Key, Coeff] : Merged) {
      auto [G, Dx, Dy, Dz] = Key;
      StencilPoint P;
      P.GridIdx = G;
      P.Dx = Dx;
      P.Dy = Dy;
      P.Dz = Dz;
      P.Coeff = Coeff == 0.0 ? 1.0 : Coeff;
      Points.push_back(P);
    }
    Sweep.ModelSpec = StencilSpec(
        format("%s.sweep%zu", S.Bundle.name().c_str(), S.Plan.size()),
        std::move(Points));
    Sweep.ModelSpec.OutputGrids = static_cast<unsigned>(Group.size());
    unsigned Linear = Sweep.ModelSpec.flopsPerLup();
    Sweep.ModelSpec.ExtraFlopsPerLup = Flops > Linear ? Flops - Linear : 0;
    S.Plan.push_back(std::move(Sweep));
  }
  return S;
}

Expected<StencilSolution> StencilSolution::fromDslSource(
    const std::string &Source, GridDims Dims, KernelConfig Config,
    bool EnableFusion) {
  auto DefOr = Parser::parseSingle(Source);
  if (!DefOr)
    return DefOr.takeError();
  return create(DefOr->Bundle, Dims, Config, EnableFusion);
}

Grid *StencilSolution::gridByName(const std::string &Name) {
  const std::vector<std::string> &Names = Bundle.gridNames();
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == Name)
      return Grids[I].get();
  return nullptr;
}

std::string StencilSolution::describePlan() const {
  std::string Out;
  for (size_t SweepIdx = 0; SweepIdx < Plan.size(); ++SweepIdx) {
    const PlanSweep &Sweep = Plan[SweepIdx];
    std::vector<std::string> Parts;
    for (unsigned EqIdx : Sweep.Equations)
      Parts.push_back(
          Bundle.gridNames()[Bundle.equations()[EqIdx].OutputGrid]);
    Out += format("sweep %zu: %s%s (%u input grids, %u flops/LUP)\n",
                  SweepIdx, Sweep.Equations.size() > 1 ? "fused " : "",
                  join(Parts, ", ").c_str(),
                  Sweep.ModelSpec.numInputGrids(),
                  Sweep.ModelSpec.flopsPerLup());
  }
  return Out;
}

void StencilSolution::executeSweep(const PlanSweep &Sweep,
                                   ThreadPool *Pool) {
  if (Sweep.Equations.size() == 1) {
    const BundleEquation &Eq = Bundle.equations()[Sweep.Equations[0]];
    std::vector<const Grid *> Inputs;
    for (const auto &G : Grids)
      Inputs.push_back(G.get());
    KernelExecutor Exec(Eq.Spec, Config);
    Exec.runSweep(Inputs, *Grids[Eq.OutputGrid], Pool);
    return;
  }

  // Fused group: evaluate each equation at each point, in group order.
  // Fusion legality guarantees later equations read earlier outputs only
  // at the center, which is already written.
  bool AllScalar = Config.VectorFold.isScalar();
  if (AllScalar) {
    // Pointer-based path: per-equation tables of (base, linear offset,
    // coeff); all grids share geometry.
    struct EqTables {
      std::vector<const double *> Base;
      std::vector<long> Off;
      std::vector<double> Coeff;
      double *Out;
    };
    std::vector<EqTables> Tables;
    const Grid &Geo = *Grids[0];
    for (unsigned EqIdx : Sweep.Equations) {
      const BundleEquation &Eq = Bundle.equations()[EqIdx];
      EqTables T;
      for (const StencilPoint &P : Eq.Spec.points()) {
        T.Base.push_back(Grids[P.GridIdx]->data());
        T.Off.push_back(Geo.scalarNeighborOffset(P.Dx, P.Dy, P.Dz));
        T.Coeff.push_back(P.Coeff);
      }
      T.Out = Grids[Eq.OutputGrid]->data();
      Tables.push_back(std::move(T));
    }
    // Row-wise, equation-major: in-group dependencies are center-only,
    // so completing each equation's full row before the next is legal and
    // keeps the inner x loops vectorizable.  The same center-only property
    // makes z-slices independent, so the outer loop parallelizes.
    auto SweepZRange = [&](long Z0, long Z1) {
      for (long Z = Z0; Z < Z1; ++Z)
        for (long Y = 0; Y < Dims.Ny; ++Y) {
          size_t Row = Geo.linearIndex(0, Y, Z);
          for (const EqTables &T : Tables) {
            size_t NumPoints = T.Off.size();
            for (long X = 0; X < Dims.Nx; ++X) {
              double Acc = 0.0;
              for (size_t P = 0; P < NumPoints; ++P)
                Acc += T.Coeff[P] * T.Base[P][Row + X + T.Off[P]];
              T.Out[Row + X] = Acc;
            }
          }
        }
    };
    unsigned Threads =
        Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;
    if (Pool && Threads > 1)
      Pool->parallelForChunked(
          0, Dims.Nz,
          [&](unsigned, long Z0, long Z1) { SweepZRange(Z0, Z1); },
          Threads);
    else
      SweepZRange(0, Dims.Nz);
    return;
  }

  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X)
        for (unsigned EqIdx : Sweep.Equations) {
          const BundleEquation &Eq = Bundle.equations()[EqIdx];
          double Acc = 0.0;
          for (const StencilPoint &P : Eq.Spec.points())
            Acc += P.Coeff *
                   Grids[P.GridIdx]->at(X + P.Dx, Y + P.Dy, Z + P.Dz);
          Grids[Eq.OutputGrid]->at(X, Y, Z) = Acc;
        }
}

void StencilSolution::run(ThreadPool *Pool) {
  for (const PlanSweep &Sweep : Plan)
    executeSweep(Sweep, Pool);
}

void StencilSolution::runSteps(int Steps, ThreadPool *Pool) {
  for (int S = 0; S < Steps; ++S)
    run(Pool);
}

double StencilSolution::predictSecondsPerStep(const ECMModel &Model,
                                              unsigned Cores) const {
  double Seconds = 0.0;
  for (const PlanSweep &Sweep : Plan) {
    ECMPrediction P =
        Model.predict(Sweep.ModelSpec, Dims, Config, std::max(1u, Cores));
    Seconds += Model.predictedSeconds(P, Dims, 1.0, Cores);
  }
  return Seconds;
}

double StencilSolution::checksum() const {
  double Sum = 0.0;
  for (const auto &G : Grids)
    Sum += G->interiorSum();
  return Sum;
}
