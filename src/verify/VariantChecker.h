//===- verify/VariantChecker.h - Variant-space equivalence check -*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential verification of the executor's variant space: enumerates
/// the KernelConfig axes the tuner explores — vector folds, cache-block
/// sizes (including degenerate and non-dividing blocks and blocks larger
/// than the domain), temporal wavefront depths, plain sweep vs. wavefront,
/// and thread counts 1 / 2 / max — runs every variant through
/// KernelExecutor on seeded input patterns, and compares the result grid
/// cell-by-cell against the ReferenceInterpreter oracle under a
/// configurable ULP/absolute tolerance.  The first divergent cell of a
/// failing variant is reported with its coordinate, both values, the ULP
/// distance, and the (config, pattern, seed) triple that reproduces it.
///
/// This is the correctness backstop every performance PR runs against:
/// `yasksite verify <stencil>`, `ctest -L verify`, and
/// `tools/run_sanitizer_checks.sh` all drive this class.
///
//===----------------------------------------------------------------------===//

#ifndef YS_VERIFY_VARIANTCHECKER_H
#define YS_VERIFY_VARIANTCHECKER_H

#include "codegen/JitCompiler.h"
#include "codegen/KernelConfig.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "verify/GridPatterns.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ys {

class ThreadPool;

/// Comparison tolerance.  A cell passes when |got - want| <= AbsTol OR
/// ulpDistance(got, want) <= MaxUlps.  The default (0, 0) demands
/// bit-equality (modulo signed zero), which all current variants satisfy
/// because every executor path accumulates in spec point order.
struct UlpTolerance {
  double AbsTol = 0.0;
  uint64_t MaxUlps = 0;

  std::string str() const;
};

/// Order-preserving ULP distance between two doubles: 0 iff they compare
/// equal (so +0 == -0), UINT64_MAX if either is NaN or the values have
/// opposite (nonzero) sign.
uint64_t ulpDistance(double A, double B);

/// True when \p Got matches \p Want under \p Tol.
bool withinTolerance(double Got, double Want, const UlpTolerance &Tol);

/// One divergent cell.
struct CellDivergence {
  long X = 0, Y = 0, Z = 0;
  double Got = 0.0;
  double Want = 0.0;
  uint64_t Ulps = 0;
};

/// Scans the interiors of \p Want and \p Got (same dims) in a fixed order
/// and reports the first cell outside tolerance; returns false when the
/// grids match everywhere.
bool findFirstDivergence(const Grid &Want, const Grid &Got,
                         const UlpTolerance &Tol, CellDivergence &Div);

/// A failing variant: the config and the (pattern, seed) input that
/// exposed it, plus its first divergent cell.
struct VariantFailure {
  KernelConfig Config;
  GridPattern Pattern = GridPattern::Smooth;
  uint64_t Seed = 0;
  CellDivergence Cell;

  /// One reproducible line: config, pattern, seed, cell, values, ULPs.
  std::string str() const;
};

/// Knobs of one verification run.
struct CheckOptions {
  int Steps = 2;                     ///< Timesteps per comparison
                                     ///< (single-input stencils).
  std::vector<uint64_t> Seeds = {1}; ///< Seeds per pattern.
  std::vector<GridPattern> Patterns = allGridPatterns();
  UlpTolerance Tol;                  ///< Default: exact.
  unsigned MaxThreads = 0; ///< "max" of the thread axis; 0 = the
                           ///< YS_THREADS / hardware default.
  bool StopOnFirstFailure = false;
  /// Execution backend forced on every variant (plan or jit); unset = the
  /// executor's YS_BACKEND default.  With the jit backend unavailable the
  /// executors fall back to plans — CheckReport::JitComparisons tells the
  /// caller how many comparisons actually ran JIT-compiled code.
  std::optional<KernelBackend> Backend;
};

/// Aggregate result of a verification run.
struct CheckReport {
  unsigned VariantsChecked = 0; ///< Distinct configs executed.
  unsigned ComparisonsRun = 0;  ///< (config, pattern, seed) grid compares.
  unsigned JitComparisons = 0;  ///< Comparisons executed through the JIT
                                ///< backend (0 on the plan path or after
                                ///< a no-compiler fallback).
  std::vector<VariantFailure> Failures; ///< First divergence per failure.
  /// Configs rejected by KernelConfig::validate() with their diagnostics
  /// (never executed).
  std::vector<std::pair<KernelConfig, std::string>> Rejected;

  bool ok() const { return Failures.empty(); }
  /// Multi-line human-readable summary (counts, then failure lines).
  std::string summary() const;
};

/// Enumerates and differentially checks the executor variant space for
/// one stencil on one grid size.
class VariantChecker {
public:
  VariantChecker(StencilSpec Spec, GridDims Dims, CheckOptions Opts = {});

  const StencilSpec &spec() const { return Spec; }
  const CheckOptions &options() const { return Opts; }

  /// The curated variant space: every axis the tuner explores is covered
  /// on its own against a plain base, plus cross-axis combinations.
  /// Multi-input stencils get no wavefront variants (time stepping
  /// requires a single input).  All configs are valid and deduplicated.
  std::vector<KernelConfig> enumerateConfigs() const;

  /// Checks enumerateConfigs() against the oracle.  \p Pool (optional) is
  /// used for threaded variants; when null, one is created on demand
  /// sized to the thread axis.
  CheckReport checkAll(ThreadPool *Pool = nullptr) const;

  /// Checks an explicit config list.  Invalid configs are reported in
  /// CheckReport::Rejected rather than executed.
  CheckReport check(const std::vector<KernelConfig> &Configs,
                    ThreadPool *Pool = nullptr) const;

private:
  StencilSpec Spec;
  GridDims Dims;
  CheckOptions Opts;

  unsigned maxThreads() const;
};

} // namespace ys

#endif // YS_VERIFY_VARIANTCHECKER_H
