//===- verify/GridPatterns.h - Seeded grid initializers ----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic seeded grid initializers shared by the differential
/// verification harness, the unit tests and the benches.  A pattern is a
/// pure function of (pattern kind, seed, logical coordinate): filling the
/// same dims/halo with the same (kind, seed) always produces the same
/// *logical* contents, independent of the grid's storage fold — which is
/// exactly what variant-space equivalence checking needs, since the
/// variants under test differ in layout.
///
/// Failures reproduce from a log line: print patternName() and the seed
/// and any grid in any layout can be reconstructed bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef YS_VERIFY_GRIDPATTERNS_H
#define YS_VERIFY_GRIDPATTERNS_H

#include "stencil/Grid.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace ys {

/// Input families for differential checks, each stressing a different
/// failure mode of a transformed kernel.
enum class GridPattern {
  Smooth,         ///< Low-frequency trig field; catches index mix-ups that
                  ///< alias to near-identical values under noise.
  Random,         ///< Uniform [-1,1) interior, zero halo; the general case.
  Impulse,        ///< Sparse spikes in a zero field; localizes divergence
                  ///< to the exact cells an off-by-one would shift.
  BoundaryStress, ///< Near-zero interior, large-magnitude halo; catches
                  ///< halo/boundary handling and clamping bugs.
};

/// Stable lowercase name ("smooth", "random", "impulse",
/// "boundary-stress"); the inverse of patternByName().
const char *patternName(GridPattern P);

/// All patterns, in declaration order.
const std::vector<GridPattern> &allGridPatterns();

/// Parses a patternName() string.
Expected<GridPattern> patternByName(const std::string &Name);

/// Fills \p G (interior and halo; any padding beyond the halo is zeroed)
/// from (\p P, \p Seed).  Identical logical contents for any storage fold.
void fillPattern(Grid &G, GridPattern P, uint64_t Seed);

} // namespace ys

#endif // YS_VERIFY_GRIDPATTERNS_H
