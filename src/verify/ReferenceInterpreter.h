//===- verify/ReferenceInterpreter.h - Golden-reference oracle ---*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden oracle of the differential verification harness: a
/// deliberately naive, scalar, unblocked interpreter that evaluates a
/// StencilSpec *from the expression tree* — every lattice update walks an
/// Expr AST rebuilt from the spec's points and resolves loads through a
/// callback.  No folding, no blocking, no threading, no pointer
/// arithmetic: none of the machinery the optimized KernelExecutor paths
/// share, so a bug in that machinery cannot cancel out of a comparison.
///
/// Semantics match the executor's contract (KernelExecutor.h): one sweep
/// writes every interior point from halo-reachable reads; multi-timestep
/// runs treat the halo as a constant-in-time Dirichlet boundary.  The
/// accumulation order is the spec's point order (left-nested sum), the
/// same order every executor path uses, so on a machine without FMA
/// contraction the oracle is bit-identical to a correct variant — the
/// harness' default tolerance is therefore *exact*.
///
//===----------------------------------------------------------------------===//

#ifndef YS_VERIFY_REFERENCEINTERPRETER_H
#define YS_VERIFY_REFERENCEINTERPRETER_H

#include "stencil/Grid.h"
#include "stencil/StencilExpr.h"
#include "stencil/StencilSpec.h"

#include <vector>

namespace ys {

/// Scalar, unblocked, expression-tree-walking stencil evaluator.
class ReferenceInterpreter {
public:
  explicit ReferenceInterpreter(StencilSpec Spec);

  const StencilSpec &spec() const { return Spec; }

  /// The expression tree the interpreter walks (sum of coeff * load in
  /// point order).
  const Expr &expression() const { return Tree; }

  /// One sweep: evaluates the expression tree at every interior point of
  /// \p Out, reading from \p Inputs (halo provides boundary values).
  /// Layout-agnostic: grids of any fold are read/written through at().
  void runSweep(const std::vector<const Grid *> &Inputs, Grid &Out) const;

  /// Advances the single-input stencil \p Steps timesteps in place, using
  /// an internal scalar-layout scratch grid whose halo carries U's
  /// boundary values (constant-in-time Dirichlet, like the executor).
  void runTimeSteps(Grid &U, int Steps) const;

  /// Builds the left-nested sum-of-(coeff * load) tree for \p Spec.
  static Expr buildExpr(const StencilSpec &Spec);

private:
  StencilSpec Spec;
  Expr Tree;
};

} // namespace ys

#endif // YS_VERIFY_REFERENCEINTERPRETER_H
