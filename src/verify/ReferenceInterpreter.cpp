//===- verify/ReferenceInterpreter.cpp - Golden-reference oracle ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/ReferenceInterpreter.h"

#include <cassert>

using namespace ys;

Expr ReferenceInterpreter::buildExpr(const StencilSpec &Spec) {
  Expr Sum;
  for (const StencilPoint &P : Spec.points()) {
    Expr Term = Expr::mul(Expr::constant(P.Coeff),
                          Expr::load(P.GridIdx, P.Dx, P.Dy, P.Dz));
    Sum = Sum.isValid() ? Expr::add(Sum, Term) : Term;
  }
  return Sum;
}

ReferenceInterpreter::ReferenceInterpreter(StencilSpec S)
    : Spec(std::move(S)), Tree(buildExpr(Spec)) {
  assert(Spec.numPoints() > 0 && "empty stencil");
}

void ReferenceInterpreter::runSweep(const std::vector<const Grid *> &Inputs,
                                    Grid &Out) const {
  assert(Inputs.size() >= Spec.numInputGrids() && "missing input grids");
  assert(Out.halo() >= Spec.radius() && "halo smaller than stencil radius");
  const GridDims &Dims = Out.dims();
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X)
        Out.at(X, Y, Z) =
            Tree.evaluate([&](unsigned GridIdx, int Dx, int Dy, int Dz) {
              return Inputs[GridIdx]->at(X + Dx, Y + Dy, Z + Dz);
            });
}

void ReferenceInterpreter::runTimeSteps(Grid &U, int Steps) const {
  assert(Spec.numInputGrids() == 1 &&
         "time stepping requires a single-input stencil");
  assert(Steps >= 0 && "negative step count");
  // Scalar-layout ping-pong buffers regardless of U's fold; the halo is
  // copied once and never rewritten (constant-in-time Dirichlet).
  Grid Even(U.dims(), U.halo());
  Grid Odd(U.dims(), U.halo());
  Even.copyInteriorFrom(U);
  Even.copyHaloFrom(U);
  Odd.copyHaloFrom(U);
  Grid *Src = &Even;
  Grid *Dst = &Odd;
  for (int S = 0; S < Steps; ++S) {
    runSweep({Src}, *Dst);
    std::swap(Src, Dst);
  }
  U.copyInteriorFrom(*Src);
}
