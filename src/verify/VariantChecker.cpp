//===- verify/VariantChecker.cpp - Variant-space equivalence check ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/VariantChecker.h"

#include "codegen/DomainDecomposition.h"
#include "codegen/KernelExecutor.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "verify/ReferenceInterpreter.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>

using namespace ys;

std::string UlpTolerance::str() const {
  if (AbsTol == 0.0 && MaxUlps == 0)
    return "exact";
  return format("abs<=%g or ulps<=%llu", AbsTol,
                static_cast<unsigned long long>(MaxUlps));
}

uint64_t ys::ulpDistance(double A, double B) {
  if (A == B)
    return 0; // Also +0 vs -0.
  if (std::isnan(A) || std::isnan(B))
    return UINT64_MAX;
  uint64_t UA, UB;
  std::memcpy(&UA, &A, sizeof(UA));
  std::memcpy(&UB, &B, sizeof(UB));
  if ((UA ^ UB) & 0x8000000000000000ull)
    return UINT64_MAX; // Opposite (nonzero) signs.
  uint64_t MA = UA & 0x7FFFFFFFFFFFFFFFull;
  uint64_t MB = UB & 0x7FFFFFFFFFFFFFFFull;
  return MA > MB ? MA - MB : MB - MA;
}

bool ys::withinTolerance(double Got, double Want, const UlpTolerance &Tol) {
  if (Got == Want)
    return true;
  if (std::fabs(Got - Want) <= Tol.AbsTol)
    return true;
  return ulpDistance(Got, Want) <= Tol.MaxUlps;
}

bool ys::findFirstDivergence(const Grid &Want, const Grid &Got,
                             const UlpTolerance &Tol, CellDivergence &Div) {
  const GridDims &D = Want.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Y = 0; Y < D.Ny; ++Y)
      for (long X = 0; X < D.Nx; ++X) {
        double W = Want.at(X, Y, Z);
        double G = Got.at(X, Y, Z);
        if (withinTolerance(G, W, Tol))
          continue;
        Div.X = X;
        Div.Y = Y;
        Div.Z = Z;
        Div.Got = G;
        Div.Want = W;
        Div.Ulps = ulpDistance(G, W);
        return true;
      }
  return false;
}

std::string VariantFailure::str() const {
  return format("config [%s] pattern=%s seed=%llu: first divergence at "
                "(%ld,%ld,%ld): got %.17g want %.17g (%llu ulps)",
                Config.str().c_str(), patternName(Pattern),
                static_cast<unsigned long long>(Seed), Cell.X, Cell.Y,
                Cell.Z, Cell.Got, Cell.Want,
                static_cast<unsigned long long>(Cell.Ulps));
}

std::string CheckReport::summary() const {
  std::string S = format("%u variants, %u comparisons: %s", VariantsChecked,
                         ComparisonsRun,
                         Failures.empty()
                             ? "all match the reference interpreter"
                             : format("%zu FAILURE(S)", Failures.size())
                                   .c_str());
  if (JitComparisons > 0)
    S += format(" (%u via jit backend)", JitComparisons);
  for (const VariantFailure &F : Failures)
    S += "\n  FAIL " + F.str();
  for (const auto &[C, Why] : Rejected)
    S += format("\n  rejected [%s]: %s", C.str().c_str(), Why.c_str());
  return S;
}

VariantChecker::VariantChecker(StencilSpec S, GridDims Dims,
                               CheckOptions Opts)
    : Spec(std::move(S)), Dims(Dims), Opts(std::move(Opts)) {}

unsigned VariantChecker::maxThreads() const {
  unsigned T =
      Opts.MaxThreads ? Opts.MaxThreads : ThreadPool::defaultThreadCount();
  return T == 0 ? 1 : T;
}

std::vector<KernelConfig> VariantChecker::enumerateConfigs() const {
  std::vector<KernelConfig> Configs;
  auto Add = [&](const KernelConfig &C) {
    if (!C.validate().empty())
      return;
    for (const KernelConfig &E : Configs)
      if (E == C)
        return;
    Configs.push_back(C);
  };

  const bool SingleInput = Spec.numInputGrids() == 1;
  const unsigned MaxT = maxThreads();

  // Axis: vector folds (storage layout the SIMD register covers).
  // {8,1,1} is the full AVX-512 width; it rarely divides the test dims,
  // so it drives the partial-fold-block path of the compiled plans.
  const Fold Folds[] = {
      {1, 1, 1}, {4, 1, 1}, {2, 2, 1}, {1, 2, 2}, {8, 1, 1}};
  for (const Fold &F : Folds) {
    KernelConfig C;
    C.VectorFold = F;
    Add(C);
  }

  // Axis: cache blocks — unblocked, dividing, non-dividing, degenerate
  // one-cell, larger-than-domain (must clamp), and partially specified.
  const BlockSize Blocks[] = {{0, 0, 0},
                              {4, 4, 4},
                              {3, 5, 2},
                              {1, 1, 1},
                              {Dims.Nx + 7, Dims.Ny + 3, Dims.Nz + 1},
                              {0, 4, 0}};
  for (const BlockSize &B : Blocks) {
    KernelConfig C;
    C.Block = B;
    Add(C);
  }

  // Axis: temporal schedules x depths (single-input stencils only; time
  // stepping requires one input grid).  A small z block forces the
  // wavefront frontier through its Bz > radius clamp, gives diamond a
  // sub-minimum tile width (clamped to 2*Depth*R), and is irrelevant to
  // deep-temporal — which is itself the interesting case.
  if (SingleInput)
    for (Schedule Sched : {Schedule::Wavefront, Schedule::Diamond,
                           Schedule::DeepTemporal})
      for (int D : {2, 3})
        for (const BlockSize &B :
             {BlockSize{0, 0, 0}, BlockSize{0, 4, 2}}) {
          KernelConfig C;
          C.Sched = Sched;
          C.WavefrontDepth = D;
          C.Block = B;
          Add(C);
        }

  // Axis: thread counts 1 / 2 / max, on a blocked sweep and (when
  // possible) each temporal schedule.
  for (unsigned T : {1u, 2u, MaxT}) {
    KernelConfig C;
    C.Threads = T;
    C.Block = {0, 4, 4};
    Add(C);
    if (SingleInput)
      for (Schedule Sched : {Schedule::Wavefront, Schedule::Diamond,
                             Schedule::DeepTemporal}) {
        KernelConfig W;
        W.Threads = T;
        W.Sched = Sched;
        W.WavefrontDepth = 2;
        Add(W);
      }
  }

  // Cross-axis combinations (fold x block x wavefront x threads).
  {
    KernelConfig C;
    C.VectorFold = {2, 2, 1};
    C.Block = {3, 5, 2};
    C.Threads = 2;
    if (SingleInput)
      C.WavefrontDepth = 2;
    Add(C);
  }
  {
    KernelConfig C;
    C.VectorFold = {4, 1, 1};
    C.Block = {4, 4, 4};
    C.Threads = MaxT;
    if (SingleInput)
      C.WavefrontDepth = 3;
    Add(C);
  }
  {
    // Fold x block x diamond x threads.
    KernelConfig C;
    C.VectorFold = {2, 2, 1};
    C.Block = {3, 5, 2};
    C.Threads = 2;
    if (SingleInput) {
      C.Sched = Schedule::Diamond;
      C.WavefrontDepth = 3;
    }
    Add(C);
  }
  {
    // Fold x deep-temporal at a depth whose skew exceeds the z extent of
    // small test grids (the pipeline must still be exact).
    KernelConfig C;
    C.VectorFold = {4, 1, 1};
    C.Threads = MaxT;
    if (SingleInput) {
      C.Sched = Schedule::DeepTemporal;
      C.WavefrontDepth = 4;
    }
    Add(C);
  }
  {
    KernelConfig C;
    C.VectorFold = {1, 2, 2};
    C.Block = {1, 1, 1};
    C.Threads = 2;
    Add(C);
  }
  {
    // Wide fold x non-dividing block x threads: partial fold blocks on
    // every tile boundary.
    KernelConfig C;
    C.VectorFold = {8, 1, 1};
    C.Block = {3, 5, 2};
    C.Threads = 2;
    if (SingleInput)
      C.WavefrontDepth = 2;
    Add(C);
  }
  {
    KernelConfig C;
    C.StreamingStores = true; // Model-visible only; must not change values.
    Add(C);
  }

  // Axis: rank decomposition (single-input; time stepping drives it).
  // Every schedule must step distributed — one deep-halo exchange per
  // macro step, overlapped with interior compute — bit-identically to the
  // monolithic run the oracle checks.  Ranks == 3 forces an uneven
  // floor+remainder split on most test dims.
  if (SingleInput)
    for (unsigned Ranks : {2u, 3u}) {
      if (static_cast<long>(Ranks) > Dims.Nz)
        continue;
      KernelConfig C;
      C.Ranks = Ranks;
      Add(C);
      for (Schedule Sched : {Schedule::Wavefront, Schedule::Diamond,
                             Schedule::DeepTemporal}) {
        KernelConfig T;
        T.Ranks = Ranks;
        T.Sched = Sched;
        T.WavefrontDepth = 2;
        T.Threads = std::min(MaxT, Ranks + 1);
        Add(T);
      }
    }
  if (SingleInput && Dims.Nz >= 2) {
    // Cross: fold x non-dividing block x ranks x threads x temporal.
    KernelConfig C;
    C.VectorFold = {2, 2, 1};
    C.Block = {3, 5, 2};
    C.Ranks = 2;
    C.Threads = 2;
    C.WavefrontDepth = 2;
    Add(C);
  }
  return Configs;
}

CheckReport VariantChecker::checkAll(ThreadPool *Pool) const {
  return check(enumerateConfigs(), Pool);
}

CheckReport VariantChecker::check(const std::vector<KernelConfig> &Configs,
                                  ThreadPool *Pool) const {
  CheckReport Report;

  const bool SingleInput = Spec.numInputGrids() == 1;
  const int Halo = Spec.radius();
  // Deep halo of a distributed config: one exchange amortizes the full
  // fused depth, so the halo carries depth * radius planes.
  auto distributedHalo = [&](const KernelConfig &C) {
    return std::max(1, Halo) * (C.isTemporal() ? C.WavefrontDepth : 1);
  };

  std::vector<KernelConfig> Valid;
  unsigned NeedThreads = 1;
  for (const KernelConfig &C : Configs) {
    std::string Why = C.validate();
    if (Why.empty() && C.Ranks > 1) {
      // Distributed configs run through DistributedStepper, which needs a
      // single-input stencil and a well-formed z-slab split.
      if (!SingleInput)
        Why = "rank decomposition requires a single-input stencil";
      else
        Why = DecomposedGrid::validateParams(
            Dims, C.Ranks, distributedHalo(C));
    }
    if (!Why.empty()) {
      Report.Rejected.push_back({C, std::move(Why)});
      continue;
    }
    NeedThreads = std::max(NeedThreads, C.Threads);
    Valid.push_back(C);
  }
  Report.VariantsChecked = static_cast<unsigned>(Valid.size());

  std::unique_ptr<ThreadPool> OwnPool;
  if (!Pool && NeedThreads > 1) {
    OwnPool = std::make_unique<ThreadPool>(NeedThreads);
    Pool = OwnPool.get();
  }

  const unsigned NumInputs = Spec.numInputGrids();
  ReferenceInterpreter Oracle(Spec);
  // Distinct deterministic contents per input grid of a multi-input
  // stencil; both the oracle and every variant derive them the same way.
  auto InputSeed = [](uint64_t Seed, unsigned G) {
    return Seed + 0x9E3779B97F4A7C15ull * G;
  };

  for (uint64_t Seed : Opts.Seeds)
    for (GridPattern Pattern : Opts.Patterns) {
      // Oracle result, computed once per (pattern, seed) and compared
      // against every variant.
      Grid RefOut(Dims, Halo);
      std::vector<Grid> RefInputs;
      if (SingleInput) {
        fillPattern(RefOut, Pattern, Seed);
        Oracle.runTimeSteps(RefOut, Opts.Steps);
      } else {
        for (unsigned G = 0; G < NumInputs; ++G) {
          RefInputs.emplace_back(Dims, Halo);
          fillPattern(RefInputs.back(), Pattern, InputSeed(Seed, G));
        }
        std::vector<const Grid *> Ptrs;
        for (const Grid &G : RefInputs)
          Ptrs.push_back(&G);
        Oracle.runSweep(Ptrs, RefOut);
      }

      for (const KernelConfig &C : Valid) {
        ThreadPool *P = C.Threads > 1 ? Pool : nullptr;

        if (C.Ranks > 1) {
          // Distributed variant: scatter the same initial state over the
          // z-slab ranks, step with one overlapped deep-halo exchange per
          // macro step, and gather the owned planes — the result must be
          // bit-identical to the monolithic oracle (modulo the checker's
          // tolerance, shared with every other variant).
          int HaloD = distributedHalo(C);
          DecomposedGrid U(Dims, C.Ranks, HaloD, C.VectorFold);
          DecomposedGrid V(Dims, C.Ranks, HaloD, C.VectorFold);
          Grid Init(Dims, Halo);
          fillPattern(Init, Pattern, Seed);
          U.scatter(Init);
          V.scatter(Init);
          DistributedStepper Stepper(Spec, C);
          if (Opts.Backend)
            Stepper.setBackend(*Opts.Backend);
          Stepper.runTimeSteps(U, V, Opts.Steps, P);
          Grid Out(Dims, Halo);
          U.gather(Out);

          ++Report.ComparisonsRun;
          if (Opts.Backend && *Opts.Backend == KernelBackend::Jit)
            ++Report.JitComparisons;
          CellDivergence Div;
          if (findFirstDivergence(RefOut, Out, Opts.Tol, Div)) {
            VariantFailure F;
            F.Config = C;
            F.Pattern = Pattern;
            F.Seed = Seed;
            F.Cell = Div;
            Report.Failures.push_back(std::move(F));
            if (Opts.StopOnFirstFailure)
              return Report;
          }
          continue;
        }

        KernelExecutor Exec(Spec, C);
        if (Opts.Backend)
          Exec.setBackend(*Opts.Backend);
        Grid Out(Dims, Halo, C.VectorFold);
        if (SingleInput) {
          fillPattern(Out, Pattern, Seed);
          Grid Scratch(Dims, Halo, C.VectorFold);
          Scratch.copyHaloFrom(Out);
          Exec.runTimeSteps(Out, Scratch, Opts.Steps, P);
        } else {
          std::vector<Grid> Inputs;
          std::vector<const Grid *> Ptrs;
          for (unsigned G = 0; G < NumInputs; ++G) {
            Inputs.emplace_back(Dims, Halo, C.VectorFold);
            fillPattern(Inputs.back(), Pattern, InputSeed(Seed, G));
          }
          for (const Grid &G : Inputs)
            Ptrs.push_back(&G);
          Exec.runSweep(Ptrs, Out, P);
        }

        ++Report.ComparisonsRun;
        if (Exec.activeBackend() == KernelBackend::Jit)
          ++Report.JitComparisons;
        CellDivergence Div;
        if (findFirstDivergence(RefOut, Out, Opts.Tol, Div)) {
          VariantFailure F;
          F.Config = C;
          F.Pattern = Pattern;
          F.Seed = Seed;
          F.Cell = Div;
          Report.Failures.push_back(std::move(F));
          if (Opts.StopOnFirstFailure)
            return Report;
        }
      }
    }
  return Report;
}
