//===- verify/GridPatterns.cpp - Seeded grid initializers -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/GridPatterns.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace ys;

const char *ys::patternName(GridPattern P) {
  switch (P) {
  case GridPattern::Smooth:
    return "smooth";
  case GridPattern::Random:
    return "random";
  case GridPattern::Impulse:
    return "impulse";
  case GridPattern::BoundaryStress:
    return "boundary-stress";
  }
  return "?";
}

const std::vector<GridPattern> &ys::allGridPatterns() {
  static const std::vector<GridPattern> All = {
      GridPattern::Smooth, GridPattern::Random, GridPattern::Impulse,
      GridPattern::BoundaryStress};
  return All;
}

Expected<GridPattern> ys::patternByName(const std::string &Name) {
  for (GridPattern P : allGridPatterns())
    if (Name == patternName(P))
      return P;
  return Error::failure(format("unknown grid pattern '%s' (try smooth, "
                               "random, impulse, boundary-stress)",
                               Name.c_str()));
}

namespace {

/// SplitMix64 finalizer over a coordinate/seed mix; the per-cell hash
/// behind the hash-based patterns.
uint64_t mixHash(uint64_t Seed, long X, long Y, long Z) {
  uint64_t H = Seed;
  H ^= static_cast<uint64_t>(X) * 0x9E3779B97F4A7C15ull;
  H ^= static_cast<uint64_t>(Y) * 0xBF58476D1CE4E5B9ull;
  H ^= static_cast<uint64_t>(Z) * 0x94D049BB133111EBull;
  H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ull;
  H = (H ^ (H >> 27)) * 0x94D049BB133111EBull;
  return H ^ (H >> 31);
}

/// Applies Fn(x, y, z) to every addressable cell (interior + halo) in a
/// fixed logical order, independent of the storage fold.
template <typename Fn> void forEachCell(Grid &G, Fn &&Set) {
  const GridDims &D = G.dims();
  int H = G.halo();
  for (long Z = -H; Z < D.Nz + H; ++Z)
    for (long Y = -H; Y < D.Ny + H; ++Y)
      for (long X = -H; X < D.Nx + H; ++X)
        G.at(X, Y, Z) = Set(X, Y, Z);
}

void fillSmooth(Grid &G, uint64_t Seed) {
  // Low-frequency separable trig field with seed-derived phases; defined
  // on halo cells too, so the Dirichlet boundary is smooth as well.
  Rng R(Seed);
  double Px = R.nextDouble(0.0, 6.28318530717958647692);
  double Py = R.nextDouble(0.0, 6.28318530717958647692);
  double Pz = R.nextDouble(0.0, 6.28318530717958647692);
  const GridDims &D = G.dims();
  double Wx = 6.28318530717958647692 / static_cast<double>(D.Nx + 2);
  double Wy = 6.28318530717958647692 / static_cast<double>(D.Ny + 2);
  double Wz = 6.28318530717958647692 / static_cast<double>(D.Nz + 2);
  forEachCell(G, [&](long X, long Y, long Z) {
    return std::sin(Wx * static_cast<double>(X) + Px) *
               std::cos(Wy * static_cast<double>(Y) + Py) +
           0.5 * std::sin(Wz * static_cast<double>(Z) + Pz);
  });
}

void fillRandomPattern(Grid &G, uint64_t Seed) {
  // Hash-based rather than sequential so the value of a cell does not
  // depend on the traversal (and therefore not on dims of other axes).
  forEachCell(G, [&](long X, long Y, long Z) -> double {
    bool Interior = X >= 0 && X < G.dims().Nx && Y >= 0 &&
                    Y < G.dims().Ny && Z >= 0 && Z < G.dims().Nz;
    if (!Interior)
      return 0.0;
    double U =
        static_cast<double>(mixHash(Seed, X, Y, Z) >> 11) * 0x1.0p-53;
    return 2.0 * U - 1.0;
  });
}

void fillImpulse(Grid &G, uint64_t Seed) {
  G.fill(0.0);
  const GridDims &D = G.dims();
  // Center spike plus three seed-placed spikes of growing magnitude;
  // exactly representable values so any divergence is a logic bug, not
  // rounding.
  G.at(D.Nx / 2, D.Ny / 2, D.Nz / 2) = 1.0;
  Rng R(Seed);
  double Mag = 2.0;
  for (int I = 0; I < 3; ++I) {
    long X = static_cast<long>(R.nextBounded(static_cast<uint64_t>(D.Nx)));
    long Y = static_cast<long>(R.nextBounded(static_cast<uint64_t>(D.Ny)));
    long Z = static_cast<long>(R.nextBounded(static_cast<uint64_t>(D.Nz)));
    G.at(X, Y, Z) = R.nextBounded(2) ? Mag : -Mag;
    Mag *= 2.0;
  }
}

void fillBoundaryStress(Grid &G, uint64_t Seed) {
  // Large-magnitude alternating halo against a small interior: any read
  // of a wrong halo cell (or a write into the halo) moves the result by
  // orders of magnitude.  All values are powers of two times small
  // integers, hence exactly representable.
  const GridDims &D = G.dims();
  forEachCell(G, [&](long X, long Y, long Z) -> double {
    bool Interior = X >= 0 && X < D.Nx && Y >= 0 && Y < D.Ny && Z >= 0 &&
                    Z < D.Nz;
    uint64_t H = mixHash(Seed, X, Y, Z);
    if (!Interior)
      return (H & 1 ? 1.0 : -1.0) * 1024.0 * (1.0 + ((H >> 1) & 3));
    return (static_cast<double>(H & 0xFF) - 128.0) * 0x1.0p-10;
  });
}

} // namespace

void ys::fillPattern(Grid &G, GridPattern P, uint64_t Seed) {
  G.fill(0.0); // Also clears fold-rounding padding beyond the halo.
  switch (P) {
  case GridPattern::Smooth:
    fillSmooth(G, Seed);
    break;
  case GridPattern::Random:
    fillRandomPattern(G, Seed);
    break;
  case GridPattern::Impulse:
    fillImpulse(G, Seed);
    break;
  case GridPattern::BoundaryStress:
    fillBoundaryStress(G, Seed);
    break;
  }
}
