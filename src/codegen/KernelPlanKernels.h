//===- codegen/KernelPlanKernels.h - Plan kernel dispatch ABI ----*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ABI between KernelPlan and its per-SIMD-target kernel translation
/// units.  A plan flattens everything a sweep needs — coefficients,
/// scalar-layout neighbor offsets, fold-linear per-lane offsets, per-point
/// base-pointer slots — into one PlanTables struct; the kernels (compiled
/// from KernelPlanKernels.inc once per instruction-set target) only ever
/// read it.  Keeping the tables plain pointers into plan-owned storage is
/// what makes the steady-state sweep path allocation-free.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_KERNELPLANKERNELS_H
#define YS_CODEGEN_KERNELPLANKERNELS_H

#include <cstddef>

namespace ys::plankernels {

/// Flattened, layout-resolved view of one compiled plan plus the grid
/// bindings of the current sweep.  Built and owned by KernelPlan.
struct PlanTables {
  // --- Geometry (extents are padded, i.e. interior + 2*halo rounded up
  // --- to the fold). ---
  long PadX = 0, PadY = 0; ///< Scalar-layout strides.
  long NVx = 0, NVy = 0;   ///< Fold-block counts per dimension.
  int Halo = 0;
  int Fx = 1, Fy = 1, Fz = 1;
  int E = 1; ///< Fold elements (Fx*Fy*Fz).
  bool ScalarLayout = true;
  unsigned NumPoints = 0;

  // --- Per-point tables ([NumPoints] unless noted). ---
  const double *Coeff = nullptr;
  const long *ScalarOff = nullptr; ///< Scalar-layout neighbor offsets.
  const long *LaneOff = nullptr;   ///< [NumPoints*E] fold-linear offsets.
  const long *Lane0Off = nullptr;  ///< Lane-0 offset per point.
  /// Nonzero when the point's lane offsets are consecutive
  /// (LaneOff[p][l] == Lane0Off[p] + l): one contiguous vector load
  /// instead of a per-lane offset table.
  const unsigned char *UnitStride = nullptr;

  // --- Per-lane in-fold coordinates ([E]). ---
  const int *LaneX = nullptr, *LaneY = nullptr, *LaneZ = nullptr;

  // --- Sweep bindings (rewritten by KernelPlan::bind; pointer copies
  // --- only). ---
  const double *const *PointBase = nullptr; ///< [NumPoints] input bases.
  double *OutBase = nullptr;
};

/// One dispatch target's kernel entry points.  Both sweep the interior
/// range [Z0,Z1) x [Y0,Y1) x [X0,X1) (interior coordinates; halo handled
/// via PlanTables::Halo) of the bound grids.  Pure readers of \p T:
/// thread-safe for disjoint ranges.
struct KernelTable {
  void (*SweepScalar)(const PlanTables &T, long Z0, long Z1, long Y0,
                      long Y1, long X0, long X1);
  void (*SweepFolded)(const PlanTables &T, long Z0, long Z1, long Y0,
                      long Y1, long X0, long X1);
};

/// Baseline-ISA kernels; always compiled.
const KernelTable &scalarKernels();
#ifdef YS_PLAN_HAVE_AVX2
const KernelTable &avx2Kernels();
#endif
#ifdef YS_PLAN_HAVE_AVX512
const KernelTable &avx512Kernels();
#endif

} // namespace ys::plankernels

#endif // YS_CODEGEN_KERNELPLANKERNELS_H
