//===- codegen/KernelPlanKernelsAvx2.cpp - AVX2 plan kernels ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// AVX2 instantiation of the plan kernels: same bodies as the baseline
// (KernelPlanKernels.inc), compiled with -mavx2 -fopenmp-simd
// -ffp-contract=off.  Only added to the build when the compiler accepts
// -mavx2 on an x86 host (src/codegen/CMakeLists.txt); contraction stays
// off so results are bit-identical to the baseline target.
//
//===----------------------------------------------------------------------===//

#define YS_PLAN_TARGET_NS target_avx2
#include "codegen/KernelPlanKernels.inc"

namespace ys::plankernels {

const KernelTable &avx2Kernels() { return target_avx2::kernels(); }

} // namespace ys::plankernels
