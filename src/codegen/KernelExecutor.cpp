//===- codegen/KernelExecutor.cpp - Stencil kernel executor ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"

#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <type_traits>

using namespace ys;

KernelExecutor::KernelExecutor(StencilSpec Spec, KernelConfig Config)
    : Spec(std::move(Spec)), Config(Config) {
  assert(this->Spec.validate().empty() && "invalid stencil spec");
  assert(this->Config.validate().empty() && "invalid kernel config");
}

void KernelExecutor::runReference(const StencilSpec &Spec,
                                  const std::vector<const Grid *> &Inputs,
                                  Grid &Out) {
  assert(Inputs.size() >= Spec.numInputGrids() && "missing input grids");
  const GridDims &Dims = Out.dims();
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X) {
        double Acc = 0.0;
        for (const StencilPoint &P : Spec.points())
          Acc += P.Coeff *
                 Inputs[P.GridIdx]->at(X + P.Dx, Y + P.Dy, Z + P.Dz);
        Out.at(X, Y, Z) = Acc;
      }
}

/// Computes one rectangular region with the fast scalar-layout kernel or
/// the layout-generic fallback.
void KernelExecutor::sweepRange(const std::vector<const Grid *> &Inputs,
                                Grid &Out, long Z0, long Z1, long Y0, long Y1,
                                long X0, long X1) const {
  const std::vector<StencilPoint> &Points = Spec.points();
  unsigned NumPoints = Spec.numPoints();

  bool AllScalar = Out.hasScalarLayout();
  for (const Grid *In : Inputs)
    AllScalar &= In->hasScalarLayout();

  if (AllScalar) {
    // Fast path: constant linear offsets, pointer arithmetic inner loop.
    // All grids share geometry (asserted in runSweep), so one offset table
    // serves every input grid; per-point base pointers avoid the indirect
    // grid lookup in the inner loop.  Dispatching on the point count to a
    // compile-time-sized kernel lets the compiler fully unroll and
    // vectorize the accumulation for the common stencil sizes.
    std::vector<long> Offsets(NumPoints);
    std::vector<double> Coeffs(NumPoints);
    std::vector<const double *> PointBase(NumPoints);
    for (unsigned P = 0; P < NumPoints; ++P) {
      Offsets[P] =
          Out.scalarNeighborOffset(Points[P].Dx, Points[P].Dy, Points[P].Dz);
      Coeffs[P] = Points[P].Coeff;
      PointBase[P] = Inputs[Points[P].GridIdx]->data();
    }
    double *OutBase = Out.data();

    auto RunRows = [&](auto InnerKernel) {
      for (long Z = Z0; Z < Z1; ++Z)
        for (long Y = Y0; Y < Y1; ++Y) {
          size_t Row = Out.linearIndex(X0, Y, Z);
          InnerKernel(Row, X1 - X0);
        }
    };
    auto FixedKernel = [&](auto NConst) {
      constexpr unsigned N = decltype(NConst)::value;
      long Off[N];
      double C[N];
      const double *Base[N];
      for (unsigned P = 0; P < N; ++P) {
        Off[P] = Offsets[P];
        C[P] = Coeffs[P];
        Base[P] = PointBase[P];
      }
      RunRows([&, Off, C, Base](size_t Row, long Count) {
        for (long X = 0; X < Count; ++X) {
          double Acc = 0.0;
          for (unsigned P = 0; P < N; ++P)
            Acc += C[P] * Base[P][Row + X + Off[P]];
          OutBase[Row + X] = Acc;
        }
      });
    };

    switch (NumPoints) {
    case 2:
      FixedKernel(std::integral_constant<unsigned, 2>());
      break;
    case 5:
      FixedKernel(std::integral_constant<unsigned, 5>());
      break;
    case 7:
      FixedKernel(std::integral_constant<unsigned, 7>());
      break;
    case 13:
      FixedKernel(std::integral_constant<unsigned, 13>());
      break;
    case 25:
      FixedKernel(std::integral_constant<unsigned, 25>());
      break;
    case 27:
      FixedKernel(std::integral_constant<unsigned, 27>());
      break;
    default:
      RunRows([&](size_t Row, long Count) {
        for (long X = 0; X < Count; ++X) {
          double Acc = 0.0;
          for (unsigned P = 0; P < NumPoints; ++P)
            Acc += Coeffs[P] * PointBase[P][Row + X + Offsets[P]];
          OutBase[Row + X] = Acc;
        }
      });
      break;
    }
    return;
  }

  // Layout-generic path (folded storage).
  for (long Z = Z0; Z < Z1; ++Z)
    for (long Y = Y0; Y < Y1; ++Y)
      for (long X = X0; X < X1; ++X) {
        double Acc = 0.0;
        for (const StencilPoint &P : Points)
          Acc += P.Coeff *
                 Inputs[P.GridIdx]->at(X + P.Dx, Y + P.Dy, Z + P.Dz);
        Out.at(X, Y, Z) = Acc;
      }
}

/// Runs the blocked loop nest over z in [Z0, Z1) on the calling thread.
void KernelExecutor::sweepBlockedSerialZ(
    const std::vector<const Grid *> &Inputs, Grid &Out, long Z0,
    long Z1) const {
  const GridDims &Dims = Out.dims();
  BlockSize B = Config.Block.resolved(Dims);
  for (long Zb = Z0; Zb < Z1; Zb += B.Z) {
    long Ze = std::min(Zb + B.Z, Z1);
    for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y) {
      long Ye = std::min(Yb + B.Y, Dims.Ny);
      for (long Xb = 0; Xb < Dims.Nx; Xb += B.X) {
        long Xe = std::min(Xb + B.X, Dims.Nx);
        sweepRange(Inputs, Out, Zb, Ze, Yb, Ye, Xb, Xe);
      }
    }
  }
}

void KernelExecutor::runSweep(const std::vector<const Grid *> &Inputs,
                              Grid &Out, ThreadPool *Pool) const {
  assert(Inputs.size() >= Spec.numInputGrids() && "missing input grids");
  assert(Out.halo() >= Spec.radius() && "halo smaller than stencil radius");
  for (const Grid *In : Inputs) {
    assert(In->dims() == Out.dims() && "input dims mismatch");
    assert(In->halo() == Out.halo() && "input halo mismatch");
    assert(In->fold() == Out.fold() && "input fold mismatch");
    (void)In;
  }
  assert(Out.fold() == Config.VectorFold && "grid fold != configured fold");

  const GridDims &Dims = Out.dims();
  // A candidate config may request fewer threads than the pool has; honor
  // it, otherwise tuner measurements of Threads=k all run pool-wide.
  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;
  if (!Pool || Threads <= 1) {
    sweepBlockedSerialZ(Inputs, Out, 0, Dims.Nz);
    return;
  }

  // Decompose over 2-D (zBlock, yBlock) tiles at cache-block granularity.
  // Compared with static z chunks this exposes Nz/B.Z * Ny/B.Y units of
  // work, so thread counts beyond the z-block count still get fed, and the
  // pool's stealing evens out non-divisible tile grids.
  BlockSize B = Config.Block.resolved(Dims);
  long NumZBlocks = (Dims.Nz + B.Z - 1) / B.Z;
  long NumYBlocks = (Dims.Ny + B.Y - 1) / B.Y;
  Pool->parallelForTiles(
      NumZBlocks, NumYBlocks,
      [&](unsigned, long Zb, long Yb) {
        long Z0 = Zb * B.Z, Z1 = std::min(Z0 + B.Z, Dims.Nz);
        long Y0 = Yb * B.Y, Y1 = std::min(Y0 + B.Y, Dims.Ny);
        for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
          sweepRange(Inputs, Out, Z0, Z1, Y0, Y1, Xb,
                     std::min(Xb + B.X, Dims.Nx));
      },
      Threads);
}

void KernelExecutor::runTimeSteps(Grid &U, Grid &Scratch, int Steps,
                                  ThreadPool *Pool) const {
  assert(Spec.numInputGrids() == 1 &&
         "time stepping requires a single-input stencil");
  assert(Steps >= 0 && "negative step count");
  int Depth = std::max(1, Config.WavefrontDepth);

  // One structured record per multi-step run (phase "kernel_steps" with
  // the scope's wall time); free when tracing is disabled.
  TraceScope Scope("kernel_steps");
  Scope.field("stencil", Spec.name())
      .field("config", Config.str())
      .field("dims", U.dims().str())
      .field("steps", Steps)
      .field("threads",
             Pool ? std::min(Config.Threads, Pool->numThreads()) : 1u);

  Grid *Even = &U;
  Grid *Odd = &Scratch;
  int Done = 0;

  // Temporal wavefront macro-steps of Depth sweeps each.
  while (Depth > 1 && Steps - Done >= Depth) {
    wavefrontMacroStep(Even, Odd, Depth, Pool);
    if (Depth % 2 != 0)
      std::swap(Even, Odd);
    Done += Depth;
  }

  // Remaining plain sweeps.
  for (; Done < Steps; ++Done) {
    runSweep({Even}, *Odd, Pool);
    std::swap(Even, Odd);
  }

  if (Even != &U)
    U.copyInteriorFrom(*Even);
}

/// Applies Depth sweeps with temporal wavefront blocking along z.  The
/// frontier F[s] records how far (exclusive z) time level s has been
/// computed; levels advance in blocks of the configured z block size while
/// maintaining F[s] <= F[s-1] - radius, which makes the two-buffer scheme
/// race-free (see the derivation in tests/codegen/WavefrontTest.cpp).
void KernelExecutor::wavefrontMacroStep(Grid *Even, Grid *Odd, int Depth,
                                        ThreadPool *Pool) const {
  const GridDims &Dims = Even->dims();
  int R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1); // Progress needs Bz > radius.

  std::vector<long> Frontier(static_cast<size_t>(Depth) + 1, 0);
  Frontier[0] = Dims.Nz;

  auto bufferFor = [&](int TimeLevel) {
    return TimeLevel % 2 == 0 ? Even : Odd;
  };

  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;
  auto sweepSlab = [&](int S, long Z0, long Z1) {
    Grid *Src = bufferFor(S - 1);
    Grid *Dst = bufferFor(S);
    std::vector<const Grid *> Inputs = {Src};
    if (Pool && Threads > 1) {
      // The slab is at most one z block deep, but enumerating (zBlock,
      // yBlock) tiles keeps the same tile->thread mapping as runSweep and
      // still scales past the y-block count for thicker slabs.
      long NumZT = (Z1 - Z0 + B.Z - 1) / B.Z;
      long NumYT = (Dims.Ny + B.Y - 1) / B.Y;
      Pool->parallelForTiles(
          NumZT, NumYT,
          [&](unsigned, long Zt, long Yt) {
            long SZ0 = Z0 + Zt * B.Z, SZ1 = std::min(SZ0 + B.Z, Z1);
            long Y0 = Yt * B.Y, Y1 = std::min(Y0 + B.Y, Dims.Ny);
            for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
              sweepRange(Inputs, *Dst, SZ0, SZ1, Y0, Y1, Xb,
                         std::min(Xb + B.X, Dims.Nx));
          },
          Threads);
      return;
    }
    for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
      for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
        sweepRange(Inputs, *Dst, Z0, Z1, Yb, std::min(Yb + B.Y, Dims.Ny),
                   Xb, std::min(Xb + B.X, Dims.Nx));
  };

  while (Frontier[Depth] < Dims.Nz) {
    bool Progressed = false;
    for (int S = 1; S <= Depth; ++S) {
      long Cap =
          Frontier[S - 1] >= Dims.Nz ? Dims.Nz : Frontier[S - 1] - R;
      long Target = std::min(Cap, Frontier[S] + Bz);
      if (Target > Frontier[S]) {
        sweepSlab(S, Frontier[S], Target);
        Frontier[S] = Target;
        Progressed = true;
      }
    }
    assert(Progressed && "wavefront stalled; block size too small?");
    (void)Progressed;
  }
}
