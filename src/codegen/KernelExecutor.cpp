//===- codegen/KernelExecutor.cpp - Stencil kernel executor ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"

#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace ys;

KernelExecutor::KernelExecutor(StencilSpec Spec, KernelConfig Config)
    : Spec(std::move(Spec)), Config(Config) {
  assert(this->Spec.validate().empty() && "invalid stencil spec");
  assert(this->Config.validate().empty() && "invalid kernel config");
  JitIns.resize(this->Spec.numInputGrids(), nullptr);
}

void KernelExecutor::setBackend(KernelBackend B) {
  if (Backend == B)
    return;
  Backend = B;
  JitK = JitKernel();
  JitFn = nullptr;
  JitFailed = false;
}

void KernelExecutor::runReference(const StencilSpec &Spec,
                                  const std::vector<const Grid *> &Inputs,
                                  Grid &Out) {
  assert(Inputs.size() >= Spec.numInputGrids() && "missing input grids");
  const GridDims &Dims = Out.dims();
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X) {
        double Acc = 0.0;
        for (const StencilPoint &P : Spec.points())
          Acc += P.Coeff *
                 Inputs[P.GridIdx]->at(X + P.Dx, Y + P.Dy, Z + P.Dz);
        Out.at(X, Y, Z) = Acc;
      }
}

KernelPlan &KernelExecutor::ensurePlan(const Grid &Out) const {
  SimdTarget Target = selectSimdTarget();
  if (!Plan || !Plan->matchesGeometry(Out) || Plan->target() != Target) {
    Plan = std::make_unique<KernelPlan>(Spec, Config, Out, Target);
    ++PlanBuildCount;
  }
  return *Plan;
}

bool KernelExecutor::ensureJit(const Grid &Out) const {
  if (JitFn && JitGeo.matches(Out))
    return true;
  if (JitFailed)
    return false;
  JitGeometry G(Out);
  std::string Source = SourceEmitter::emitJitTranslationUnit(Spec, G);
  Expected<JitKernel> Kernel = JitRuntime::instance().compile(
      Source, SourceEmitter::jitKernelSymbol());
  if (!Kernel) {
    static bool Warned = false;
    if (!Warned) {
      std::fprintf(stderr,
                   "ys: jit backend unavailable (%s); falling back to "
                   "kernel plans\n",
                   Kernel.takeError().message().c_str());
      Warned = true;
    }
    JitFailed = true;
    JitK = JitKernel();
    JitFn = nullptr;
    return false;
  }
  JitK = *Kernel;
  JitFn = JitK.rangeKernel();
  JitGeo = G;
  ++JitBuildCount;
  return true;
}

void KernelExecutor::prepareBackend(const Grid &Out) const {
  if (Backend == KernelBackend::Jit && ensureJit(Out))
    return;
  JitFn = nullptr; // Plan path: sweepRange must not see a stale kernel.
  ensurePlan(Out);
}

void KernelExecutor::bindBuffers(const Grid *const *Inputs,
                                 unsigned NumInputs, Grid &Out) const {
  if (JitFn) {
    assert(JitIns.size() == Spec.numInputGrids() && "input slots mismatch");
    for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
      JitIns[G] = Inputs[G]->data();
    JitOut = Out.data();
    return;
  }
  Plan->bind(Inputs, NumInputs, Out);
}

/// Computes one rectangular region through the bound backend.  Both the
/// plan and the JIT kernel own/bake every table they read, so this is
/// allocation-free.
void KernelExecutor::sweepRange(long Z0, long Z1, long Y0, long Y1, long X0,
                                long X1) const {
  if (JitFn) {
    JitFn(JitIns.data(), JitOut, Z0, Z1, Y0, Y1, X0, X1);
    return;
  }
  Plan->runRange(Z0, Z1, Y0, Y1, X0, X1);
}

/// Runs the blocked loop nest over z in [Z0, Z1) on the calling thread.
void KernelExecutor::sweepBlockedSerialZ(const GridDims &Dims, long Z0,
                                         long Z1) const {
  BlockSize B = Config.Block.resolved(Dims);
  for (long Zb = Z0; Zb < Z1; Zb += B.Z) {
    long Ze = std::min(Zb + B.Z, Z1);
    for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y) {
      long Ye = std::min(Yb + B.Y, Dims.Ny);
      for (long Xb = 0; Xb < Dims.Nx; Xb += B.X) {
        long Xe = std::min(Xb + B.X, Dims.Nx);
        sweepRange(Zb, Ze, Yb, Ye, Xb, Xe);
      }
    }
  }
}

void KernelExecutor::runSweep(const std::vector<const Grid *> &Inputs,
                              Grid &Out, ThreadPool *Pool) const {
  runSweep(Inputs.data(), static_cast<unsigned>(Inputs.size()), Out, Pool);
}

void KernelExecutor::runSweep(const Grid *const *Inputs, unsigned NumInputs,
                              Grid &Out, ThreadPool *Pool) const {
  assert(NumInputs >= Spec.numInputGrids() && "missing input grids");
  assert(Out.halo() >= Spec.radius() && "halo smaller than stencil radius");
  for (unsigned I = 0; I < NumInputs; ++I) {
    assert(Inputs[I]->dims() == Out.dims() && "input dims mismatch");
    assert(Inputs[I]->halo() == Out.halo() && "input halo mismatch");
    assert(Inputs[I]->fold() == Out.fold() && "input fold mismatch");
  }
  assert(Out.fold() == Config.VectorFold && "grid fold != configured fold");

  prepareBackend(Out);
  bindBuffers(Inputs, NumInputs, Out);

  const GridDims &Dims = Out.dims();
  // A candidate config may request fewer threads than the pool has; honor
  // it, otherwise tuner measurements of Threads=k all run pool-wide.
  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;
  if (!Pool || Threads <= 1) {
    sweepBlockedSerialZ(Dims, 0, Dims.Nz);
    return;
  }

  // Decompose over 2-D (zBlock, yBlock) tiles at cache-block granularity.
  // Compared with static z chunks this exposes Nz/B.Z * Ny/B.Y units of
  // work, so thread counts beyond the z-block count still get fed, and the
  // pool's stealing evens out non-divisible tile grids.
  BlockSize B = Config.Block.resolved(Dims);
  long NumZBlocks = (Dims.Nz + B.Z - 1) / B.Z;
  long NumYBlocks = (Dims.Ny + B.Y - 1) / B.Y;
  Pool->parallelForTiles(
      NumZBlocks, NumYBlocks,
      [&](unsigned, long Zb, long Yb) {
        long Z0 = Zb * B.Z, Z1 = std::min(Z0 + B.Z, Dims.Nz);
        long Y0 = Yb * B.Y, Y1 = std::min(Y0 + B.Y, Dims.Ny);
        for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
          sweepRange(Z0, Z1, Y0, Y1, Xb, std::min(Xb + B.X, Dims.Nx));
      },
      Threads);
}

void KernelExecutor::runTimeSteps(Grid &U, Grid &Scratch, int Steps,
                                  ThreadPool *Pool) const {
  assert(Spec.numInputGrids() == 1 &&
         "time stepping requires a single-input stencil");
  assert(Steps >= 0 && "negative step count");
  // KernelConfig::validate() rejects WavefrontDepth < 1 and every external
  // entry point (driver, service, verify harness) checks it; a silent
  // clamp here would hide an unvalidated call site.
  assert(Config.WavefrontDepth >= 1 &&
         "unvalidated config reached the executor (wf < 1)");
  int Depth = Config.WavefrontDepth;

  // One structured record per multi-step run (phase "kernel_steps" with
  // the scope's wall time).  The field arguments themselves allocate, so
  // they are gated on tracing being enabled to keep the disabled hot path
  // allocation-free.
  TraceScope Scope("kernel_steps");
  if (Trace::enabled())
    Scope.field("stencil", Spec.name())
        .field("config", Config.str())
        .field("dims", U.dims().str())
        .field("steps", Steps)
        .field("threads",
               Pool ? std::min(Config.Threads, Pool->numThreads()) : 1u);

  Grid *Even = &U;
  Grid *Odd = &Scratch;
  int Done = 0;

  // Temporal macro-steps of Depth sweeps each, under the configured
  // schedule.  All three schedules share the two-buffer parity scheme
  // (level s lands in Even when s is even), so the odd-depth swap and the
  // final copy-back are schedule-independent.
  while (Config.isTemporal() && Steps - Done >= Depth) {
    switch (Config.Sched) {
    case Schedule::Diamond:
      diamondMacroStep(Even, Odd, Depth, Pool);
      break;
    case Schedule::DeepTemporal:
      deepTemporalMacroStep(Even, Odd, Depth, Pool);
      break;
    default:
      wavefrontMacroStep(Even, Odd, Depth, Pool);
      break;
    }
    if (Depth % 2 != 0)
      std::swap(Even, Odd);
    Done += Depth;
  }

  // Remaining plain sweeps (pointer-array path: no per-sweep allocation).
  for (; Done < Steps; ++Done) {
    const Grid *In = Even;
    runSweep(&In, 1, *Odd, Pool);
    std::swap(Even, Odd);
  }

  if (Even != &U)
    U.copyInteriorFrom(*Even);
}

void KernelExecutor::runLevelRange(Grid &Even, Grid &Odd, int S, long Z0,
                                   long Z1, ThreadPool *Pool) const {
  assert(Even.dims() == Odd.dims() && "buffer dims mismatch");
  prepareBackend(Even);
  BlockSize B = Config.Block.resolved(Even.dims());
  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;
  runLevelSlab(&Even, &Odd, S, Z0, Z1, B, Pool, Threads);
}

void KernelExecutor::runLevelSlab(Grid *Even, Grid *Odd, int S, long Z0,
                                  long Z1, const BlockSize &B,
                                  ThreadPool *Pool,
                                  unsigned Threads) const {
  const GridDims &Dims = Even->dims();
  Grid *Src = S % 2 == 0 ? Odd : Even;  // Level S-1's buffer.
  Grid *Dst = S % 2 == 0 ? Even : Odd;  // Level S's buffer.
  const Grid *SrcPtr = Src;
  bindBuffers(&SrcPtr, 1, *Dst);
  if (Pool && Threads > 1) {
    // The slab is often at most one z block deep, but enumerating (zBlock,
    // yBlock) tiles keeps the same tile->thread mapping as runSweep and
    // still scales past the y-block count for thicker slabs.
    long NumZT = (Z1 - Z0 + B.Z - 1) / B.Z;
    long NumYT = (Dims.Ny + B.Y - 1) / B.Y;
    Pool->parallelForTiles(
        NumZT, NumYT,
        [&](unsigned, long Zt, long Yt) {
          long SZ0 = Z0 + Zt * B.Z, SZ1 = std::min(SZ0 + B.Z, Z1);
          long Y0 = Yt * B.Y, Y1 = std::min(Y0 + B.Y, Dims.Ny);
          for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
            sweepRange(SZ0, SZ1, Y0, Y1, Xb,
                       std::min(Xb + B.X, Dims.Nx));
        },
        Threads);
    return;
  }
  for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
    for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
      sweepRange(Z0, Z1, Yb, std::min(Yb + B.Y, Dims.Ny), Xb,
                 std::min(Xb + B.X, Dims.Nx));
}

/// Applies Depth sweeps with temporal wavefront blocking along z.  The
/// frontier F[s] records how far (exclusive z) time level s has been
/// computed; levels advance in blocks of the configured z block size while
/// maintaining F[s] <= F[s-1] - radius, which makes the two-buffer scheme
/// race-free (see the derivation in tests/codegen/WavefrontTest.cpp).
void KernelExecutor::wavefrontMacroStep(Grid *Even, Grid *Odd, int Depth,
                                        ThreadPool *Pool) const {
  const GridDims &Dims = Even->dims();
  int R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1); // Progress needs Bz > radius.

  // One plan (or JIT kernel) serves both buffers (same geometry); each
  // slab rebinds the source/destination pointers, which is
  // allocation-free.
  prepareBackend(*Even);

  std::vector<long> Frontier(static_cast<size_t>(Depth) + 1, 0);
  Frontier[0] = Dims.Nz;

  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;

  while (Frontier[Depth] < Dims.Nz) {
    bool Progressed = false;
    for (int S = 1; S <= Depth; ++S) {
      long Cap =
          Frontier[S - 1] >= Dims.Nz ? Dims.Nz : Frontier[S - 1] - R;
      long Target = std::min(Cap, Frontier[S] + Bz);
      if (Target > Frontier[S]) {
        runLevelSlab(Even, Odd, S, Frontier[S], Target, B, Pool, Threads);
        Frontier[S] = Target;
        Progressed = true;
      }
    }
    assert(Progressed && "wavefront stalled; block size too small?");
    (void)Progressed;
  }
}

/// Applies Depth sweeps as a two-phase trapezoid/diamond decomposition
/// along z with tile width W = max(Bz, 2*Depth*R):
///
///   Phase 1, per tile k over [k*W, (k+1)*W): level s covers
///     [k*W + s*R, (k+1)*W - s*R), with the first/last tile extended to
///     the domain edge (the halo is a constant-in-time boundary there).
///   Phase 2, per interior tile boundary b = (k+1)*W: level s fills the
///     remaining diamond [b - s*R, b + s*R), clipped to the domain.
///
/// Dependences: a phase-1 level-s slab reads level s-1 exactly on its own
/// tile's level-(s-1) slab; a phase-2 level-s diamond reads level s-1 from
/// the already-finished phase 1 plus its own boundary's level s-1 (s
/// ascends).  Anti-dependences: overwriting level s-2 at z is safe because
/// every level-(s-1) cell within radius of z is already computed, and
/// W >= 2*Depth*R keeps neighboring boundaries' writes out of the live
/// reload band.  With one tile (W >= Nz) this degenerates to Depth plain
/// sweeps.
void KernelExecutor::diamondMacroStep(Grid *Even, Grid *Odd, int Depth,
                                      ThreadPool *Pool) const {
  const GridDims &Dims = Even->dims();
  long R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long W = std::max<long>(B.Z, 2 * Depth * R);

  prepareBackend(*Even);
  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;

  long NumTiles = (Dims.Nz + W - 1) / W;

  // Phase 1: downward-sloping trapezoids, mutually independent.
  for (long K = 0; K < NumTiles; ++K) {
    for (int S = 1; S <= Depth; ++S) {
      long Z0 = K == 0 ? 0 : K * W + S * R;
      long Z1 = K == NumTiles - 1 ? Dims.Nz : (K + 1) * W - S * R;
      if (Z1 > Z0)
        runLevelSlab(Even, Odd, S, Z0, Z1, B, Pool, Threads);
    }
  }

  // Phase 2: the boundary diamonds between adjacent tiles.
  for (long K = 0; K + 1 < NumTiles; ++K) {
    long Boundary = (K + 1) * W;
    for (int S = 1; S <= Depth; ++S) {
      long Z0 = std::max<long>(0, Boundary - S * R);
      long Z1 = std::min<long>(Dims.Nz, Boundary + S * R);
      if (Z1 > Z0)
        runLevelSlab(Even, Odd, S, Z0, Z1, B, Pool, Threads);
    }
  }
}

/// Applies Depth sweeps as a minimal-skew per-plane pipeline (AN5D-style
/// high-degree temporal blocking): wave w advances level s on plane
/// z = w - (s-1)*R, s ascending.  Level s-1's plane z+R completes earlier
/// in the same wave, so the read dependence is exact; the last reader of
/// the level s-2 plane being overwritten is level s-1's plane z+R, also
/// earlier in the same wave.  The live window spans about Depth*R + 2R
/// planes per buffer regardless of the z block size, which is what lets
/// this schedule sustain much higher depths than the wavefront.
void KernelExecutor::deepTemporalMacroStep(Grid *Even, Grid *Odd, int Depth,
                                           ThreadPool *Pool) const {
  const GridDims &Dims = Even->dims();
  long R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);

  prepareBackend(*Even);
  unsigned Threads =
      Pool ? std::min(Config.Threads, Pool->numThreads()) : 1;

  long LastWave = Dims.Nz - 1 + static_cast<long>(Depth - 1) * R;
  for (long Wave = 0; Wave <= LastWave; ++Wave) {
    for (int S = 1; S <= Depth; ++S) {
      long Z = Wave - static_cast<long>(S - 1) * R;
      if (Z >= 0 && Z < Dims.Nz)
        runLevelSlab(Even, Odd, S, Z, Z + 1, B, Pool, Threads);
    }
  }
}
