//===- codegen/JitCompiler.cpp - Runtime JIT of emitted kernels ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/JitCompiler.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <dlfcn.h>
#include <unistd.h>

using namespace ys;

const char *ys::kernelBackendName(KernelBackend B) {
  switch (B) {
  case KernelBackend::Plan:
    return "plan";
  case KernelBackend::Jit:
    return "jit";
  }
  return "plan";
}

std::optional<KernelBackend> ys::parseKernelBackend(const std::string &Name) {
  std::string L = toLower(Name);
  if (L == "plan")
    return KernelBackend::Plan;
  if (L == "jit")
    return KernelBackend::Jit;
  return std::nullopt;
}

KernelBackend ys::selectKernelBackend() {
  const char *Env = std::getenv("YS_BACKEND");
  if (!Env || !*Env)
    return KernelBackend::Plan;
  std::optional<KernelBackend> B = parseKernelBackend(Env);
  if (B)
    return *B;
  static bool Warned = false;
  if (!Warned) {
    std::fprintf(stderr,
                 "ys: YS_BACKEND=%s is not a known backend (plan, jit); "
                 "using plan\n",
                 Env);
    Warned = true;
  }
  return KernelBackend::Plan;
}

namespace {

/// First line of `<Command> --version`, or "" when the command cannot be
/// run.  Doubles as the availability probe.
std::string probeCompilerVersion(const std::string &Command) {
  if (Command.empty())
    return std::string();
  std::string Cmd = Command + " --version 2>/dev/null";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return std::string();
  char Buf[512];
  std::string FirstLine;
  if (std::fgets(Buf, sizeof(Buf), Pipe)) {
    FirstLine = Buf;
    while (!FirstLine.empty() &&
           (FirstLine.back() == '\n' || FirstLine.back() == '\r'))
      FirstLine.pop_back();
  }
  // Drain so the child does not die on SIGPIPE with a nonzero status.
  while (std::fgets(Buf, sizeof(Buf), Pipe))
    ;
  int Status = pclose(Pipe);
  if (Status != 0)
    return std::string();
  return FirstLine;
}

/// Last ~20 lines of the compiler log, for compile-failure diagnostics.
std::string logTail(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::string();
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  size_t First = Lines.size() > 20 ? Lines.size() - 20 : 0;
  std::string Out;
  for (size_t I = First; I < Lines.size(); ++I)
    Out += Lines[I] + "\n";
  return Out;
}

/// Writes \p Text to \p Path via a same-directory temp file + atomic
/// rename, so concurrent processes and killed runs cannot leave a
/// truncated file under the final name.
bool writeFileAtomic(const std::string &Path, const std::string &Text) {
  std::string Tmp = Path + format(".tmp.%ld", (long)getpid());
  {
    std::ofstream Out(Tmp, std::ios::trunc | std::ios::binary);
    if (!Out)
      return false;
    Out << Text;
    Out.flush();
    if (!Out) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

} // namespace

std::string JitCompiler::detectCompiler() {
  const char *Env = std::getenv("YS_CXX");
  if (Env && *Env)
    return Env; // Explicit choice, even if broken: the probe reports it.
  for (const char *Candidate : {"c++", "g++", "clang++", "cc"})
    if (!probeCompilerVersion(Candidate).empty())
      return Candidate;
  return std::string();
}

std::string JitCompiler::defaultCacheDir() {
  const char *Env = std::getenv("YS_JIT_CACHE");
  if (Env && *Env)
    return Env;
  // Next to the tuning cache when one is configured: the two stores
  // travel together (wipe one directory to reset this host's state).
  const char *Tune = std::getenv("YS_TUNE_CACHE");
  if (Tune && *Tune) {
    std::filesystem::path P(Tune);
    return (P.parent_path() / "yasksite-jit").string();
  }
  std::error_code EC;
  std::filesystem::path Tmp = std::filesystem::temp_directory_path(EC);
  if (EC)
    Tmp = "/tmp";
  return (Tmp / format("yasksite-jit-%ld", (long)getuid())).string();
}

JitCompiler::JitCompiler(Config C) : Cfg(std::move(C)) {
  if (Cfg.Compiler.empty())
    Cfg.Compiler = detectCompiler();
  if (Cfg.CacheDir.empty())
    Cfg.CacheDir = defaultCacheDir();
  CompilerVersion = probeCompilerVersion(Cfg.Compiler);
}

std::string JitCompiler::fingerprint(const std::string &Source) const {
  std::string Canon = Source;
  Canon += "\n#compiler=" + CompilerVersion;
  Canon += "\n#flags=" + join(Cfg.Flags, " ");
  return fingerprintRaw64(Canon);
}

std::string JitCompiler::soPath(const std::string &Key) const {
  return (std::filesystem::path(Cfg.CacheDir) / ("ys-jit-" + Key + ".so"))
      .string();
}

Expected<JitKernel> JitCompiler::loadObject(const std::string &SoPath,
                                            const std::string &Symbol,
                                            const std::string &Key) {
  void *Raw = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Raw) {
    const char *Why = dlerror();
    return Error::failure(format("dlopen('%s') failed: %s", SoPath.c_str(),
                                 Why ? Why : "unknown error"));
  }
  std::shared_ptr<void> Handle(Raw, [](void *H) { dlclose(H); });
  void *Sym = dlsym(Raw, Symbol.c_str());
  if (!Sym)
    return Error::failure(format("symbol '%s' not found in '%s'",
                                 Symbol.c_str(), SoPath.c_str()));
  Handles[Key] = Handle;
  return JitKernel(std::move(Handle), Sym);
}

Expected<JitKernel> JitCompiler::compile(const std::string &Source,
                                         const std::string &Symbol) {
  std::lock_guard<std::mutex> Lock(Mutex);

  if (!available()) {
    ++Stats.Failures;
    return Error::failure(format(
        "no working C++ compiler ('%s'); set YS_CXX or use YS_BACKEND=plan",
        Cfg.Compiler.empty() ? "none found" : Cfg.Compiler.c_str()));
  }

  std::string Key = fingerprint(Source);

  // In-process hit: the object is already mapped; just resolve the symbol.
  auto It = Handles.find(Key);
  if (It != Handles.end()) {
    void *Sym = dlsym(It->second.get(), Symbol.c_str());
    if (Sym) {
      ++Stats.MemoryHits;
      return JitKernel(It->second, Sym);
    }
  }

  std::error_code EC;
  std::filesystem::create_directories(Cfg.CacheDir, EC);
  if (EC) {
    ++Stats.Failures;
    return Error::failure(format("cannot create JIT cache dir '%s': %s",
                                 Cfg.CacheDir.c_str(),
                                 EC.message().c_str()));
  }

  std::string So = soPath(Key);

  // Disk hit: a previous process (or run) built this exact source with
  // this exact compiler + flags.  Zero compiler invocations.
  if (std::filesystem::exists(So)) {
    Expected<JitKernel> K = loadObject(So, Symbol, Key);
    if (K)
      ++Stats.DiskHits;
    else
      ++Stats.Failures;
    return K;
  }

  // Miss: persist the source (kept for debugging) and compile.  The
  // object lands under a temp name and is renamed into place, so a
  // concurrent process either sees the complete object or none.
  std::filesystem::path Dir(Cfg.CacheDir);
  std::string Src = (Dir / ("ys-jit-" + Key + ".cpp")).string();
  std::string Log = (Dir / ("ys-jit-" + Key + ".log")).string();
  std::string TmpSo = So + format(".tmp.%ld", (long)getpid());
  if (!writeFileAtomic(Src, Source)) {
    ++Stats.Failures;
    return Error::failure(format("cannot write '%s'", Src.c_str()));
  }

  std::string Cmd = Cfg.Compiler;
  for (const std::string &Flag : Cfg.Flags)
    Cmd += " " + Flag;
  Cmd += format(" -o '%s' '%s' > '%s' 2>&1", TmpSo.c_str(), Src.c_str(),
                Log.c_str());
  ++Stats.Invocations;
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    std::remove(TmpSo.c_str());
    ++Stats.Failures;
    return Error::failure(format("compiler exited with status %d:\n%s", Rc,
                                 logTail(Log).c_str()));
  }
  if (std::rename(TmpSo.c_str(), So.c_str()) != 0) {
    std::remove(TmpSo.c_str());
    ++Stats.Failures;
    return Error::failure(format("cannot move '%s' into place",
                                 TmpSo.c_str()));
  }

  Expected<JitKernel> K = loadObject(So, Symbol, Key);
  if (!K)
    ++Stats.Failures;
  return K;
}

JitStats JitCompiler::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

void JitCompiler::resetStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats = JitStats();
}

namespace {
std::mutex RuntimeMutex;
std::unique_ptr<JitCompiler> Runtime;
} // namespace

JitCompiler &JitRuntime::instance() {
  std::lock_guard<std::mutex> Lock(RuntimeMutex);
  if (!Runtime)
    Runtime = std::make_unique<JitCompiler>();
  return *Runtime;
}

void JitRuntime::configure(JitCompiler::Config C) {
  std::lock_guard<std::mutex> Lock(RuntimeMutex);
  Runtime = std::make_unique<JitCompiler>(std::move(C));
}
