//===- codegen/DomainDecomposition.cpp - Rank decomposition ------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/DomainDecomposition.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ys;

std::string DecomposedGrid::validateParams(const GridDims &GlobalDims,
                                           unsigned Ranks, int Halo) {
  if (Ranks < 1)
    return "need at least one rank";
  if (Halo < 1)
    return "halo depth must be >= 1";
  if (GlobalDims.Nz < static_cast<long>(Ranks))
    return "more ranks (" + std::to_string(Ranks) + ") than z planes (" +
           std::to_string(GlobalDims.Nz) + "): every rank needs at least "
           "one owned plane";
  return "";
}

DecomposedGrid::DecomposedGrid(GridDims GlobalDims, unsigned Ranks,
                               int Halo, Fold F)
    : GlobalDims(GlobalDims), Halo(Halo), F(F) {
  std::string Err = validateParams(GlobalDims, Ranks, Halo);
  if (!Err.empty()) {
    // Survives release builds: a mis-sized decomposition would silently
    // compute on empty slabs, so fail loudly in every build mode.
    std::fprintf(stderr, "ys: DecomposedGrid: %s\n", Err.c_str());
    std::abort();
  }

  // Balanced floor+remainder split: the first Nz % Ranks slabs get one
  // extra plane, so no slab is empty and extents differ by at most one.
  long Base = GlobalDims.Nz / Ranks;
  long Rem = GlobalDims.Nz % Ranks;
  ZBegin.push_back(0);
  for (unsigned R = 0; R < Ranks; ++R)
    ZBegin.push_back(ZBegin.back() + Base +
                     (static_cast<long>(R) < Rem ? 1 : 0));
  assert(ZBegin.back() == GlobalDims.Nz && "split does not cover domain");

  for (unsigned R = 0; R < Ranks; ++R) {
    long Own = ZBegin[R + 1] - ZBegin[R];
    // Deep-halo extension: up to Halo redundantly-computed planes toward
    // each interior-facing neighbor, clipped at the global edges (sides
    // on the physical boundary are exact without them).
    ExtLo.push_back(std::min<long>(Halo, ZBegin[R]));
    ExtHi.push_back(std::min<long>(Halo, GlobalDims.Nz - ZBegin[R + 1]));
    GridDims Local{GlobalDims.Nx, GlobalDims.Ny,
                   ExtLo[R] + Own + ExtHi[R]};
    Slabs.push_back(std::make_unique<Grid>(Local, Halo, F));
  }

  buildCopyRuns();
}

void DecomposedGrid::buildCopyRuns() {
  // Every rank's exchanged extension pulls the owners' current values of
  // the global planes it shadows.  With deep halos and small slabs an
  // extension can span several owner ranks, so the needed planes are
  // grouped into per-owner contiguous runs.
  ContigPlanes = F.Z == 1;
  const Grid &Proto = *Slabs[0];
  PlaneElems = ContigPlanes
                   ? static_cast<size_t>(Proto.numVecX()) *
                         Proto.numVecY() * Proto.foldElems()
                   : static_cast<size_t>(GlobalDims.Nx + 2 * Halo) *
                         (GlobalDims.Ny + 2 * Halo);

  auto OwnerOf = [&](long G) {
    unsigned O = static_cast<unsigned>(
        std::upper_bound(ZBegin.begin(), ZBegin.end(), G) -
        ZBegin.begin() - 1);
    assert(O < numRanks() && "plane has no owner");
    return O;
  };

  size_t Offset = 0;
  auto AddRange = [&](unsigned Dst, long GFirst, long GLast,
                      long DstZFirst) {
    // [GFirst, GLast) global planes landing at local z DstZFirst... in Dst.
    long G = GFirst;
    while (G < GLast) {
      unsigned O = OwnerOf(G);
      long RunEnd = std::min(GLast, ZBegin[O + 1]);
      CopyRun Run;
      Run.SrcRank = O;
      Run.DstRank = Dst;
      Run.SrcZ0 = ExtLo[O] + (G - ZBegin[O]);
      Run.DstZ0 = DstZFirst + (G - GFirst);
      Run.Planes = RunEnd - G;
      Run.StageOffset = Offset;
      Offset += static_cast<size_t>(Run.Planes) * PlaneElems;
      Runs.push_back(Run);
      G = RunEnd;
    }
  };

  for (unsigned R = 0; R < numRanks(); ++R) {
    long Own = ZBegin[R + 1] - ZBegin[R];
    if (sideExchanged(R, /*Low=*/true))
      AddRange(R, ZBegin[R] - Halo, ZBegin[R], /*DstZFirst=*/0);
    if (sideExchanged(R, /*Low=*/false))
      AddRange(R, ZBegin[R + 1], ZBegin[R + 1] + Halo,
               /*DstZFirst=*/ExtLo[R] + Own);
  }

  Stage.allocate(Offset);
  Stage.zero();
  unsigned long long TotalPlanes = 0;
  for (const CopyRun &Run : Runs)
    TotalPlanes += static_cast<unsigned long long>(Run.Planes);
  SerialElemsPerExchange =
      TotalPlanes * static_cast<unsigned long long>(GlobalDims.Nx + 2 * Halo) *
      (GlobalDims.Ny + 2 * Halo);
  StagedElemsPerExchange = TotalPlanes * PlaneElems;
}

void DecomposedGrid::scatter(const Grid &Global) {
  assert(Global.dims() == GlobalDims && "global dims mismatch");
  int GH = Global.halo();
  for (unsigned R = 0; R < numRanks(); ++R) {
    Grid &Local = *Slabs[R];
    long Z0 = ZBegin[R] - ExtLo[R]; // Global plane of local z == 0.
    long NzLoc = Local.dims().Nz;
    for (long Z = -Halo; Z < NzLoc + Halo; ++Z) {
      long Gz = Z0 + Z;
      bool ZIn = Gz >= -GH && Gz < GlobalDims.Nz + GH;
      for (long Y = -Halo; Y < GlobalDims.Ny + Halo; ++Y) {
        bool YIn = Y >= -GH && Y < GlobalDims.Ny + GH;
        for (long X = -Halo; X < GlobalDims.Nx + Halo; ++X) {
          // Local halo cells past the global grid's halo have no source
          // value; they are zero-filled and never read by a sweep (reads
          // reach at most radius <= halo() past the interior).
          bool In = ZIn && YIn && X >= -GH && X < GlobalDims.Nx + GH;
          Local.at(X, Y, Z) = In ? Global.at(X, Y, Gz) : 0.0;
        }
      }
    }
  }
}

void DecomposedGrid::gather(Grid &Global) const {
  assert(Global.dims() == GlobalDims && "global dims mismatch");
  for (unsigned R = 0; R < numRanks(); ++R) {
    const Grid &Local = *Slabs[R];
    long Own = ZBegin[R + 1] - ZBegin[R];
    for (long Z = 0; Z < Own; ++Z)
      for (long Y = 0; Y < GlobalDims.Ny; ++Y)
        for (long X = 0; X < GlobalDims.Nx; ++X)
          Global.at(X, Y, ZBegin[R] + Z) = Local.at(X, Y, ExtLo[R] + Z);
  }
}

void DecomposedGrid::copyPlaneDirect(const Grid &Src, long SrcZ, Grid &Dst,
                                     long DstZ) {
  // The serial reference path copies the x/y halo ring too — it holds the
  // same physical boundary values on both sides, so this is value-neutral,
  // but it is what the element-wise loop actually moves and therefore what
  // the byte counter must account.
  for (long Y = -Halo; Y < GlobalDims.Ny + Halo; ++Y)
    for (long X = -Halo; X < GlobalDims.Nx + Halo; ++X)
      Dst.at(X, Y, DstZ) = Src.at(X, Y, SrcZ);
}

void DecomposedGrid::exchangeHalos() {
  for (const CopyRun &Run : Runs) {
    const Grid &Src = *Slabs[Run.SrcRank];
    Grid &Dst = *Slabs[Run.DstRank];
    for (long P = 0; P < Run.Planes; ++P)
      copyPlaneDirect(Src, Run.SrcZ0 + P, Dst, Run.DstZ0 + P);
  }
  HaloBytes += SerialElemsPerExchange * sizeof(double);
}

void DecomposedGrid::packPlane(const Grid &Src, long SrcZ,
                               double *Out) const {
  if (ContigPlanes) {
    // fold.Z == 1 keeps every padded z-plane contiguous: one memcpy of
    // numVecX*numVecY fold blocks starting at the plane's first lane.
    std::memcpy(Out, Src.data() + Src.linearIndex(-Halo, -Halo, SrcZ),
                PlaneElems * sizeof(double));
    return;
  }
  size_t I = 0;
  for (long Y = -Halo; Y < GlobalDims.Ny + Halo; ++Y)
    for (long X = -Halo; X < GlobalDims.Nx + Halo; ++X)
      Out[I++] = Src.at(X, Y, SrcZ);
}

void DecomposedGrid::unpackPlane(const double *In, Grid &Dst,
                                 long DstZ) const {
  if (ContigPlanes) {
    std::memcpy(Dst.data() + Dst.linearIndex(-Halo, -Halo, DstZ), In,
                PlaneElems * sizeof(double));
    return;
  }
  size_t I = 0;
  for (long Y = -Halo; Y < GlobalDims.Ny + Halo; ++Y)
    for (long X = -Halo; X < GlobalDims.Nx + Halo; ++X)
      Dst.at(X, Y, DstZ) = In[I++];
}

void DecomposedGrid::packHalos(ThreadPool *Pool) {
  auto PackRun = [&](long I) {
    const CopyRun &Run = Runs[static_cast<size_t>(I)];
    const Grid &Src = *Slabs[Run.SrcRank];
    for (long P = 0; P < Run.Planes; ++P)
      packPlane(Src, Run.SrcZ0 + P,
                Stage.data() + Run.StageOffset +
                    static_cast<size_t>(P) * PlaneElems);
  };
  if (Pool && Pool->numThreads() > 1 && Runs.size() > 1)
    Pool->parallelFor(0, static_cast<long>(Runs.size()), PackRun);
  else
    for (size_t I = 0; I < Runs.size(); ++I)
      PackRun(static_cast<long>(I));
  // One staged exchange moves every element twice (grid -> staging ->
  // grid); count it here so the concurrent unpackRun calls stay free of
  // shared-counter writes.
  HaloBytes += 2 * StagedElemsPerExchange * sizeof(double);
}

void DecomposedGrid::unpackRun(size_t I) {
  const CopyRun &Run = Runs[I];
  Grid &Dst = *Slabs[Run.DstRank];
  for (long P = 0; P < Run.Planes; ++P)
    unpackPlane(Stage.data() + Run.StageOffset +
                    static_cast<size_t>(P) * PlaneElems,
                Dst, Run.DstZ0 + P);
}

//===----------------------------------------------------------------------===//
// DistributedStepper
//===----------------------------------------------------------------------===//

DistributedStepper::DistributedStepper(StencilSpec Spec, KernelConfig Config)
    : Spec(std::move(Spec)), Config(Config) {
  assert(this->Spec.numInputGrids() == 1 &&
         "distributed stepping requires a single-input stencil");
  assert(this->Config.validate().empty() && "invalid kernel config");
}

DistributedStepper::~DistributedStepper() = default;

void DistributedStepper::setBackend(KernelBackend B) {
  BackendOverride = B;
  for (auto &Exec : RankExecs)
    if (Exec)
      Exec->setBackend(B);
}

int DistributedStepper::stepsPerExchange(int Halo) const {
  int R = std::max(1, Spec.radius());
  return std::max(1, Halo / R);
}

KernelExecutor &DistributedStepper::rankExec(unsigned R) const {
  assert(R < RankExecs.size() && "rank executor not provisioned");
  if (!RankExecs[R]) {
    RankExecs[R] = std::make_unique<KernelExecutor>(Spec, Config);
    if (BackendOverride)
      RankExecs[R]->setBackend(*BackendOverride);
  }
  return *RankExecs[R];
}

void DistributedStepper::runMacroSerial(DecomposedGrid &Src,
                                        DecomposedGrid &Dst, int K,
                                        ThreadPool *Pool) const {
  // Every rank advances K fused steps through its own executor — the
  // full macro-step machinery (wavefront/diamond/deep-temporal) runs
  // per rank.  runTimeSteps lands the result back in Src's rank grid,
  // so no buffer swap happens at this level.
  auto StepRank = [&](long R) {
    rankExec(static_cast<unsigned>(R))
        .runTimeSteps(Src.rank(static_cast<unsigned>(R)),
                      Dst.rank(static_cast<unsigned>(R)), K,
                      /*Pool=*/nullptr);
  };
  if (Pool && Pool->numThreads() > 1)
    Pool->parallelFor(0, Src.numRanks(), StepRank);
  else
    for (unsigned R = 0; R < Src.numRanks(); ++R)
      StepRank(R);
}

void DistributedStepper::runMacroOverlapped(DecomposedGrid &Src,
                                            DecomposedGrid &Dst, int K,
                                            ThreadPool *Pool) const {
  // Two-buffer parity over the macro step: level s lands in Src when s is
  // even (level 0 = Src).  Phase 1 runs the staged unpack copies
  // concurrently with each rank's interior trapezoid — level s over the
  // planes whose value is independent of the incoming extension data:
  //
  //     [extLo + s*R, NzLoc - extHi - s*R)        (exchanged sides shrink)
  //
  // Race-freedom: unpack writes Src extension planes [0, extLo) and
  // [NzLoc - extHi, NzLoc); interior level 1 reads Src planes >= extLo
  // and level s >= 2 writes planes >= extLo + s*R — disjoint.  Phase 2
  // (after the pool barrier) fills the boundary bands down to the exact
  // frontier s*R, whose level-(s-1) reads are all satisfied by phase 1
  // plus earlier phase-2 levels of the same rank (sequential per task).
  long R = std::max(1, Spec.radius());
  unsigned NumRanks = Src.numRanks();
  long NumRuns = static_cast<long>(Src.numCopyRuns());

  auto Interior = [&](unsigned Ri) {
    Grid &Even = Src.rank(Ri);
    Grid &Odd = Dst.rank(Ri);
    long NzLoc = Even.dims().Nz;
    long ELo = Src.rankExtLo(Ri), EHi = Src.rankExtHi(Ri);
    bool XLo = Src.sideExchanged(Ri, true);
    bool XHi = Src.sideExchanged(Ri, false);
    KernelExecutor &Exec = rankExec(Ri);
    for (int S = 1; S <= K; ++S) {
      long Lo = XLo ? ELo + S * R : 0;
      long Hi = XHi ? NzLoc - EHi - S * R : NzLoc;
      if (Hi > Lo)
        Exec.runLevelRange(Even, Odd, S, Lo, Hi, /*Pool=*/nullptr);
    }
  };

  auto Phase1 = [&](long I) {
    if (I < NumRuns)
      Src.unpackRun(static_cast<size_t>(I));
    else
      Interior(static_cast<unsigned>(I - NumRuns));
  };
  if (Pool && Pool->numThreads() > 1)
    Pool->parallelFor(0, NumRuns + NumRanks, Phase1);
  else
    for (long I = 0; I < NumRuns + NumRanks; ++I)
      Phase1(I);

  auto Boundary = [&](long RiL) {
    unsigned Ri = static_cast<unsigned>(RiL);
    Grid &Even = Src.rank(Ri);
    Grid &Odd = Dst.rank(Ri);
    long NzLoc = Even.dims().Nz;
    long ELo = Src.rankExtLo(Ri), EHi = Src.rankExtHi(Ri);
    bool XLo = Src.sideExchanged(Ri, true);
    bool XHi = Src.sideExchanged(Ri, false);
    KernelExecutor &Exec = rankExec(Ri);
    for (int S = 1; S <= K; ++S) {
      // Exact frontier at level s, and what phase 1 already covered.
      long BLo = XLo ? S * R : 0;
      long BHi = XHi ? NzLoc - S * R : NzLoc;
      long ILo = XLo ? ELo + S * R : 0;
      long IHi = XHi ? NzLoc - EHi - S * R : NzLoc;
      if (IHi <= ILo) {
        // Slab too small for an interior at this level: the whole exact
        // range is boundary work.
        if (BHi > BLo)
          Exec.runLevelRange(Even, Odd, S, BLo, BHi, /*Pool=*/nullptr);
        continue;
      }
      if (ILo > BLo)
        Exec.runLevelRange(Even, Odd, S, BLo, ILo, /*Pool=*/nullptr);
      if (BHi > IHi)
        Exec.runLevelRange(Even, Odd, S, IHi, BHi, /*Pool=*/nullptr);
    }
  };
  if (Pool && Pool->numThreads() > 1)
    Pool->parallelFor(0, NumRanks, Boundary);
  else
    for (unsigned Ri = 0; Ri < NumRanks; ++Ri)
      Boundary(Ri);
}

void DistributedStepper::runTimeSteps(DecomposedGrid &U, DecomposedGrid &V,
                                      int Steps, ThreadPool *Pool) const {
  assert(U.numRanks() == V.numRanks() && "rank count mismatch");
  assert(U.halo() == V.halo() && "halo mismatch");
  assert(U.halo() >= Spec.radius() && "halo smaller than stencil radius");
  assert(Steps >= 0 && "negative step count");

  // Provision (and backend-prepare) every rank executor on the calling
  // thread: executors and their plan/JIT caches are mutable state that
  // must never be created from inside concurrent pool tasks.
  RankExecs.resize(U.numRanks());
  for (unsigned R = 0; R < U.numRanks(); ++R)
    rankExec(R).prepare(U.rank(R));

  if (U.numRanks() == 1) {
    // Single rank: no exchange; delegate with full pool parallelism.
    rankExec(0).runTimeSteps(U.rank(0), V.rank(0), Steps, Pool);
    return;
  }

  int K = stepsPerExchange(U.halo());
  DecomposedGrid *Src = &U;
  DecomposedGrid *Dst = &V;
  int Done = 0;
  while (Done < Steps) {
    int Fused = std::min(K, Steps - Done);
    ++ExchangeRounds;
    if (Mode == ExchangeMode::Serial) {
      Src->exchangeHalos();
      runMacroSerial(*Src, *Dst, Fused, Pool);
      // Result landed back in Src.
    } else {
      Src->packHalos(Pool);
      runMacroOverlapped(*Src, *Dst, Fused, Pool);
      if (Fused % 2 != 0)
        std::swap(Src, Dst);
    }
    Done += Fused;
  }

  if (Src != &U)
    for (unsigned R = 0; R < U.numRanks(); ++R)
      U.rank(R).copyInteriorFrom(Src->rank(R));
}
