//===- codegen/DomainDecomposition.cpp - Rank decomposition ------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/DomainDecomposition.h"

#include <cassert>

using namespace ys;

DecomposedGrid::DecomposedGrid(GridDims GlobalDims, unsigned Ranks,
                               int Halo, Fold F)
    : GlobalDims(GlobalDims), Halo(Halo) {
  assert(Ranks >= 1 && "need at least one rank");
  assert(GlobalDims.Nz >= static_cast<long>(Ranks) &&
         "more ranks than z planes");
  long PerRank = (GlobalDims.Nz + Ranks - 1) / Ranks;
  ZBegin.push_back(0);
  for (unsigned R = 0; R < Ranks; ++R) {
    long End = std::min<long>(ZBegin.back() + PerRank, GlobalDims.Nz);
    ZBegin.push_back(End);
  }
  for (unsigned R = 0; R < Ranks; ++R) {
    GridDims Local{GlobalDims.Nx, GlobalDims.Ny,
                   ZBegin[R + 1] - ZBegin[R]};
    Slabs.push_back(std::make_unique<Grid>(Local, Halo, F));
  }
}

void DecomposedGrid::scatter(const Grid &Global) {
  assert(Global.dims() == GlobalDims && "global dims mismatch");
  assert(Global.halo() >= Halo && "global halo too small");
  for (unsigned R = 0; R < numRanks(); ++R) {
    Grid &Local = *Slabs[R];
    long Z0 = ZBegin[R];
    // Copy the full local range including halos; z-halo regions map to
    // neighbor interiors or the global boundary.
    for (long Z = -Halo; Z < Local.dims().Nz + Halo; ++Z)
      for (long Y = -Halo; Y < GlobalDims.Ny + Halo; ++Y)
        for (long X = -Halo; X < GlobalDims.Nx + Halo; ++X)
          Local.at(X, Y, Z) = Global.at(X, Y, Z0 + Z);
  }
}

void DecomposedGrid::gather(Grid &Global) const {
  assert(Global.dims() == GlobalDims && "global dims mismatch");
  for (unsigned R = 0; R < numRanks(); ++R) {
    const Grid &Local = *Slabs[R];
    long Z0 = ZBegin[R];
    for (long Z = 0; Z < Local.dims().Nz; ++Z)
      for (long Y = 0; Y < GlobalDims.Ny; ++Y)
        for (long X = 0; X < GlobalDims.Nx; ++X)
          Global.at(X, Y, Z0 + Z) = Local.at(X, Y, Z);
  }
}

void DecomposedGrid::exchangeHalos() {
  for (unsigned R = 0; R + 1 < numRanks(); ++R) {
    Grid &Lower = *Slabs[R];
    Grid &Upper = *Slabs[R + 1];
    long LowerNz = Lower.dims().Nz;
    for (int Layer = 0; Layer < Halo; ++Layer)
      for (long Y = -Halo; Y < GlobalDims.Ny + Halo; ++Y)
        for (long X = -Halo; X < GlobalDims.Nx + Halo; ++X) {
          // Lower's top interior -> Upper's bottom halo.
          Upper.at(X, Y, -1 - Layer) =
              Lower.at(X, Y, LowerNz - 1 - Layer);
          // Upper's bottom interior -> Lower's top halo.
          Lower.at(X, Y, LowerNz + Layer) = Upper.at(X, Y, Layer);
        }
    HaloBytes += 2ull * Halo * GlobalDims.Nx * GlobalDims.Ny * 8;
  }
}

DistributedStepper::DistributedStepper(StencilSpec Spec,
                                       KernelConfig Config)
    : Spec(std::move(Spec)), Config(Config) {
  assert(this->Spec.numInputGrids() == 1 &&
         "distributed stepping requires a single-input stencil");
}

void DistributedStepper::runTimeSteps(DecomposedGrid &U, DecomposedGrid &V,
                                      int Steps, ThreadPool *Pool) const {
  assert(U.numRanks() == V.numRanks() && "rank count mismatch");
  assert(U.halo() >= Spec.radius() && "halo smaller than stencil radius");
  KernelExecutor Exec(Spec, Config);

  DecomposedGrid *Src = &U;
  DecomposedGrid *Dst = &V;
  for (int Step = 0; Step < Steps; ++Step) {
    Src->exchangeHalos();
    auto SweepRank = [&](long R) {
      Exec.runSweep({&Src->rank(static_cast<unsigned>(R))},
                    Dst->rank(static_cast<unsigned>(R)),
                    /*Pool=*/nullptr);
    };
    if (Pool && Pool->numThreads() > 1)
      Pool->parallelFor(0, U.numRanks(), SweepRank);
    else
      for (unsigned R = 0; R < U.numRanks(); ++R)
        SweepRank(R);
    std::swap(Src, Dst);
  }

  // Land the result in U.
  if (Src != &U)
    for (unsigned R = 0; R < U.numRanks(); ++R)
      U.rank(R).copyInteriorFrom(Src->rank(R));
}
