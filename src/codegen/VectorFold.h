//===- codegen/VectorFold.h - SIMD fold selection ----------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selection of the SIMD vector fold, YASK's signature data-layout
/// transformation: a SIMD register covers an (Fx x Fy x Fz) sub-block of
/// the grid instead of a 1-D run, which reduces the number of distinct
/// vectors a stencil touches and thus in-core load pressure.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_VECTORFOLD_H
#define YS_CODEGEN_VECTORFOLD_H

#include "arch/MachineModel.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"

#include <vector>

namespace ys {

/// Fold-selection utilities.
class VectorFold {
public:
  /// All factorizations of \p VectorElems into 3-D folds.
  static std::vector<Fold> candidates(unsigned VectorElems);

  /// Number of distinct folded vectors a single stencil application
  /// touches under fold \p F — YASK's fold quality metric (lower is
  /// better; the scalar count equals the point count's bounding boxes).
  static unsigned long long touchedVectors(const StencilSpec &Spec,
                                           const Fold &F);

  /// Picks the fold minimizing touchedVectors for \p Spec on \p Machine's
  /// SIMD width; ties break toward larger X extent (unit-stride friendly).
  static Fold select(const StencilSpec &Spec, const MachineModel &Machine);
};

} // namespace ys

#endif // YS_CODEGEN_VECTORFOLD_H
