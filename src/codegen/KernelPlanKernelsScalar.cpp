//===- codegen/KernelPlanKernelsScalar.cpp - baseline plan kernels ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Baseline-ISA instantiation of the plan kernels: compiled with the
// project-wide flags only (plus -fopenmp-simd -ffp-contract=off), so it
// runs on any host and doubles as the rounding reference for the wider
// targets.  Bodies live in KernelPlanKernels.inc.
//
//===----------------------------------------------------------------------===//

#define YS_PLAN_TARGET_NS target_scalar
#include "codegen/KernelPlanKernels.inc"

namespace ys::plankernels {

const KernelTable &scalarKernels() { return target_scalar::kernels(); }

} // namespace ys::plankernels
