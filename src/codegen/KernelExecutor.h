//===- codegen/KernelExecutor.h - Stencil kernel executor --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a StencilSpec on grids, applying the same transformations the
/// YASK-generated code would contain: spatial cache blocking, folded SIMD
/// layout, thread decomposition of the outer blocked loop, and temporal
/// wavefront blocking over multiple timesteps.  The reference path is a
/// plain triple loop used as ground truth by tests and the tuner.
///
/// Semantics: one sweep computes Out(x,y,z) = sum_p Coeff_p * In_g(x+dx, ...)
/// for every interior point; halo cells provide boundary values and are
/// never written.  Multi-timestep runs treat the halo as a constant-in-time
/// Dirichlet boundary.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_KERNELEXECUTOR_H
#define YS_CODEGEN_KERNELEXECUTOR_H

#include "codegen/KernelConfig.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "support/ThreadPool.h"

#include <vector>

namespace ys {

/// Executes one stencil under a fixed kernel configuration.
class KernelExecutor {
public:
  KernelExecutor(StencilSpec Spec, KernelConfig Config);

  const StencilSpec &spec() const { return Spec; }
  const KernelConfig &config() const { return Config; }

  /// Applies one sweep: Out = stencil(Inputs).  Inputs.size() must equal
  /// spec().numInputGrids(); all grids share dims, halo >= radius, and use
  /// the configured fold.  \p Pool, when non-null and Config.Threads > 1,
  /// parallelizes the outer blocked loop.
  void runSweep(const std::vector<const Grid *> &Inputs, Grid &Out,
                ThreadPool *Pool = nullptr) const;

  /// Applies \p Steps timesteps to the single-input stencil: U <- S^Steps(U),
  /// using \p Scratch as the second buffer (same shape/halo/fold as U, halo
  /// already carrying the boundary values).  Uses the temporal wavefront
  /// path when Config.WavefrontDepth > 1.
  void runTimeSteps(Grid &U, Grid &Scratch, int Steps,
                    ThreadPool *Pool = nullptr) const;

  /// Ground-truth single sweep: unblocked, layout-agnostic triple loop.
  static void runReference(const StencilSpec &Spec,
                           const std::vector<const Grid *> &Inputs,
                           Grid &Out);

  /// Lattice updates per sweep for the given dims.
  static long lupsPerSweep(const GridDims &Dims) { return Dims.lups(); }

private:
  void sweepRange(const std::vector<const Grid *> &Inputs, Grid &Out,
                  long Z0, long Z1, long Y0, long Y1, long X0,
                  long X1) const;
  void sweepBlockedSerialZ(const std::vector<const Grid *> &Inputs,
                           Grid &Out, long Z0, long Z1) const;
  void wavefrontMacroStep(Grid *Even, Grid *Odd, int Depth,
                          ThreadPool *Pool) const;

  StencilSpec Spec;
  KernelConfig Config;
};

} // namespace ys

#endif // YS_CODEGEN_KERNELEXECUTOR_H
