//===- codegen/KernelExecutor.h - Stencil kernel executor --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a StencilSpec on grids, applying the same transformations the
/// YASK-generated code would contain: spatial cache blocking, folded SIMD
/// layout, thread decomposition of the outer blocked loop, and temporal
/// wavefront blocking over multiple timesteps.  The reference path is a
/// plain triple loop used as ground truth by tests and the tuner.
///
/// The per-range inner kernels live in a KernelPlan compiled lazily on
/// first use and cached while the grid geometry stays the same, so
/// repeated sweeps (tuner warm-up + timed trials, multi-step runs) reuse
/// one plan and the steady-state hot path performs no allocation.
///
/// Semantics: one sweep computes Out(x,y,z) = sum_p Coeff_p * In_g(x+dx, ...)
/// for every interior point; halo cells provide boundary values and are
/// never written.  Multi-timestep runs treat the halo as a constant-in-time
/// Dirichlet boundary.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_KERNELEXECUTOR_H
#define YS_CODEGEN_KERNELEXECUTOR_H

#include "codegen/JitCompiler.h"
#include "codegen/KernelConfig.h"
#include "codegen/KernelPlan.h"
#include "codegen/SourceEmitter.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "support/ThreadPool.h"

#include <memory>
#include <vector>

namespace ys {

/// Executes one stencil under a fixed kernel configuration.
///
/// Not copyable (it owns its cached KernelPlan).  An executor may be
/// driven from one thread at a time; the parallelism is internal (the
/// pool passed to the run methods).
class KernelExecutor {
public:
  KernelExecutor(StencilSpec Spec, KernelConfig Config);

  const StencilSpec &spec() const { return Spec; }
  const KernelConfig &config() const { return Config; }

  /// Applies one sweep: Out = stencil(Inputs).  Inputs.size() must equal
  /// spec().numInputGrids(); all grids share dims, halo >= radius, and use
  /// the configured fold.  \p Pool, when non-null and Config.Threads > 1,
  /// parallelizes the outer blocked loop.
  void runSweep(const std::vector<const Grid *> &Inputs, Grid &Out,
                ThreadPool *Pool = nullptr) const;

  /// Pointer-array overload of runSweep for callers that must not
  /// allocate (the steady-state stepping loop, benchmarks).
  void runSweep(const Grid *const *Inputs, unsigned NumInputs, Grid &Out,
                ThreadPool *Pool = nullptr) const;

  /// Applies \p Steps timesteps to the single-input stencil: U <- S^Steps(U),
  /// using \p Scratch as the second buffer (same shape/halo/fold as U, halo
  /// already carrying the boundary values).  Uses the temporal wavefront
  /// path when Config.WavefrontDepth > 1.
  void runTimeSteps(Grid &U, Grid &Scratch, int Steps,
                    ThreadPool *Pool = nullptr) const;

  /// Computes time level \p S of the two-buffer parity scheme (level s
  /// lives in \p Even when s is even; level 0 == Even) over z in
  /// [Z0, Z1) — the same level-slab primitive the temporal macro steps
  /// drive, exposed for the distributed stepper's interior/boundary
  /// trapezoid split.  Call prepare() on the driving thread first when
  /// invoking this from concurrent pool tasks.
  void runLevelRange(Grid &Even, Grid &Odd, int S, long Z0, long Z1,
                     ThreadPool *Pool = nullptr) const;

  /// Pre-compiles the backend (plan or JIT) for \p Out's geometry on the
  /// calling thread, so later runs from pool tasks only read the cached
  /// state.  Idempotent and cheap once built.
  void prepare(const Grid &Out) const { prepareBackend(Out); }

  /// Ground-truth single sweep: unblocked, layout-agnostic triple loop.
  static void runReference(const StencilSpec &Spec,
                           const std::vector<const Grid *> &Inputs,
                           Grid &Out);

  /// Lattice updates per sweep for the given dims.
  static long lupsPerSweep(const GridDims &Dims) { return Dims.lups(); }

  /// Times the cached kernel plan has been (re)built.  A full
  /// runTimeSteps() on one geometry costs exactly one build — this is the
  /// regression handle for the "plan per tile" allocation bug.
  unsigned planBuilds() const { return PlanBuildCount; }

  /// SIMD target the cached plan dispatches to; before the first run,
  /// the target a new plan would get (selectSimdTarget()).
  SimdTarget planTarget() const {
    return Plan ? Plan->target() : selectSimdTarget();
  }

  /// The cached plan, or null before the first run.  Exposed for tests
  /// and benchmarks that inspect plan properties (e.g. unit-stride point
  /// counts).
  const KernelPlan *plan() const { return Plan.get(); }

  /// \name JIT backend.
  ///
  /// Sweeps dispatch either through the in-process KernelPlan or through
  /// a runtime-compiled range kernel (codegen/JitCompiler.h).  The JIT
  /// kernel bakes in only (stencil, fold, geometry); blocking, threading,
  /// and wavefront scheduling stay in this class, so one compiled object
  /// serves every (block, threads, wavefront) variant.
  /// @{

  /// Backend sweeps are requested to dispatch through; initialized from
  /// YS_BACKEND (default plan).
  KernelBackend backend() const { return Backend; }

  /// Overrides the requested backend; takes effect on the next run and
  /// clears any earlier jit-unavailable fallback decision.
  void setBackend(KernelBackend B);

  /// Backend the current sweeps actually execute through: Jit only once
  /// a compiled kernel is bound; Plan before the first run and after a
  /// compile failure forced the fallback.
  KernelBackend activeBackend() const {
    return JitFn ? KernelBackend::Jit : KernelBackend::Plan;
  }

  /// Times a JIT kernel was compiled/loaded for this executor; like
  /// planBuilds(), a full runTimeSteps() on one geometry costs one build.
  unsigned jitBuilds() const { return JitBuildCount; }

  /// @}

private:
  /// Returns the cached plan, (re)compiling it when absent, when \p Out's
  /// geometry changed, or when the selected SIMD target changed.
  KernelPlan &ensurePlan(const Grid &Out) const;

  /// Ensures a JIT range kernel for \p Out's geometry is loaded; false
  /// (with a one-time warning) when compilation is unavailable, after
  /// which this executor stays on the plan path.
  bool ensureJit(const Grid &Out) const;

  /// Prepares whichever backend the next sweeps run through (compiling
  /// the plan or the JIT object as needed).
  void prepareBackend(const Grid &Out) const;

  /// Binds the grid base pointers on the prepared backend.
  void bindBuffers(const Grid *const *Inputs, unsigned NumInputs,
                   Grid &Out) const;

  /// Thin dispatcher into the bound backend for one rectangular range.
  void sweepRange(long Z0, long Z1, long Y0, long Y1, long X0,
                  long X1) const;
  void sweepBlockedSerialZ(const GridDims &Dims, long Z0, long Z1) const;

  /// Computes time level \p S over z in [Z0, Z1) of the two-buffer parity
  /// scheme (level s lives in Even when s is even), decomposing the slab
  /// over (z,y) tiles when a pool is available.  Shared by every temporal
  /// macro step.
  void runLevelSlab(Grid *Even, Grid *Odd, int S, long Z0, long Z1,
                    const BlockSize &B, ThreadPool *Pool,
                    unsigned Threads) const;

  /// One macro step of Depth fused sweeps under the configured temporal
  /// schedule (wavefront frontier train / two-phase diamond tiles /
  /// per-plane deep-temporal pipeline).
  void wavefrontMacroStep(Grid *Even, Grid *Odd, int Depth,
                          ThreadPool *Pool) const;
  void diamondMacroStep(Grid *Even, Grid *Odd, int Depth,
                        ThreadPool *Pool) const;
  void deepTemporalMacroStep(Grid *Even, Grid *Odd, int Depth,
                             ThreadPool *Pool) const;

  StencilSpec Spec;
  KernelConfig Config;
  /// Geometry-keyed compiled plan.  Mutable: plans are a cache, and all
  /// public entry points stay const.  Rebinding/rebuilding is only done
  /// by the (single) driving thread, never by pool workers.
  mutable std::unique_ptr<KernelPlan> Plan;
  mutable unsigned PlanBuildCount = 0;

  /// JIT backend state, same caching discipline as the plan: rebuilt on
  /// geometry change by the driving thread, read-only for pool workers.
  KernelBackend Backend = selectKernelBackend();
  mutable JitKernel JitK;             ///< Keeps the .so mapped.
  mutable JitRangeKernelFn JitFn = nullptr; ///< Non-null = jit active.
  mutable JitGeometry JitGeo;         ///< Geometry JitFn was built for.
  mutable bool JitFailed = false;     ///< Compile failed; stay on plans.
  mutable unsigned JitBuildCount = 0;
  /// Bound base pointers (preallocated: the steady-state hot path must
  /// not allocate).
  mutable std::vector<const double *> JitIns;
  mutable double *JitOut = nullptr;
};

} // namespace ys

#endif // YS_CODEGEN_KERNELEXECUTOR_H
