//===- codegen/KernelPlan.h - Compiled stencil kernel plan -------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A KernelPlan is the compiled form of one (StencilSpec, KernelConfig,
/// grid geometry) triple: flattened coefficient and neighbor-offset
/// tables, per-input base-pointer slots, and a pointer to the fold-aware
/// inner kernels of one SIMD dispatch target.  The executor builds a plan
/// once per geometry and reuses it for every cache-block range of every
/// sweep — the per-range hot path is table lookups and the kernel call,
/// with no allocation and no per-cell layout arithmetic.
///
/// For folded storage the plan exploits that fold-linear neighbor offsets
/// are constant per (point, lane) across all fold blocks
/// (Grid::foldNeighborOffset), so a full block updates as E independent
/// SIMD lanes; points whose lane offsets are consecutive are flagged for
/// contiguous vector loads.
///
/// SIMD dispatch: kernels are compiled once per instruction-set target
/// (scalar baseline, AVX2, AVX-512 where the compiler supports them) and
/// selected at runtime from CPU capabilities, overridable with the
/// `YS_SIMD` environment variable (`scalar` / `avx2` / `avx512`) for
/// reproducible measurements.  All targets produce bit-identical results:
/// the kernel translation units disable FMA contraction and accumulate in
/// spec point order.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_KERNELPLAN_H
#define YS_CODEGEN_KERNELPLAN_H

#include "codegen/KernelConfig.h"
#include "codegen/KernelPlanKernels.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"

#include <optional>
#include <string>
#include <vector>

namespace ys {

/// Instruction-set targets the plan kernels can dispatch to at runtime.
enum class SimdTarget { Scalar, AVX2, AVX512 };

/// Lower-case target name ("scalar", "avx2", "avx512"); also the accepted
/// YS_SIMD spellings.
const char *simdTargetName(SimdTarget T);

/// Parses a YS_SIMD value; empty optional for unknown names.
std::optional<SimdTarget> parseSimdTarget(const std::string &Name);

/// Vector width in doubles a target models (scalar=1, avx2=4, avx512=8).
unsigned simdTargetDoubles(SimdTarget T);

/// Targets both compiled into this binary and supported by the CPU, in
/// ascending width order.  Scalar is always available.
const std::vector<SimdTarget> &availableSimdTargets();

/// Widest available target.
SimdTarget bestSimdTarget();

/// Dispatch target for new plans: the YS_SIMD override when it names an
/// available target (otherwise a one-time stderr warning), else the
/// widest available target.
SimdTarget selectSimdTarget();

/// One compiled kernel plan.  Not copyable: the dispatch tables point
/// into plan-owned storage.
class KernelPlan {
public:
  /// Compiles the plan for \p Spec under \p Config on the geometry of
  /// \p Proto (dims, halo, fold, padding), dispatching to \p Target.
  KernelPlan(const StencilSpec &Spec, const KernelConfig &Config,
             const Grid &Proto, SimdTarget Target);

  KernelPlan(const KernelPlan &) = delete;
  KernelPlan &operator=(const KernelPlan &) = delete;

  SimdTarget target() const { return Target; }

  /// True when \p G has exactly the geometry the plan was compiled for.
  bool matchesGeometry(const Grid &G) const;

  /// Rebinds the per-point input base pointers and the output base to
  /// concrete grids (all matching the plan geometry).  Pure pointer
  /// copies into preallocated slots: no allocation.  \p Inputs holds
  /// spec().numInputGrids() grids indexed by StencilPoint::GridIdx.
  void bind(const Grid *const *Inputs, unsigned NumInputs, Grid &Out);

  /// Computes the interior range [Z0,Z1) x [Y0,Y1) x [X0,X1) of the bound
  /// output.  Read-only on the plan: safe to call concurrently on
  /// disjoint ranges after one bind().
  void runRange(long Z0, long Z1, long Y0, long Y1, long X0,
                long X1) const;

  /// Stencil points whose folded lane offsets are consecutive (served by
  /// contiguous vector loads rather than an offset table).
  unsigned numUnitStridePoints() const;

private:
  SimdTarget Target;
  const plankernels::KernelTable *Kernels = nullptr;
  plankernels::PlanTables Tables;

  // Geometry key (matchesGeometry).
  GridDims Dims;
  int Halo = 0;
  Fold F;
  long PadX = 0, PadY = 0, PadZ = 0;

  // Backing storage for the table pointers.
  std::vector<double> Coeff;
  std::vector<long> ScalarOff;
  std::vector<long> LaneOff;
  std::vector<long> Lane0Off;
  std::vector<unsigned char> UnitStride;
  std::vector<int> LaneX, LaneY, LaneZ;
  std::vector<unsigned> PointGrid;
  std::vector<const double *> PointBase;
};

} // namespace ys

#endif // YS_CODEGEN_KERNELPLAN_H
