//===- codegen/KernelConfig.h - Kernel tuning parameters ---------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuning-parameter bundle of one generated stencil kernel — the search
/// space YaskSite's analytic model prunes and YASK's auto-tuner sweeps:
/// SIMD vector fold, cache-block sizes, temporal wavefront depth, thread
/// count, and streaming-store selection.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_KERNELCONFIG_H
#define YS_CODEGEN_KERNELCONFIG_H

#include "stencil/Grid.h"

#include <optional>
#include <string>

namespace ys {

/// How multiple timesteps are scheduled over the grid.
///
///  * Sweep        — no temporal blocking: one full spatial sweep per
///                   timestep (requires WavefrontDepth == 1).
///  * Wavefront    — temporal wavefront along z: a frontier per fused time
///                   level, spaced >= radius planes apart (Malas et al.
///                   style shared-cache wavefront).
///  * Diamond      — two-phase trapezoid/diamond tiling along z: disjoint
///                   downward-sloping tiles first, then the boundary
///                   diamonds between them; the cache window is one tile
///                   wide instead of one frontier train long.
///  * DeepTemporal — minimal-skew per-plane pipeline (AN5D-style high
///                   degree): every wave advances all fused levels by one
///                   plane, so the window stays near Depth*radius planes
///                   and supports much higher depths.
enum class Schedule { Sweep, Wavefront, Diamond, DeepTemporal };

/// "sweep" | "wavefront" | "diamond" | "deep-temporal".
const char *scheduleName(Schedule S);
std::optional<Schedule> parseSchedule(const std::string &Name);

/// Cache-block extents in grid points; 0 means "unblocked" (full extent).
struct BlockSize {
  long X = 0;
  long Y = 0;
  long Z = 0;

  bool isUnblocked() const { return X == 0 && Y == 0 && Z == 0; }
  bool operator==(const BlockSize &O) const {
    return X == O.X && Y == O.Y && Z == O.Z;
  }
  std::string str() const;

  /// Resolves zero entries against concrete grid dims and clamps extents
  /// larger than the domain to the full extent.  Negative extents are
  /// invalid (see KernelConfig::validate()); they are clamped like zero
  /// here so a release build iterates the full extent instead of
  /// mis-iterating.
  BlockSize resolved(const GridDims &Dims) const {
    assert(X >= 0 && Y >= 0 && Z >= 0 && "negative block extent");
    BlockSize B;
    B.X = X > 0 ? std::min(X, Dims.Nx) : Dims.Nx;
    B.Y = Y > 0 ? std::min(Y, Dims.Ny) : Dims.Ny;
    B.Z = Z > 0 ? std::min(Z, Dims.Nz) : Dims.Nz;
    return B;
  }
};

/// Complete kernel configuration.
struct KernelConfig {
  Fold VectorFold;        ///< Storage/SIMD fold; {1,1,1} == scalar layout.
  BlockSize Block;        ///< Spatial cache blocking.
  int WavefrontDepth = 1; ///< Timesteps fused per temporal pass (1 == off).
  /// Temporal schedule applied when WavefrontDepth > 1.  The default is
  /// Wavefront so every pre-schedule config (wf=N alone) keeps its meaning;
  /// at depth 1 all temporal schedules degrade to plain sweeps.
  Schedule Sched = Schedule::Wavefront;
  unsigned Threads = 1;   ///< Worker threads for the outer decomposition.
  bool StreamingStores = false; ///< Non-temporal stores (model-visible).
  /// Contiguous z-slab ranks the domain is decomposed into (1 ==
  /// monolithic).  Ranks > 1 routes execution through DistributedStepper
  /// with deep halos of WavefrontDepth * radius planes and adds the
  /// communication term to the ECM prediction.
  unsigned Ranks = 1;

  std::string str() const;

  /// Returns an empty string when the configuration is executable, else a
  /// clear diagnostic: negative block extents, non-positive fold
  /// components, WavefrontDepth < 1, Sched == Sweep with a temporal depth,
  /// or Threads == 0.  Block extents larger than the domain (or zero) are
  /// legal and clamp/expand via BlockSize::resolved(); they are NOT
  /// errors.  Callers that accept external configurations (driver,
  /// verification harness, tuner frontends) must check this before
  /// constructing a KernelExecutor.
  std::string validate() const;

  /// True when this config fuses timesteps (any non-sweep schedule at
  /// depth > 1); the executor, trace replay, and ECM model all branch on
  /// this single predicate.
  bool isTemporal() const {
    return WavefrontDepth > 1 && Sched != Schedule::Sweep;
  }

  bool operator==(const KernelConfig &O) const {
    return VectorFold == O.VectorFold && Block == O.Block &&
           WavefrontDepth == O.WavefrontDepth && Sched == O.Sched &&
           Threads == O.Threads && StreamingStores == O.StreamingStores &&
           Ranks == O.Ranks;
  }
};

} // namespace ys

#endif // YS_CODEGEN_KERNELCONFIG_H
