//===- codegen/KernelPlan.cpp - Compiled stencil kernel plan ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelPlan.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace ys;
using plankernels::KernelTable;

const char *ys::simdTargetName(SimdTarget T) {
  switch (T) {
  case SimdTarget::Scalar:
    return "scalar";
  case SimdTarget::AVX2:
    return "avx2";
  case SimdTarget::AVX512:
    return "avx512";
  }
  return "scalar";
}

std::optional<SimdTarget> ys::parseSimdTarget(const std::string &Name) {
  if (Name == "scalar")
    return SimdTarget::Scalar;
  if (Name == "avx2")
    return SimdTarget::AVX2;
  if (Name == "avx512" || Name == "avx512f")
    return SimdTarget::AVX512;
  return std::nullopt;
}

unsigned ys::simdTargetDoubles(SimdTarget T) {
  switch (T) {
  case SimdTarget::Scalar:
    return 1;
  case SimdTarget::AVX2:
    return 4;
  case SimdTarget::AVX512:
    return 8;
  }
  return 1;
}

static bool compiledIn(SimdTarget T) {
  switch (T) {
  case SimdTarget::Scalar:
    return true;
  case SimdTarget::AVX2:
#ifdef YS_PLAN_HAVE_AVX2
    return true;
#else
    return false;
#endif
  case SimdTarget::AVX512:
#ifdef YS_PLAN_HAVE_AVX512
    return true;
#else
    return false;
#endif
  }
  return false;
}

static bool cpuSupports(SimdTarget T) {
#if defined(__x86_64__) || defined(__i386__)
  switch (T) {
  case SimdTarget::Scalar:
    return true;
  case SimdTarget::AVX2:
    return __builtin_cpu_supports("avx2");
  case SimdTarget::AVX512:
    return __builtin_cpu_supports("avx512f");
  }
#endif
  return T == SimdTarget::Scalar;
}

const std::vector<SimdTarget> &ys::availableSimdTargets() {
  static const std::vector<SimdTarget> Targets = [] {
    std::vector<SimdTarget> V{SimdTarget::Scalar};
    for (SimdTarget T : {SimdTarget::AVX2, SimdTarget::AVX512})
      if (compiledIn(T) && cpuSupports(T))
        V.push_back(T);
    return V;
  }();
  return Targets;
}

SimdTarget ys::bestSimdTarget() { return availableSimdTargets().back(); }

SimdTarget ys::selectSimdTarget() {
  const char *Env = std::getenv("YS_SIMD");
  if (!Env || !*Env)
    return bestSimdTarget();
  std::optional<SimdTarget> T = parseSimdTarget(Env);
  if (T)
    for (SimdTarget A : availableSimdTargets())
      if (A == *T)
        return *T;
  static std::once_flag WarnOnce;
  std::call_once(WarnOnce, [&] {
    std::fprintf(stderr, "ys: YS_SIMD=%s is %s; using %s\n", Env,
                 T ? "not available on this host" : "not a known target",
                 simdTargetName(bestSimdTarget()));
  });
  return bestSimdTarget();
}

static const KernelTable &tableFor(SimdTarget T) {
#ifdef YS_PLAN_HAVE_AVX512
  if (T == SimdTarget::AVX512)
    return plankernels::avx512Kernels();
#endif
#ifdef YS_PLAN_HAVE_AVX2
  if (T == SimdTarget::AVX2)
    return plankernels::avx2Kernels();
#endif
  (void)T;
  return plankernels::scalarKernels();
}

KernelPlan::KernelPlan(const StencilSpec &Spec, const KernelConfig &Config,
                       const Grid &Proto, SimdTarget Target)
    : Target(Target), Kernels(&tableFor(Target)), Dims(Proto.dims()),
      Halo(Proto.halo()), F(Proto.fold()), PadX(Proto.padX()),
      PadY(Proto.padY()), PadZ(Proto.padZ()) {
  assert(F == Config.VectorFold && "grid fold != configured fold");
  (void)Config;

  const std::vector<StencilPoint> &Points = Spec.points();
  const unsigned NumPoints = Spec.numPoints();
  const int E = F.elems();

  Coeff.resize(NumPoints);
  ScalarOff.resize(NumPoints);
  LaneOff.resize(static_cast<size_t>(NumPoints) * E);
  Lane0Off.resize(NumPoints);
  UnitStride.resize(NumPoints);
  PointGrid.resize(NumPoints);
  PointBase.assign(NumPoints, nullptr);
  LaneX.resize(E);
  LaneY.resize(E);
  LaneZ.resize(E);

  for (int L = 0; L < E; ++L) {
    int Ix, Iy, Iz;
    Proto.laneCoords(L, Ix, Iy, Iz);
    LaneX[L] = Ix;
    LaneY[L] = Iy;
    LaneZ[L] = Iz;
  }

  for (unsigned P = 0; P < NumPoints; ++P) {
    const StencilPoint &Pt = Points[P];
    Coeff[P] = Pt.Coeff;
    PointGrid[P] = Pt.GridIdx;
    ScalarOff[P] = Proto.hasScalarLayout()
                       ? Proto.scalarNeighborOffset(Pt.Dx, Pt.Dy, Pt.Dz)
                       : 0;
    bool Unit = true;
    for (int L = 0; L < E; ++L) {
      long Off = Proto.foldNeighborOffset(L, Pt.Dx, Pt.Dy, Pt.Dz);
      LaneOff[static_cast<size_t>(P) * E + L] = Off;
      if (L == 0)
        Lane0Off[P] = Off;
      Unit &= Off == Lane0Off[P] + L;
    }
    UnitStride[P] = Unit ? 1 : 0;
  }

  Tables.PadX = PadX;
  Tables.PadY = PadY;
  Tables.NVx = Proto.numVecX();
  Tables.NVy = Proto.numVecY();
  Tables.Halo = Halo;
  Tables.Fx = F.X;
  Tables.Fy = F.Y;
  Tables.Fz = F.Z;
  Tables.E = E;
  Tables.ScalarLayout = Proto.hasScalarLayout();
  Tables.NumPoints = NumPoints;
  Tables.Coeff = Coeff.data();
  Tables.ScalarOff = ScalarOff.data();
  Tables.LaneOff = LaneOff.data();
  Tables.Lane0Off = Lane0Off.data();
  Tables.UnitStride = UnitStride.data();
  Tables.LaneX = LaneX.data();
  Tables.LaneY = LaneY.data();
  Tables.LaneZ = LaneZ.data();
  Tables.PointBase = PointBase.data();
}

bool KernelPlan::matchesGeometry(const Grid &G) const {
  return G.dims() == Dims && G.halo() == Halo && G.fold() == F &&
         G.padX() == PadX && G.padY() == PadY && G.padZ() == PadZ;
}

void KernelPlan::bind(const Grid *const *Inputs, unsigned NumInputs,
                      Grid &Out) {
  assert(matchesGeometry(Out) && "output geometry != plan geometry");
  (void)NumInputs;
  for (unsigned P = 0, N = Tables.NumPoints; P < N; ++P) {
    assert(PointGrid[P] < NumInputs && "missing input grid");
    const Grid *In = Inputs[PointGrid[P]];
    assert(matchesGeometry(*In) && "input geometry != plan geometry");
    assert(In != &Out && "output grid may not alias an input");
    PointBase[P] = In->data();
  }
  Tables.OutBase = Out.data();
}

void KernelPlan::runRange(long Z0, long Z1, long Y0, long Y1, long X0,
                          long X1) const {
  assert(Tables.OutBase && "runRange() before bind()");
  if (Z1 <= Z0 || Y1 <= Y0 || X1 <= X0)
    return;
  if (Tables.ScalarLayout)
    Kernels->SweepScalar(Tables, Z0, Z1, Y0, Y1, X0, X1);
  else
    Kernels->SweepFolded(Tables, Z0, Z1, Y0, Y1, X0, X1);
}

unsigned KernelPlan::numUnitStridePoints() const {
  unsigned N = 0;
  for (unsigned char U : UnitStride)
    N += U;
  return N;
}
