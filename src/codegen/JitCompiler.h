//===- codegen/JitCompiler.h - Runtime JIT of emitted kernels ----*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime JIT backend: compiles SourceEmitter-generated translation units
/// with the system compiler (the VexCL `generator::build_kernel`
/// compile-and-dlopen idiom), caches the shared objects in a
/// content-addressed store, and hands back callable kernel symbols.
///
/// The flags match the in-process plan-kernel TUs (`-O3 -ffp-contract=off
/// -fopenmp-simd`), so a JITted kernel is bit-identical to the KernelPlan
/// path and the ReferenceInterpreter — the verifier enforces this.
///
/// Cache layout: one `ys-jit-<key>.so` (plus the `.cpp` it was built from
/// and a `.log` with the compiler diagnostics) per distinct source, in
/// `$YS_JIT_CACHE`, or a `yasksite-jit/` directory next to the
/// `$YS_TUNE_CACHE` file, or the system temp directory.  The key is the
/// FNV-1a fingerprint (TuningCache::fingerprintRaw) of the source text,
/// the compiler's `--version` line, and the flag list — touching any of
/// them invalidates exactly the affected objects.  Writes go through a
/// temp file + atomic rename, so concurrent processes race benignly and a
/// killed run cannot leave a truncated object behind.
///
/// Backend selection: `YS_BACKEND=jit|plan` (default plan) picks which
/// path KernelExecutor dispatches sweeps through; `YS_CXX` overrides the
/// probed compiler (c++ / g++ / clang++ / cc).  When no compiler works,
/// the executor falls back to plans with a one-time warning.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_JITCOMPILER_H
#define YS_CODEGEN_JITCOMPILER_H

#include "support/Error.h"

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ys {

/// Which execution path KernelExecutor dispatches sweeps through.
enum class KernelBackend {
  Plan, ///< In-process precompiled kernel plans (the default).
  Jit,  ///< Runtime-compiled shared objects (falls back to Plan when no
        ///< compiler is available).
};

/// "plan" / "jit".
const char *kernelBackendName(KernelBackend B);

/// Parses a backend name (case-insensitive); nullopt when unrecognized.
std::optional<KernelBackend> parseKernelBackend(const std::string &Name);

/// Backend selected by the YS_BACKEND environment variable, defaulting to
/// Plan.  An unrecognized value warns once on stderr and selects Plan.
KernelBackend selectKernelBackend();

/// Signature of the range kernel emitted by
/// SourceEmitter::emitJitTranslationUnit: one rectangular interior range
/// of one sweep over the baked-in geometry.
using JitRangeKernelFn = void (*)(const double *const *Ins, double *Out,
                                  long Z0, long Z1, long Y0, long Y1,
                                  long X0, long X1);

/// A resolved symbol in a loaded shared object.  Copyable; the dlopen
/// handle stays alive while any copy does.
class JitKernel {
public:
  JitKernel() = default;
  JitKernel(std::shared_ptr<void> Handle, void *Sym)
      : Handle(std::move(Handle)), Sym(Sym) {}

  explicit operator bool() const { return Sym != nullptr; }

  /// The symbol as a function pointer of the caller's choosing.
  template <typename Fn> Fn fn() const {
    return reinterpret_cast<Fn>(Sym);
  }
  JitRangeKernelFn rangeKernel() const { return fn<JitRangeKernelFn>(); }

private:
  std::shared_ptr<void> Handle; ///< Keeps the .so mapped.
  void *Sym = nullptr;
};

/// Counters for the cache-behavior contract: a warm cache must serve a
/// repeat build with zero compiler invocations.
struct JitStats {
  unsigned Invocations = 0; ///< Compiler processes spawned.
  unsigned MemoryHits = 0;  ///< Served from the in-process handle map.
  unsigned DiskHits = 0;    ///< dlopen of an existing cached object.
  unsigned Failures = 0;    ///< Failed compiles (missing compiler, bad TU).
};

/// Compiles C++ source strings to shared objects and resolves symbols,
/// with a content-addressed on-disk store and an in-process handle map.
/// Thread-safe; one instance may serve many executors.
class JitCompiler {
public:
  struct Config {
    /// Compiler command; empty means "probe" (YS_CXX, then c++/g++/
    /// clang++/cc).
    std::string Compiler;
    /// Flags every build uses; part of the cache key.  The default
    /// mirrors the in-process plan kernels.
    std::vector<std::string> Flags = {"-O3", "-ffp-contract=off",
                                      "-fopenmp-simd", "-fPIC", "-shared"};
    /// Cache directory; empty means defaultCacheDir().
    std::string CacheDir;
  };

  JitCompiler() : JitCompiler(Config()) {}
  explicit JitCompiler(Config C);

  /// True when a working compiler was found (its --version ran).
  bool available() const { return !CompilerVersion.empty(); }

  const std::string &compiler() const { return Cfg.Compiler; }
  const std::string &compilerVersion() const { return CompilerVersion; }
  const std::string &cacheDir() const { return Cfg.CacheDir; }

  /// Content-addressed cache key of \p Source under this compiler +
  /// flag configuration (16 hex digits).
  std::string fingerprint(const std::string &Source) const;

  /// Compiles \p Source (or serves it from the cache) and resolves
  /// \p Symbol.  Serialized internally; safe from any thread.
  Expected<JitKernel> compile(const std::string &Source,
                              const std::string &Symbol);

  JitStats stats() const;
  void resetStats();

  /// \name Environment defaults.
  /// @{

  /// $YS_CXX when set, else the first of c++ / g++ / clang++ / cc whose
  /// --version runs; "" when none works.
  static std::string detectCompiler();

  /// $YS_JIT_CACHE when set; else "yasksite-jit" next to the
  /// $YS_TUNE_CACHE file; else "<tmp>/yasksite-jit-<uid>".
  static std::string defaultCacheDir();

  /// @}

private:
  std::string soPath(const std::string &Key) const;
  Expected<JitKernel> loadObject(const std::string &SoPath,
                                 const std::string &Symbol,
                                 const std::string &Key);

  Config Cfg;
  std::string CompilerVersion; ///< First --version line; "" = unavailable.

  mutable std::mutex Mutex;
  /// Key -> loaded object, so repeat compiles of the same source don't
  /// even touch the filesystem.
  std::map<std::string, std::shared_ptr<void>> Handles;
  JitStats Stats;
};

/// The process-wide JIT runtime KernelExecutor uses: a JitCompiler
/// configured from the environment on first use.
class JitRuntime {
public:
  /// The shared compiler instance (created on first call).
  static JitCompiler &instance();

  /// Replaces the shared instance with one built from \p C — for tests
  /// that need a private cache directory or a deliberately broken
  /// compiler.  Passing a default-constructed Config restores the
  /// environment-derived setup.
  static void configure(JitCompiler::Config C);
};

} // namespace ys

#endif // YS_CODEGEN_JITCOMPILER_H
