//===- codegen/VectorFold.cpp - SIMD fold selection ------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/VectorFold.h"

#include <set>
#include <tuple>

using namespace ys;

std::vector<Fold> VectorFold::candidates(unsigned VectorElems) {
  std::vector<Fold> Result;
  for (unsigned X = 1; X <= VectorElems; ++X) {
    if (VectorElems % X != 0)
      continue;
    unsigned YZ = VectorElems / X;
    for (unsigned Y = 1; Y <= YZ; ++Y) {
      if (YZ % Y != 0)
        continue;
      Fold F;
      F.X = static_cast<int>(X);
      F.Y = static_cast<int>(Y);
      F.Z = static_cast<int>(YZ / Y);
      Result.push_back(F);
    }
  }
  return Result;
}

static long floorDiv(long A, long B) {
  long Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

unsigned long long VectorFold::touchedVectors(const StencilSpec &Spec,
                                              const Fold &F) {
  // One output vector covers the fold block at the origin.  Each stencil
  // point shifts that block; count the distinct fold blocks covering the
  // union of all shifted blocks.
  std::set<std::tuple<unsigned, long, long, long>> Blocks;
  for (const StencilPoint &P : Spec.points()) {
    long X0 = floorDiv(P.Dx, F.X), X1 = floorDiv(P.Dx + F.X - 1, F.X);
    long Y0 = floorDiv(P.Dy, F.Y), Y1 = floorDiv(P.Dy + F.Y - 1, F.Y);
    long Z0 = floorDiv(P.Dz, F.Z), Z1 = floorDiv(P.Dz + F.Z - 1, F.Z);
    for (long Bz = Z0; Bz <= Z1; ++Bz)
      for (long By = Y0; By <= Y1; ++By)
        for (long Bx = X0; Bx <= X1; ++Bx)
          Blocks.insert({P.GridIdx, Bx, By, Bz});
  }
  return Blocks.size();
}

Fold VectorFold::select(const StencilSpec &Spec,
                        const MachineModel &Machine) {
  unsigned V = Machine.Core.simdDoubles();
  Fold Best;
  unsigned long long BestScore = ~0ull;
  for (const Fold &F : candidates(V)) {
    // 2-D problems cannot fold in z; 1-D problems only in x.
    if (Spec.is1D() && (F.Y > 1 || F.Z > 1))
      continue;
    if (Spec.is2D() && F.Z > 1)
      continue;
    unsigned long long Score = touchedVectors(Spec, F);
    bool Better = Score < BestScore ||
                  (Score == BestScore && F.X > Best.X) ||
                  (Score == BestScore && F.X == Best.X && F.Y > Best.Y);
    if (Better) {
      Best = F;
      BestScore = Score;
    }
  }
  if (BestScore == ~0ull) {
    // Fall back to a 1-D fold along x.
    Best.X = static_cast<int>(V);
    Best.Y = Best.Z = 1;
  }
  return Best;
}
