//===- codegen/SourceEmitter.cpp - YASK-style C++ emission -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/SourceEmitter.h"

#include "support/StringUtils.h"

using namespace ys;

static std::string indexArg(const char *Axis, int D) {
  if (D == 0)
    return Axis;
  return format("%s %c %d", Axis, D > 0 ? '+' : '-', D > 0 ? D : -D);
}

std::string SourceEmitter::emitExpression(const StencilSpec &Spec) {
  std::string Out;
  bool First = true;
  for (const StencilPoint &P : Spec.points()) {
    std::string Term;
    if (P.Coeff != 1.0)
      Term = trimmedDouble(P.Coeff, 9) + " * ";
    Term += format("u%u[IDX3(%s, %s, %s)]", P.GridIdx,
                   indexArg("x", P.Dx).c_str(), indexArg("y", P.Dy).c_str(),
                   indexArg("z", P.Dz).c_str());
    if (!First)
      Out += "\n        + ";
    Out += Term;
    First = false;
  }
  return Out;
}

std::string SourceEmitter::emitKernel(const StencilSpec &Spec,
                                      const KernelConfig &Config,
                                      const Options &Opts) {
  std::string Name = Opts.FunctionName.empty()
                         ? "kernel_" + Spec.name()
                         : Opts.FunctionName;
  for (char &C : Name)
    if (C == '-')
      C = '_';

  std::string Restrict = Opts.EmitRestrict ? " __restrict" : "";
  std::string Src;

  // Signature: one const pointer per input grid plus the output.
  std::string Params;
  for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
    Params += format("const double *%s u%u, ", Restrict.c_str(), G);
  Params += format("double *%s out,\n    long Nx, long Ny, long Nz, "
                   "long PadX, long PadY",
                   Restrict.c_str());
  Src += format("void %s(%s) {\n", Name.c_str(), Params.c_str());

  bool Blocked = !Config.Block.isUnblocked();
  std::string Indent = "  ";

  if (Opts.EmitOpenMP)
    Src += Indent + "#pragma omp parallel for schedule(static)" +
           std::string(Blocked ? " collapse(2)" : "") + "\n";

  if (Blocked) {
    long Bx = Config.Block.X, By = Config.Block.Y, Bz = Config.Block.Z;
    Src += Indent + format("for (long zb = 0; zb < Nz; zb += %ld)\n",
                           Bz > 0 ? Bz : 1);
    Src += Indent + format("  for (long yb = 0; yb < Ny; yb += %ld)\n",
                           By > 0 ? By : 1);
    Src += Indent +
           format("    for (long xb = 0; xb < Nx; xb += %ld) {\n",
                  Bx > 0 ? Bx : 1);
    Src += Indent + format("      long ze = std::min(zb + %ld, Nz);\n",
                           Bz > 0 ? Bz : 1);
    Src += Indent + format("      long ye = std::min(yb + %ld, Ny);\n",
                           By > 0 ? By : 1);
    Src += Indent + format("      long xe = std::min(xb + %ld, Nx);\n",
                           Bx > 0 ? Bx : 1);
    Src += Indent + "      for (long z = zb; z < ze; ++z)\n";
    Src += Indent + "        for (long y = yb; y < ye; ++y) {\n";
    if (Opts.EmitSimdPragma)
      Src += Indent + "          #pragma omp simd\n";
    Src += Indent + "          for (long x = xb; x < xe; ++x)\n";
    Src += Indent + "            out[IDX3(x, y, z)] =\n";
    Src += Indent + "              " + emitExpression(Spec) + ";\n";
    Src += Indent + "        }\n";
    Src += Indent + "    }\n";
  } else {
    Src += Indent + "for (long z = 0; z < Nz; ++z)\n";
    Src += Indent + "  for (long y = 0; y < Ny; ++y) {\n";
    if (Opts.EmitSimdPragma)
      Src += Indent + "    #pragma omp simd\n";
    Src += Indent + "    for (long x = 0; x < Nx; ++x)\n";
    Src += Indent + "      out[IDX3(x, y, z)] =\n";
    Src += Indent + "        " + emitExpression(Spec) + ";\n";
    Src += Indent + "  }\n";
  }

  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitDsl(const StencilSpec &Spec,
                                   const std::string &Name) {
  std::string DefName = Name.empty() ? Spec.name() : Name;
  for (char &C : DefName)
    if (C == '-' || C == ':')
      C = '_';

  std::string Src = format("stencil %s {\n  grid ", DefName.c_str());
  unsigned NumIn = Spec.numInputGrids();
  for (unsigned G = 0; G < NumIn; ++G)
    Src += format("u%u, ", G);
  Src += "out;\n  out[x,y,z] =";

  auto Axis = [](const char *Name, int D) {
    if (D == 0)
      return std::string(Name);
    return format("%s%+d", Name, D);
  };
  bool First = true;
  for (const StencilPoint &P : Spec.points()) {
    double Coeff = P.Coeff;
    if (First) {
      Src += Coeff < 0 ? " -" : " ";
      First = false;
    } else {
      Src += Coeff < 0 ? "\n      - " : "\n      + ";
    }
    double Mag = Coeff < 0 ? -Coeff : Coeff;
    if (Mag != 1.0)
      Src += format("%.17g * ", Mag);
    Src += format("u%u[%s,%s,%s]", P.GridIdx, Axis("x", P.Dx).c_str(),
                  Axis("y", P.Dy).c_str(), Axis("z", P.Dz).c_str());
  }
  Src += ";\n}\n";
  return Src;
}

std::string SourceEmitter::emitTimeStepDriver(const StencilSpec &Spec,
                                              const KernelConfig &Config) {
  std::string Name = "kernel_" + Spec.name();
  for (char &C : Name)
    if (C == '-')
      C = '_';
  std::string Src;

  if (Config.WavefrontDepth <= 1) {
    Src += "// Plain ping-pong time stepping.\n";
    Src += format("void drive_%s(double *even, double *odd, long steps,\n"
                  "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                  Name.c_str());
    Src += "  for (long t = 0; t < steps; ++t) {\n";
    Src += format("    %s(even, odd, Nx, Ny, Nz, PadX, PadY);\n",
                  Name.c_str());
    Src += "    std::swap(even, odd);\n";
    Src += "  }\n";
    Src += "}\n";
    return Src;
  }

  int Depth = Config.WavefrontDepth;
  int R = Spec.radius() > 0 ? Spec.radius() : 1;
  long Bz = Config.Block.Z > R ? Config.Block.Z : R + 1;
  Src += format("// Temporal wavefront driver: depth %d, radius %d, "
                "z-block %ld.\n",
                Depth, R, Bz);
  Src += "// frontier[s] = exclusive z up to which time level s is done;\n";
  Src += "// the cap frontier[s] <= frontier[s-1] - radius makes the\n";
  Src += "// two-buffer scheme race-free.\n";
  Src += format("void drive_%s_wavefront(double *even, double *odd,\n"
                "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                Name.c_str());
  Src += format("  long frontier[%d + 1] = {0};\n", Depth);
  Src += "  frontier[0] = Nz;\n";
  Src += format("  while (frontier[%d] < Nz) {\n", Depth);
  Src += format("    for (int s = 1; s <= %d; ++s) {\n", Depth);
  Src += format("      long cap = frontier[s - 1] >= Nz ? Nz "
                ": frontier[s - 1] - %d;\n",
                R);
  Src += format("      long target = std::min(cap, frontier[s] + %ld);\n",
                Bz);
  Src += "      if (target <= frontier[s])\n";
  Src += "        continue;\n";
  Src += "      double *src = (s - 1) % 2 == 0 ? even : odd;\n";
  Src += "      double *dst = s % 2 == 0 ? even : odd;\n";
  Src += format("      %s_slab(src, dst, frontier[s], target, Nx, Ny, "
                "PadX, PadY);\n",
                Name.c_str());
  Src += "      frontier[s] = target;\n";
  Src += "    }\n";
  Src += "  }\n";
  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitTranslationUnit(const StencilSpec &Spec,
                                               const KernelConfig &Config,
                                               const Options &Opts) {
  std::string Src;
  Src += "// Auto-generated stencil kernel (YaskSite reproduction).\n";
  Src += format("// stencil   : %s (%s, radius %d, %u points)\n",
                Spec.name().c_str(), Spec.shapeName(), Spec.radius(),
                Spec.numPoints());
  Src += format("// config    : %s\n", Config.str().c_str());
  Src += format("// flops/LUP : %u (%u mul, %u add)\n", Spec.flopsPerLup(),
                Spec.mulsPerLup(), Spec.addsPerLup());
  if (Config.WavefrontDepth > 1)
    Src += format("// temporal wavefront depth %d is realized by the "
                  "driver loop, not this sweep kernel\n",
                  Config.WavefrontDepth);
  Src += "\n#include <algorithm>\n\n";
  Src += "// Grids are padded to PadX x PadY x PadZ with the halo folded\n";
  Src += "// into the origin; IDX3 addresses interior coordinates.\n";
  Src += "#define IDX3(x, y, z) (((z) * PadY + (y)) * PadX + (x))\n\n";
  Src += emitKernel(Spec, Config, Opts);
  return Src;
}
