//===- codegen/SourceEmitter.cpp - YASK-style C++ emission -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/SourceEmitter.h"

#include "support/StringUtils.h"

using namespace ys;

static std::string indexArg(const char *Axis, int D) {
  if (D == 0)
    return Axis;
  return format("%s %c %d", Axis, D > 0 ? '+' : '-', D > 0 ? D : -D);
}

std::string SourceEmitter::emitExpression(const StencilSpec &Spec) {
  std::string Out;
  bool First = true;
  for (const StencilPoint &P : Spec.points()) {
    std::string Term;
    if (P.Coeff != 1.0)
      Term = trimmedDouble(P.Coeff, 9) + " * ";
    Term += format("u%u[IDX3(%s, %s, %s)]", P.GridIdx,
                   indexArg("x", P.Dx).c_str(), indexArg("y", P.Dy).c_str(),
                   indexArg("z", P.Dz).c_str());
    if (!First)
      Out += "\n        + ";
    Out += Term;
    First = false;
  }
  return Out;
}

/// Emits the fold-aware kernel: the same inner-loop shape as the
/// in-process KernelPlan fast path — per-point fold-linear offset tables
/// computed once before the sweep, then per fold block a simd lane loop
/// accumulating the stencil points in spec order.
static std::string emitFoldedKernel(const StencilSpec &Spec,
                                    const KernelConfig &Config,
                                    const SourceEmitter::Options &Opts,
                                    const std::string &Name,
                                    const std::string &Restrict) {
  const Fold &F = Config.VectorFold;
  const std::vector<StencilPoint> &Points = Spec.points();
  std::string Src;

  // Signature: base pointers plus the padded extent in fold-block units.
  std::string Params;
  for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
    Params += format("const double *%s u%u, ", Restrict.c_str(), G);
  Params += format("double *%s out,\n    long NVx, long NVy, long NVz",
                   Restrict.c_str());
  Src += format("void %s(%s) {\n", Name.c_str(), Params.c_str());

  Src += format("  // Vector fold %s (%d lanes).  Fold-linear neighbor\n",
                F.str().c_str(), F.elems());
  Src += "  // offsets are constant per (point, lane) across every fold\n";
  Src += "  // block, so the tables below are computed once per sweep.\n";
  std::string Decl = "  long ";
  for (unsigned P = 0; P < Points.size(); ++P)
    Decl += format("%soff%u[FOLD_ELEMS]", P ? ", " : "", P);
  Src += Decl + ";\n";
  Src += "  for (int l = 0; l < FOLD_ELEMS; ++l) {\n";
  Src += "    const int ix = l % FOLD_X;\n";
  Src += "    const int iy = (l / FOLD_X) % FOLD_Y;\n";
  Src += "    const int iz = l / (FOLD_X * FOLD_Y);\n";
  for (unsigned P = 0; P < Points.size(); ++P)
    Src += format("    off%u[l] = FOLD_OFF(%s, %s, %s);\n", P,
                  indexArg("ix", Points[P].Dx).c_str(),
                  indexArg("iy", Points[P].Dy).c_str(),
                  indexArg("iz", Points[P].Dz).c_str());
  Src += "  }\n";

  bool Blocked = !Config.Block.isUnblocked();
  if (Opts.EmitOpenMP)
    Src += std::string("  #pragma omp parallel for schedule(static)") +
           (Blocked ? " collapse(2)" : "") + "\n";

  std::string Indent;
  if (Blocked) {
    // Cache blocks expressed in fold-block units (rounded up).
    auto VecBlock = [](long B, int Fd) {
      return B > 0 ? (B + Fd - 1) / Fd : 1;
    };
    long Bx = VecBlock(Config.Block.X, F.X);
    long By = VecBlock(Config.Block.Y, F.Y);
    long Bz = VecBlock(Config.Block.Z, F.Z);
    Src += format("  for (long vzb = 0; vzb < NVz; vzb += %ld)\n", Bz);
    Src += format("    for (long vyb = 0; vyb < NVy; vyb += %ld)\n", By);
    Src += format("      for (long vxb = 0; vxb < NVx; vxb += %ld) {\n",
                  Bx);
    Src += format("        long vze = std::min(vzb + %ld, NVz);\n", Bz);
    Src += format("        long vye = std::min(vyb + %ld, NVy);\n", By);
    Src += format("        long vxe = std::min(vxb + %ld, NVx);\n", Bx);
    Src += "        for (long vz = vzb; vz < vze; ++vz)\n";
    Src += "          for (long vy = vyb; vy < vye; ++vy)\n";
    Src += "            for (long vx = vxb; vx < vxe; ++vx) {\n";
    Indent = "              ";
  } else {
    Src += "  for (long vz = 0; vz < NVz; ++vz)\n";
    Src += "    for (long vy = 0; vy < NVy; ++vy)\n";
    Src += "      for (long vx = 0; vx < NVx; ++vx) {\n";
    Indent = "        ";
  }

  std::string SimdPragma =
      Opts.EmitSimdPragma ? Indent + "#pragma omp simd\n" : "";
  Src += Indent +
         "const long base = ((vz * NVy + vy) * NVx + vx) * FOLD_ELEMS;\n";
  Src += Indent + "double acc[FOLD_ELEMS];\n";
  Src += SimdPragma;
  Src += Indent + "for (int l = 0; l < FOLD_ELEMS; ++l)\n";
  Src += Indent + "  acc[l] = 0.0;\n";
  for (unsigned P = 0; P < Points.size(); ++P) {
    std::string Coeff = Points[P].Coeff != 1.0
                            ? trimmedDouble(Points[P].Coeff, 9) + " * "
                            : std::string();
    Src += SimdPragma;
    Src += Indent + "for (int l = 0; l < FOLD_ELEMS; ++l)\n";
    Src += Indent + format("  acc[l] += %su%u[base + off%u[l]];\n",
                           Coeff.c_str(), Points[P].GridIdx, P);
  }
  Src += SimdPragma;
  Src += Indent + "for (int l = 0; l < FOLD_ELEMS; ++l)\n";
  Src += Indent + "  out[base + l] = acc[l];\n";

  if (Blocked) {
    Src += "            }\n";
    Src += "      }\n";
  } else {
    Src += "      }\n";
  }
  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitKernel(const StencilSpec &Spec,
                                      const KernelConfig &Config,
                                      const Options &Opts) {
  std::string Name = Opts.FunctionName.empty()
                         ? "kernel_" + Spec.name()
                         : Opts.FunctionName;
  for (char &C : Name)
    if (C == '-')
      C = '_';

  std::string Restrict = Opts.EmitRestrict ? " __restrict" : "";

  if (!Config.VectorFold.isScalar())
    return emitFoldedKernel(Spec, Config, Opts, Name, Restrict);

  std::string Src;

  // Signature: one const pointer per input grid plus the output.
  std::string Params;
  for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
    Params += format("const double *%s u%u, ", Restrict.c_str(), G);
  Params += format("double *%s out,\n    long Nx, long Ny, long Nz, "
                   "long PadX, long PadY",
                   Restrict.c_str());
  Src += format("void %s(%s) {\n", Name.c_str(), Params.c_str());

  bool Blocked = !Config.Block.isUnblocked();
  std::string Indent = "  ";

  if (Opts.EmitOpenMP)
    Src += Indent + "#pragma omp parallel for schedule(static)" +
           std::string(Blocked ? " collapse(2)" : "") + "\n";

  if (Blocked) {
    long Bx = Config.Block.X, By = Config.Block.Y, Bz = Config.Block.Z;
    Src += Indent + format("for (long zb = 0; zb < Nz; zb += %ld)\n",
                           Bz > 0 ? Bz : 1);
    Src += Indent + format("  for (long yb = 0; yb < Ny; yb += %ld)\n",
                           By > 0 ? By : 1);
    Src += Indent +
           format("    for (long xb = 0; xb < Nx; xb += %ld) {\n",
                  Bx > 0 ? Bx : 1);
    Src += Indent + format("      long ze = std::min(zb + %ld, Nz);\n",
                           Bz > 0 ? Bz : 1);
    Src += Indent + format("      long ye = std::min(yb + %ld, Ny);\n",
                           By > 0 ? By : 1);
    Src += Indent + format("      long xe = std::min(xb + %ld, Nx);\n",
                           Bx > 0 ? Bx : 1);
    Src += Indent + "      for (long z = zb; z < ze; ++z)\n";
    Src += Indent + "        for (long y = yb; y < ye; ++y) {\n";
    if (Opts.EmitSimdPragma)
      Src += Indent + "          #pragma omp simd\n";
    Src += Indent + "          for (long x = xb; x < xe; ++x)\n";
    Src += Indent + "            out[IDX3(x, y, z)] =\n";
    Src += Indent + "              " + emitExpression(Spec) + ";\n";
    Src += Indent + "        }\n";
    Src += Indent + "    }\n";
  } else {
    Src += Indent + "for (long z = 0; z < Nz; ++z)\n";
    Src += Indent + "  for (long y = 0; y < Ny; ++y) {\n";
    if (Opts.EmitSimdPragma)
      Src += Indent + "    #pragma omp simd\n";
    Src += Indent + "    for (long x = 0; x < Nx; ++x)\n";
    Src += Indent + "      out[IDX3(x, y, z)] =\n";
    Src += Indent + "        " + emitExpression(Spec) + ";\n";
    Src += Indent + "  }\n";
  }

  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitDsl(const StencilSpec &Spec,
                                   const std::string &Name) {
  std::string DefName = Name.empty() ? Spec.name() : Name;
  for (char &C : DefName)
    if (C == '-' || C == ':')
      C = '_';

  std::string Src = format("stencil %s {\n  grid ", DefName.c_str());
  unsigned NumIn = Spec.numInputGrids();
  for (unsigned G = 0; G < NumIn; ++G)
    Src += format("u%u, ", G);
  Src += "out;\n  out[x,y,z] =";

  auto Axis = [](const char *Name, int D) {
    if (D == 0)
      return std::string(Name);
    return format("%s%+d", Name, D);
  };
  bool First = true;
  for (const StencilPoint &P : Spec.points()) {
    double Coeff = P.Coeff;
    if (First) {
      Src += Coeff < 0 ? " -" : " ";
      First = false;
    } else {
      Src += Coeff < 0 ? "\n      - " : "\n      + ";
    }
    double Mag = Coeff < 0 ? -Coeff : Coeff;
    if (Mag != 1.0)
      Src += format("%.17g * ", Mag);
    Src += format("u%u[%s,%s,%s]", P.GridIdx, Axis("x", P.Dx).c_str(),
                  Axis("y", P.Dy).c_str(), Axis("z", P.Dz).c_str());
  }
  Src += ";\n}\n";
  return Src;
}

std::string SourceEmitter::emitTimeStepDriver(const StencilSpec &Spec,
                                              const KernelConfig &Config) {
  std::string Name = "kernel_" + Spec.name();
  for (char &C : Name)
    if (C == '-')
      C = '_';
  std::string Src;

  if (Config.WavefrontDepth <= 1) {
    Src += "// Plain ping-pong time stepping.\n";
    Src += format("void drive_%s(double *even, double *odd, long steps,\n"
                  "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                  Name.c_str());
    Src += "  for (long t = 0; t < steps; ++t) {\n";
    Src += format("    %s(even, odd, Nx, Ny, Nz, PadX, PadY);\n",
                  Name.c_str());
    Src += "    std::swap(even, odd);\n";
    Src += "  }\n";
    Src += "}\n";
    return Src;
  }

  int Depth = Config.WavefrontDepth;
  int R = Spec.radius() > 0 ? Spec.radius() : 1;
  long Bz = Config.Block.Z > R ? Config.Block.Z : R + 1;
  Src += format("// Temporal wavefront driver: depth %d, radius %d, "
                "z-block %ld.\n",
                Depth, R, Bz);
  Src += "// frontier[s] = exclusive z up to which time level s is done;\n";
  Src += "// the cap frontier[s] <= frontier[s-1] - radius makes the\n";
  Src += "// two-buffer scheme race-free.\n";
  Src += format("void drive_%s_wavefront(double *even, double *odd,\n"
                "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                Name.c_str());
  Src += format("  long frontier[%d + 1] = {0};\n", Depth);
  Src += "  frontier[0] = Nz;\n";
  Src += format("  while (frontier[%d] < Nz) {\n", Depth);
  Src += format("    for (int s = 1; s <= %d; ++s) {\n", Depth);
  Src += format("      long cap = frontier[s - 1] >= Nz ? Nz "
                ": frontier[s - 1] - %d;\n",
                R);
  Src += format("      long target = std::min(cap, frontier[s] + %ld);\n",
                Bz);
  Src += "      if (target <= frontier[s])\n";
  Src += "        continue;\n";
  Src += "      double *src = (s - 1) % 2 == 0 ? even : odd;\n";
  Src += "      double *dst = s % 2 == 0 ? even : odd;\n";
  Src += format("      %s_slab(src, dst, frontier[s], target, Nx, Ny, "
                "PadX, PadY);\n",
                Name.c_str());
  Src += "      frontier[s] = target;\n";
  Src += "    }\n";
  Src += "  }\n";
  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitTranslationUnit(const StencilSpec &Spec,
                                               const KernelConfig &Config,
                                               const Options &Opts) {
  std::string Src;
  Src += "// Auto-generated stencil kernel (YaskSite reproduction).\n";
  Src += format("// stencil   : %s (%s, radius %d, %u points)\n",
                Spec.name().c_str(), Spec.shapeName(), Spec.radius(),
                Spec.numPoints());
  Src += format("// config    : %s\n", Config.str().c_str());
  Src += format("// flops/LUP : %u (%u mul, %u add)\n", Spec.flopsPerLup(),
                Spec.mulsPerLup(), Spec.addsPerLup());
  if (Config.WavefrontDepth > 1)
    Src += format("// temporal wavefront depth %d is realized by the "
                  "driver loop, not this sweep kernel\n",
                  Config.WavefrontDepth);
  Src += "\n#include <algorithm>\n\n";
  const Fold &F = Config.VectorFold;
  if (F.isScalar()) {
    Src += "// Grids are padded to PadX x PadY x PadZ with the halo folded\n";
    Src += "// into the origin; IDX3 addresses interior coordinates.\n";
    Src += "#define IDX3(x, y, z) (((z) * PadY + (y)) * PadX + (x))\n\n";
  } else {
    Src += "// Folded storage: the grid is an array of NVx*NVy*NVz\n";
    Src += "// (FOLD_X x FOLD_Y x FOLD_Z) blocks of FOLD_ELEMS contiguous\n";
    Src += "// doubles each; a SIMD register holds one block.\n";
    Src += format("#define FOLD_X %d\n#define FOLD_Y %d\n"
                  "#define FOLD_Z %d\n#define FOLD_ELEMS %d\n",
                  F.X, F.Y, F.Z, F.elems());
    Src += "// Floor division: negative deltas land in the preceding "
           "block.\n";
    Src += "#define FOLD_DIV(a, f) "
           "((a) >= 0 ? (a) / (f) : -((-(a) + (f) - 1) / (f)))\n";
    Src += "// Fold-linear offset of in-fold coordinate (gx, gy, gz)\n";
    Src += "// relative to its block's base index; the coordinates may\n";
    Src += "// reach into neighboring blocks.\n";
    Src += "#define FOLD_OFF(gx, gy, gz) \\\n";
    Src += "  (((FOLD_DIV((gz), FOLD_Z) * NVy + FOLD_DIV((gy), FOLD_Y)) * "
           "NVx + \\\n";
    Src += "    FOLD_DIV((gx), FOLD_X)) * FOLD_ELEMS + \\\n";
    Src += "   (((gz) - FOLD_DIV((gz), FOLD_Z) * FOLD_Z) * FOLD_Y + \\\n";
    Src += "    ((gy) - FOLD_DIV((gy), FOLD_Y) * FOLD_Y)) * FOLD_X + \\\n";
    Src += "   ((gx) - FOLD_DIV((gx), FOLD_X) * FOLD_X))\n\n";
  }
  Src += emitKernel(Spec, Config, Opts);
  return Src;
}
