//===- codegen/SourceEmitter.cpp - YASK-style C++ emission -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/SourceEmitter.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace ys;

static std::string indexArg(const char *Axis, int D) {
  if (D == 0)
    return Axis;
  return format("%s %c %d", Axis, D > 0 ? '+' : '-', D > 0 ? D : -D);
}

/// Coefficient prefix "<coeff> * " (empty for 1.0).  Literals use
/// shortest-round-trip precision so the compiled kernel reproduces the
/// interpreter arithmetic bit-for-bit — a fixed %.9f would round 1.0/3.0
/// and flush 1e-12 to 0 — and negative coefficients are parenthesized so
/// splicing a term after "+ " stays well-formed.
static std::string coeffFactor(double Coeff) {
  if (Coeff == 1.0)
    return std::string();
  std::string S = roundTripDouble(Coeff);
  if (Coeff < 0.0)
    S = "(" + S + ")";
  return S + " * ";
}

/// extern "C" prefix for function definitions when requested.
static const char *linkagePrefix(const SourceEmitter::Options &Opts) {
  return Opts.EmitExternC ? "extern \"C\" " : "";
}

std::string SourceEmitter::emitExpression(const StencilSpec &Spec) {
  std::string Out;
  bool First = true;
  for (const StencilPoint &P : Spec.points()) {
    std::string Term = coeffFactor(P.Coeff);
    Term += format("u%u[IDX3(%s, %s, %s)]", P.GridIdx,
                   indexArg("x", P.Dx).c_str(), indexArg("y", P.Dy).c_str(),
                   indexArg("z", P.Dz).c_str());
    if (!First)
      Out += "\n        + ";
    Out += Term;
    First = false;
  }
  return Out;
}

/// Emits the fold-aware kernel: the same inner-loop shape as the
/// in-process KernelPlan fast path — per-point fold-linear offset tables
/// computed once before the sweep, then per fold block a simd lane loop
/// accumulating the stencil points in spec order.
static std::string emitFoldedKernel(const StencilSpec &Spec,
                                    const KernelConfig &Config,
                                    const SourceEmitter::Options &Opts,
                                    const std::string &Name,
                                    const std::string &Restrict) {
  const Fold &F = Config.VectorFold;
  const std::vector<StencilPoint> &Points = Spec.points();
  std::string Src;

  // Signature: base pointers plus the padded extent in fold-block units.
  std::string Params;
  for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
    Params += format("const double *%s u%u, ", Restrict.c_str(), G);
  Params += format("double *%s out,\n    long NVx, long NVy, long NVz",
                   Restrict.c_str());
  Src += format("%svoid %s(%s) {\n", linkagePrefix(Opts), Name.c_str(),
                Params.c_str());

  Src += format("  // Vector fold %s (%d lanes).  Fold-linear neighbor\n",
                F.str().c_str(), F.elems());
  Src += "  // offsets are constant per (point, lane) across every fold\n";
  Src += "  // block, so the tables below are computed once per sweep.\n";
  std::string Decl = "  long ";
  for (unsigned P = 0; P < Points.size(); ++P)
    Decl += format("%soff%u[FOLD_ELEMS]", P ? ", " : "", P);
  Src += Decl + ";\n";
  Src += "  for (int l = 0; l < FOLD_ELEMS; ++l) {\n";
  Src += "    const int ix = l % FOLD_X;\n";
  Src += "    const int iy = (l / FOLD_X) % FOLD_Y;\n";
  Src += "    const int iz = l / (FOLD_X * FOLD_Y);\n";
  for (unsigned P = 0; P < Points.size(); ++P)
    Src += format("    off%u[l] = FOLD_OFF(%s, %s, %s);\n", P,
                  indexArg("ix", Points[P].Dx).c_str(),
                  indexArg("iy", Points[P].Dy).c_str(),
                  indexArg("iz", Points[P].Dz).c_str());
  Src += "  }\n";

  bool Blocked = !Config.Block.isUnblocked();
  if (Opts.EmitOpenMP)
    Src += std::string("  #pragma omp parallel for schedule(static)") +
           (Blocked ? " collapse(2)" : "") + "\n";

  std::string Indent;
  if (Blocked) {
    // Cache blocks expressed in fold-block units (rounded up).
    auto VecBlock = [](long B, int Fd) {
      return B > 0 ? (B + Fd - 1) / Fd : 1;
    };
    long Bx = VecBlock(Config.Block.X, F.X);
    long By = VecBlock(Config.Block.Y, F.Y);
    long Bz = VecBlock(Config.Block.Z, F.Z);
    Src += format("  for (long vzb = 0; vzb < NVz; vzb += %ld)\n", Bz);
    Src += format("    for (long vyb = 0; vyb < NVy; vyb += %ld)\n", By);
    Src += format("      for (long vxb = 0; vxb < NVx; vxb += %ld) {\n",
                  Bx);
    Src += format("        long vze = std::min(vzb + %ld, NVz);\n", Bz);
    Src += format("        long vye = std::min(vyb + %ld, NVy);\n", By);
    Src += format("        long vxe = std::min(vxb + %ld, NVx);\n", Bx);
    Src += "        for (long vz = vzb; vz < vze; ++vz)\n";
    Src += "          for (long vy = vyb; vy < vye; ++vy)\n";
    Src += "            for (long vx = vxb; vx < vxe; ++vx) {\n";
    Indent = "              ";
  } else {
    Src += "  for (long vz = 0; vz < NVz; ++vz)\n";
    Src += "    for (long vy = 0; vy < NVy; ++vy)\n";
    Src += "      for (long vx = 0; vx < NVx; ++vx) {\n";
    Indent = "        ";
  }

  std::string SimdPragma =
      Opts.EmitSimdPragma ? Indent + "#pragma omp simd\n" : "";
  Src += Indent +
         "const long base = ((vz * NVy + vy) * NVx + vx) * FOLD_ELEMS;\n";
  Src += Indent + "double acc[FOLD_ELEMS];\n";
  Src += SimdPragma;
  Src += Indent + "for (int l = 0; l < FOLD_ELEMS; ++l)\n";
  Src += Indent + "  acc[l] = 0.0;\n";
  for (unsigned P = 0; P < Points.size(); ++P) {
    std::string Coeff = coeffFactor(Points[P].Coeff);
    Src += SimdPragma;
    Src += Indent + "for (int l = 0; l < FOLD_ELEMS; ++l)\n";
    Src += Indent + format("  acc[l] += %su%u[base + off%u[l]];\n",
                           Coeff.c_str(), Points[P].GridIdx, P);
  }
  Src += SimdPragma;
  Src += Indent + "for (int l = 0; l < FOLD_ELEMS; ++l)\n";
  Src += Indent + "  out[base + l] = acc[l];\n";

  if (Blocked) {
    Src += "            }\n";
    Src += "      }\n";
  } else {
    Src += "      }\n";
  }
  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitKernel(const StencilSpec &Spec,
                                      const KernelConfig &Config,
                                      const Options &Opts) {
  std::string Name = Opts.FunctionName.empty()
                         ? "kernel_" + Spec.name()
                         : Opts.FunctionName;
  for (char &C : Name)
    if (C == '-')
      C = '_';

  std::string Restrict = Opts.EmitRestrict ? " __restrict" : "";

  if (!Config.VectorFold.isScalar())
    return emitFoldedKernel(Spec, Config, Opts, Name, Restrict);

  std::string Src;

  // Signature: one const pointer per input grid plus the output.
  std::string Params;
  for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
    Params += format("const double *%s u%u, ", Restrict.c_str(), G);
  Params += format("double *%s out,\n    long Nx, long Ny, long Nz, "
                   "long PadX, long PadY",
                   Restrict.c_str());
  Src += format("%svoid %s(%s) {\n", linkagePrefix(Opts), Name.c_str(),
                Params.c_str());

  bool Blocked = !Config.Block.isUnblocked();
  std::string Indent = "  ";

  if (Opts.EmitOpenMP)
    Src += Indent + "#pragma omp parallel for schedule(static)" +
           std::string(Blocked ? " collapse(2)" : "") + "\n";

  if (Blocked) {
    long Bx = Config.Block.X, By = Config.Block.Y, Bz = Config.Block.Z;
    Src += Indent + format("for (long zb = 0; zb < Nz; zb += %ld)\n",
                           Bz > 0 ? Bz : 1);
    Src += Indent + format("  for (long yb = 0; yb < Ny; yb += %ld)\n",
                           By > 0 ? By : 1);
    Src += Indent +
           format("    for (long xb = 0; xb < Nx; xb += %ld) {\n",
                  Bx > 0 ? Bx : 1);
    Src += Indent + format("      long ze = std::min(zb + %ld, Nz);\n",
                           Bz > 0 ? Bz : 1);
    Src += Indent + format("      long ye = std::min(yb + %ld, Ny);\n",
                           By > 0 ? By : 1);
    Src += Indent + format("      long xe = std::min(xb + %ld, Nx);\n",
                           Bx > 0 ? Bx : 1);
    Src += Indent + "      for (long z = zb; z < ze; ++z)\n";
    Src += Indent + "        for (long y = yb; y < ye; ++y) {\n";
    if (Opts.EmitSimdPragma)
      Src += Indent + "          #pragma omp simd\n";
    Src += Indent + "          for (long x = xb; x < xe; ++x)\n";
    Src += Indent + "            out[IDX3(x, y, z)] =\n";
    Src += Indent + "              " + emitExpression(Spec) + ";\n";
    Src += Indent + "        }\n";
    Src += Indent + "    }\n";
  } else {
    Src += Indent + "for (long z = 0; z < Nz; ++z)\n";
    Src += Indent + "  for (long y = 0; y < Ny; ++y) {\n";
    if (Opts.EmitSimdPragma)
      Src += Indent + "    #pragma omp simd\n";
    Src += Indent + "    for (long x = 0; x < Nx; ++x)\n";
    Src += Indent + "      out[IDX3(x, y, z)] =\n";
    Src += Indent + "        " + emitExpression(Spec) + ";\n";
    Src += Indent + "  }\n";
  }

  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitDsl(const StencilSpec &Spec,
                                   const std::string &Name) {
  std::string DefName = Name.empty() ? Spec.name() : Name;
  for (char &C : DefName)
    if (C == '-' || C == ':')
      C = '_';

  std::string Src = format("stencil %s {\n  grid ", DefName.c_str());
  unsigned NumIn = Spec.numInputGrids();
  for (unsigned G = 0; G < NumIn; ++G)
    Src += format("u%u, ", G);
  Src += "out;\n  out[x,y,z] =";

  auto Axis = [](const char *Name, int D) {
    if (D == 0)
      return std::string(Name);
    return format("%s%+d", Name, D);
  };
  bool First = true;
  for (const StencilPoint &P : Spec.points()) {
    double Coeff = P.Coeff;
    if (First) {
      Src += Coeff < 0 ? " -" : " ";
      First = false;
    } else {
      Src += Coeff < 0 ? "\n      - " : "\n      + ";
    }
    double Mag = Coeff < 0 ? -Coeff : Coeff;
    if (Mag != 1.0)
      Src += format("%.17g * ", Mag);
    Src += format("u%u[%s,%s,%s]", P.GridIdx, Axis("x", P.Dx).c_str(),
                  Axis("y", P.Dy).c_str(), Axis("z", P.Dz).c_str());
  }
  Src += ";\n}\n";
  return Src;
}

std::string SourceEmitter::emitTimeStepDriver(const StencilSpec &Spec,
                                              const KernelConfig &Config,
                                              const Options &Opts) {
  std::string Name = "kernel_" + Spec.name();
  for (char &C : Name)
    if (C == '-')
      C = '_';
  std::string Src;

  if (Config.WavefrontDepth <= 1) {
    Src += "// Plain ping-pong time stepping.\n";
    Src += format("%svoid drive_%s(double *even, double *odd, long steps,\n"
                  "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                  linkagePrefix(Opts), Name.c_str());
    Src += "  for (long t = 0; t < steps; ++t) {\n";
    Src += format("    %s(even, odd, Nx, Ny, Nz, PadX, PadY);\n",
                  Name.c_str());
    Src += "    std::swap(even, odd);\n";
    Src += "  }\n";
    Src += "}\n";
    return Src;
  }

  int Depth = Config.WavefrontDepth;
  int R = Spec.radius() > 0 ? Spec.radius() : 1;
  long Bz = Config.Block.Z > R ? Config.Block.Z : R + 1;

  // The z-slab kernel every temporal schedule advances each time level
  // through: one sweep restricted to z in [z0, z1).  The schedules
  // themselves are sequential (slab order carries the dependences), so
  // parallelism lives inside the slab's y/x loops, not across slabs.
  std::string Restrict = Opts.EmitRestrict ? " __restrict" : "";
  Src += "// One z-slab [z0, z1) of a single sweep.\n";
  Src += format("%svoid %s_slab(const double *%s u0, double *%s out,\n"
                "    long z0, long z1, long Nx, long Ny, "
                "long PadX, long PadY) {\n",
                linkagePrefix(Opts), Name.c_str(), Restrict.c_str(),
                Restrict.c_str());
  Src += "  for (long z = z0; z < z1; ++z)\n";
  Src += "    for (long y = 0; y < Ny; ++y) {\n";
  if (Opts.EmitSimdPragma)
    Src += "      #pragma omp simd\n";
  Src += "      for (long x = 0; x < Nx; ++x)\n";
  Src += "        out[IDX3(x, y, z)] =\n";
  Src += "          " + emitExpression(Spec) + ";\n";
  Src += "    }\n";
  Src += "}\n\n";

  // Every driver selects the level-s source/destination buffers with the
  // same two-buffer parity expressions, emitted once per slab call site.
  const char *Parity = "      double *src = (s - 1) % 2 == 0 ? even : odd;\n"
                       "      double *dst = s % 2 == 0 ? even : odd;\n";

  if (Config.Sched == Schedule::Diamond) {
    long W = std::max<long>(Config.Block.Z, 2L * Depth * R);
    Src += format("// Temporal diamond driver: depth %d, radius %d, tile "
                  "width %ld.\n",
                  Depth, R, W);
    Src += "// Phase 1 computes the per-tile trapezoids; phase 2 fills the\n";
    Src += "// boundary diamonds between adjacent tiles (see\n";
    Src += "// KernelExecutor::diamondMacroStep for the dependence proof).\n";
    Src += format("%svoid drive_%s_diamond(double *even, double *odd,\n"
                  "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                  linkagePrefix(Opts), Name.c_str());
    Src += format("  const long W = %ld;\n", W);
    Src += "  const long tiles = (Nz + W - 1) / W;\n";
    Src += "  for (long k = 0; k < tiles; ++k)\n";
    Src += format("    for (int s = 1; s <= %d; ++s) {\n", Depth);
    Src += format("      long z0 = k == 0 ? 0 : k * W + s * %dL;\n", R);
    Src += format("      long z1 = k == tiles - 1 ? Nz "
                  ": (k + 1) * W - s * %dL;\n",
                  R);
    Src += "      if (z1 <= z0)\n";
    Src += "        continue;\n";
    Src += Parity;
    Src += format("      %s_slab(src, dst, z0, z1, Nx, Ny, PadX, PadY);\n",
                  Name.c_str());
    Src += "    }\n";
    Src += "  for (long k = 0; k + 1 < tiles; ++k) {\n";
    Src += "    long boundary = (k + 1) * W;\n";
    Src += format("    for (int s = 1; s <= %d; ++s) {\n", Depth);
    Src += format("      long z0 = boundary - s * %dL;\n", R);
    Src += "      if (z0 < 0) z0 = 0;\n";
    Src += format("      long z1 = boundary + s * %dL;\n", R);
    Src += "      if (z1 > Nz) z1 = Nz;\n";
    Src += "      if (z1 <= z0)\n";
    Src += "        continue;\n";
    Src += Parity;
    Src += format("      %s_slab(src, dst, z0, z1, Nx, Ny, PadX, PadY);\n",
                  Name.c_str());
    Src += "    }\n";
    Src += "  }\n";
    Src += "}\n";
    return Src;
  }

  if (Config.Sched == Schedule::DeepTemporal) {
    Src += format("// Deep-temporal driver: depth %d, radius %d.  Wave w\n"
                  "// advances level s on plane z = w - (s-1)*radius, s\n"
                  "// ascending (minimal-skew per-plane pipeline).\n",
                  Depth, R);
    Src += format("%svoid drive_%s_deep_temporal(double *even, double *odd,\n"
                  "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                  linkagePrefix(Opts), Name.c_str());
    Src += format("  const long lastWave = Nz - 1 + %ldL;\n",
                  static_cast<long>(Depth - 1) * R);
    Src += "  for (long w = 0; w <= lastWave; ++w)\n";
    Src += format("    for (int s = 1; s <= %d; ++s) {\n", Depth);
    Src += format("      long z = w - (s - 1) * %dL;\n", R);
    Src += "      if (z < 0 || z >= Nz)\n";
    Src += "        continue;\n";
    Src += Parity;
    Src += format("      %s_slab(src, dst, z, z + 1, Nx, Ny, PadX, PadY);\n",
                  Name.c_str());
    Src += "    }\n";
    Src += "}\n";
    return Src;
  }

  Src += format("// Temporal wavefront driver: depth %d, radius %d, "
                "z-block %ld.\n",
                Depth, R, Bz);
  Src += "// frontier[s] = exclusive z up to which time level s is done;\n";
  Src += "// the cap frontier[s] <= frontier[s-1] - radius makes the\n";
  Src += "// two-buffer scheme race-free.\n";
  Src += format("%svoid drive_%s_wavefront(double *even, double *odd,\n"
                "    long Nx, long Ny, long Nz, long PadX, long PadY) {\n",
                linkagePrefix(Opts), Name.c_str());
  Src += format("  long frontier[%d + 1] = {0};\n", Depth);
  Src += "  frontier[0] = Nz;\n";
  Src += format("  while (frontier[%d] < Nz) {\n", Depth);
  Src += format("    for (int s = 1; s <= %d; ++s) {\n", Depth);
  Src += format("      long cap = frontier[s - 1] >= Nz ? Nz "
                ": frontier[s - 1] - %d;\n",
                R);
  Src += format("      long target = std::min(cap, frontier[s] + %ld);\n",
                Bz);
  Src += "      if (target <= frontier[s])\n";
  Src += "        continue;\n";
  Src += "      double *src = (s - 1) % 2 == 0 ? even : odd;\n";
  Src += "      double *dst = s % 2 == 0 ? even : odd;\n";
  Src += format("      %s_slab(src, dst, frontier[s], target, Nx, Ny, "
                "PadX, PadY);\n",
                Name.c_str());
  Src += "      frontier[s] = target;\n";
  Src += "    }\n";
  Src += "  }\n";
  Src += "}\n";
  return Src;
}

std::string SourceEmitter::emitTranslationUnit(const StencilSpec &Spec,
                                               const KernelConfig &Config,
                                               const Options &Opts) {
  std::string Src;
  Src += "// Auto-generated stencil kernel (YaskSite reproduction).\n";
  Src += format("// stencil   : %s (%s, radius %d, %u points)\n",
                Spec.name().c_str(), Spec.shapeName(), Spec.radius(),
                Spec.numPoints());
  Src += format("// config    : %s\n", Config.str().c_str());
  Src += format("// flops/LUP : %u (%u mul, %u add)\n", Spec.flopsPerLup(),
                Spec.mulsPerLup(), Spec.addsPerLup());
  const bool EmitDriver = Config.WavefrontDepth > 1 &&
                          Config.VectorFold.isScalar();
  if (Config.WavefrontDepth > 1)
    Src += format("// temporal %s depth %d is realized by the "
                  "driver loop, not this sweep kernel\n",
                  scheduleName(Config.Sched), Config.WavefrontDepth);
  Src += "\n#include <algorithm>\n\n";
  const Fold &F = Config.VectorFold;
  if (F.isScalar()) {
    Src += "// Grids are padded to PadX x PadY x PadZ with the halo folded\n";
    Src += "// into the origin; IDX3 addresses interior coordinates.\n";
    Src += "#define IDX3(x, y, z) (((z) * PadY + (y)) * PadX + (x))\n\n";
  } else {
    Src += "// Folded storage: the grid is an array of NVx*NVy*NVz\n";
    Src += "// (FOLD_X x FOLD_Y x FOLD_Z) blocks of FOLD_ELEMS contiguous\n";
    Src += "// doubles each; a SIMD register holds one block.\n";
    Src += format("#define FOLD_X %d\n#define FOLD_Y %d\n"
                  "#define FOLD_Z %d\n#define FOLD_ELEMS %d\n",
                  F.X, F.Y, F.Z, F.elems());
    Src += "// Floor division: negative deltas land in the preceding "
           "block.\n";
    Src += "#define FOLD_DIV(a, f) "
           "((a) >= 0 ? (a) / (f) : -((-(a) + (f) - 1) / (f)))\n";
    Src += "// Fold-linear offset of in-fold coordinate (gx, gy, gz)\n";
    Src += "// relative to its block's base index; the coordinates may\n";
    Src += "// reach into neighboring blocks.\n";
    Src += "#define FOLD_OFF(gx, gy, gz) \\\n";
    Src += "  (((FOLD_DIV((gz), FOLD_Z) * NVy + FOLD_DIV((gy), FOLD_Y)) * "
           "NVx + \\\n";
    Src += "    FOLD_DIV((gx), FOLD_X)) * FOLD_ELEMS + \\\n";
    Src += "   (((gz) - FOLD_DIV((gz), FOLD_Z) * FOLD_Z) * FOLD_Y + \\\n";
    Src += "    ((gy) - FOLD_DIV((gy), FOLD_Y) * FOLD_Y)) * FOLD_X + \\\n";
    Src += "   ((gx) - FOLD_DIV((gx), FOLD_X) * FOLD_X))\n\n";
  }
  Src += emitKernel(Spec, Config, Opts);
  // Wavefront configs also get the slab kernel + frontier driver, making
  // the unit self-contained (every called function is defined).  The
  // driver addresses the scalar layout, so folded wavefront configs keep
  // the sweep kernel alone.
  if (EmitDriver)
    Src += "\n" + emitTimeStepDriver(Spec, Config, Opts);
  return Src;
}

JitGeometry::JitGeometry(const Grid &G)
    : Dims(G.dims()), Halo(G.halo()), F(G.fold()), PadX(G.padX()),
      PadY(G.padY()), PadZ(G.padZ()), NVx(G.numVecX()), NVy(G.numVecY()),
      NVz(G.numVecZ()) {}

JitGeometry JitGeometry::forDims(const GridDims &Dims, int Halo,
                                 const Fold &F) {
  auto RoundUp = [](long V, int M) { return (V + M - 1) / M * M; };
  JitGeometry G;
  G.Dims = Dims;
  G.Halo = Halo;
  G.F = F;
  G.PadX = RoundUp(Dims.Nx + 2L * Halo, F.X);
  G.PadY = RoundUp(Dims.Ny + 2L * Halo, F.Y);
  G.PadZ = RoundUp(Dims.Nz + 2L * Halo, F.Z);
  G.NVx = G.PadX / F.X;
  G.NVy = G.PadY / F.Y;
  G.NVz = G.PadZ / F.Z;
  return G;
}

bool JitGeometry::matches(const Grid &G) const {
  return G.dims() == Dims && G.halo() == Halo && G.fold() == F &&
         G.padX() == PadX && G.padY() == PadY && G.padZ() == PadZ;
}

std::string JitGeometry::str() const {
  return format("%s halo %d fold %s pad %ldx%ldx%ld", Dims.str().c_str(),
                Halo, F.str().c_str(), PadX, PadY, PadZ);
}

/// Index argument "<axis> + Halo [+/- delta]" in padded coordinates.
static std::string paddedArg(const char *Axis, int D) {
  if (D == 0)
    return format("%s + Halo", Axis);
  return format("%s + Halo %c %d", Axis, D > 0 ? '+' : '-', D > 0 ? D : -D);
}

std::string SourceEmitter::emitJitTranslationUnit(const StencilSpec &Spec,
                                                  const JitGeometry &G) {
  const Fold &F = G.F;
  const std::vector<StencilPoint> &Points = Spec.points();
  std::string Src;

  Src += "// Auto-generated JIT stencil kernel (YaskSite reproduction).\n";
  Src += format("// stencil  : %s (%s, radius %d, %u points)\n",
                Spec.name().c_str(), Spec.shapeName(), Spec.radius(),
                Spec.numPoints());
  Src += format("// geometry : %s\n", G.str().c_str());
  Src += "// Contract: computes one rectangular interior range of one\n";
  Src += "// sweep.  Accumulation is in spec point order and the build\n";
  Src += "// uses -ffp-contract=off, so results are bit-identical to the\n";
  Src += "// ReferenceInterpreter and the in-process KernelPlan path.\n";
  Src += "// Blocking, threading, and wavefront scheduling stay in\n";
  Src += "// KernelExecutor, which invokes this kernel once per range.\n\n";

  Src += "namespace {\n";
  Src += format("constexpr long PadX = %ld;\n", G.PadX);
  Src += format("constexpr long PadY = %ld;\n", G.PadY);
  Src += format("constexpr long Halo = %d;\n", G.Halo);
  if (F.isScalar()) {
    Src += "// Mirrors Grid::linearIndex for the scalar layout.\n";
    Src += "inline long ysIdx(long gx, long gy, long gz) {\n";
    Src += "  return (gz * PadY + gy) * PadX + gx;\n";
    Src += "}\n";
  } else {
    Src += format("constexpr long FoldX = %d;\n", F.X);
    Src += format("constexpr long FoldY = %d;\n", F.Y);
    Src += format("constexpr long FoldZ = %d;\n", F.Z);
    Src += format("constexpr long FoldElems = %d;\n", F.elems());
    Src += format("constexpr long NVX = %ld;\n", G.NVx);
    Src += format("constexpr long NVY = %ld;\n", G.NVy);
    Src += "// Mirrors Grid::linearIndex for the folded layout: block\n";
    Src += "// index times FoldElems plus the x-fastest in-fold lane.\n";
    Src += "// Padded coordinates are non-negative, so / and % agree with\n";
    Src += "// floor division, and the fold dims are literals, so the\n";
    Src += "// compiler strength-reduces the divisions.\n";
    Src += "inline long ysIdx(long gx, long gy, long gz) {\n";
    Src += "  const long vx = gx / FoldX, ix = gx % FoldX;\n";
    Src += "  const long vy = gy / FoldY, iy = gy % FoldY;\n";
    Src += "  const long vz = gz / FoldZ, iz = gz % FoldZ;\n";
    Src += "  return ((vz * NVY + vy) * NVX + vx) * FoldElems +\n";
    Src += "         (iz * FoldY + iy) * FoldX + ix;\n";
    Src += "}\n";
  }
  Src += "} // namespace\n\n";

  Src += format("extern \"C\" void %s(const double *const *ins, "
                "double *out,\n    long z0, long z1, long y0, long y1, "
                "long x0, long x1) {\n",
                jitKernelSymbol());
  for (unsigned In = 0; In < Spec.numInputGrids(); ++In)
    Src += format("  const double *__restrict u%u = ins[%u];\n", In, In);
  Src += "  for (long z = z0; z < z1; ++z)\n";
  Src += "    for (long y = y0; y < y1; ++y) {\n";
  Src += "      #pragma omp simd\n";
  Src += "      for (long x = x0; x < x1; ++x) {\n";

  std::string Expr;
  bool First = true;
  for (const StencilPoint &P : Points) {
    std::string Term = coeffFactor(P.Coeff);
    if (F.isScalar()) {
      // Neighbor offsets are layout constants in the scalar layout
      // (Grid::scalarNeighborOffset), so fold them into the literal.
      long Off = (static_cast<long>(P.Dz) * G.PadY + P.Dy) * G.PadX + P.Dx;
      if (Off == 0)
        Term += format("u%u[i]", P.GridIdx);
      else
        Term += format("u%u[i %c %ld]", P.GridIdx, Off > 0 ? '+' : '-',
                       Off > 0 ? Off : -Off);
    } else {
      Term += format("u%u[ysIdx(%s, %s, %s)]", P.GridIdx,
                     paddedArg("x", P.Dx).c_str(),
                     paddedArg("y", P.Dy).c_str(),
                     paddedArg("z", P.Dz).c_str());
    }
    if (!First)
      Expr += "\n            + ";
    Expr += Term;
    First = false;
  }

  if (F.isScalar()) {
    Src += "        const long i = ysIdx(x + Halo, y + Halo, z + Halo);\n";
    Src += "        out[i] =\n";
  } else {
    Src += "        out[ysIdx(x + Halo, y + Halo, z + Halo)] =\n";
  }
  Src += "            " + Expr + ";\n";
  Src += "      }\n";
  Src += "    }\n";
  Src += "}\n";
  return Src;
}
