//===- codegen/KernelPlanKernelsAvx512.cpp - AVX-512 plan kernels ----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// AVX-512 instantiation of the plan kernels: same bodies as the baseline
// (KernelPlanKernels.inc), compiled with -mavx512f -fopenmp-simd
// -ffp-contract=off.  Only added to the build when the compiler accepts
// -mavx512f on an x86 host (src/codegen/CMakeLists.txt).  GCC contracts
// mul+add into FMA under -mavx512f by default, which rounds differently
// than the baseline's separate operations — -ffp-contract=off is what
// keeps this target on the verifier's bit-exactness contract.
//
//===----------------------------------------------------------------------===//

#define YS_PLAN_TARGET_NS target_avx512
#include "codegen/KernelPlanKernels.inc"

namespace ys::plankernels {

const KernelTable &avx512Kernels() { return target_avx512::kernels(); }

} // namespace ys::plankernels
