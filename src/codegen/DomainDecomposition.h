//===- codegen/DomainDecomposition.h - Rank decomposition --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-process domain decomposition with explicit halo exchange — the
/// substrate YASK uses for multi-rank (MPI) runs, simulated in-process:
/// the global grid splits into contiguous z-slabs ("ranks"), each rank
/// owns its slab plus a halo, and an explicit exchange step copies
/// interior boundary layers between neighbors before every sweep.
/// Equivalence to the monolithic sweep is exact and tested.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_DOMAINDECOMPOSITION_H
#define YS_CODEGEN_DOMAINDECOMPOSITION_H

#include "codegen/KernelExecutor.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "support/ThreadPool.h"

#include <memory>
#include <vector>

namespace ys {

/// A grid distributed over R contiguous z-slab ranks.
class DecomposedGrid {
public:
  /// Splits \p GlobalDims into \p Ranks z-slabs with halo \p Halo.
  /// Requires Nz >= Ranks.
  DecomposedGrid(GridDims GlobalDims, unsigned Ranks, int Halo,
                 Fold F = Fold());

  unsigned numRanks() const { return static_cast<unsigned>(Slabs.size()); }
  const GridDims &globalDims() const { return GlobalDims; }
  int halo() const { return Halo; }

  /// The local grid of one rank.
  Grid &rank(unsigned R) { return *Slabs[R]; }
  const Grid &rank(unsigned R) const { return *Slabs[R]; }

  /// Global z-range [begin, end) owned by rank \p R.
  long rankZBegin(unsigned R) const { return ZBegin[R]; }
  long rankZEnd(unsigned R) const { return ZBegin[R + 1]; }

  /// Scatters a global grid into the slabs (interiors only).
  void scatter(const Grid &Global);

  /// Gathers the slabs' interiors into a global grid.
  void gather(Grid &Global) const;

  /// Exchanges the z-halo layers between neighboring ranks (copies the
  /// top \p Halo interior planes of rank R into the bottom halo of rank
  /// R+1 and vice versa).  The outermost ranks' outer halos are left
  /// untouched (physical boundary).  Counts exchanged bytes.
  void exchangeHalos();

  /// Bytes moved by all exchangeHalos() calls so far.
  unsigned long long haloBytesExchanged() const { return HaloBytes; }

private:
  GridDims GlobalDims;
  int Halo;
  std::vector<long> ZBegin; ///< Ranks + 1 entries.
  std::vector<std::unique_ptr<Grid>> Slabs;
  unsigned long long HaloBytes = 0;
};

/// Runs time steps of a single-input stencil on a decomposed grid:
/// exchange halos, sweep every rank (optionally rank-parallel over the
/// pool), swap — exactly YASK's distributed stepping structure.
class DistributedStepper {
public:
  DistributedStepper(StencilSpec Spec, KernelConfig Config);

  /// Advances \p U (and its scratch twin \p V) by \p Steps sweeps.
  /// The result lands in U.
  void runTimeSteps(DecomposedGrid &U, DecomposedGrid &V, int Steps,
                    ThreadPool *Pool = nullptr) const;

private:
  StencilSpec Spec;
  KernelConfig Config;
};

} // namespace ys

#endif // YS_CODEGEN_DOMAINDECOMPOSITION_H
