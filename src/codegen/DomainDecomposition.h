//===- codegen/DomainDecomposition.h - Rank decomposition --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-process domain decomposition with overlapped halo exchange — the
/// substrate YASK uses for multi-rank (MPI) runs, simulated in-process.
///
/// The global grid splits into contiguous z-slabs ("ranks") using a
/// balanced floor+remainder partition.  Each rank's local grid interior
/// covers its owned planes *plus* an extension of up to Halo planes toward
/// every interior-facing neighbor (clipped at the global edges).  That
/// extension is the deep-halo scheme of Wittmann et al.: exchanging
/// Halo = k*radius planes once buys k fused time steps per rank, with the
/// extension planes recomputed redundantly — level s of a macro step is
/// exact from s*radius planes above the refreshed extension edge, so after
/// k levels the owned region is exact (and bit-identical to the monolithic
/// sweep, because every cell's arithmetic is unchanged).  Sides touching
/// the physical boundary need no refresh and no shrink: the global halo is
/// a constant-in-time Dirichlet boundary, exact at every level.
///
/// Two exchange paths feed a macro step:
///  * exchangeHalos() — the serial reference: element-wise neighbor copies
///    including the x/y halo rings, exactly what a bulk-synchronous step
///    would do before sweeping.
///  * packHalos() + unpackRun() — the overlapped path: whole padded
///    z-planes are memcpy'd into per-run staging buffers (fold.Z == 1
///    keeps each plane contiguous; other folds fall back to element-wise
///    staging), and the unpack copies run concurrently with interior
///    compute on the work-stealing pool.
///
/// haloBytesExchanged() counts the bytes each path actually moves (the
/// staged path moves every element twice: once into staging, once out).
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_DOMAINDECOMPOSITION_H
#define YS_CODEGEN_DOMAINDECOMPOSITION_H

#include "codegen/KernelExecutor.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "support/AlignedBuffer.h"
#include "support/ThreadPool.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ys {

/// A grid distributed over R contiguous z-slab ranks with deep halos.
class DecomposedGrid {
public:
  /// Splits \p GlobalDims into \p Ranks z-slabs with halo depth \p Halo.
  /// The parameters must satisfy validateParams(); violations abort with
  /// a diagnostic in every build mode (release included).
  DecomposedGrid(GridDims GlobalDims, unsigned Ranks, int Halo,
                 Fold F = Fold());

  /// Empty when the decomposition is well-formed, else a diagnostic:
  /// Ranks < 1, Halo < 1, or Nz < Ranks (an empty slab).  Callers taking
  /// external parameters (driver, benches) check this before constructing.
  static std::string validateParams(const GridDims &GlobalDims,
                                    unsigned Ranks, int Halo);

  unsigned numRanks() const { return static_cast<unsigned>(Slabs.size()); }
  const GridDims &globalDims() const { return GlobalDims; }
  int halo() const { return Halo; }

  /// The local grid of one rank (owned planes + extensions, halo Halo).
  Grid &rank(unsigned R) { return *Slabs[R]; }
  const Grid &rank(unsigned R) const { return *Slabs[R]; }

  /// Global z-range [begin, end) owned by rank \p R.
  long rankZBegin(unsigned R) const { return ZBegin[R]; }
  long rankZEnd(unsigned R) const { return ZBegin[R + 1]; }

  /// Extension planes below/above the owned slab inside the local
  /// interior: min(Halo, distance to the respective global edge).  The
  /// owned slab occupies local z in [extLo, extLo + owned).
  long rankExtLo(unsigned R) const { return ExtLo[R]; }
  long rankExtHi(unsigned R) const { return ExtHi[R]; }

  /// True when side \p Low of rank \p R receives refreshed data from a
  /// neighbor each exchange (extension not clipped by the global edge).
  /// Clipped sides sit on the physical boundary and recompute their
  /// extension exactly without any exchange.
  bool sideExchanged(unsigned R, bool Low) const {
    return (Low ? ExtLo[R] : ExtHi[R]) == Halo;
  }

  /// Scatters a global grid into the slabs (interiors, extensions, and
  /// every addressable halo cell; local halo cells beyond the global
  /// grid's halo are zero-filled and never read by a sweep).
  void scatter(const Grid &Global);

  /// Gathers the slabs' owned planes into a global grid.
  void gather(Grid &Global) const;

  /// Serial reference exchange: refreshes every exchanged extension plane
  /// element-wise from its owner's current values, including the x/y halo
  /// ring (the bulk-synchronous baseline).  Counts exchanged bytes.
  void exchangeHalos();

  /// \name Staged (overlappable) exchange.
  ///
  /// One exchange = packHalos() — every needed source plane memcpy'd into
  /// its run's staging buffer — then unpackRun(i) for every run, which the
  /// stepper interleaves with interior compute on the pool.  unpackRun
  /// writes only extension planes of its destination rank, which no
  /// interior-phase computation reads or writes, so unpack and interior
  /// tasks are race-free by construction.
  /// @{

  /// Number of (source rank, destination rank, plane range) copy runs one
  /// exchange performs.  Fixed by the decomposition geometry.
  size_t numCopyRuns() const { return Runs.size(); }

  /// Stages all runs' source planes; parallelizes over runs when \p Pool
  /// is given (pure reads of the rank grids — safe).  Counts the bytes
  /// the full staged exchange (pack + unpack) moves.
  void packHalos(ThreadPool *Pool = nullptr);

  /// Copies run \p I from staging into its destination rank's extension
  /// planes.  Distinct runs write distinct planes: safe to call
  /// concurrently for all I.
  void unpackRun(size_t I);

  /// @}

  /// Bytes moved by all exchanges so far (both paths).
  unsigned long long haloBytesExchanged() const { return HaloBytes; }

private:
  /// One contiguous range of planes flowing SrcRank -> DstRank.
  struct CopyRun {
    unsigned SrcRank = 0;
    unsigned DstRank = 0;
    long SrcZ0 = 0;   ///< First source-local interior z plane.
    long DstZ0 = 0;   ///< First destination-local interior z plane.
    long Planes = 0;
    size_t StageOffset = 0; ///< Doubles into Stage.
  };

  void buildCopyRuns();
  void copyPlaneDirect(const Grid &Src, long SrcZ, Grid &Dst, long DstZ);
  void packPlane(const Grid &Src, long SrcZ, double *Out) const;
  void unpackPlane(const double *In, Grid &Dst, long DstZ) const;

  GridDims GlobalDims;
  int Halo;
  Fold F;
  std::vector<long> ZBegin; ///< Ranks + 1 entries (owned ranges).
  std::vector<long> ExtLo, ExtHi;
  std::vector<std::unique_ptr<Grid>> Slabs;

  std::vector<CopyRun> Runs;
  AlignedBuffer<double> Stage;
  bool ContigPlanes = false; ///< fold.Z == 1: planes memcpy whole.
  size_t PlaneElems = 0;     ///< Doubles staged per plane.
  /// Doubles one serial exchangeHalos() moves / one staged exchange
  /// stages (the staged exchange moves 2x this: pack + unpack).
  unsigned long long SerialElemsPerExchange = 0;
  unsigned long long StagedElemsPerExchange = 0;
  unsigned long long HaloBytes = 0;
};

/// How DistributedStepper performs the per-macro-step exchange.
enum class ExchangeMode {
  Serial,    ///< Element-wise exchange, then rank sweeps (baseline).
  Overlapped ///< Staged memcpy exchange overlapped with interior compute.
};

/// Runs time steps of a single-input stencil on a decomposed grid with
/// one halo exchange per macro step of k = Halo/radius fused sweeps —
/// YASK's distributed stepping structure with deep halos.
///
/// Serial mode: exchange, then every rank advances k steps through its
/// own cached KernelExecutor::runTimeSteps (so wavefront / diamond /
/// deep-temporal schedules run their macro-step machinery per rank),
/// rank-parallel over the pool.
///
/// Overlapped mode: pack staging buffers, then run halo unpack copies
/// concurrently with each rank's *interior* trapezoid — level s over the
/// planes independent of incoming halo data — and finish with the
/// boundary bands once the unpack has landed, hiding communication under
/// T_interior.  All paths are bit-identical on the owned region.
class DistributedStepper {
public:
  DistributedStepper(StencilSpec Spec, KernelConfig Config);
  ~DistributedStepper();

  const KernelConfig &config() const { return Config; }

  ExchangeMode exchangeMode() const { return Mode; }
  void setExchangeMode(ExchangeMode M) { Mode = M; }

  /// Forces the kernel backend (plan / JIT) of every rank executor.
  void setBackend(KernelBackend B);

  /// Fused sweeps one exchange with halo depth \p Halo amortizes:
  /// max(1, Halo / radius).
  int stepsPerExchange(int Halo) const;

  /// Advances \p U (and its scratch twin \p V) by \p Steps sweeps.  The
  /// result lands in U's owned planes.
  void runTimeSteps(DecomposedGrid &U, DecomposedGrid &V, int Steps,
                    ThreadPool *Pool = nullptr) const;

  /// Exchange rounds performed by runTimeSteps calls so far — the handle
  /// proving deep halos amortize: Steps sweeps cost
  /// ceil(Steps / stepsPerExchange(halo)) rounds, not Steps.
  unsigned long long exchangeRounds() const { return ExchangeRounds; }

private:
  KernelExecutor &rankExec(unsigned R) const;
  void runMacroSerial(DecomposedGrid &Src, DecomposedGrid &Dst, int K,
                      ThreadPool *Pool) const;
  void runMacroOverlapped(DecomposedGrid &Src, DecomposedGrid &Dst, int K,
                          ThreadPool *Pool) const;

  StencilSpec Spec;
  KernelConfig Config;
  ExchangeMode Mode = ExchangeMode::Overlapped;
  std::optional<KernelBackend> BackendOverride;
  /// Per-rank executors: plans are geometry-keyed and bindBuffers mutates
  /// executor state, so concurrent ranks must never share one.  Lazily
  /// sized on first run; mutable like the executor's own plan cache.
  mutable std::vector<std::unique_ptr<KernelExecutor>> RankExecs;
  mutable unsigned long long ExchangeRounds = 0;
};

} // namespace ys

#endif // YS_CODEGEN_DOMAINDECOMPOSITION_H
