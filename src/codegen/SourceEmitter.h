//===- codegen/SourceEmitter.h - YASK-style C++ emission ---------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the C++ source a YASK-style code generator would produce for a
/// stencil under a kernel configuration: the blocked OpenMP loop nest, the
/// SIMD inner loop, and the unrolled stencil expression.  Folded configs
/// emit the same fold-aware shape the in-process KernelPlan fast path
/// executes: per-point fold-linear offset tables built once per sweep and
/// a `#pragma omp simd` lane loop per fold block.  The emitted text is
/// golden-tested and compilable; coefficients are printed with
/// shortest-round-trip precision so a compiled kernel reproduces the
/// interpreter arithmetic bit-for-bit.  Execution goes through
/// KernelExecutor, either via the in-process KernelPlan path or — for the
/// `jit` backend — by compiling emitJitTranslationUnit() with the system
/// compiler and dlopen-ing the result (see codegen/JitCompiler.h).
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_SOURCEEMITTER_H
#define YS_CODEGEN_SOURCEEMITTER_H

#include "codegen/KernelConfig.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"

#include <string>

namespace ys {

/// Grid geometry baked into a JIT translation unit as compile-time
/// constants.  The JIT kernel computes rectangular interior ranges, so
/// everything the index arithmetic needs — pads, halo, fold — is fixed at
/// compile time and only the range bounds vary per call.
struct JitGeometry {
  GridDims Dims;     ///< Interior extent (comment/diagnostics only).
  int Halo = 1;      ///< Halo width folded into the padded origin.
  Fold F;            ///< Storage fold (scalar = {1,1,1}).
  long PadX = 0, PadY = 0, PadZ = 0; ///< Padded extent in cells.
  long NVx = 0, NVy = 0, NVz = 0;    ///< Padded extent in fold blocks.

  JitGeometry() = default;
  explicit JitGeometry(const Grid &G);

  /// The geometry a Grid(\p Dims, \p Halo, \p F) would have, without
  /// allocating one (pads round the haloed extent up to the fold).
  static JitGeometry forDims(const GridDims &Dims, int Halo, const Fold &F);

  /// True when \p G has exactly this geometry (a kernel compiled for this
  /// geometry is valid for \p G).
  bool matches(const Grid &G) const;

  std::string str() const;
};

/// Generates compilable C++ kernel source for a stencil + configuration.
class SourceEmitter {
public:
  /// Options controlling the emitted style.
  struct Options {
    bool EmitOpenMP = true;     ///< #pragma omp on the outer loop.
    bool EmitSimdPragma = true; ///< #pragma omp simd on the inner loop.
    bool EmitRestrict = true;   ///< __restrict on pointer parameters.
    bool EmitExternC = false;   ///< extern "C" linkage on every function,
                                ///< so dlsym() finds unmangled names.
    std::string FunctionName;   ///< Defaults to "kernel_<stencil name>".
  };

  /// Emits the kernel function for one sweep of \p Spec under \p Config.
  static std::string emitKernel(const StencilSpec &Spec,
                                const KernelConfig &Config,
                                const Options &Opts);
  static std::string emitKernel(const StencilSpec &Spec,
                                const KernelConfig &Config) {
    return emitKernel(Spec, Config, Options());
  }

  /// Emits a self-contained translation unit: header comment, index macro,
  /// and the kernel function.
  static std::string emitTranslationUnit(const StencilSpec &Spec,
                                         const KernelConfig &Config,
                                         const Options &Opts);
  static std::string emitTranslationUnit(const StencilSpec &Spec,
                                         const KernelConfig &Config) {
    return emitTranslationUnit(Spec, Config, Options());
  }

  /// Renders the stencil expression as C++ (e.g. "0.5 * u0[IDX3(x,y,z)]
  /// + ...").
  static std::string emitExpression(const StencilSpec &Spec);

  /// Renders a stencil spec back to DSL source text (a `stencil`
  /// definition parseable by the front end) — the round-trip companion of
  /// the parser, used to persist programmatically built stencils.
  static std::string emitDsl(const StencilSpec &Spec,
                             const std::string &Name = std::string());

  /// Emits the multi-timestep driver around the sweep kernel: a plain
  /// ping-pong loop when Config.WavefrontDepth <= 1, otherwise the
  /// two-buffer temporal-wavefront frontier schedule (the loop structure
  /// KernelExecutor::runTimeSteps executes) preceded by the
  /// `kernel_<name>_slab` z-range kernel it advances each time level
  /// through, so the emitted driver is self-contained and linkable.
  static std::string emitTimeStepDriver(const StencilSpec &Spec,
                                        const KernelConfig &Config,
                                        const Options &Opts);
  static std::string emitTimeStepDriver(const StencilSpec &Spec,
                                        const KernelConfig &Config) {
    return emitTimeStepDriver(Spec, Config, Options());
  }

  /// Symbol name of the range kernel emitted by emitJitTranslationUnit().
  static const char *jitKernelSymbol() { return "ys_jit_kernel"; }

  /// Emits the translation unit the runtime JIT backend compiles: one
  /// extern "C" range kernel
  ///
  ///   void ys_jit_kernel(const double *const *ins, double *out,
  ///                      long z0, long z1, long y0, long y1,
  ///                      long x0, long x1);
  ///
  /// computing one rectangular interior range of one sweep, with the grid
  /// geometry \p G (pads, halo, fold) baked in as compile-time constants.
  /// Blocking, threading, and wavefront scheduling stay in
  /// KernelExecutor, which calls this kernel per range — so one compiled
  /// object serves every (block, threads, wavefront) variant of a
  /// (stencil, fold, geometry) triple.  Accumulation is in spec point
  /// order; compiled with -ffp-contract=off the result is bit-identical
  /// to the ReferenceInterpreter and the KernelPlan path.
  static std::string emitJitTranslationUnit(const StencilSpec &Spec,
                                            const JitGeometry &G);
};

} // namespace ys

#endif // YS_CODEGEN_SOURCEEMITTER_H
