//===- codegen/SourceEmitter.h - YASK-style C++ emission ---------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the C++ source a YASK-style code generator would produce for a
/// stencil under a kernel configuration: the blocked OpenMP loop nest, the
/// SIMD inner loop, and the unrolled stencil expression.  Folded configs
/// emit the same fold-aware shape the in-process KernelPlan fast path
/// executes: per-point fold-linear offset tables built once per sweep and
/// a `#pragma omp simd` lane loop per fold block.  The emitted text is a
/// demonstration artifact (golden-tested); execution in this repo goes
/// through KernelExecutor, which applies the same transformations.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CODEGEN_SOURCEEMITTER_H
#define YS_CODEGEN_SOURCEEMITTER_H

#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"

#include <string>

namespace ys {

/// Generates compilable C++ kernel source for a stencil + configuration.
class SourceEmitter {
public:
  /// Options controlling the emitted style.
  struct Options {
    bool EmitOpenMP = true;     ///< #pragma omp on the outer loop.
    bool EmitSimdPragma = true; ///< #pragma omp simd on the inner loop.
    bool EmitRestrict = true;   ///< __restrict on pointer parameters.
    std::string FunctionName;   ///< Defaults to "kernel_<stencil name>".
  };

  /// Emits the kernel function for one sweep of \p Spec under \p Config.
  static std::string emitKernel(const StencilSpec &Spec,
                                const KernelConfig &Config,
                                const Options &Opts);
  static std::string emitKernel(const StencilSpec &Spec,
                                const KernelConfig &Config) {
    return emitKernel(Spec, Config, Options());
  }

  /// Emits a self-contained translation unit: header comment, index macro,
  /// and the kernel function.
  static std::string emitTranslationUnit(const StencilSpec &Spec,
                                         const KernelConfig &Config,
                                         const Options &Opts);
  static std::string emitTranslationUnit(const StencilSpec &Spec,
                                         const KernelConfig &Config) {
    return emitTranslationUnit(Spec, Config, Options());
  }

  /// Renders the stencil expression as C++ (e.g. "0.5 * u0[IDX3(x,y,z)]
  /// + ...").
  static std::string emitExpression(const StencilSpec &Spec);

  /// Renders a stencil spec back to DSL source text (a `stencil`
  /// definition parseable by the front end) — the round-trip companion of
  /// the parser, used to persist programmatically built stencils.
  static std::string emitDsl(const StencilSpec &Spec,
                             const std::string &Name = std::string());

  /// Emits the multi-timestep driver around the sweep kernel: a plain
  /// ping-pong loop when Config.WavefrontDepth <= 1, otherwise the
  /// two-buffer temporal-wavefront frontier schedule (the loop structure
  /// KernelExecutor::runTimeSteps executes).
  static std::string emitTimeStepDriver(const StencilSpec &Spec,
                                        const KernelConfig &Config);
};

} // namespace ys

#endif // YS_CODEGEN_SOURCEEMITTER_H
