//===- codegen/KernelConfig.cpp - Kernel tuning parameters -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelConfig.h"

#include "support/StringUtils.h"

using namespace ys;

std::string BlockSize::str() const {
  if (isUnblocked())
    return "unblocked";
  auto Part = [](long V) {
    return V == 0 ? std::string("N") : format("%ld", V);
  };
  return Part(X) + "x" + Part(Y) + "x" + Part(Z);
}

std::string KernelConfig::str() const {
  std::string S = format("fold=%s block=%s", VectorFold.str().c_str(),
                         Block.str().c_str());
  if (WavefrontDepth > 1)
    S += format(" wf=%d", WavefrontDepth);
  if (Threads > 1)
    S += format(" threads=%u", Threads);
  if (StreamingStores)
    S += " nt";
  return S;
}
