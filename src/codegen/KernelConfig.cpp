//===- codegen/KernelConfig.cpp - Kernel tuning parameters -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelConfig.h"

#include "support/StringUtils.h"

using namespace ys;

const char *ys::scheduleName(Schedule S) {
  switch (S) {
  case Schedule::Sweep:
    return "sweep";
  case Schedule::Wavefront:
    return "wavefront";
  case Schedule::Diamond:
    return "diamond";
  case Schedule::DeepTemporal:
    return "deep-temporal";
  }
  return "sweep";
}

std::optional<Schedule> ys::parseSchedule(const std::string &Name) {
  if (Name == "sweep")
    return Schedule::Sweep;
  if (Name == "wavefront")
    return Schedule::Wavefront;
  if (Name == "diamond")
    return Schedule::Diamond;
  if (Name == "deep-temporal" || Name == "deeptemporal")
    return Schedule::DeepTemporal;
  return std::nullopt;
}

std::string BlockSize::str() const {
  if (isUnblocked())
    return "unblocked";
  auto Part = [](long V) {
    return V == 0 ? std::string("N") : format("%ld", V);
  };
  return Part(X) + "x" + Part(Y) + "x" + Part(Z);
}

std::string KernelConfig::validate() const {
  if (Block.X < 0 || Block.Y < 0 || Block.Z < 0)
    return format("block size %ldx%ldx%ld has a negative extent (use 0 "
                  "for unblocked)",
                  Block.X, Block.Y, Block.Z);
  if (VectorFold.X < 1 || VectorFold.Y < 1 || VectorFold.Z < 1)
    return format("vector fold %s has a non-positive component",
                  VectorFold.str().c_str());
  if (WavefrontDepth < 1)
    return format("wavefront depth %d must be >= 1 (1 disables temporal "
                  "blocking)",
                  WavefrontDepth);
  if (Sched == Schedule::Sweep && WavefrontDepth > 1)
    return format("schedule 'sweep' cannot fuse %d timesteps (pick "
                  "wavefront, diamond, or deep-temporal, or use wf=1)",
                  WavefrontDepth);
  if (Threads == 0)
    return "thread count must be >= 1";
  if (Ranks == 0)
    return "rank count must be >= 1 (1 disables the decomposition)";
  return std::string();
}

std::string KernelConfig::str() const {
  std::string S = format("fold=%s block=%s", VectorFold.str().c_str(),
                         Block.str().c_str());
  if (WavefrontDepth > 1)
    S += format(" wf=%d", WavefrontDepth);
  // Wavefront stays implicit so historical "wf=N" strings are unchanged.
  if (Sched != Schedule::Wavefront && Sched != Schedule::Sweep)
    S += format(" sched=%s", scheduleName(Sched));
  if (Threads > 1)
    S += format(" threads=%u", Threads);
  if (StreamingStores)
    S += " nt";
  if (Ranks > 1)
    S += format(" ranks=%u", Ranks);
  return S;
}
