//===- driver/Driver.h - Command-line driver ---------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver behind the `yasksite` tool.  Implemented as a
/// library (string-in / string-out) so the test suite can exercise every
/// command without spawning processes.
///
/// Commands:
///   machines                         list built-in machine models
///   stencils                         list built-in stencil names
///   predict  <stencil> [options]     ECM prediction
///   tune     <stencil> [options]     analytic + model-argmax selection
///   emit     <stencil> [options]     print generated C++ kernel source
///   trace    <stencil> [options]     cache-simulator traffic
///   verify   <stencil> [options]     differential variant-space check
///                                    against the reference interpreter
///   parse    <file.stencil>          parse and summarize a DSL file
///
/// Common options: --machine <name> --dims NXxNYxNZ --by N --bz N --bx N
///   --fold FXxFYxFZ --wf D --cores N --nt --sweeps N
/// Stencil argument: a built-in name (heat3d, star3d:R, box3d:R,
/// longrange:RX, heat2d, line1d:R) or a path to a .stencil DSL file.
///
//===----------------------------------------------------------------------===//

#ifndef YS_DRIVER_DRIVER_H
#define YS_DRIVER_DRIVER_H

#include "arch/MachineModel.h"
#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace ys {

/// Runs one driver invocation.  \p Args excludes the program name.
/// Output (and error text) is appended to \p Out.  Returns the process
/// exit code (0 == success).
int runDriver(const std::vector<std::string> &Args, std::string &Out);

/// \name Argument-resolution helpers (exposed for tests).
/// @{

/// Resolves a stencil argument: built-in name, parameterized builtin
/// ("star3d:2"), or a .stencil DSL file path.
Expected<StencilSpec> resolveStencil(const std::string &Arg);

/// Parses grid dims: "N" (an N^3 cube) or the explicit "NXxNYxNZ".
Expected<GridDims> parseDims(const std::string &Arg);

/// Parses "FXxFYxFZ".
Expected<Fold> parseFold(const std::string &Arg);

/// Names of all built-in stencils the driver accepts.
std::vector<std::string> builtinStencilNames();

/// @}

} // namespace ys

#endif // YS_DRIVER_DRIVER_H
