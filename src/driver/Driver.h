//===- driver/Driver.h - Command-line driver ---------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver behind the `yasksite` tool.  Implemented as a
/// library (string-in / string-out) so the test suite can exercise every
/// command without spawning processes.  The subcommands are thin clients
/// of the service layer (service/TuningService.h): they decode flags,
/// build a query, and format the result.
///
/// Commands:
///   machines                         list built-in machine models
///   stencils                         list built-in stencil names
///   predict  <stencil> [options]     ECM prediction
///   tune     <stencil> [options]     analytic + model-argmax selection
///   emit     <stencil> [options]     print generated C++ kernel source
///   trace    <stencil> [options]     cache-simulator traffic
///   verify   <stencil> [options]     differential variant-space check
///                                    against the reference interpreter
///   serve                            line-delimited JSON service on
///                                    stdin/stdout
///   parse    <file.stencil>          parse and summarize a DSL file
///
/// Common options: --machine <name> --dims NXxNYxNZ --by N --bz N --bx N
///   --fold FXxFYxFZ --wf D --cores N --nt --sweeps N  (both `--flag value`
///   and `--flag=value` forms are accepted)
/// Stencil argument: a built-in name (heat3d, star3d:R, box3d:R,
/// longrange:R, heat2d, line1d:R) or a path to a .stencil DSL file.
///
/// The argument-resolution helpers (resolveStencil, parseDims, parseFold,
/// builtinStencilNames) live in service/Resolve.h and are re-exported
/// here for existing users.
///
//===----------------------------------------------------------------------===//

#ifndef YS_DRIVER_DRIVER_H
#define YS_DRIVER_DRIVER_H

#include "service/Resolve.h"

#include <string>
#include <vector>

namespace ys {

/// Runs one driver invocation.  \p Args excludes the program name.
/// Output (and error text) is appended to \p Out.  Returns the process
/// exit code (0 == success).  Exception: the `serve` command streams
/// responses to stdout directly (it is interactive).
int runDriver(const std::vector<std::string> &Args, std::string &Out);

} // namespace ys

#endif // YS_DRIVER_DRIVER_H
