//===- driver/Driver.cpp - Command-line driver -------------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "cachesim/StencilTrace.h"
#include "codegen/JitCompiler.h"
#include "ecm/InCoreModel.h"
#include "frontend/Parser.h"
#include "ode/Registry.h"
#include "offsite/Database.h"
#include "service/Serve.h"
#include "solution/StencilSolution.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "tuner/TuningCache.h"
#include "verify/VariantChecker.h"

#include <climits>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace ys;

namespace {

/// Parsed common options.
struct DriverOptions {
  std::string StencilArg;
  std::string MachineName = "CascadeLakeSP";
  GridDims Dims{256, 256, 128};
  bool DimsGiven = false;
  KernelConfig Config;
  unsigned Cores = 0; // 0 = command default (1 or full socket).
  int Sweeps = 2;
  bool FoldGiven = false;
  // `ode` command extras.
  std::string IvpName = "heat3d";
  long Resolution = 32;
  std::string VariantName;
  int Steps = 10;
  bool ShowAsm = false;
  // `verify` command extras.
  std::string SeedsArg = "1";
  std::string PatternsArg;
  unsigned long long TolUlps = 0;
  double TolAbs = 0.0;
  // `verify`/`emit` backend: "" = YS_BACKEND / default behavior.
  std::string BackendArg;
  // `tune`/`serve` service extras.
  bool Measure = false;     ///< tune: run one timed trial of the winner.
  std::string CachePath;    ///< "" = YS_TUNE_CACHE.
  long Repeats = 3;         ///< Timing repetitions for trials.
  /// `predict`/`trace`/`validate` simulator coverage: "full", "sampled",
  /// "auto", or "off" (predict only).  "" = command default (predict:
  /// auto; trace/validate: full, preserving exact replay).
  std::string SimModeArg;
};

/// Parses options after the command; returns empty string on success.
/// Accepts both `--flag value` and `--flag=value`; numeric values are
/// checked (trailing garbage, overflow, sign), with the offending flag
/// named in the diagnostic.
std::string parseOptions(const std::vector<std::string> &Args, size_t From,
                         bool NeedStencil, DriverOptions &Opts) {
  size_t I = From;
  bool MissingStencil = false;
  if (NeedStencil) {
    // A flag in the stencil slot is a missing stencil, not a stencil: keep
    // parsing so a bad flag value is still diagnosed as such.
    if (I < Args.size() && !startsWith(Args[I], "--"))
      Opts.StencilArg = Args[I++];
    else
      MissingStencil = true;
  }
  while (I < Args.size()) {
    std::string Flag = Args[I];
    std::string Inline;
    bool HasInline = false;
    if (startsWith(Flag, "--")) {
      size_t Eq = Flag.find('=');
      if (Eq != std::string::npos) {
        Inline = Flag.substr(Eq + 1);
        Flag.resize(Eq);
        HasInline = true;
      }
    }
    auto Value = [&](std::string &Out) -> bool {
      if (HasInline) {
        Out = Inline;
        return true;
      }
      if (I + 1 >= Args.size())
        return false;
      Out = Args[++I];
      return true;
    };
    std::string V;
    std::string NumErr;
    auto AsLong = [&](long &Out) -> bool {
      Expected<long> P = parseLong(V);
      if (!P) {
        NumErr = format("invalid %s value: %s", Flag.c_str(),
                        P.takeError().message().c_str());
        return false;
      }
      Out = *P;
      return true;
    };
    auto AsInt = [&](int &Out) -> bool {
      long L = 0;
      if (!AsLong(L))
        return false;
      if (L < INT_MIN || L > INT_MAX) {
        NumErr = format("invalid %s value: '%s' is out of range",
                        Flag.c_str(), V.c_str());
        return false;
      }
      Out = static_cast<int>(L);
      return true;
    };
    auto AsUnsigned = [&](unsigned &Out) -> bool {
      long L = 0;
      if (!AsLong(L))
        return false;
      if (L < 0 || L > static_cast<long>(UINT_MAX)) {
        NumErr = format("invalid %s value: '%s' is out of range",
                        Flag.c_str(), V.c_str());
        return false;
      }
      Out = static_cast<unsigned>(L);
      return true;
    };
    if (Flag == "--machine" && Value(V)) {
      Opts.MachineName = V;
    } else if (Flag == "--dims" && Value(V)) {
      auto DimsOr = parseDims(V);
      if (!DimsOr)
        return DimsOr.takeError().message();
      Opts.Dims = *DimsOr;
      Opts.DimsGiven = true;
    } else if (Flag == "--fold" && Value(V)) {
      auto FoldOr = parseFold(V);
      if (!FoldOr)
        return FoldOr.takeError().message();
      Opts.Config.VectorFold = *FoldOr;
      Opts.FoldGiven = true;
    } else if (Flag == "--bx" && Value(V)) {
      if (!AsLong(Opts.Config.Block.X))
        return NumErr;
    } else if (Flag == "--by" && Value(V)) {
      if (!AsLong(Opts.Config.Block.Y))
        return NumErr;
    } else if (Flag == "--bz" && Value(V)) {
      if (!AsLong(Opts.Config.Block.Z))
        return NumErr;
    } else if (Flag == "--wf" && Value(V)) {
      if (!AsInt(Opts.Config.WavefrontDepth))
        return NumErr;
    } else if (Flag == "--schedule" && Value(V)) {
      std::optional<Schedule> Sched = parseSchedule(V);
      if (!Sched)
        return format("unknown schedule '%s' (sweep, wavefront, diamond, "
                      "deep-temporal)",
                      V.c_str());
      Opts.Config.Sched = *Sched;
    } else if (Flag == "--ranks" && Value(V)) {
      if (!AsUnsigned(Opts.Config.Ranks))
        return NumErr;
      if (Opts.Config.Ranks == 0)
        return format("invalid --ranks value: '%s' (must be >= 1)",
                      V.c_str());
    } else if (Flag == "--cores" && Value(V)) {
      if (!AsUnsigned(Opts.Cores))
        return NumErr;
    } else if (Flag == "--sweeps" && Value(V)) {
      if (!AsInt(Opts.Sweeps))
        return NumErr;
    } else if (Flag == "--ivp" && Value(V)) {
      Opts.IvpName = V;
    } else if (Flag == "--n" && Value(V)) {
      if (!AsLong(Opts.Resolution))
        return NumErr;
    } else if (Flag == "--variant" && Value(V)) {
      Opts.VariantName = V;
    } else if (Flag == "--steps" && Value(V)) {
      if (!AsInt(Opts.Steps))
        return NumErr;
    } else if (Flag == "--seeds" && Value(V)) {
      Opts.SeedsArg = V;
    } else if (Flag == "--patterns" && Value(V)) {
      Opts.PatternsArg = V;
    } else if (Flag == "--tol-ulps" && Value(V)) {
      Expected<unsigned long long> P = parseUnsigned(V);
      if (!P)
        return format("invalid --tol-ulps value: %s",
                      P.takeError().message().c_str());
      Opts.TolUlps = *P;
    } else if (Flag == "--tol-abs" && Value(V)) {
      Expected<double> P = parseDouble(V);
      if (!P)
        return format("invalid --tol-abs value: %s",
                      P.takeError().message().c_str());
      Opts.TolAbs = *P;
    } else if (Flag == "--backend" && Value(V)) {
      if (!parseKernelBackend(V))
        return format("unknown backend '%s' (plan, jit)", V.c_str());
      Opts.BackendArg = V;
    } else if (Flag == "--cache" && Value(V)) {
      Opts.CachePath = V;
    } else if (Flag == "--repeats" && Value(V)) {
      if (!AsLong(Opts.Repeats))
        return NumErr;
      if (Opts.Repeats < 1)
        return format("invalid --repeats value: '%s' (must be >= 1)",
                      V.c_str());
    } else if (Flag == "--sim-mode" && Value(V)) {
      if (V != "off" && !parseSimMode(V))
        return format("unknown --sim-mode '%s' (full, sampled, auto, off)",
                      V.c_str());
      Opts.SimModeArg = V;
    } else if (Flag == "--measure" && !HasInline) {
      Opts.Measure = true;
    } else if (Flag == "--asm" && !HasInline) {
      Opts.ShowAsm = true;
    } else if (Flag == "--nt" && !HasInline) {
      Opts.Config.StreamingStores = true;
    } else {
      return format("unknown or incomplete option '%s'", Args[I].c_str());
    }
    ++I;
  }
  if (MissingStencil)
    return "missing stencil argument";
  return std::string();
}

/// Service configuration for one driver invocation.
ServiceOptions driverServiceOptions(const DriverOptions &Opts) {
  ServiceOptions SO;
  SO.CachePath =
      Opts.CachePath.empty() ? TuningCache::envPath() : Opts.CachePath;
  SO.Repeats = static_cast<unsigned>(Opts.Repeats);
  SO.SweepsPerRepeat = static_cast<unsigned>(std::max(1, Opts.Sweeps));
  return SO;
}

const MachineModel *findMachine(const DriverOptions &Opts,
                                std::string &Out) {
  const MachineModel *M = MachineModel::findBuiltin(Opts.MachineName);
  if (!M) {
    Out += format("error: unknown machine '%s'; try 'machines'\n",
                  Opts.MachineName.c_str());
    return nullptr;
  }
  return M;
}

int cmdMachines(std::string &Out) {
  Table T({"name", "SIMD", "cores", "GHz", "L1", "L2", "L3", "mem GB/s"});
  for (const MachineModel &M : MachineModel::allBuiltin())
    T.addRow({M.Name, format("%u", M.Core.SimdBits),
              format("%u", M.CoresPerSocket),
              format("%.2f", M.Core.FrequencyGHz),
              humanBytes(M.level(0).SizeBytes),
              humanBytes(M.level(1).SizeBytes),
              humanBytes(M.level(2).SizeBytes),
              format("%.0f", M.Memory.BandwidthGBs)});
  Out += T.render();
  return 0;
}

int cmdStencils(std::string &Out) {
  Out += "built-in stencils (R = radius):\n";
  for (const std::string &Name : builtinStencilNames())
    Out += "  " + Name + "\n";
  Out += "or pass a path to a .stencil DSL file (see 'parse').\n";
  return 0;
}

int cmdPredict(const DriverOptions &Opts, TuningService &Service,
               std::string &Out) {
  PredictQuery Q;
  Q.Stencil = Opts.StencilArg;
  Q.Machine = Opts.MachineName;
  Q.Dims = Opts.Dims;
  Q.Config = Opts.Config;
  Q.FoldGiven = Opts.FoldGiven;
  Q.Cores = Opts.Cores ? Opts.Cores : 1;
  Q.SimCheck = Opts.SimModeArg != "off";
  if (std::optional<SimMode> Mode =
          parseSimMode(Opts.SimModeArg.empty() ? "auto" : Opts.SimModeArg))
    Q.Sim = *Mode;
  auto ROr = Service.predict(Q);
  if (!ROr) {
    Out += "error: " + ROr.takeError().message() + "\n";
    return 1;
  }
  const PredictResult &R = *ROr;
  Out += format("stencil  : %s (%s, radius %d, %u points, %u flops/LUP)\n",
                R.Spec.name().c_str(), R.Spec.shapeName(), R.Spec.radius(),
                R.Spec.numPoints(), R.Spec.flopsPerLup());
  Out += format("machine  : %s, grid %s, config %s\n",
                R.MachineName.c_str(), Opts.Dims.str().c_str(),
                R.Config.str().c_str());
  Out += format("ECM      : %s\n", R.Prediction.str().c_str());
  Out += format("traffic  : %s\n", R.Prediction.Traffic.str().c_str());
  if (R.SimChecked) {
    Out += format("sim check: %s replay, mem %.1f B/LUP (model %.1f, "
                  "delta %.0f%%), replayed %llu of %llu LUPs\n",
                  R.SimModeUsed.c_str(), R.SimMemBytesPerLup,
                  R.ModelMemBytesPerLup, R.SimDeltaFraction * 100,
                  R.SimTraffic.ReplayedLups, R.SimTraffic.Lups);
    if (!R.SimNote.empty())
      Out += format("           (exact fallback: %s)\n", R.SimNote.c_str());
  } else if (Q.SimCheck) {
    Out += format("sim check: skipped (%s)\n", R.SimNote.c_str());
  }
  Out += format("at %u cores: %.0f MLUP/s\n", R.Cores,
                R.Prediction.mlupsAtCores(R.Cores));
  if (Opts.ShowAsm) {
    const MachineModel *M = findMachine(Opts, Out);
    if (!M)
      return 1;
    InCoreModel IC(*M);
    Out += "\n" + IC.emitPseudoAsm(R.Spec, R.Config);
  }
  return 0;
}

int cmdTune(const DriverOptions &Opts, TuningService &Service,
            std::string &Out) {
  TuneQuery Q;
  Q.Stencil = Opts.StencilArg;
  Q.Machine = Opts.MachineName;
  Q.Dims = Opts.Dims;
  Q.Config = Opts.Config;
  Q.FoldGiven = Opts.FoldGiven;
  Q.Cores = Opts.Cores;
  Q.Measure = Opts.Measure;
  auto ROr = Service.tune(Q);
  if (!ROr) {
    Out += "error: " + ROr.takeError().message() + "\n";
    return 1;
  }
  const TuneResult &R = *ROr;
  Out += format("unblocked    : %.0f MLUP/s saturated\n",
                R.Unblocked.MLupsSaturated);
  Out += format("analytic LC  : %s -> %.0f MLUP/s\n",
                R.Analytic.Config.str().c_str(),
                R.Analytic.Prediction.MLupsSaturated);
  Out += format("model argmax : %s -> %.0f MLUP/s (%u candidates, zero "
                "kernel runs)\n",
                R.Best.Config.str().c_str(),
                R.Best.Prediction.MLupsSaturated,
                R.Best.CandidatesEvaluated);
  if (R.Measured) {
    Out += format("measured     : %.0f MLUP/s on this host (%s)\n",
                  R.MeasuredMlups, R.MeasureSource.c_str());
    if (!driverServiceOptions(Opts).CachePath.empty())
      if (Error E = Service.saveCache())
        Out += "warning: " + E.message() + "\n";
  }
  return 0;
}

int cmdEmit(const DriverOptions &Opts, TuningService &Service,
            std::string &Out) {
  EmitQuery Q;
  Q.Stencil = Opts.StencilArg;
  Q.Config = Opts.Config;
  Q.Backend = Opts.BackendArg;
  Q.Dims = Opts.Dims;
  Q.DimsGiven = Opts.DimsGiven;
  auto SrcOr = Service.emitSource(Q);
  if (!SrcOr) {
    Out += "error: " + SrcOr.takeError().message() + "\n";
    return 1;
  }
  Out += *SrcOr;
  return 0;
}

/// Maps --ranks onto the simulator-backed commands (trace/validate): both
/// the cache simulator and the traffic model then describe the kernel one
/// rank actually runs — the extended local grid of an interior rank
/// (ceil-split owned planes plus deep-halo extensions of
/// WavefrontDepth * radius planes per side).  Shrinks \p Dims in place,
/// resets Config.Ranks so the single-rank analysis below does not reduce
/// a second time, and returns a note for the command output.
std::string applyRankLocalView(const StencilSpec &Spec, GridDims &Dims,
                               KernelConfig &Config) {
  if (Config.Ranks <= 1)
    return std::string();
  unsigned Ranks = Config.Ranks;
  Config.Ranks = 1;
  long R = std::max(1, Spec.radius());
  int Depth = Config.isTemporal() ? Config.WavefrontDepth : 1;
  long Halo = static_cast<long>(Depth) * R;
  long OwnedNz = std::max<long>(
      1, (Dims.Nz + Ranks - 1) / static_cast<long>(Ranks));
  long ExtNz = std::min(OwnedNz + 2 * Halo, Dims.Nz);
  std::string Note =
      format("rank-local view: %u z-slab ranks; analyzing one interior "
             "rank (%ld owned planes + %ld-plane extensions, local grid "
             "%ldx%ldx%ld)\n",
             Ranks, OwnedNz, Halo, Dims.Nx, Dims.Ny, ExtNz);
  Dims.Nz = ExtNz;
  return Note;
}

int cmdTrace(const DriverOptions &Opts, const StencilSpec &Spec,
             std::string &Out) {
  const MachineModel *M = findMachine(Opts, Out);
  if (!M)
    return 1;
  GridDims Dims = Opts.Dims;
  KernelConfig Config = Opts.Config;
  Out += applyRankLocalView(Spec, Dims, Config);
  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(*M);
  StencilTraceRunner Runner(Spec, Dims, Config);
  // Temporal traces (wavefront/diamond/deep-temporal) are exact-only;
  // plain sweeps honor --sim-mode (default full, preserving the
  // historical exact replay).
  SimMode Mode = parseSimMode(Opts.SimModeArg).value_or(SimMode::Full);
  TraceTraffic T =
      Config.isTemporal()
          ? Runner.runTemporal(Sim)
          : Runner.run(Sim, std::max(1, Opts.Sweeps), Mode);
  Out += format("simulated %llu LUPs on %s caches, config %s\n", T.Lups,
                M->Name.c_str(), Config.str().c_str());
  if (T.Sampled)
    Out += format("sampled replay: %llu of %llu LUPs simulated (%.0fx), "
                  "extrapolated along the layer-condition staircase\n",
                  T.ReplayedLups, T.Lups,
                  static_cast<double>(T.Lups) /
                      static_cast<double>(std::max<unsigned long long>(
                          T.ReplayedLups, 1)));
  else if (!T.FallbackReason.empty())
    Out += format("exact fallback: %s\n", T.FallbackReason.c_str());
  Table Tab({"boundary", "bytes/LUP"});
  for (size_t I = 0; I < T.BytesPerLup.size(); ++I) {
    std::string Name = I + 1 < T.BytesPerLup.size()
                           ? format("L%zu<->L%zu", I + 1, I + 2)
                           : "memory";
    Tab.addRow({Name, format("%.2f", T.BytesPerLup[I])});
  }
  Out += Tab.render();
  return 0;
}

int cmdVerify(const DriverOptions &Opts, const StencilSpec &Spec,
              std::string &Out) {
  // Verification wants coverage, not bandwidth: the oracle interprets an
  // expression tree per cell, so default to small dims unless the user
  // asked for specific ones.
  GridDims Dims = Opts.DimsGiven ? Opts.Dims : GridDims{24, 16, 12};
  CheckOptions CO;
  CO.Steps = std::max(1, Opts.Sweeps);
  CO.Tol.MaxUlps = static_cast<uint64_t>(Opts.TolUlps);
  CO.Tol.AbsTol = Opts.TolAbs;
  if (Opts.Cores)
    CO.MaxThreads = Opts.Cores;

  CO.Seeds.clear();
  for (const std::string &S : split(Opts.SeedsArg, ',')) {
    Expected<unsigned long long> V = parseUnsigned(S);
    if (!V) {
      Out += format("error: invalid seed in --seeds: %s\n",
                    V.takeError().message().c_str());
      return 1;
    }
    CO.Seeds.push_back(*V);
  }
  if (CO.Seeds.empty()) {
    Out += "error: --seeds needs at least one seed\n";
    return 1;
  }
  if (!Opts.PatternsArg.empty()) {
    CO.Patterns.clear();
    for (const std::string &P : split(Opts.PatternsArg, ',')) {
      auto PatOr = patternByName(P);
      if (!PatOr) {
        Out += "error: " + PatOr.takeError().message() + "\n";
        return 1;
      }
      CO.Patterns.push_back(*PatOr);
    }
  }

  std::string CfgErr = Opts.Config.validate();
  if (!CfgErr.empty()) {
    Out += "error: invalid kernel config: " + CfgErr + "\n";
    return 1;
  }

  if (!Opts.BackendArg.empty())
    CO.Backend = parseKernelBackend(Opts.BackendArg);

  VariantChecker Checker(Spec, Dims, CO);
  CheckReport Report = Checker.checkAll();
  Out += format("verify %s on %s: %d step(s), %zu pattern(s) x %zu "
                "seed(s), tolerance %s\n",
                Spec.name().c_str(), Dims.str().c_str(), CO.Steps,
                CO.Patterns.size(), CO.Seeds.size(), CO.Tol.str().c_str());
  Out += Report.summary() + "\n";
  // When the jit backend was in play, show the cache behavior: a warm
  // cache run reports zero compiler invocations.
  if (Report.JitComparisons > 0) {
    JitStats S = JitRuntime::instance().stats();
    Out += format("jit: %u compile(s), %u memory hit(s), %u disk hit(s) "
                  "[cache %s]\n",
                  S.Invocations, S.MemoryHits, S.DiskHits,
                  JitRuntime::instance().cacheDir().c_str());
  }
  return Report.ok() ? 0 : 1;
}

int cmdParse(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    Out += format("error: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  auto DefsOr = Parser::parse(Buffer.str());
  if (!DefsOr) {
    Out += format("%s:%s\n", Path.c_str(),
                  DefsOr.takeError().message().c_str());
    return 1;
  }
  for (const ParsedStencil &Def : *DefsOr) {
    Out += format("stencil %s: %zu grids, %zu params, %u equations, "
                  "max radius %d, chained halo %d\n",
                  Def.Name.c_str(), Def.GridNames.size(),
                  Def.Params.size(), Def.Bundle.numEquations(),
                  Def.Bundle.maxRadius(), Def.Bundle.chainedHalo());
    auto Groups = Def.Bundle.greedyFusionGroups();
    Out += format("  fusion groups: %zu\n", Groups.size());
    if (Def.Bundle.numEquations() == 1) {
      auto SpecOr = Def.singleSpec();
      if (SpecOr)
        Out += format("  single spec: %s, %u points, %u flops/LUP\n",
                      SpecOr->shapeName(), SpecOr->numPoints(),
                      SpecOr->flopsPerLup());
    }
  }
  return 0;
}

/// Builds a solution from a DSL file path or, for built-in stencil names,
/// a synthesized ping-pong bundle.
Expected<StencilSolution> buildSolution(const DriverOptions &Opts) {
  std::ifstream In(Opts.StencilArg);
  if (In) {
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    return StencilSolution::fromDslSource(Buffer.str(), Opts.Dims,
                                          Opts.Config);
  }
  auto SpecOr = resolveStencil(Opts.StencilArg);
  if (!SpecOr)
    return SpecOr.takeError();
  BundleEquation Eq;
  Eq.OutputGrid = 1;
  Eq.Spec = *SpecOr;
  StencilBundle Bundle(SpecOr->name(), {"u", "unew"}, {Eq});
  return StencilSolution::create(Bundle, Opts.Dims, Opts.Config);
}

int cmdValidate(const DriverOptions &Opts, const StencilSpec &Spec,
                std::string &Out) {
  const MachineModel *M = findMachine(Opts, Out);
  if (!M)
    return 1;
  GridDims Dims = Opts.Dims;
  KernelConfig Config = Opts.Config;
  Out += applyRankLocalView(Spec, Dims, Config);
  ECMModel Model(*M);
  ECMPrediction P = Model.predict(Spec, Dims, Config);

  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(*M);
  StencilTraceRunner Runner(Spec, Dims, Config);
  SimMode Mode = parseSimMode(Opts.SimModeArg).value_or(SimMode::Full);
  TraceTraffic T =
      Config.isTemporal()
          ? Runner.runTemporal(Sim)
          : Runner.run(Sim, std::max(1, Opts.Sweeps), Mode);

  // The simulated numbers include the cold first touch of every grid;
  // the model predicts steady state.  Subtract the compulsory traffic
  // (one fill per grid cell over all sweeps) before comparing.  Sampled
  // replays extrapolate a warmed-up window and are steady state already.
  unsigned GridsTouched =
      Spec.numInputGrids() == 1 ? 2 : Spec.numInputGrids() + 1;
  double ColdPerLup = T.Sampled ? 0.0
                                : static_cast<double>(GridsTouched) * 8.0 /
                                      std::max(1, Opts.Sweeps);

  Out += format("stencil %s on %s, grid %s, config %s\n",
                Spec.name().c_str(), M->Name.c_str(), Dims.str().c_str(),
                Config.str().c_str());
  if (T.Sampled)
    Out += format("(sampled simulation: %llu of %llu LUPs replayed)\n",
                  T.ReplayedLups, T.Lups);
  else if (!T.FallbackReason.empty())
    Out += format("(exact fallback: %s)\n", T.FallbackReason.c_str());
  Out += format("(cold-start adjustment: %.1f B/LUP over %d sweeps)\n",
                ColdPerLup, std::max(1, Opts.Sweeps));
  Table Tab({"boundary", "predicted B/LUP", "simulated B/LUP",
             "sim steady-state", "rel. error"});
  double WorstErr = 0;
  for (size_t I = 0; I < T.BytesPerLup.size(); ++I) {
    std::string Name = I + 1 < T.BytesPerLup.size()
                           ? format("L%zu<->L%zu", I + 1, I + 2)
                           : "memory";
    double Pred = P.Traffic.BytesPerLup[I];
    double SimV = T.BytesPerLup[I];
    double Steady = std::max(0.0, SimV - ColdPerLup);
    double Err = std::abs(Pred - Steady) / std::max(Steady, 8.0);
    WorstErr = std::max(WorstErr, Err);
    Tab.addRow({Name, format("%.1f", Pred), format("%.1f", SimV),
                format("%.1f", Steady), format("%.0f%%", Err * 100)});
  }
  Out += Tab.render();
  Out += format("verdict: %s (worst boundary error %.0f%%)\n",
                WorstErr < 0.35 ? "model and simulator agree"
                                : "disagreement beyond 35% - likely an LC "
                                  "gray zone; see docs/performance-model.md",
                WorstErr * 100);
  return 0;
}

int cmdRun(const DriverOptions &Opts, std::string &Out) {
  const MachineModel *M = findMachine(Opts, Out);
  if (!M)
    return 1;
  auto SolOr = buildSolution(Opts);
  if (!SolOr) {
    Out += format("error: %s\n", SolOr.takeError().message().c_str());
    return 1;
  }
  StencilSolution &Sol = *SolOr;
  Rng R(42);
  Sol.grid(0).fillRandom(R);
  Out += Sol.describePlan();

  int Steps = std::max(1, Opts.Sweeps);
  Timer T;
  Sol.runSteps(Steps);
  double Secs = T.seconds();
  double Lups = static_cast<double>(Opts.Dims.lups()) * Steps *
                Sol.plan().size();
  ECMModel Model(*M);
  Out += format("ran %d steps: %.3f s host (%.0f MLUP/s), checksum %.6g\n",
                Steps, Secs, Lups / Secs / 1e6, Sol.checksum());
  unsigned Cores = Opts.Cores ? Opts.Cores : 1;
  Out += format("predicted on %s at %u cores: %.3g s/step\n",
                M->Name.c_str(), Cores,
                Sol.predictSecondsPerStep(Model, Cores));
  return 0;
}

int cmdOde(const DriverOptions &Opts, TuningService &Service,
           std::string &Out) {
  RankQuery Q;
  Q.Method = Opts.StencilArg;
  Q.Ivp = Opts.IvpName;
  Q.Resolution = Opts.Resolution;
  Q.Machine = Opts.MachineName;
  Q.Cores = Opts.Cores ? Opts.Cores : 1;
  auto ROr = Service.rank(Q);
  if (!ROr) {
    Out += "error: " + ROr.takeError().message() + "\n";
    return 1;
  }
  const RankResult &R = *ROr;
  Out += format("variants of %s on %s (predicted for %s, %u cores):\n",
                R.MethodName.c_str(), R.ProblemName.c_str(),
                R.MachineName.c_str(), R.Cores);
  for (const VariantPrediction &P : R.Ranked)
    Out += format("  %-44s %2u sweeps/step  %.3g s/step\n",
                  P.Variant.Name.c_str(), P.SweepsPerStep,
                  P.SecondsPerStep);

  // Pick the variant: explicit flag or the model's choice.
  RKVariant Variant = R.Ranked.front().Variant.Variant;
  KernelConfig Config = R.Ranked.front().Variant.Config;
  if (!Opts.VariantName.empty()) {
    auto VarOr = rkVariantByName(Opts.VariantName);
    if (!VarOr) {
      Out += "error: " + VarOr.takeError().message() + "\n";
      return 1;
    }
    Variant = *VarOr;
    Config = Opts.Config;
  }

  // Integration runs in the driver: it needs the tableau and problem
  // objects, which the ranking above has already vetted.
  auto TableauOr = tableauByName(Q.Method);
  auto IvpOr = ivpByName(Q.Ivp, Q.Resolution);
  if (!TableauOr || !IvpOr) {
    Out += "error: method or IVP vanished after ranking\n";
    return 1;
  }
  IVP &Problem = **IvpOr;
  ExplicitRKIntegrator Integ(*TableauOr, Variant, Config);
  if (!Integ.supports(Problem)) {
    Out += format("error: variant %s unsupported for %s (needs the "
                  "stencil form)\n",
                  rkVariantName(Variant), Problem.name().c_str());
    return 1;
  }
  Grid Y(Problem.dims(), Problem.halo(), Config.VectorFold);
  Problem.initialCondition(Y);
  RKWorkspace WS;
  double H = Problem.suggestedDt();
  Timer T;
  Integ.integrate(Problem, 0.0, H, Opts.Steps, Y, WS);
  double Secs = T.seconds();
  Out += format("integrated %d steps (dt=%.3g) with %s in %.3f s "
                "(%.3g s/step)\n",
                Opts.Steps, H, rkVariantName(Variant), Secs,
                Secs / Opts.Steps);

  // Exact-solution error where available.
  if (auto *Heat3 = dynamic_cast<Heat3DIVP *>(&Problem)) {
    Grid Exact(Problem.dims(), Problem.halo());
    Heat3->exactSolution(H * Opts.Steps, Exact);
    Out += format("max error vs exact semi-discrete solution: %.3e\n",
                  Grid::maxAbsDiffInterior(Y, Exact));
  } else if (auto *Heat2 = dynamic_cast<Heat2DIVP *>(&Problem)) {
    Grid Exact(Problem.dims(), Problem.halo());
    Heat2->exactSolution(H * Opts.Steps, Exact);
    Out += format("max error vs exact semi-discrete solution: %.3e\n",
                  Grid::maxAbsDiffInterior(Y, Exact));
  }
  return 0;
}

int cmdTuneDb(const std::vector<std::string> &Args, std::string &Out) {
  if (Args.size() < 3) {
    Out += "error: tunedb needs a subcommand: build <path> | query <path> "
           "<method>\n";
    return 1;
  }
  const std::string &Sub = Args[1];
  const std::string &Path = Args[2];

  if (Sub == "build") {
    DriverOptions Opts;
    std::string OptErr = parseOptions(Args, 3, /*NeedStencil=*/false, Opts);
    if (!OptErr.empty()) {
      Out += "error: " + OptErr + "\n";
      return 1;
    }
    const MachineModel *M = findMachine(Opts, Out);
    if (!M)
      return 1;
    unsigned Cores = Opts.Cores ? Opts.Cores : M->CoresPerSocket;
    TuningService Service(driverServiceOptions(Opts));
    TuningDatabase Db;
    std::vector<std::string> Problems = {"heat2d", "heat3d",
                                         "reaction-diffusion3d"};
    for (const ButcherTableau &TB : ButcherTableau::allExplicit())
      for (const std::string &ProblemName : Problems) {
        RankQuery Q;
        Q.Method = TB.Name;
        Q.Ivp = ProblemName;
        Q.Resolution = Opts.Resolution;
        Q.Machine = Opts.MachineName;
        Q.Cores = Cores;
        auto RankedOr = Service.rank(Q);
        if (!RankedOr || RankedOr->Ranked.empty())
          continue;
        TuningRecord R;
        R.Machine = M->Name;
        R.Method = TB.Name;
        R.Problem = ProblemName;
        R.Dims = RankedOr->ProblemDims;
        R.Cores = Cores;
        R.VariantName = RankedOr->Ranked.front().Variant.Name;
        R.PredictedSecondsPerStep = RankedOr->Ranked.front().SecondsPerStep;
        Db.insert(std::move(R));
      }
    if (Error E = Db.saveFile(Path)) {
      Out += "error: " + E.message() + "\n";
      return 1;
    }
    Out += format("tuned %zu (method, problem) pairs on %s at %u cores "
                  "-> %s (zero kernel executions)\n",
                  Db.size(), M->Name.c_str(), Cores, Path.c_str());
    return 0;
  }

  if (Sub == "query") {
    if (Args.size() < 4) {
      Out += "error: tunedb query <path> <method> [options]\n";
      return 1;
    }
    const std::string &Method = Args[3];
    DriverOptions Opts;
    std::string OptErr = parseOptions(Args, 4, /*NeedStencil=*/false, Opts);
    if (!OptErr.empty()) {
      Out += "error: " + OptErr + "\n";
      return 1;
    }
    const MachineModel *M = findMachine(Opts, Out);
    if (!M)
      return 1;
    unsigned Cores = Opts.Cores ? Opts.Cores : M->CoresPerSocket;
    auto DbOr = TuningDatabase::loadFile(Path);
    if (!DbOr) {
      Out += "error: " + DbOr.takeError().message() + "\n";
      return 1;
    }
    GridDims Dims{Opts.Resolution, Opts.Resolution, Opts.Resolution};
    if (Opts.IvpName == "heat2d")
      Dims = {Opts.Resolution * 1, Opts.Resolution, 1};
    const TuningRecord *R =
        DbOr->lookup(M->Name, Method, Opts.IvpName, Dims, Cores);
    bool Nearest = false;
    if (!R) {
      R = DbOr->lookupNearest(M->Name, Method, Opts.IvpName, Dims, Cores);
      Nearest = true;
    }
    if (!R) {
      Out += format("no record for (%s, %s, %s) in %s\n", M->Name.c_str(),
                    Method.c_str(), Opts.IvpName.c_str(), Path.c_str());
      return 1;
    }
    Out += format("%s: %s (pred %.3g s/step, tuned at %ldx%ldx%ld)%s\n",
                  Method.c_str(), R->VariantName.c_str(),
                  R->PredictedSecondsPerStep, R->Dims.Nx, R->Dims.Ny,
                  R->Dims.Nz, Nearest ? " [nearest size]" : "");
    return 0;
  }

  Out += format("error: unknown tunedb subcommand '%s'\n", Sub.c_str());
  return 1;
}

const char *UsageText =
    "usage: yasksite <command> [args]\n"
    "commands:\n"
    "  machines                      list built-in machine models\n"
    "  stencils                      list built-in stencil names\n"
    "  predict <stencil> [options]   analytic ECM prediction with a\n"
    "                                simulator cross-check (--sim-mode\n"
    "                                auto|sampled|full|off, default auto)\n"
    "  tune    <stencil> [options]   model-driven parameter selection;\n"
    "                                --measure times the winner on this "
    "host\n"
    "  emit    <stencil> [options]   print generated kernel source\n"
    "  trace   <stencil> [options]   cache-simulator traffic; --sim-mode\n"
    "                                full|sampled|auto (default full)\n"
    "  validate <stencil> [options]  model-vs-simulator traffic check;\n"
    "                                --sim-mode full|sampled|auto\n"
    "  verify  <stencil> [options]   differential check of every executor\n"
    "                                variant vs the reference interpreter;\n"
    "                                --sweeps = steps, --seeds A,B --patterns\n"
    "                                smooth,random,impulse,boundary-stress\n"
    "                                --tol-ulps N --tol-abs X\n"
    "                                --backend plan|jit (default: YS_BACKEND)\n"
    "  run     <stencil> [options]   execute (DSL bundle or builtin); "
    "--sweeps = steps\n"
    "  ode     <method> [options]    integrate an IVP; --ivp NAME --n N "
    "--steps N --variant V\n"
    "  serve   [options]             tuning service: one flat JSON request\n"
    "                                per stdin line, one response per line\n"
    "                                (ops: ping predict tune measure rank\n"
    "                                emit stats save shutdown); --cache "
    "PATH\n"
    "                                --repeats N (default: YS_TUNE_CACHE)\n"
    "  tunedb  build|query <path> .. offline tuning database\n"
    "  parse   <file.stencil>        parse and summarize a DSL file\n"
    "options: --machine NAME --dims N|NXxNYxNZ --fold FXxFYxFZ --asm\n"
    "         --bx N --by N --bz N --wf DEPTH --cores N --nt --sweeps N\n"
    "         --schedule sweep|wavefront|diamond|deep-temporal\n"
    "         --ranks N (z-slab domain decomposition: predict/tune add the\n"
    "         overlapped-communication ECM term; trace/validate analyze\n"
    "         one interior rank's extended local grid)\n"
    "         --sim-mode full|sampled|auto|off (predict/trace/validate)\n"
    "         --backend plan|jit (emit/verify; env: YS_BACKEND, YS_CXX,\n"
    "         YS_JIT_CACHE)  [--flag=value also accepted]\n";

} // namespace

namespace {

int runDriverImpl(const std::vector<std::string> &Args, std::string &Out) {
  if (Args.empty()) {
    Out += UsageText;
    return 1;
  }
  const std::string &Cmd = Args[0];
  if (Cmd == "help" || Cmd == "--help" || Cmd == "-h") {
    Out += UsageText;
    return 0;
  }
  if (Cmd == "machines")
    return cmdMachines(Out);
  if (Cmd == "stencils")
    return cmdStencils(Out);
  if (Cmd == "tunedb")
    return cmdTuneDb(Args, Out);
  if (Cmd == "parse") {
    if (Args.size() != 2) {
      Out += "error: parse needs exactly one file argument\n";
      return 1;
    }
    return cmdParse(Args[1], Out);
  }
  if (Cmd == "serve") {
    DriverOptions Opts;
    std::string OptErr = parseOptions(Args, 1, /*NeedStencil=*/false, Opts);
    if (!OptErr.empty()) {
      Out += "error: " + OptErr + "\n";
      return 1;
    }
    return runServeLoop(std::cin, std::cout, driverServiceOptions(Opts));
  }

  bool Known = Cmd == "predict" || Cmd == "tune" || Cmd == "emit" ||
               Cmd == "trace" || Cmd == "run" || Cmd == "ode" ||
               Cmd == "validate" || Cmd == "verify";
  if (!Known) {
    Out += format("error: unknown command '%s'\n", Cmd.c_str());
    Out += UsageText;
    return 1;
  }

  DriverOptions Opts;
  std::string OptErr = parseOptions(Args, 1, /*NeedStencil=*/true, Opts);
  if (!OptErr.empty()) {
    Out += "error: " + OptErr + "\n";
    return 1;
  }
  // `run` accepts multi-equation DSL bundles, so it resolves its own
  // input.
  if (Cmd == "run")
    return cmdRun(Opts, Out);

  // Service-backed subcommands: build a query, let the service resolve
  // and validate it.
  if (Cmd == "predict" || Cmd == "tune" || Cmd == "emit" || Cmd == "ode") {
    TuningService Service(driverServiceOptions(Opts));
    if (Cmd == "predict")
      return cmdPredict(Opts, Service, Out);
    if (Cmd == "tune")
      return cmdTune(Opts, Service, Out);
    if (Cmd == "emit")
      return cmdEmit(Opts, Service, Out);
    return cmdOde(Opts, Service, Out);
  }

  auto SpecOr = resolveStencil(Opts.StencilArg);
  if (!SpecOr) {
    Out += "error: " + SpecOr.takeError().message() + "\n";
    return 1;
  }

  if (Cmd == "validate")
    return cmdValidate(Opts, *SpecOr, Out);
  if (Cmd == "verify")
    return cmdVerify(Opts, *SpecOr, Out);
  return cmdTrace(Opts, *SpecOr, Out);
}

} // namespace

int ys::runDriver(const std::vector<std::string> &Args, std::string &Out) {
  // Structured tracing (YS_TRACE=<file>): one record per driver
  // invocation, covering command, arguments, exit code and wall time.
  Trace::initFromEnv();
  TraceScope Scope("driver");
  Scope.field("command", Args.empty() ? std::string() : Args[0])
      .field("args", join(Args, " "));
  int Code = runDriverImpl(Args, Out);
  Scope.field("exit_code", Code);
  return Code;
}
