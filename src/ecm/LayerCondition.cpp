//===- ecm/LayerCondition.cpp - Layer-condition traffic analysis -----------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/LayerCondition.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace ys;

std::string TrafficPrediction::str() const {
  std::vector<std::string> Parts;
  for (size_t I = 0; I < BytesPerLup.size(); ++I)
    Parts.push_back(format("B%zu=%.1f", I, BytesPerLup[I]));
  std::string Reuse;
  for (ReuseClass R : LevelReuse)
    Reuse += R == ReuseClass::Plane ? 'P' : (R == ReuseClass::Row ? 'R' : '-');
  return join(Parts, " ") + " reuse=" + Reuse;
}

unsigned long long LayerConditionAnalysis::effectiveCapacity(
    unsigned Level, unsigned ActiveCoresPerSharedCache) const {
  const CacheLevelModel &L = Machine.level(Level);
  double Capacity = static_cast<double>(L.SizeBytes) * SafetyFactor;
  if (L.Shared && ActiveCoresPerSharedCache > 1)
    Capacity /= std::min(ActiveCoresPerSharedCache, L.SharingCores);
  return static_cast<unsigned long long>(Capacity);
}

namespace {

/// Per-dimension maximum absolute offsets of a spec.
struct Radii {
  int Rx = 0, Ry = 0, Rz = 0;
};

Radii radiiOf(const StencilSpec &Spec) {
  Radii R;
  for (const StencilPoint &P : Spec.points()) {
    R.Rx = std::max(R.Rx, std::abs(P.Dx));
    R.Ry = std::max(R.Ry, std::abs(P.Dy));
    R.Rz = std::max(R.Rz, std::abs(P.Dz));
  }
  return R;
}

} // namespace

TrafficPrediction LayerConditionAnalysis::analyze(
    const StencilSpec &Spec, const GridDims &Dims, const KernelConfig &Config,
    unsigned ActiveCoresPerSharedCache) const {
  TrafficPrediction Out;
  BlockSize B = Config.Block.resolved(Dims);
  Radii R = radiiOf(Spec);
  unsigned NumGrids = Spec.numInputGrids();

  // Stream counts per reuse class.
  double PlaneStreams = 0, RowStreams = 0, NoneStreams = 0;
  unsigned long long SumPlanes = 0, SumRows = 0;
  for (unsigned G = 0; G < NumGrids; ++G) {
    unsigned long long Pz = Spec.planeOffsets(G).size();
    unsigned long long Rows = Spec.rowOffsets(G).size();
    PlaneStreams += 1.0;
    RowStreams += static_cast<double>(Pz);
    NoneStreams += static_cast<double>(Rows);
    SumPlanes += Pz;
    SumRows += Rows;
  }

  // Footprints for the whole kernel (inputs plus the outputs' own planes /
  // rows, which compete for capacity).
  unsigned Outs = std::max(1u, Spec.OutputGrids);
  Out.PlaneFootprintBytes =
      (SumPlanes + Outs) * static_cast<unsigned long long>(B.X) * B.Y * 8;
  Out.RowFootprintBytes =
      (SumRows + Outs) * static_cast<unsigned long long>(B.X) * 8;

  // Halo-reload factor of spatial blocking (inputs only): each block
  // re-reads its neighbors' halo layers.  The factor is additive traffic
  // only at levels counting each element once (plane reuse); at row/none
  // levels the per-stream counts already include the halo re-reads, and a
  // plane-reuse level holding two adjacent block windows retains the halo
  // across blocks (validated against the cache simulator; see E4).
  double HaloFactor = 1.0;
  if (B.X < Dims.Nx && R.Rx > 0)
    HaloFactor *= static_cast<double>(B.X + 2 * R.Rx) / B.X;
  if (B.Y < Dims.Ny && R.Ry > 0)
    HaloFactor *= static_cast<double>(B.Y + 2 * R.Ry) / B.Y;
  if (B.Z < Dims.Nz && R.Rz > 0)
    HaloFactor *= static_cast<double>(B.Z + 2 * R.Rz) / B.Z;

  double OutputBytes = (Config.StreamingStores ? 8.0 : 16.0) * Outs;

  // Steady-state residency: when the kernel's whole working set (all
  // input and output grids) fits in a level, only cold misses cross the
  // outer boundaries — per-sweep traffic there is ~0.
  unsigned long long WorkingSetBytes =
      static_cast<unsigned long long>(NumGrids + Outs) * Dims.Nx *
      Dims.Ny * Dims.Nz * 8;

  double PrevBytes = -1.0;
  for (unsigned Level = 0; Level < Machine.numLevels(); ++Level) {
    unsigned long long Cap =
        effectiveCapacity(Level, ActiveCoresPerSharedCache);
    if (WorkingSetBytes <= Cap) {
      Out.LevelReuse.push_back(ReuseClass::Plane);
      Out.BytesPerLup.push_back(0.0);
      PrevBytes = 0.0;
      continue;
    }
    ReuseClass Reuse = ReuseClass::None;
    if (Cap >= Out.PlaneFootprintBytes)
      Reuse = ReuseClass::Plane;
    else if (Cap >= Out.RowFootprintBytes)
      Reuse = ReuseClass::Row;
    Out.LevelReuse.push_back(Reuse);

    bool HaloApplies = Reuse == ReuseClass::Plane &&
                       Cap < 2 * Out.PlaneFootprintBytes;
    double Streams = Reuse == ReuseClass::Plane
                         ? PlaneStreams
                         : (Reuse == ReuseClass::Row ? RowStreams
                                                     : NoneStreams);
    double Bytes =
        Streams * 8.0 * (HaloApplies ? HaloFactor : 1.0) + OutputBytes;
    // Outward traffic can never exceed the traffic arriving from inside.
    if (PrevBytes >= 0.0)
      Bytes = std::min(Bytes, PrevBytes);
    Out.BytesPerLup.push_back(Bytes);
    PrevBytes = Bytes;
  }
  return Out;
}

SimRegime LayerConditionAnalysis::classifyForSampling(
    const StencilSpec &Spec, const GridDims &Dims, const KernelConfig &Config,
    unsigned ActiveCoresPerSharedCache) const {
  SimRegime R;
  R.Prediction = analyze(Spec, Dims, Config, ActiveCoresPerSharedCache);

  unsigned Outs = std::max(1u, Spec.OutputGrids);
  unsigned long long WorkingSetBytes =
      static_cast<unsigned long long>(Spec.numInputGrids() + Outs) *
      Dims.Nx * Dims.Ny * Dims.Nz * 8;
  unsigned long long TotalCapacity = 0;
  for (unsigned Level = 0; Level < Machine.numLevels(); ++Level)
    TotalCapacity += effectiveCapacity(Level, ActiveCoresPerSharedCache);
  if (WorkingSetBytes < 2 * TotalCapacity) {
    R.Ambiguous = true;
    R.Reason = format("working set (%llu B) within 2x of total cache "
                      "capacity (%llu B): traffic is residency-dominated",
                      WorkingSetBytes, TotalCapacity);
    return R;
  }

  // Gray zone at the outermost level: the memory staircase (E14) steps
  // exactly where a footprint crosses that capacity, and near the step the
  // reuse class is alignment/conflict dependent.
  unsigned Last = Machine.numLevels() - 1;
  unsigned long long Cap =
      effectiveCapacity(Last, ActiveCoresPerSharedCache);
  auto inGrayZone = [Cap](unsigned long long Footprint) {
    return Cap > 0 && 2 * Footprint > Cap && 2 * Footprint < 3 * Cap;
  };
  if (inGrayZone(R.Prediction.PlaneFootprintBytes)) {
    R.Ambiguous = true;
    R.Reason = format("plane footprint (%llu B) in the gray zone of the "
                      "%s capacity (%llu B)",
                      R.Prediction.PlaneFootprintBytes,
                      Machine.level(Last).Name.c_str(), Cap);
    return R;
  }
  if (inGrayZone(R.Prediction.RowFootprintBytes)) {
    R.Ambiguous = true;
    R.Reason = format("row footprint (%llu B) in the gray zone of the "
                      "%s capacity (%llu B)",
                      R.Prediction.RowFootprintBytes,
                      Machine.level(Last).Name.c_str(), Cap);
    return R;
  }
  return R;
}

long LayerConditionAnalysis::maxPlaneBlockY(
    const StencilSpec &Spec, const GridDims &Dims, unsigned Level,
    unsigned ActiveCoresPerSharedCache) const {
  unsigned long long SumPlanes = 0;
  for (unsigned G = 0; G < Spec.numInputGrids(); ++G)
    SumPlanes += Spec.planeOffsets(G).size();
  unsigned long long Cap = effectiveCapacity(Level, ActiveCoresPerSharedCache);
  unsigned long long PerRowBytes =
      (SumPlanes + std::max(1u, Spec.OutputGrids)) * 8ull * Dims.Nx;
  if (PerRowBytes == 0)
    return 0;
  long By = static_cast<long>(Cap / PerRowBytes);
  return std::min<long>(By, Dims.Ny);
}
