//===- ecm/LayerCondition.h - Layer-condition traffic analysis ---*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layer-condition (LC) analysis: for each cache level, decide analytically
/// how much of a stencil's reuse that level can serve, yielding the data
/// volume crossing each boundary of the hierarchy per lattice update.
/// This is the mechanism that lets YaskSite pick blocking parameters
/// without running the code: block sizes enter the LC footprints, and the
/// predicted traffic feeds the ECM transfer terms.
///
/// Reuse granularities per input grid, checked per level (effective
/// capacity = size * SafetyFactor, halved per additional active core group
/// when shared):
///   plane reuse: the level holds all distinct z-planes of the block
///                -> one load stream per grid (each element loaded once);
///   row reuse:   the level holds all distinct rows of the block
///                -> one load stream per distinct z-plane offset;
///   none:        one load stream per distinct (dy, dz) row offset.
/// Output grids add a store plus (without streaming stores) a
/// write-allocate stream at every boundary.  Spatial blocking multiplies
/// input traffic by the halo-reload factor of each blocked dimension.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ECM_LAYERCONDITION_H
#define YS_ECM_LAYERCONDITION_H

#include "arch/MachineModel.h"
#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"

#include <string>
#include <vector>

namespace ys {

/// Which reuse level a cache level sustains.
enum class ReuseClass {
  None = 0,
  Row = 1,
  Plane = 2,
};

/// Traffic prediction across all boundaries.
struct TrafficPrediction {
  /// Bytes per LUP crossing boundary I (0 == L1<->L2, last == memory).
  std::vector<double> BytesPerLup;

  /// Reuse class sustained by each cache level.
  std::vector<ReuseClass> LevelReuse;

  /// Footprints (bytes) required for plane/row reuse given the block.
  unsigned long long PlaneFootprintBytes = 0;
  unsigned long long RowFootprintBytes = 0;

  std::string str() const;
};

/// Outcome of asking whether a (stencil, dims, config) point sits firmly
/// inside one layer-condition regime — the precondition for the cache
/// simulator's sampled fast mode (cachesim/StencilTrace.h).  Ambiguous
/// points (boundary grid sizes on the E14 staircase, cache-resident
/// working sets) must be simulated exactly.
struct SimRegime {
  TrafficPrediction Prediction;
  bool Ambiguous = false;
  std::string Reason; ///< Why classification is ambiguous (empty if not).
};

/// Performs layer-condition analysis against a machine model.
class LayerConditionAnalysis {
public:
  /// \p SafetyFactor derates cache capacity for associativity conflicts
  /// and concurrent streams (0.5 is the standard LC choice).
  explicit LayerConditionAnalysis(const MachineModel &Machine,
                                  double SafetyFactor = 0.5)
      : Machine(Machine), SafetyFactor(SafetyFactor) {}

  /// Predicts per-boundary traffic for one sweep of \p Spec over \p Dims
  /// under \p Config.  \p ActiveCoresPerSharedCache scales shared levels
  /// (1 == single-core run owning the whole shared cache).
  TrafficPrediction analyze(const StencilSpec &Spec, const GridDims &Dims,
                            const KernelConfig &Config,
                            unsigned ActiveCoresPerSharedCache = 1) const;

  /// Decides whether the point sits firmly inside one layer-condition
  /// regime at every cache level, or on a regime boundary where an
  /// analytic extrapolation cannot be trusted.  A point is ambiguous when
  /// (a) the whole working set is within 2x of the total cache capacity
  /// (per-sweep traffic is dominated by residency, not streaming), or
  /// (b) a plane/row footprint lands in the gray zone (0.5, 1.5) of the
  /// outermost level's capacity — the band where E14 shows the traffic
  /// staircase mid-step.  Uses the analysis' own SafetyFactor; the sampled
  /// simulator constructs this with SafetyFactor 1.0 (raw capacities).
  SimRegime classifyForSampling(const StencilSpec &Spec,
                                const GridDims &Dims,
                                const KernelConfig &Config,
                                unsigned ActiveCoresPerSharedCache = 1) const;

  /// Effective capacity of cache level \p Level in bytes.
  unsigned long long effectiveCapacity(
      unsigned Level, unsigned ActiveCoresPerSharedCache) const;

  /// Largest y-block extent (x unblocked, z block \p Bz) for which plane
  /// reuse holds at cache level \p Level — the closed-form selection the
  /// analytic tuner uses.  Returns 0 when even a single row is too large.
  long maxPlaneBlockY(const StencilSpec &Spec, const GridDims &Dims,
                      unsigned Level,
                      unsigned ActiveCoresPerSharedCache = 1) const;

private:
  const MachineModel &Machine;
  double SafetyFactor;
};

} // namespace ys

#endif // YS_ECM_LAYERCONDITION_H
