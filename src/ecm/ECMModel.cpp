//===- ecm/ECMModel.cpp - Execution-Cache-Memory model ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/ECMModel.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ys;

double ECMPrediction::mlupsAtCores(unsigned Cores) const {
  if (Cores == 0)
    Cores = 1;
  double Linear = MLupsSingleCore * Cores;
  if (TMem <= 0.0)
    return Linear; // Cache-resident: no bandwidth ceiling in the model.
  return std::min(Linear, MLupsSaturated);
}

std::string ECMPrediction::str() const {
  std::vector<std::string> Terms;
  for (double T : TData)
    Terms.push_back(format("%.1f", T));
  return format("{%.1f || %.1f | %s} = %.1f cy/CL (%.0f MLUP/s 1c, "
                "sat %u cores @ %.0f MLUP/s)",
                InCore.TOL, InCore.TnOL, join(Terms, " | ").c_str(), TECM,
                MLupsSingleCore, SaturationCores, MLupsSaturated);
}

ECMPrediction ECMModel::predict(const StencilSpec &Spec, const GridDims &Dims,
                                const KernelConfig &Config,
                                unsigned ActiveCoresPerSharedCache) const {
  ECMPrediction P;
  P.InCore = InCore.analyze(Spec, Config);
  P.Traffic = LC.analyze(Spec, Dims, Config, ActiveCoresPerSharedCache);
  if (Config.isTemporal())
    applySchedule(Spec, Dims, Config, ActiveCoresPerSharedCache, P.Traffic);

  const double BytesPerCL = 8.0; // LUPs per cache line of results.
  for (unsigned I = 0; I < Machine.numLevels(); ++I) {
    double BoundaryBW = I + 1 < Machine.numLevels()
                            ? Machine.level(I).BytesPerCycleToNext
                            : Machine.memBytesPerCycle();
    double BytesPerLine = P.Traffic.BytesPerLup[I] * BytesPerCL;
    P.TData.push_back(BytesPerLine / BoundaryBW);
  }

  if (Overlap == TransferOverlap::None) {
    double TransferSum = 0;
    for (double T : P.TData)
      TransferSum += T;
    P.TECM = std::max(P.InCore.TOL, P.InCore.TnOL + TransferSum);
  } else {
    double MaxTerm = std::max(P.InCore.TOL, P.InCore.TnOL);
    for (double T : P.TData)
      MaxTerm = std::max(MaxTerm, T);
    P.TECM = MaxTerm;
  }
  P.CyclesPerLup = P.TECM / 8.0;

  double FreqGHz = Machine.Core.FrequencyGHz;
  P.MLupsSingleCore = 8.0 * FreqGHz * 1e3 / P.TECM;

  P.TMem = P.TData.back();
  if (P.TMem > 0.0) {
    P.SaturationCores = static_cast<unsigned>(std::ceil(P.TECM / P.TMem));
    P.SaturationCores =
        std::min(std::max(P.SaturationCores, 1u), Machine.CoresPerSocket);
    P.MLupsSaturated = 8.0 * FreqGHz * 1e3 / P.TMem;
  } else {
    P.SaturationCores = Machine.CoresPerSocket;
    P.MLupsSaturated = P.MLupsSingleCore * Machine.CoresPerSocket;
  }
  return P;
}

void ECMModel::applySchedule(const StencilSpec &Spec, const GridDims &Dims,
                             const KernelConfig &Config,
                             unsigned ActiveCoresPerSharedCache,
                             TrafficPrediction &Traffic) const {
  (void)ActiveCoresPerSharedCache;
  int Depth = Config.WavefrontDepth;
  long R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1);

  // Each schedule keeps a different z-window of both time-level buffers
  // live in the outermost shared cache, and pays a different per-cell
  // reload signature once the window is resident.  The window is
  // cooperatively shared: all threads work inside one temporal pass, so
  // the full shared last-level capacity (one window per cache instance)
  // applies — no per-core derating and no LC safety factor.
  unsigned long long WindowPlanes = 0;
  double TemporalBytes = 0;
  switch (Config.Sched) {
  case Schedule::Sweep:
    return; // Not temporal (predict() never routes Sweep here).
  case Schedule::Wavefront:
    // Frontiers spaced ~R planes apart, each advancing by Bz per wave:
    // the live region spans Depth*R + 2*Bz planes.  Memory sees per macro
    // step and cell: source fill (8 B), write-allocate fill of the
    // destination (8 B), and both buffers written back (16 B) — 32 B per
    // Depth LUPs.  Streaming stores are not applicable inside a temporal
    // pass (intermediate values are reused from cache).
    WindowPlanes = static_cast<unsigned long long>(Depth) * R + 2ull * Bz;
    TemporalBytes = 32.0 / Depth;
    break;
  case Schedule::Diamond: {
    // The window is one diamond tile (width W >= 2*Depth*R) plus its read
    // halo, independent of how long the fused-step train is.  The
    // boundary diamonds re-touch ~2*Depth*R planes per tile from memory
    // when the neighboring tile has already been evicted, so the 32 B
    // streaming term carries a (W + 2*R*Depth)/W reload factor.
    long W = std::max<long>(Bz, 2 * Depth * R);
    WindowPlanes = static_cast<unsigned long long>(W) + 2ull * R;
    TemporalBytes = (32.0 / Depth) *
                    (static_cast<double>(W) + 2.0 * R * Depth) /
                    static_cast<double>(W);
    break;
  }
  case Schedule::DeepTemporal:
    // Minimal-skew pipeline: the live window is the plane pipeline itself,
    // ~Depth*R + 2*R planes (+2 for the in-flight planes), the smallest of
    // the three — which is what lets deep-temporal sustain high depths.
    // Each cell is streamed exactly once per macro step: 32 B / Depth with
    // no reload factor.
    WindowPlanes =
        static_cast<unsigned long long>(Depth) * R + 2ull * R + 2ull;
    TemporalBytes = 32.0 / Depth;
    break;
  }

  unsigned long long WorkingSet =
      2ull * WindowPlanes * Dims.Nx * Dims.Ny * 8;

  unsigned Last = Machine.lastLevel();
  // Spill at >= capacity: the window is never the cache's only tenant, so
  // exactly-full already loses the temporal reuse.
  if (WorkingSet >= Machine.level(Last).SizeBytes)
    return; // Window spills: temporal reuse lost, keep per-sweep traffic.

  double &MemBytes = Traffic.BytesPerLup.back();
  MemBytes = std::min(MemBytes, TemporalBytes);
}

double ECMModel::predictedSeconds(const ECMPrediction &P, const GridDims &Dims,
                                  double Sweeps, unsigned Cores) const {
  double Lups = static_cast<double>(Dims.lups()) * Sweeps;
  double Rate = P.mlupsAtCores(Cores) * 1e6;
  return Lups / Rate;
}
