//===- ecm/ECMModel.cpp - Execution-Cache-Memory model ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/ECMModel.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ys;

double ECMPrediction::mlupsAtCores(unsigned Cores) const {
  if (Cores == 0)
    Cores = 1;
  double Linear = MLupsSingleCore * Cores;
  if (TMem <= 0.0)
    return Linear; // Cache-resident: no bandwidth ceiling in the model.
  return std::min(Linear, MLupsSaturated);
}

std::string ECMPrediction::str() const {
  std::vector<std::string> Terms;
  for (double T : TData)
    Terms.push_back(format("%.1f", T));
  return format("{%.1f || %.1f | %s} = %.1f cy/CL (%.0f MLUP/s 1c, "
                "sat %u cores @ %.0f MLUP/s)",
                InCore.TOL, InCore.TnOL, join(Terms, " | ").c_str(), TECM,
                MLupsSingleCore, SaturationCores, MLupsSaturated);
}

ECMPrediction ECMModel::predict(const StencilSpec &Spec, const GridDims &Dims,
                                const KernelConfig &Config,
                                unsigned ActiveCoresPerSharedCache) const {
  ECMPrediction P;
  P.InCore = InCore.analyze(Spec, Config);
  P.Traffic = LC.analyze(Spec, Dims, Config, ActiveCoresPerSharedCache);
  if (Config.WavefrontDepth > 1)
    applyWavefront(Spec, Dims, Config, ActiveCoresPerSharedCache, P.Traffic);

  const double BytesPerCL = 8.0; // LUPs per cache line of results.
  for (unsigned I = 0; I < Machine.numLevels(); ++I) {
    double BoundaryBW = I + 1 < Machine.numLevels()
                            ? Machine.level(I).BytesPerCycleToNext
                            : Machine.memBytesPerCycle();
    double BytesPerLine = P.Traffic.BytesPerLup[I] * BytesPerCL;
    P.TData.push_back(BytesPerLine / BoundaryBW);
  }

  if (Overlap == TransferOverlap::None) {
    double TransferSum = 0;
    for (double T : P.TData)
      TransferSum += T;
    P.TECM = std::max(P.InCore.TOL, P.InCore.TnOL + TransferSum);
  } else {
    double MaxTerm = std::max(P.InCore.TOL, P.InCore.TnOL);
    for (double T : P.TData)
      MaxTerm = std::max(MaxTerm, T);
    P.TECM = MaxTerm;
  }
  P.CyclesPerLup = P.TECM / 8.0;

  double FreqGHz = Machine.Core.FrequencyGHz;
  P.MLupsSingleCore = 8.0 * FreqGHz * 1e3 / P.TECM;

  P.TMem = P.TData.back();
  if (P.TMem > 0.0) {
    P.SaturationCores = static_cast<unsigned>(std::ceil(P.TECM / P.TMem));
    P.SaturationCores =
        std::min(std::max(P.SaturationCores, 1u), Machine.CoresPerSocket);
    P.MLupsSaturated = 8.0 * FreqGHz * 1e3 / P.TMem;
  } else {
    P.SaturationCores = Machine.CoresPerSocket;
    P.MLupsSaturated = P.MLupsSingleCore * Machine.CoresPerSocket;
  }
  return P;
}

void ECMModel::applyWavefront(const StencilSpec &Spec, const GridDims &Dims,
                              const KernelConfig &Config,
                              unsigned ActiveCoresPerSharedCache,
                              TrafficPrediction &Traffic) const {
  (void)ActiveCoresPerSharedCache;
  int Depth = Config.WavefrontDepth;
  int R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1);

  // At steady state the frontiers are spaced ~R planes apart and each
  // advances by Bz per wave, so the live region spans Depth*R + 2*Bz
  // planes in both time-level buffers.  The window is cooperatively
  // shared: all threads work inside one wavefront, so the full shared
  // last-level capacity (one window per cache instance) applies — no
  // per-core derating and no LC safety factor (the window is the only
  // tenant).
  unsigned long long WindowPlanes =
      static_cast<unsigned long long>(Depth) * R + 2ull * Bz;
  unsigned long long WorkingSet =
      2ull * WindowPlanes * Dims.Nx * Dims.Ny * 8;

  unsigned Last = Machine.lastLevel();
  if (WorkingSet > Machine.level(Last).SizeBytes)
    return; // Window spills: temporal reuse lost, keep per-sweep traffic.

  // With the window cache-resident, memory sees per macro step and cell:
  // a fill of the source buffer (8 B), a write-allocate fill of the
  // destination buffer (8 B) and both buffers written back (16 B) — 32 B
  // per Depth LUPs.  Streaming stores are not applicable inside the
  // wavefront (intermediate values are reused from cache).
  double WavefrontBytes = 32.0 / Depth;
  double &MemBytes = Traffic.BytesPerLup.back();
  MemBytes = std::min(MemBytes, WavefrontBytes);
}

double ECMModel::predictedSeconds(const ECMPrediction &P, const GridDims &Dims,
                                  double Sweeps, unsigned Cores) const {
  double Lups = static_cast<double>(Dims.lups()) * Sweeps;
  double Rate = P.mlupsAtCores(Cores) * 1e6;
  return Lups / Rate;
}
