//===- ecm/ECMModel.cpp - Execution-Cache-Memory model ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/ECMModel.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ys;

double ECMPrediction::mlupsAtCores(unsigned Cores) const {
  if (Cores == 0)
    Cores = 1;
  double Linear = MLupsSingleCore * Cores;
  if (TMem <= 0.0)
    return Linear; // Cache-resident: no bandwidth ceiling in the model.
  return std::min(Linear, MLupsSaturated);
}

std::string ECMPrediction::str() const {
  std::vector<std::string> Terms;
  for (double T : TData)
    Terms.push_back(format("%.1f", T));
  std::string S =
      format("{%.1f || %.1f | %s} = %.1f cy/CL (%.0f MLUP/s 1c, "
             "sat %u cores @ %.0f MLUP/s)",
             InCore.TOL, InCore.TnOL, join(Terms, " | ").c_str(), TECM,
             MLupsSingleCore, SaturationCores, MLupsSaturated);
  if (Ranks > 1)
    S += format(" [%u ranks, %.2fx redundant, comm %.1f us/macro %s]",
                Ranks, RedundantFactor, CommSecondsPerMacro * 1e6,
                OverlapComm ? "overlapped" : "serialized");
  return S;
}

ECMPrediction ECMModel::predict(const StencilSpec &Spec, const GridDims &Dims,
                                const KernelConfig &Config,
                                unsigned ActiveCoresPerSharedCache) const {
  if (Config.Ranks > 1) {
    // Distributed: the kernel each rank actually runs sweeps its extended
    // local grid (owned slab + deep-halo extensions), so run the whole
    // single-rank analysis on those dims — layer conditions, schedule
    // windows, and saturation all see the rank-local working set — then
    // add the communication term on top.  Modeled on the slowest rank:
    // ceil-split owned planes, both sides exchanged.
    long R = std::max(1, Spec.radius());
    int Depth = Config.isTemporal() ? Config.WavefrontDepth : 1;
    long Halo = static_cast<long>(Depth) * R;
    long OwnedNz = std::max<long>(
        1, (Dims.Nz + Config.Ranks - 1) / static_cast<long>(Config.Ranks));
    GridDims Local = Dims;
    Local.Nz = std::min(OwnedNz + 2 * Halo, Dims.Nz);

    KernelConfig Mono = Config;
    Mono.Ranks = 1;
    ECMPrediction P = predict(Spec, Local, Mono, ActiveCoresPerSharedCache);
    applyCommTerm(Spec, Dims, Config, P);
    return P;
  }

  ECMPrediction P;
  P.InCore = InCore.analyze(Spec, Config);
  P.Traffic = LC.analyze(Spec, Dims, Config, ActiveCoresPerSharedCache);
  if (Config.isTemporal())
    applySchedule(Spec, Dims, Config, ActiveCoresPerSharedCache, P.Traffic);

  const double BytesPerCL = 8.0; // LUPs per cache line of results.
  for (unsigned I = 0; I < Machine.numLevels(); ++I) {
    double BoundaryBW = I + 1 < Machine.numLevels()
                            ? Machine.level(I).BytesPerCycleToNext
                            : Machine.memBytesPerCycle();
    double BytesPerLine = P.Traffic.BytesPerLup[I] * BytesPerCL;
    P.TData.push_back(BytesPerLine / BoundaryBW);
  }

  if (Overlap == TransferOverlap::None) {
    double TransferSum = 0;
    for (double T : P.TData)
      TransferSum += T;
    P.TECM = std::max(P.InCore.TOL, P.InCore.TnOL + TransferSum);
  } else {
    double MaxTerm = std::max(P.InCore.TOL, P.InCore.TnOL);
    for (double T : P.TData)
      MaxTerm = std::max(MaxTerm, T);
    P.TECM = MaxTerm;
  }
  P.CyclesPerLup = P.TECM / 8.0;

  double FreqGHz = Machine.Core.FrequencyGHz;
  P.MLupsSingleCore = 8.0 * FreqGHz * 1e3 / P.TECM;

  P.TMem = P.TData.back();
  if (P.TMem > 0.0) {
    P.SaturationCores = static_cast<unsigned>(std::ceil(P.TECM / P.TMem));
    P.SaturationCores =
        std::min(std::max(P.SaturationCores, 1u), Machine.CoresPerSocket);
    P.MLupsSaturated = 8.0 * FreqGHz * 1e3 / P.TMem;
  } else {
    P.SaturationCores = Machine.CoresPerSocket;
    P.MLupsSaturated = P.MLupsSingleCore * Machine.CoresPerSocket;
  }
  return P;
}

void ECMModel::applySchedule(const StencilSpec &Spec, const GridDims &Dims,
                             const KernelConfig &Config,
                             unsigned ActiveCoresPerSharedCache,
                             TrafficPrediction &Traffic) const {
  (void)ActiveCoresPerSharedCache;
  int Depth = Config.WavefrontDepth;
  long R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1);

  // Each schedule keeps a different z-window of both time-level buffers
  // live in the outermost shared cache, and pays a different per-cell
  // reload signature once the window is resident.  The window is
  // cooperatively shared: all threads work inside one temporal pass, so
  // the full shared last-level capacity (one window per cache instance)
  // applies — no per-core derating and no LC safety factor.
  unsigned long long WindowPlanes = 0;
  double TemporalBytes = 0;
  switch (Config.Sched) {
  case Schedule::Sweep:
    return; // Not temporal (predict() never routes Sweep here).
  case Schedule::Wavefront:
    // Frontiers spaced ~R planes apart, each advancing by Bz per wave:
    // the live region spans Depth*R + 2*Bz planes.  Memory sees per macro
    // step and cell: source fill (8 B), write-allocate fill of the
    // destination (8 B), and both buffers written back (16 B) — 32 B per
    // Depth LUPs.  Streaming stores are not applicable inside a temporal
    // pass (intermediate values are reused from cache).
    WindowPlanes = static_cast<unsigned long long>(Depth) * R + 2ull * Bz;
    TemporalBytes = 32.0 / Depth;
    break;
  case Schedule::Diamond: {
    // The window is one diamond tile (width W >= 2*Depth*R) plus its read
    // halo, independent of how long the fused-step train is.  The
    // boundary diamonds re-touch ~2*Depth*R planes per tile from memory
    // when the neighboring tile has already been evicted, so the 32 B
    // streaming term carries a (W + 2*R*Depth)/W reload factor.
    long W = std::max<long>(Bz, 2 * Depth * R);
    WindowPlanes = static_cast<unsigned long long>(W) + 2ull * R;
    TemporalBytes = (32.0 / Depth) *
                    (static_cast<double>(W) + 2.0 * R * Depth) /
                    static_cast<double>(W);
    break;
  }
  case Schedule::DeepTemporal:
    // Minimal-skew pipeline: the live window is the plane pipeline itself,
    // ~Depth*R + 2*R planes (+2 for the in-flight planes), the smallest of
    // the three — which is what lets deep-temporal sustain high depths.
    // Each cell is streamed exactly once per macro step: 32 B / Depth with
    // no reload factor.
    WindowPlanes =
        static_cast<unsigned long long>(Depth) * R + 2ull * R + 2ull;
    TemporalBytes = 32.0 / Depth;
    break;
  }

  unsigned long long WorkingSet =
      2ull * WindowPlanes * Dims.Nx * Dims.Ny * 8;

  unsigned Last = Machine.lastLevel();
  // Spill at >= capacity: the window is never the cache's only tenant, so
  // exactly-full already loses the temporal reuse.
  if (WorkingSet >= Machine.level(Last).SizeBytes)
    return; // Window spills: temporal reuse lost, keep per-sweep traffic.

  double &MemBytes = Traffic.BytesPerLup.back();
  MemBytes = std::min(MemBytes, TemporalBytes);
}

void ECMModel::applyCommTerm(const StencilSpec &Spec,
                             const GridDims &GlobalDims,
                             const KernelConfig &Config,
                             ECMPrediction &P) const {
  long R = std::max(1, Spec.radius());
  int Depth = Config.isTemporal() ? Config.WavefrontDepth : 1;
  long Halo = static_cast<long>(Depth) * R;
  long OwnedNz = std::max<long>(
      1,
      (GlobalDims.Nz + Config.Ranks - 1) / static_cast<long>(Config.Ranks));
  long ExtNz = std::min(OwnedNz + 2 * Halo, GlobalDims.Nz);

  P.Ranks = Config.Ranks;
  P.MacroDepth = Depth;
  P.RedundantFactor =
      static_cast<double>(ExtNz) / static_cast<double>(OwnedNz);

  // Boundary bands are the planes whose level-s values depend on incoming
  // halo data: Halo + s*R planes per exchanged side (the interior
  // trapezoid's complement).  Summed over the Depth fused levels against
  // Depth * ExtNz total planes this closes to (3*Halo + R) / ExtNz for
  // both sides — the share of macro-step compute that must wait for the
  // exchange to land.
  P.BoundaryFraction =
      std::min(1.0, static_cast<double>(3 * Halo + R) /
                        static_cast<double>(ExtNz));

  // The staged exchange memcpy's whole padded z-planes into and out of
  // per-run staging buffers: Halo planes per exchanged side, every
  // element moved twice (pack + unpack), all bandwidth-bound on the
  // socket's sustained memory interface.
  double PlaneBytes = static_cast<double>(GlobalDims.Nx + 2 * Halo) *
                      static_cast<double>(GlobalDims.Ny + 2 * Halo) * 8.0;
  P.CommBytesPerMacro = 2.0 * 2.0 * static_cast<double>(Halo) * PlaneBytes;
  P.CommSecondsPerMacro =
      P.CommBytesPerMacro / (Machine.Memory.BandwidthGBs * 1e9);
  P.OverlapComm = true;

  // Rewrite the headline rates as aggregate effective MLUP/s over owned
  // updates: per macro step a rank computes Depth * Nx * Ny * ExtNz lups
  // (extensions recomputed redundantly) of which only the owned slab
  // counts, and the exchange overlaps the interior trapezoid:
  //   T_macro = max(T_comm, T_interior) + T_boundary.
  double OwnedLups = static_cast<double>(Depth) * GlobalDims.Nx *
                     GlobalDims.Ny * OwnedNz;
  double ExtLups = static_cast<double>(Depth) * GlobalDims.Nx *
                   GlobalDims.Ny * ExtNz;
  auto Effective = [&](double RateMlups) {
    if (RateMlups <= 0.0)
      return RateMlups;
    double TCompute = ExtLups / (RateMlups * 1e6);
    double TInterior = (1.0 - P.BoundaryFraction) * TCompute;
    double TBoundary = P.BoundaryFraction * TCompute;
    double TMacro =
        std::max(P.CommSecondsPerMacro, TInterior) + TBoundary;
    return P.Ranks * OwnedLups / (TMacro * 1e6);
  };
  P.MLupsSingleCore = Effective(P.MLupsSingleCore);
  P.MLupsSaturated = Effective(P.MLupsSaturated);
}

double ECMModel::predictedSeconds(const ECMPrediction &P, const GridDims &Dims,
                                  double Sweeps, unsigned Cores) const {
  double Lups = static_cast<double>(Dims.lups()) * Sweeps;
  double Rate = P.mlupsAtCores(Cores) * 1e6;
  return Lups / Rate;
}
