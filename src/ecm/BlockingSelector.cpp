//===- ecm/BlockingSelector.cpp - Analytic blocking selection --------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/BlockingSelector.h"

#include <algorithm>

using namespace ys;

BlockingChoice BlockingSelector::selectAnalytic(
    const StencilSpec &Spec, const GridDims &Dims, const KernelConfig &Base,
    int TargetLevel, unsigned ActiveCores) const {
  const MachineModel &M = Model.machine();
  unsigned Level = TargetLevel >= 0
                       ? static_cast<unsigned>(TargetLevel)
                       : (M.numLevels() >= 2 ? M.numLevels() - 2 : 0);

  KernelConfig Config = Base;
  Config.Block = BlockSize(); // x/z unblocked.
  long By = Model.layerConditions().maxPlaneBlockY(Spec, Dims, Level,
                                                   ActiveCores);
  if (By >= Dims.Ny)
    Config.Block = BlockSize(); // Whole grid satisfies the LC: no blocking.
  else if (By >= 1)
    Config.Block.Y = By;
  else
    Config.Block.Y = 1; // Even one row over-commits; keep minimal blocking.

  BlockingChoice Choice;
  Choice.Config = Config;
  Choice.Prediction = Model.predict(Spec, Dims, Config, ActiveCores);
  Choice.CandidatesEvaluated = 1;
  return Choice;
}

std::vector<KernelConfig> BlockingSelector::candidateSpace(
    const GridDims &Dims, const KernelConfig &Base, bool EnableTemporal,
    unsigned MaxRanks) {
  std::vector<KernelConfig> Space;

  std::vector<long> YBlocks = {0, 4, 8, 16, 32, 64, 128, 256};
  std::vector<long> ZBlocks = {0, 8, 32, 128};
  for (long By : YBlocks) {
    if (By > Dims.Ny)
      continue;
    for (long Bz : ZBlocks) {
      if (Bz > Dims.Nz)
        continue;
      KernelConfig C = Base;
      C.Block = BlockSize();
      C.Block.Y = By;
      C.Block.Z = Bz;
      C.WavefrontDepth = 1;
      C.Sched = Schedule::Wavefront; // Depth 1: schedule is inert.
      Space.push_back(C);
      if (EnableTemporal && Bz > 0)
        for (int Depth : {2, 4, 8}) {
          KernelConfig W = C;
          W.WavefrontDepth = Depth;
          Space.push_back(W);
          // Diamond rides the same (By, Bz) grid; its tile width is
          // max(Bz, 2*Depth*R), so the z block doubles as the tile knob.
          KernelConfig D = W;
          D.Sched = Schedule::Diamond;
          Space.push_back(D);
        }
      if (EnableTemporal && Bz == 0)
        // Deep-temporal slides single planes, so the z block is irrelevant;
        // enumerate it once per y-block with the high depths it exists for.
        for (int Depth : {4, 8, 16}) {
          KernelConfig DT = C;
          DT.WavefrontDepth = Depth;
          DT.Sched = Schedule::DeepTemporal;
          Space.push_back(DT);
        }
    }
  }

  // Rank axis: cross every spatial/temporal point with power-of-two
  // z-slab counts.  Each rank needs at least one owned plane; the comm
  // term in the model is what makes these comparable to the monolithic
  // candidates.
  if (MaxRanks > 1) {
    size_t MonoCount = Space.size();
    for (unsigned Ranks = 2; Ranks <= MaxRanks; Ranks *= 2) {
      if (static_cast<long>(Ranks) > Dims.Nz)
        break;
      for (size_t I = 0; I < MonoCount; ++I) {
        KernelConfig C = Space[I];
        C.Ranks = Ranks;
        Space.push_back(C);
      }
    }
  }
  return Space;
}

BlockingChoice BlockingSelector::selectBest(const StencilSpec &Spec,
                                            const GridDims &Dims,
                                            const KernelConfig &Base,
                                            bool EnableTemporal,
                                            unsigned ActiveCores,
                                            unsigned MaxRanks) const {
  std::vector<KernelConfig> Space =
      candidateSpace(Dims, Base, EnableTemporal, MaxRanks);

  BlockingChoice Best;
  bool HaveBest = false;
  for (const KernelConfig &C : Space) {
    ECMPrediction P = Model.predict(Spec, Dims, C, ActiveCores);
    // Rank by saturated (socket-level) performance first, then by
    // single-core performance as the tie-break — the paper tunes for the
    // full chip.
    bool Better = !HaveBest;
    if (HaveBest) {
      if (P.MLupsSaturated > Best.Prediction.MLupsSaturated * 1.001)
        Better = true;
      else if (P.MLupsSaturated > Best.Prediction.MLupsSaturated * 0.999 &&
               P.MLupsSingleCore > Best.Prediction.MLupsSingleCore)
        Better = true;
    }
    if (Better) {
      Best.Config = C;
      Best.Prediction = P;
      HaveBest = true;
    }
  }
  Best.CandidatesEvaluated = static_cast<unsigned>(Space.size());
  return Best;
}
