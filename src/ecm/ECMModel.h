//===- ecm/ECMModel.h - Execution-Cache-Memory model -------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Execution-Cache-Memory (ECM) performance model, the analytic engine
/// of YaskSite: combines the in-core time with the per-boundary transfer
/// times derived from layer conditions into a single-core cycle prediction,
/// then scales across cores up to the memory-bandwidth saturation point.
/// A temporal-blocking extension rescales the memory-boundary traffic for
/// depth-d schedules (wavefront, diamond, deep-temporal) whose cache
/// window fits a shared cache.
///
/// Units: cycles per cache line of results (8 double LUPs), converted to
/// MLUP/s with the core frequency.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ECM_ECMMODEL_H
#define YS_ECM_ECMMODEL_H

#include "arch/MachineModel.h"
#include "codegen/KernelConfig.h"
#include "ecm/InCoreModel.h"
#include "ecm/LayerCondition.h"
#include "stencil/StencilSpec.h"

#include <string>
#include <vector>

namespace ys {

/// A complete ECM prediction for one kernel configuration.
struct ECMPrediction {
  InCoreTime InCore;
  TrafficPrediction Traffic;

  /// Transfer cycles per cache line for each boundary (last == memory).
  std::vector<double> TData;

  double TECM = 0;         ///< Single-core cycles per cache line.
  double CyclesPerLup = 0; ///< TECM / 8.
  double MLupsSingleCore = 0;

  double TMem = 0;             ///< Memory-boundary term (cycles/CL).
  unsigned SaturationCores = 1; ///< n_sat = ceil(TECM / TMem).
  double MLupsSaturated = 0;   ///< Memory-bandwidth-bound performance.

  /// \name Distributed (multi-rank) communication term.
  ///
  /// Populated when Config.Ranks > 1: the in-core/traffic analysis then
  /// describes the slowest (interior) rank's extended local grid, and
  /// MLupsSingleCore / MLupsSaturated are the aggregate effective rates
  /// over *owned* lattice updates with the macro-step time
  ///   T_macro = max(T_comm, T_interior) + T_boundary
  /// (overlapped halo exchange hides T_comm under the interior trapezoid;
  /// the boundary bands wait for the exchange to land).
  /// @{
  unsigned Ranks = 1;        ///< Z-slab ranks (1 == monolithic, no term).
  int MacroDepth = 1;        ///< Fused sweeps one exchange amortizes.
  double RedundantFactor = 1; ///< Extended-interior lups / owned lups.
  double BoundaryFraction = 0; ///< Macro-step compute share in boundary bands.
  double CommBytesPerMacro = 0; ///< Staged pack+unpack bytes, interior rank.
  double CommSecondsPerMacro = 0; ///< CommBytes / sustained socket bandwidth.
  bool OverlapComm = true;   ///< Comm hidden under interior (max, not sum).
  /// @}

  /// Performance at a given core count (linear scaling until saturation).
  double mlupsAtCores(unsigned Cores) const;

  /// Classic ECM notation: "{TOL || TnOL | TL1L2 | TL2L3 | TL3Mem} cy/CL".
  std::string str() const;
};

/// How inter-level transfers compose into the single-core time.
enum class TransferOverlap {
  /// Classic Intel convention: transfers serialize,
  /// TECM = max(TOL, TnOL + sum T_i).
  None,
  /// Phenomenological full-overlap variant (observed on some AMD parts):
  /// TECM = max(TOL, TnOL, T_0, ..., T_mem).
  Full,
};

/// The ECM model bound to one machine.
class ECMModel {
public:
  explicit ECMModel(const MachineModel &Machine, double LCSafetyFactor = 0.5,
                    TransferOverlap Overlap = TransferOverlap::None)
      : Machine(Machine), InCore(Machine), LC(Machine, LCSafetyFactor),
        Overlap(Overlap) {}

  /// Predicts one sweep of \p Spec over \p Dims under \p Config.
  /// \p ActiveCoresPerSharedCache models shared-cache pressure (pass the
  /// number of cores that will actually run; 1 for single-core analysis).
  ECMPrediction predict(const StencilSpec &Spec, const GridDims &Dims,
                        const KernelConfig &Config,
                        unsigned ActiveCoresPerSharedCache = 1) const;

  const MachineModel &machine() const { return Machine; }
  const LayerConditionAnalysis &layerConditions() const { return LC; }

  /// Seconds to perform \p Sweeps sweeps over \p Dims at \p Cores cores,
  /// from the prediction (used by Offsite to rank ODE variants).
  double predictedSeconds(const ECMPrediction &P, const GridDims &Dims,
                          double Sweeps, unsigned Cores) const;

private:
  /// Applies the temporal-blocking traffic rescaling for the configured
  /// schedule (wavefront / diamond / deep-temporal) when the schedule's
  /// cache window fits the outermost shared cache.  Each schedule has a
  /// distinct window size and reload signature (see
  /// docs/performance-model.md), which is what lets the selector rank
  /// them against each other per platform.
  void applySchedule(const StencilSpec &Spec, const GridDims &Dims,
                     const KernelConfig &Config,
                     unsigned ActiveCoresPerSharedCache,
                     TrafficPrediction &Traffic) const;

  /// Rewrites \p P (a single-rank prediction over the interior rank's
  /// extended local grid) into the distributed aggregate: discounts the
  /// redundant extension recompute, adds the overlapped communication
  /// term, and overwrites MLupsSingleCore / MLupsSaturated so every
  /// downstream consumer (selector, Offsite, serve) is comm-aware
  /// through the existing accessors.
  void applyCommTerm(const StencilSpec &Spec, const GridDims &GlobalDims,
                     const KernelConfig &Config, ECMPrediction &P) const;

  const MachineModel &Machine;
  InCoreModel InCore;
  LayerConditionAnalysis LC;
  TransferOverlap Overlap;
};

} // namespace ys

#endif // YS_ECM_ECMMODEL_H
