//===- ecm/InCoreModel.h - ECM in-core execution model -----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-core half of the ECM model: how many cycles one cache line of
/// stencil results (8 double LUPs) costs in arithmetic (T_OL, overlapping
/// with data transfers) and in L1 load/store ports (T_nOL, non-overlapping),
/// assuming the data is in L1.  SIMD width is taken from the kernel's
/// vector fold, so the scalar layout models unvectorized code and folding
/// reduces the load count via inter-point vector reuse.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ECM_INCOREMODEL_H
#define YS_ECM_INCOREMODEL_H

#include "arch/MachineModel.h"
#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"

#include <string>

namespace ys {

/// In-core cycle counts per cache line (8 LUPs) of results.
struct InCoreTime {
  double TOL = 0;   ///< Arithmetic cycles (overlap with transfers).
  double TnOL = 0;  ///< L1 load/store port cycles (never overlap).
  // Instruction-count breakdown (per cache line of results):
  double VectorIters = 0; ///< SIMD iterations per cache line.
  double FmaOps = 0;
  double ArithOps = 0; ///< Non-fused adds/muls.
  double LoadOps = 0;
  double StoreOps = 0;

  std::string str() const;
};

/// Computes InCoreTime for a stencil on a machine under a kernel config.
class InCoreModel {
public:
  explicit InCoreModel(const MachineModel &Machine) : Machine(Machine) {}

  /// \p Config contributes the vector fold (SIMD width actually exploited)
  /// and streaming-store selection.
  InCoreTime analyze(const StencilSpec &Spec,
                     const KernelConfig &Config) const;

  /// Renders the modeled instruction stream of one result vector as
  /// annotated pseudo-assembly (vector loads, the FMA chain, the store),
  /// with the port-pressure summary the cycle estimate derives from —
  /// the explanatory artifact IACA/OSACA produce in the published ECM
  /// workflow.
  std::string emitPseudoAsm(const StencilSpec &Spec,
                            const KernelConfig &Config) const;

private:
  const MachineModel &Machine;
};

} // namespace ys

#endif // YS_ECM_INCOREMODEL_H
