//===- ecm/InCoreModel.cpp - ECM in-core execution model -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/InCoreModel.h"

#include "codegen/VectorFold.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <string>

using namespace ys;

std::string InCoreTime::str() const {
  return format("TOL=%.2f TnOL=%.2f (fma=%.1f arith=%.1f ld=%.1f st=%.1f "
                "per %.1f vec iters)",
                TOL, TnOL, FmaOps, ArithOps, LoadOps, StoreOps, VectorIters);
}

InCoreTime InCoreModel::analyze(const StencilSpec &Spec,
                                const KernelConfig &Config) const {
  const CoreModel &Core = Machine.Core;
  InCoreTime T;

  // Exploited SIMD width: the fold's element count, clamped to the
  // machine's register width.  A scalar layout models unvectorized code.
  unsigned VecElems = static_cast<unsigned>(
      std::min<long>(Config.VectorFold.elems(), Core.simdDoubles()));
  if (VecElems == 0)
    VecElems = 1;

  const double LupsPerCL = 8.0; // 64-byte line of doubles.
  T.VectorIters = LupsPerCL / static_cast<double>(VecElems);

  // Arithmetic: fuse min(muls, adds) into FMAs when the core has FMA ports.
  double Muls = Spec.mulsPerLup();
  double Adds = Spec.addsPerLup() + Spec.ExtraFlopsPerLup;
  double Fused = Core.FmaPorts > 0 ? std::min(Muls, Adds) : 0.0;
  double Remaining = (Muls - Fused) + (Adds - Fused);
  T.FmaOps = Fused * T.VectorIters;
  T.ArithOps = Remaining * T.VectorIters;
  // FMA and plain SIMD arithmetic share the same ports on all modeled
  // cores, so the bound is total ops over port count.
  double Ports = std::max(1u, std::max(Core.FmaPorts, Core.ArithPorts));
  T.TOL = (T.FmaOps + T.ArithOps) / Ports;

  // Loads: one vector load per distinct folded vector touched per result
  // vector.  For the scalar fold this equals the point count; good folds
  // make stencil points share vectors.
  double LoadsPerVec = static_cast<double>(
      VectorFold::touchedVectors(Spec, Config.VectorFold));
  T.LoadOps = LoadsPerVec * T.VectorIters;
  T.StoreOps = std::max(1u, Spec.OutputGrids) * T.VectorIters;

  double LoadCycles =
      T.LoadOps / std::max(1u, Core.LoadPorts) * Core.CyclesPerSimdMemOp;
  double StoreCycles =
      T.StoreOps / std::max(1u, Core.StorePorts) * Core.CyclesPerSimdMemOp;
  // Loads and stores issue on independent ports; the L1 bound is the
  // busiest port (the standard ECM / kerncraft convention).
  T.TnOL = std::max(LoadCycles, StoreCycles);
  return T;
}

std::string InCoreModel::emitPseudoAsm(const StencilSpec &Spec,
                                       const KernelConfig &Config) const {
  InCoreTime T = analyze(Spec, Config);
  unsigned VecElems = static_cast<unsigned>(
      std::min<long>(Config.VectorFold.elems(), Machine.Core.simdDoubles()));
  if (VecElems == 0)
    VecElems = 1;

  std::string Out;
  Out += format("; %s on %s, fold %s (%u doubles/vector)\n",
                Spec.name().c_str(), Machine.Name.c_str(),
                Config.VectorFold.str().c_str(), VecElems);
  Out += "; one result vector:\n";

  unsigned Reg = 0;
  unsigned LoadsPerVec = static_cast<unsigned>(T.LoadOps / T.VectorIters);
  for (unsigned L = 0; L < LoadsPerVec; ++L)
    Out += format("  vload   v%u, [in + off%u]        ; port LD%u\n", Reg++,
                  L, L % std::max(1u, Machine.Core.LoadPorts));

  unsigned Fma = static_cast<unsigned>(T.FmaOps / T.VectorIters + 0.5);
  unsigned Arith = static_cast<unsigned>(T.ArithOps / T.VectorIters + 0.5);
  unsigned Acc = Reg;
  Out += format("  vxor    v%u, v%u, v%u            ; acc = 0\n", Acc, Acc,
                Acc);
  for (unsigned F = 0; F < Fma; ++F)
    Out += format("  vfmadd  v%u, v%u, c%u            ; port FMA%u\n", Acc,
                  F % std::max(1u, LoadsPerVec), F,
                  F % std::max(1u, Machine.Core.FmaPorts));
  for (unsigned A = 0; A < Arith; ++A)
    Out += format("  vaddpd  v%u, v%u, v%u            ; port FMA%u\n", Acc,
                  Acc, A % std::max(1u, LoadsPerVec),
                  A % std::max(1u, Machine.Core.FmaPorts));
  Out += format("  %s  [out], v%u             ; port ST0\n",
                Config.StreamingStores ? "vmovnt" : "vstore", Acc);

  Out += format("; per cache line (8 LUPs): %.1f vector iterations\n",
                T.VectorIters);
  Out += format("; port pressure: FMA %.1f cy, LD %.1f cy, ST %.1f cy\n",
                T.TOL,
                T.LoadOps / std::max(1u, Machine.Core.LoadPorts) *
                    Machine.Core.CyclesPerSimdMemOp,
                T.StoreOps / std::max(1u, Machine.Core.StorePorts) *
                    Machine.Core.CyclesPerSimdMemOp);
  Out += format("; T_OL = %.1f cy, T_nOL = %.1f cy\n", T.TOL, T.TnOL);
  return Out;
}
