//===- ecm/Roofline.cpp - Roofline baseline model ---------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ecm/Roofline.h"

#include <algorithm>

using namespace ys;

RooflinePrediction RooflineModel::predict(const StencilSpec &Spec,
                                          const GridDims &Dims,
                                          const KernelConfig &Config,
                                          unsigned Cores) const {
  RooflinePrediction P;
  if (Cores == 0)
    Cores = 1;

  P.FlopsPerLup = Spec.flopsPerLup();
  TrafficPrediction Traffic =
      LC.analyze(Spec, Dims, Config, std::max(1u, Cores));
  P.BytesPerLup = Traffic.BytesPerLup.back();
  P.ArithmeticIntensity =
      P.BytesPerLup > 0 ? P.FlopsPerLup / P.BytesPerLup : 1e9;

  // Arithmetic peak: FMA ports x SIMD width x 2 flops, derated to the
  // kernel's exploitable SIMD width (its fold).
  const CoreModel &Core = Machine.Core;
  unsigned VecElems = static_cast<unsigned>(std::min<long>(
      Config.VectorFold.elems(), Core.simdDoubles()));
  if (VecElems == 0)
    VecElems = 1;
  P.PeakGflops = Cores * Core.FrequencyGHz * Core.FmaPorts * VecElems * 2.0;

  double BandwidthGBs = Machine.Memory.BandwidthGBs;
  P.MemGflops = P.BytesPerLup > 0
                    ? BandwidthGBs * P.ArithmeticIntensity
                    : P.PeakGflops;

  P.Gflops = std::min(P.PeakGflops, P.MemGflops);
  P.MemoryBound = P.MemGflops < P.PeakGflops;
  P.Mlups = P.FlopsPerLup > 0 ? P.Gflops * 1e3 / P.FlopsPerLup : 0;
  return P;
}
