//===- ecm/BlockingSelector.h - Analytic blocking selection ------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-driven selection of cache-blocking (and wavefront) parameters —
/// the paper's "identify optimal performance parameters analytically
/// without the need to run the code".  Two entry points:
///
///  * selectAnalytic: closed-form layer-condition solve — pick the largest
///    y-block for which plane reuse holds at the target cache level.
///  * selectBest: evaluate the ECM model over a small structured candidate
///    set (block sizes, optional wavefront depths) and return the argmax.
///
/// Both run in microseconds and require zero kernel executions; they are
/// what the ModelGuided tuning strategy calls.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ECM_BLOCKINGSELECTOR_H
#define YS_ECM_BLOCKINGSELECTOR_H

#include "ecm/ECMModel.h"

#include <vector>

namespace ys {

/// Result of a model-driven parameter selection.
struct BlockingChoice {
  KernelConfig Config;
  ECMPrediction Prediction;
  unsigned CandidatesEvaluated = 0; ///< Model evaluations performed.
};

/// Selects kernel parameters with the ECM model only.
class BlockingSelector {
public:
  explicit BlockingSelector(const ECMModel &Model) : Model(Model) {}

  /// Closed-form layer-condition choice: x unblocked, z unblocked, y-block
  /// sized so plane reuse holds at cache level \p TargetLevel (default:
  /// the second-highest level, i.e. L2 on the modeled machines).
  BlockingChoice selectAnalytic(const StencilSpec &Spec, const GridDims &Dims,
                                const KernelConfig &Base,
                                int TargetLevel = -1,
                                unsigned ActiveCores = 1) const;

  /// Model-argmax over a structured candidate set.  \p EnableTemporal
  /// adds the temporal schedules to the space: wavefront and diamond at
  /// depths {2,4,8} per z-blocked point, deep-temporal at depths {4,8,16}
  /// per unblocked-z point.  \p MaxRanks > 1 crosses the space with
  /// power-of-two z-slab rank counts up to MaxRanks, ranked through the
  /// communication-aware ECM term.
  BlockingChoice selectBest(const StencilSpec &Spec, const GridDims &Dims,
                            const KernelConfig &Base,
                            bool EnableTemporal = false,
                            unsigned ActiveCores = 1,
                            unsigned MaxRanks = 1) const;

  /// The structured candidate set used by selectBest (also consumed by the
  /// measuring tuners so every strategy searches the same space).
  static std::vector<KernelConfig> candidateSpace(const GridDims &Dims,
                                                  const KernelConfig &Base,
                                                  bool EnableTemporal,
                                                  unsigned MaxRanks = 1);

private:
  const ECMModel &Model;
};

} // namespace ys

#endif // YS_ECM_BLOCKINGSELECTOR_H
