//===- ecm/Roofline.h - Roofline baseline model ------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic roofline model as a baseline for the ECM model: performance
/// is min(peak arithmetic, bandwidth / code balance).  Rooflines have no
/// notion of the cache hierarchy's transfer chain, which is exactly what
/// the ECM model adds — the E11 ablation quantifies the difference on the
/// paper platforms.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ECM_ROOFLINE_H
#define YS_ECM_ROOFLINE_H

#include "arch/MachineModel.h"
#include "codegen/KernelConfig.h"
#include "ecm/LayerCondition.h"
#include "stencil/StencilSpec.h"

namespace ys {

/// A roofline prediction for one kernel.
struct RooflinePrediction {
  double FlopsPerLup = 0;
  double BytesPerLup = 0;        ///< Memory code balance (from the LC).
  double ArithmeticIntensity = 0; ///< flops / byte.
  double PeakGflops = 0;         ///< Socket arithmetic peak at N cores.
  double MemGflops = 0;          ///< Bandwidth-limited flop rate.
  double Gflops = 0;             ///< min of the two roofs.
  double Mlups = 0;
  bool MemoryBound = false;
};

/// Roofline model bound to a machine.
class RooflineModel {
public:
  explicit RooflineModel(const MachineModel &Machine,
                         double LCSafetyFactor = 0.5)
      : Machine(Machine), LC(Machine, LCSafetyFactor) {}

  /// Predicts performance at \p Cores cores.  Memory code balance comes
  /// from the layer-condition analysis' memory boundary (so the roofline
  /// and ECM share the same traffic estimate and differ only in how time
  /// is composed).
  RooflinePrediction predict(const StencilSpec &Spec, const GridDims &Dims,
                             const KernelConfig &Config,
                             unsigned Cores) const;

private:
  const MachineModel &Machine;
  LayerConditionAnalysis LC;
};

} // namespace ys

#endif // YS_ECM_ROOFLINE_H
