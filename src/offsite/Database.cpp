//===- offsite/Database.cpp - Offline tuning database ------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "offsite/Database.h"

#include "support/StringUtils.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace ys;

void TuningDatabase::insert(TuningRecord Record) {
  for (TuningRecord &Existing : Records)
    if (Existing.sameKey(Record)) {
      Existing = std::move(Record);
      return;
    }
  Records.push_back(std::move(Record));
}

const TuningRecord *TuningDatabase::lookup(const std::string &Machine,
                                           const std::string &Method,
                                           const std::string &Problem,
                                           GridDims Dims,
                                           unsigned Cores) const {
  for (const TuningRecord &R : Records)
    if (R.Machine == Machine && R.Method == Method &&
        R.Problem == Problem && R.Dims == Dims && R.Cores == Cores)
      return &R;
  return nullptr;
}

const TuningRecord *TuningDatabase::lookupNearest(
    const std::string &Machine, const std::string &Method,
    const std::string &Problem, GridDims Dims, unsigned Cores) const {
  const TuningRecord *Best = nullptr;
  double BestDist = 0;
  double WantVolume = static_cast<double>(Dims.lups());
  for (const TuningRecord &R : Records) {
    if (R.Machine != Machine || R.Method != Method ||
        R.Problem != Problem || R.Cores != Cores)
      continue;
    double Dist = std::fabs(std::log(static_cast<double>(R.Dims.lups()) /
                                     WantVolume));
    if (!Best || Dist < BestDist) {
      Best = &R;
      BestDist = Dist;
    }
  }
  return Best;
}

std::string TuningDatabase::serialize() const {
  std::string Out = "# yasksite tuning database v1\n";
  for (const TuningRecord &R : Records)
    Out += format("%s|%s|%s|%ldx%ldx%ld|%u|%s|%.9g\n", R.Machine.c_str(),
                  R.Method.c_str(), R.Problem.c_str(), R.Dims.Nx,
                  R.Dims.Ny, R.Dims.Nz, R.Cores, R.VariantName.c_str(),
                  R.PredictedSecondsPerStep);
  return Out;
}

Expected<TuningDatabase> TuningDatabase::deserialize(
    const std::string &Text) {
  TuningDatabase Db;
  unsigned LineNo = 0;
  for (const std::string &Line : split(Text, '\n')) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::vector<std::string> Fields = split(Line, '|');
    if (Fields.size() != 7)
      return Error::failure(format("line %u: expected 7 fields, got %zu",
                                   LineNo, Fields.size()));
    TuningRecord R;
    R.Machine = Fields[0];
    R.Method = Fields[1];
    R.Problem = Fields[2];
    std::vector<std::string> DimParts = split(Fields[3], 'x');
    if (DimParts.size() != 3)
      return Error::failure(format("line %u: malformed dims '%s'", LineNo,
                                   Fields[3].c_str()));
    // Checked parsing throughout: atoi/atol/strtod-without-end-checks
    // silently turn a corrupted field into 0, which lookup() then serves
    // as a real record.
    Expected<long> Nx = parseLong(DimParts[0]);
    Expected<long> Ny = parseLong(DimParts[1]);
    Expected<long> Nz = parseLong(DimParts[2]);
    if (!Nx || !Ny || !Nz)
      return Error::failure(format("line %u: malformed dims '%s'", LineNo,
                                   Fields[3].c_str()));
    R.Dims.Nx = *Nx;
    R.Dims.Ny = *Ny;
    R.Dims.Nz = *Nz;
    if (R.Dims.Nx <= 0 || R.Dims.Ny <= 0 || R.Dims.Nz <= 0)
      return Error::failure(format("line %u: nonpositive dims", LineNo));
    Expected<unsigned long long> Cores = parseUnsigned(Fields[4]);
    if (!Cores)
      return Error::failure(format("line %u: malformed cores '%s': %s",
                                   LineNo, Fields[4].c_str(),
                                   Cores.takeError().message().c_str()));
    R.Cores = static_cast<unsigned>(*Cores);
    R.VariantName = Fields[5];
    Expected<double> Sps = parseDouble(Fields[6]);
    if (!Sps)
      return Error::failure(format("line %u: malformed seconds '%s': %s",
                                   LineNo, Fields[6].c_str(),
                                   Sps.takeError().message().c_str()));
    R.PredictedSecondsPerStep = *Sps;
    Db.insert(std::move(R));
  }
  return Db;
}

Error TuningDatabase::saveFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return Error::failure(format("cannot write '%s'", Path.c_str()));
  Out << serialize();
  return Error::success();
}

Expected<TuningDatabase> TuningDatabase::loadFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Error::failure(format("cannot read '%s'", Path.c_str()));
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return deserialize(Buffer.str());
}
