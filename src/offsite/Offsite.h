//===- offsite/Offsite.h - Offline ODE-method tuner --------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Offsite integration layer: enumerate implementation variants of an
/// explicit ODE method applied to a grid IVP, predict each variant's time
/// per step with YaskSite's ECM model (zero executions), rank them, and —
/// for validation — measure the same variants to compare predicted and
/// observed rankings.  This reproduces the paper's headline workflow:
/// reliable analytic kernel selection for explicit ODE methods at minimal
/// autotuning cost.
///
/// A variant = (integrator kind, fusion variant, kernel configuration).
/// Variant cost is composed per sweep: every sweep of the step structure is
/// translated into an equivalent multi-grid stencil whose ECM prediction
/// supplies its bandwidth/compute time.
///
//===----------------------------------------------------------------------===//

#ifndef YS_OFFSITE_OFFSITE_H
#define YS_OFFSITE_OFFSITE_H

#include "ecm/ECMModel.h"
#include "ode/ExplicitRK.h"
#include "ode/PIRK.h"

#include <string>
#include <vector>

namespace ys {

/// One implementation variant of an ODE method on an IVP.
struct ODEVariant {
  std::string Name;
  bool IsPIRK = false;
  ButcherTableau Tableau;  ///< Explicit tableau, or the PIRK base.
  unsigned Corrector = 0;  ///< PIRK corrector iterations.
  RKVariant Variant = RKVariant::StageSeparate;
  KernelConfig Config;
};

/// Model prediction for one variant.
struct VariantPrediction {
  ODEVariant Variant;
  double SecondsPerStep = 0;
  /// Per-sweep predicted seconds, aligned with the step structure.
  std::vector<double> SweepSeconds;
  /// Total sweeps per step (memory passes over the grid).
  unsigned SweepsPerStep = 0;
};

/// Predicted-vs-measured comparison for a set of variants.
struct RankingValidation {
  std::vector<VariantPrediction> Predicted; ///< Sorted fastest-first.
  std::vector<double> MeasuredSeconds;      ///< Aligned with Predicted.
  double KendallTau = 0;   ///< Rank agreement in [-1, 1].
  unsigned PredictedBestMeasuredRank = 0; ///< 1 == model picked the winner.
  /// Measured speedup of the model's pick over the slowest variant.
  double SpeedupOverWorst = 0;
  /// Measured speedup of the model's pick over the default (first) variant.
  double SpeedupOverDefault = 0;
};

/// The Offsite tuner bound to one machine model.
class OffsiteTuner {
public:
  /// \p Cores is the target core count used in predictions.
  OffsiteTuner(const ECMModel &Model, unsigned Cores = 1)
      : Model(Model), Cores(Cores) {}

  /// Enumerates variants of an explicit RK method on \p Problem: all
  /// supported fusion variants x {unblocked, analytic LC blocking}.
  std::vector<ODEVariant> enumerateRK(const ButcherTableau &Tableau,
                                      const IVP &Problem) const;

  /// Enumerates PIRK variants (base tableau + corrector count).
  std::vector<ODEVariant> enumeratePIRK(const ButcherTableau &Base,
                                        unsigned Corrector,
                                        const IVP &Problem) const;

  /// Predicts the time per step of one variant analytically.
  VariantPrediction predict(const ODEVariant &V, const IVP &Problem) const;

  /// Predicts and sorts all variants, fastest first.
  std::vector<VariantPrediction> rank(const std::vector<ODEVariant> &Vs,
                                      const IVP &Problem) const;

  /// Measures one variant's seconds per step on the host (median of
  /// \p Repeats timings of \p StepsPerRepeat steps).
  double measureSecondsPerStep(const ODEVariant &V, const IVP &Problem,
                               unsigned StepsPerRepeat = 1,
                               unsigned Repeats = 3) const;

  /// Deterministic measurement substitute (the repo's LIKWID stand-in):
  /// replays every sweep of the variant's step through the cache
  /// simulator on \p ProxyDims (defaults to the problem dims) and converts
  /// the memory traffic to seconds at the machine's bandwidth — the
  /// memory-bound time per step.  Host-independent and noise-free.
  double proxySecondsPerStep(const ODEVariant &V, const IVP &Problem,
                             GridDims ProxyDims = GridDims{0, 0, 0}) const;

  /// Full predicted-vs-measured validation of a variant set.
  RankingValidation validate(const std::vector<ODEVariant> &Vs,
                             const IVP &Problem,
                             unsigned StepsPerRepeat = 1,
                             unsigned Repeats = 3) const;

  /// Builds the equivalent stencil the ECM model prices for one sweep of a
  /// step structure (exposed for tests).
  static StencilSpec sweepModelSpec(const RKStepStructure::Sweep &Sweep,
                                    const StencilSpec &RhsSpec);

private:
  RKStepStructure structureOf(const ODEVariant &V, const IVP &Problem) const;

  const ECMModel &Model;
  unsigned Cores;
};

/// Kendall rank-correlation coefficient between two equally sized value
/// sequences (ties broken by index order).
double kendallTau(const std::vector<double> &A, const std::vector<double> &B);

} // namespace ys

#endif // YS_OFFSITE_OFFSITE_H
