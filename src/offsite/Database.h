//===- offsite/Database.h - Offline tuning database --------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline tuning database: Offsite's end product is a store of tuned
/// kernel selections keyed by (machine, method, problem, size, cores) that
/// applications query at run time instead of autotuning.  Records persist
/// in a line-based text format.
///
//===----------------------------------------------------------------------===//

#ifndef YS_OFFSITE_DATABASE_H
#define YS_OFFSITE_DATABASE_H

#include "stencil/Grid.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace ys {

/// One tuned selection.
struct TuningRecord {
  std::string Machine;
  std::string Method;
  std::string Problem;
  GridDims Dims;
  unsigned Cores = 1;
  std::string VariantName;
  double PredictedSecondsPerStep = 0;

  /// Key equality (everything except the selection payload).
  bool sameKey(const TuningRecord &O) const {
    return Machine == O.Machine && Method == O.Method &&
           Problem == O.Problem && Dims == O.Dims && Cores == O.Cores;
  }
};

/// An in-memory, file-persistable store of tuning records.
class TuningDatabase {
public:
  /// Inserts or replaces the record with the same key.
  void insert(TuningRecord Record);

  /// Exact-key lookup; nullptr when absent.
  const TuningRecord *lookup(const std::string &Machine,
                             const std::string &Method,
                             const std::string &Problem, GridDims Dims,
                             unsigned Cores) const;

  /// Relaxed lookup ignoring the grid size: returns the record whose
  /// total grid volume is closest to \p Dims (Offsite's fallback when an
  /// exact size was never tuned); nullptr when no record matches the
  /// other key fields.
  const TuningRecord *lookupNearest(const std::string &Machine,
                                    const std::string &Method,
                                    const std::string &Problem,
                                    GridDims Dims, unsigned Cores) const;

  size_t size() const { return Records.size(); }
  const std::vector<TuningRecord> &records() const { return Records; }

  /// Line-based text serialization (one record per line, '|'-separated).
  std::string serialize() const;

  /// Parses a serialized database; fails with a line diagnostic on
  /// malformed input.
  static Expected<TuningDatabase> deserialize(const std::string &Text);

  /// File round-trip helpers.
  Error saveFile(const std::string &Path) const;
  static Expected<TuningDatabase> loadFile(const std::string &Path);

private:
  std::vector<TuningRecord> Records;
};

} // namespace ys

#endif // YS_OFFSITE_DATABASE_H
