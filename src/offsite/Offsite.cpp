//===- offsite/Offsite.cpp - Offline ODE-method tuner ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "offsite/Offsite.h"

#include "cachesim/StencilTrace.h"
#include "ecm/BlockingSelector.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace ys;

std::vector<ODEVariant> OffsiteTuner::enumerateRK(
    const ButcherTableau &Tableau, const IVP &Problem) const {
  std::vector<ODEVariant> Out;
  std::vector<RKVariant> Variants = {RKVariant::StageSeparate};
  if (Problem.hasStencilForm()) {
    Variants.push_back(RKVariant::FusedArgument);
    Variants.push_back(RKVariant::FusedUpdate);
  }

  // Two kernel configurations per fusion variant: unblocked and the
  // analytic layer-condition blocking choice.
  BlockingSelector Selector(Model);
  KernelConfig Unblocked;
  BlockingChoice Analytic = Selector.selectAnalytic(
      Problem.rhsStencil(), Problem.dims(), Unblocked, /*TargetLevel=*/-1,
      Cores);

  std::vector<KernelConfig> Configs = {Unblocked};
  // Skip the duplicate when the analytic choice is "no blocking".
  if (!Analytic.Config.Block.isUnblocked())
    Configs.push_back(Analytic.Config);

  for (RKVariant RV : Variants)
    for (const KernelConfig &C : Configs) {
      ODEVariant V;
      V.IsPIRK = false;
      V.Tableau = Tableau;
      V.Variant = RV;
      V.Config = C;
      V.Name = format("%s/%s/%s", Tableau.Name.c_str(), rkVariantName(RV),
                      C.Block.isUnblocked() ? "unblocked"
                                            : C.Block.str().c_str());
      Out.push_back(std::move(V));
    }
  return Out;
}

std::vector<ODEVariant> OffsiteTuner::enumeratePIRK(
    const ButcherTableau &Base, unsigned Corrector,
    const IVP &Problem) const {
  std::vector<ODEVariant> Out;
  std::vector<RKVariant> Variants = {RKVariant::StageSeparate};
  if (Problem.hasStencilForm())
    Variants.push_back(RKVariant::FusedArgument);

  BlockingSelector Selector(Model);
  KernelConfig Unblocked;
  BlockingChoice Analytic = Selector.selectAnalytic(
      Problem.rhsStencil(), Problem.dims(), Unblocked, -1, Cores);

  std::vector<KernelConfig> Configs = {Unblocked};
  if (!Analytic.Config.Block.isUnblocked())
    Configs.push_back(Analytic.Config);

  for (RKVariant RV : Variants) {
    for (const KernelConfig &C : Configs) {
      ODEVariant V;
      V.IsPIRK = true;
      V.Tableau = Base;
      V.Corrector = Corrector;
      V.Variant = RV;
      V.Config = C;
      V.Name = format("pirk-%s-m%u/%s/%s", Base.Name.c_str(), Corrector,
                      rkVariantName(RV),
                      C.Block.isUnblocked() ? "unblocked"
                                            : C.Block.str().c_str());
      Out.push_back(std::move(V));
    }
  }
  return Out;
}

StencilSpec OffsiteTuner::sweepModelSpec(const RKStepStructure::Sweep &Sweep,
                                         const StencilSpec &RhsSpec) {
  std::vector<StencilPoint> Points;
  unsigned Grid = 0;
  // Stencil-pattern inputs: the state and, in fused variants, the stage
  // grids whose arguments are rebuilt at each stencil offset.
  for (unsigned G = 0; G < Sweep.StencilInputs; ++G, ++Grid)
    for (const StencilPoint &P : RhsSpec.points()) {
      StencilPoint Q = P;
      Q.GridIdx = Grid;
      Points.push_back(Q);
    }
  // Center-only inputs: axpy and update operands.
  for (unsigned G = 0; G < Sweep.CenterInputs; ++G, ++Grid)
    Points.push_back({0, 0, 0, 0.5, Grid});
  if (Points.empty())
    Points.push_back({0, 0, 0, 1.0, 0});

  StencilSpec Spec(Sweep.What, std::move(Points));
  Spec.OutputGrids = std::max(1u, Sweep.Outputs);
  unsigned Linear = Spec.flopsPerLup();
  Spec.ExtraFlopsPerLup =
      Sweep.FlopsPerLup > Linear ? Sweep.FlopsPerLup - Linear : 0;
  return Spec;
}

RKStepStructure OffsiteTuner::structureOf(const ODEVariant &V,
                                          const IVP &Problem) const {
  if (V.IsPIRK) {
    PIRKIntegrator Integ(V.Tableau, V.Corrector, V.Variant, V.Config);
    return Integ.stepStructure(Problem);
  }
  ExplicitRKIntegrator Integ(V.Tableau, V.Variant, V.Config);
  return Integ.stepStructure(Problem);
}

VariantPrediction OffsiteTuner::predict(const ODEVariant &V,
                                        const IVP &Problem) const {
  VariantPrediction P;
  P.Variant = V;
  RKStepStructure St = structureOf(V, Problem);
  P.SweepsPerStep = static_cast<unsigned>(St.Sweeps.size());
  GridDims Dims = Problem.dims();
  for (const RKStepStructure::Sweep &Sweep : St.Sweeps) {
    StencilSpec SweepSpec = sweepModelSpec(Sweep, Problem.rhsStencil());
    ECMPrediction E = Model.predict(SweepSpec, Dims, V.Config, Cores);
    double Sec = Model.predictedSeconds(E, Dims, 1.0, Cores);
    P.SweepSeconds.push_back(Sec);
    P.SecondsPerStep += Sec;
  }
  return P;
}

std::vector<VariantPrediction> OffsiteTuner::rank(
    const std::vector<ODEVariant> &Vs, const IVP &Problem) const {
  std::vector<VariantPrediction> Ranked;
  for (const ODEVariant &V : Vs)
    Ranked.push_back(predict(V, Problem));
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const VariantPrediction &A, const VariantPrediction &B) {
                     return A.SecondsPerStep < B.SecondsPerStep;
                   });
  return Ranked;
}

double OffsiteTuner::measureSecondsPerStep(const ODEVariant &V,
                                           const IVP &Problem,
                                           unsigned StepsPerRepeat,
                                           unsigned Repeats) const {
  Grid Y(Problem.dims(), Problem.halo(), V.Config.VectorFold);
  Problem.initialCondition(Y);
  double H = Problem.suggestedDt();

  if (V.IsPIRK) {
    PIRKIntegrator Integ(V.Tableau, V.Corrector, V.Variant, V.Config);
    PIRKWorkspace WS;
    Integ.prepareWorkspace(Problem, WS);
    TimingStats S = measureSeconds(
        [&] {
          Integ.integrate(Problem, 0.0, H, static_cast<int>(StepsPerRepeat),
                          Y, WS);
        },
        Repeats);
    return S.Median / StepsPerRepeat;
  }

  ExplicitRKIntegrator Integ(V.Tableau, V.Variant, V.Config);
  RKWorkspace WS;
  Integ.prepareWorkspace(Problem, WS);
  TimingStats S = measureSeconds(
      [&] {
        Integ.integrate(Problem, 0.0, H, static_cast<int>(StepsPerRepeat), Y,
                        WS);
      },
      Repeats);
  return S.Median / StepsPerRepeat;
}

double OffsiteTuner::proxySecondsPerStep(const ODEVariant &V,
                                         const IVP &Problem,
                                         GridDims ProxyDims) const {
  if (ProxyDims.Nx <= 0)
    ProxyDims = Problem.dims();
  RKStepStructure St = structureOf(V, Problem);
  const MachineModel &M = Model.machine();
  double Seconds = 0.0;
  double BytesPerSecond = M.Memory.BandwidthGBs * 1e9;
  for (const RKStepStructure::Sweep &Sweep : St.Sweeps) {
    StencilSpec SweepSpec = sweepModelSpec(Sweep, Problem.rhsStencil());
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
    StencilTraceRunner Runner(SweepSpec, ProxyDims, V.Config);
    TraceTraffic T = Runner.run(Sim, 1);
    double MemBytes = T.BytesPerLup.back() *
                      static_cast<double>(Problem.dims().lups());
    Seconds += MemBytes / BytesPerSecond;
  }
  return Seconds;
}

RankingValidation OffsiteTuner::validate(const std::vector<ODEVariant> &Vs,
                                         const IVP &Problem,
                                         unsigned StepsPerRepeat,
                                         unsigned Repeats) const {
  RankingValidation R;
  R.Predicted = rank(Vs, Problem);
  std::vector<double> PredictedSecs;
  for (const VariantPrediction &P : R.Predicted) {
    R.MeasuredSeconds.push_back(
        measureSecondsPerStep(P.Variant, Problem, StepsPerRepeat, Repeats));
    PredictedSecs.push_back(P.SecondsPerStep);
  }
  R.KendallTau = kendallTau(PredictedSecs, R.MeasuredSeconds);

  // Measured rank of the model's top pick.
  unsigned Rank = 1;
  for (size_t I = 1; I < R.MeasuredSeconds.size(); ++I)
    if (R.MeasuredSeconds[I] < R.MeasuredSeconds[0])
      ++Rank;
  R.PredictedBestMeasuredRank = Rank;

  double Best = R.MeasuredSeconds.front();
  double Worst = *std::max_element(R.MeasuredSeconds.begin(),
                                   R.MeasuredSeconds.end());
  R.SpeedupOverWorst = Worst / Best;

  // "Default" = the first enumerated variant (stage-separate, unblocked).
  for (size_t I = 0; I < R.Predicted.size(); ++I)
    if (R.Predicted[I].Variant.Name == Vs.front().Name) {
      R.SpeedupOverDefault = R.MeasuredSeconds[I] / Best;
      break;
    }
  return R;
}

double ys::kendallTau(const std::vector<double> &A,
                      const std::vector<double> &B) {
  assert(A.size() == B.size() && "rank sequences must align");
  size_t N = A.size();
  if (N < 2)
    return 1.0;
  long Concordant = 0, Discordant = 0;
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J) {
      double DA = A[I] - A[J];
      double DB = B[I] - B[J];
      double Prod = DA * DB;
      if (Prod > 0)
        ++Concordant;
      else if (Prod < 0)
        ++Discordant;
    }
  long Pairs = static_cast<long>(N) * (N - 1) / 2;
  return static_cast<double>(Concordant - Discordant) /
         static_cast<double>(Pairs);
}
