//===- offsite/Report.cpp - Offsite report generation ------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "offsite/Report.h"

#include "support/StringUtils.h"

using namespace ys;

VariantWorkingSet ys::variantWorkingSet(const ODEVariant &V,
                                        const IVP &Problem) {
  VariantWorkingSet WS;
  RKStepStructure St;
  if (V.IsPIRK) {
    PIRKIntegrator Integ(V.Tableau, V.Corrector, V.Variant, V.Config);
    St = Integ.stepStructure(Problem);
  } else {
    ExplicitRKIntegrator Integ(V.Tableau, V.Variant, V.Config);
    St = Integ.stepStructure(Problem);
  }
  WS.GridsAllocated = St.GridsAllocated;
  GridDims D = Problem.dims();
  long Halo = Problem.halo();
  WS.BytesPerGrid = static_cast<unsigned long long>(D.Nx + 2 * Halo) *
                    (D.Ny + 2 * Halo) * (D.Nz + 2 * Halo) * 8;
  WS.TotalBytes = WS.BytesPerGrid * WS.GridsAllocated;
  return WS;
}

std::string ys::rankingToCsv(const std::vector<VariantPrediction> &Ranked,
                             const IVP &Problem) {
  std::string Out =
      "rank,variant,sweeps_per_step,pred_seconds_per_step,"
      "working_set_bytes\n";
  for (size_t I = 0; I < Ranked.size(); ++I) {
    VariantWorkingSet WS = variantWorkingSet(Ranked[I].Variant, Problem);
    Out += format("%zu,%s,%u,%.9g,%llu\n", I + 1,
                  Ranked[I].Variant.Name.c_str(), Ranked[I].SweepsPerStep,
                  Ranked[I].SecondsPerStep, WS.TotalBytes);
  }
  return Out;
}

std::string ys::rankingToMarkdown(
    const std::vector<VariantPrediction> &Ranked, const IVP &Problem) {
  std::string Out =
      "| rank | variant | sweeps/step | pred s/step | working set |\n"
      "|---|---|---|---|---|\n";
  for (size_t I = 0; I < Ranked.size(); ++I) {
    VariantWorkingSet WS = variantWorkingSet(Ranked[I].Variant, Problem);
    Out += format("| %zu | %s | %u | %.3g | %s |\n", I + 1,
                  Ranked[I].Variant.Name.c_str(), Ranked[I].SweepsPerStep,
                  Ranked[I].SecondsPerStep,
                  humanBytes(WS.TotalBytes).c_str());
  }
  return Out;
}

std::string ys::validationToCsv(const RankingValidation &Validation) {
  std::string Out =
      "rank,variant,pred_seconds_per_step,measured_seconds_per_step\n";
  for (size_t I = 0; I < Validation.Predicted.size(); ++I)
    Out += format("%zu,%s,%.9g,%.9g\n", I + 1,
                  Validation.Predicted[I].Variant.Name.c_str(),
                  Validation.Predicted[I].SecondsPerStep,
                  Validation.MeasuredSeconds[I]);
  return Out;
}
