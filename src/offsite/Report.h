//===- offsite/Report.h - Offsite report generation --------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Report generation for Offsite tuning runs: per-variant working-set
/// derivation and ranking exports (CSV and Markdown), the artifacts an
/// offline tuner persists for later kernel selection.
///
//===----------------------------------------------------------------------===//

#ifndef YS_OFFSITE_REPORT_H
#define YS_OFFSITE_REPORT_H

#include "offsite/Offsite.h"

#include <string>
#include <vector>

namespace ys {

/// Memory footprint of one variant's step on one IVP.
struct VariantWorkingSet {
  unsigned GridsAllocated = 0;
  unsigned long long BytesPerGrid = 0;
  unsigned long long TotalBytes = 0;
};

/// Derives the working set of \p V applied to \p Problem (grid count from
/// the integrator's step structure, grid size from dims + halo).
VariantWorkingSet variantWorkingSet(const ODEVariant &V, const IVP &Problem);

/// Renders a ranking as CSV with the header
/// `rank,variant,sweeps_per_step,pred_seconds_per_step,working_set_bytes`.
std::string rankingToCsv(const std::vector<VariantPrediction> &Ranked,
                         const IVP &Problem);

/// Renders a ranking as a Markdown table.
std::string rankingToMarkdown(const std::vector<VariantPrediction> &Ranked,
                              const IVP &Problem);

/// Renders a full validation (predicted + measured) as CSV with the
/// header `rank,variant,pred_seconds_per_step,measured_seconds_per_step`.
std::string validationToCsv(const RankingValidation &Validation);

} // namespace ys

#endif // YS_OFFSITE_REPORT_H
