//===- arch/MachineModel.cpp - CPU machine models --------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"

#include "support/StringUtils.h"

using namespace ys;

std::string MachineModel::validate() const {
  if (Name.empty())
    return "machine model has no name";
  if (Caches.empty())
    return "machine model has no cache levels";
  if (Core.SimdBits % 64 != 0 || Core.SimdBits == 0)
    return "SIMD width must be a nonzero multiple of 64 bits";
  unsigned long long PrevSize = 0;
  for (const CacheLevelModel &L : Caches) {
    if (L.SizeBytes == 0)
      return format("cache level %s has zero size", L.Name.c_str());
    if (L.SizeBytes < PrevSize)
      return format("cache level %s smaller than inner level", L.Name.c_str());
    if (L.LineBytes == 0 || L.Associativity == 0)
      return format("cache level %s has zero line size or associativity",
                    L.Name.c_str());
    if (L.BytesPerCycleToNext <= 0)
      return format("cache level %s has nonpositive bandwidth",
                    L.Name.c_str());
    PrevSize = L.SizeBytes;
  }
  if (Memory.BandwidthGBs <= 0)
    return "memory bandwidth must be positive";
  if (CoresPerSocket == 0)
    return "core count must be positive";
  return std::string();
}

// Parameter sources: kerncraft machine files and vendor documentation.
// Bandwidth-per-cycle values are the sustained per-core inter-level
// transfer rates used in published ECM analyses of these chips.

MachineModel MachineModel::cascadeLakeSP() {
  MachineModel M;
  M.Name = "CascadeLakeSP";
  M.Core.SimdBits = 512;
  M.Core.FmaPorts = 2;
  M.Core.ArithPorts = 2;
  M.Core.LoadPorts = 2;
  M.Core.StorePorts = 1;
  M.Core.CyclesPerSimdMemOp = 1;
  M.Core.FrequencyGHz = 2.5; // Xeon Gold 6248 nominal.
  M.CoresPerSocket = 20;

  CacheLevelModel L1;
  L1.Name = "L1";
  L1.SizeBytes = 32ull * 1024;
  L1.Associativity = 8;
  L1.BytesPerCycleToNext = 64.0; // L1<->L2: one line per cycle sustained.
  M.Caches.push_back(L1);

  CacheLevelModel L2;
  L2.Name = "L2";
  L2.SizeBytes = 1024ull * 1024;
  L2.Associativity = 16;
  L2.BytesPerCycleToNext = 16.0; // L2<->L3 sustained.
  M.Caches.push_back(L2);

  CacheLevelModel L3;
  L3.Name = "L3";
  L3.SizeBytes = 27ull * 1024 * 1024 + 512ull * 1024; // 27.5 MiB shared.
  L3.Associativity = 11;
  L3.Shared = true;
  L3.SharingCores = 20;
  L3.Victim = true;
  L3.BytesPerCycleToNext = 16.0; // Used only when memory BW not binding.
  M.Caches.push_back(L3);

  M.Memory.BandwidthGBs = 115.0; // Sustained per socket (6x DDR4-2933).
  M.Memory.SupportsStreamingStores = true;
  return M;
}

MachineModel MachineModel::rome() {
  MachineModel M;
  M.Name = "Rome";
  M.Core.SimdBits = 256;
  M.Core.FmaPorts = 2;
  M.Core.ArithPorts = 2;
  M.Core.LoadPorts = 2;
  M.Core.StorePorts = 1;
  M.Core.CyclesPerSimdMemOp = 1; // Zen 2 has native 256-bit datapaths.
  M.Core.FrequencyGHz = 2.25; // EPYC 7742 base.
  M.CoresPerSocket = 64;

  CacheLevelModel L1;
  L1.Name = "L1";
  L1.SizeBytes = 32ull * 1024;
  L1.Associativity = 8;
  L1.BytesPerCycleToNext = 32.0;
  M.Caches.push_back(L1);

  CacheLevelModel L2;
  L2.Name = "L2";
  L2.SizeBytes = 512ull * 1024;
  L2.Associativity = 8;
  L2.BytesPerCycleToNext = 32.0;
  M.Caches.push_back(L2);

  CacheLevelModel L3;
  L3.Name = "L3";
  L3.SizeBytes = 16ull * 1024 * 1024; // Per CCX (4 cores).
  L3.Associativity = 16;
  L3.Shared = true;
  L3.SharingCores = 4;
  L3.Victim = true;
  L3.BytesPerCycleToNext = 16.0;
  M.Caches.push_back(L3);

  M.Memory.BandwidthGBs = 140.0; // Sustained per socket (8x DDR4-3200).
  M.Memory.SupportsStreamingStores = true;
  return M;
}

MachineModel MachineModel::skylakeSP() {
  MachineModel M = cascadeLakeSP();
  M.Name = "SkylakeSP";
  M.Core.FrequencyGHz = 2.4; // Xeon Gold 6148.
  M.CoresPerSocket = 20;
  M.Caches[2].SizeBytes = 27ull * 1024 * 1024 + 512ull * 1024;
  M.Memory.BandwidthGBs = 105.0; // 6x DDR4-2666.
  return M;
}

MachineModel MachineModel::haswellEP() {
  MachineModel M;
  M.Name = "HaswellEP";
  M.Core.SimdBits = 256;
  M.Core.FmaPorts = 2;
  M.Core.ArithPorts = 2;
  M.Core.LoadPorts = 2;
  M.Core.StorePorts = 1;
  M.Core.CyclesPerSimdMemOp = 1;
  M.Core.FrequencyGHz = 2.3; // E5-2695 v3.
  M.CoresPerSocket = 14;

  CacheLevelModel L1;
  L1.Name = "L1";
  L1.SizeBytes = 32ull * 1024;
  L1.Associativity = 8;
  L1.BytesPerCycleToNext = 32.0;
  M.Caches.push_back(L1);

  CacheLevelModel L2;
  L2.Name = "L2";
  L2.SizeBytes = 256ull * 1024;
  L2.Associativity = 8;
  L2.BytesPerCycleToNext = 16.0;
  M.Caches.push_back(L2);

  CacheLevelModel L3;
  L3.Name = "L3";
  L3.SizeBytes = 35ull * 1024 * 1024;
  L3.Associativity = 20;
  L3.Shared = true;
  L3.SharingCores = 14;
  L3.BytesPerCycleToNext = 16.0;
  M.Caches.push_back(L3);

  M.Memory.BandwidthGBs = 60.0; // 4x DDR4-2133 sustained.
  M.Memory.SupportsStreamingStores = true;
  return M;
}

MachineModel MachineModel::zen3() {
  MachineModel M = rome();
  M.Name = "Zen3";
  M.Core.FrequencyGHz = 2.45; // EPYC 7763.
  M.CoresPerSocket = 64;
  M.Caches[2].SizeBytes = 32ull * 1024 * 1024; // Per CCX (8 cores).
  M.Caches[2].SharingCores = 8;
  M.Memory.BandwidthGBs = 160.0;
  return M;
}

std::vector<MachineModel> MachineModel::allBuiltin() {
  return {cascadeLakeSP(), rome(), skylakeSP(), haswellEP(), zen3()};
}

const MachineModel *MachineModel::findBuiltin(const std::string &Name) {
  static const std::vector<MachineModel> Builtins = allBuiltin();
  std::string Lower = toLower(Name);
  for (const MachineModel &M : Builtins)
    if (toLower(M.Name) == Lower)
      return &M;
  return nullptr;
}
