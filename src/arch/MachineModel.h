//===- arch/MachineModel.h - CPU machine models ------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized CPU machine models consumed by the ECM performance model
/// and the cache simulator.  A MachineModel carries everything the paper's
/// analytic flow needs: the in-core execution resources (SIMD width, FMA /
/// load / store ports), the cache hierarchy (sizes, associativity, per-level
/// transfer bandwidth in bytes per cycle), and the memory interface
/// (sustained bandwidth, core count, shared-cache topology).
///
/// Built-in models reproduce the paper's two evaluation platforms — Intel
/// Cascade Lake SP and AMD Rome (Zen 2) — plus Skylake SP, Haswell and Zen 3
/// for breadth.  Parameter values follow the published ECM machine files of
/// the Erlangen group (kerncraft) and vendor documentation; they are
/// approximations of the authors' exact testbeds and are documented as such
/// in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ARCH_MACHINEMODEL_H
#define YS_ARCH_MACHINEMODEL_H

#include <string>
#include <vector>

namespace ys {

/// In-core execution resources of one CPU core.
struct CoreModel {
  /// SIMD register width in bits (e.g. 512 for AVX-512, 256 for AVX2).
  unsigned SimdBits = 256;

  /// Number of SIMD FMA-capable execution ports.
  unsigned FmaPorts = 2;

  /// Number of SIMD add/mul ports usable when FMA does not apply.  On all
  /// modeled cores these coincide with the FMA ports.
  unsigned ArithPorts = 2;

  /// Number of load ports (full-width SIMD loads per cycle).
  unsigned LoadPorts = 2;

  /// Number of store ports (full-width SIMD stores per cycle).
  unsigned StorePorts = 1;

  /// Whether a full-width SIMD load/store executes in a single micro-op.
  /// On Zen 2, 256-bit ops are single-uop but the L1 datapath is 256 bit;
  /// on Haswell AVX loads are full width.  A value of 2 means each SIMD
  /// memory op occupies its port for 2 cycles (half-width datapath).
  unsigned CyclesPerSimdMemOp = 1;

  /// Nominal (sustained AVX) clock frequency in GHz.
  double FrequencyGHz = 2.4;

  /// Returns the number of doubles per SIMD register.
  unsigned simdDoubles() const { return SimdBits / 64; }
};

/// One level of the cache hierarchy.
struct CacheLevelModel {
  std::string Name;          ///< "L1", "L2", "L3".
  unsigned long long SizeBytes = 0;
  unsigned Associativity = 8;
  unsigned LineBytes = 64;

  /// True if this level is shared by a core group rather than private.
  bool Shared = false;

  /// Number of cores sharing one instance of this level (1 for private
  /// caches; e.g. 4 for a Rome CCX L3, all cores for a CLX L3).
  unsigned SharingCores = 1;

  /// Sustained transfer bandwidth *to the next-outer level* in bytes per
  /// cycle per core, as used by the ECM model's data-transfer terms.
  double BytesPerCycleToNext = 16.0;

  /// True if a victim/exclusive cache (Rome L3, CLX L3 are non-inclusive).
  bool Victim = false;
};

/// Memory interface of one socket.
struct MemoryModel {
  /// Sustained (measured-style, not peak) bandwidth in GB/s per socket.
  double BandwidthGBs = 100.0;

  /// True if streaming (non-temporal) stores avoid the write-allocate.
  bool SupportsStreamingStores = true;
};

/// A complete machine model: core, cache hierarchy and memory.
class MachineModel {
public:
  std::string Name;
  CoreModel Core;
  std::vector<CacheLevelModel> Caches; ///< Ordered L1 (index 0) outward.
  MemoryModel Memory;
  unsigned CoresPerSocket = 1;

  /// Returns the number of cache levels.
  unsigned numLevels() const { return static_cast<unsigned>(Caches.size()); }

  /// Returns the cache level with the given index (0 == L1).
  const CacheLevelModel &level(unsigned I) const { return Caches[I]; }

  /// Returns the index of the outermost (last-level) cache.
  unsigned lastLevel() const { return numLevels() - 1; }

  /// Memory bandwidth in bytes per cycle per socket at core frequency.
  double memBytesPerCycle() const {
    return Memory.BandwidthGBs * 1e9 / (Core.FrequencyGHz * 1e9);
  }

  /// Validates internal consistency (monotonic sizes, nonzero params).
  /// Returns an empty string if valid, else a diagnostic.
  std::string validate() const;

  /// \name Built-in models (paper platforms first).
  /// @{
  static MachineModel cascadeLakeSP(); ///< Intel Xeon Gold 6248 (CLX), AVX-512.
  static MachineModel rome();          ///< AMD EPYC 7742 (Zen 2), AVX2.
  static MachineModel skylakeSP();     ///< Intel Xeon Gold 6148 (SKX).
  static MachineModel haswellEP();     ///< Intel Xeon E5-2695 v3 (HSW).
  static MachineModel zen3();          ///< AMD EPYC 7763 (Zen 3).
  /// @}

  /// Returns all built-in models.
  static std::vector<MachineModel> allBuiltin();

  /// Looks a built-in model up by (case-insensitive) name; returns nullptr
  /// in the optional sense via an empty Name when unknown.
  static const MachineModel *findBuiltin(const std::string &Name);
};

} // namespace ys

#endif // YS_ARCH_MACHINEMODEL_H
