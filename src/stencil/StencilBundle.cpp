//===- stencil/StencilBundle.cpp - Multi-equation stencils -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilBundle.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <set>

using namespace ys;

StencilBundle::StencilBundle(std::string Name,
                             std::vector<std::string> GridNames,
                             std::vector<BundleEquation> Equations)
    : Name(std::move(Name)), GridNames(std::move(GridNames)),
      Equations(std::move(Equations)) {}

std::vector<unsigned> StencilBundle::readsOf(unsigned EqIdx) const {
  std::set<unsigned> Reads;
  for (const StencilPoint &P : Equations[EqIdx].Spec.points())
    Reads.insert(P.GridIdx);
  return std::vector<unsigned>(Reads.begin(), Reads.end());
}

bool StencilBundle::dependsOn(unsigned Later, unsigned Earlier) const {
  unsigned Out = Equations[Earlier].OutputGrid;
  for (const StencilPoint &P : Equations[Later].Spec.points())
    if (P.GridIdx == Out)
      return true;
  return false;
}

bool StencilBundle::fusionLegal(unsigned A, unsigned B) const {
  unsigned OutA = Equations[A].OutputGrid;
  unsigned OutB = Equations[B].OutputGrid;
  // B reading A's output at a nonzero offset needs A's full sweep first.
  for (const StencilPoint &P : Equations[B].Spec.points())
    if (P.GridIdx == OutA && (P.Dx != 0 || P.Dy != 0 || P.Dz != 0))
      return false;
  // A reading B's output at all would see B's new values once fused.
  for (const StencilPoint &P : Equations[A].Spec.points())
    if (P.GridIdx == OutB)
      return false;
  // Both writing the same grid in one sweep is ill-defined.
  if (OutA == OutB)
    return false;
  return true;
}

std::vector<std::vector<unsigned>> StencilBundle::greedyFusionGroups() const {
  std::vector<std::vector<unsigned>> Groups;
  for (unsigned Eq = 0; Eq < numEquations(); ++Eq) {
    bool Placed = false;
    if (!Groups.empty()) {
      std::vector<unsigned> &Last = Groups.back();
      bool LegalWithAll = true;
      for (unsigned Member : Last)
        if (!fusionLegal(Member, Eq)) {
          LegalWithAll = false;
          break;
        }
      // Also respect program order with any interleaving group: an
      // equation may only join the most recent group.
      if (LegalWithAll) {
        Last.push_back(Eq);
        Placed = true;
      }
    }
    if (!Placed)
      Groups.push_back({Eq});
  }
  return Groups;
}

int StencilBundle::maxRadius() const {
  int R = 0;
  for (const BundleEquation &Eq : Equations)
    R = std::max(R, Eq.Spec.radius());
  return R;
}

int StencilBundle::chainedHalo() const {
  // Halo demand accumulates along true dependences: applying equation E
  // tile-locally requires its inputs valid R_E cells beyond the tile; if an
  // input was itself produced tile-locally, its demand adds on top.
  std::vector<int> Demand(numGrids(), 0);
  int Max = 0;
  for (const BundleEquation &Eq : Equations) {
    int Need = 0;
    for (const StencilPoint &P : Eq.Spec.points()) {
      int Off = std::max({std::abs(P.Dx), std::abs(P.Dy), std::abs(P.Dz)});
      Need = std::max(Need, Off + Demand[P.GridIdx]);
    }
    Demand[Eq.OutputGrid] = Need;
    Max = std::max(Max, Need);
  }
  return Max;
}

std::string StencilBundle::validate() const {
  if (Equations.empty())
    return "bundle has no equations";
  for (unsigned EqIdx = 0; EqIdx < numEquations(); ++EqIdx) {
    const BundleEquation &Eq = Equations[EqIdx];
    if (Eq.OutputGrid >= numGrids())
      return format("equation %u writes out-of-range grid %u", EqIdx,
                    Eq.OutputGrid);
    std::string SpecErr = Eq.Spec.validateOffsets();
    if (!SpecErr.empty())
      return format("equation %u: %s", EqIdx, SpecErr.c_str());
    for (const StencilPoint &P : Eq.Spec.points()) {
      if (P.GridIdx >= numGrids())
        return format("equation %u reads out-of-range grid %u", EqIdx,
                      P.GridIdx);
      if (P.GridIdx == Eq.OutputGrid && (P.Dx != 0 || P.Dy != 0 || P.Dz != 0))
        return format("equation %u reads its own output at a nonzero "
                      "offset (in-place stencil)",
                      EqIdx);
    }
  }
  return std::string();
}
