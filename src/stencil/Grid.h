//===- stencil/Grid.h - 3-D grid with halo and folded layout -----*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 3-D double-precision grid with halo cells and a selectable in-memory
/// layout.  The layout is YASK's "vector folding": the grid is stored as an
/// array of small (Fx x Fy x Fz) bricks, each contiguous in memory, so a
/// SIMD register holds a multi-dimensional sub-block of the grid instead of
/// a 1-D run.  Fold {1,1,1} degenerates to the usual row-major layout with
/// unit stride in x.
///
/// Interior coordinates run over [0, Nx) x [0, Ny) x [0, Nz); the halo of
/// width H extends each dimension by H on both sides, so any coordinate in
/// [-H, N+H) is addressable.
///
//===----------------------------------------------------------------------===//

#ifndef YS_STENCIL_GRID_H
#define YS_STENCIL_GRID_H

#include "support/AlignedBuffer.h"
#include "support/Random.h"

#include <cassert>
#include <functional>
#include <string>

namespace ys {

class ThreadPool;

/// A SIMD vector fold shape: how many grid points a SIMD vector covers in
/// each dimension.  The product is the vector length in elements.
struct Fold {
  int X = 1;
  int Y = 1;
  int Z = 1;

  int elems() const { return X * Y * Z; }
  bool isScalar() const { return X == 1 && Y == 1 && Z == 1; }
  bool operator==(const Fold &O) const {
    return X == O.X && Y == O.Y && Z == O.Z;
  }
  std::string str() const;
};

/// Interior sizes of a grid.
struct GridDims {
  long Nx = 1;
  long Ny = 1;
  long Nz = 1;

  long lups() const { return Nx * Ny * Nz; }
  bool operator==(const GridDims &O) const {
    return Nx == O.Nx && Ny == O.Ny && Nz == O.Nz;
  }
  std::string str() const;
};

/// 3-D grid of doubles with halo and folded storage.
class Grid {
public:
  Grid() = default;

  /// Creates a grid with interior \p Dims, halo width \p Halo, and storage
  /// fold \p F.  Contents are zero-initialized.
  Grid(GridDims Dims, int Halo, Fold F = Fold());

  /// Like the plain constructor, but performs the initial zeroing in
  /// parallel on \p FirstTouchPool via firstTouch(), so pages are faulted
  /// in (first-touched) by the threads that will later sweep them — on
  /// NUMA machines this places each page on the worker's local node.
  /// \p ZTile / \p YTile should match the sweep's cache-block sizes
  /// (0 = one z plane / full y rows).
  Grid(GridDims Dims, int Halo, Fold F, ThreadPool *FirstTouchPool,
       long ZTile = 0, long YTile = 0);

  const GridDims &dims() const { return Dims; }
  int halo() const { return Halo; }
  const Fold &fold() const { return F; }

  /// Padded extent (interior + 2*halo, rounded up to the fold) per dim.
  long padX() const { return PadX; }
  long padY() const { return PadY; }
  long padZ() const { return PadZ; }

  /// Total allocated elements.
  size_t allocElems() const { return Store.size(); }

  /// Raw storage pointer (layout per linearIndex()).
  double *data() { return Store.data(); }
  const double *data() const { return Store.data(); }

  /// Linear index of interior-coordinate (X, Y, Z); coordinates may reach
  /// into the halo: X in [-Halo, Nx + Halo), etc.
  size_t linearIndex(long X, long Y, long Z) const {
    long Gx = X + Halo, Gy = Y + Halo, Gz = Z + Halo;
    assert(Gx >= 0 && Gx < PadX && "x out of padded range");
    assert(Gy >= 0 && Gy < PadY && "y out of padded range");
    assert(Gz >= 0 && Gz < PadZ && "z out of padded range");
    if (ScalarLayout)
      return static_cast<size_t>((Gz * PadY + Gy) * PadX + Gx);
    long Vx = Gx / F.X, Ix = Gx % F.X;
    long Vy = Gy / F.Y, Iy = Gy % F.Y;
    long Vz = Gz / F.Z, Iz = Gz % F.Z;
    long VecIdx = (Vz * NVy + Vy) * NVx + Vx;
    long InFold = (Iz * F.Y + Iy) * F.X + Ix;
    return static_cast<size_t>(VecIdx * F.elems() + InFold);
  }

  /// Element access by interior coordinates (halo reachable).
  double &at(long X, long Y, long Z) { return Store[linearIndex(X, Y, Z)]; }
  double at(long X, long Y, long Z) const {
    return Store[linearIndex(X, Y, Z)];
  }

  /// For the scalar layout only: the constant linear offset of the
  /// neighbor at (Dx, Dy, Dz) relative to any interior point.
  long scalarNeighborOffset(int Dx, int Dy, int Dz) const {
    assert(ScalarLayout && "neighbor offsets are layout-constant only for "
                           "the scalar layout");
    return (static_cast<long>(Dz) * PadY + Dy) * PadX + Dx;
  }

  /// True if stored with the degenerate {1,1,1} fold.
  bool hasScalarLayout() const { return ScalarLayout; }

  /// \name Fold-linear indexing.
  ///
  /// The storage is an array of NVx*NVy*NVz fold blocks of foldElems()
  /// contiguous doubles each; block (Vx, Vy, Vz) covers padded coordinates
  /// [Vx*F.X, (Vx+1)*F.X) x ... and starts at blockBaseIndex().  Lanes
  /// enumerate a block x-fastest: Lane = (Iz*F.Y + Iy)*F.X + Ix.  The
  /// invariant tying these helpers to linearIndex() is
  ///
  ///   blockBaseIndex(V) + foldNeighborOffset(L, Dx, Dy, Dz)
  ///     == linearIndex of the (Dx,Dy,Dz)-neighbor of block V's lane L
  ///
  /// for every block V — the offset depends only on (lane, delta), which
  /// is what lets a kernel plan precompute one offset table valid across
  /// the whole grid.  The scalar layout degenerates cleanly (one lane,
  /// blocks = cells), so these are valid for every fold.
  /// @{

  /// Doubles per fold block (= fold().elems()).
  int foldElems() const { return F.elems(); }

  /// Padded extent in fold-block units per dimension.
  long numVecX() const { return NVx; }
  long numVecY() const { return NVy; }
  long numVecZ() const { return NVz; }

  /// Linear index of lane 0 of fold block (Vx, Vy, Vz).
  size_t blockBaseIndex(long Vx, long Vy, long Vz) const {
    assert(Vx >= 0 && Vx < NVx && "x block out of range");
    assert(Vy >= 0 && Vy < NVy && "y block out of range");
    assert(Vz >= 0 && Vz < NVz && "z block out of range");
    return static_cast<size_t>((Vz * NVy + Vy) * NVx + Vx) * F.elems();
  }

  /// In-fold (x, y, z) coordinates of lane \p Lane.
  void laneCoords(int Lane, int &Ix, int &Iy, int &Iz) const {
    assert(Lane >= 0 && Lane < F.elems() && "lane out of range");
    Ix = Lane % F.X;
    Iy = (Lane / F.X) % F.Y;
    Iz = Lane / (F.X * F.Y);
  }

  /// Fold-linear offset, relative to a block's base index, of the
  /// (Dx, Dy, Dz)-neighbor of lane \p Lane.  Constant across blocks; may
  /// be negative.  Only valid when the neighbor stays inside the padded
  /// extent, which a halo >= |delta| guarantees for interior blocks.
  long foldNeighborOffset(int Lane, int Dx, int Dy, int Dz) const {
    int Ix, Iy, Iz;
    laneCoords(Lane, Ix, Iy, Iz);
    // Split lane + delta into (block delta, in-fold coordinate) with a
    // floor division so negative deltas land in the preceding block.
    auto Split = [](long A, int Fd, long &Block, long &In) {
      Block = A >= 0 ? A / Fd : -((-A + Fd - 1) / Fd);
      In = A - Block * Fd;
    };
    long Bx, NIx, By, NIy, Bz, NIz;
    Split(Ix + Dx, F.X, Bx, NIx);
    Split(Iy + Dy, F.Y, By, NIy);
    Split(Iz + Dz, F.Z, Bz, NIz);
    return ((Bz * NVy + By) * NVx + Bx) * F.elems() +
           (NIz * F.Y + NIy) * F.X + NIx;
  }

  /// @}

  /// \name Bulk initialization and comparison helpers.
  /// @{

  /// Sets every allocated element (incl. halo) to \p Value.
  void fill(double Value);

  /// Zeroes all storage in parallel over (z,y) tiles with the same
  /// tile->thread mapping the kernel executor uses for sweeps, so the
  /// first touch of every page happens on the thread that will process
  /// that region.  \p ZTile / \p YTile are interior-coordinate tile
  /// extents (0 = one z plane at a time / full y rows).  Falls back to a
  /// serial zero when \p Pool is null or single-threaded.
  void firstTouch(ThreadPool *Pool, long ZTile = 0, long YTile = 0);

  /// Fills the interior with deterministic pseudo-random values in
  /// [-1, 1); the halo is set to zero.
  void fillRandom(Rng &R);

  /// Fills the interior from \p Fn(x, y, z); the halo is set to zero.
  void fillFunction(const std::function<double(long, long, long)> &Fn);

  /// Sets all halo elements to \p Value, leaving the interior untouched.
  void fillHalo(double Value);

  /// Fills the halo with periodically wrapped interior values
  /// (torus topology), so a subsequent sweep sees periodic boundary
  /// conditions.  Call before every sweep that needs them.
  void applyPeriodicHalo();

  /// Copies the interior (not the halo) from \p Other, which must have the
  /// same dims but may use a different fold/halo.
  void copyInteriorFrom(const Grid &Other);

  /// Copies all halo cells from \p Other (same dims and halo width
  /// required); interior untouched.  Used to propagate boundary values
  /// into work buffers.
  void copyHaloFrom(const Grid &Other);

  /// Maximum |a-b| over the interiors of two same-dims grids.
  static double maxAbsDiffInterior(const Grid &A, const Grid &B);

  /// Sum over the interior.
  double interiorSum() const;

  /// @}

  /// Memory footprint of the interior plus halo in bytes.
  unsigned long long footprintBytes() const {
    return static_cast<unsigned long long>(Store.size()) * sizeof(double);
  }

private:
  GridDims Dims;
  int Halo = 0;
  Fold F;
  bool ScalarLayout = true;
  long PadX = 0, PadY = 0, PadZ = 0;
  long NVx = 0, NVy = 0, NVz = 0; ///< Padded extent in fold units.
  AlignedBuffer<double> Store;
};

} // namespace ys

#endif // YS_STENCIL_GRID_H
