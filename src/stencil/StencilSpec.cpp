//===- stencil/StencilSpec.cpp - Stencil specification ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilSpec.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <tuple>

using namespace ys;

StencilSpec::StencilSpec(std::string Name, std::vector<StencilPoint> Points)
    : Name(std::move(Name)), Points(std::move(Points)) {}

unsigned StencilSpec::numInputGrids() const {
  unsigned Max = 0;
  for (const StencilPoint &P : Points)
    Max = std::max(Max, P.GridIdx + 1);
  return Max;
}

int StencilSpec::radius() const {
  int R = 0;
  for (const StencilPoint &P : Points) {
    R = std::max(R, std::abs(P.Dx));
    R = std::max(R, std::abs(P.Dy));
    R = std::max(R, std::abs(P.Dz));
  }
  return R;
}

bool StencilSpec::is2D() const {
  for (const StencilPoint &P : Points)
    if (P.Dz != 0)
      return false;
  return true;
}

bool StencilSpec::is1D() const {
  for (const StencilPoint &P : Points)
    if (P.Dz != 0 || P.Dy != 0)
      return false;
  return true;
}

StencilShape StencilSpec::shape() const {
  int R = radius();
  // Star: every point lies on a coordinate axis.
  bool AllOnAxis = true;
  for (const StencilPoint &P : Points) {
    unsigned NonZero =
        (P.Dx != 0 ? 1u : 0u) + (P.Dy != 0 ? 1u : 0u) + (P.Dz != 0 ? 1u : 0u);
    if (NonZero > 1) {
      AllOnAxis = false;
      break;
    }
  }
  if (AllOnAxis)
    return StencilShape::Star;

  // Box: the full cube of points within the radius.
  unsigned Dims = is1D() ? 1u : (is2D() ? 2u : 3u);
  unsigned long long Expected = 1;
  for (unsigned D = 0; D < Dims; ++D)
    Expected *= static_cast<unsigned long long>(2 * R + 1);
  if (numInputGrids() == 1 && Points.size() == Expected)
    return StencilShape::Box;
  return StencilShape::Other;
}

const char *StencilSpec::shapeName() const {
  switch (shape()) {
  case StencilShape::Star:
    return "star";
  case StencilShape::Box:
    return "box";
  case StencilShape::Other:
    return "other";
  }
  return "other";
}

unsigned StencilSpec::mulsPerLup() const {
  unsigned Muls = 0;
  for (const StencilPoint &P : Points)
    if (P.Coeff != 1.0)
      ++Muls;
  return Muls;
}

unsigned StencilSpec::addsPerLup() const {
  return Points.empty() ? 0 : static_cast<unsigned>(Points.size()) - 1;
}

unsigned StencilSpec::flopsPerLup() const {
  return mulsPerLup() + addsPerLup() + ExtraFlopsPerLup;
}

StreamCounts StencilSpec::streams() const {
  std::set<std::tuple<unsigned, int, int>> Layers;
  std::set<std::pair<unsigned, int>> Planes;
  std::set<unsigned> Grids;
  for (const StencilPoint &P : Points) {
    Layers.insert({P.GridIdx, P.Dy, P.Dz});
    Planes.insert({P.GridIdx, P.Dz});
    Grids.insert(P.GridIdx);
  }
  StreamCounts C;
  C.Layers = static_cast<unsigned>(Layers.size());
  C.ZPlanes = static_cast<unsigned>(Planes.size());
  C.Grids = static_cast<unsigned>(Grids.size());
  return C;
}

std::vector<std::pair<int, int>> StencilSpec::rowOffsets(
    unsigned GridIdx) const {
  std::set<std::pair<int, int>> Rows;
  for (const StencilPoint &P : Points)
    if (P.GridIdx == GridIdx)
      Rows.insert({P.Dy, P.Dz});
  return std::vector<std::pair<int, int>>(Rows.begin(), Rows.end());
}

std::vector<int> StencilSpec::planeOffsets(unsigned GridIdx) const {
  std::set<int> Planes;
  for (const StencilPoint &P : Points)
    if (P.GridIdx == GridIdx)
      Planes.insert(P.Dz);
  return std::vector<int>(Planes.begin(), Planes.end());
}

std::string StencilSpec::validateOffsets() const {
  if (Points.empty())
    return "stencil has no points";
  for (size_t I = 0; I < Points.size(); ++I)
    for (size_t J = I + 1; J < Points.size(); ++J)
      if (Points[I].sameOffset(Points[J]))
        return format("duplicate offset (%d,%d,%d) on grid %u", Points[I].Dx,
                      Points[I].Dy, Points[I].Dz, Points[I].GridIdx);
  return std::string();
}

std::string StencilSpec::validate() const {
  if (std::string E = validateOffsets(); !E.empty())
    return E;
  std::set<unsigned> Grids;
  for (const StencilPoint &P : Points)
    Grids.insert(P.GridIdx);
  for (unsigned G = 0; G < Grids.size(); ++G)
    if (!Grids.count(G))
      return format("input grid indices not contiguous: missing %u", G);
  return std::string();
}

StencilSpec StencilSpec::star3d(int Radius, double CenterCoeff,
                                double NeighborCoeff) {
  std::vector<StencilPoint> Pts;
  Pts.push_back({0, 0, 0, CenterCoeff, 0});
  for (int R = 1; R <= Radius; ++R) {
    Pts.push_back({R, 0, 0, NeighborCoeff, 0});
    Pts.push_back({-R, 0, 0, NeighborCoeff, 0});
    Pts.push_back({0, R, 0, NeighborCoeff, 0});
    Pts.push_back({0, -R, 0, NeighborCoeff, 0});
    Pts.push_back({0, 0, R, NeighborCoeff, 0});
    Pts.push_back({0, 0, -R, NeighborCoeff, 0});
  }
  return StencilSpec(format("star3d-r%d", Radius), std::move(Pts));
}

StencilSpec StencilSpec::box3d(int Radius) {
  std::vector<StencilPoint> Pts;
  int N = 2 * Radius + 1;
  double Coeff = 1.0 / (N * N * N);
  for (int Dz = -Radius; Dz <= Radius; ++Dz)
    for (int Dy = -Radius; Dy <= Radius; ++Dy)
      for (int Dx = -Radius; Dx <= Radius; ++Dx)
        Pts.push_back({Dx, Dy, Dz, Coeff, 0});
  return StencilSpec(format("box3d-r%d", Radius), std::move(Pts));
}

StencilSpec StencilSpec::star2d(int Radius, double CenterCoeff,
                                double NeighborCoeff) {
  std::vector<StencilPoint> Pts;
  Pts.push_back({0, 0, 0, CenterCoeff, 0});
  for (int R = 1; R <= Radius; ++R) {
    Pts.push_back({R, 0, 0, NeighborCoeff, 0});
    Pts.push_back({-R, 0, 0, NeighborCoeff, 0});
    Pts.push_back({0, R, 0, NeighborCoeff, 0});
    Pts.push_back({0, -R, 0, NeighborCoeff, 0});
  }
  return StencilSpec(format("star2d-r%d", Radius), std::move(Pts));
}

StencilSpec StencilSpec::line1d(int Radius, double CenterCoeff,
                                double NeighborCoeff) {
  std::vector<StencilPoint> Pts;
  Pts.push_back({0, 0, 0, CenterCoeff, 0});
  for (int R = 1; R <= Radius; ++R) {
    Pts.push_back({R, 0, 0, NeighborCoeff, 0});
    Pts.push_back({-R, 0, 0, NeighborCoeff, 0});
  }
  return StencilSpec(format("line1d-r%d", Radius), std::move(Pts));
}

StencilSpec StencilSpec::heat3d() {
  StencilSpec S = star3d(1, 0.0, 1.0 / 6.0);
  // Drop the zero-coefficient center to match the classic 6-point average
  // plus keep the center with a weight, giving the usual 7-point form.
  std::vector<StencilPoint> Pts = S.points();
  Pts[0].Coeff = 0.5; // Center weight.
  for (size_t I = 1; I < Pts.size(); ++I)
    Pts[I].Coeff = 1.0 / 12.0;
  return StencilSpec("heat3d", std::move(Pts));
}

StencilSpec StencilSpec::heat2d() {
  StencilSpec S = star2d(1, 0.5, 1.0 / 8.0);
  return StencilSpec("heat2d", S.points());
}

StencilSpec StencilSpec::longRange(int RadiusX) {
  std::vector<StencilPoint> Pts;
  Pts.push_back({0, 0, 0, -2.0 * (RadiusX + 1), 0});
  for (int R = 1; R <= RadiusX; ++R) {
    Pts.push_back({R, 0, 0, 1.0, 0});
    Pts.push_back({-R, 0, 0, 1.0, 0});
  }
  Pts.push_back({0, 1, 0, 1.0, 0});
  Pts.push_back({0, -1, 0, 1.0, 0});
  Pts.push_back({0, 0, 1, 1.0, 0});
  Pts.push_back({0, 0, -1, 1.0, 0});
  return StencilSpec(format("longrange-rx%d", RadiusX), std::move(Pts));
}
