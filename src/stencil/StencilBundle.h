//===- stencil/StencilBundle.h - Multi-equation stencils ---------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A StencilBundle is an ordered sequence of stencil equations over a shared
/// set of grids — the form in which an explicit ODE step arrives from the
/// Offsite front end (one equation per RK stage plus the state update).
/// The bundle answers dependence questions that decide which sweeps may be
/// fused into a single pass over the grid (Offsite's implementation
/// variants) and how much halo a tile needs when several equations are
/// applied back-to-back tile-locally.
///
//===----------------------------------------------------------------------===//

#ifndef YS_STENCIL_STENCILBUNDLE_H
#define YS_STENCIL_STENCILBUNDLE_H

#include "stencil/StencilSpec.h"

#include <string>
#include <vector>

namespace ys {

/// One equation of a bundle: grid[OutputGrid] = Spec applied to the bundle's
/// grids (StencilPoint::GridIdx indexes the bundle grid list).
struct BundleEquation {
  unsigned OutputGrid = 0;
  StencilSpec Spec;
};

/// An ordered multi-equation stencil program over named grids.
class StencilBundle {
public:
  StencilBundle() = default;
  StencilBundle(std::string Name, std::vector<std::string> GridNames,
                std::vector<BundleEquation> Equations);

  const std::string &name() const { return Name; }
  const std::vector<std::string> &gridNames() const { return GridNames; }
  const std::vector<BundleEquation> &equations() const { return Equations; }
  unsigned numGrids() const { return static_cast<unsigned>(GridNames.size()); }
  unsigned numEquations() const {
    return static_cast<unsigned>(Equations.size());
  }

  /// Grids read by equation \p EqIdx (deduplicated, sorted).
  std::vector<unsigned> readsOf(unsigned EqIdx) const;

  /// True if equation \p Later depends on the output of equation
  /// \p Earlier (reads the grid Earlier writes).
  bool dependsOn(unsigned Later, unsigned Earlier) const;

  /// True if equations \p A and \p B (A before B in program order) may be
  /// computed in the same fused sweep at the same grid point: B must not
  /// read A's output at any nonzero offset (reading at offset zero is fine
  /// because A's value for the current point is already available), and A
  /// must not read B's output at all (anti-dependence through the sweep).
  bool fusionLegal(unsigned A, unsigned B) const;

  /// Greedy partition of the equations into maximal legal fused sweeps,
  /// preserving program order.  Returns groups of equation indices.
  std::vector<std::vector<unsigned>> greedyFusionGroups() const;

  /// Maximum stencil radius over all equations.
  int maxRadius() const;

  /// Cumulative halo needed to apply all equations tile-locally without
  /// inter-tile exchange (sum of radii along the dependence chain).
  int chainedHalo() const;

  /// Returns an empty string when well formed, else a diagnostic
  /// (grid indices out of range, an equation writing a grid it reads at a
  /// nonzero offset — which would be an in-place stencil data race).
  std::string validate() const;

private:
  std::string Name;
  std::vector<std::string> GridNames;
  std::vector<BundleEquation> Equations;
};

} // namespace ys

#endif // YS_STENCIL_STENCILBUNDLE_H
