//===- stencil/GridNorms.h - Grid norms and reductions -----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interior norms and reductions over grids: the quantities the ODE layer
/// reports (error norms) and tests assert against.  All reductions are
/// deterministic (fixed traversal order).
///
//===----------------------------------------------------------------------===//

#ifndef YS_STENCIL_GRIDNORMS_H
#define YS_STENCIL_GRIDNORMS_H

#include "stencil/Grid.h"

namespace ys {

/// Max-norm over the interior.
double normInf(const Grid &G);

/// Discrete L2 norm over the interior: sqrt(sum u^2 / N).
double normL2(const Grid &G);

/// Discrete L1 norm over the interior: sum |u| / N.
double normL1(const Grid &G);

/// Max-norm of the interior difference of two same-dims grids
/// (synonym of Grid::maxAbsDiffInterior, provided for symmetry).
double diffNormInf(const Grid &A, const Grid &B);

/// Discrete L2 norm of the interior difference.
double diffNormL2(const Grid &A, const Grid &B);

/// Minimum and maximum interior values.
struct MinMax {
  double Min = 0;
  double Max = 0;
};
MinMax interiorMinMax(const Grid &G);

} // namespace ys

#endif // YS_STENCIL_GRIDNORMS_H
