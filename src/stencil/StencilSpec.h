//===- stencil/StencilSpec.h - Stencil specification -------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central stencil description: a linear, constant-coefficient update of
/// one output grid from one or more input grids, given as a set of
/// (offset, coefficient) points.  This is the flattened form YaskSite/YASK
/// compile; the general expression AST in StencilExpr.h lowers to it.
///
/// The spec also answers the structural questions the ECM model asks:
/// flops per lattice update (LUP), number of distinct row "layers"
/// (offsets in the y/z plane, which determine load streams and layer
/// conditions), and the stencil's radius and shape class.
///
//===----------------------------------------------------------------------===//

#ifndef YS_STENCIL_STENCILSPEC_H
#define YS_STENCIL_STENCILSPEC_H

#include <string>
#include <vector>

namespace ys {

/// One access of a stencil: input grid index, offset and coefficient.
struct StencilPoint {
  int Dx = 0;
  int Dy = 0;
  int Dz = 0;
  double Coeff = 1.0;
  unsigned GridIdx = 0; ///< Which input grid the point reads.

  bool sameOffset(const StencilPoint &O) const {
    return Dx == O.Dx && Dy == O.Dy && Dz == O.Dz && GridIdx == O.GridIdx;
  }
};

/// Shape classification of a stencil.
enum class StencilShape {
  Star,  ///< All points on the coordinate axes (classic r-point star).
  Box,   ///< Full (2r+1)^d cube of points.
  Other, ///< Anything else.
};

/// Number of distinct memory "streams" contributed by a stencil at each
/// reuse granularity, per input grid and summed.  See LayerCondition.
struct StreamCounts {
  unsigned Layers = 0;  ///< Distinct (grid, dy, dz) row offsets.
  unsigned ZPlanes = 0; ///< Distinct (grid, dz) plane offsets.
  unsigned Grids = 0;   ///< Distinct input grids touched.
};

/// A linear constant-coefficient stencil: out = sum_i Coeff_i * in[off_i].
class StencilSpec {
public:
  StencilSpec() = default;
  StencilSpec(std::string Name, std::vector<StencilPoint> Points);

  const std::string &name() const { return Name; }
  const std::vector<StencilPoint> &points() const { return Points; }
  unsigned numPoints() const { return static_cast<unsigned>(Points.size()); }

  /// Number of distinct input grids read (max GridIdx + 1).
  unsigned numInputGrids() const;

  /// Maximum |offset| over all points and dimensions.
  int radius() const;

  /// True if the stencil only has offsets with Dz == 0 (2-D problem) or
  /// additionally Dy == 0 (1-D problem).
  bool is2D() const;
  bool is1D() const;

  /// Shape classification (star / box / other).
  StencilShape shape() const;
  /// Human-readable shape name ("star", "box", "other").
  const char *shapeName() const;

  /// Floating-point multiplies per lattice update.  Coefficients equal to
  /// exactly 1.0 are counted as free (strength reduction, as YASK does).
  unsigned mulsPerLup() const;
  /// Floating-point additions per lattice update.
  unsigned addsPerLup() const;
  /// Total flops per lattice update, including ExtraFlopsPerLup.
  unsigned flopsPerLup() const;

  /// Distinct stream counts used by layer-condition analysis.
  StreamCounts streams() const;

  /// Distinct (dy,dz) row-offsets of input grid \p GridIdx, deduplicated.
  std::vector<std::pair<int, int>> rowOffsets(unsigned GridIdx) const;
  /// Distinct dz plane-offsets of input grid \p GridIdx, deduplicated.
  std::vector<int> planeOffsets(unsigned GridIdx) const;

  /// Additional pointwise flops per LUP performed outside the linear part
  /// (e.g. a nonlinear reaction term applied by the ODE right-hand side).
  /// Feeds only the in-core model; has no memory-traffic effect.
  unsigned ExtraFlopsPerLup = 0;

  /// Number of grids written per LUP.  Almost always 1; fused ODE update
  /// sweeps write the stage value and the new state in one pass.  Feeds
  /// the store-port and store-traffic terms of the performance model.
  unsigned OutputGrids = 1;

  /// Returns an empty string when well formed, else a diagnostic
  /// (duplicate offsets, no points, non-contiguous grid indices).
  std::string validate() const;

  /// Like validate() but without the grid-index contiguity requirement —
  /// for specs whose GridIdx values index an enclosing bundle's grid list.
  std::string validateOffsets() const;

  /// \name Factories for the paper's stencil test suite.
  /// @{

  /// Radius-r 3-D star: center plus 2*r points per axis, 6r+1 points.
  /// Coefficients: \p CenterCoeff at the origin, \p NeighborCoeff elsewhere.
  static StencilSpec star3d(int Radius, double CenterCoeff = -6.0,
                            double NeighborCoeff = 1.0);

  /// Radius-r 3-D box: all (2r+1)^3 points, uniform coefficient 1/(2r+1)^3.
  static StencilSpec box3d(int Radius);

  /// Radius-r 2-D star (Dz == 0 everywhere), 4r+1 points.
  static StencilSpec star2d(int Radius, double CenterCoeff = -4.0,
                            double NeighborCoeff = 1.0);

  /// Radius-r 1-D stencil along x, 2r+1 points.
  static StencilSpec line1d(int Radius, double CenterCoeff = -2.0,
                            double NeighborCoeff = 1.0);

  /// Classic 7-point heat/Jacobi stencil (star3d radius 1 with the usual
  /// 1/6-average coefficients).
  static StencilSpec heat3d();

  /// 5-point 2-D heat stencil.
  static StencilSpec heat2d();

  /// Long-range variable-axis stencil: star along x with radius Rx and
  /// radius 1 in y/z; stresses the in-core (x-register-reuse) model.
  static StencilSpec longRange(int RadiusX);

  /// @}

private:
  std::string Name;
  std::vector<StencilPoint> Points;
};

} // namespace ys

#endif // YS_STENCIL_STENCILSPEC_H
