//===- stencil/StencilExpr.h - Stencil expression AST ------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small expression AST for stencil equations, mirroring the equation DSL
/// of YASK that YaskSite builds on.  Users (and the ODE front end) compose
/// expressions from grid loads and arithmetic; linear constant-coefficient
/// expressions lower to the flattened StencilSpec that the executor, code
/// emitter and ECM model consume.
///
/// Expressions are immutable and shared; Expr is a cheap value handle.
///
//===----------------------------------------------------------------------===//

#ifndef YS_STENCIL_STENCILEXPR_H
#define YS_STENCIL_STENCILEXPR_H

#include "stencil/StencilSpec.h"
#include "support/Error.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ys {

/// Node kind discriminator for the expression AST.
enum class ExprKind {
  Load,  ///< Grid access at a constant offset.
  Const, ///< Floating-point literal.
  Add,
  Sub,
  Mul,
  Div, ///< Right operand must fold to a constant for linearization.
  Neg,
};

class ExprNode;

/// Value handle to an immutable expression tree.
class Expr {
public:
  Expr() = default;

  /// \name Leaf constructors.
  /// @{
  static Expr load(unsigned GridIdx, int Dx, int Dy, int Dz);
  static Expr constant(double Value);
  /// @}

  /// \name Combinators (also available as operators).
  /// @{
  static Expr add(Expr L, Expr R);
  static Expr sub(Expr L, Expr R);
  static Expr mul(Expr L, Expr R);
  static Expr div(Expr L, Expr R);
  static Expr neg(Expr E);
  /// @}

  bool isValid() const { return Node != nullptr; }
  ExprKind kind() const;

  /// Number of nodes in the tree.
  unsigned size() const;

  /// Adds/multiplies performed when evaluating the tree once.
  unsigned flops() const;

  /// Renders the expression as readable infix text, grids named
  /// u0, u1, ... ("u0[x+1,y,z]").
  std::string str() const;

  /// Returns an algebraically simplified copy: constants fold
  /// (2*3 -> 6), identities drop (x+0, x*1, x/1, --x), and
  /// multiplication by zero collapses to 0.  Purely structural — never
  /// changes the value the expression denotes.
  Expr simplified() const;

  /// Lowers a linear, constant-coefficient expression to stencil points
  /// (combining repeated offsets).  Fails for nonlinear expressions
  /// (grid*grid) or a nonzero constant term.
  Expected<std::vector<StencilPoint>> linearize() const;

  /// Convenience: linearize and wrap in a named StencilSpec.
  Expected<StencilSpec> toSpec(const std::string &Name) const;

  /// Evaluates the expression given a callback that resolves loads.
  double evaluate(
      const std::function<double(unsigned, int, int, int)> &LoadFn) const;

  const ExprNode *node() const { return Node.get(); }

private:
  explicit Expr(std::shared_ptr<const ExprNode> Node)
      : Node(std::move(Node)) {}
  std::shared_ptr<const ExprNode> Node;
};

/// Immutable AST node.  Exposed so visitors (e.g. the source emitter) can
/// walk trees; construct only through Expr.
class ExprNode {
public:
  ExprKind Kind;
  // Load payload.
  unsigned GridIdx = 0;
  int Dx = 0, Dy = 0, Dz = 0;
  // Const payload.
  double Value = 0.0;
  // Children (unary ops use Lhs only).
  std::shared_ptr<const ExprNode> Lhs;
  std::shared_ptr<const ExprNode> Rhs;

  explicit ExprNode(ExprKind Kind) : Kind(Kind) {}
};

inline Expr operator+(Expr L, Expr R) { return Expr::add(L, R); }
inline Expr operator-(Expr L, Expr R) { return Expr::sub(L, R); }
inline Expr operator*(Expr L, Expr R) { return Expr::mul(L, R); }
inline Expr operator/(Expr L, Expr R) { return Expr::div(L, R); }
inline Expr operator/(Expr L, double C) {
  return Expr::div(L, Expr::constant(C));
}
inline Expr operator-(Expr E) { return Expr::neg(E); }
inline Expr operator*(double C, Expr E) {
  return Expr::mul(Expr::constant(C), E);
}
inline Expr operator+(Expr L, double C) {
  return Expr::add(L, Expr::constant(C));
}

} // namespace ys

#endif // YS_STENCIL_STENCILEXPR_H
