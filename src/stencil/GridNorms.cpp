//===- stencil/GridNorms.cpp - Grid norms and reductions --------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/GridNorms.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ys;

namespace {

/// True for a default-constructed Grid: dims claim {1,1,1} but no storage
/// is allocated, so reductions must return zero instead of reading it.
bool hasNoStorage(const Grid &G) { return G.allocElems() == 0; }

/// Applies Fn(value) over the interior in a fixed order.
template <typename Fn> void forEachInterior(const Grid &G, Fn &&Visit) {
  if (hasNoStorage(G))
    return;
  const GridDims &D = G.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Y = 0; Y < D.Ny; ++Y)
      for (long X = 0; X < D.Nx; ++X)
        Visit(G.at(X, Y, Z));
}

} // namespace

double ys::normInf(const Grid &G) {
  double Max = 0;
  forEachInterior(G, [&](double V) { Max = std::max(Max, std::fabs(V)); });
  return Max;
}

double ys::normL2(const Grid &G) {
  if (hasNoStorage(G))
    return 0;
  double Sum = 0;
  forEachInterior(G, [&](double V) { Sum += V * V; });
  return std::sqrt(Sum / static_cast<double>(G.dims().lups()));
}

double ys::normL1(const Grid &G) {
  if (hasNoStorage(G))
    return 0;
  double Sum = 0;
  forEachInterior(G, [&](double V) { Sum += std::fabs(V); });
  return Sum / static_cast<double>(G.dims().lups());
}

double ys::diffNormInf(const Grid &A, const Grid &B) {
  return Grid::maxAbsDiffInterior(A, B);
}

double ys::diffNormL2(const Grid &A, const Grid &B) {
  assert(A.dims() == B.dims() && "diff requires equal dims");
  if (hasNoStorage(A) || hasNoStorage(B))
    return 0;
  const GridDims &D = A.dims();
  double Sum = 0;
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Y = 0; Y < D.Ny; ++Y)
      for (long X = 0; X < D.Nx; ++X) {
        double V = A.at(X, Y, Z) - B.at(X, Y, Z);
        Sum += V * V;
      }
  return std::sqrt(Sum / static_cast<double>(D.lups()));
}

MinMax ys::interiorMinMax(const Grid &G) {
  MinMax Out;
  bool First = true;
  forEachInterior(G, [&](double V) {
    if (First) {
      Out.Min = Out.Max = V;
      First = false;
      return;
    }
    Out.Min = std::min(Out.Min, V);
    Out.Max = std::max(Out.Max, V);
  });
  return Out;
}
