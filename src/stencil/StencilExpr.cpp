//===- stencil/StencilExpr.cpp - Stencil expression AST --------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilExpr.h"

#include "support/StringUtils.h"

#include <cassert>
#include <map>
#include <tuple>

using namespace ys;

Expr Expr::load(unsigned GridIdx, int Dx, int Dy, int Dz) {
  auto N = std::make_shared<ExprNode>(ExprKind::Load);
  N->GridIdx = GridIdx;
  N->Dx = Dx;
  N->Dy = Dy;
  N->Dz = Dz;
  return Expr(std::move(N));
}

Expr Expr::constant(double Value) {
  auto N = std::make_shared<ExprNode>(ExprKind::Const);
  N->Value = Value;
  return Expr(std::move(N));
}

Expr Expr::add(Expr L, Expr R) {
  assert(L.isValid() && R.isValid() && "add on invalid expr");
  auto N = std::make_shared<ExprNode>(ExprKind::Add);
  N->Lhs = L.Node;
  N->Rhs = R.Node;
  return Expr(std::move(N));
}

Expr Expr::sub(Expr L, Expr R) {
  assert(L.isValid() && R.isValid() && "sub on invalid expr");
  auto N = std::make_shared<ExprNode>(ExprKind::Sub);
  N->Lhs = L.Node;
  N->Rhs = R.Node;
  return Expr(std::move(N));
}

Expr Expr::mul(Expr L, Expr R) {
  assert(L.isValid() && R.isValid() && "mul on invalid expr");
  auto N = std::make_shared<ExprNode>(ExprKind::Mul);
  N->Lhs = L.Node;
  N->Rhs = R.Node;
  return Expr(std::move(N));
}

Expr Expr::div(Expr L, Expr R) {
  assert(L.isValid() && R.isValid() && "div on invalid expr");
  auto N = std::make_shared<ExprNode>(ExprKind::Div);
  N->Lhs = L.Node;
  N->Rhs = R.Node;
  return Expr(std::move(N));
}

Expr Expr::neg(Expr E) {
  assert(E.isValid() && "neg on invalid expr");
  auto N = std::make_shared<ExprNode>(ExprKind::Neg);
  N->Lhs = E.Node;
  return Expr(std::move(N));
}

ExprKind Expr::kind() const {
  assert(Node && "kind() on invalid expr");
  return Node->Kind;
}

static unsigned sizeOf(const ExprNode *N) {
  if (!N)
    return 0;
  return 1 + sizeOf(N->Lhs.get()) + sizeOf(N->Rhs.get());
}

unsigned Expr::size() const { return sizeOf(Node.get()); }

static unsigned flopsOf(const ExprNode *N) {
  if (!N)
    return 0;
  unsigned Self = 0;
  switch (N->Kind) {
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Div:
    Self = 1;
    break;
  case ExprKind::Neg:
  case ExprKind::Load:
  case ExprKind::Const:
    Self = 0;
    break;
  }
  return Self + flopsOf(N->Lhs.get()) + flopsOf(N->Rhs.get());
}

unsigned Expr::flops() const { return flopsOf(Node.get()); }

static std::string offsetStr(const char *Axis, int D) {
  if (D == 0)
    return Axis;
  return format("%s%+d", Axis, D);
}

static std::string strOf(const ExprNode *N) {
  assert(N && "printing invalid expr");
  switch (N->Kind) {
  case ExprKind::Load:
    return format("u%u[%s,%s,%s]", N->GridIdx, offsetStr("x", N->Dx).c_str(),
                  offsetStr("y", N->Dy).c_str(), offsetStr("z", N->Dz).c_str());
  case ExprKind::Const:
    return trimmedDouble(N->Value, 6);
  case ExprKind::Add:
    return "(" + strOf(N->Lhs.get()) + " + " + strOf(N->Rhs.get()) + ")";
  case ExprKind::Sub:
    return "(" + strOf(N->Lhs.get()) + " - " + strOf(N->Rhs.get()) + ")";
  case ExprKind::Mul:
    return "(" + strOf(N->Lhs.get()) + " * " + strOf(N->Rhs.get()) + ")";
  case ExprKind::Div:
    return "(" + strOf(N->Lhs.get()) + " / " + strOf(N->Rhs.get()) + ")";
  case ExprKind::Neg:
    return "(-" + strOf(N->Lhs.get()) + ")";
  }
  return std::string();
}

std::string Expr::str() const { return strOf(Node.get()); }

namespace {

/// Linear form: constant + sum of coeff * load.
struct LinearForm {
  double Constant = 0.0;
  std::map<std::tuple<unsigned, int, int, int>, double> Terms;
  bool Ok = true;
  std::string Err;

  static LinearForm failure(std::string Message) {
    LinearForm F;
    F.Ok = false;
    F.Err = std::move(Message);
    return F;
  }
};

LinearForm linearizeNode(const ExprNode *N) {
  assert(N && "linearizing invalid expr");
  switch (N->Kind) {
  case ExprKind::Load: {
    LinearForm F;
    F.Terms[{N->GridIdx, N->Dx, N->Dy, N->Dz}] = 1.0;
    return F;
  }
  case ExprKind::Const: {
    LinearForm F;
    F.Constant = N->Value;
    return F;
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    LinearForm L = linearizeNode(N->Lhs.get());
    if (!L.Ok)
      return L;
    LinearForm R = linearizeNode(N->Rhs.get());
    if (!R.Ok)
      return R;
    double Sign = N->Kind == ExprKind::Add ? 1.0 : -1.0;
    L.Constant += Sign * R.Constant;
    for (const auto &[Key, Coeff] : R.Terms)
      L.Terms[Key] += Sign * Coeff;
    return L;
  }
  case ExprKind::Mul: {
    LinearForm L = linearizeNode(N->Lhs.get());
    if (!L.Ok)
      return L;
    LinearForm R = linearizeNode(N->Rhs.get());
    if (!R.Ok)
      return R;
    // One side must be a pure constant for the product to stay linear.
    const LinearForm *ConstSide = L.Terms.empty() ? &L : nullptr;
    const LinearForm *VarSide = &R;
    if (!ConstSide && R.Terms.empty()) {
      ConstSide = &R;
      VarSide = &L;
    }
    if (!ConstSide)
      return LinearForm::failure("product of two grid-dependent expressions "
                                 "is not linear");
    LinearForm Out;
    Out.Constant = ConstSide->Constant * VarSide->Constant;
    for (const auto &[Key, Coeff] : VarSide->Terms)
      Out.Terms[Key] = ConstSide->Constant * Coeff;
    return Out;
  }
  case ExprKind::Div: {
    LinearForm L = linearizeNode(N->Lhs.get());
    if (!L.Ok)
      return L;
    LinearForm R = linearizeNode(N->Rhs.get());
    if (!R.Ok)
      return R;
    if (!R.Terms.empty())
      return LinearForm::failure("division by a grid-dependent expression "
                                 "is not linear");
    if (R.Constant == 0.0)
      return LinearForm::failure("division by zero");
    LinearForm Out;
    Out.Constant = L.Constant / R.Constant;
    for (const auto &[Key, Coeff] : L.Terms)
      Out.Terms[Key] = Coeff / R.Constant;
    return Out;
  }
  case ExprKind::Neg: {
    LinearForm L = linearizeNode(N->Lhs.get());
    if (!L.Ok)
      return L;
    L.Constant = -L.Constant;
    for (auto &[Key, Coeff] : L.Terms)
      Coeff = -Coeff;
    return L;
  }
  }
  return LinearForm::failure("unknown expression kind");
}

} // namespace

Expr Expr::simplified() const {
  assert(Node && "simplifying invalid expr");
  const ExprNode *N = Node.get();
  auto IsConst = [](const Expr &E, double V) {
    return E.isValid() && E.kind() == ExprKind::Const &&
           E.node()->Value == V;
  };
  auto ConstOf = [](const Expr &E) { return E.node()->Value; };

  switch (N->Kind) {
  case ExprKind::Load:
  case ExprKind::Const:
    return *this;
  case ExprKind::Neg: {
    Expr Sub = Expr(N->Lhs).simplified();
    if (Sub.kind() == ExprKind::Const)
      return constant(-ConstOf(Sub));
    if (Sub.kind() == ExprKind::Neg)
      return Expr(Sub.node()->Lhs); // --x -> x.
    return neg(Sub);
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    Expr L = Expr(N->Lhs).simplified();
    Expr R = Expr(N->Rhs).simplified();
    bool IsAdd = N->Kind == ExprKind::Add;
    if (L.kind() == ExprKind::Const && R.kind() == ExprKind::Const)
      return constant(IsAdd ? ConstOf(L) + ConstOf(R)
                            : ConstOf(L) - ConstOf(R));
    if (IsConst(R, 0.0))
      return L; // x +- 0 -> x.
    if (IsAdd && IsConst(L, 0.0))
      return R; // 0 + x -> x.
    return IsAdd ? add(L, R) : sub(L, R);
  }
  case ExprKind::Mul: {
    Expr L = Expr(N->Lhs).simplified();
    Expr R = Expr(N->Rhs).simplified();
    if (L.kind() == ExprKind::Const && R.kind() == ExprKind::Const)
      return constant(ConstOf(L) * ConstOf(R));
    if (IsConst(L, 0.0) || IsConst(R, 0.0))
      return constant(0.0);
    if (IsConst(L, 1.0))
      return R;
    if (IsConst(R, 1.0))
      return L;
    return mul(L, R);
  }
  case ExprKind::Div: {
    Expr L = Expr(N->Lhs).simplified();
    Expr R = Expr(N->Rhs).simplified();
    if (L.kind() == ExprKind::Const && R.kind() == ExprKind::Const &&
        ConstOf(R) != 0.0)
      return constant(ConstOf(L) / ConstOf(R));
    if (IsConst(R, 1.0))
      return L;
    return div(L, R);
  }
  }
  return *this;
}

Expected<std::vector<StencilPoint>> Expr::linearize() const {
  if (!Node)
    return Error::failure("invalid (empty) expression");
  LinearForm F = linearizeNode(Node.get());
  if (!F.Ok)
    return Error::failure(F.Err);
  if (F.Constant != 0.0)
    return Error::failure("expression has a nonzero constant term, which a "
                          "StencilSpec cannot represent");
  std::vector<StencilPoint> Points;
  for (const auto &[Key, Coeff] : F.Terms) {
    if (Coeff == 0.0)
      continue;
    auto [GridIdx, Dx, Dy, Dz] = Key;
    StencilPoint P;
    P.GridIdx = GridIdx;
    P.Dx = Dx;
    P.Dy = Dy;
    P.Dz = Dz;
    P.Coeff = Coeff;
    Points.push_back(P);
  }
  if (Points.empty())
    return Error::failure("expression linearizes to zero");
  return Points;
}

Expected<StencilSpec> Expr::toSpec(const std::string &Name) const {
  auto PointsOr = linearize();
  if (!PointsOr)
    return PointsOr.takeError();
  return StencilSpec(Name, *PointsOr);
}

double Expr::evaluate(
    const std::function<double(unsigned, int, int, int)> &LoadFn) const {
  assert(Node && "evaluating invalid expr");
  std::function<double(const ExprNode *)> Eval =
      [&](const ExprNode *M) -> double {
    switch (M->Kind) {
    case ExprKind::Load:
      return LoadFn(M->GridIdx, M->Dx, M->Dy, M->Dz);
    case ExprKind::Const:
      return M->Value;
    case ExprKind::Add:
      return Eval(M->Lhs.get()) + Eval(M->Rhs.get());
    case ExprKind::Sub:
      return Eval(M->Lhs.get()) - Eval(M->Rhs.get());
    case ExprKind::Mul:
      return Eval(M->Lhs.get()) * Eval(M->Rhs.get());
    case ExprKind::Div:
      return Eval(M->Lhs.get()) / Eval(M->Rhs.get());
    case ExprKind::Neg:
      return -Eval(M->Lhs.get());
    }
    return 0.0;
  };
  return Eval(Node.get());
}
