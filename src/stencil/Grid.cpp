//===- stencil/Grid.cpp - 3-D grid with halo and folded layout ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/Grid.h"

#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace ys;

std::string Fold::str() const {
  return format("%dx%dx%d", X, Y, Z);
}

std::string GridDims::str() const {
  return format("%ldx%ldx%ld", Nx, Ny, Nz);
}

static long roundUp(long Value, long Multiple) {
  return (Value + Multiple - 1) / Multiple * Multiple;
}

Grid::Grid(GridDims Dims, int Halo, Fold F)
    : Dims(Dims), Halo(Halo), F(F), ScalarLayout(F.isScalar()) {
  assert(Dims.Nx > 0 && Dims.Ny > 0 && Dims.Nz > 0 && "empty grid");
  assert(Halo >= 0 && "negative halo");
  assert(F.X > 0 && F.Y > 0 && F.Z > 0 && "degenerate fold");
  PadX = roundUp(Dims.Nx + 2L * Halo, F.X);
  PadY = roundUp(Dims.Ny + 2L * Halo, F.Y);
  PadZ = roundUp(Dims.Nz + 2L * Halo, F.Z);
  NVx = PadX / F.X;
  NVy = PadY / F.Y;
  NVz = PadZ / F.Z;
  Store.allocate(static_cast<size_t>(PadX) * PadY * PadZ);
  Store.zero();
}

Grid::Grid(GridDims Dims, int Halo, Fold F, ThreadPool *FirstTouchPool,
           long ZTile, long YTile)
    : Dims(Dims), Halo(Halo), F(F), ScalarLayout(F.isScalar()) {
  assert(Dims.Nx > 0 && Dims.Ny > 0 && Dims.Nz > 0 && "empty grid");
  assert(Halo >= 0 && "negative halo");
  assert(F.X > 0 && F.Y > 0 && F.Z > 0 && "degenerate fold");
  PadX = roundUp(Dims.Nx + 2L * Halo, F.X);
  PadY = roundUp(Dims.Ny + 2L * Halo, F.Y);
  PadZ = roundUp(Dims.Nz + 2L * Halo, F.Z);
  NVx = PadX / F.X;
  NVy = PadY / F.Y;
  NVz = PadZ / F.Z;
  Store.allocate(static_cast<size_t>(PadX) * PadY * PadZ);
  firstTouch(FirstTouchPool, ZTile, YTile);
}

void Grid::firstTouch(ThreadPool *Pool, long ZTile, long YTile) {
  if (!Pool || Pool->numThreads() <= 1) {
    Store.zero();
    return;
  }

  // Memory-order view of the storage: Planes x Rows rows of RowElems
  // contiguous doubles (for the folded layout a "row" is a run of fold
  // bricks sharing (Vy, Vz), which is contiguous by construction).
  long Planes = ScalarLayout ? PadZ : NVz;
  long Rows = ScalarLayout ? PadY : NVy;
  long RowElems = ScalarLayout ? PadX : NVx * F.elems();

  // Convert interior-coordinate tile extents into plane/row units so the
  // tile->thread mapping matches the sweep decomposition.
  long ZT = ZTile > 0 ? (ZTile + F.Z - 1) / F.Z : 1;
  long YT = YTile > 0 ? std::max<long>(1, (YTile + F.Y - 1) / F.Y) : Rows;
  ZT = std::min(ZT, Planes);
  YT = std::min(YT, Rows);
  long NumZTiles = (Planes + ZT - 1) / ZT;
  long NumYTiles = (Rows + YT - 1) / YT;

  double *Base = Store.data();
  Pool->parallelForTiles(
      NumZTiles, NumYTiles, [&](unsigned, long Zt, long Yt) {
        long P0 = Zt * ZT, P1 = std::min(P0 + ZT, Planes);
        long R0 = Yt * YT, R1 = std::min(R0 + YT, Rows);
        for (long P = P0; P < P1; ++P)
          std::memset(Base + (P * Rows + R0) * RowElems, 0,
                      static_cast<size_t>(R1 - R0) * RowElems *
                          sizeof(double));
      });
}

void Grid::fill(double Value) {
  for (size_t I = 0, E = Store.size(); I != E; ++I)
    Store[I] = Value;
}

void Grid::fillRandom(Rng &R) {
  fill(0.0);
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X)
        at(X, Y, Z) = R.nextDouble(-1.0, 1.0);
}

void Grid::fillFunction(
    const std::function<double(long, long, long)> &Fn) {
  fill(0.0);
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X)
        at(X, Y, Z) = Fn(X, Y, Z);
}

void Grid::fillHalo(double Value) {
  for (long Z = -Halo; Z < Dims.Nz + Halo; ++Z)
    for (long Y = -Halo; Y < Dims.Ny + Halo; ++Y)
      for (long X = -Halo; X < Dims.Nx + Halo; ++X) {
        bool Interior = X >= 0 && X < Dims.Nx && Y >= 0 && Y < Dims.Ny &&
                        Z >= 0 && Z < Dims.Nz;
        if (!Interior)
          at(X, Y, Z) = Value;
      }
}

void Grid::copyInteriorFrom(const Grid &Other) {
  assert(Dims == Other.Dims && "interior copy requires equal dims");
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X)
        at(X, Y, Z) = Other.at(X, Y, Z);
}

void Grid::applyPeriodicHalo() {
  auto Wrap = [](long V, long N) {
    V %= N;
    return V < 0 ? V + N : V;
  };
  for (long Z = -Halo; Z < Dims.Nz + Halo; ++Z)
    for (long Y = -Halo; Y < Dims.Ny + Halo; ++Y)
      for (long X = -Halo; X < Dims.Nx + Halo; ++X) {
        bool Interior = X >= 0 && X < Dims.Nx && Y >= 0 && Y < Dims.Ny &&
                        Z >= 0 && Z < Dims.Nz;
        if (!Interior)
          at(X, Y, Z) = at(Wrap(X, Dims.Nx), Wrap(Y, Dims.Ny),
                           Wrap(Z, Dims.Nz));
      }
}

void Grid::copyHaloFrom(const Grid &Other) {
  assert(Dims == Other.Dims && "halo copy requires equal dims");
  assert(Halo == Other.Halo && "halo copy requires equal halo width");
  for (long Z = -Halo; Z < Dims.Nz + Halo; ++Z)
    for (long Y = -Halo; Y < Dims.Ny + Halo; ++Y)
      for (long X = -Halo; X < Dims.Nx + Halo; ++X) {
        bool Interior = X >= 0 && X < Dims.Nx && Y >= 0 && Y < Dims.Ny &&
                        Z >= 0 && Z < Dims.Nz;
        if (!Interior)
          at(X, Y, Z) = Other.at(X, Y, Z);
      }
}

double Grid::maxAbsDiffInterior(const Grid &A, const Grid &B) {
  assert(A.Dims == B.Dims && "diff requires equal dims");
  if (A.Store.size() == 0 || B.Store.size() == 0)
    return 0.0; // Default-constructed grids own no storage.
  double Max = 0.0;
  for (long Z = 0; Z < A.Dims.Nz; ++Z)
    for (long Y = 0; Y < A.Dims.Ny; ++Y)
      for (long X = 0; X < A.Dims.Nx; ++X)
        Max = std::max(Max, std::fabs(A.at(X, Y, Z) - B.at(X, Y, Z)));
  return Max;
}

double Grid::interiorSum() const {
  if (Store.size() == 0)
    return 0.0;
  double Sum = 0.0;
  for (long Z = 0; Z < Dims.Nz; ++Z)
    for (long Y = 0; Y < Dims.Ny; ++Y)
      for (long X = 0; X < Dims.Nx; ++X)
        Sum += at(X, Y, Z);
  return Sum;
}
