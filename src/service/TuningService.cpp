//===- service/TuningService.cpp - Long-lived tuning service ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/TuningService.h"

#include "arch/MachineModel.h"
#include "codegen/JitCompiler.h"
#include "codegen/SourceEmitter.h"
#include "codegen/VectorFold.h"
#include "ode/Registry.h"
#include "support/StringUtils.h"
#include "support/Trace.h"
#include "tuner/MeasureHarness.h"

#include <cmath>
#include <optional>

using namespace ys;

namespace {

Expected<const MachineModel *> findMachine(const std::string &Name) {
  const MachineModel *M = MachineModel::findBuiltin(Name);
  if (!M)
    return Error::failure(
        format("unknown machine '%s'; try 'machines'", Name.c_str()));
  return M;
}

} // namespace

TuningService::TuningService(ServiceOptions Opts)
    : Options(std::move(Opts)) {
  if (!Options.CachePath.empty())
    Front.absorb(TuningCache::loadOrCreate(Options.CachePath));
}

TuningService::~TuningService() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  QueueCV.notify_all();
  if (Worker.joinable())
    Worker.join(); // The worker drains the queue before exiting, so every
                   // pending waiter still receives its result.
}

Expected<PredictResult> TuningService::predict(const PredictQuery &Q) {
  ModelQueries.fetch_add(1, std::memory_order_relaxed);
  auto SpecOr = resolveStencil(Q.Stencil);
  if (!SpecOr)
    return SpecOr.takeError();
  auto MOr = findMachine(Q.Machine);
  if (!MOr)
    return MOr.takeError();
  const MachineModel &M = **MOr;

  PredictResult R;
  R.Spec = *SpecOr;
  R.MachineName = M.Name;
  R.Config = Q.Config;
  if (!Q.FoldGiven)
    R.Config.VectorFold = VectorFold::select(R.Spec, M);
  R.Cores = Q.Cores ? Q.Cores : 1;
  ECMModel Model(M);
  R.Prediction = Model.predict(R.Spec, Q.Dims, R.Config, R.Cores);

  if (Q.SimCheck)
    simCheck(Q, M, R);
  return R;
}

void TuningService::simCheck(const PredictQuery &Q, const MachineModel &M,
                             PredictResult &R) {
  // Cross-check the model's traffic against the cache simulator.  The
  // sampled fast mode makes this affordable per query; Auto additionally
  // bounds the replay by SimReplayBudgetLups so a predict never stalls
  // behind a production-sized exact replay (it reports "skipped" instead).
  CacheHierarchySim Sim =
      CacheHierarchySim::fromMachine(M, /*PerCoreShare=*/R.Cores > 1);
  StencilTraceRunner Runner(R.Spec, Q.Dims, R.Config);
  unsigned long long FullLups =
      static_cast<unsigned long long>(Q.Dims.lups());
  SimMode Mode = Q.Sim;
  if (R.Config.isTemporal()) {
    // Temporal schedules have no sampled fast path; one macro step
    // replays Depth full sweeps exactly, so that is what the budget must
    // cover.  The model's traffic carries the temporal rescale, so the
    // plain-sweep replay would not be comparable anyway.
    unsigned long long Cost =
        FullLups * static_cast<unsigned long long>(R.Config.WavefrontDepth);
    if (Mode == SimMode::Auto && Cost > Options.SimReplayBudgetLups) {
      R.SimModeUsed = "skipped";
      R.SimNote = format("temporal replay of %llu LUPs exceeds the "
                         "service budget (%llu)",
                         Cost, Options.SimReplayBudgetLups);
      return;
    }
    SimChecks.fetch_add(1, std::memory_order_relaxed);
    R.SimTraffic = Runner.runTemporal(Sim);
  } else {
    StencilTraceRunner::SamplePlan Plan = Runner.planSampled(Sim);
    if (Mode == SimMode::Auto) {
      unsigned long long Cost =
          Plan.UseSampling
              ? static_cast<unsigned long long>(Plan.replayLups())
              : FullLups;
      if (Cost > Options.SimReplayBudgetLups) {
        R.SimModeUsed = "skipped";
        R.SimNote = Plan.UseSampling
                        ? format("sampled replay of %ld LUPs exceeds the "
                                 "service budget (%llu)",
                                 Plan.replayLups(),
                                 Options.SimReplayBudgetLups)
                        : Plan.Reason + "; exact replay exceeds the "
                                        "service budget";
        return;
      }
      Mode = Plan.UseSampling ? SimMode::Sampled : SimMode::Full;
    }
    SimChecks.fetch_add(1, std::memory_order_relaxed);
    // Full replays use two sweeps so the cold first touch is amortized;
    // a sampled replay is steady-state by construction.
    R.SimTraffic = Mode == SimMode::Full ? Runner.run(Sim, 2)
                                         : Runner.run(Sim, 1, Mode);
  }
  R.SimChecked = true;
  R.SimModeUsed = R.SimTraffic.Sampled ? "sampled" : "full";
  R.SimNote = R.SimTraffic.FallbackReason;
  R.SimMemBytesPerLup = R.SimTraffic.BytesPerLup.empty()
                            ? 0
                            : R.SimTraffic.BytesPerLup.back();
  R.ModelMemBytesPerLup = R.Prediction.Traffic.BytesPerLup.empty()
                              ? 0
                              : R.Prediction.Traffic.BytesPerLup.back();
  R.SimDeltaFraction =
      std::abs(R.ModelMemBytesPerLup - R.SimMemBytesPerLup) /
      std::max(R.SimMemBytesPerLup, 1.0);
}

Expected<TuneResult> TuningService::tune(const TuneQuery &Q) {
  ModelQueries.fetch_add(1, std::memory_order_relaxed);
  auto SpecOr = resolveStencil(Q.Stencil);
  if (!SpecOr)
    return SpecOr.takeError();
  auto MOr = findMachine(Q.Machine);
  if (!MOr)
    return MOr.takeError();
  const MachineModel &M = **MOr;

  KernelConfig Base = Q.Config;
  if (!Q.FoldGiven)
    Base.VectorFold = VectorFold::select(*SpecOr, M);

  TuneResult R;
  R.MachineName = M.Name;
  R.Cores = Q.Cores ? Q.Cores : M.CoresPerSocket;
  ECMModel Model(M);
  BlockingSelector Selector(Model);
  R.Analytic = Selector.selectAnalytic(*SpecOr, Q.Dims, Base, -1, R.Cores);
  R.Best = Selector.selectBest(*SpecOr, Q.Dims, Base, true, R.Cores);
  R.Unblocked = Model.predict(*SpecOr, Q.Dims, Base, R.Cores);

  if (Q.Measure) {
    MeasureQuery MQ;
    MQ.Stencil = Q.Stencil;
    MQ.Machine = Q.Machine;
    MQ.Dims = Q.Dims;
    MQ.Config = R.Best.Config;
    auto MeasuredOr = measure(MQ);
    if (!MeasuredOr)
      return MeasuredOr.takeError();
    R.Measured = true;
    R.MeasuredMlups = MeasuredOr->Mlups;
    R.MeasureSource = MeasuredOr->Source;
  }
  return R;
}

Expected<RankResult> TuningService::rank(const RankQuery &Q) {
  RankQueries.fetch_add(1, std::memory_order_relaxed);
  auto TableauOr = tableauByName(Q.Method);
  if (!TableauOr)
    return TableauOr.takeError();
  if (!TableauOr->isExplicit())
    return Error::failure(
        format("'%s' is an implicit PIRK base; ranking integrates explicit "
               "methods",
               TableauOr->Name.c_str()));
  auto MOr = findMachine(Q.Machine);
  if (!MOr)
    return MOr.takeError();
  const MachineModel &M = **MOr;
  auto IvpOr = ivpByName(Q.Ivp, Q.Resolution);
  if (!IvpOr)
    return IvpOr.takeError();
  IVP &Problem = **IvpOr;

  RankResult R;
  R.MachineName = M.Name;
  R.MethodName = TableauOr->Name;
  R.ProblemName = Problem.name();
  R.ProblemDims = Problem.dims();
  R.Cores = Q.Cores ? Q.Cores : 1;
  ECMModel Model(M);
  OffsiteTuner Tuner(Model, R.Cores);
  R.Ranked = Tuner.rank(Tuner.enumerateRK(*TableauOr, Problem), Problem);
  return R;
}

Expected<std::string> TuningService::emitSource(const EmitQuery &Q) {
  EmitQueries.fetch_add(1, std::memory_order_relaxed);
  auto SpecOr = resolveStencil(Q.Stencil);
  if (!SpecOr)
    return SpecOr.takeError();
  if (parseKernelBackend(Q.Backend) == KernelBackend::Jit) {
    // The unit the jit backend would compile for the query's grid size.
    JitGeometry G =
        JitGeometry::forDims(Q.DimsGiven ? Q.Dims : GridDims{32, 32, 32},
                             SpecOr->radius(), Q.Config.VectorFold);
    return SourceEmitter::emitJitTranslationUnit(*SpecOr, G);
  }
  return SourceEmitter::emitTranslationUnit(*SpecOr, Q.Config);
}

Expected<TuningService::TrialJob>
TuningService::prepare(const MeasureQuery &Q) const {
  auto SpecOr = resolveStencil(Q.Stencil);
  if (!SpecOr)
    return SpecOr.takeError();
  auto MOr = findMachine(Q.Machine);
  if (!MOr)
    return MOr.takeError();
  std::string CfgErr = Q.Config.validate();
  if (!CfgErr.empty())
    return Error::failure("invalid kernel config: " + CfgErr);

  std::string Backend;
  if (Q.Backend.empty()) {
    Backend = kernelBackendName(selectKernelBackend());
  } else {
    std::optional<KernelBackend> B = parseKernelBackend(Q.Backend);
    if (!B)
      return Error::failure(
          format("unknown backend '%s' (plan, jit)", Q.Backend.c_str()));
    Backend = kernelBackendName(*B);
  }

  TrialJob Job;
  Job.Spec = *SpecOr;
  Job.Dims = Q.Dims;
  Job.Config = Q.Config;
  Job.Backend = Backend;
  Job.Key = TuningCache::fingerprint(
      Job.Spec, TuningCache::machineId(**MOr), Q.Dims, Q.Config,
      TuningCache::effectiveThreads(Q.Config), Backend);
  Job.HarnessKey = TuningCache::fingerprintRaw(
      TuningCache::canonicalStencil(Job.Spec) + "|" + Q.Dims.str());
  return Job;
}

void TuningService::measureAsync(
    const MeasureQuery &Q, std::function<void(Expected<MeasureResult>)> Done) {
  MeasureRequests.fetch_add(1, std::memory_order_relaxed);
  auto JobOr = prepare(Q);
  if (!JobOr) {
    Done(JobOr.takeError());
    return;
  }
  TrialJob &Job = *JobOr;

  // Fast path: the sharded front answers without queueing.
  if (std::optional<TuningCache::Entry> E = Front.lookup(Job.Key)) {
    MeasureResult R;
    R.Mlups = E->Mlups;
    R.SecondsPerStep = E->SecondsPerStep;
    R.Key = Job.Key;
    R.Source = "cache";
    Done(std::move(R));
    return;
  }

  // Dedup: coalesce onto an in-flight trial with the same fingerprint, or
  // become the leader and enqueue exactly one.
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto It = InFlightByKey.find(Job.Key);
    if (It == InFlightByKey.end()) {
      Leader = true;
      InFlightByKey[Job.Key].Waiters.emplace_back(false, std::move(Done));
    } else {
      Coalesced.fetch_add(1, std::memory_order_relaxed);
      It->second.Waiters.emplace_back(true, std::move(Done));
    }
  }
  if (Leader)
    enqueue(std::move(Job));
}

Expected<MeasureResult> TuningService::measure(const MeasureQuery &Q) {
  struct SyncState {
    std::mutex M;
    std::condition_variable CV;
    std::optional<Expected<MeasureResult>> Result;
  };
  auto State = std::make_shared<SyncState>();
  measureAsync(Q, [State](Expected<MeasureResult> R) {
    std::lock_guard<std::mutex> Lock(State->M);
    State->Result = std::move(R);
    State->CV.notify_all();
  });
  std::unique_lock<std::mutex> Lock(State->M);
  State->CV.wait(Lock, [&] { return State->Result.has_value(); });
  return std::move(*State->Result);
}

void TuningService::enqueue(TrialJob Job) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (!WorkerStarted) {
      WorkerStarted = true;
      Worker = std::thread([this] { workerLoop(); });
    }
    Queue.push_back(std::move(Job));
  }
  QueueCV.notify_one();
}

void TuningService::workerLoop() {
  for (;;) {
    TrialJob Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [&] { return !Queue.empty() || ShuttingDown; });
      if (Queue.empty())
        break; // Shutting down with a drained queue.
      Job = std::move(Queue.front());
      Queue.pop_front();
      WorkerBusy = true;
    }
    runTrial(Job);
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      WorkerBusy = false;
      if (Queue.empty())
        IdleCV.notify_all();
    }
  }
}

void TuningService::runTrial(const TrialJob &Job) {
  double Mlups = 0;
  if (Options.MeasureOverride) {
    Mlups = Options.MeasureOverride(Job.Config);
  } else {
    std::unique_ptr<MeasureHarness> &H = Harnesses[Job.HarnessKey];
    if (!H)
      H = std::make_unique<MeasureHarness>(Job.Spec, Job.Dims,
                                           Options.Repeats,
                                           Options.SweepsPerRepeat);
    H->setBackend(parseKernelBackend(Job.Backend));
    unsigned RunsBefore = H->totalKernelRuns();
    Mlups = H->measure(Job.Config);
    KernelRuns.fetch_add(H->totalKernelRuns() - RunsBefore,
                         std::memory_order_relaxed);
  }
  TimedTrials.fetch_add(1, std::memory_order_relaxed);

  // MLUP/s -> seconds per sweep over these dims.
  double SecondsPerStep =
      Mlups > 0 ? static_cast<double>(Job.Dims.lups()) / (Mlups * 1e6) : 0;

  TuningCache::Entry E;
  E.Key = Job.Key;
  E.Summary =
      Job.Spec.name() + " " + Job.Dims.str() + " " + Job.Config.str();
  E.Mlups = Mlups;
  E.SecondsPerStep = SecondsPerStep;
  E.Repeats = Options.Repeats;
  Front.insert(std::move(E));

  TraceRecord Rec("service_trial");
  Rec.field("key", Job.Key)
      .field("config", Job.Config.str())
      .field("mlups", Mlups)
      .emit();

  // Broadcast to every coalesced waiter (leader included).
  std::vector<std::pair<bool, std::function<void(Expected<MeasureResult>)>>>
      Waiters;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto It = InFlightByKey.find(Job.Key);
    if (It != InFlightByKey.end()) {
      Waiters = std::move(It->second.Waiters);
      InFlightByKey.erase(It);
    }
  }
  for (auto &[WasCoalesced, Done] : Waiters) {
    MeasureResult R;
    R.Mlups = Mlups;
    R.SecondsPerStep = SecondsPerStep;
    R.Key = Job.Key;
    R.Source = WasCoalesced ? "coalesced" : "trial";
    Done(std::move(R));
  }
}

void TuningService::waitIdle() {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  if (!WorkerStarted)
    return;
  IdleCV.wait(Lock, [&] { return Queue.empty() && !WorkerBusy; });
}

ServiceStats TuningService::stats() const {
  ServiceStats S;
  S.ModelQueries = ModelQueries.load(std::memory_order_relaxed);
  S.RankQueries = RankQueries.load(std::memory_order_relaxed);
  S.EmitQueries = EmitQueries.load(std::memory_order_relaxed);
  S.MeasureRequests = MeasureRequests.load(std::memory_order_relaxed);
  S.CacheHits = Front.hits();
  S.CacheMisses = Front.misses();
  S.TimedTrials = TimedTrials.load(std::memory_order_relaxed);
  S.Coalesced = Coalesced.load(std::memory_order_relaxed);
  S.KernelRuns = KernelRuns.load(std::memory_order_relaxed);
  S.SimChecks = SimChecks.load(std::memory_order_relaxed);
  S.CacheEntries = Front.size();
  return S;
}

Error TuningService::saveCache() {
  if (Options.CachePath.empty())
    return Error::failure("tuning service has no cache path configured");
  return saveCache(Options.CachePath);
}

Error TuningService::saveCache(const std::string &Path) {
  return Front.snapshot().saveFile(Path);
}
