//===- service/Serve.cpp - Line-delimited JSON service front ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Serve.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <istream>
#include <ostream>

using namespace ys;

namespace {

/// Truthy request field: string "true"/"1"/"yes" or any non-zero number.
bool boolField(const std::string &Line, const std::string &Key) {
  if (std::optional<bool> B = jsonBoolField(Line, Key))
    return *B;
  if (std::optional<std::string> S = jsonStringField(Line, Key))
    return *S == "true" || *S == "1" || *S == "yes";
  if (std::optional<double> N = jsonNumberField(Line, Key))
    return *N != 0;
  return false;
}

long longField(const std::string &Line, const std::string &Key,
               long Default) {
  if (std::optional<double> N = jsonNumberField(Line, Key))
    return static_cast<long>(*N);
  return Default;
}

std::string stringField(const std::string &Line, const std::string &Key,
                        const std::string &Default = std::string()) {
  if (std::optional<std::string> S = jsonStringField(Line, Key))
    return *S;
  return Default;
}

/// Decodes the kernel-config request fields shared by predict / tune /
/// measure / emit: fold "FXxFYxFZ", bx/by/bz, wf, schedule, threads, nt.
Error parseConfigFields(const std::string &Line, KernelConfig &Config,
                        bool &FoldGiven) {
  FoldGiven = false;
  if (std::optional<std::string> F = jsonStringField(Line, "fold")) {
    auto FoldOr = parseFold(*F);
    if (!FoldOr)
      return FoldOr.takeError();
    Config.VectorFold = *FoldOr;
    FoldGiven = true;
  }
  Config.Block.X = longField(Line, "bx", Config.Block.X);
  Config.Block.Y = longField(Line, "by", Config.Block.Y);
  Config.Block.Z = longField(Line, "bz", Config.Block.Z);
  Config.WavefrontDepth =
      static_cast<int>(longField(Line, "wf", Config.WavefrontDepth));
  if (std::optional<std::string> S = jsonStringField(Line, "schedule")) {
    std::optional<Schedule> Sched = parseSchedule(*S);
    if (!Sched)
      return Error::failure(format("unknown schedule '%s' (sweep, "
                                   "wavefront, diamond, deep-temporal)",
                                   S->c_str()));
    Config.Sched = *Sched;
  }
  Config.Threads =
      static_cast<unsigned>(longField(Line, "threads", Config.Threads));
  if (boolField(Line, "nt"))
    Config.StreamingStores = true;
  long Ranks = longField(Line, "ranks", Config.Ranks);
  if (Ranks < 1)
    return Error::failure(
        format("invalid ranks value %ld (must be >= 1)", Ranks));
  Config.Ranks = static_cast<unsigned>(Ranks);
  return Error::success();
}

Error parseDimsField(const std::string &Line, GridDims &Dims,
                     bool &DimsGiven) {
  DimsGiven = false;
  if (std::optional<std::string> D = jsonStringField(Line, "dims")) {
    auto DimsOr = parseDims(*D);
    if (!DimsOr)
      return DimsOr.takeError();
    Dims = *DimsOr;
    DimsGiven = true;
  }
  return Error::success();
}

/// Response skeleton echoing the request's op and optional id.
JsonObjectWriter beginResponse(const std::string &Line,
                               const std::string &Op, bool Ok) {
  JsonObjectWriter W;
  W.field("ok", Ok).field("op", Op);
  if (std::optional<std::string> Id = jsonStringField(Line, "id"))
    W.field("id", *Id);
  return W;
}

std::string errorResponse(const std::string &Line, const std::string &Op,
                          const std::string &Message) {
  JsonObjectWriter W = beginResponse(Line, Op, false);
  W.field("error", Message);
  return W.str();
}

std::string opPredict(TuningService &Service, const std::string &Line) {
  PredictQuery Q;
  Q.Stencil = stringField(Line, "stencil");
  Q.Machine = stringField(Line, "machine", Q.Machine);
  Q.Cores = static_cast<unsigned>(longField(Line, "cores", 1));
  bool DimsGiven;
  if (Error E = parseDimsField(Line, Q.Dims, DimsGiven))
    return errorResponse(Line, "predict", E.message());
  if (Error E = parseConfigFields(Line, Q.Config, Q.FoldGiven))
    return errorResponse(Line, "predict", E.message());
  // Simulator cross-check: "off" disables it, "full"/"sampled" force a
  // replay mode, "auto" (the default) lets the service decide per budget.
  std::string SimArg = stringField(Line, "sim", "auto");
  if (SimArg == "off") {
    Q.SimCheck = false;
  } else if (std::optional<SimMode> Mode = parseSimMode(SimArg)) {
    Q.SimCheck = true;
    Q.Sim = *Mode;
  } else {
    return errorResponse(Line, "predict",
                         format("unknown sim mode '%s' (off, full, "
                                "sampled, auto)",
                                SimArg.c_str()));
  }
  auto ROr = Service.predict(Q);
  if (!ROr)
    return errorResponse(Line, "predict", ROr.takeError().message());
  JsonObjectWriter W = beginResponse(Line, "predict", true);
  W.field("stencil", ROr->Spec.name())
      .field("machine", ROr->MachineName)
      .field("config", ROr->Config.str())
      .field("cores", static_cast<long>(ROr->Cores))
      .field("mlups", ROr->Prediction.mlupsAtCores(ROr->Cores))
      .field("mlups_saturated", ROr->Prediction.MLupsSaturated)
      .field("ecm", ROr->Prediction.str());
  if (ROr->Prediction.Ranks > 1)
    W.field("ranks", static_cast<long>(ROr->Prediction.Ranks))
        .field("macro_depth", static_cast<long>(ROr->Prediction.MacroDepth))
        .field("redundant_factor", ROr->Prediction.RedundantFactor)
        .field("boundary_fraction", ROr->Prediction.BoundaryFraction)
        .field("comm_bytes_per_macro", ROr->Prediction.CommBytesPerMacro)
        .field("comm_seconds_per_macro",
               ROr->Prediction.CommSecondsPerMacro);
  if (Q.SimCheck) {
    W.field("sim_mode", ROr->SimModeUsed);
    if (ROr->SimChecked)
      W.field("sim_mem_blup", ROr->SimMemBytesPerLup)
          .field("model_mem_blup", ROr->ModelMemBytesPerLup)
          .field("sim_delta_pct", ROr->SimDeltaFraction * 100.0)
          .field("sim_replayed_lups",
                 static_cast<unsigned long long>(
                     ROr->SimTraffic.ReplayedLups));
    if (!ROr->SimNote.empty())
      W.field("sim_note", ROr->SimNote);
  }
  return W.str();
}

std::string opTune(TuningService &Service, const std::string &Line) {
  TuneQuery Q;
  Q.Stencil = stringField(Line, "stencil");
  Q.Machine = stringField(Line, "machine", Q.Machine);
  Q.Cores = static_cast<unsigned>(longField(Line, "cores", 0));
  Q.Measure = boolField(Line, "measure");
  bool DimsGiven;
  if (Error E = parseDimsField(Line, Q.Dims, DimsGiven))
    return errorResponse(Line, "tune", E.message());
  if (Error E = parseConfigFields(Line, Q.Config, Q.FoldGiven))
    return errorResponse(Line, "tune", E.message());
  auto ROr = Service.tune(Q);
  if (!ROr)
    return errorResponse(Line, "tune", ROr.takeError().message());
  JsonObjectWriter W = beginResponse(Line, "tune", true);
  W.field("machine", ROr->MachineName)
      .field("cores", static_cast<long>(ROr->Cores))
      .field("unblocked_mlups", ROr->Unblocked.MLupsSaturated)
      .field("analytic_config", ROr->Analytic.Config.str())
      .field("analytic_mlups", ROr->Analytic.Prediction.MLupsSaturated)
      .field("best_config", ROr->Best.Config.str())
      .field("best_mlups", ROr->Best.Prediction.MLupsSaturated)
      .field("candidates",
             static_cast<long>(ROr->Best.CandidatesEvaluated));
  if (ROr->Measured)
    W.field("measured_mlups", ROr->MeasuredMlups)
        .field("measure_source", ROr->MeasureSource);
  return W.str();
}

std::string opMeasure(TuningService &Service, const std::string &Line) {
  MeasureQuery Q;
  Q.Stencil = stringField(Line, "stencil");
  Q.Machine = stringField(Line, "machine", Q.Machine);
  Q.Backend = stringField(Line, "backend");
  bool DimsGiven, FoldGiven;
  if (Error E = parseDimsField(Line, Q.Dims, DimsGiven))
    return errorResponse(Line, "measure", E.message());
  if (Error E = parseConfigFields(Line, Q.Config, FoldGiven))
    return errorResponse(Line, "measure", E.message());
  auto ROr = Service.measure(Q);
  if (!ROr)
    return errorResponse(Line, "measure", ROr.takeError().message());
  JsonObjectWriter W = beginResponse(Line, "measure", true);
  W.field("mlups", ROr->Mlups)
      .field("seconds_per_step", ROr->SecondsPerStep)
      .field("key", ROr->Key)
      .field("source", ROr->Source);
  return W.str();
}

std::string opRank(TuningService &Service, const std::string &Line) {
  RankQuery Q;
  Q.Method = stringField(Line, "method");
  Q.Ivp = stringField(Line, "ivp", Q.Ivp);
  Q.Resolution = longField(Line, "n", Q.Resolution);
  Q.Machine = stringField(Line, "machine", Q.Machine);
  Q.Cores = static_cast<unsigned>(longField(Line, "cores", 1));
  auto ROr = Service.rank(Q);
  if (!ROr)
    return errorResponse(Line, "rank", ROr.takeError().message());
  // Flat-object protocol: the ranking is one semicolon-joined string of
  // "variant:sweeps-per-step:seconds-per-step", fastest first.
  std::string Ranked;
  for (const VariantPrediction &P : ROr->Ranked) {
    if (!Ranked.empty())
      Ranked += ";";
    Ranked += format("%s:%u:%.6g", P.Variant.Name.c_str(), P.SweepsPerStep,
                     P.SecondsPerStep);
  }
  JsonObjectWriter W = beginResponse(Line, "rank", true);
  W.field("machine", ROr->MachineName)
      .field("method", ROr->MethodName)
      .field("problem", ROr->ProblemName)
      .field("cores", static_cast<long>(ROr->Cores))
      .field("variants", static_cast<long>(ROr->Ranked.size()));
  if (!ROr->Ranked.empty())
    W.field("best_variant", ROr->Ranked.front().Variant.Name)
        .field("best_seconds_per_step", ROr->Ranked.front().SecondsPerStep);
  W.field("ranked", Ranked);
  return W.str();
}

std::string opEmit(TuningService &Service, const std::string &Line) {
  EmitQuery Q;
  Q.Stencil = stringField(Line, "stencil");
  Q.Backend = stringField(Line, "backend");
  bool FoldGiven;
  if (Error E = parseDimsField(Line, Q.Dims, Q.DimsGiven))
    return errorResponse(Line, "emit", E.message());
  if (Error E = parseConfigFields(Line, Q.Config, FoldGiven))
    return errorResponse(Line, "emit", E.message());
  auto SrcOr = Service.emitSource(Q);
  if (!SrcOr)
    return errorResponse(Line, "emit", SrcOr.takeError().message());
  JsonObjectWriter W = beginResponse(Line, "emit", true);
  W.field("source", *SrcOr);
  return W.str();
}

std::string opStats(TuningService &Service, const std::string &Line) {
  ServiceStats S = Service.stats();
  JsonObjectWriter W = beginResponse(Line, "stats", true);
  W.field("model_queries", S.ModelQueries)
      .field("rank_queries", S.RankQueries)
      .field("emit_queries", S.EmitQueries)
      .field("measure_requests", S.MeasureRequests)
      .field("cache_hits", S.CacheHits)
      .field("cache_misses", S.CacheMisses)
      .field("timed_trials", S.TimedTrials)
      .field("coalesced", S.Coalesced)
      .field("kernel_runs", S.KernelRuns)
      .field("sim_checks", S.SimChecks)
      .field("cache_entries", static_cast<unsigned long long>(S.CacheEntries));
  return W.str();
}

std::string opSave(TuningService &Service, const std::string &Line) {
  std::string Path = stringField(Line, "path");
  Error E = Path.empty() ? Service.saveCache() : Service.saveCache(Path);
  if (E)
    return errorResponse(Line, "save", E.message());
  JsonObjectWriter W = beginResponse(Line, "save", true);
  W.field("entries",
          static_cast<unsigned long long>(Service.cacheFront().size()));
  return W.str();
}

} // namespace

std::string ys::serveRequest(TuningService &Service, const std::string &Line,
                             bool &Quit) {
  Quit = false;
  if (!jsonLooksWellFormed(Line))
    return errorResponse(Line, "", "malformed request (one flat JSON "
                                   "object per line)");
  std::string Op = stringField(Line, "op");
  if (Op == "ping")
    return beginResponse(Line, "ping", true).str();
  if (Op == "predict")
    return opPredict(Service, Line);
  if (Op == "tune")
    return opTune(Service, Line);
  if (Op == "measure")
    return opMeasure(Service, Line);
  if (Op == "rank")
    return opRank(Service, Line);
  if (Op == "emit")
    return opEmit(Service, Line);
  if (Op == "stats")
    return opStats(Service, Line);
  if (Op == "save")
    return opSave(Service, Line);
  if (Op == "shutdown") {
    Quit = true;
    return beginResponse(Line, "shutdown", true).str();
  }
  return errorResponse(Line, Op,
                       format("unknown op '%s' (ping, predict, tune, "
                              "measure, rank, emit, stats, save, shutdown)",
                              Op.c_str()));
}

int ys::runServeLoop(std::istream &In, std::ostream &Out,
                     const ServiceOptions &Opts) {
  TuningService Service(Opts);
  std::string Line;
  while (std::getline(In, Line)) {
    // Clients on CRLF transports (or hand-typed input) leave trailing \r /
    // whitespace on the line; without the trim jsonLooksWellFormed rejects
    // every such request as malformed.
    while (!Line.empty() &&
           (Line.back() == '\r' || Line.back() == ' ' ||
            Line.back() == '\t'))
      Line.pop_back();
    if (Line.empty())
      continue;
    bool Quit = false;
    Out << serveRequest(Service, Line, Quit) << "\n" << std::flush;
    if (Quit)
      break;
  }
  return 0;
}
