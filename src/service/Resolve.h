//===- service/Resolve.h - Query-argument resolution -------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolution of the textual arguments every tuning-service query (and the
/// CLI driver on top of it) accepts: stencil names ("heat3d", "star3d:2",
/// or a .stencil DSL file path), grid dims ("N" or "NXxNYxNZ"), and vector
/// folds ("FXxFYxFZ").  Lives in the service layer so the long-lived
/// `TuningService` and the one-shot driver share one parser; all numeric
/// pieces go through the checked support/StringUtils parsers, so garbage
/// like "star3d:2x" or a fold of "4xx1" is a diagnostic, never a silent 0.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SERVICE_RESOLVE_H
#define YS_SERVICE_RESOLVE_H

#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace ys {

/// Resolves a stencil argument: built-in name, parameterized builtin
/// ("star3d:2"), or a .stencil DSL file path.
Expected<StencilSpec> resolveStencil(const std::string &Arg);

/// Parses grid dims: "N" (an N^3 cube) or the explicit "NXxNYxNZ".
Expected<GridDims> parseDims(const std::string &Arg);

/// Parses "FXxFYxFZ".
Expected<Fold> parseFold(const std::string &Arg);

/// Names of all built-in stencils resolveStencil accepts, rendered exactly
/// as the resolver parses them (R = radius placeholder).
std::vector<std::string> builtinStencilNames();

} // namespace ys

#endif // YS_SERVICE_RESOLVE_H
