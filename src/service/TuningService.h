//===- service/TuningService.h - Long-lived tuning service -------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived, thread-safe tuning service answering the paper's workflow
/// queries programmatically: ECM predictions, model-driven parameter
/// selection, timed measurements, Offsite ODE-variant rankings, and kernel
/// source emission.  The CLI driver's subcommands are thin clients of this
/// class; `yasksite serve` exposes the same calls over line-delimited JSON.
///
/// Concurrency architecture (the scaling story, see DESIGN.md "Tuning
/// service"):
///
///  * **Sharded cache front.**  Measured results live in a mutex-striped
///    `ShardedTuningCache` with the existing versioned JSON-lines file as
///    the persistence tier (loaded on construction, written by
///    `saveCache()`).  Repeat queries are answered in microseconds under
///    one stripe lock.
///
///  * **Request deduplication.**  Concurrent measure requests with the
///    same fingerprint coalesce: the first becomes the leader and enqueues
///    one timed trial; the rest park on the in-flight entry and receive
///    the broadcast result.  N identical requests cost exactly one trial.
///
///  * **Admission control.**  Model-only queries (predict / tune / rank /
///    emit) execute entirely on the calling thread and never touch the
///    trial queue, so a microsecond ECM answer is never stuck behind a
///    seconds-long timed trial.  Timed trials funnel through a single
///    FIFO worker lane — serializing them is deliberate: concurrent
///    trials would perturb each other's timings.  The kernels inside a
///    trial still parallelize through the existing work-stealing
///    ThreadPool via MeasureHarness.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SERVICE_TUNINGSERVICE_H
#define YS_SERVICE_TUNINGSERVICE_H

#include "cachesim/StencilTrace.h"
#include "ecm/BlockingSelector.h"
#include "offsite/Offsite.h"
#include "service/Resolve.h"
#include "service/ShardedCache.h"
#include "tuner/TuningStrategy.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ys {

class MeasureHarness;

/// \name Query/result types.
/// @{

/// ECM prediction of one (stencil, machine, dims, config) point.
struct PredictQuery {
  std::string Stencil;                  ///< Builtin name or DSL file path.
  std::string Machine = "CascadeLakeSP";
  GridDims Dims{256, 256, 128};
  KernelConfig Config;
  bool FoldGiven = false; ///< When false, the fold is model-selected.
  unsigned Cores = 1;

  /// Cross-check the ECM traffic prediction against the cache simulator
  /// (sampled fast mode) and report the memory-boundary delta.  With
  /// SimMode::Auto the service samples only when the sampled plan is both
  /// trustworthy and within ServiceOptions::SimReplayBudgetLups, running a
  /// cheap full replay for small grids and skipping (with a reason)
  /// otherwise; Full/Sampled force the respective replay.  Off by default
  /// for programmatic callers (model-only answers stay microsecond-fast);
  /// the serve protocol and the CLI default to "auto".
  bool SimCheck = false;
  SimMode Sim = SimMode::Auto;
};

struct PredictResult {
  StencilSpec Spec;
  std::string MachineName;
  KernelConfig Config; ///< With the model-selected fold filled in.
  unsigned Cores = 1;
  ECMPrediction Prediction;

  /// \name Simulator cross-check (when PredictQuery::SimCheck).
  /// @{
  bool SimChecked = false;   ///< A replay actually ran.
  std::string SimModeUsed;   ///< "sampled" | "full" | "skipped" | "".
  std::string SimNote;       ///< Fallback/skip reason, when any.
  TraceTraffic SimTraffic;   ///< Per-boundary simulated traffic.
  double SimMemBytesPerLup = 0;   ///< Simulated memory-boundary B/LUP.
  double ModelMemBytesPerLup = 0; ///< ECM prediction for the same boundary.
  double SimDeltaFraction = 0;    ///< |model - sim| / sim.
  /// @}
};

/// Model-driven parameter selection; optionally measure the winner.
struct TuneQuery {
  std::string Stencil;
  std::string Machine = "CascadeLakeSP";
  GridDims Dims{256, 256, 128};
  KernelConfig Config; ///< Base config (fold honored when FoldGiven).
  bool FoldGiven = false;
  unsigned Cores = 0; ///< 0 = full socket of the target machine.
  /// Run one timed trial of the model's pick (through the cache and the
  /// dedup/trial lane).  False = pure model, zero kernel runs.
  bool Measure = false;
};

struct TuneResult {
  std::string MachineName;
  unsigned Cores = 0;
  ECMPrediction Unblocked;  ///< Baseline: the query config as-is.
  BlockingChoice Analytic;  ///< Closed-form layer-condition choice.
  BlockingChoice Best;      ///< Model argmax over the candidate space.
  bool Measured = false;    ///< True when the query asked for a trial.
  double MeasuredMlups = 0;
  std::string MeasureSource; ///< "cache" | "trial" | "coalesced".
};

/// One timed measurement of an explicit configuration.
struct MeasureQuery {
  std::string Stencil;
  std::string Machine = "CascadeLakeSP";
  GridDims Dims{256, 256, 128};
  KernelConfig Config;
  std::string Backend; ///< "plan" | "jit" | "" (follow YS_BACKEND).
};

struct MeasureResult {
  double Mlups = 0;
  double SecondsPerStep = 0;
  std::string Key;    ///< Tuning-cache fingerprint.
  std::string Source; ///< "cache" | "trial" | "coalesced".
};

/// Offsite ODE-variant ranking (pure model, zero kernel runs).
struct RankQuery {
  std::string Method; ///< Butcher-tableau name, e.g. "rk4".
  std::string Ivp = "heat3d";
  long Resolution = 32;
  std::string Machine = "CascadeLakeSP";
  unsigned Cores = 1;
};

struct RankResult {
  std::string MachineName;
  std::string MethodName;
  std::string ProblemName;
  GridDims ProblemDims; ///< Dims the predictions were made for.
  unsigned Cores = 1;
  std::vector<VariantPrediction> Ranked; ///< Fastest first.
};

/// Kernel source emission.
struct EmitQuery {
  std::string Stencil;
  KernelConfig Config;
  std::string Backend; ///< "jit" = geometry-baked JIT translation unit.
  GridDims Dims{32, 32, 32}; ///< Geometry for the jit unit.
  bool DimsGiven = false;
};

/// @}

/// Service configuration.
struct ServiceOptions {
  /// JSON-lines persistence tier; "" disables persistence.  Loaded (via
  /// TuningCache::loadOrCreate) on construction.
  std::string CachePath;

  /// Timing repetitions / sweeps per repeat for trials (MeasureHarness).
  unsigned Repeats = 3;
  unsigned SweepsPerRepeat = 2;

  /// Budget for the predict-path simulator cross-check under
  /// SimMode::Auto: the largest replay (sampled prefix, or full grid when
  /// the plan declines) the service will run per query.  Keeps predict
  /// latency bounded — queries above the budget report "skipped".
  unsigned long long SimReplayBudgetLups = 4 * 1000 * 1000;

  /// Test seam: when set, replaces the MeasureHarness for trials.  The
  /// dedup/admission machinery is identical either way.
  MeasureFn MeasureOverride;
};

/// Aggregated service counters (all monotonic since construction).
struct ServiceStats {
  unsigned long long ModelQueries = 0; ///< predict + model-only tune parts.
  unsigned long long RankQueries = 0;
  unsigned long long EmitQueries = 0;
  unsigned long long MeasureRequests = 0; ///< All measure() entries.
  unsigned long long CacheHits = 0;       ///< Sharded-front hits.
  unsigned long long CacheMisses = 0;
  unsigned long long TimedTrials = 0; ///< Trials actually executed.
  unsigned long long Coalesced = 0;   ///< Requests served by another's trial.
  unsigned long long KernelRuns = 0;  ///< Harness kernel sweeps (all trials).
  unsigned long long SimChecks = 0;   ///< Predict-path simulator replays.
  size_t CacheEntries = 0;
};

/// The long-lived tuning service.  All public methods are thread-safe.
class TuningService {
public:
  explicit TuningService(ServiceOptions Opts = ServiceOptions());
  ~TuningService(); ///< Drains the trial queue (pending callbacks fire).

  TuningService(const TuningService &) = delete;
  TuningService &operator=(const TuningService &) = delete;

  /// \name Model-only queries — answered on the calling thread, never
  /// queued behind timed trials (admission control).
  /// @{
  Expected<PredictResult> predict(const PredictQuery &Q);
  Expected<TuneResult> tune(const TuneQuery &Q);
  Expected<RankResult> rank(const RankQuery &Q);
  Expected<std::string> emitSource(const EmitQuery &Q);
  /// @}

  /// \name Measurements — cached, deduplicated, trial-lane serialized.
  /// @{

  /// Synchronous measure: returns when the result is available (possibly
  /// immediately from the cache, possibly after waiting on a coalesced
  /// in-flight trial).
  Expected<MeasureResult> measure(const MeasureQuery &Q);

  /// Asynchronous measure: \p Done is invoked exactly once — immediately
  /// on the calling thread for cache hits and errors, on the trial-lane
  /// worker otherwise.
  void measureAsync(const MeasureQuery &Q,
                    std::function<void(Expected<MeasureResult>)> Done);

  /// Blocks until the trial queue is empty and the worker is idle.
  void waitIdle();

  /// @}

  ServiceStats stats() const;

  /// Read access to the sharded front (tests compare it with the tier).
  ShardedTuningCache &cacheFront() { return Front; }

  /// Persists the merged front to \p Path (default: Options.CachePath)
  /// with the atomic temp+rename saveFile.
  Error saveCache();
  Error saveCache(const std::string &Path);

private:
  struct InFlight {
    /// (coalesced?, completion) per waiter; the leader is first with
    /// coalesced == false.
    std::vector<std::pair<bool, std::function<void(Expected<MeasureResult>)>>>
        Waiters;
  };

  /// Resolved, validated form of a MeasureQuery, ready for the trial lane.
  struct TrialJob {
    StencilSpec Spec;
    GridDims Dims;
    KernelConfig Config;
    std::string Key;
    std::string HarnessKey;
    std::string Backend; ///< Canonical backend name for the harness.
  };

  void simCheck(const PredictQuery &Q, const MachineModel &M,
                PredictResult &R);
  Expected<TrialJob> prepare(const MeasureQuery &Q) const;
  void runTrial(const TrialJob &Job);
  void enqueue(TrialJob Job);
  void workerLoop();

  ServiceOptions Options;
  ShardedTuningCache Front;

  std::mutex InFlightMutex;
  std::map<std::string, InFlight> InFlightByKey;

  // Trial lane: a single FIFO worker started lazily on the first trial.
  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::condition_variable IdleCV;
  std::deque<TrialJob> Queue;
  std::thread Worker;
  bool WorkerStarted = false;
  bool WorkerBusy = false;
  bool ShuttingDown = false;

  /// Per-(stencil, dims, backend) harnesses; trial-lane worker only.
  std::map<std::string, std::unique_ptr<MeasureHarness>> Harnesses;

  mutable std::atomic<unsigned long long> ModelQueries{0};
  mutable std::atomic<unsigned long long> RankQueries{0};
  mutable std::atomic<unsigned long long> EmitQueries{0};
  mutable std::atomic<unsigned long long> MeasureRequests{0};
  mutable std::atomic<unsigned long long> TimedTrials{0};
  mutable std::atomic<unsigned long long> Coalesced{0};
  mutable std::atomic<unsigned long long> KernelRuns{0};
  mutable std::atomic<unsigned long long> SimChecks{0};
};

} // namespace ys

#endif // YS_SERVICE_TUNINGSERVICE_H
