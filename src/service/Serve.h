//===- service/Serve.h - Line-delimited JSON service front -------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `yasksite serve`: a request/response front over TuningService speaking
/// *JSON lines* — one flat request object per input line, one flat
/// response object per output line (support/Json; string and number
/// values only, nothing nests).  See README.md "Tuning service" for the
/// schema.  The loop is synchronous per line but the service underneath
/// shares its cache/dedup/trial machinery with all in-process users.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SERVICE_SERVE_H
#define YS_SERVICE_SERVE_H

#include "service/TuningService.h"

#include <iosfwd>
#include <string>

namespace ys {

/// Handles one request line against \p Service and returns the response
/// line (no trailing newline).  Never throws; malformed input yields an
/// {"ok":"false","error":...} response.  Sets \p Quit when the request
/// was a `shutdown`.
std::string serveRequest(TuningService &Service, const std::string &Line,
                         bool &Quit);

/// Reads request lines from \p In until EOF or a `shutdown` request,
/// writing one response line (flushed) per request to \p Out.  Returns 0.
int runServeLoop(std::istream &In, std::ostream &Out,
                 const ServiceOptions &Opts);

} // namespace ys

#endif // YS_SERVICE_SERVE_H
