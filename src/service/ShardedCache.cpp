//===- service/ShardedCache.cpp - Mutex-striped tuning-cache front ---------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ShardedCache.h"

using namespace ys;

unsigned ShardedTuningCache::shardOf(const std::string &Key) {
  unsigned long long H = 1469598103934665603ull;
  for (unsigned char C : Key) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return static_cast<unsigned>(H % NumShards);
}

std::optional<TuningCache::Entry>
ShardedTuningCache::lookup(const std::string &Key) {
  Shard &S = Shards[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.M);
  if (const TuningCache::Entry *E = S.Cache.peek(Key)) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return *E;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<TuningCache::Entry>
ShardedTuningCache::peek(const std::string &Key) const {
  const Shard &S = Shards[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.M);
  if (const TuningCache::Entry *E = S.Cache.peek(Key))
    return *E;
  return std::nullopt;
}

void ShardedTuningCache::insert(TuningCache::Entry E) {
  Shard &S = Shards[shardOf(E.Key)];
  std::lock_guard<std::mutex> Lock(S.M);
  S.Cache.insert(std::move(E));
}

void ShardedTuningCache::absorb(const TuningCache &Tier) {
  for (const auto &[Key, E] : Tier.entries())
    insert(E);
}

TuningCache ShardedTuningCache::snapshot() const {
  TuningCache Merged;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &[Key, E] : S.Cache.entries())
      Merged.insert(E);
  }
  return Merged;
}

size_t ShardedTuningCache::size() const {
  size_t Total = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Cache.size();
  }
  return Total;
}
