//===- service/Resolve.cpp - Query-argument resolution ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Resolve.h"

#include "frontend/Parser.h"
#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace ys;

std::vector<std::string> ys::builtinStencilNames() {
  // Keep this list in lockstep with resolveStencil below: every name here
  // must parse, with R standing for a single integer radius.
  return {"heat3d",  "heat2d",   "star3d:R", "star2d:R",
          "box3d:R", "line1d:R", "longrange:R"};
}

Expected<StencilSpec> ys::resolveStencil(const std::string &Arg) {
  if (Arg == "heat3d")
    return StencilSpec::heat3d();
  if (Arg == "heat2d")
    return StencilSpec::heat2d();

  std::string RadiusErr;
  auto Parameterized = [&](const std::string &Prefix, int &Radius) -> bool {
    if (!startsWith(Arg, Prefix + ":"))
      return false;
    std::string Suffix = Arg.substr(Prefix.size() + 1);
    Expected<long> R = parseLong(Suffix);
    if (!R) {
      RadiusErr = format("invalid %s radius '%s'", Prefix.c_str(),
                         Suffix.c_str());
      Radius = 0; // Out of every accepted range: rejected below.
      return true;
    }
    Radius = *R > 1000 ? 1000 : static_cast<int>(*R);
    return true;
  };
  int R = 0;
  if (Parameterized("star3d", R)) {
    if (!RadiusErr.empty())
      return Error::failure(RadiusErr);
    if (R < 1 || R > 8)
      return Error::failure("star3d radius must be in [1, 8]");
    return StencilSpec::star3d(R);
  }
  if (Parameterized("star2d", R)) {
    if (!RadiusErr.empty())
      return Error::failure(RadiusErr);
    if (R < 1 || R > 8)
      return Error::failure("star2d radius must be in [1, 8]");
    return StencilSpec::star2d(R);
  }
  if (Parameterized("box3d", R)) {
    if (!RadiusErr.empty())
      return Error::failure(RadiusErr);
    if (R < 1 || R > 3)
      return Error::failure("box3d radius must be in [1, 3]");
    return StencilSpec::box3d(R);
  }
  if (Parameterized("line1d", R)) {
    if (!RadiusErr.empty())
      return Error::failure(RadiusErr);
    if (R < 1 || R > 16)
      return Error::failure("line1d radius must be in [1, 16]");
    return StencilSpec::line1d(R);
  }
  if (Parameterized("longrange", R)) {
    if (!RadiusErr.empty())
      return Error::failure(RadiusErr);
    if (R < 1 || R > 16)
      return Error::failure("longrange x-radius must be in [1, 16]");
    return StencilSpec::longRange(R);
  }

  // Otherwise treat the argument as a DSL file path.
  std::ifstream In(Arg);
  if (!In)
    return Error::failure(format("unknown stencil '%s' (not a builtin and "
                                 "not a readable file)",
                                 Arg.c_str()));
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  auto DefOr = Parser::parseSingle(Buffer.str());
  if (!DefOr)
    return Error::failure(format("%s: %s", Arg.c_str(),
                                 DefOr.takeError().message().c_str()));
  return DefOr->singleSpec();
}

Expected<GridDims> ys::parseDims(const std::string &Arg) {
  std::vector<std::string> Parts = split(Arg, 'x');
  GridDims Dims;
  auto ToLong = [](const std::string &S, long &V) {
    Expected<long> P = parseLong(S);
    if (!P || *P <= 0)
      return false;
    V = *P;
    return true;
  };
  if (Parts.size() == 1) {
    long N;
    if (!ToLong(Parts[0], N))
      return Error::failure(format("invalid dims '%s'", Arg.c_str()));
    Dims.Nx = Dims.Ny = Dims.Nz = N;
    return Dims;
  }
  if (Parts.size() != 3)
    return Error::failure(
        format("dims must be 'N' or 'NXxNYxNZ', got '%s'", Arg.c_str()));
  if (!ToLong(Parts[0], Dims.Nx) || !ToLong(Parts[1], Dims.Ny) ||
      !ToLong(Parts[2], Dims.Nz))
    return Error::failure(format("invalid dims '%s'", Arg.c_str()));
  return Dims;
}

Expected<Fold> ys::parseFold(const std::string &Arg) {
  std::vector<std::string> Parts = split(Arg, 'x');
  if (Parts.size() != 3)
    return Error::failure(
        format("fold must be 'FXxFYxFZ', got '%s'", Arg.c_str()));
  Fold F;
  auto Component = [](const std::string &S, int &V) {
    Expected<long> P = parseLong(S);
    if (!P || *P < 1 || *P > 64)
      return false;
    V = static_cast<int>(*P);
    return true;
  };
  if (!Component(Parts[0], F.X) || !Component(Parts[1], F.Y) ||
      !Component(Parts[2], F.Z))
    return Error::failure(format("invalid fold '%s'", Arg.c_str()));
  return F;
}
