//===- service/ShardedCache.h - Mutex-striped tuning-cache front -*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded front over `TuningCache` for the tuning service:
/// the key space is striped across `NumShards` independently-locked
/// `TuningCache` instances, so concurrent lookups from service threads
/// contend only when they hash to the same stripe.  Hit/miss counters are
/// process-wide atomics (the per-shard TuningCache counters stay untouched
/// and are not used here).
///
/// The existing versioned JSON-lines file remains the persistence tier:
/// `absorb()` distributes a loaded `TuningCache` into the stripes and
/// `snapshot()` merges them back into one `TuningCache` for an atomic
/// `saveFile`.  The front never holds more than one stripe lock at a time,
/// so it cannot deadlock against callers.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SERVICE_SHARDEDCACHE_H
#define YS_SERVICE_SHARDEDCACHE_H

#include "tuner/TuningCache.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <string>

namespace ys {

/// Thread-safe sharded in-memory front over the persistent TuningCache.
class ShardedTuningCache {
public:
  static constexpr unsigned NumShards = 16;

  /// Exact-key lookup; returns a copy of the entry (the reference a plain
  /// TuningCache returns would dangle once the stripe lock is released).
  /// Counts toward hits()/misses().
  std::optional<TuningCache::Entry> lookup(const std::string &Key);

  /// Lookup without touching the hit/miss counters.
  std::optional<TuningCache::Entry> peek(const std::string &Key) const;

  /// Inserts or replaces the entry with the same key.
  void insert(TuningCache::Entry E);

  /// Distributes every entry of \p Tier into the stripes (insert-or-replace
  /// semantics).  Used to warm the front from a loaded JSON-lines file.
  void absorb(const TuningCache &Tier);

  /// Merges all stripes into one TuningCache for persistence.  Consistent
  /// per stripe; concurrent inserts during the merge land in either the
  /// snapshot or the next one.
  TuningCache snapshot() const;

  size_t size() const;
  unsigned long long hits() const { return Hits.load(std::memory_order_relaxed); }
  unsigned long long misses() const { return Misses.load(std::memory_order_relaxed); }
  void resetStats() { Hits = Misses = 0; }

private:
  /// Stripe index of a key: stable FNV-1a over the key bytes (the keys are
  /// themselves FNV fingerprints, but hashing again keeps the striping
  /// independent of the key format).
  static unsigned shardOf(const std::string &Key);

  struct alignas(64) Shard {
    mutable std::mutex M;
    TuningCache Cache;
  };

  Shard Shards[NumShards];
  std::atomic<unsigned long long> Hits{0};
  std::atomic<unsigned long long> Misses{0};
};

} // namespace ys

#endif // YS_SERVICE_SHARDEDCACHE_H
