//===- frontend/Parser.h - Stencil DSL parser --------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the stencil description language.  A
/// stencil definition declares grids and named constants and gives one or
/// more update equations over relative accesses:
///
///   # 7-point heat kernel
///   stencil heat3d {
///     grid u, unew;
///     param alpha = 0.1;
///     unew[x,y,z] = (1 - 6*alpha) * u[x,y,z]
///                 + alpha * (u[x+1,y,z] + u[x-1,y,z]
///                          + u[x,y+1,z] + u[x,y-1,z]
///                          + u[x,y,z+1] + u[x,y,z-1]);
///   }
///
/// Equations lower through the expression AST (StencilExpr) to linear
/// constant-coefficient stencil points; the result is a StencilBundle
/// (multi-equation) whose single-equation case converts to a StencilSpec.
/// All errors carry source locations.
///
//===----------------------------------------------------------------------===//

#ifndef YS_FRONTEND_PARSER_H
#define YS_FRONTEND_PARSER_H

#include "frontend/Lexer.h"
#include "stencil/StencilBundle.h"
#include "stencil/StencilExpr.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <vector>

namespace ys {

/// A parsed stencil definition.
struct ParsedStencil {
  std::string Name;
  std::vector<std::string> GridNames;
  std::map<std::string, double> Params;
  StencilBundle Bundle;

  /// For single-equation stencils: the flattened spec with grid indices
  /// renumbered to the grids actually read (0..k-1).  Fails when the
  /// definition has several equations.
  Expected<StencilSpec> singleSpec() const;
};

/// Parses stencil DSL source text.
class Parser {
public:
  /// Parses a whole buffer holding one or more stencil definitions.
  static Expected<std::vector<ParsedStencil>> parse(
      const std::string &Source);

  /// Convenience: parses a buffer expected to hold exactly one
  /// definition.
  static Expected<ParsedStencil> parseSingle(const std::string &Source);

private:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Expected<std::vector<ParsedStencil>> parseFile();
  Expected<ParsedStencil> parseStencilDef();
  Error parseGridDecl(ParsedStencil &Out);
  Error parseParamDecl(ParsedStencil &Out);
  Error parseEquation(ParsedStencil &Out,
                      std::vector<BundleEquation> &Equations);
  Expected<Expr> parseExpr(const ParsedStencil &Ctx);
  Expected<Expr> parseTerm(const ParsedStencil &Ctx);
  Expected<Expr> parseUnary(const ParsedStencil &Ctx);
  Expected<Expr> parsePrimary(const ParsedStencil &Ctx);

  /// Parses "[x(+|-)N, y(+|-)N, z(+|-)N]" after a grid identifier.
  Error parseAccessOffsets(int &Dx, int &Dy, int &Dz);

  const Token &peek() const { return Tokens[Pos]; }
  const Token &get() { return Tokens[Pos++]; }
  bool consumeIf(TokenKind Kind);
  Error expect(TokenKind Kind, Token &Out);
  Error errorAt(const Token &Tok, const std::string &Msg) const;

  static int gridIndexOf(const ParsedStencil &Ctx, const std::string &Name);

  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace ys

#endif // YS_FRONTEND_PARSER_H
