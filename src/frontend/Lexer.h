//===- frontend/Lexer.h - Stencil DSL lexer ----------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the stencil description language, the textual front end that
/// plays the role of YASK's stencil DSL.  Produces a token stream with
/// source locations for diagnostics.
///
/// Token examples:  stencil grid param { } [ ] ( ) = + - * , ; identifiers,
/// integer and floating-point literals.  Comments run from '#' or '//' to
/// end of line.
///
//===----------------------------------------------------------------------===//

#ifndef YS_FRONTEND_LEXER_H
#define YS_FRONTEND_LEXER_H

#include <string>
#include <vector>

namespace ys {

/// Source location (1-based line and column).
struct SourceLoc {
  unsigned Line = 1;
  unsigned Col = 1;

  std::string str() const;
};

/// Token kinds of the stencil DSL.
enum class TokenKind {
  Identifier,
  Number,     ///< Integer or floating literal (value in NumberValue).
  KwStencil,  ///< 'stencil'
  KwGrid,     ///< 'grid'
  KwParam,    ///< 'param'
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Equals,
  Plus,
  Minus,
  Star,
  Slash,
  Comma,
  Semicolon,
  EndOfFile,
};

/// Returns a human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  double NumberValue = 0.0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Lexes a whole buffer.  On an invalid character, produces a diagnostic
/// and stops (the token stream then ends with EndOfFile).
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes all tokens.  Returns false if a lexical error occurred; the
  /// message is available via errorMessage().
  bool lexAll(std::vector<Token> &Tokens);

  const std::string &errorMessage() const { return ErrorMsg; }

private:
  bool lexToken(Token &Tok);
  void skipWhitespaceAndComments();
  char peek() const;
  char advance();
  bool atEnd() const;
  void error(const std::string &Msg, SourceLoc Loc);

  std::string Source;
  size_t Pos = 0;
  SourceLoc Loc;
  std::string ErrorMsg;
};

} // namespace ys

#endif // YS_FRONTEND_LEXER_H
