//===- frontend/Parser.cpp - Stencil DSL parser -----------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace ys;

Expected<StencilSpec> ParsedStencil::singleSpec() const {
  if (Bundle.numEquations() != 1)
    return Error::failure(format("stencil '%s' has %u equations; "
                                 "singleSpec() needs exactly one",
                                 Name.c_str(), Bundle.numEquations()));
  const BundleEquation &Eq = Bundle.equations()[0];
  // Renumber the grid indices actually read to a dense 0..k-1 range.
  std::map<unsigned, unsigned> Renumber;
  for (const StencilPoint &P : Eq.Spec.points())
    if (!Renumber.count(P.GridIdx)) {
      unsigned Next = static_cast<unsigned>(Renumber.size());
      Renumber[P.GridIdx] = Next;
    }
  std::vector<StencilPoint> Points = Eq.Spec.points();
  for (StencilPoint &P : Points)
    P.GridIdx = Renumber[P.GridIdx];
  StencilSpec Spec(Name, std::move(Points));
  std::string Err = Spec.validate();
  if (!Err.empty())
    return Error::failure(Err);
  return Spec;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (peek().is(Kind)) {
    ++Pos;
    return true;
  }
  return false;
}

Error Parser::errorAt(const Token &Tok, const std::string &Msg) const {
  return Error::failure(
      format("%s: error: %s", Tok.Loc.str().c_str(), Msg.c_str()));
}

Error Parser::expect(TokenKind Kind, Token &Out) {
  if (!peek().is(Kind))
    return errorAt(peek(), format("expected %s, found %s",
                                  tokenKindName(Kind),
                                  tokenKindName(peek().Kind)));
  Out = get();
  return Error::success();
}

int Parser::gridIndexOf(const ParsedStencil &Ctx, const std::string &Name) {
  for (size_t I = 0; I < Ctx.GridNames.size(); ++I)
    if (Ctx.GridNames[I] == Name)
      return static_cast<int>(I);
  return -1;
}

Expected<std::vector<ParsedStencil>> Parser::parse(
    const std::string &Source) {
  Lexer Lex(Source);
  std::vector<Token> Tokens;
  if (!Lex.lexAll(Tokens))
    return Error::failure(Lex.errorMessage());
  Parser P(std::move(Tokens));
  return P.parseFile();
}

Expected<ParsedStencil> Parser::parseSingle(const std::string &Source) {
  auto AllOr = parse(Source);
  if (!AllOr)
    return AllOr.takeError();
  if (AllOr->size() != 1)
    return Error::failure(format("expected exactly one stencil "
                                 "definition, found %zu",
                                 AllOr->size()));
  return std::move(AllOr->front());
}

Expected<std::vector<ParsedStencil>> Parser::parseFile() {
  std::vector<ParsedStencil> Defs;
  while (!peek().is(TokenKind::EndOfFile)) {
    auto DefOr = parseStencilDef();
    if (!DefOr)
      return DefOr.takeError();
    Defs.push_back(std::move(*DefOr));
  }
  if (Defs.empty())
    return Error::failure("1:1: error: no stencil definitions in input");
  return Defs;
}

Expected<ParsedStencil> Parser::parseStencilDef() {
  Token Tok;
  if (Error E = expect(TokenKind::KwStencil, Tok))
    return E;
  Token NameTok;
  if (Error E = expect(TokenKind::Identifier, NameTok))
    return E;
  if (Error E = expect(TokenKind::LBrace, Tok))
    return E;

  ParsedStencil Out;
  Out.Name = NameTok.Text;
  std::vector<BundleEquation> Equations;

  while (!peek().is(TokenKind::RBrace)) {
    if (peek().is(TokenKind::EndOfFile))
      return errorAt(peek(), "unterminated stencil definition (missing "
                             "'}')");
    if (peek().is(TokenKind::KwGrid)) {
      if (Error E = parseGridDecl(Out))
        return E;
      continue;
    }
    if (peek().is(TokenKind::KwParam)) {
      if (Error E = parseParamDecl(Out))
        return E;
      continue;
    }
    if (Error E = parseEquation(Out, Equations))
      return E;
  }
  get(); // '}'

  if (Equations.empty())
    return Error::failure(format("stencil '%s' has no equations",
                                 Out.Name.c_str()));
  Out.Bundle = StencilBundle(Out.Name, Out.GridNames, Equations);
  std::string BundleErr = Out.Bundle.validate();
  if (!BundleErr.empty())
    return Error::failure(format("stencil '%s': %s", Out.Name.c_str(),
                                 BundleErr.c_str()));
  return Out;
}

Error Parser::parseGridDecl(ParsedStencil &Out) {
  get(); // 'grid'
  while (true) {
    Token Name;
    if (Error E = expect(TokenKind::Identifier, Name))
      return E;
    if (gridIndexOf(Out, Name.Text) >= 0)
      return errorAt(Name,
                     format("grid '%s' already declared", Name.Text.c_str()));
    if (Out.Params.count(Name.Text))
      return errorAt(Name, format("'%s' already declared as a param",
                                  Name.Text.c_str()));
    Out.GridNames.push_back(Name.Text);
    if (consumeIf(TokenKind::Comma))
      continue;
    Token Semi;
    return expect(TokenKind::Semicolon, Semi);
  }
}

Error Parser::parseParamDecl(ParsedStencil &Out) {
  get(); // 'param'
  Token Name;
  if (Error E = expect(TokenKind::Identifier, Name))
    return E;
  if (Out.Params.count(Name.Text) || gridIndexOf(Out, Name.Text) >= 0)
    return errorAt(Name,
                   format("'%s' already declared", Name.Text.c_str()));
  Token Eq;
  if (Error E = expect(TokenKind::Equals, Eq))
    return E;
  bool Negative = consumeIf(TokenKind::Minus);
  Token Value;
  if (Error E = expect(TokenKind::Number, Value))
    return E;
  Out.Params[Name.Text] =
      Negative ? -Value.NumberValue : Value.NumberValue;
  Token Semi;
  return expect(TokenKind::Semicolon, Semi);
}

Error Parser::parseAccessOffsets(int &Dx, int &Dy, int &Dz) {
  Token Tok;
  if (Error E = expect(TokenKind::LBracket, Tok))
    return E;
  const char *Axes[3] = {"x", "y", "z"};
  int *Offsets[3] = {&Dx, &Dy, &Dz};
  for (int Axis = 0; Axis < 3; ++Axis) {
    Token AxisTok;
    if (Error E = expect(TokenKind::Identifier, AxisTok))
      return E;
    if (AxisTok.Text != Axes[Axis])
      return errorAt(AxisTok,
                     format("expected axis '%s' in position %d, found '%s'",
                            Axes[Axis], Axis + 1, AxisTok.Text.c_str()));
    *Offsets[Axis] = 0;
    if (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
      bool Neg = get().is(TokenKind::Minus);
      Token Off;
      if (Error E = expect(TokenKind::Number, Off))
        return E;
      double Rounded = std::round(Off.NumberValue);
      if (Rounded != Off.NumberValue)
        return errorAt(Off, "offsets must be integers");
      *Offsets[Axis] = static_cast<int>(Neg ? -Rounded : Rounded);
    }
    if (Axis < 2) {
      Token Comma;
      if (Error E = expect(TokenKind::Comma, Comma))
        return E;
    }
  }
  return expect(TokenKind::RBracket, Tok);
}

Error Parser::parseEquation(ParsedStencil &Out,
                            std::vector<BundleEquation> &Equations) {
  Token LhsName;
  if (Error E = expect(TokenKind::Identifier, LhsName))
    return E;
  int OutGrid = gridIndexOf(Out, LhsName.Text);
  if (OutGrid < 0)
    return errorAt(LhsName, format("unknown grid '%s' on the left-hand "
                                   "side (declare it with 'grid')",
                                   LhsName.Text.c_str()));
  int Dx, Dy, Dz;
  if (Error E = parseAccessOffsets(Dx, Dy, Dz))
    return E;
  if (Dx != 0 || Dy != 0 || Dz != 0)
    return errorAt(LhsName, "left-hand-side access must be [x,y,z] "
                            "(no offsets)");
  Token Eq;
  if (Error E = expect(TokenKind::Equals, Eq))
    return E;

  Token ExprStart = peek();
  auto ExprOr = parseExpr(Out);
  if (!ExprOr)
    return ExprOr.takeError();
  Token Semi;
  if (Error E = expect(TokenKind::Semicolon, Semi))
    return E;

  auto PointsOr = ExprOr->linearize();
  if (!PointsOr)
    return errorAt(ExprStart,
                   format("equation for '%s' is not a linear "
                          "constant-coefficient stencil: %s",
                          LhsName.Text.c_str(),
                          PointsOr.takeError().message().c_str()));
  BundleEquation Equation;
  Equation.OutputGrid = static_cast<unsigned>(OutGrid);
  Equation.Spec = StencilSpec(format("%s.eq%zu", Out.Name.c_str(),
                                     Equations.size()),
                              *PointsOr);
  Equations.push_back(std::move(Equation));
  return Error::success();
}

Expected<Expr> Parser::parseExpr(const ParsedStencil &Ctx) {
  auto LhsOr = parseTerm(Ctx);
  if (!LhsOr)
    return LhsOr.takeError();
  Expr Lhs = *LhsOr;
  while (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
    bool IsPlus = get().is(TokenKind::Plus);
    auto RhsOr = parseTerm(Ctx);
    if (!RhsOr)
      return RhsOr.takeError();
    Lhs = IsPlus ? Expr::add(Lhs, *RhsOr) : Expr::sub(Lhs, *RhsOr);
  }
  return Lhs;
}

Expected<Expr> Parser::parseTerm(const ParsedStencil &Ctx) {
  auto LhsOr = parseUnary(Ctx);
  if (!LhsOr)
    return LhsOr.takeError();
  Expr Lhs = *LhsOr;
  while (peek().is(TokenKind::Star) || peek().is(TokenKind::Slash)) {
    bool IsMul = get().is(TokenKind::Star);
    auto RhsOr = parseUnary(Ctx);
    if (!RhsOr)
      return RhsOr.takeError();
    Lhs = IsMul ? Expr::mul(Lhs, *RhsOr) : Expr::div(Lhs, *RhsOr);
  }
  return Lhs;
}

Expected<Expr> Parser::parseUnary(const ParsedStencil &Ctx) {
  if (consumeIf(TokenKind::Minus)) {
    auto SubOr = parseUnary(Ctx);
    if (!SubOr)
      return SubOr.takeError();
    return Expr::neg(*SubOr);
  }
  return parsePrimary(Ctx);
}

Expected<Expr> Parser::parsePrimary(const ParsedStencil &Ctx) {
  if (peek().is(TokenKind::Number))
    return Expr::constant(get().NumberValue);

  if (peek().is(TokenKind::LParen)) {
    get();
    auto InnerOr = parseExpr(Ctx);
    if (!InnerOr)
      return InnerOr.takeError();
    Token RParen;
    if (Error E = expect(TokenKind::RParen, RParen))
      return E;
    return *InnerOr;
  }

  if (peek().is(TokenKind::Identifier)) {
    Token Name = get();
    if (peek().is(TokenKind::LBracket)) {
      int GridIdx = gridIndexOf(Ctx, Name.Text);
      if (GridIdx < 0)
        return errorAt(Name, format("unknown grid '%s'",
                                    Name.Text.c_str()));
      int Dx, Dy, Dz;
      if (Error E = parseAccessOffsets(Dx, Dy, Dz))
        return E;
      return Expr::load(static_cast<unsigned>(GridIdx), Dx, Dy, Dz);
    }
    auto It = Ctx.Params.find(Name.Text);
    if (It == Ctx.Params.end())
      return errorAt(Name,
                     format("unknown identifier '%s' (not a param; grid "
                            "accesses need [x,y,z] offsets)",
                            Name.Text.c_str()));
    return Expr::constant(It->second);
  }

  return errorAt(peek(), format("expected an expression, found %s",
                                tokenKindName(peek().Kind)));
}
