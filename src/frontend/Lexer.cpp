//===- frontend/Lexer.cpp - Stencil DSL lexer -------------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace ys;

std::string SourceLoc::str() const { return format("%u:%u", Line, Col); }

const char *ys::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwStencil:
    return "'stencil'";
  case TokenKind::KwGrid:
    return "'grid'";
  case TokenKind::KwParam:
    return "'param'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Equals:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::EndOfFile:
    return "end of input";
  }
  return "unknown";
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

bool Lexer::atEnd() const { return Pos >= Source.size(); }

char Lexer::peek() const { return atEnd() ? '\0' : Source[Pos]; }

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Loc.Line;
    Loc.Col = 1;
  } else {
    ++Loc.Col;
  }
  return C;
}

void Lexer::error(const std::string &Msg, SourceLoc ErrLoc) {
  ErrorMsg = format("%s: error: %s", ErrLoc.str().c_str(), Msg.c_str());
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '#' ||
        (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/')) {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

bool Lexer::lexToken(Token &Tok) {
  skipWhitespaceAndComments();
  Tok.Loc = Loc;
  if (atEnd()) {
    Tok.Kind = TokenKind::EndOfFile;
    Tok.Text.clear();
    return true;
  }

  char C = peek();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    Tok.Text = Text;
    if (Text == "stencil")
      Tok.Kind = TokenKind::KwStencil;
    else if (Text == "grid")
      Tok.Kind = TokenKind::KwGrid;
    else if (Text == "param")
      Tok.Kind = TokenKind::KwParam;
    else
      Tok.Kind = TokenKind::Identifier;
    return true;
  }

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && Pos + 1 < Source.size() &&
       std::isdigit(static_cast<unsigned char>(Source[Pos + 1])))) {
    std::string Text;
    bool SeenDot = false, SeenExp = false;
    while (!atEnd()) {
      char D = peek();
      if (std::isdigit(static_cast<unsigned char>(D))) {
        Text += advance();
      } else if (D == '.' && !SeenDot && !SeenExp) {
        SeenDot = true;
        Text += advance();
      } else if ((D == 'e' || D == 'E') && !SeenExp && !Text.empty()) {
        SeenExp = true;
        Text += advance();
        if (peek() == '+' || peek() == '-')
          Text += advance();
      } else {
        break;
      }
    }
    Tok.Kind = TokenKind::Number;
    Tok.Text = Text;
    Tok.NumberValue = std::strtod(Text.c_str(), nullptr);
    return true;
  }

  advance();
  switch (C) {
  case '{':
    Tok.Kind = TokenKind::LBrace;
    break;
  case '}':
    Tok.Kind = TokenKind::RBrace;
    break;
  case '[':
    Tok.Kind = TokenKind::LBracket;
    break;
  case ']':
    Tok.Kind = TokenKind::RBracket;
    break;
  case '(':
    Tok.Kind = TokenKind::LParen;
    break;
  case ')':
    Tok.Kind = TokenKind::RParen;
    break;
  case '=':
    Tok.Kind = TokenKind::Equals;
    break;
  case '+':
    Tok.Kind = TokenKind::Plus;
    break;
  case '-':
    Tok.Kind = TokenKind::Minus;
    break;
  case '*':
    Tok.Kind = TokenKind::Star;
    break;
  case '/':
    Tok.Kind = TokenKind::Slash;
    break;
  case ',':
    Tok.Kind = TokenKind::Comma;
    break;
  case ';':
    Tok.Kind = TokenKind::Semicolon;
    break;
  default:
    error(format("unexpected character '%c'", C), Tok.Loc);
    return false;
  }
  Tok.Text = std::string(1, C);
  return true;
}

bool Lexer::lexAll(std::vector<Token> &Tokens) {
  Tokens.clear();
  while (true) {
    Token Tok;
    if (!lexToken(Tok))
      return false;
    Tokens.push_back(Tok);
    if (Tok.is(TokenKind::EndOfFile))
      return true;
  }
}
