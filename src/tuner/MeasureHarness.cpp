//===- tuner/MeasureHarness.cpp - Kernel measurement harness ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/MeasureHarness.h"

#include "cachesim/StencilTrace.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "tuner/TuningCache.h"

#include <cstdio>

using namespace ys;

MeasureHarness::MeasureHarness(StencilSpec Spec, GridDims Dims,
                               unsigned Repeats, unsigned SweepsPerRepeat)
    : Spec(std::move(Spec)), Dims(Dims), Repeats(Repeats),
      SweepsPerRepeat(std::max(1u, SweepsPerRepeat)) {}

MeasureHarness::~MeasureHarness() = default;

void MeasureHarness::attachCache(TuningCache *NewCache,
                                 const MachineModel &Machine) {
  Cache = NewCache;
  CacheMachineId = TuningCache::machineId(Machine);
}

void MeasureHarness::ensureBuffers(const KernelConfig &Config) {
  // The pool must exist before the grids so first-touch initialization can
  // fault pages in on the threads that will sweep them.
  if (Config.Threads > 1 && (!Pool || PoolThreads != Config.Threads)) {
    Pool = std::make_unique<ThreadPool>(Config.Threads);
    PoolThreads = Config.Threads;
  }
  if (!U || !(CurrentFold == Config.VectorFold)) {
    CurrentFold = Config.VectorFold;
    int Halo = Spec.radius();
    ThreadPool *P = Config.Threads > 1 ? Pool.get() : nullptr;
    BlockSize B = Config.Block.resolved(Dims);
    U = std::make_unique<Grid>(Dims, Halo, CurrentFold, P, B.Z, B.Y);
    V = std::make_unique<Grid>(Dims, Halo, CurrentFold, P, B.Z, B.Y);
    Rng R(42);
    U->fillRandom(R);
    // One buffer per additional input grid of the stencil; distinct
    // deterministic contents so cross-grid coefficients are exercised.
    ExtraInputs.clear();
    for (unsigned G = 1; G < Spec.numInputGrids(); ++G) {
      ExtraInputs.push_back(
          std::make_unique<Grid>(Dims, Halo, CurrentFold, P, B.Z, B.Y));
      Rng RG(42 + G);
      ExtraInputs.back()->fillRandom(RG);
    }
  }
}

double MeasureHarness::measure(const KernelConfig &Config) {
  Trace::initFromEnv();

  KernelBackend Backend = effectiveBackend();
  std::string Key;
  if (Cache) {
    Key = TuningCache::fingerprint(Spec, CacheMachineId, Dims, Config,
                                   TuningCache::effectiveThreads(Config),
                                   kernelBackendName(Backend));
    if (const TuningCache::Entry *E = Cache->lookup(Key)) {
      ++CachedMeasurements;
      TraceRecord Rec("measure");
      Rec.field("config", Config.str())
          .field("mlups", E->Mlups)
          .field("cached", 1L)
          .emit();
      return E->Mlups;
    }
  }

  ensureBuffers(Config);
  // Reuse the executor — and therefore its compiled kernel plan — across
  // warm-up, timed repeats, and repeated measurements of one candidate:
  // the harness exists to time steady-state kernels, not plan compilation.
  if (!Exec || !(ExecConfig == Config)) {
    Exec = std::make_unique<KernelExecutor>(Spec, Config);
    ExecConfig = Config;
  }
  Exec->setBackend(Backend); // No-op when unchanged.
  ThreadPool *P = Config.Threads > 1 ? Pool.get() : nullptr;
  if (P)
    P->resetStats();

  std::vector<const Grid *> Inputs;
  Inputs.push_back(U.get());
  for (const std::unique_ptr<Grid> &G : ExtraInputs)
    Inputs.push_back(G.get());

  TimingStats Stats = measureSeconds(
      [&] {
        if (Spec.numInputGrids() == 1) {
          Exec->runTimeSteps(*U, *V, static_cast<int>(SweepsPerRepeat), P);
        } else {
          for (unsigned S = 0; S < SweepsPerRepeat; ++S)
            Exec->runSweep(Inputs, *V, P);
        }
        KernelRuns += SweepsPerRepeat;
      },
      Repeats);

  LastStats = P ? P->stats() : PoolStats();
  if (P && PrintPoolStats)
    std::printf("  pool[%s]: %s\n", Config.str().c_str(),
                LastStats.str().c_str());

  // Min-of-N: the least-noise repeat represents the configuration's
  // capability (everything slower is interference).  measureSeconds
  // floors every sample at the timer resolution, so Min > 0 always.
  double Lups = static_cast<double>(Dims.lups()) * SweepsPerRepeat;
  double Mlups = Lups / Stats.Min / 1e6;
  double SecondsPerStep = Stats.Min / SweepsPerRepeat;

  if (Cache) {
    TuningCache::Entry E;
    E.Key = Key;
    E.Summary = Spec.name() + " " + Dims.str() + " " + Config.str();
    E.Mlups = Mlups;
    E.SecondsPerStep = SecondsPerStep;
    E.Repeats = Repeats;
    Cache->insert(std::move(E));
  }

  TraceRecord Rec("measure");
  Rec.field("config", Config.str())
      .field("stencil", Spec.name())
      .field("dims", Dims.str())
      .field("repeats", Repeats)
      .field("sweeps_per_repeat", SweepsPerRepeat)
      .field("warmup_sweeps", SweepsPerRepeat)
      .field("min_seconds", Stats.Min)
      .field("median_seconds", Stats.Median)
      .field("seconds_per_step", SecondsPerStep)
      .field("mlups", Mlups)
      .field("cached", 0L);
  if (P)
    Rec.field("pool_tiles", LastStats.totalRun())
        .field("pool_stolen", LastStats.totalStolen())
        .field("pool_busy_seconds", LastStats.totalBusySeconds());
  Rec.emit();
  return Mlups;
}

MeasureFn MeasureHarness::measurer() {
  return [this](const KernelConfig &C) { return measure(C); };
}

MeasureFn ys::makeTrafficProxyMeasurer(const StencilSpec &Spec,
                                       const GridDims &Dims,
                                       const MachineModel &Machine) {
  // Captures by value so the returned callable is self-contained.
  StencilSpec SpecCopy = Spec;
  GridDims DimsCopy = Dims;
  MachineModel MachineCopy = Machine;
  return [SpecCopy, DimsCopy, MachineCopy](const KernelConfig &Config) {
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(MachineCopy);
    StencilTraceRunner Runner(SpecCopy, DimsCopy, Config);
    TraceTraffic T = Config.isTemporal() ? Runner.runTemporal(Sim)
                                         : Runner.run(Sim, 2);
    double MemBytesPerLup = T.BytesPerLup.back();
    if (MemBytesPerLup <= 0.0)
      MemBytesPerLup = 0.1; // Fully cached: score very high.
    // Memory-bound performance: BW / (bytes/LUP), in MLUP/s.
    return MachineCopy.Memory.BandwidthGBs * 1e3 / MemBytesPerLup;
  };
}
