//===- tuner/MeasureHarness.cpp - Kernel measurement harness ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/MeasureHarness.h"

#include "cachesim/StencilTrace.h"
#include "support/Random.h"
#include "support/Timer.h"

using namespace ys;

MeasureHarness::MeasureHarness(StencilSpec Spec, GridDims Dims,
                               unsigned Repeats, unsigned SweepsPerRepeat)
    : Spec(std::move(Spec)), Dims(Dims), Repeats(Repeats),
      SweepsPerRepeat(std::max(1u, SweepsPerRepeat)) {}

MeasureHarness::~MeasureHarness() = default;

void MeasureHarness::ensureBuffers(const KernelConfig &Config) {
  if (!U || !(CurrentFold == Config.VectorFold)) {
    CurrentFold = Config.VectorFold;
    int Halo = Spec.radius();
    U = std::make_unique<Grid>(Dims, Halo, CurrentFold);
    V = std::make_unique<Grid>(Dims, Halo, CurrentFold);
    Rng R(42);
    U->fillRandom(R);
  }
  if (Config.Threads > 1 && (!Pool || PoolThreads != Config.Threads)) {
    Pool = std::make_unique<ThreadPool>(Config.Threads);
    PoolThreads = Config.Threads;
  }
}

double MeasureHarness::measure(const KernelConfig &Config) {
  ensureBuffers(Config);
  KernelExecutor Exec(Spec, Config);
  ThreadPool *P = Config.Threads > 1 ? Pool.get() : nullptr;

  TimingStats Stats = measureSeconds(
      [&] {
        if (Spec.numInputGrids() == 1) {
          Exec.runTimeSteps(*U, *V, static_cast<int>(SweepsPerRepeat), P);
        } else {
          for (unsigned S = 0; S < SweepsPerRepeat; ++S)
            Exec.runSweep({U.get()}, *V, P);
        }
        KernelRuns += SweepsPerRepeat;
      },
      Repeats);

  double Lups = static_cast<double>(Dims.lups()) * SweepsPerRepeat;
  return Lups / Stats.Median / 1e6;
}

MeasureFn MeasureHarness::measurer() {
  return [this](const KernelConfig &C) { return measure(C); };
}

MeasureFn ys::makeTrafficProxyMeasurer(const StencilSpec &Spec,
                                       const GridDims &Dims,
                                       const MachineModel &Machine) {
  // Captures by value so the returned callable is self-contained.
  StencilSpec SpecCopy = Spec;
  GridDims DimsCopy = Dims;
  MachineModel MachineCopy = Machine;
  return [SpecCopy, DimsCopy, MachineCopy](const KernelConfig &Config) {
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(MachineCopy);
    StencilTraceRunner Runner(SpecCopy, DimsCopy, Config);
    TraceTraffic T = Config.WavefrontDepth > 1 ? Runner.runWavefront(Sim)
                                               : Runner.run(Sim, 2);
    double MemBytesPerLup = T.BytesPerLup.back();
    if (MemBytesPerLup <= 0.0)
      MemBytesPerLup = 0.1; // Fully cached: score very high.
    // Memory-bound performance: BW / (bytes/LUP), in MLUP/s.
    return MachineCopy.Memory.BandwidthGBs * 1e3 / MemBytesPerLup;
  };
}
