//===- tuner/MeasureHarness.h - Kernel measurement harness -------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth evaluation of kernel configurations for the measuring
/// tuning strategies: allocates grids once, runs KernelExecutor sweeps
/// under a candidate configuration, and reports the best (min-of-N
/// repeats) MLUP/s — the least-noise statistic for performance work, with
/// samples floored at the timer resolution so a sub-tick run can never
/// produce an infinite rate.  A cache-simulator-backed proxy mode is also
/// provided: it scores a configuration by simulated memory traffic
/// instead of wall time, which is deterministic and host-independent
/// (useful on noisy machines and in tests).
///
/// With a TuningCache attached, already-measured configurations are
/// served from the cache without running the kernel at all, and new
/// measurements are inserted; every measurement emits a structured trace
/// record when YS_TRACE is set.
///
//===----------------------------------------------------------------------===//

#ifndef YS_TUNER_MEASUREHARNESS_H
#define YS_TUNER_MEASUREHARNESS_H

#include "codegen/KernelExecutor.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "tuner/TuningStrategy.h"

#include <memory>
#include <optional>

namespace ys {

class MachineModel;
class TuningCache;

/// Host wall-clock measurement of stencil configurations.
class MeasureHarness {
public:
  /// \p Repeats timing repetitions per configuration (minimum taken);
  /// \p SweepsPerRepeat sweeps per timed run.
  MeasureHarness(StencilSpec Spec, GridDims Dims, unsigned Repeats = 3,
                 unsigned SweepsPerRepeat = 2);
  ~MeasureHarness();

  /// Attaches a persistent result cache (borrowed; must outlive the
  /// harness).  \p Machine identifies the host model the cached numbers
  /// belong to; its parameters are part of every fingerprint.
  void attachCache(TuningCache *Cache, const MachineModel &Machine);

  /// Returns a MeasureFn bound to this harness (valid while alive).
  MeasureFn measurer();

  /// Measures one configuration: best (min-of-N) MLUP/s over the
  /// repeats, or the cached value when the attached cache has it.
  double measure(const KernelConfig &Config);

  unsigned totalKernelRuns() const { return KernelRuns; }

  /// Measure() calls answered from the attached cache without running.
  unsigned cachedMeasurements() const { return CachedMeasurements; }

  /// Pool counters accumulated during the last measure() call (empty when
  /// the configuration ran single-threaded).
  const PoolStats &lastPoolStats() const { return LastStats; }

  /// When enabled, measure() prints the pool-stats summary line after each
  /// threaded measurement (imbalance/steal visibility while tuning).
  void setPrintPoolStats(bool Enable) { PrintPoolStats = Enable; }

  /// Forces the execution backend timed by measure() (plan or jit);
  /// unset (the default) follows YS_BACKEND.  The backend is part of the
  /// tuning-cache fingerprint, so plan-measured and jit-measured numbers
  /// never answer each other's queries.
  void setBackend(std::optional<KernelBackend> B) { BackendOverride = B; }

  /// Backend measure() will request on its executors.
  KernelBackend effectiveBackend() const {
    return BackendOverride ? *BackendOverride : selectKernelBackend();
  }

private:
  StencilSpec Spec;
  GridDims Dims;
  unsigned Repeats;
  unsigned SweepsPerRepeat;
  unsigned KernelRuns = 0;
  unsigned CachedMeasurements = 0;
  TuningCache *Cache = nullptr;
  std::string CacheMachineId;
  Fold CurrentFold;
  /// Executor reused across measure() calls of the same configuration, so
  /// its compiled kernel plan survives from warm-up into the timed
  /// repeats (and across repeated measurements of one candidate).
  std::unique_ptr<KernelExecutor> Exec;
  KernelConfig ExecConfig;
  std::optional<KernelBackend> BackendOverride;
  std::unique_ptr<Grid> U, V;
  /// Input grids beyond the first for multi-input stencils.
  std::vector<std::unique_ptr<Grid>> ExtraInputs;
  std::unique_ptr<ThreadPool> Pool;
  unsigned PoolThreads = 0;
  PoolStats LastStats;
  bool PrintPoolStats = false;

  void ensureBuffers(const KernelConfig &Config);
};

/// Deterministic traffic-based scoring: MLUP/s-like score inversely
/// proportional to simulated memory traffic per LUP on \p Machine (shape
/// matches the memory-bound regime; used where determinism matters).
MeasureFn makeTrafficProxyMeasurer(const StencilSpec &Spec,
                                   const GridDims &Dims,
                                   const MachineModel &Machine);

} // namespace ys

#endif // YS_TUNER_MEASUREHARNESS_H
