//===- tuner/MeasureHarness.h - Kernel measurement harness -------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth evaluation of kernel configurations for the measuring
/// tuning strategies: allocates grids once, runs KernelExecutor sweeps
/// under a candidate configuration, and reports the median MLUP/s.
/// A cache-simulator-backed proxy mode is also provided: it scores a
/// configuration by simulated memory traffic instead of wall time, which
/// is deterministic and host-independent (useful on noisy machines and in
/// tests).
///
//===----------------------------------------------------------------------===//

#ifndef YS_TUNER_MEASUREHARNESS_H
#define YS_TUNER_MEASUREHARNESS_H

#include "codegen/KernelExecutor.h"
#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"
#include "tuner/TuningStrategy.h"

#include <memory>

namespace ys {

class MachineModel;

/// Host wall-clock measurement of stencil configurations.
class MeasureHarness {
public:
  /// \p Repeats timing repetitions per configuration (median taken);
  /// \p SweepsPerRepeat sweeps per timed run.
  MeasureHarness(StencilSpec Spec, GridDims Dims, unsigned Repeats = 3,
                 unsigned SweepsPerRepeat = 2);
  ~MeasureHarness();

  /// Returns a MeasureFn bound to this harness (valid while alive).
  MeasureFn measurer();

  /// Measures one configuration: median MLUP/s over the repeats.
  double measure(const KernelConfig &Config);

  unsigned totalKernelRuns() const { return KernelRuns; }

  /// Pool counters accumulated during the last measure() call (empty when
  /// the configuration ran single-threaded).
  const PoolStats &lastPoolStats() const { return LastStats; }

  /// When enabled, measure() prints the pool-stats summary line after each
  /// threaded measurement (imbalance/steal visibility while tuning).
  void setPrintPoolStats(bool Enable) { PrintPoolStats = Enable; }

private:
  StencilSpec Spec;
  GridDims Dims;
  unsigned Repeats;
  unsigned SweepsPerRepeat;
  unsigned KernelRuns = 0;
  Fold CurrentFold;
  std::unique_ptr<Grid> U, V;
  /// Input grids beyond the first for multi-input stencils.
  std::vector<std::unique_ptr<Grid>> ExtraInputs;
  std::unique_ptr<ThreadPool> Pool;
  unsigned PoolThreads = 0;
  PoolStats LastStats;
  bool PrintPoolStats = false;

  void ensureBuffers(const KernelConfig &Config);
};

/// Deterministic traffic-based scoring: MLUP/s-like score inversely
/// proportional to simulated memory traffic per LUP on \p Machine (shape
/// matches the memory-bound regime; used where determinism matters).
MeasureFn makeTrafficProxyMeasurer(const StencilSpec &Spec,
                                   const GridDims &Dims,
                                   const MachineModel &Machine);

} // namespace ys

#endif // YS_TUNER_MEASUREHARNESS_H
