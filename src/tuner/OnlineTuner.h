//===- tuner/OnlineTuner.h - Runtime auto-tuning ----------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// YASK's built-in runtime auto-tuner: during the first timesteps of a
/// real simulation, candidate configurations are tried in rotation (every
/// trial performs genuine timesteps, so no work is wasted); after all
/// candidates are timed, the best one is locked in for the remainder.
/// This is the search-based baseline YaskSite's analytic selection
/// competes against in the paper's tuning-cost comparison.
///
/// Trial timing takes the minimum per-step time over the trial's
/// step/macro-step chunks (not one sample for the whole trial), the
/// standard low-noise methodology for performance measurement; samples are
/// floored at the timer's resolution so a sub-tick chunk can never produce
/// a zero or denormal seconds-per-step.
///
/// With a TuningCache attached, candidates whose fingerprint is already in
/// the cache skip their timed trial entirely — their steps go to the
/// production phase instead — and the cached seconds-per-step competes for
/// the lock-in.  Newly timed trials are inserted into the cache.
///
//===----------------------------------------------------------------------===//

#ifndef YS_TUNER_ONLINETUNER_H
#define YS_TUNER_ONLINETUNER_H

#include "codegen/KernelExecutor.h"
#include "stencil/StencilSpec.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace ys {

class MachineModel;
class TuningCache;

/// Tunes while time stepping.
class OnlineTuner {
public:
  /// All candidates must share the vector fold (they execute on the same
  /// grids).  \p StepsPerTrial timesteps are spent on each candidate.
  OnlineTuner(StencilSpec Spec, std::vector<KernelConfig> Candidates,
              int StepsPerTrial = 2);

  /// Attaches a persistent result cache (borrowed; must outlive run()).
  /// \p Machine identifies the host model the cached numbers belong to.
  void attachCache(TuningCache *Cache, const MachineModel &Machine);

  struct Result {
    KernelConfig Best;
    unsigned TrialsRun = 0;     ///< Candidates actually timed this run.
    unsigned CachedTrials = 0;  ///< Candidates resolved from the cache.
    int TuningSteps = 0;  ///< Steps consumed during warm-up + trial phase
                          ///< (always includes WarmupSteps).
    int WarmupSteps = 0;  ///< Untimed steps run before the first trial.
    double TuningSeconds = 0;
    /// (candidate, seconds per step) for every completed trial, timed and
    /// cached alike (cached entries run no steps; see CachedTrials).
    std::vector<std::pair<KernelConfig, double>> TrialLog;
  };

  /// Advances U by \p Steps timesteps total (trial phase first, then the
  /// locked-in best).  Numerically identical to plain time stepping.
  Result run(Grid &U, Grid &Scratch, int Steps,
             ThreadPool *Pool = nullptr) const;

private:
  StencilSpec Spec;
  std::vector<KernelConfig> Candidates;
  int StepsPerTrial;
  TuningCache *Cache = nullptr;
  std::string CacheMachineId;
};

} // namespace ys

#endif // YS_TUNER_ONLINETUNER_H
