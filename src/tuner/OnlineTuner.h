//===- tuner/OnlineTuner.h - Runtime auto-tuning ----------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// YASK's built-in runtime auto-tuner: during the first timesteps of a
/// real simulation, candidate configurations are tried in rotation (every
/// trial performs genuine timesteps, so no work is wasted); after all
/// candidates are timed, the best one is locked in for the remainder.
/// This is the search-based baseline YaskSite's analytic selection
/// competes against in the paper's tuning-cost comparison.
///
//===----------------------------------------------------------------------===//

#ifndef YS_TUNER_ONLINETUNER_H
#define YS_TUNER_ONLINETUNER_H

#include "codegen/KernelExecutor.h"
#include "stencil/StencilSpec.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace ys {

/// Tunes while time stepping.
class OnlineTuner {
public:
  /// All candidates must share the vector fold (they execute on the same
  /// grids).  \p StepsPerTrial timesteps are spent on each candidate.
  OnlineTuner(StencilSpec Spec, std::vector<KernelConfig> Candidates,
              int StepsPerTrial = 2);

  struct Result {
    KernelConfig Best;
    unsigned TrialsRun = 0;
    int TuningSteps = 0;  ///< Steps consumed during warm-up + trial phase.
    int WarmupSteps = 0;  ///< Untimed steps run before the first trial.
    double TuningSeconds = 0;
    /// (candidate, seconds per step) for every completed trial.
    std::vector<std::pair<KernelConfig, double>> TrialLog;
  };

  /// Advances U by \p Steps timesteps total (trial phase first, then the
  /// locked-in best).  Numerically identical to plain time stepping.
  Result run(Grid &U, Grid &Scratch, int Steps,
             ThreadPool *Pool = nullptr) const;

private:
  StencilSpec Spec;
  std::vector<KernelConfig> Candidates;
  int StepsPerTrial;
};

} // namespace ys

#endif // YS_TUNER_ONLINETUNER_H
