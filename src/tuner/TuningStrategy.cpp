//===- tuner/TuningStrategy.cpp - Auto-tuning strategies -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningStrategy.h"

#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace ys;

TuningStrategy::~TuningStrategy() = default;

namespace {

/// Measures one config and maintains the running best.
void measureInto(TuningResult &R, const KernelConfig &C,
                 const MeasureFn &Measure) {
  double Mlups = Measure(C);
  ++R.Measurements;
  R.MeasuredLog.push_back({C, Mlups});
  if (Mlups > R.BestMlups || !R.BestWasMeasured) {
    R.Best = C;
    R.BestMlups = Mlups;
    R.BestWasMeasured = true;
  }
}

} // namespace

TuningResult ExhaustiveStrategy::tune(const std::vector<KernelConfig> &Space,
                                      const MeasureFn &Measure) {
  assert(!Space.empty() && "empty tuning space");
  Timer T;
  TuningResult R;
  for (const KernelConfig &C : Space)
    measureInto(R, C, Measure);
  R.TuningSeconds = T.seconds();
  return R;
}

TuningResult RandomStrategy::tune(const std::vector<KernelConfig> &Space,
                                  const MeasureFn &Measure) {
  assert(!Space.empty() && "empty tuning space");
  Timer T;
  TuningResult R;
  Rng Gen(Seed);
  unsigned Count = std::min<unsigned>(Samples, Space.size());
  // Sample without replacement via index shuffle.
  std::vector<size_t> Indices(Space.size());
  for (size_t I = 0; I < Indices.size(); ++I)
    Indices[I] = I;
  for (size_t I = Indices.size(); I > 1; --I)
    std::swap(Indices[I - 1], Indices[Gen.nextBounded(I)]);
  for (unsigned I = 0; I < Count; ++I)
    measureInto(R, Space[Indices[I]], Measure);
  R.TuningSeconds = T.seconds();
  return R;
}

TuningResult HierarchicalStrategy::tune(const std::vector<KernelConfig> &Space,
                                        const MeasureFn &Measure) {
  assert(!Space.empty() && "empty tuning space");
  Timer T;
  TuningResult R;

  // Distinct values per coordinate present in the space.
  auto distinctValues = [&](auto Get) {
    std::vector<long> Values;
    for (const KernelConfig &C : Space) {
      long V = Get(C);
      if (std::find(Values.begin(), Values.end(), V) == Values.end())
        Values.push_back(V);
    }
    std::sort(Values.begin(), Values.end());
    return Values;
  };

  auto findInSpace = [&](const KernelConfig &Wanted) -> const KernelConfig * {
    for (const KernelConfig &C : Space)
      if (C == Wanted)
        return &C;
    return nullptr;
  };

  KernelConfig Current = Space.front();

  // Stage 1: y-block.
  for (long By : distinctValues([](const KernelConfig &C) {
         return C.Block.Y;
       })) {
    KernelConfig C = Current;
    C.Block.Y = By;
    if (const KernelConfig *InSpace = findInSpace(C))
      measureInto(R, *InSpace, Measure);
  }
  if (R.BestWasMeasured)
    Current = R.Best;

  // Stage 2: z-block.
  for (long Bz : distinctValues([](const KernelConfig &C) {
         return C.Block.Z;
       })) {
    KernelConfig C = Current;
    C.Block.Z = Bz;
    if (const KernelConfig *InSpace = findInSpace(C))
      if (!(C == Current))
        measureInto(R, *InSpace, Measure);
  }
  Current = R.Best;

  // Stage 3: wavefront depth.
  for (long Depth : distinctValues([](const KernelConfig &C) {
         return static_cast<long>(C.WavefrontDepth);
       })) {
    KernelConfig C = Current;
    C.WavefrontDepth = static_cast<int>(Depth);
    if (const KernelConfig *InSpace = findInSpace(C))
      if (!(C == Current))
        measureInto(R, *InSpace, Measure);
  }
  Current = R.Best;

  // Stage 4: temporal schedule.  Sweeping the schedule last lets diamond /
  // deep-temporal inherit the blocking and depth the earlier stages
  // settled on (the space only contains valid combinations, so schedules
  // that need a different depth/z-block pairing are simply absent here and
  // found by the exhaustive/model-guided strategies instead).
  for (long Sched : distinctValues([](const KernelConfig &C) {
         return static_cast<long>(C.Sched);
       })) {
    KernelConfig C = Current;
    C.Sched = static_cast<Schedule>(Sched);
    if (const KernelConfig *InSpace = findInSpace(C))
      if (!(C == Current))
        measureInto(R, *InSpace, Measure);
  }

  R.TuningSeconds = T.seconds();
  return R;
}

TuningResult ModelGuidedStrategy::tune(const std::vector<KernelConfig> &Space,
                                       const MeasureFn &Measure) {
  assert(!Space.empty() && "empty tuning space");
  Timer T;
  TuningResult R;

  // Rank the whole space analytically.
  std::vector<std::pair<double, const KernelConfig *>> Ranked;
  for (const KernelConfig &C : Space) {
    ECMPrediction P = Model.predict(Spec, Dims, C, ActiveCores);
    ++R.ModelEvaluations;
    Ranked.push_back({P.MLupsSaturated, &C});
  }
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const auto &A, const auto &B) {
                     return A.first > B.first;
                   });

  if (VerifyTopK == 0) {
    R.Best = *Ranked.front().second;
    R.BestMlups = Ranked.front().first;
    R.BestWasMeasured = false;
    R.TuningSeconds = T.seconds();
    return R;
  }

  unsigned K = std::min<unsigned>(VerifyTopK, Ranked.size());
  for (unsigned I = 0; I < K; ++I)
    measureInto(R, *Ranked[I].second, Measure);
  R.TuningSeconds = T.seconds();
  return R;
}
