//===- tuner/OnlineTuner.cpp - Runtime auto-tuning ---------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/OnlineTuner.h"

#include "support/Timer.h"

#include <cassert>

using namespace ys;

OnlineTuner::OnlineTuner(StencilSpec Spec,
                         std::vector<KernelConfig> Candidates,
                         int StepsPerTrial)
    : Spec(std::move(Spec)), Candidates(std::move(Candidates)),
      StepsPerTrial(std::max(1, StepsPerTrial)) {
  assert(!this->Candidates.empty() && "need at least one candidate");
  for (const KernelConfig &C : this->Candidates) {
    assert(C.VectorFold == this->Candidates.front().VectorFold &&
           "candidates must share the grid layout");
    (void)C;
  }
}

OnlineTuner::Result OnlineTuner::run(Grid &U, Grid &Scratch, int Steps,
                                     ThreadPool *Pool) const {
  Result R;
  R.Best = Candidates.front();
  Timer TotalTimer;
  int Done = 0;

  // One untimed warm-up trial before the rotation (mirroring
  // measureSeconds): without it the first candidate pays the cold-cache /
  // page-fault cost alone and selection is biased toward whatever runs
  // later.  Warm-up steps are real timesteps, so they count toward Steps.
  {
    const KernelConfig &C = Candidates.front();
    int Depth = std::max(1, C.WavefrontDepth);
    int WarmSteps = std::max(StepsPerTrial, Depth);
    // Only warm up if a timed trial still fits afterwards; otherwise the
    // warm-up would just eat the production budget.
    if (Done + 2 * WarmSteps <= Steps) {
      KernelExecutor Exec(Spec, C);
      Exec.runTimeSteps(U, Scratch, WarmSteps, Pool);
      Done += WarmSteps;
      R.WarmupSteps = WarmSteps;
    }
  }

  // Trial phase: rotate through the candidates, every trial doing real
  // timesteps.  Wavefront candidates need their full depth per trial.
  double BestSeconds = -1.0;
  for (const KernelConfig &C : Candidates) {
    int Depth = std::max(1, C.WavefrontDepth);
    int TrialSteps = std::max(StepsPerTrial, Depth);
    if (Done + TrialSteps > Steps)
      break; // Not enough steps left for a fair trial.
    KernelExecutor Exec(Spec, C);
    Timer T;
    Exec.runTimeSteps(U, Scratch, TrialSteps, Pool);
    double PerStep = T.seconds() / TrialSteps;
    Done += TrialSteps;
    ++R.TrialsRun;
    R.TrialLog.push_back({C, PerStep});
    if (BestSeconds < 0.0 || PerStep < BestSeconds) {
      BestSeconds = PerStep;
      R.Best = C;
    }
  }
  R.TuningSteps = Done;
  R.TuningSeconds = TotalTimer.seconds();

  // Production phase with the winner.
  if (Done < Steps) {
    KernelExecutor Exec(Spec, R.Best);
    Exec.runTimeSteps(U, Scratch, Steps - Done, Pool);
  }
  return R;
}
