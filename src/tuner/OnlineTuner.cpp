//===- tuner/OnlineTuner.cpp - Runtime auto-tuning ---------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/OnlineTuner.h"

#include "support/Timer.h"
#include "support/Trace.h"
#include "tuner/TuningCache.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace ys;

OnlineTuner::OnlineTuner(StencilSpec Spec,
                         std::vector<KernelConfig> Candidates,
                         int StepsPerTrial)
    : Spec(std::move(Spec)), Candidates(std::move(Candidates)),
      StepsPerTrial(std::max(1, StepsPerTrial)) {
  assert(!this->Candidates.empty() && "need at least one candidate");
  for (const KernelConfig &C : this->Candidates) {
    assert(C.VectorFold == this->Candidates.front().VectorFold &&
           "candidates must share the grid layout");
    (void)C;
  }
}

void OnlineTuner::attachCache(TuningCache *NewCache,
                              const MachineModel &Machine) {
  Cache = NewCache;
  CacheMachineId = TuningCache::machineId(Machine);
}

OnlineTuner::Result OnlineTuner::run(Grid &U, Grid &Scratch, int Steps,
                                     ThreadPool *Pool) const {
  Trace::initFromEnv();
  Result R;
  R.Best = Candidates.front();
  Timer TotalTimer;
  int Done = 0;
  const double LupsPerStep = static_cast<double>(U.dims().lups());

  // The trial phase alternates the two buffers sweep by sweep; track which
  // grid currently holds the newest time level so individual sweeps can be
  // timed without runTimeSteps' copy-back entering the samples.
  Grid *Even = &U;
  Grid *Odd = &Scratch;

  // Cache prepass: candidates already measured on this host (same stencil,
  // machine, grid, config and thread environment) skip their timed trial;
  // their cached per-step time competes for the lock-in and their steps go
  // to the production phase instead.
  struct Pending {
    const KernelConfig *Config;
    std::string Key;
  };
  std::vector<Pending> ToTime;
  for (const KernelConfig &C : Candidates) {
    std::string Key;
    if (Cache) {
      Key = TuningCache::fingerprint(Spec, CacheMachineId, U.dims(), C,
                                     TuningCache::effectiveThreads(C));
      if (const TuningCache::Entry *E = Cache->lookup(Key)) {
        if (E->SecondsPerStep > 0) {
          ++R.CachedTrials;
          R.TrialLog.push_back({C, E->SecondsPerStep});
          TraceRecord Rec("online_trial");
          Rec.field("config", C.str())
              .field("seconds_per_step", E->SecondsPerStep)
              .field("steps", 0)
              .field("cached", 1L)
              .emit();
          continue;
        }
      }
    }
    ToTime.push_back({&C, std::move(Key)});
  }

  // One untimed warm-up trial before the rotation (mirroring
  // measureSeconds): without it the first candidate pays the cold-cache /
  // page-fault cost alone and selection is biased toward whatever runs
  // later.  Warm-up steps are real timesteps, so they count toward Steps.
  // A fully cached rotation times nothing, so it needs no warm-up either.
  // The warm-up executor outlives the warm-up so the first timed candidate
  // reuses its compiled kernel plan: warm-up exists to reach steady state,
  // and rebuilding the plan between warm-up and trial would throw part of
  // that away.
  std::unique_ptr<KernelExecutor> WarmExec;
  if (!ToTime.empty()) {
    const KernelConfig &C = *ToTime.front().Config;
    int Depth = std::max(1, C.WavefrontDepth);
    int WarmSteps = std::max(StepsPerTrial, Depth);
    // Only warm up if a timed trial still fits afterwards; otherwise the
    // warm-up would just eat the production budget.
    if (Done + 2 * WarmSteps <= Steps) {
      WarmExec = std::make_unique<KernelExecutor>(Spec, C);
      TraceScope Scope("online_warmup");
      Scope.field("config", C.str()).field("steps", WarmSteps);
      WarmExec->runTimeSteps(*Even, *Odd, WarmSteps, Pool);
      Done += WarmSteps;
      R.WarmupSteps = WarmSteps;
    }
  }

  // Trial phase: rotate through the uncached candidates, every trial doing
  // real timesteps.  Each trial is timed chunk by chunk — single sweeps,
  // or whole macro-steps for wavefront candidates — and reports the
  // *minimum* per-step time over its chunks (min-of-N, the least-noise
  // statistic), floored at the timer resolution so a sub-tick chunk can
  // never yield zero seconds per step.
  for (const Pending &P : ToTime) {
    const KernelConfig &C = *P.Config;
    int Depth = std::max(1, C.WavefrontDepth);
    int TrialSteps = std::max(StepsPerTrial, Depth);
    if (Done + TrialSteps > Steps)
      break; // Not enough steps left for a fair trial.
    // The candidate that ran the warm-up keeps its executor (and plan).
    std::unique_ptr<KernelExecutor> OwnExec;
    KernelExecutor *ExecPtr;
    if (WarmExec && &P == &ToTime.front()) {
      ExecPtr = WarmExec.get();
    } else {
      OwnExec = std::make_unique<KernelExecutor>(Spec, C);
      ExecPtr = OwnExec.get();
    }
    KernelExecutor &Exec = *ExecPtr;
    double PerStep = -1.0;
    unsigned Chunks = 0;
    int Run = 0;
    // Wavefront macro-steps of Depth sweeps each.
    while (Depth > 1 && TrialSteps - Run >= Depth) {
      Timer T;
      Exec.runTimeSteps(*Even, *Odd, Depth, Pool);
      double ChunkPerStep =
          std::max(T.seconds(), kMinMeasurableSeconds) / Depth;
      if (PerStep < 0 || ChunkPerStep < PerStep)
        PerStep = ChunkPerStep;
      Run += Depth;
      ++Chunks;
    }
    // Plain sweeps (the whole trial when Depth == 1, else the remainder).
    for (; Run < TrialSteps; ++Run) {
      Timer T;
      Exec.runSweep({Even}, *Odd, Pool);
      std::swap(Even, Odd);
      double Sec = std::max(T.seconds(), kMinMeasurableSeconds);
      if (PerStep < 0 || Sec < PerStep)
        PerStep = Sec;
      ++Chunks;
    }
    Done += TrialSteps;
    ++R.TrialsRun;
    R.TrialLog.push_back({C, PerStep});
    TraceRecord Rec("online_trial");
    Rec.field("config", C.str())
        .field("seconds_per_step", PerStep)
        .field("steps", TrialSteps)
        .field("chunks", Chunks)
        .field("cached", 0L)
        .emit();
    if (Cache) {
      TuningCache::Entry E;
      E.Key = P.Key;
      E.Summary = Spec.name() + " " + U.dims().str() + " " + C.str();
      E.SecondsPerStep = PerStep;
      E.Mlups = LupsPerStep / PerStep / 1e6;
      E.Repeats = Chunks;
      Cache->insert(std::move(E));
    }
  }

  // Lock in the fastest of every completed trial, timed and cached alike.
  double BestSeconds = -1.0;
  for (const auto &[C, Sec] : R.TrialLog)
    if (BestSeconds < 0.0 || Sec < BestSeconds) {
      BestSeconds = Sec;
      R.Best = C;
    }
  R.TuningSteps = Done;
  R.TuningSeconds = TotalTimer.seconds();

  // Production phase with the winner.
  if (Done < Steps) {
    KernelExecutor Exec(Spec, R.Best);
    Exec.runTimeSteps(*Even, *Odd, Steps - Done, Pool);
  }
  if (Even != &U)
    U.copyInteriorFrom(*Even);

  TraceRecord Rec("online_summary");
  Rec.field("stencil", Spec.name())
      .field("best", R.Best.str())
      .field("trials", R.TrialsRun)
      .field("cached_trials", R.CachedTrials)
      .field("tuning_steps", R.TuningSteps)
      .field("warmup_steps", R.WarmupSteps)
      .field("tuning_seconds", R.TuningSeconds)
      .emit();
  return R;
}
