//===- tuner/TuningCache.h - Persistent tuning-result cache ------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent cache of measured tuning results, in the spirit of
/// Offsite's offline database of rated variants: once a (stencil, machine,
/// grid, kernel configuration, thread count) combination has been timed on
/// this host, repeat tuning runs — `MeasureHarness`, `OnlineTuner`, the
/// e8/e9 benches — look the result up instead of re-timing it.
///
/// Keys are stable 64-bit FNV-1a fingerprints of a canonical textual
/// rendering of every input that can change the measured number:
///
///   stencil  : name, points (offset/coeff/grid), extra flops, output grids
///   machine  : model name + hash of all core/cache/memory parameters
///   grid     : interior dims
///   config   : fold, blocks, wavefront depth, config threads, NT stores
///   threads  : the effective worker count (honors YS_THREADS)
///
/// so editing a machine model or changing YS_THREADS invalidates exactly
/// the affected entries.  The file format is versioned JSON lines: a
/// header object {"format":"yasksite-tuning-cache","version":N} followed
/// by one entry object per line.  Corrupt or version-mismatched files are
/// rejected with a diagnostic — loadOrCreate() then starts an empty cache
/// with a warning instead of crashing or silently serving stale configs.
///
//===----------------------------------------------------------------------===//

#ifndef YS_TUNER_TUNINGCACHE_H
#define YS_TUNER_TUNINGCACHE_H

#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <vector>

namespace ys {

class MachineModel;

/// Persistent, fingerprint-keyed store of measured tuning results.
class TuningCache {
public:
  /// Bumped whenever the key schema or entry layout changes; older files
  /// are rejected (never reinterpreted).
  static constexpr int FormatVersion = 1;

  struct Entry {
    std::string Key;     ///< Fingerprint (16 hex digits).
    std::string Summary; ///< Human-readable key description.
    double Mlups = 0;    ///< Measured performance.
    double SecondsPerStep = 0; ///< Measured time per step/sweep.
    unsigned Repeats = 0;      ///< Timing repetitions behind the numbers.
  };

  /// \name Fingerprinting.
  /// @{

  /// Stable machine identity: "<name>#<param hash>"; changes when any
  /// modeled parameter changes, not just the name.
  static std::string machineId(const MachineModel &M);

  /// Full measurement fingerprint.  \p Threads is the effective worker
  /// count (pass ThreadPool::defaultThreadCount() to honor YS_THREADS).
  /// \p Backend names the execution backend the number was measured
  /// under ("plan" or "jit"); "plan" keeps the historical key unchanged,
  /// so existing caches stay valid, while jit-measured numbers get
  /// distinct keys and can never be served for plan queries (or vice
  /// versa).
  static std::string fingerprint(const StencilSpec &Spec,
                                 const std::string &MachineId,
                                 const GridDims &Dims,
                                 const KernelConfig &Config,
                                 unsigned Threads,
                                 const std::string &Backend = "plan");

  /// Fingerprint of an arbitrary canonical string (for non-stencil users
  /// such as the e9 ODE-variant bench).
  static std::string fingerprintRaw(const std::string &Canonical);

  /// Canonical rendering of a stencil: name plus every point, plus the
  /// model-visible extras.  Point order matters to the executor's FP
  /// summation order, so it is kept as-is (not sorted).  Part of every
  /// fingerprint; also used by the tuning service to key per-stencil
  /// measurement harnesses.
  static std::string canonicalStencil(const StencilSpec &S);

  /// Effective worker count for fingerprinting: an explicit
  /// Config.Threads when > 1, else the environment default (which honors
  /// YS_THREADS).  Deliberately conservative — changing YS_THREADS forces
  /// re-measurement even of serial configs, trading false misses for
  /// never serving a number measured under a different thread setup.
  static unsigned effectiveThreads(const KernelConfig &Config);

  /// @}

  /// Exact-key lookup; counts toward hits()/misses().
  const Entry *lookup(const std::string &Key);

  /// Lookup without touching the hit/miss counters.
  const Entry *peek(const std::string &Key) const;

  /// Inserts or replaces the entry with the same key.
  void insert(Entry E);

  size_t size() const { return Entries.size(); }

  /// All entries, keyed by fingerprint (used by the sharded service front
  /// to distribute/merge the persistence tier).
  const std::map<std::string, Entry> &entries() const { return Entries; }
  unsigned hits() const { return Hits; }
  unsigned misses() const { return Misses; }
  void resetStats() { Hits = Misses = 0; }

  /// One-line summary, e.g. "42 entries, 17 hits / 3 misses".
  std::string statsString() const;

  /// \name Serialization (versioned JSON lines).
  /// @{
  std::string serialize() const;
  static Expected<TuningCache> deserialize(const std::string &Text);
  Error saveFile(const std::string &Path) const;
  static Expected<TuningCache> loadFile(const std::string &Path);

  /// Loads \p Path if it exists and is valid; on a corrupt or
  /// version-mismatched file prints a warning to stderr and returns an
  /// empty cache (the bad file is left in place and overwritten by the
  /// next saveFile).  A missing file is not a warning.
  static TuningCache loadOrCreate(const std::string &Path);
  /// @}

  /// Value of the `YS_TUNE_CACHE` environment variable, or "" when unset.
  static std::string envPath();

private:
  std::map<std::string, Entry> Entries;
  unsigned Hits = 0;
  unsigned Misses = 0;
};

} // namespace ys

#endif // YS_TUNER_TUNINGCACHE_H
