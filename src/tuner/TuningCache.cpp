//===- tuner/TuningCache.cpp - Persistent tuning-result cache --------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningCache.h"

#include "arch/MachineModel.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace ys;

namespace {

/// 64-bit FNV-1a over a byte string: stable across platforms and runs
/// (unlike std::hash, which is unspecified and per-process).
uint64_t fnv1a(const std::string &Str) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Str) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex64(uint64_t H) { return format("%016llx", (unsigned long long)H); }

/// Canonical rendering of a kernel configuration.  KernelConfig::str()
/// elides default-valued fields, so spell everything out explicitly here —
/// a key must never collide across distinct configs.
std::string canonicalConfig(const KernelConfig &C) {
  std::string S =
      format("fold=%dx%dx%d;block=%ldx%ldx%ld;wf=%d;cfgthreads=%u;nt=%d",
             C.VectorFold.X, C.VectorFold.Y, C.VectorFold.Z, C.Block.X,
             C.Block.Y, C.Block.Z, C.WavefrontDepth, C.Threads,
             C.StreamingStores ? 1 : 0);
  // Appended only for non-default schedules so historical wavefront keys
  // (and therefore existing cache files) remain valid.
  if (C.Sched != Schedule::Wavefront)
    S += format(";sched=%s", scheduleName(C.Sched));
  // Same backward-compat pattern: monolithic keys stay byte-identical.
  if (C.Ranks > 1)
    S += format(";ranks=%u", C.Ranks);
  return S;
}

} // namespace

std::string TuningCache::canonicalStencil(const StencilSpec &S) {
  std::string Out = "stencil=" + S.name();
  for (const StencilPoint &P : S.points())
    Out += format(";p=%d,%d,%d,%u,%.17g", P.Dx, P.Dy, P.Dz, P.GridIdx,
                  P.Coeff);
  Out += format(";xflops=%u;outgrids=%u", S.ExtraFlopsPerLup, S.OutputGrids);
  return Out;
}

std::string TuningCache::machineId(const MachineModel &M) {
  std::string Canon = format(
      "core=%u,%u,%u,%u,%u,%u,%.17g",
      M.Core.SimdBits, M.Core.FmaPorts, M.Core.ArithPorts, M.Core.LoadPorts,
      M.Core.StorePorts, M.Core.CyclesPerSimdMemOp, M.Core.FrequencyGHz);
  for (const CacheLevelModel &L : M.Caches)
    Canon += format(";%s=%llu,%u,%u,%d,%u,%.17g,%d", L.Name.c_str(),
                    L.SizeBytes, L.Associativity, L.LineBytes,
                    L.Shared ? 1 : 0, L.SharingCores, L.BytesPerCycleToNext,
                    L.Victim ? 1 : 0);
  Canon += format(";mem=%.17g,%d;cores=%u", M.Memory.BandwidthGBs,
                  M.Memory.SupportsStreamingStores ? 1 : 0, M.CoresPerSocket);
  return M.Name + "#" + hex64(fnv1a(Canon));
}

std::string TuningCache::fingerprint(const StencilSpec &Spec,
                                     const std::string &MachineId,
                                     const GridDims &Dims,
                                     const KernelConfig &Config,
                                     unsigned Threads,
                                     const std::string &Backend) {
  std::string Canon = canonicalStencil(Spec) + "|machine=" + MachineId +
                      format("|dims=%ldx%ldx%ld|", Dims.Nx, Dims.Ny,
                             Dims.Nz) +
                      canonicalConfig(Config) +
                      format("|threads=%u", Threads);
  // Appended only for non-default backends so historical plan-path keys
  // (and therefore existing cache files) remain valid.
  if (Backend != "plan")
    Canon += "|backend=" + Backend;
  return hex64(fnv1a(Canon));
}

std::string TuningCache::fingerprintRaw(const std::string &Canonical) {
  return fingerprintRaw64(Canonical); // Shared FNV-1a (support layer).
}

unsigned TuningCache::effectiveThreads(const KernelConfig &Config) {
  return Config.Threads > 1 ? Config.Threads
                            : ThreadPool::defaultThreadCount();
}

const TuningCache::Entry *TuningCache::lookup(const std::string &Key) {
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  return &It->second;
}

const TuningCache::Entry *TuningCache::peek(const std::string &Key) const {
  auto It = Entries.find(Key);
  return It == Entries.end() ? nullptr : &It->second;
}

void TuningCache::insert(Entry E) {
  Entries[E.Key] = std::move(E);
}

std::string TuningCache::statsString() const {
  return format("%zu entries, %u hits / %u misses", Entries.size(), Hits,
                Misses);
}

std::string TuningCache::serialize() const {
  std::string Out = JsonObjectWriter()
                        .field("format", "yasksite-tuning-cache")
                        .field("version", (long)FormatVersion)
                        .str() +
                    "\n";
  for (const auto &[Key, E] : Entries)
    Out += JsonObjectWriter()
               .field("key", E.Key)
               .field("summary", E.Summary)
               .field("mlups", E.Mlups)
               .field("seconds_per_step", E.SecondsPerStep)
               .field("repeats", (long)E.Repeats)
               .str() +
           "\n";
  return Out;
}

Expected<TuningCache> TuningCache::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.empty() || Lines.front().empty())
    return Error::failure("empty cache file (missing header)");

  const std::string &Header = Lines.front();
  std::optional<std::string> Format = jsonStringField(Header, "format");
  std::optional<double> Version = jsonNumberField(Header, "version");
  if (!jsonLooksWellFormed(Header) || !Format ||
      *Format != "yasksite-tuning-cache" || !Version)
    return Error::failure("unrecognized cache header: " + Header);
  if ((int)*Version != FormatVersion)
    return Error::failure(
        format("cache format version %d, expected %d — ignoring old cache",
               (int)*Version, FormatVersion));

  TuningCache Cache;
  for (size_t I = 1; I < Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    if (Line.empty())
      continue;
    if (!jsonLooksWellFormed(Line))
      return Error::failure(format("line %zu: malformed JSON", I + 1));
    Entry E;
    std::optional<std::string> Key = jsonStringField(Line, "key");
    std::optional<double> Mlups = jsonNumberField(Line, "mlups");
    std::optional<double> Sps = jsonNumberField(Line, "seconds_per_step");
    if (!Key || Key->empty() || !Mlups || !Sps)
      return Error::failure(format("line %zu: missing entry fields", I + 1));
    E.Key = *Key;
    E.Summary = jsonStringField(Line, "summary").value_or("");
    E.Mlups = *Mlups;
    E.SecondsPerStep = *Sps;
    E.Repeats = (unsigned)jsonNumberField(Line, "repeats").value_or(0);
    Cache.insert(std::move(E));
  }
  return Cache;
}

Error TuningCache::saveFile(const std::string &Path) const {
  // Write-to-temp + atomic rename (same directory, so the rename cannot
  // cross filesystems): a killed run or two concurrent savers can no
  // longer leave a truncated/interleaved file that the next loadOrCreate
  // rejects wholesale.  Concurrent savers race benignly — last complete
  // rename wins.  The temp name carries a process-wide atomic counter in
  // addition to the pid: two threads of one process saving concurrently
  // must not share a temp file, or their writes interleave and the rename
  // publishes a corrupt cache.
  static std::atomic<unsigned long> SaveCounter{0};
  std::string Tmp = Path + format(".tmp.%ld.%lu", (long)getpid(),
                                  SaveCounter.fetch_add(1) + 1);
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return Error::failure(format("cannot write '%s'", Tmp.c_str()));
    Out << serialize();
    Out.flush();
    if (!Out) {
      std::remove(Tmp.c_str());
      return Error::failure(format("short write to '%s'", Tmp.c_str()));
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Error::failure(format("cannot rename '%s' over '%s'",
                                 Tmp.c_str(), Path.c_str()));
  }
  return Error::success();
}

Expected<TuningCache> TuningCache::loadFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Error::failure(format("cannot read '%s'", Path.c_str()));
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return deserialize(Buffer.str());
}

TuningCache TuningCache::loadOrCreate(const std::string &Path) {
  std::ifstream Probe(Path);
  if (!Probe)
    return TuningCache(); // No file yet: start fresh, silently.
  Probe.close();
  Expected<TuningCache> Loaded = loadFile(Path);
  if (!Loaded) {
    std::fprintf(stderr,
                 "warning: tuning cache '%s' rejected (%s); starting with "
                 "an empty cache\n",
                 Path.c_str(), Loaded.takeError().message().c_str());
    return TuningCache();
  }
  return std::move(*Loaded);
}

std::string TuningCache::envPath() {
  const char *E = std::getenv("YS_TUNE_CACHE");
  return E ? std::string(E) : std::string();
}
