//===- tuner/TuningStrategy.h - Auto-tuning strategies -----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tuning strategies over a kernel-configuration space.  The paper's
/// comparison is between search-based auto-tuning (YASK's tuner: run many
/// variants, keep the best — here Exhaustive / Random / Hierarchical) and
/// YaskSite's model-guided selection (rank analytically, run nothing, or
/// verify only a top-k shortlist).  Every strategy reports its cost: model
/// evaluations, kernel executions, and wall time.
///
//===----------------------------------------------------------------------===//

#ifndef YS_TUNER_TUNINGSTRATEGY_H
#define YS_TUNER_TUNINGSTRATEGY_H

#include "codegen/KernelConfig.h"
#include "ecm/ECMModel.h"

#include <functional>
#include <string>
#include <vector>

namespace ys {

/// Measures one configuration, returning performance in MLUP/s.
using MeasureFn = std::function<double(const KernelConfig &)>;

/// Outcome and cost ledger of one tuning run.
struct TuningResult {
  KernelConfig Best;
  double BestMlups = 0; ///< Performance of Best (measured if available,
                        ///< else model-predicted).
  bool BestWasMeasured = false;

  unsigned ModelEvaluations = 0;
  unsigned Measurements = 0;
  double TuningSeconds = 0;

  /// Every (config, MLUP/s) the strategy measured, in order.
  std::vector<std::pair<KernelConfig, double>> MeasuredLog;
};

/// Interface of a tuning strategy.
class TuningStrategy {
public:
  virtual ~TuningStrategy();

  virtual const char *name() const = 0;

  /// Tunes over \p Space using \p Measure for ground-truth evaluations.
  virtual TuningResult tune(const std::vector<KernelConfig> &Space,
                            const MeasureFn &Measure) = 0;
};

/// Measures every configuration in the space (YASK-exhaustive baseline).
class ExhaustiveStrategy : public TuningStrategy {
public:
  const char *name() const override { return "exhaustive"; }
  TuningResult tune(const std::vector<KernelConfig> &Space,
                    const MeasureFn &Measure) override;
};

/// Measures a fixed-size random sample of the space.
class RandomStrategy : public TuningStrategy {
public:
  RandomStrategy(unsigned Samples, uint64_t Seed)
      : Samples(Samples), Seed(Seed) {}
  const char *name() const override { return "random"; }
  TuningResult tune(const std::vector<KernelConfig> &Space,
                    const MeasureFn &Measure) override;

private:
  unsigned Samples;
  uint64_t Seed;
};

/// Greedy coordinate descent over the block dimensions (the shape of
/// YASK's built-in hill-climbing auto-tuner): first sweep the y-block with
/// other parameters at their defaults, then the z-block, then the
/// wavefront depth, keeping the best of each stage.
class HierarchicalStrategy : public TuningStrategy {
public:
  const char *name() const override { return "hierarchical"; }
  TuningResult tune(const std::vector<KernelConfig> &Space,
                    const MeasureFn &Measure) override;
};

/// YaskSite's strategy: rank the space with the ECM model (zero
/// executions); optionally measure only the model's top-k shortlist.
class ModelGuidedStrategy : public TuningStrategy {
public:
  /// \p VerifyTopK == 0 selects purely on the model.
  ModelGuidedStrategy(const ECMModel &Model, StencilSpec Spec, GridDims Dims,
                      unsigned ActiveCores = 1, unsigned VerifyTopK = 0)
      : Model(Model), Spec(std::move(Spec)), Dims(Dims),
        ActiveCores(ActiveCores), VerifyTopK(VerifyTopK) {}

  const char *name() const override { return "model-guided"; }
  TuningResult tune(const std::vector<KernelConfig> &Space,
                    const MeasureFn &Measure) override;

private:
  const ECMModel &Model;
  StencilSpec Spec;
  GridDims Dims;
  unsigned ActiveCores;
  unsigned VerifyTopK;
};

} // namespace ys

#endif // YS_TUNER_TUNINGSTRATEGY_H
