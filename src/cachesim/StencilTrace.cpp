//===- cachesim/StencilTrace.cpp - Stencil address-trace replay ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"

#include <algorithm>
#include <cassert>

using namespace ys;

StencilTraceRunner::StencilTraceRunner(StencilSpec Spec, GridDims Dims,
                                       KernelConfig Config, int Halo)
    : Spec(std::move(Spec)), Dims(Dims), Config(Config),
      Halo(Halo < 0 ? this->Spec.radius() : Halo) {
  PadX = Dims.Nx + 2L * this->Halo;
  PadY = Dims.Ny + 2L * this->Halo;
  PadZ = Dims.Nz + 2L * this->Halo;
}

uint64_t StencilTraceRunner::addrOf(unsigned GridId, long X, long Y,
                                    long Z) const {
  // Each grid occupies its own 1 GiB window so grids never alias.
  uint64_t Base = static_cast<uint64_t>(GridId) << 30;
  long Linear = ((Z + Halo) * PadY + (Y + Halo)) * PadX + (X + Halo);
  assert(Linear >= 0 && "trace address underflow");
  return Base + static_cast<uint64_t>(Linear) * sizeof(double);
}

void StencilTraceRunner::traceRange(CacheHierarchySim &Sim,
                                    unsigned InGridBase, unsigned OutGrid,
                                    long Z0, long Z1, long Y0, long Y1,
                                    long X0, long X1) const {
  const std::vector<StencilPoint> &Points = Spec.points();
  for (long Z = Z0; Z < Z1; ++Z)
    for (long Y = Y0; Y < Y1; ++Y)
      for (long X = X0; X < X1; ++X) {
        for (const StencilPoint &P : Points)
          Sim.load(addrOf(InGridBase + P.GridIdx, X + P.Dx, Y + P.Dy,
                          Z + P.Dz));
        for (unsigned O = 0; O < std::max(1u, Spec.OutputGrids); ++O)
          Sim.store(addrOf(OutGrid + O, X, Y, Z));
      }
}

void StencilTraceRunner::traceBlockedSweep(CacheHierarchySim &Sim,
                                           unsigned InGridBase,
                                           unsigned OutGrid) const {
  BlockSize B = Config.Block.resolved(Dims);
  for (long Zb = 0; Zb < Dims.Nz; Zb += B.Z)
    for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
      for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
        traceRange(Sim, InGridBase, OutGrid, Zb,
                   std::min(Zb + B.Z, Dims.Nz), Yb,
                   std::min(Yb + B.Y, Dims.Ny), Xb,
                   std::min(Xb + B.X, Dims.Nx));
}

TraceTraffic StencilTraceRunner::run(CacheHierarchySim &Sim,
                                     int Sweeps) const {
  assert(Sweeps >= 1 && "need at least one sweep");
  unsigned NumIn = Spec.numInputGrids();
  for (int S = 0; S < Sweeps; ++S) {
    if (NumIn == 1) {
      unsigned In = static_cast<unsigned>(S % 2);
      traceBlockedSweep(Sim, In, 1 - In);
    } else {
      traceBlockedSweep(Sim, 0, NumIn); // Fixed inputs, separate output.
    }
  }
  HierarchyTraffic T = Sim.traffic();
  TraceTraffic Out;
  Out.Lups = static_cast<unsigned long long>(Dims.lups()) * Sweeps;
  for (unsigned long long Bytes : T.BoundaryBytes)
    Out.BytesPerLup.push_back(static_cast<double>(Bytes) /
                              static_cast<double>(Out.Lups));
  return Out;
}

TraceTraffic StencilTraceRunner::runWavefront(CacheHierarchySim &Sim) const {
  assert(Spec.numInputGrids() == 1 &&
         "wavefront trace requires a single-input stencil");
  int Depth = std::max(1, Config.WavefrontDepth);
  int R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1);

  // Mirrors KernelExecutor::wavefrontMacroStep: two buffers (grid ids 0 and
  // 1), frontier schedule along z.
  std::vector<long> Frontier(static_cast<size_t>(Depth) + 1, 0);
  Frontier[0] = Dims.Nz;

  auto sweepSlab = [&](int S, long Z0, long Z1) {
    unsigned Src = (S - 1) % 2 == 0 ? 0u : 1u;
    unsigned Dst = 1u - Src;
    for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
      for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
        traceRange(Sim, Src, Dst, Z0, Z1, Yb, std::min(Yb + B.Y, Dims.Ny),
                   Xb, std::min(Xb + B.X, Dims.Nx));
  };

  while (Frontier[Depth] < Dims.Nz) {
    for (int S = 1; S <= Depth; ++S) {
      long Cap =
          Frontier[S - 1] >= Dims.Nz ? Dims.Nz : Frontier[S - 1] - R;
      long Target = std::min(Cap, Frontier[S] + Bz);
      if (Target > Frontier[S]) {
        sweepSlab(S, Frontier[S], Target);
        Frontier[S] = Target;
      }
    }
  }

  HierarchyTraffic T = Sim.traffic();
  TraceTraffic Out;
  Out.Lups =
      static_cast<unsigned long long>(Dims.lups()) * static_cast<unsigned>(Depth);
  for (unsigned long long Bytes : T.BoundaryBytes)
    Out.BytesPerLup.push_back(static_cast<double>(Bytes) /
                              static_cast<double>(Out.Lups));
  return Out;
}
