//===- cachesim/StencilTrace.cpp - Stencil address-trace replay ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"

#include "ecm/LayerCondition.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace ys;

const char *ys::simModeName(SimMode Mode) {
  switch (Mode) {
  case SimMode::Full:
    return "full";
  case SimMode::Sampled:
    return "sampled";
  case SimMode::Auto:
    return "auto";
  }
  return "full";
}

std::optional<SimMode> ys::parseSimMode(const std::string &Name) {
  if (Name == "full")
    return SimMode::Full;
  if (Name == "sampled")
    return SimMode::Sampled;
  if (Name == "auto")
    return SimMode::Auto;
  return std::nullopt;
}

StencilTraceRunner::StencilTraceRunner(StencilSpec Spec, GridDims Dims,
                                       KernelConfig Config, int Halo)
    : Spec(std::move(Spec)), Dims(Dims), Config(Config),
      Halo(Halo < 0 ? this->Spec.radius() : Halo) {
  PadX = Dims.Nx + 2L * this->Halo;
  PadY = Dims.Ny + 2L * this->Halo;
  PadZ = Dims.Nz + 2L * this->Halo;
}

uint64_t StencilTraceRunner::addrOf(unsigned GridId, long X, long Y,
                                    long Z) const {
  // Each grid occupies its own 1 GiB window so grids never alias.
  uint64_t Base = static_cast<uint64_t>(GridId) << 30;
  long Linear = ((Z + Halo) * PadY + (Y + Halo)) * PadX + (X + Halo);
  assert(Linear >= 0 && "trace address underflow");
  return Base + static_cast<uint64_t>(Linear) * sizeof(double);
}

void StencilTraceRunner::traceRange(CacheHierarchySim &Sim,
                                    unsigned InGridBase, unsigned OutGrid,
                                    long Z0, long Z1, long Y0, long Y1,
                                    long X0, long X1) const {
  const std::vector<StencilPoint> &Points = Spec.points();
  for (long Z = Z0; Z < Z1; ++Z)
    for (long Y = Y0; Y < Y1; ++Y)
      for (long X = X0; X < X1; ++X) {
        for (const StencilPoint &P : Points)
          Sim.load(addrOf(InGridBase + P.GridIdx, X + P.Dx, Y + P.Dy,
                          Z + P.Dz));
        for (unsigned O = 0; O < std::max(1u, Spec.OutputGrids); ++O)
          Sim.store(addrOf(OutGrid + O, X, Y, Z));
      }
}

void StencilTraceRunner::traceBlockedSweep(CacheHierarchySim &Sim,
                                           unsigned InGridBase,
                                           unsigned OutGrid) const {
  BlockSize B = Config.Block.resolved(Dims);
  for (long Zb = 0; Zb < Dims.Nz; Zb += B.Z)
    for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
      for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
        traceRange(Sim, InGridBase, OutGrid, Zb,
                   std::min(Zb + B.Z, Dims.Nz), Yb,
                   std::min(Yb + B.Y, Dims.Ny), Xb,
                   std::min(Xb + B.X, Dims.Nx));
}

TraceTraffic StencilTraceRunner::run(CacheHierarchySim &Sim,
                                     int Sweeps) const {
  assert(Sweeps >= 1 && "need at least one sweep");
  unsigned NumIn = Spec.numInputGrids();
  for (int S = 0; S < Sweeps; ++S) {
    if (NumIn == 1) {
      unsigned In = static_cast<unsigned>(S % 2);
      traceBlockedSweep(Sim, In, 1 - In);
    } else {
      traceBlockedSweep(Sim, 0, NumIn); // Fixed inputs, separate output.
    }
  }
  HierarchyTraffic T = Sim.traffic();
  TraceTraffic Out;
  Out.Lups = static_cast<unsigned long long>(Dims.lups()) * Sweeps;
  Out.ReplayedLups = Out.Lups;
  for (unsigned long long Bytes : T.BoundaryBytes)
    Out.BytesPerLup.push_back(static_cast<double>(Bytes) /
                              static_cast<double>(Out.Lups));
  return Out;
}

StencilTraceRunner::SamplePlan
StencilTraceRunner::planSampled(const CacheHierarchySim &Sim) const {
  SamplePlan Plan;

  // Classify the layer-condition regime against a machine model
  // synthesized from the simulated levels.  SafetyFactor 1.0: the
  // simulator has exact capacities, the derating is for real hardware.
  MachineModel Synth;
  Synth.Name = "simulated-hierarchy";
  for (unsigned I = 0; I < Sim.numLevels(); ++I) {
    const CacheSimLevelConfig &C = Sim.level(I).config();
    CacheLevelModel L;
    L.Name = C.Name.empty() ? format("L%u", I + 1) : C.Name;
    L.SizeBytes = C.SizeBytes;
    L.Associativity = C.Associativity;
    L.LineBytes = C.LineBytes;
    Synth.Caches.push_back(L);
  }
  LayerConditionAnalysis LC(Synth, /*SafetyFactor=*/1.0);
  SimRegime Regime = LC.classifyForSampling(Spec, Dims, Config);
  if (Regime.Ambiguous) {
    Plan.Reason = Regime.Reason;
    return Plan;
  }

  // Execution-order sample units matching traceBlockedSweep's loop nest:
  // z-block rows when z is blocked, (y,x) block columns when only inner
  // dimensions are blocked, bare z-planes otherwise.
  BlockSize B = Config.Block.resolved(Dims);
  if (B.Z < Dims.Nz) {
    Plan.Axis = SampleAxis::ZRow;
    Plan.UnitCount = (Dims.Nz + B.Z - 1) / B.Z;
    Plan.UnitLups = B.Z * Dims.Ny * Dims.Nx;
  } else if (B.Y < Dims.Ny || B.X < Dims.Nx) {
    Plan.Axis = SampleAxis::Column;
    Plan.UnitCount =
        ((Dims.Ny + B.Y - 1) / B.Y) * ((Dims.Nx + B.X - 1) / B.X);
    Plan.UnitLups = Dims.Nz * B.Y * B.X;
  } else {
    Plan.Axis = SampleAxis::ZPlane;
    Plan.UnitCount = Dims.Nz;
    Plan.UnitLups = Dims.Ny * Dims.Nx;
  }

  // The warmup prefix must (a) stream enough data through the hierarchy to
  // reach fill/writeback steady state — cycle ~1.5x every simulated line —
  // and (b) span the stencil's reuse distance along the unit axis.  The
  // measurement window needs the reuse distance again so its rate is a
  // whole number of reuse periods.
  unsigned long long TotalCacheBytes = 0;
  for (unsigned I = 0; I < Sim.numLevels(); ++I)
    TotalCacheBytes += Sim.level(I).config().SizeBytes;
  unsigned Outs = std::max(1u, Spec.OutputGrids);
  double TouchedPerLup =
      static_cast<double>(Spec.numInputGrids() + Outs) * 8.0;
  long CapacityUnits = static_cast<long>(
      1.5 * static_cast<double>(TotalCacheBytes) /
          (static_cast<double>(Plan.UnitLups) * TouchedPerLup) +
      1.0);
  long R = std::max(1, Spec.radius());
  long ReuseUnits = 2;
  if (Plan.Axis == SampleAxis::ZPlane)
    ReuseUnits = 2 * R + 2;
  else if (Plan.Axis == SampleAxis::ZRow)
    ReuseUnits = (2 * R + 2 + B.Z - 1) / B.Z;
  Plan.WarmupUnits = std::max(CapacityUnits, ReuseUnits);
  Plan.MeasureUnits = std::max<long>(ReuseUnits, 2);

  // The replayed prefix must stay a small, interior part of the sweep:
  // if it covers half the units there is nothing left to extrapolate and
  // edge effects dominate.
  if (Plan.UnitCount < 2 * (Plan.WarmupUnits + Plan.MeasureUnits)) {
    Plan.Reason = format(
        "sweep has %ld sample units but warmup+measure needs %ld: too few "
        "for an interior steady-state window",
        Plan.UnitCount, Plan.WarmupUnits + Plan.MeasureUnits);
    return Plan;
  }
  Plan.UseSampling = true;
  return Plan;
}

long StencilTraceRunner::traceUnits(CacheHierarchySim &Sim,
                                    unsigned InGridBase, unsigned OutGrid,
                                    const SamplePlan &Plan, long UnitFrom,
                                    long UnitTo) const {
  BlockSize B = Config.Block.resolved(Dims);
  long Lups = 0;
  switch (Plan.Axis) {
  case SampleAxis::ZPlane: {
    long Z1 = std::min<long>(UnitTo, Dims.Nz);
    traceRange(Sim, InGridBase, OutGrid, UnitFrom, Z1, 0, Dims.Ny, 0,
               Dims.Nx);
    Lups = (Z1 - UnitFrom) * Dims.Ny * Dims.Nx;
    break;
  }
  case SampleAxis::ZRow: {
    for (long U = UnitFrom; U < UnitTo; ++U) {
      long Zb = U * B.Z;
      long Z1 = std::min(Zb + B.Z, Dims.Nz);
      if (Zb >= Z1)
        break;
      for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
        for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
          traceRange(Sim, InGridBase, OutGrid, Zb, Z1, Yb,
                     std::min(Yb + B.Y, Dims.Ny), Xb,
                     std::min(Xb + B.X, Dims.Nx));
      Lups += (Z1 - Zb) * Dims.Ny * Dims.Nx;
    }
    break;
  }
  case SampleAxis::Column: {
    long NxBlocks = (Dims.Nx + B.X - 1) / B.X;
    for (long U = UnitFrom; U < UnitTo; ++U) {
      long Yb = (U / NxBlocks) * B.Y;
      long Xb = (U % NxBlocks) * B.X;
      if (Yb >= Dims.Ny)
        break;
      long Y1 = std::min(Yb + B.Y, Dims.Ny);
      long X1 = std::min(Xb + B.X, Dims.Nx);
      traceRange(Sim, InGridBase, OutGrid, 0, Dims.Nz, Yb, Y1, Xb, X1);
      Lups += Dims.Nz * (Y1 - Yb) * (X1 - Xb);
    }
    break;
  }
  }
  return Lups;
}

TraceTraffic StencilTraceRunner::runSampled(CacheHierarchySim &Sim,
                                            int Sweeps,
                                            const SamplePlan &Plan) const {
  unsigned NumIn = Spec.numInputGrids();
  unsigned InBase = 0;
  unsigned OutGrid = NumIn == 1 ? 1u : NumIn;

  // Replay one sweep's warmup prefix, checkpoint the counters, replay the
  // measurement window, and extrapolate each boundary's steady byte rate
  // across the unreplayed remainder.  One sweep suffices: planSampled()
  // admits only unambiguous streaming regimes, where consecutive sweeps
  // see no residual reuse and carry identical traffic.
  long WarmLups =
      traceUnits(Sim, InBase, OutGrid, Plan, 0, Plan.WarmupUnits);
  HierarchyTraffic T1 = Sim.traffic();
  long MeasLups =
      traceUnits(Sim, InBase, OutGrid, Plan, Plan.WarmupUnits,
                 Plan.WarmupUnits + Plan.MeasureUnits);
  HierarchyTraffic T2 = Sim.traffic();

  TraceTraffic Out;
  Out.Sampled = true;
  Out.Lups = static_cast<unsigned long long>(Dims.lups()) * Sweeps;
  Out.ReplayedLups = static_cast<unsigned long long>(WarmLups + MeasLups);
  double SweepLups = static_cast<double>(Dims.lups());
  double Remaining = SweepLups - static_cast<double>(WarmLups + MeasLups);
  for (size_t I = 0; I < T2.BoundaryBytes.size(); ++I) {
    double Observed = static_cast<double>(T2.BoundaryBytes[I]);
    double Window = Observed - static_cast<double>(T1.BoundaryBytes[I]);
    double Rate = MeasLups > 0 ? Window / static_cast<double>(MeasLups) : 0;
    Out.BytesPerLup.push_back((Observed + Rate * Remaining) / SweepLups);
  }
  return Out;
}

TraceTraffic StencilTraceRunner::run(CacheHierarchySim &Sim, int Sweeps,
                                     SimMode Mode) const {
  if (Mode == SimMode::Full)
    return run(Sim, Sweeps);
  SamplePlan Plan = planSampled(Sim);
  if (!Plan.UseSampling) {
    TraceTraffic Out = run(Sim, Sweeps);
    Out.FallbackReason = Plan.Reason;
    return Out;
  }
  return runSampled(Sim, Sweeps, Plan);
}

void StencilTraceRunner::traceLevelSlab(CacheHierarchySim &Sim, int S,
                                        long Z0, long Z1,
                                        const BlockSize &B) const {
  // Two-buffer parity: grid 0 holds even time levels, grid 1 odd ones, so
  // level S reads (S-1)'s buffer and writes its own.
  unsigned Src = (S - 1) % 2 == 0 ? 0u : 1u;
  unsigned Dst = 1u - Src;
  for (long Yb = 0; Yb < Dims.Ny; Yb += B.Y)
    for (long Xb = 0; Xb < Dims.Nx; Xb += B.X)
      traceRange(Sim, Src, Dst, Z0, Z1, Yb, std::min(Yb + B.Y, Dims.Ny),
                 Xb, std::min(Xb + B.X, Dims.Nx));
}

TraceTraffic StencilTraceRunner::finishTemporal(CacheHierarchySim &Sim,
                                                int Depth) const {
  HierarchyTraffic T = Sim.traffic();
  TraceTraffic Out;
  Out.Lups = static_cast<unsigned long long>(Dims.lups()) *
             static_cast<unsigned>(Depth);
  Out.ReplayedLups = Out.Lups;
  for (unsigned long long Bytes : T.BoundaryBytes)
    Out.BytesPerLup.push_back(static_cast<double>(Bytes) /
                              static_cast<double>(Out.Lups));
  return Out;
}

TraceTraffic StencilTraceRunner::runWavefront(CacheHierarchySim &Sim) const {
  assert(Spec.numInputGrids() == 1 &&
         "wavefront trace requires a single-input stencil");
  int Depth = std::max(1, Config.WavefrontDepth);
  int R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long Bz = std::max<long>(B.Z, R + 1);

  // Mirrors KernelExecutor::wavefrontMacroStep: two buffers (grid ids 0 and
  // 1), frontier schedule along z.
  std::vector<long> Frontier(static_cast<size_t>(Depth) + 1, 0);
  Frontier[0] = Dims.Nz;

  while (Frontier[Depth] < Dims.Nz) {
    for (int S = 1; S <= Depth; ++S) {
      long Cap =
          Frontier[S - 1] >= Dims.Nz ? Dims.Nz : Frontier[S - 1] - R;
      long Target = std::min(Cap, Frontier[S] + Bz);
      if (Target > Frontier[S]) {
        traceLevelSlab(Sim, S, Frontier[S], Target, B);
        Frontier[S] = Target;
      }
    }
  }

  return finishTemporal(Sim, Depth);
}

TraceTraffic StencilTraceRunner::runDiamond(CacheHierarchySim &Sim) const {
  assert(Spec.numInputGrids() == 1 &&
         "diamond trace requires a single-input stencil");
  int Depth = std::max(1, Config.WavefrontDepth);
  long R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);
  long W = std::max<long>(B.Z, 2 * Depth * R);
  long NumTiles = (Dims.Nz + W - 1) / W;

  // Mirrors KernelExecutor::diamondMacroStep: phase-1 trapezoids per tile,
  // phase-2 boundary diamonds between adjacent tiles.
  for (long K = 0; K < NumTiles; ++K)
    for (int S = 1; S <= Depth; ++S) {
      long Z0 = K == 0 ? 0 : K * W + S * R;
      long Z1 = K == NumTiles - 1 ? Dims.Nz : (K + 1) * W - S * R;
      if (Z1 > Z0)
        traceLevelSlab(Sim, S, Z0, Z1, B);
    }
  for (long K = 0; K + 1 < NumTiles; ++K) {
    long Boundary = (K + 1) * W;
    for (int S = 1; S <= Depth; ++S) {
      long Z0 = std::max<long>(0, Boundary - S * R);
      long Z1 = std::min<long>(Dims.Nz, Boundary + S * R);
      if (Z1 > Z0)
        traceLevelSlab(Sim, S, Z0, Z1, B);
    }
  }

  return finishTemporal(Sim, Depth);
}

TraceTraffic
StencilTraceRunner::runDeepTemporal(CacheHierarchySim &Sim) const {
  assert(Spec.numInputGrids() == 1 &&
         "deep-temporal trace requires a single-input stencil");
  int Depth = std::max(1, Config.WavefrontDepth);
  long R = std::max(1, Spec.radius());
  BlockSize B = Config.Block.resolved(Dims);

  // Mirrors KernelExecutor::deepTemporalMacroStep: wave w computes level s
  // on plane z = w - (s-1)*R, s ascending.
  long LastWave = Dims.Nz - 1 + static_cast<long>(Depth - 1) * R;
  for (long Wave = 0; Wave <= LastWave; ++Wave)
    for (int S = 1; S <= Depth; ++S) {
      long Z = Wave - static_cast<long>(S - 1) * R;
      if (Z >= 0 && Z < Dims.Nz)
        traceLevelSlab(Sim, S, Z, Z + 1, B);
    }

  return finishTemporal(Sim, Depth);
}

TraceTraffic StencilTraceRunner::runTemporal(CacheHierarchySim &Sim) const {
  if (!Config.isTemporal())
    return run(Sim, 1);
  switch (Config.Sched) {
  case Schedule::Diamond:
    return runDiamond(Sim);
  case Schedule::DeepTemporal:
    return runDeepTemporal(Sim);
  default:
    return runWavefront(Sim);
  }
}
