//===- cachesim/MultiCoreSim.h - Multicore cache simulation ------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multicore cache simulation: per-core private levels feeding one shared
/// last-level instance, with an interleaved-issue stencil trace that
/// partitions a sweep across cores the way the executor's thread
/// decomposition does.  This validates the ECM model's shared-cache
/// pressure term (the per-core capacity derating with active cores) — in
/// the paper that behavior is implicit in measured socket scaling.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CACHESIM_MULTICORESIM_H
#define YS_CACHESIM_MULTICORESIM_H

#include "cachesim/CacheSim.h"
#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"

#include <memory>
#include <vector>

namespace ys {

/// N cores with private inner levels sharing the outermost level.
class MultiCoreCacheSim {
public:
  /// Builds from a machine model: every non-shared level is instantiated
  /// per core; the outermost shared level is instantiated once per
  /// sharing group (cores are assigned to groups round-robin by id,
  /// matching contiguous pinning on CCX-style parts).
  MultiCoreCacheSim(const MachineModel &Machine, unsigned Cores);

  /// Simulates an access from \p Core.
  void access(unsigned Core, uint64_t ByteAddr, unsigned SizeBytes,
              bool IsWrite);
  void load(unsigned Core, uint64_t ByteAddr) {
    access(Core, ByteAddr, 8, false);
  }
  void store(unsigned Core, uint64_t ByteAddr) {
    access(Core, ByteAddr, 8, true);
  }

  unsigned numCores() const { return Cores; }
  unsigned numPrivateLevels() const { return PrivateLevels; }

  /// Memory-boundary traffic (fills + writebacks) in bytes, summed over
  /// all shared-cache instances.
  unsigned long long memTrafficBytes() const;

  /// Traffic between the innermost shared level and the outer private
  /// level, summed over cores (e.g. L2<->L3).
  unsigned long long sharedBoundaryBytes() const;

private:
  void accessLine(unsigned Core, uint64_t LineAddr, bool IsWrite);

  const MachineModel &Machine;
  unsigned Cores;
  unsigned PrivateLevels = 0; ///< Number of per-core levels (e.g. 2).
  unsigned LineBytes = 64;
  unsigned CoresPerGroup = 1; ///< Cores sharing one shared instance.

  /// [core][level] private caches.
  std::vector<std::vector<CacheLevelSim>> Private;
  /// One shared last-level instance per core group.
  std::vector<CacheLevelSim> Shared;
  std::vector<unsigned long long> MemFillLines;      ///< Per group.
  std::vector<unsigned long long> MemWritebackLines; ///< Per group.
};

/// Traffic per LUP measured by a multicore stencil sweep.
struct MultiCoreTraffic {
  double MemBytesPerLup = 0;
  double SharedBoundaryBytesPerLup = 0;
  unsigned long long Lups = 0;
};

/// Replays one (or more) stencil sweeps with the grid's z-range statically
/// partitioned over \p Cores cores and per-cell issue interleaved across
/// cores (approximating concurrent execution against the shared cache).
MultiCoreTraffic runMultiCoreStencilTrace(const MachineModel &Machine,
                                          unsigned Cores,
                                          const StencilSpec &Spec,
                                          const GridDims &Dims,
                                          const KernelConfig &Config,
                                          int Sweeps = 1);

} // namespace ys

#endif // YS_CACHESIM_MULTICORESIM_H
