//===- cachesim/CacheSim.cpp - Multi-level cache simulator -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"

#include <cassert>
#include <functional>

using namespace ys;

CacheLevelSim::CacheLevelSim(const CacheSimLevelConfig &Config)
    : Config(Config) {
  assert(Config.LineBytes > 0 && Config.Associativity > 0 &&
         "degenerate cache configuration");
  unsigned long long Lines = Config.SizeBytes / Config.LineBytes;
  NumSets = static_cast<unsigned>(Lines / Config.Associativity);
  if (NumSets == 0)
    NumSets = 1;
  Ways.assign(static_cast<size_t>(NumSets) * Config.Associativity, Way());
}

void CacheLevelSim::reset() {
  for (Way &W : Ways)
    W = Way();
  Stats = CacheLevelStats();
  StampCounter = 0;
}

bool CacheLevelSim::access(uint64_t LineAddr, bool MarkDirty) {
  ++Stats.Accesses;
  unsigned Set = setIndex(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];
  for (unsigned W = 0; W < Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Valid && Candidate.LineAddr == LineAddr) {
      Candidate.LruStamp = ++StampCounter;
      if (MarkDirty)
        Candidate.Dirty = true;
      ++Stats.Hits;
      return true;
    }
  }
  ++Stats.Misses;
  return false;
}

CacheLevelSim::Eviction CacheLevelSim::insertReportingVictim(
    uint64_t LineAddr, bool Dirty) {
  Eviction Out;
  unsigned Set = setIndex(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];

  // Reuse the line if already resident (e.g. writeback arriving for a line
  // that was refetched meanwhile).
  for (unsigned W = 0; W < Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Valid && Candidate.LineAddr == LineAddr) {
      Candidate.LruStamp = ++StampCounter;
      Candidate.Dirty |= Dirty;
      return Out;
    }
  }

  // Prefer an invalid way; otherwise evict the LRU way.
  Way *Victim = nullptr;
  for (unsigned W = 0; W < Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (!Candidate.Valid) {
      Victim = &Candidate;
      break;
    }
    if (!Victim || Candidate.LruStamp < Victim->LruStamp)
      Victim = &Candidate;
  }
  assert(Victim && "no victim way found");
  if (Victim->Valid) {
    Out.Has = true;
    Out.LineAddr = Victim->LineAddr;
    Out.Dirty = Victim->Dirty;
    if (Victim->Dirty)
      ++Stats.WritebackLines;
  }
  Victim->Valid = true;
  Victim->LineAddr = LineAddr;
  Victim->Dirty = Dirty;
  Victim->LruStamp = ++StampCounter;
  return Out;
}

void CacheLevelSim::insert(uint64_t LineAddr, bool Dirty,
                           bool &HasDirtyEviction, uint64_t &EvictedDirty) {
  Eviction E = insertReportingVictim(LineAddr, Dirty);
  HasDirtyEviction = E.Has && E.Dirty;
  if (HasDirtyEviction)
    EvictedDirty = E.LineAddr;
}

bool CacheLevelSim::removeIfPresent(uint64_t LineAddr, bool &WasDirty) {
  unsigned Set = setIndex(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];
  for (unsigned W = 0; W < Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Valid && Candidate.LineAddr == LineAddr) {
      WasDirty = Candidate.Dirty;
      Candidate.Valid = false;
      return true;
    }
  }
  return false;
}

bool CacheLevelSim::markDirtyIfPresent(uint64_t LineAddr) {
  unsigned Set = setIndex(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];
  for (unsigned W = 0; W < Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Valid && Candidate.LineAddr == LineAddr) {
      Candidate.Dirty = true;
      Candidate.LruStamp = ++StampCounter;
      return true;
    }
  }
  return false;
}

void CacheLevelSim::invalidate(uint64_t LineAddr) {
  unsigned Set = setIndex(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];
  for (unsigned W = 0; W < Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Valid && Candidate.LineAddr == LineAddr) {
      Candidate.Valid = false;
      return;
    }
  }
}

CacheHierarchySim::CacheHierarchySim(
    std::vector<CacheSimLevelConfig> LevelConfigs, bool VictimLLC)
    : VictimLLC(VictimLLC && LevelConfigs.size() >= 2) {
  assert(!LevelConfigs.empty() && "hierarchy needs at least one level");
  LineBytes = LevelConfigs.front().LineBytes;
  for (const CacheSimLevelConfig &C : LevelConfigs) {
    assert(C.LineBytes == LineBytes && "mixed line sizes unsupported");
    Levels.emplace_back(C);
  }
}

CacheHierarchySim CacheHierarchySim::fromMachine(const MachineModel &M,
                                                 bool PerCoreShare,
                                                 bool HonorVictim) {
  std::vector<CacheSimLevelConfig> Configs;
  for (const CacheLevelModel &L : M.Caches) {
    CacheSimLevelConfig C;
    C.Name = L.Name;
    C.SizeBytes = L.SizeBytes;
    if (PerCoreShare && L.Shared && L.SharingCores > 1)
      C.SizeBytes = L.SizeBytes / L.SharingCores;
    C.Associativity = L.Associativity;
    C.LineBytes = L.LineBytes;
    Configs.push_back(C);
  }
  bool Victim = HonorVictim && M.Caches.back().Victim;
  return CacheHierarchySim(std::move(Configs), Victim);
}

void CacheHierarchySim::reset() {
  for (CacheLevelSim &L : Levels)
    L.reset();
  MemFillLines = 0;
  MemWritebackLines = 0;
}

void CacheHierarchySim::access(uint64_t ByteAddr, unsigned SizeBytes,
                               bool IsWrite) {
  uint64_t FirstLine = ByteAddr / LineBytes;
  uint64_t LastLine = (ByteAddr + SizeBytes - 1) / LineBytes;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line)
    accessLine(Line, IsWrite);
}

void CacheHierarchySim::accessLine(uint64_t LineAddr, bool IsWrite) {
  if (VictimLLC) {
    accessLineVictim(LineAddr, IsWrite);
    return;
  }
  // Walk inward-out until a hit; write intent only dirties L1 (write-back).
  unsigned HitLevel = numLevels();
  for (unsigned I = 0; I < numLevels(); ++I) {
    bool MarkDirty = IsWrite && I == 0;
    if (Levels[I].access(LineAddr, MarkDirty)) {
      HitLevel = I;
      break;
    }
  }

  if (HitLevel == 0)
    return;

  if (HitLevel == numLevels())
    ++MemFillLines; // Satisfied from memory.

  // Fill the line into all inner levels, outermost first, propagating dirty
  // victims outward.
  for (int I = static_cast<int>(HitLevel) - 1; I >= 0; --I) {
    bool Dirty = IsWrite && I == 0;
    ++Levels[I].stats().FillLines;
    bool HasEviction = false;
    uint64_t EvictedLine = 0;
    Levels[I].insert(LineAddr, Dirty, HasEviction, EvictedLine);
    // Propagate a dirty victim to the next-outer level (or memory).
    unsigned Outer = static_cast<unsigned>(I) + 1;
    while (HasEviction) {
      if (Outer >= numLevels()) {
        ++MemWritebackLines;
        break;
      }
      if (Levels[Outer].markDirtyIfPresent(EvictedLine))
        break;
      bool NextEviction = false;
      uint64_t NextLine = 0;
      Levels[Outer].insert(EvictedLine, /*Dirty=*/true, NextEviction,
                           NextLine);
      HasEviction = NextEviction;
      EvictedLine = NextLine;
      ++Outer;
    }
  }
}

void CacheHierarchySim::accessLineVictim(uint64_t LineAddr, bool IsWrite) {
  unsigned LLC = numLevels() - 1;

  // Walk the private levels.
  unsigned HitLevel = numLevels();
  for (unsigned I = 0; I < LLC; ++I) {
    bool MarkDirty = IsWrite && I == 0;
    if (Levels[I].access(LineAddr, MarkDirty)) {
      HitLevel = I;
      break;
    }
  }
  bool MigratedDirty = false;
  if (HitLevel == numLevels()) {
    // Probe the exclusive LLC: a hit migrates the line inward.
    ++Levels[LLC].stats().Accesses;
    bool WasDirty = false;
    if (Levels[LLC].removeIfPresent(LineAddr, WasDirty)) {
      ++Levels[LLC].stats().Hits;
      HitLevel = LLC;
      MigratedDirty = WasDirty;
    } else {
      ++Levels[LLC].stats().Misses;
      ++MemFillLines;
    }
  }
  if (HitLevel == 0)
    return;

  // Inserts a victim from private level I into the next container:
  // level I+1 for inner levels, the exclusive LLC for the outermost
  // private level; LLC victims go to memory if dirty.
  std::function<void(unsigned, CacheLevelSim::Eviction)> PlaceVictim =
      [&](unsigned FromLevel, CacheLevelSim::Eviction E) {
        if (!E.Has)
          return;
        unsigned Outer = FromLevel + 1;
        if (Outer > LLC) {
          if (E.Dirty)
            ++MemWritebackLines;
          return;
        }
        if (Outer < LLC) {
          // Inclusive inner levels: writeback/refresh as usual.
          if (E.Dirty && Levels[Outer].markDirtyIfPresent(E.LineAddr))
            return;
          if (!E.Dirty)
            return; // Clean inner victim: drop (still present outside or
                    // in the LLC? inner levels are inclusive below LLC).
          CacheLevelSim::Eviction Next =
              Levels[Outer].insertReportingVictim(E.LineAddr, true);
          PlaceVictim(Outer, Next);
          return;
        }
        // Outer == LLC: the exclusive cache receives every victim (clean
        // and dirty) and its own dirty victims go to memory.
        ++Levels[LLC].stats().FillLines;
        CacheLevelSim::Eviction Next =
            Levels[LLC].insertReportingVictim(E.LineAddr, E.Dirty);
        if (Next.Has && Next.Dirty)
          ++MemWritebackLines;
      };

  // Fill the private levels outermost-first.
  unsigned FillFrom = std::min(HitLevel, LLC);
  for (int I = static_cast<int>(FillFrom) - 1; I >= 0; --I) {
    bool Dirty =
        (IsWrite && I == 0) || (MigratedDirty && I == 0);
    ++Levels[I].stats().FillLines;
    CacheLevelSim::Eviction E =
        Levels[I].insertReportingVictim(LineAddr, Dirty);
    PlaceVictim(static_cast<unsigned>(I), E);
  }
}

HierarchyTraffic CacheHierarchySim::traffic() const {
  HierarchyTraffic T;
  for (unsigned I = 0; I < numLevels(); ++I) {
    const CacheLevelStats &S = Levels[I].stats();
    T.BoundaryBytes.push_back(S.trafficBytes(LineBytes));
  }
  // The outermost boundary is memory; report its split explicitly.
  T.MemLoadBytes = MemFillLines * static_cast<unsigned long long>(LineBytes);
  T.MemStoreBytes =
      MemWritebackLines * static_cast<unsigned long long>(LineBytes);
  if (VictimLLC && numLevels() >= 2) {
    // The L(last-1)<->LLC boundary moves inward fills plus every victim
    // insertion (clean and dirty).
    unsigned Inner = numLevels() - 2;
    T.BoundaryBytes[Inner] =
        (Levels[Inner].stats().FillLines +
         Levels.back().stats().FillLines) *
        static_cast<unsigned long long>(LineBytes);
  }
  // BoundaryBytes for the last level counts fills into the last level plus
  // its writebacks, which is exactly the memory boundary.
  T.BoundaryBytes.back() = T.MemLoadBytes + T.MemStoreBytes;
  return T;
}
