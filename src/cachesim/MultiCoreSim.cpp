//===- cachesim/MultiCoreSim.cpp - Multicore cache simulation ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/MultiCoreSim.h"

#include <algorithm>
#include <cassert>

using namespace ys;

MultiCoreCacheSim::MultiCoreCacheSim(const MachineModel &Machine,
                                     unsigned Cores)
    : Machine(Machine), Cores(std::max(1u, Cores)) {
  assert(Machine.numLevels() >= 2 && "need at least two cache levels");
  unsigned Last = Machine.lastLevel();
  assert(Machine.level(Last).Shared && "outermost level must be shared");
  PrivateLevels = Last; // Levels 0..Last-1 are private.
  LineBytes = Machine.level(0).LineBytes;

  CoresPerGroup =
      std::min(this->Cores, std::max(1u, Machine.level(Last).SharingCores));
  unsigned Groups = (this->Cores + CoresPerGroup - 1) / CoresPerGroup;

  for (unsigned C = 0; C < this->Cores; ++C) {
    std::vector<CacheLevelSim> Levels;
    for (unsigned L = 0; L < PrivateLevels; ++L) {
      CacheSimLevelConfig Config;
      Config.Name = Machine.level(L).Name;
      Config.SizeBytes = Machine.level(L).SizeBytes;
      Config.Associativity = Machine.level(L).Associativity;
      Config.LineBytes = Machine.level(L).LineBytes;
      Levels.emplace_back(Config);
    }
    Private.push_back(std::move(Levels));
  }
  for (unsigned G = 0; G < Groups; ++G) {
    CacheSimLevelConfig Config;
    Config.Name = Machine.level(Last).Name;
    Config.SizeBytes = Machine.level(Last).SizeBytes;
    Config.Associativity = Machine.level(Last).Associativity;
    Config.LineBytes = Machine.level(Last).LineBytes;
    Shared.emplace_back(Config);
  }
  MemFillLines.assign(Groups, 0);
  MemWritebackLines.assign(Groups, 0);
}

void MultiCoreCacheSim::access(unsigned Core, uint64_t ByteAddr,
                               unsigned SizeBytes, bool IsWrite) {
  assert(Core < Cores && "core id out of range");
  uint64_t FirstLine = ByteAddr / LineBytes;
  uint64_t LastLine = (ByteAddr + SizeBytes - 1) / LineBytes;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line)
    accessLine(Core, Line, IsWrite);
}

void MultiCoreCacheSim::accessLine(unsigned Core, uint64_t LineAddr,
                                   bool IsWrite) {
  unsigned Group = Core / CoresPerGroup;
  std::vector<CacheLevelSim> &Mine = Private[Core];
  CacheLevelSim &LLC = Shared[Group];

  // Walk private levels, then the shared level.
  unsigned HitLevel = PrivateLevels + 1;
  for (unsigned L = 0; L < PrivateLevels; ++L)
    if (Mine[L].access(LineAddr, IsWrite && L == 0)) {
      HitLevel = L;
      break;
    }
  if (HitLevel > PrivateLevels && LLC.access(LineAddr, false))
    HitLevel = PrivateLevels;
  if (HitLevel == 0)
    return;
  if (HitLevel > PrivateLevels)
    ++MemFillLines[Group];

  // Propagates a dirty victim evicted from level \p From (private index,
  // or PrivateLevels for the shared level) outward.
  auto propagateWriteback = [&](unsigned From, uint64_t Victim) {
    unsigned Outer = From + 1;
    bool Has = true;
    uint64_t Line = Victim;
    while (Has) {
      if (Outer > PrivateLevels) {
        ++MemWritebackLines[Group];
        return;
      }
      CacheLevelSim &Level =
          Outer == PrivateLevels ? LLC : Mine[Outer];
      if (Level.markDirtyIfPresent(Line))
        return;
      bool NextHas = false;
      uint64_t NextLine = 0;
      Level.insert(Line, /*Dirty=*/true, NextHas, NextLine);
      Has = NextHas;
      Line = NextLine;
      ++Outer;
    }
  };

  // Fill inward from the hit point: shared first (if missed there), then
  // private levels outermost-first.
  if (HitLevel > PrivateLevels) {
    ++LLC.stats().FillLines;
    bool Has = false;
    uint64_t Victim = 0;
    LLC.insert(LineAddr, false, Has, Victim);
    if (Has)
      ++MemWritebackLines[Group];
  }
  for (int L = static_cast<int>(std::min(HitLevel, PrivateLevels)) - 1;
       L >= 0; --L) {
    ++Mine[L].stats().FillLines;
    bool Has = false;
    uint64_t Victim = 0;
    Mine[L].insert(LineAddr, IsWrite && L == 0, Has, Victim);
    if (Has)
      propagateWriteback(static_cast<unsigned>(L), Victim);
  }
}

unsigned long long MultiCoreCacheSim::memTrafficBytes() const {
  unsigned long long Lines = 0;
  for (size_t G = 0; G < MemFillLines.size(); ++G)
    Lines += MemFillLines[G] + MemWritebackLines[G];
  return Lines * LineBytes;
}

unsigned long long MultiCoreCacheSim::sharedBoundaryBytes() const {
  // Fills into the outermost private level plus its writebacks, summed
  // over cores.
  unsigned long long Lines = 0;
  for (const auto &Levels : Private) {
    const CacheLevelStats &S = Levels[PrivateLevels - 1].stats();
    Lines += S.FillLines + S.WritebackLines;
  }
  return Lines * LineBytes;
}

MultiCoreTraffic ys::runMultiCoreStencilTrace(const MachineModel &Machine,
                                              unsigned Cores,
                                              const StencilSpec &Spec,
                                              const GridDims &Dims,
                                              const KernelConfig &Config,
                                              int Sweeps) {
  (void)Config; // Traversal is the unblocked order within each chunk.
  MultiCoreCacheSim Sim(Machine, Cores);
  int Halo = Spec.radius();
  long PadX = Dims.Nx + 2L * Halo;
  long PadY = Dims.Ny + 2L * Halo;

  auto AddrOf = [&](unsigned GridId, long X, long Y, long Z) {
    uint64_t Base = static_cast<uint64_t>(GridId) << 30;
    long Linear = ((Z + Halo) * PadY + (Y + Halo)) * PadX + (X + Halo);
    return Base + static_cast<uint64_t>(Linear) * sizeof(double);
  };

  // Static z-partition (the executor's thread decomposition).
  std::vector<long> ChunkBegin(Cores + 1, 0);
  long PerCore = (Dims.Nz + Cores - 1) / Cores;
  for (unsigned C = 0; C <= Cores; ++C)
    ChunkBegin[C] = std::min<long>(C * PerCore, Dims.Nz);

  long CellsPerPlane = Dims.Nx * Dims.Ny;
  unsigned NumIn = Spec.numInputGrids();
  for (int Sweep = 0; Sweep < Sweeps; ++Sweep) {
    // Single-input stencils ping-pong two buffers; multi-input specs read
    // fixed inputs and write a separate output.
    unsigned In = NumIn == 1 ? static_cast<unsigned>(Sweep % 2) : 0;
    unsigned Out = NumIn == 1 ? 1 - In : NumIn;
    long MaxCells = PerCore * CellsPerPlane;
    for (long Cell = 0; Cell < MaxCells; ++Cell) {
      for (unsigned Core = 0; Core < Cores; ++Core) {
        long ChunkPlanes = ChunkBegin[Core + 1] - ChunkBegin[Core];
        if (Cell >= ChunkPlanes * CellsPerPlane)
          continue;
        long Z = ChunkBegin[Core] + Cell / CellsPerPlane;
        long Rem = Cell % CellsPerPlane;
        long Y = Rem / Dims.Nx;
        long X = Rem % Dims.Nx;
        for (const StencilPoint &P : Spec.points())
          Sim.load(Core, AddrOf(In + P.GridIdx, X + P.Dx, Y + P.Dy,
                                Z + P.Dz));
        Sim.store(Core, AddrOf(Out, X, Y, Z));
      }
    }
  }

  MultiCoreTraffic T;
  T.Lups = static_cast<unsigned long long>(Dims.lups()) * Sweeps;
  T.MemBytesPerLup =
      static_cast<double>(Sim.memTrafficBytes()) / T.Lups;
  T.SharedBoundaryBytesPerLup =
      static_cast<double>(Sim.sharedBoundaryBytes()) / T.Lups;
  return T;
}
