//===- cachesim/CacheSim.h - Multi-level cache simulator ---------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, write-back, write-allocate, LRU multi-level cache
/// simulator.  In the paper, per-level data volumes are measured with LIKWID
/// hardware counters to validate the ECM model's layer-condition analysis;
/// this simulator plays that role here: replaying a kernel's address stream
/// yields exact per-level traffic to compare against the analytic
/// prediction.
///
/// Two organizations are supported: fully inclusive (the default used by
/// the traffic-validation flows; for streaming stencils the difference to
/// the real parts is absorbed by the layer-condition safety factor), and
/// a victim (exclusive) last level matching the paper's CLX/Rome L3s —
/// selectable per hierarchy and compared in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef YS_CACHESIM_CACHESIM_H
#define YS_CACHESIM_CACHESIM_H

#include "arch/MachineModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ys {

/// Configuration of one simulated cache level.
struct CacheSimLevelConfig {
  std::string Name;
  unsigned long long SizeBytes = 32 * 1024;
  unsigned Associativity = 8;
  unsigned LineBytes = 64;
};

/// Traffic counters for one simulated level.
struct CacheLevelStats {
  unsigned long long Accesses = 0;   ///< Lookups reaching this level.
  unsigned long long Hits = 0;
  unsigned long long Misses = 0;
  unsigned long long FillLines = 0;  ///< Lines brought in from outside.
  unsigned long long WritebackLines = 0; ///< Dirty lines evicted outward.

  /// Bytes moved between this level and the next-outer one.
  unsigned long long trafficBytes(unsigned LineBytes) const {
    return (FillLines + WritebackLines) *
           static_cast<unsigned long long>(LineBytes);
  }
};

/// One set-associative LRU cache level.
class CacheLevelSim {
public:
  explicit CacheLevelSim(const CacheSimLevelConfig &Config);

  /// Looks up a line; on hit, refreshes LRU and optionally marks dirty.
  bool access(uint64_t LineAddr, bool MarkDirty);

  /// Inserts a line (after a miss was satisfied from outside).  If a dirty
  /// victim is evicted its address is stored in \p EvictedDirty and true is
  /// returned through that channel; clean evictions are silent.
  void insert(uint64_t LineAddr, bool Dirty, bool &HasDirtyEviction,
              uint64_t &EvictedDirty);

  /// Full-detail eviction report (exclusive hierarchies need clean
  /// victims too).
  struct Eviction {
    bool Has = false;
    uint64_t LineAddr = 0;
    bool Dirty = false;
  };

  /// Like insert() but reports clean evictions as well.
  Eviction insertReportingVictim(uint64_t LineAddr, bool Dirty);

  /// If present, removes the line and reports whether it was dirty.
  /// Returns false when absent.  Used for victim-cache inward migration.
  bool removeIfPresent(uint64_t LineAddr, bool &WasDirty);

  /// Marks a resident line dirty if present (used for writeback
  /// propagation); returns false when the line is absent.
  bool markDirtyIfPresent(uint64_t LineAddr);

  /// Removes a line if present (invalidation).
  void invalidate(uint64_t LineAddr);

  const CacheSimLevelConfig &config() const { return Config; }
  CacheLevelStats &stats() { return Stats; }
  const CacheLevelStats &stats() const { return Stats; }

  unsigned numSets() const { return NumSets; }

  /// Drops all cached lines and zeroes the statistics.
  void reset();

private:
  struct Way {
    uint64_t LineAddr = ~0ull;
    bool Valid = false;
    bool Dirty = false;
    uint64_t LruStamp = 0; ///< Higher == more recently used.
  };

  unsigned setIndex(uint64_t LineAddr) const {
    return static_cast<unsigned>(LineAddr % NumSets);
  }

  CacheSimLevelConfig Config;
  unsigned NumSets = 1;
  uint64_t StampCounter = 0;
  std::vector<Way> Ways; ///< NumSets x Associativity, row-major.
  CacheLevelStats Stats;
};

/// Per-boundary traffic summary of a full hierarchy run.
struct HierarchyTraffic {
  /// Bytes crossing boundary I (between level I and level I+1; the last
  /// entry is the memory boundary).  Index 0 == L1<->L2.
  std::vector<unsigned long long> BoundaryBytes;

  /// Memory-boundary load and writeback components.
  unsigned long long MemLoadBytes = 0;
  unsigned long long MemStoreBytes = 0;
};

/// An inclusive multi-level cache hierarchy simulator, with an optional
/// victim (exclusive) organization for the last level — the organization
/// of the paper's CLX/Rome L3s: memory fills bypass the LLC, lines enter
/// it only as L2 victims, and LLC hits migrate the line inward.
class CacheHierarchySim {
public:
  /// Builds a hierarchy from explicit level configs (innermost first).
  /// \p VictimLLC selects the exclusive last-level organization.
  explicit CacheHierarchySim(std::vector<CacheSimLevelConfig> Levels,
                             bool VictimLLC = false);

  /// Builds a hierarchy mirroring a machine model's caches.  When
  /// \p PerCoreShare is true, shared levels are scaled down to the slice
  /// available to one core (size / SharingCores), modeling the effective
  /// capacity seen by one core when all cores are active.  The machine's
  /// last-level Victim flag selects the exclusive organization when
  /// \p HonorVictim is set.
  static CacheHierarchySim fromMachine(const MachineModel &M,
                                       bool PerCoreShare = false,
                                       bool HonorVictim = false);

  bool victimLLC() const { return VictimLLC; }

  /// Simulates a memory access of \p SizeBytes at \p ByteAddr.
  void access(uint64_t ByteAddr, unsigned SizeBytes, bool IsWrite);

  /// Convenience for 8-byte double accesses.
  void load(uint64_t ByteAddr) { access(ByteAddr, 8, false); }
  void store(uint64_t ByteAddr) { access(ByteAddr, 8, true); }

  /// Flushes all dirty lines outward (end-of-run accounting) and returns
  /// the per-boundary traffic.  Does not reset statistics.
  HierarchyTraffic traffic() const;

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  const CacheLevelSim &level(unsigned I) const { return Levels[I]; }
  CacheLevelSim &level(unsigned I) { return Levels[I]; }

  unsigned lineBytes() const { return LineBytes; }

  /// Drops all cached lines and statistics.
  void reset();

private:
  void accessLine(uint64_t LineAddr, bool IsWrite);
  void accessLineVictim(uint64_t LineAddr, bool IsWrite);

  std::vector<CacheLevelSim> Levels;
  unsigned LineBytes = 64;
  bool VictimLLC = false;
  unsigned long long MemFillLines = 0;      ///< Lines loaded from memory.
  unsigned long long MemWritebackLines = 0; ///< Lines written to memory.
};

} // namespace ys

#endif // YS_CACHESIM_CACHESIM_H
