//===- cachesim/StencilTrace.h - Stencil address-trace replay ----*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the address stream of a stencil sweep (or a temporally blocked
/// multi-sweep run) through the cache simulator, mirroring the loop order
/// of KernelExecutor.  Grids are laid out synthetically — each grid starts
/// at its own 1 GiB-aligned base with the scalar row-major layout — so no
/// real memory is allocated.  The resulting per-level traffic is the
/// "measured" counterpart to the ECM model's layer-condition prediction
/// (the paper's LIKWID validation).
///
//===----------------------------------------------------------------------===//

#ifndef YS_CACHESIM_STENCILTRACE_H
#define YS_CACHESIM_STENCILTRACE_H

#include "cachesim/CacheSim.h"
#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"

namespace ys {

/// Per-LUP traffic derived from a simulated run.
struct TraceTraffic {
  /// Bytes per lattice update crossing each boundary; index 0 == L1<->L2,
  /// last == memory.
  std::vector<double> BytesPerLup;
  unsigned long long Lups = 0;
};

/// Replays stencil sweeps through a cache hierarchy.
class StencilTraceRunner {
public:
  /// \p Halo defaults to the stencil radius.
  StencilTraceRunner(StencilSpec Spec, GridDims Dims, KernelConfig Config,
                     int Halo = -1);

  /// Replays \p Sweeps full out-of-place sweeps (ping-ponging two buffers
  /// when the stencil has one input; distinct input grids otherwise) and
  /// returns per-boundary traffic.  The hierarchy starts cold; traffic is
  /// averaged over all sweeps, so pass Sweeps >= 2 for warm numbers when
  /// grids fit in a cache level.
  TraceTraffic run(CacheHierarchySim &Sim, int Sweeps = 1) const;

  /// Replays a temporally blocked run of WavefrontDepth sweeps using the
  /// same frontier schedule as KernelExecutor::wavefrontMacroStep.
  TraceTraffic runWavefront(CacheHierarchySim &Sim) const;

  /// Total LUPs of one sweep.
  long lupsPerSweep() const { return Dims.lups(); }

private:
  uint64_t addrOf(unsigned GridId, long X, long Y, long Z) const;
  void traceRange(CacheHierarchySim &Sim, unsigned InGrid, unsigned OutGrid,
                  long Z0, long Z1, long Y0, long Y1, long X0,
                  long X1) const;
  void traceBlockedSweep(CacheHierarchySim &Sim, unsigned InGridBase,
                         unsigned OutGrid) const;

  StencilSpec Spec;
  GridDims Dims;
  KernelConfig Config;
  int Halo;
  long PadX, PadY, PadZ;
};

} // namespace ys

#endif // YS_CACHESIM_STENCILTRACE_H
