//===- cachesim/StencilTrace.h - Stencil address-trace replay ----*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the address stream of a stencil sweep (or a temporally blocked
/// multi-sweep run) through the cache simulator, mirroring the loop order
/// of KernelExecutor.  Grids are laid out synthetically — each grid starts
/// at its own 1 GiB-aligned base with the scalar row-major layout — so no
/// real memory is allocated.  The resulting per-level traffic is the
/// "measured" counterpart to the ECM model's layer-condition prediction
/// (the paper's LIKWID validation).
///
//===----------------------------------------------------------------------===//

#ifndef YS_CACHESIM_STENCILTRACE_H
#define YS_CACHESIM_STENCILTRACE_H

#include "cachesim/CacheSim.h"
#include "codegen/KernelConfig.h"
#include "stencil/StencilSpec.h"

#include <optional>
#include <string>

namespace ys {

/// How a trace replay covers the iteration space.
///
///  * Full    — exact replay of every lattice update (bit-identical to the
///              historical simulator behavior).
///  * Sampled — replay only enough execution-order sample units (z-planes,
///              z-block rows, or (y,x) block columns, matching the loop
///              structure) to reach the steady state, then extrapolate the
///              per-boundary byte rates across the remaining iteration
///              space along the layer-condition staircase (E14).  Falls
///              back to exact replay when the regime classification is
///              ambiguous (TraceTraffic::FallbackReason says why).
///  * Auto    — alias for Sampled inside the runner; consumers (tuning
///              service, driver) use it to mean "sample when the plan says
///              it is both safe and worthwhile".
enum class SimMode { Full, Sampled, Auto };

/// "full" | "sampled" | "auto".
const char *simModeName(SimMode Mode);
std::optional<SimMode> parseSimMode(const std::string &Name);

/// Per-LUP traffic derived from a simulated run.
struct TraceTraffic {
  /// Bytes per lattice update crossing each boundary; index 0 == L1<->L2,
  /// last == memory.
  std::vector<double> BytesPerLup;
  unsigned long long Lups = 0;

  /// True when the numbers come from a sampled replay + extrapolation.
  bool Sampled = false;

  /// Lattice updates actually replayed through the simulator (== Lups for
  /// full replays; the sampled speedup is Lups / ReplayedLups).
  unsigned long long ReplayedLups = 0;

  /// Why a requested sampled replay fell back to exact simulation
  /// (empty when sampling ran or was never requested).
  std::string FallbackReason;
};

/// Replays stencil sweeps through a cache hierarchy.
class StencilTraceRunner {
public:
  /// \p Halo defaults to the stencil radius.
  StencilTraceRunner(StencilSpec Spec, GridDims Dims, KernelConfig Config,
                     int Halo = -1);

  /// Replays \p Sweeps full out-of-place sweeps (ping-ponging two buffers
  /// when the stencil has one input; distinct input grids otherwise) and
  /// returns per-boundary traffic.  The hierarchy starts cold; traffic is
  /// averaged over all sweeps, so pass Sweeps >= 2 for warm numbers when
  /// grids fit in a cache level.
  TraceTraffic run(CacheHierarchySim &Sim, int Sweeps = 1) const;

  /// Like run(), with an explicit coverage mode.  SimMode::Full is
  /// bit-identical to run(Sim, Sweeps); Sampled/Auto replay only the
  /// planSampled() prefix and extrapolate (the streaming regime makes
  /// sweeps independent, so one sampled sweep predicts them all), falling
  /// back to exact replay when the plan declines.
  TraceTraffic run(CacheHierarchySim &Sim, int Sweeps, SimMode Mode) const;

  /// Replays a temporally blocked run of WavefrontDepth sweeps using the
  /// same frontier schedule as KernelExecutor::wavefrontMacroStep.
  TraceTraffic runWavefront(CacheHierarchySim &Sim) const;

  /// Replays one temporal macro step under the configured schedule,
  /// mirroring the matching KernelExecutor macro step (wavefront frontier
  /// train, two-phase diamond tiles, or per-plane deep-temporal pipeline).
  /// Falls back to run(Sim, 1) for non-temporal configs so callers can
  /// dispatch unconditionally.
  TraceTraffic runTemporal(CacheHierarchySim &Sim) const;

  /// How the iteration space decomposes into execution-order sample units.
  enum class SampleAxis {
    ZPlane, ///< Unblocked (or only x-blocked): unit = one z-plane.
    ZRow,   ///< z-blocked: unit = one z-block row (all (y,x) blocks of it).
    Column, ///< y/x-blocked, z unblocked: unit = one (y,x) block column.
  };

  /// The sampled-replay plan for one hierarchy: how many execution-order
  /// units to replay for cache warmup and for the steady-state
  /// measurement window, or why sampling must be declined.
  struct SamplePlan {
    bool UseSampling = false;
    std::string Reason; ///< Fallback reason when !UseSampling.
    SampleAxis Axis = SampleAxis::ZPlane;
    long UnitCount = 0;    ///< Units in one full sweep.
    long UnitLups = 0;     ///< Nominal LUPs per unit.
    long WarmupUnits = 0;  ///< Units replayed before the checkpoint.
    long MeasureUnits = 0; ///< Units in the measurement window.
    /// LUPs a sampled replay will push through the simulator.
    long replayLups() const {
      return (WarmupUnits + MeasureUnits) * UnitLups;
    }
  };

  /// Decides whether a sampled replay of this runner against \p Sim is
  /// trustworthy: the layer-condition regime must be unambiguous
  /// (classified with a machine model synthesized from the simulated
  /// levels) and the sweep must contain enough units to both warm the
  /// hierarchy and measure a steady window.  Pure planning — no replay.
  SamplePlan planSampled(const CacheHierarchySim &Sim) const;

  /// Total LUPs of one sweep.
  long lupsPerSweep() const { return Dims.lups(); }

private:
  uint64_t addrOf(unsigned GridId, long X, long Y, long Z) const;
  void traceRange(CacheHierarchySim &Sim, unsigned InGrid, unsigned OutGrid,
                  long Z0, long Z1, long Y0, long Y1, long X0,
                  long X1) const;
  /// Time level \p S of the two-buffer parity scheme over z in [Z0, Z1)
  /// (grid 0 holds even levels), blocked over (y, x) — the trace twin of
  /// KernelExecutor::runLevelSlab.
  void traceLevelSlab(CacheHierarchySim &Sim, int S, long Z0, long Z1,
                      const BlockSize &B) const;
  TraceTraffic runDiamond(CacheHierarchySim &Sim) const;
  TraceTraffic runDeepTemporal(CacheHierarchySim &Sim) const;
  TraceTraffic finishTemporal(CacheHierarchySim &Sim, int Depth) const;
  void traceBlockedSweep(CacheHierarchySim &Sim, unsigned InGridBase,
                         unsigned OutGrid) const;
  long traceUnits(CacheHierarchySim &Sim, unsigned InGridBase,
                  unsigned OutGrid, const SamplePlan &Plan, long UnitFrom,
                  long UnitTo) const;
  TraceTraffic runSampled(CacheHierarchySim &Sim, int Sweeps,
                          const SamplePlan &Plan) const;

  StencilSpec Spec;
  GridDims Dims;
  KernelConfig Config;
  int Halo;
  long PadX, PadY, PadZ;
};

} // namespace ys

#endif // YS_CACHESIM_STENCILTRACE_H
