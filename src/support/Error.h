//===- support/Error.h - Lightweight error handling -------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling utilities modeled after llvm::Error/Expected but
/// without the unchecked-error machinery.  The library does not use C++
/// exceptions; fallible operations return Expected<T> or Error.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_ERROR_H
#define YS_SUPPORT_ERROR_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace ys {

/// An error carrying a human-readable message.  A default-constructed Error
/// represents success.
class Error {
public:
  Error() = default;

  /// Creates a failure value with the given message.
  static Error failure(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    return E;
  }

  /// Creates a success value.
  static Error success() { return Error(); }

  /// Returns true if this represents a failure.
  explicit operator bool() const { return Message.has_value(); }

  /// Returns the failure message.  Must only be called on failure values.
  const std::string &message() const {
    assert(Message && "message() called on a success value");
    return *Message;
  }

private:
  std::optional<std::string> Message;
};

/// Either a value of type T or an Error.  Mirrors llvm::Expected in spirit.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Error E) : Err(std::move(E)) {
    assert(Err && "constructing Expected from a success Error");
  }

  /// Returns true on success.
  explicit operator bool() const { return Value.has_value(); }

  /// Accesses the contained value.  Must only be called on success.
  T &operator*() {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Extracts the error.  Must only be called on failure.
  const Error &takeError() const {
    assert(Err && "takeError() on a success value");
    return Err;
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Aborts with a message.  Used for violated invariants that must be caught
/// even in release builds (mirrors llvm::report_fatal_error).
[[noreturn]] inline void reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}

} // namespace ys

#endif // YS_SUPPORT_ERROR_H
