//===- support/Random.h - Deterministic PRNG ---------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic PRNG.  Used to seed grids and to drive the
/// random tuning strategy; deterministic across platforms so tests and
/// benchmark tables are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_RANDOM_H
#define YS_SUPPORT_RANDOM_H

#include <cstdint>

namespace ys {

/// SplitMix64 generator.  Small state, excellent statistical quality for the
/// purposes of this library, and fully deterministic.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Returns an integer uniformly distributed in [0, Bound).  Bound > 0.
  uint64_t nextBounded(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

} // namespace ys

#endif // YS_SUPPORT_RANDOM_H
