//===- support/AlignedBuffer.h - Aligned heap storage ------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line / SIMD aligned heap buffer used by Grid storage so that folded
/// vector layouts start on natural SIMD boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_ALIGNEDBUFFER_H
#define YS_SUPPORT_ALIGNEDBUFFER_H

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace ys {

/// A heap buffer of T aligned to \p Alignment bytes.  Move-only.
template <typename T, size_t Alignment = 64> class AlignedBuffer {
public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t Count) { allocate(Count); }

  AlignedBuffer(const AlignedBuffer &) = delete;
  AlignedBuffer &operator=(const AlignedBuffer &) = delete;

  AlignedBuffer(AlignedBuffer &&Other) noexcept
      : Data(std::exchange(Other.Data, nullptr)),
        Count(std::exchange(Other.Count, 0)) {}

  AlignedBuffer &operator=(AlignedBuffer &&Other) noexcept {
    if (this != &Other) {
      release();
      Data = std::exchange(Other.Data, nullptr);
      Count = std::exchange(Other.Count, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocates to hold \p NewCount elements; contents are not preserved.
  void allocate(size_t NewCount) {
    release();
    if (NewCount == 0)
      return;
    size_t Bytes = NewCount * sizeof(T);
    // aligned_alloc requires the size to be a multiple of the alignment.
    size_t Rounded = (Bytes + Alignment - 1) / Alignment * Alignment;
    Data = static_cast<T *>(std::aligned_alloc(Alignment, Rounded));
    assert(Data && "aligned_alloc failed");
    Count = NewCount;
  }

  /// Sets all elements to zero bytes.
  void zero() {
    if (Data)
      std::memset(Data, 0, Count * sizeof(T));
  }

  T *data() { return Data; }
  const T *data() const { return Data; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](size_t I) {
    assert(I < Count && "AlignedBuffer index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "AlignedBuffer index out of range");
    return Data[I];
  }

private:
  void release() {
    std::free(Data);
    Data = nullptr;
    Count = 0;
  }

  T *Data = nullptr;
  size_t Count = 0;
};

} // namespace ys

#endif // YS_SUPPORT_ALIGNEDBUFFER_H
