//===- support/PoolStats.h - Thread-pool execution counters ------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread execution counters snapshotted from a ThreadPool: how many
/// tile tasks each thread ran, how many of those it stole from another
/// thread's queue, and how long it was busy inside tasks.  The tuner's
/// measurement harness and the scaling benches print these so load
/// imbalance and scheduler regressions are observable instead of showing
/// up only as unexplained MLUP/s noise.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_POOLSTATS_H
#define YS_SUPPORT_POOLSTATS_H

#include <string>
#include <vector>

namespace ys {

/// A snapshot of one pool's per-thread counters since the last reset.
struct PoolStats {
  struct Thread {
    unsigned long long TasksRun = 0;    ///< Tiles executed by this thread.
    unsigned long long TasksStolen = 0; ///< Subset taken from another deque.
    double BusySeconds = 0.0;           ///< Wall time spent inside tasks.
  };

  std::vector<Thread> Threads; ///< Indexed by pool thread id (0 = master).

  unsigned long long totalRun() const {
    unsigned long long N = 0;
    for (const Thread &T : Threads)
      N += T.TasksRun;
    return N;
  }

  unsigned long long totalStolen() const {
    unsigned long long N = 0;
    for (const Thread &T : Threads)
      N += T.TasksStolen;
    return N;
  }

  double totalBusySeconds() const {
    double S = 0.0;
    for (const Thread &T : Threads)
      S += T.BusySeconds;
    return S;
  }

  /// Number of threads that executed at least one task.
  unsigned activeThreads() const {
    unsigned N = 0;
    for (const Thread &T : Threads)
      if (T.TasksRun > 0)
        ++N;
    return N;
  }

  /// One-line summary: "tiles=128 stolen=9 active=8/8 busy=0.42s".
  std::string str() const;
};

} // namespace ys

#endif // YS_SUPPORT_POOLSTATS_H
