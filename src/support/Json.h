//===- support/Json.h - Minimal JSON writing/scanning -----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON helpers shared by the structured-trace facility and the
/// persistent tuning cache.  Both use *JSON lines* (one flat object per
/// line, string/number values only), so a full parser is unnecessary: this
/// header provides string escaping, an append-only object writer, and
/// field extraction from a single-line flat object.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_JSON_H
#define YS_SUPPORT_JSON_H

#include <optional>
#include <string>

namespace ys {

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).  Does not add the surrounding quotes.
std::string jsonEscape(const std::string &Str);

/// Inverse of jsonEscape for the subset it produces.
std::string jsonUnescape(const std::string &Str);

/// Builds one flat JSON object incrementally: {"a":"x","b":1.5,...}.
/// Field order is insertion order.  Values are strings, doubles, or
/// integers; nothing nests.
class JsonObjectWriter {
public:
  JsonObjectWriter() : Out("{") {}

  JsonObjectWriter &field(const std::string &Key, const std::string &Value);
  JsonObjectWriter &field(const std::string &Key, const char *Value);
  JsonObjectWriter &field(const std::string &Key, bool Value);
  JsonObjectWriter &field(const std::string &Key, double Value);
  JsonObjectWriter &field(const std::string &Key, long Value);
  JsonObjectWriter &field(const std::string &Key, unsigned long long Value);

  /// Finishes and returns the object text (single line, no newline).
  std::string str() const { return Out + "}"; }

private:
  void key(const std::string &Key);
  std::string Out;
  bool First = true;
};

/// Extracts the string value of \p Key from a single-line flat JSON object;
/// std::nullopt when the key is absent or not a string.
std::optional<std::string> jsonStringField(const std::string &Line,
                                           const std::string &Key);

/// Extracts the numeric value of \p Key; std::nullopt when absent or
/// non-numeric.
/// Extracts an unquoted true/false value.
std::optional<bool> jsonBoolField(const std::string &Line,
                                  const std::string &Key);

std::optional<double> jsonNumberField(const std::string &Line,
                                      const std::string &Key);

/// Structural well-formedness check for the flat single-line objects this
/// module emits: starts with '{', ends with '}', quotes balanced outside
/// escapes, braces not nested.  Used by tests to validate trace output.
bool jsonLooksWellFormed(const std::string &Line);

} // namespace ys

#endif // YS_SUPPORT_JSON_H
