//===- support/StringUtils.h - String formatting helpers --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus small string helpers used
/// throughout the library (joins, human-readable sizes, fixed-width floats).
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_STRINGUTILS_H
#define YS_SUPPORT_STRINGUTILS_H

#include "support/Error.h"

#include <cstdarg>
#include <string>
#include <vector>

namespace ys {

/// Formats like printf and returns the result as a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// va_list variant of format().
std::string formatV(const char *Fmt, va_list Args);

/// Joins the given strings with a separator.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Renders a byte count as a human-readable string, e.g. "32 KiB".
std::string humanBytes(unsigned long long Bytes);

/// Renders a double with the given precision, trimming trailing zeros.
std::string trimmedDouble(double Value, int Precision = 3);

/// Renders a finite double with the shortest %g precision (15..17
/// significant digits) that parses back to the exact same bit pattern, so
/// emitted source literals round-trip: "0.5" stays "0.5" while 1.0/3.0
/// becomes "0.33333333333333331" and 1e-12 keeps its magnitude.
std::string roundTripDouble(double Value);

/// Stable 64-bit FNV-1a fingerprint of a byte string, rendered as 16 hex
/// digits.  Stable across platforms and runs (unlike std::hash); the
/// shared implementation behind TuningCache::fingerprintRaw and the JIT
/// object-cache keys.
std::string fingerprintRaw64(const std::string &Canonical);

/// \name Checked numeric parsing.
///
/// The std::atoi/atol family silently maps garbage ("abc", "", "12x"),
/// overflow, and unexpected signs to 0 or a truncated value.  These
/// parsers accept exactly one complete number — no leading whitespace, no
/// trailing characters — and report everything else as an Error, so a
/// mistyped CLI flag becomes a diagnostic instead of a silent zero.
/// @{

/// Parses a signed decimal integer.  Rejects empty strings, leading
/// whitespace, trailing garbage, and values outside [long min, long max].
Expected<long> parseLong(const std::string &Str);

/// Parses a non-negative decimal integer.  Additionally rejects any '-'
/// sign (strtoull would silently wrap negatives to huge values).
Expected<unsigned long long> parseUnsigned(const std::string &Str);

/// Parses a finite floating-point number (decimal or exponent notation).
/// Rejects empty strings, leading whitespace, trailing garbage, overflow,
/// and non-finite spellings ("inf", "nan").
Expected<double> parseDouble(const std::string &Str);

/// @}

/// Returns true if \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

/// Splits a string on a separator character, keeping empty fields.
std::vector<std::string> split(const std::string &Str, char Sep);

/// Returns \p Str converted to lower case (ASCII only).
std::string toLower(std::string Str);

} // namespace ys

#endif // YS_SUPPORT_STRINGUTILS_H
