//===- support/Table.h - Aligned text table printer --------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text table renderer used by the benchmark harnesses to print paper-style
/// tables (one bench binary per paper table/figure).
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_TABLE_H
#define YS_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace ys {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends a data row.  Rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table, headers first, with a rule under the header.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows; // empty vector == separator
};

} // namespace ys

#endif // YS_SUPPORT_TABLE_H
