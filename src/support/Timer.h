//===- support/Timer.h - Wall-clock timing helpers ---------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-clock stopwatch plus a repeat-and-take-the-median measurement
/// helper used by the measuring tuning strategies and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_TIMER_H
#define YS_SUPPORT_TIMER_H

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

namespace ys {

/// A simple steady-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Statistics of repeated timing runs, in seconds.
struct TimingStats {
  double Min = 0;    ///< Least-noise sample; preferred for perf reporting.
  double Median = 0;
  double Mean = 0;
  double Max = 0;
  unsigned Repeats = 0;
};

/// Smallest duration measureSeconds() will report for one sample.  A
/// steady_clock read below its tick granularity can come back as exactly
/// zero; dividing by such a sample produces inf MLUP/s and poisons any
/// min/median over the repeats, so samples are floored at one nanosecond
/// (the finest tick of every supported libstdc++ steady_clock).
inline constexpr double kMinMeasurableSeconds = 1e-9;

/// Runs \p Fn \p Repeats times and returns timing statistics.  One untimed
/// warm-up run is performed first.  Samples are floored at
/// kMinMeasurableSeconds (see above).
inline TimingStats measureSeconds(const std::function<void()> &Fn,
                                  unsigned Repeats = 3) {
  if (Repeats == 0)
    Repeats = 1;
  Fn(); // Warm-up.
  std::vector<double> Samples;
  Samples.reserve(Repeats);
  for (unsigned I = 0; I < Repeats; ++I) {
    Timer T;
    Fn();
    Samples.push_back(std::max(T.seconds(), kMinMeasurableSeconds));
  }
  std::sort(Samples.begin(), Samples.end());
  TimingStats S;
  S.Repeats = Repeats;
  S.Min = Samples.front();
  S.Max = Samples.back();
  S.Median = Samples[Samples.size() / 2];
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Samples.size());
  return S;
}

} // namespace ys

#endif // YS_SUPPORT_TIMER_H
