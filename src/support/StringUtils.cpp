//===- support/StringUtils.cpp - String formatting helpers ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ys;

std::string ys::formatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed < 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string ys::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string ys::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string ys::humanBytes(unsigned long long Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < 5) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return format("%llu B", Bytes);
  return format("%.1f %s", Value, Units[Unit]);
}

std::string ys::trimmedDouble(double Value, int Precision) {
  std::string S = format("%.*f", Precision, Value);
  size_t Dot = S.find('.');
  if (Dot == std::string::npos)
    return S;
  size_t Last = S.find_last_not_of('0');
  if (Last == Dot)
    --Last;
  S.erase(Last + 1);
  return S;
}

std::string ys::fingerprintRaw64(const std::string &Canonical) {
  unsigned long long H = 1469598103934665603ull;
  for (unsigned char C : Canonical) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return format("%016llx", H);
}

std::string ys::roundTripDouble(double Value) {
  for (int Precision = 15; Precision <= 17; ++Precision) {
    std::string S = format("%.*g", Precision, Value);
    if (std::strtod(S.c_str(), nullptr) == Value)
      return S;
  }
  return format("%.17g", Value); // Non-finite values land here.
}

namespace {

/// Shared strictness checks: the strtoX family skips leading whitespace
/// and stops at the first bad character, both of which would let garbage
/// through.  Returns an error message, or "" when the string is a clean
/// candidate for strtoX.
std::string precheckNumber(const std::string &Str) {
  if (Str.empty())
    return "empty string";
  if (std::isspace(static_cast<unsigned char>(Str[0])))
    return "leading whitespace";
  return std::string();
}

} // namespace

Expected<long> ys::parseLong(const std::string &Str) {
  std::string Pre = precheckNumber(Str);
  if (!Pre.empty())
    return Error::failure(format("'%s' is not an integer (%s)", Str.c_str(),
                                 Pre.c_str()));
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Str.c_str(), &End, 10);
  if (End == Str.c_str() || *End != '\0')
    return Error::failure(format("'%s' is not an integer", Str.c_str()));
  if (errno == ERANGE)
    return Error::failure(format("'%s' is out of range", Str.c_str()));
  return V;
}

Expected<unsigned long long> ys::parseUnsigned(const std::string &Str) {
  std::string Pre = precheckNumber(Str);
  if (!Pre.empty())
    return Error::failure(format("'%s' is not a non-negative integer (%s)",
                                 Str.c_str(), Pre.c_str()));
  if (Str.find('-') != std::string::npos)
    return Error::failure(
        format("'%s' is not a non-negative integer", Str.c_str()));
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Str.c_str(), &End, 10);
  if (End == Str.c_str() || *End != '\0')
    return Error::failure(
        format("'%s' is not a non-negative integer", Str.c_str()));
  if (errno == ERANGE)
    return Error::failure(format("'%s' is out of range", Str.c_str()));
  return V;
}

Expected<double> ys::parseDouble(const std::string &Str) {
  std::string Pre = precheckNumber(Str);
  if (!Pre.empty())
    return Error::failure(format("'%s' is not a number (%s)", Str.c_str(),
                                 Pre.c_str()));
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Str.c_str(), &End);
  if (End == Str.c_str() || *End != '\0')
    return Error::failure(format("'%s' is not a number", Str.c_str()));
  if (errno == ERANGE && (V == HUGE_VAL || V == -HUGE_VAL))
    return Error::failure(format("'%s' is out of range", Str.c_str()));
  if (!std::isfinite(V))
    return Error::failure(format("'%s' is not a finite number", Str.c_str()));
  return V;
}

bool ys::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}

std::vector<std::string> ys::split(const std::string &Str, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Str.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Str.substr(Start));
      return Parts;
    }
    Parts.push_back(Str.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string ys::toLower(std::string Str) {
  for (char &C : Str)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Str;
}
