//===- support/StringUtils.cpp - String formatting helpers ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace ys;

std::string ys::formatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed < 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string ys::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string ys::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string ys::humanBytes(unsigned long long Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < 5) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return format("%llu B", Bytes);
  return format("%.1f %s", Value, Units[Unit]);
}

std::string ys::trimmedDouble(double Value, int Precision) {
  std::string S = format("%.*f", Precision, Value);
  size_t Dot = S.find('.');
  if (Dot == std::string::npos)
    return S;
  size_t Last = S.find_last_not_of('0');
  if (Last == Dot)
    --Last;
  S.erase(Last + 1);
  return S;
}

std::string ys::fingerprintRaw64(const std::string &Canonical) {
  unsigned long long H = 1469598103934665603ull;
  for (unsigned char C : Canonical) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return format("%016llx", H);
}

std::string ys::roundTripDouble(double Value) {
  for (int Precision = 15; Precision <= 17; ++Precision) {
    std::string S = format("%.*g", Precision, Value);
    if (std::strtod(S.c_str(), nullptr) == Value)
      return S;
  }
  return format("%.17g", Value); // Non-finite values land here.
}

bool ys::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}

std::vector<std::string> ys::split(const std::string &Str, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Str.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Str.substr(Start));
      return Parts;
    }
    Parts.push_back(Str.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string ys::toLower(std::string Str) {
  for (char &C : Str)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Str;
}
