//===- support/ThreadPool.h - Simple parallel-for pool -----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal thread pool exposing a blocking parallelFor.  It replaces the
/// OpenMP runtime used by YASK/YaskSite; the kernel executor decomposes the
/// outermost blocked loop over this pool exactly as an `omp parallel for`
/// with static scheduling would.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_THREADPOOL_H
#define YS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ys {

/// A fixed-size pool of worker threads with a fork-join parallelFor.
///
/// Work items are contiguous index ranges handed to workers in static
/// round-robin chunks.  parallelFor blocks until all indices are processed.
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (>= 1).  NumThreads == 1 runs
  /// all work inline on the calling thread.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumThreads; }

  /// Runs Fn(I) for every I in [Begin, End), partitioned statically across
  /// the pool (including the calling thread).  Blocks until complete.
  void parallelFor(long Begin, long End,
                   const std::function<void(long)> &Fn);

  /// Runs Fn(ThreadIdx, Begin, End) once per participating thread with that
  /// thread's contiguous sub-range.  Useful when per-thread setup matters.
  void parallelForChunked(
      long Begin, long End,
      const std::function<void(unsigned, long, long)> &Fn);

private:
  struct Task {
    // Chunked task state for one parallelFor invocation.
    std::function<void(unsigned, long, long)> Fn;
    long Begin = 0;
    long End = 0;
    unsigned Parts = 1;
    unsigned Generation = 0;
  };

  void workerLoop(unsigned Index);
  static void runChunk(const Task &T, unsigned PartIdx);

  unsigned NumThreads;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable WakeMaster;
  Task Current;
  unsigned Remaining = 0;
  bool ShuttingDown = false;
};

} // namespace ys

#endif // YS_SUPPORT_THREADPOOL_H
