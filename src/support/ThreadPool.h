//===- support/ThreadPool.h - Tile work-stealing pool ------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool scheduling 2-D (z,y) tile grids with work
/// stealing.  It replaces the OpenMP runtime used by YASK/YaskSite: the
/// kernel executor enumerates (zBlock, yBlock) cache-block tiles and hands
/// them to parallelForTiles, which seeds each participating thread's deque
/// with a contiguous block of tiles (preserving z locality, and matching
/// the first-touch page placement done by Grid) and lets idle threads
/// steal from the tail of busy threads' deques.  Static chunking — the
/// previous scheduler, still available via parallelForChunked — leaves
/// cores idle whenever the tile costs are skewed or the tile count is not
/// a multiple of the thread count; stealing bounds that imbalance by one
/// tile.
///
/// Per-thread counters (tasks run / stolen, busy seconds) are kept and can
/// be snapshotted as a PoolStats for the tuner harness and benches.
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_THREADPOOL_H
#define YS_SUPPORT_THREADPOOL_H

#include "support/PoolStats.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ys {

/// A fixed-size pool of worker threads with fork-join tile scheduling.
///
/// All parallel entry points block until the submitted work is complete.
/// Nested calls from inside a task are detected and serialized on the
/// calling thread (the OpenMP "nested parallelism off" behavior), so
/// reentrant use is safe instead of deadlocking.
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (>= 1).  NumThreads == 1 runs
  /// all work inline on the calling thread.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumThreads; }

  /// Thread count from the YS_THREADS environment variable when set to a
  /// positive integer, otherwise std::thread::hardware_concurrency().
  static unsigned defaultThreadCount();

  /// Runs Fn(ThreadIdx, ZTile, YTile) exactly once for every tile in
  /// [0, NumZTiles) x [0, NumYTiles).  Tiles are seeded as contiguous
  /// blocks onto per-thread deques and rebalanced by work stealing;
  /// ThreadIdx is the pool index of the thread that actually executes the
  /// tile.  At most \p MaxWorkers threads participate (0 = all).  Blocks
  /// until every tile has run.
  void parallelForTiles(long NumZTiles, long NumYTiles,
                        const std::function<void(unsigned, long, long)> &Fn,
                        unsigned MaxWorkers = 0);

  /// Runs Fn(ThreadIdx, Begin, End) for a static partition of [Begin, End)
  /// into at most min(MaxParts or NumThreads, range) contiguous chunks, one
  /// task per chunk (a 1-D wrapper over parallelForTiles).  ThreadIdx is
  /// the executing thread, which under stealing may differ from the chunk
  /// index.  Blocks until complete.
  void parallelForChunked(long Begin, long End,
                          const std::function<void(unsigned, long, long)> &Fn,
                          unsigned MaxParts = 0);

  /// Runs Fn(I) for every I in [Begin, End), partitioned across the pool.
  /// Blocks until complete.
  void parallelFor(long Begin, long End,
                   const std::function<void(long)> &Fn);

  /// Snapshot of the per-thread counters accumulated since construction or
  /// the last resetStats().  Call while no parallel region is running.
  PoolStats stats() const;

  /// Zeroes all per-thread counters.
  void resetStats();

private:
  /// One parallelForTiles invocation, shared with the workers.
  struct Job {
    std::function<void(unsigned, long, long)> Fn;
    long NumYTiles = 1;
    unsigned Participants = 1;
    unsigned Generation = 0;
  };

  /// Per-thread tile queue.  The owner pops from the front (ascending tile
  /// order = z locality); thieves steal from the back.
  struct Deque {
    std::mutex M;
    std::deque<long> Tiles;
  };

  /// Per-thread counters, padded to avoid false sharing; each thread only
  /// writes its own slot.
  struct alignas(64) Counters {
    std::atomic<unsigned long long> TasksRun{0};
    std::atomic<unsigned long long> TasksStolen{0};
    std::atomic<long long> BusyNanos{0};
  };

  void workerLoop(unsigned Index);
  /// Drains SelfIdx's deque then steals until no tiles remain; returns the
  /// number of tiles executed.
  long workOn(const Job &J, unsigned SelfIdx);
  bool popOwn(unsigned SelfIdx, long &Tile);
  bool stealFrom(unsigned SelfIdx, unsigned Participants, long &Tile);
  void runTilesInline(long NumZTiles, long NumYTiles,
                      const std::function<void(unsigned, long, long)> &Fn);

  unsigned NumThreads;
  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<Deque>> Deques;
  std::vector<std::unique_ptr<Counters>> Stats;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable WakeMaster;
  Job Current;
  unsigned ActiveWorkers = 0; ///< Participating workers not yet joined.
  bool ShuttingDown = false;
};

} // namespace ys

#endif // YS_SUPPORT_THREADPOOL_H
