//===- support/Trace.cpp - Structured JSON-lines tracing -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace ys;

std::atomic<bool> Trace::EnabledFlag{false};

namespace {

/// All mutable trace state behind one mutex; EnabledFlag mirrors whether
/// File is non-null so hot paths can skip the lock entirely.
struct TraceState {
  std::mutex Mu;
  std::FILE *File = nullptr;
  Timer Epoch;
  std::map<std::string, double> Counters;
  bool EnvChecked = false;
  bool AtExitRegistered = false;
};

TraceState &state() {
  static TraceState S;
  return S;
}

/// Must be called with the lock held.
void flushCountersLocked(TraceState &S) {
  if (!S.File || S.Counters.empty())
    return;
  JsonObjectWriter Obj;
  Obj.field("ts", S.Epoch.seconds()).field("phase", "counters");
  for (const auto &[Name, Value] : S.Counters)
    Obj.field(Name, Value);
  std::fprintf(S.File, "%s\n", Obj.str().c_str());
  S.Counters.clear();
}

void closeFileLocked(TraceState &S) {
  if (!S.File)
    return;
  flushCountersLocked(S);
  std::fclose(S.File);
  S.File = nullptr;
}

} // namespace

bool Trace::openFile(const std::string &Path) {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  closeFileLocked(S);
  EnabledFlag.store(false, std::memory_order_relaxed);
  S.File = std::fopen(Path.c_str(), "a");
  if (!S.File) {
    std::fprintf(stderr, "warning: YS_TRACE: cannot open '%s'\n",
                 Path.c_str());
    return false;
  }
  S.Epoch.reset();
  if (!S.AtExitRegistered) {
    std::atexit([] { Trace::close(); });
    S.AtExitRegistered = true;
  }
  EnabledFlag.store(true, std::memory_order_relaxed);
  return true;
}

void Trace::close() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  closeFileLocked(S);
  EnabledFlag.store(false, std::memory_order_relaxed);
}

void Trace::initFromEnv() {
  TraceState &S = state();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.EnvChecked)
      return;
    S.EnvChecked = true;
    if (S.File)
      return; // A test already opened a sink explicitly.
  }
  if (const char *Path = std::getenv("YS_TRACE"))
    if (*Path)
      openFile(Path);
}

void Trace::emitLine(const std::string &JsonObject) {
  if (!enabled())
    return;
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (!S.File)
    return;
  std::fprintf(S.File, "%s\n", JsonObject.c_str());
  std::fflush(S.File);
}

void Trace::addCounter(const std::string &Name, double Delta) {
  if (!enabled())
    return;
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Counters[Name] += Delta;
}

double Trace::now() {
  if (!enabled())
    return 0.0;
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Epoch.seconds();
}
