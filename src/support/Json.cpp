//===- support/Json.cpp - Minimal JSON writing/scanning --------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace ys;

std::string ys::jsonEscape(const std::string &Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string ys::jsonUnescape(const std::string &Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (size_t I = 0; I < Str.size(); ++I) {
    if (Str[I] != '\\' || I + 1 == Str.size()) {
      Out += Str[I];
      continue;
    }
    ++I;
    switch (Str[I]) {
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u':
      if (I + 4 < Str.size()) {
        Out += static_cast<char>(
            std::strtol(Str.substr(I + 1, 4).c_str(), nullptr, 16));
        I += 4;
      }
      break;
    default:
      Out += Str[I]; // Covers \" and \\.
    }
  }
  return Out;
}

void JsonObjectWriter::key(const std::string &Key) {
  if (!First)
    Out += ",";
  First = false;
  Out += "\"" + jsonEscape(Key) + "\":";
}

JsonObjectWriter &JsonObjectWriter::field(const std::string &Key,
                                          const std::string &Value) {
  key(Key);
  Out += "\"" + jsonEscape(Value) + "\"";
  return *this;
}

JsonObjectWriter &JsonObjectWriter::field(const std::string &Key,
                                          const char *Value) {
  return field(Key, std::string(Value));
}

JsonObjectWriter &JsonObjectWriter::field(const std::string &Key, bool Value) {
  key(Key);
  Out += Value ? "true" : "false";
  return *this;
}

JsonObjectWriter &JsonObjectWriter::field(const std::string &Key,
                                          double Value) {
  key(Key);
  // %.17g round-trips doubles; JSON has no inf/nan, quote-free 0 fallback.
  if (Value != Value || Value > 1.79e308 || Value < -1.79e308)
    Out += "0";
  else
    Out += format("%.17g", Value);
  return *this;
}

JsonObjectWriter &JsonObjectWriter::field(const std::string &Key, long Value) {
  key(Key);
  Out += format("%ld", Value);
  return *this;
}

JsonObjectWriter &JsonObjectWriter::field(const std::string &Key,
                                          unsigned long long Value) {
  key(Key);
  Out += format("%llu", Value);
  return *this;
}

namespace {

/// Finds the start of the value of "Key": in \p Line, skipping string
/// contents so a key name inside a value cannot match.  Returns npos when
/// the key is absent.
size_t findValueStart(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + jsonEscape(Key) + "\":";
  bool InString = false;
  for (size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"') {
      if (Line.compare(I, Needle.size(), Needle) == 0)
        return I + Needle.size();
      InString = true;
    }
  }
  return std::string::npos;
}

} // namespace

std::optional<std::string> ys::jsonStringField(const std::string &Line,
                                               const std::string &Key) {
  size_t Start = findValueStart(Line, Key);
  if (Start == std::string::npos || Start >= Line.size() ||
      Line[Start] != '"')
    return std::nullopt;
  std::string Raw;
  for (size_t I = Start + 1; I < Line.size(); ++I) {
    if (Line[I] == '\\' && I + 1 < Line.size()) {
      Raw += Line[I];
      Raw += Line[I + 1];
      ++I;
      continue;
    }
    if (Line[I] == '"')
      return jsonUnescape(Raw);
    Raw += Line[I];
  }
  return std::nullopt; // Unterminated string.
}

std::optional<double> ys::jsonNumberField(const std::string &Line,
                                          const std::string &Key) {
  size_t Start = findValueStart(Line, Key);
  if (Start == std::string::npos || Start >= Line.size())
    return std::nullopt;
  char C = Line[Start];
  if (C != '-' && C != '+' && !std::isdigit(static_cast<unsigned char>(C)))
    return std::nullopt;
  const char *Begin = Line.c_str() + Start;
  char *End = nullptr;
  double V = std::strtod(Begin, &End);
  if (End == Begin)
    return std::nullopt;
  return V;
}

std::optional<bool> ys::jsonBoolField(const std::string &Line,
                                      const std::string &Key) {
  size_t Start = findValueStart(Line, Key);
  if (Start == std::string::npos)
    return std::nullopt;
  if (Line.compare(Start, 4, "true") == 0)
    return true;
  if (Line.compare(Start, 5, "false") == 0)
    return false;
  return std::nullopt;
}

bool ys::jsonLooksWellFormed(const std::string &Line) {
  if (Line.size() < 2 || Line.front() != '{' || Line.back() != '}')
    return false;
  bool InString = false;
  int Depth = 0;
  for (size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
      if (++Depth > 1)
        return false; // Flat objects only.
      break;
    case '}':
      if (--Depth < 0)
        return false;
      break;
    default:
      break;
    }
  }
  return !InString && Depth == 0;
}
