//===- support/ThreadPool.cpp - Simple parallel-for pool -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace ys;

ThreadPool::ThreadPool(unsigned NumThreads)
    : NumThreads(NumThreads == 0 ? 1 : NumThreads) {
  // Worker 0 is the calling thread; spawn NumThreads - 1 helpers.
  for (unsigned I = 1; I < this->NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runChunk(const Task &T, unsigned PartIdx) {
  long Total = T.End - T.Begin;
  if (Total <= 0)
    return;
  long Chunk = (Total + T.Parts - 1) / T.Parts;
  long B = T.Begin + static_cast<long>(PartIdx) * Chunk;
  long E = B + Chunk;
  if (B >= T.End)
    return;
  if (E > T.End)
    E = T.End;
  T.Fn(PartIdx, B, E);
}

void ThreadPool::workerLoop(unsigned Index) {
  unsigned SeenGeneration = 0;
  while (true) {
    Task Local;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Current.Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Current.Generation;
      Local = Current;
    }
    runChunk(Local, Index);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(Remaining > 0 && "worker finished with no outstanding work");
      if (--Remaining == 0)
        WakeMaster.notify_one();
    }
  }
}

void ThreadPool::parallelForChunked(
    long Begin, long End,
    const std::function<void(unsigned, long, long)> &Fn) {
  if (End <= Begin)
    return;
  if (NumThreads == 1) {
    Fn(0, Begin, End);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current.Fn = Fn;
    Current.Begin = Begin;
    Current.End = End;
    Current.Parts = NumThreads;
    ++Current.Generation;
    Remaining = NumThreads - 1;
  }
  WakeWorkers.notify_all();
  runChunk(Current, 0);
  std::unique_lock<std::mutex> Lock(Mutex);
  WakeMaster.wait(Lock, [&] { return Remaining == 0; });
}

void ThreadPool::parallelFor(long Begin, long End,
                             const std::function<void(long)> &Fn) {
  parallelForChunked(Begin, End, [&Fn](unsigned, long B, long E) {
    for (long I = B; I < E; ++I)
      Fn(I);
  });
}
