//===- support/ThreadPool.cpp - Tile work-stealing pool -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/StringUtils.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ys;

namespace {

/// Set while the current thread is executing inside a parallel region of
/// any pool; nested parallel calls serialize instead of deadlocking on the
/// pool's join state.
thread_local bool InParallelRegion = false;

/// Pool index of the current thread within the region it is executing
/// (0 outside any region); serialized nested calls report this index.
thread_local unsigned CurrentThreadIdx = 0;

long long nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

std::string PoolStats::str() const {
  return format("tiles=%llu stolen=%llu active=%u/%zu busy=%.3fs",
                totalRun(), totalStolen(), activeThreads(), Threads.size(),
                totalBusySeconds());
}

unsigned ThreadPool::defaultThreadCount() {
  if (const char *E = std::getenv("YS_THREADS")) {
    Expected<long> V = parseLong(E);
    if (V && *V > 0)
      return static_cast<unsigned>(*V);
    // A silently ignored YS_THREADS makes every downstream measurement
    // (and its cache fingerprint) quietly use hardware_concurrency; warn
    // once so a typo like YS_THREADS=1O is visible.
    static std::atomic<bool> Warned{false};
    if (!Warned.exchange(true))
      std::fprintf(stderr,
                   "warning: YS_THREADS='%s' is not a positive integer; "
                   "using hardware concurrency\n",
                   E);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned NumThreads)
    : NumThreads(NumThreads == 0 ? 1 : NumThreads) {
  Deques.reserve(this->NumThreads);
  Stats.reserve(this->NumThreads);
  for (unsigned I = 0; I < this->NumThreads; ++I) {
    Deques.push_back(std::make_unique<Deque>());
    Stats.push_back(std::make_unique<Counters>());
  }
  // Worker 0 is the calling thread; spawn NumThreads - 1 helpers.
  for (unsigned I = 1; I < this->NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool ThreadPool::popOwn(unsigned SelfIdx, long &Tile) {
  Deque &D = *Deques[SelfIdx];
  std::lock_guard<std::mutex> Lock(D.M);
  if (D.Tiles.empty())
    return false;
  Tile = D.Tiles.front();
  D.Tiles.pop_front();
  return true;
}

bool ThreadPool::stealFrom(unsigned SelfIdx, unsigned Participants,
                           long &Tile) {
  for (unsigned Step = 1; Step < Participants; ++Step) {
    unsigned Victim = (SelfIdx + Step) % Participants;
    Deque &D = *Deques[Victim];
    std::lock_guard<std::mutex> Lock(D.M);
    if (D.Tiles.empty())
      continue;
    Tile = D.Tiles.back();
    D.Tiles.pop_back();
    return true;
  }
  return false;
}

long ThreadPool::workOn(const Job &J, unsigned SelfIdx) {
  Counters &C = *Stats[SelfIdx];
  long Executed = 0;
  long Tile;
  while (true) {
    bool Stolen = false;
    if (!popOwn(SelfIdx, Tile)) {
      if (!stealFrom(SelfIdx, J.Participants, Tile))
        break;
      Stolen = true;
    }
    long long T0 = nowNanos();
    J.Fn(SelfIdx, Tile / J.NumYTiles, Tile % J.NumYTiles);
    C.BusyNanos.fetch_add(nowNanos() - T0, std::memory_order_relaxed);
    C.TasksRun.fetch_add(1, std::memory_order_relaxed);
    if (Stolen)
      C.TasksStolen.fetch_add(1, std::memory_order_relaxed);
    ++Executed;
  }
  return Executed;
}

void ThreadPool::workerLoop(unsigned Index) {
  unsigned SeenGeneration = 0;
  while (true) {
    Job Local;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Current.Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Current.Generation;
      if (Index >= Current.Participants)
        continue; // Not part of this job; wait for the next one.
      Local = Current; // Copy the task under the lock (workers must never
                       // touch Current once the master may be reusing it).
    }
    InParallelRegion = true;
    CurrentThreadIdx = Index;
    workOn(Local, Index);
    CurrentThreadIdx = 0;
    InParallelRegion = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(ActiveWorkers > 0 && "worker finished with no outstanding job");
      if (--ActiveWorkers == 0)
        WakeMaster.notify_one();
    }
  }
}

void ThreadPool::runTilesInline(
    long NumZTiles, long NumYTiles,
    const std::function<void(unsigned, long, long)> &Fn) {
  // CurrentThreadIdx may come from an enclosing region of a *different*
  // (larger) pool; clamp it into this pool's range.
  unsigned Idx = CurrentThreadIdx < NumThreads ? CurrentThreadIdx : 0;
  Counters &C = *Stats[Idx];
  long long T0 = nowNanos();
  for (long Z = 0; Z < NumZTiles; ++Z)
    for (long Y = 0; Y < NumYTiles; ++Y)
      Fn(Idx, Z, Y);
  C.BusyNanos.fetch_add(nowNanos() - T0, std::memory_order_relaxed);
  C.TasksRun.fetch_add(static_cast<unsigned long long>(NumZTiles) * NumYTiles,
                       std::memory_order_relaxed);
}

void ThreadPool::parallelForTiles(
    long NumZTiles, long NumYTiles,
    const std::function<void(unsigned, long, long)> &Fn,
    unsigned MaxWorkers) {
  if (NumZTiles <= 0 || NumYTiles <= 0)
    return;
  long Total = NumZTiles * NumYTiles;

  unsigned Participants = MaxWorkers == 0 ? NumThreads
                                          : std::min(MaxWorkers, NumThreads);
  if (static_cast<long>(Participants) > Total)
    Participants = static_cast<unsigned>(Total);

  // Serialize when the pool is trivial, when a single task calls back into
  // the pool (nested region), or when only one worker may participate.
  if (Participants <= 1 || NumThreads == 1 || InParallelRegion) {
    runTilesInline(NumZTiles, NumYTiles, Fn);
    return;
  }

  // Seed the participating deques with contiguous tile blocks: thread p
  // owns tiles [p*Total/Participants, (p+1)*Total/Participants), so
  // neighboring z blocks stay on the same thread unless stolen.
  for (unsigned P = 0; P < Participants; ++P) {
    long B = Total * P / Participants;
    long E = Total * (P + 1) / Participants;
    Deque &D = *Deques[P];
    std::lock_guard<std::mutex> Lock(D.M);
    assert(D.Tiles.empty() && "deque not drained by previous job");
    for (long T = B; T < E; ++T)
      D.Tiles.push_back(T);
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current.Fn = Fn;
    Current.NumYTiles = NumYTiles;
    Current.Participants = Participants;
    ++Current.Generation;
    ActiveWorkers = Participants - 1;
  }
  WakeWorkers.notify_all();

  Job Local;
  {
    // Take the master's own copy under the lock, symmetric with workers.
    std::lock_guard<std::mutex> Lock(Mutex);
    Local = Current;
  }
  InParallelRegion = true;
  CurrentThreadIdx = 0;
  workOn(Local, 0);
  CurrentThreadIdx = 0;
  InParallelRegion = false;

  // Join: wait until every participating worker has left its work loop so
  // the deques and Current may be reused by the next call.
  std::unique_lock<std::mutex> Lock(Mutex);
  WakeMaster.wait(Lock, [&] { return ActiveWorkers == 0; });
}

void ThreadPool::parallelForChunked(
    long Begin, long End,
    const std::function<void(unsigned, long, long)> &Fn,
    unsigned MaxParts) {
  if (End <= Begin)
    return;
  long Total = End - Begin;
  unsigned Parts = MaxParts == 0 ? NumThreads : std::min(MaxParts, NumThreads);
  if (static_cast<long>(Parts) > Total)
    Parts = static_cast<unsigned>(Total);
  long Chunk = (Total + Parts - 1) / Parts;
  parallelForTiles(
      static_cast<long>(Parts), 1,
      [&](unsigned ThreadIdx, long Part, long) {
        long B = Begin + Part * Chunk;
        long E = std::min(B + Chunk, End);
        if (B < E)
          Fn(ThreadIdx, B, E);
      },
      Parts);
}

void ThreadPool::parallelFor(long Begin, long End,
                             const std::function<void(long)> &Fn) {
  parallelForChunked(Begin, End, [&Fn](unsigned, long B, long E) {
    for (long I = B; I < E; ++I)
      Fn(I);
  });
}

PoolStats ThreadPool::stats() const {
  PoolStats S;
  S.Threads.resize(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I) {
    const Counters &C = *Stats[I];
    S.Threads[I].TasksRun = C.TasksRun.load(std::memory_order_relaxed);
    S.Threads[I].TasksStolen = C.TasksStolen.load(std::memory_order_relaxed);
    S.Threads[I].BusySeconds =
        static_cast<double>(C.BusyNanos.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return S;
}

void ThreadPool::resetStats() {
  for (unsigned I = 0; I < NumThreads; ++I) {
    Counters &C = *Stats[I];
    C.TasksRun.store(0, std::memory_order_relaxed);
    C.TasksStolen.store(0, std::memory_order_relaxed);
    C.BusyNanos.store(0, std::memory_order_relaxed);
  }
}
