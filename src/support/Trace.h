//===- support/Trace.h - Structured JSON-lines tracing ----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight structured tracing for the tuner stack: every interesting
/// event (a tuning trial, a measurement, a kernel multi-step run, a driver
/// command) appends one flat JSON object to a JSON-lines file.  Tracing is
/// off unless the process sets `YS_TRACE=<file>` in the environment (or a
/// test calls Trace::openFile), and the enabled check is a single relaxed
/// atomic load so instrumented hot paths cost nothing when disabled.
///
/// Record shape: {"ts":<seconds since trace start>,"phase":"...",
/// <caller fields>} — plus "seconds" for TraceScope records.  Named
/// counters accumulate process-wide and flush as one {"phase":"counters"}
/// record when the trace closes (atexit or explicit close()).
///
//===----------------------------------------------------------------------===//

#ifndef YS_SUPPORT_TRACE_H
#define YS_SUPPORT_TRACE_H

#include "support/Json.h"
#include "support/Timer.h"

#include <atomic>
#include <string>

namespace ys {

/// Process-wide trace sink (JSON lines).
class Trace {
public:
  /// True when a trace file is open.  Cheap enough for hot paths.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Opens \p Path for appending trace records, closing any previous sink.
  /// Returns false (and disables tracing) when the file cannot be opened.
  static bool openFile(const std::string &Path);

  /// Flushes counters and closes the sink.  Safe to call when disabled.
  static void close();

  /// Reads `YS_TRACE` and opens that file once per process.  Called lazily
  /// by the instrumented call sites; cheap after the first call.
  static void initFromEnv();

  /// Appends one already-serialized JSON object line.  No-op when disabled.
  static void emitLine(const std::string &JsonObject);

  /// Adds \p Delta to the named process-wide counter (flushed on close()).
  /// No-op when disabled.
  static void addCounter(const std::string &Name, double Delta = 1.0);

  /// Seconds since the trace was opened (0 when disabled).
  static double now();

private:
  static std::atomic<bool> EnabledFlag;
};

/// Builds and emits one trace record.  When tracing is disabled every
/// method is a no-op, so call sites can be written unconditionally.
class TraceRecord {
public:
  explicit TraceRecord(const char *Phase) : Active(Trace::enabled()) {
    if (Active)
      Obj.field("ts", Trace::now()).field("phase", Phase);
  }

  TraceRecord &field(const char *Key, const std::string &V) {
    if (Active)
      Obj.field(Key, V);
    return *this;
  }
  TraceRecord &field(const char *Key, const char *V) {
    if (Active)
      Obj.field(Key, V);
    return *this;
  }
  TraceRecord &field(const char *Key, double V) {
    if (Active)
      Obj.field(Key, V);
    return *this;
  }
  TraceRecord &field(const char *Key, long V) {
    if (Active)
      Obj.field(Key, V);
    return *this;
  }
  TraceRecord &field(const char *Key, int V) {
    return field(Key, static_cast<long>(V));
  }
  TraceRecord &field(const char *Key, unsigned V) {
    return field(Key, static_cast<long>(V));
  }
  TraceRecord &field(const char *Key, unsigned long long V) {
    if (Active)
      Obj.field(Key, V);
    return *this;
  }

  /// Emits the record.  Harmless to skip (nothing is written) or to call
  /// at most once.
  void emit() {
    if (Active)
      Trace::emitLine(Obj.str());
    Active = false;
  }

private:
  bool Active;
  JsonObjectWriter Obj;
};

/// RAII phase timer: on destruction emits the record with a trailing
/// "seconds" field measuring the scope's lifetime.
class TraceScope {
public:
  explicit TraceScope(const char *Phase)
      : Active(Trace::enabled()), Rec(Phase) {}

  template <typename T> TraceScope &field(const char *Key, T V) {
    Rec.field(Key, V);
    return *this;
  }

  ~TraceScope() {
    if (Active) {
      Rec.field("seconds", T.seconds());
      Rec.emit();
    }
  }

private:
  bool Active;
  TraceRecord Rec;
  Timer T;
};

} // namespace ys

#endif // YS_SUPPORT_TRACE_H
