//===- support/Table.cpp - Aligned text table printer ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace ys;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() { Rows.emplace_back(); }

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto renderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Headers.size(); ++C) {
      const std::string &Cell = C < Cells.size() ? Cells[C] : std::string();
      Line += "| ";
      Line += Cell;
      Line.append(Widths[C] - Cell.size() + 1, ' ');
    }
    Line += "|\n";
    return Line;
  };

  auto renderRule = [&] {
    std::string Line;
    for (size_t C = 0; C < Headers.size(); ++C) {
      Line += "|";
      Line.append(Widths[C] + 2, '-');
    }
    Line += "|\n";
    return Line;
  };

  std::string Out = renderRow(Headers);
  Out += renderRule();
  for (const auto &Row : Rows)
    Out += Row.empty() ? renderRule() : renderRow(Row);
  return Out;
}

void Table::print() const {
  std::string Out = render();
  std::fwrite(Out.data(), 1, Out.size(), stdout);
  std::fflush(stdout);
}
