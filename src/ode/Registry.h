//===- ode/Registry.h - Named lookup of methods and IVPs ---------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-based registries for Butcher tableaus, implementation variants and
/// built-in IVPs — the lookup layer the CLI and config-driven tooling use.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_REGISTRY_H
#define YS_ODE_REGISTRY_H

#include "ode/ButcherTableau.h"
#include "ode/ExplicitRK.h"
#include "ode/IVP.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace ys {

/// Finds a tableau by name among all built-ins (explicit and implicit).
Expected<ButcherTableau> tableauByName(const std::string &Name);

/// Names of all built-in tableaus.
std::vector<std::string> tableauNames();

/// Parses an RK variant name: "stage-separate" | "fused-argument" |
/// "fused-update" (also accepts the short forms "separate", "fused").
Expected<RKVariant> rkVariantByName(const std::string &Name);

/// Creates a built-in IVP by name at resolution \p N (3-D problems use an
/// N^3 grid; the inverter chain uses N cells).  Known names: heat2d,
/// heat3d, reaction-diffusion3d, advection3d, burgers3d, inverter-chain.
Expected<std::unique_ptr<IVP>> ivpByName(const std::string &Name, long N);

/// Names of all built-in IVPs.
std::vector<std::string> ivpNames();

} // namespace ys

#endif // YS_ODE_REGISTRY_H
