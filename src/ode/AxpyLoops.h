//===- ode/AxpyLoops.h - Interior linear-combination sweeps ------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared interior-sweep kernels of the ODE integrators: stage-argument
/// axpy sweeps and state-update sweeps.  A pointer-based fast path serves
/// the scalar grid layout (identical floating-point operation order to the
/// generic path, so results are bit-identical).
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_AXPYLOOPS_H
#define YS_ODE_AXPYLOOPS_H

#include "stencil/Grid.h"

#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

namespace ys {
namespace ode_detail {

/// A weighted list of grids: (grid, coefficient) pairs.
using TermList = std::vector<std::pair<const Grid *, double>>;

/// True if every listed grid (and \p Y) uses the scalar layout with equal
/// geometry, enabling shared linear indexing.
inline bool sameScalarGeometry(const Grid &Y, const TermList &Terms) {
  if (!Y.hasScalarLayout())
    return false;
  for (const auto &[G, C] : Terms) {
    (void)C;
    if (!G->hasScalarLayout() || !(G->dims() == Y.dims()) ||
        G->halo() != Y.halo())
      return false;
  }
  return true;
}

/// Out = Y + H * sum_t Coeff_t * Term_t over the interior.
inline void axpyInterior(const Grid &Y, const TermList &Terms, double H,
                         Grid &Out) {
  const GridDims &D = Y.dims();
  if (sameScalarGeometry(Y, Terms) && Out.hasScalarLayout()) {
    const double *Yd = Y.data();
    double *Od = Out.data();
    size_t NT = Terms.size();
    const double *Base[16];
    double Coeff[16];
    assert(NT <= 16 && "term list exceeds fast-path table");
    for (size_t T = 0; T < NT; ++T) {
      Base[T] = Terms[T].first->data();
      Coeff[T] = Terms[T].second;
    }
    for (long Z = 0; Z < D.Nz; ++Z)
      for (long Yc = 0; Yc < D.Ny; ++Yc) {
        size_t Row = Y.linearIndex(0, Yc, Z);
        for (long X = 0; X < D.Nx; ++X) {
          double Acc = 0.0;
          for (size_t T = 0; T < NT; ++T)
            Acc += Coeff[T] * Base[T][Row + X];
          Od[Row + X] = Yd[Row + X] + H * Acc;
        }
      }
    return;
  }
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X) {
        double Acc = 0.0;
        for (const auto &[G, C] : Terms)
          Acc += C * G->at(X, Yc, Z);
        Out.at(X, Yc, Z) = Y.at(X, Yc, Z) + H * Acc;
      }
}

/// Y += H * sum_t Coeff_t * Term_t over the interior.  When \p ErrTerms is
/// nonempty, also returns max |H * sum ErrCoeff_t * Term_t| (the embedded
/// error estimate); otherwise returns 0.
inline double updateInterior(Grid &Y, const TermList &Terms,
                             const TermList &ErrTerms, double H) {
  const GridDims &D = Y.dims();
  double MaxErr = 0.0;
  bool WantErr = !ErrTerms.empty();
  if (sameScalarGeometry(Y, Terms) &&
      (ErrTerms.empty() || sameScalarGeometry(Y, ErrTerms))) {
    double *Yd = Y.data();
    size_t NT = Terms.size(), NE = ErrTerms.size();
    const double *Base[16], *EBase[16];
    double Coeff[16], ECoeff[16];
    assert(NT <= 16 && NE <= 16 && "term list exceeds fast-path table");
    for (size_t T = 0; T < NT; ++T) {
      Base[T] = Terms[T].first->data();
      Coeff[T] = Terms[T].second;
    }
    for (size_t T = 0; T < NE; ++T) {
      EBase[T] = ErrTerms[T].first->data();
      ECoeff[T] = ErrTerms[T].second;
    }
    for (long Z = 0; Z < D.Nz; ++Z)
      for (long Yc = 0; Yc < D.Ny; ++Yc) {
        size_t Row = Y.linearIndex(0, Yc, Z);
        for (long X = 0; X < D.Nx; ++X) {
          double Acc = 0.0;
          for (size_t T = 0; T < NT; ++T)
            Acc += Coeff[T] * Base[T][Row + X];
          Yd[Row + X] += H * Acc;
          if (WantErr) {
            double Err = 0.0;
            for (size_t T = 0; T < NE; ++T)
              Err += ECoeff[T] * EBase[T][Row + X];
            MaxErr = std::max(MaxErr, std::fabs(H * Err));
          }
        }
      }
    return MaxErr;
  }
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X) {
        double Acc = 0.0;
        for (const auto &[G, C] : Terms)
          Acc += C * G->at(X, Yc, Z);
        Y.at(X, Yc, Z) += H * Acc;
        if (WantErr) {
          double Err = 0.0;
          for (const auto &[G, C] : ErrTerms)
            Err += C * G->at(X, Yc, Z);
          MaxErr = std::max(MaxErr, std::fabs(H * Err));
        }
      }
  return MaxErr;
}

} // namespace ode_detail
} // namespace ys

#endif // YS_ODE_AXPYLOOPS_H
