//===- ode/ButcherTableau.cpp - Runge-Kutta tableaus -----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/ButcherTableau.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace ys;

bool ButcherTableau::isExplicit() const {
  for (unsigned I = 0; I < Stages; ++I)
    for (unsigned J = I; J < Stages; ++J)
      if (a(I, J) != 0.0)
        return false;
  return true;
}

unsigned ButcherTableau::numNonzeroA() const {
  unsigned Count = 0;
  for (double V : A)
    if (V != 0.0)
      ++Count;
  return Count;
}

std::string ButcherTableau::checkConsistency() const {
  const double Tol = 1e-12;
  if (A.size() != static_cast<size_t>(Stages) * Stages ||
      B.size() != Stages || C.size() != Stages)
    return "tableau dimensions inconsistent";
  if (!B2.empty() && B2.size() != Stages)
    return "embedded weight count mismatch";

  // Row sums: c_i == sum_j a_ij.
  for (unsigned I = 0; I < Stages; ++I) {
    double Sum = 0;
    for (unsigned J = 0; J < Stages; ++J)
      Sum += a(I, J);
    if (std::fabs(Sum - c(I)) > 1e-10)
      return format("row-sum condition violated at stage %u", I);
  }

  auto sumB = [&](auto Weight) {
    double Sum = 0;
    for (unsigned I = 0; I < Stages; ++I)
      Sum += Weight(I);
    return Sum;
  };
  if (std::fabs(sumB([&](unsigned I) { return b(I); }) - 1.0) > Tol)
    return "weights do not sum to 1";
  if (hasEmbedded() &&
      std::fabs(sumB([&](unsigned I) { return b2(I); }) - 1.0) > 1e-10)
    return "embedded weights do not sum to 1";

  // Classical order conditions up to 4.
  auto check = [&](double Value, double Expected, const char *Cond)
      -> std::string {
    if (std::fabs(Value - Expected) > 1e-10)
      return format("order condition %s violated (%.15f != %.15f)", Cond,
                    Value, Expected);
    return std::string();
  };

  if (Order >= 2) {
    double S = 0;
    for (unsigned I = 0; I < Stages; ++I)
      S += b(I) * c(I);
    if (std::string E = check(S, 0.5, "b.c = 1/2"); !E.empty())
      return E;
  }
  if (Order >= 3) {
    double S1 = 0, S2 = 0;
    for (unsigned I = 0; I < Stages; ++I) {
      S1 += b(I) * c(I) * c(I);
      for (unsigned J = 0; J < Stages; ++J)
        S2 += b(I) * a(I, J) * c(J);
    }
    if (std::string E = check(S1, 1.0 / 3.0, "b.c^2 = 1/3"); !E.empty())
      return E;
    if (std::string E = check(S2, 1.0 / 6.0, "b.A.c = 1/6"); !E.empty())
      return E;
  }
  if (Order >= 4) {
    double S1 = 0, S2 = 0, S3 = 0, S4 = 0;
    for (unsigned I = 0; I < Stages; ++I) {
      S1 += b(I) * c(I) * c(I) * c(I);
      for (unsigned J = 0; J < Stages; ++J) {
        S2 += b(I) * c(I) * a(I, J) * c(J);
        S3 += b(I) * a(I, J) * c(J) * c(J);
        for (unsigned K = 0; K < Stages; ++K)
          S4 += b(I) * a(I, J) * a(J, K) * c(K);
      }
    }
    if (std::string E = check(S1, 0.25, "b.c^3 = 1/4"); !E.empty())
      return E;
    if (std::string E = check(S2, 0.125, "b.cAc = 1/8"); !E.empty())
      return E;
    if (std::string E = check(S3, 1.0 / 12.0, "b.A.c^2 = 1/12"); !E.empty())
      return E;
    if (std::string E = check(S4, 1.0 / 24.0, "b.A.A.c = 1/24"); !E.empty())
      return E;
  }
  return std::string();
}

namespace {

ButcherTableau make(std::string Name, unsigned Stages, std::vector<double> A,
                    std::vector<double> B, std::vector<double> C,
                    unsigned Order, std::vector<double> B2 = {},
                    unsigned EmbeddedOrder = 0) {
  ButcherTableau T;
  T.Name = std::move(Name);
  T.Stages = Stages;
  T.A = std::move(A);
  T.B = std::move(B);
  T.B2 = std::move(B2);
  T.C = std::move(C);
  T.Order = Order;
  T.EmbeddedOrder = EmbeddedOrder;
  return T;
}

} // namespace

ButcherTableau ButcherTableau::explicitEuler() {
  return make("euler", 1, {0}, {1}, {0}, 1);
}

ButcherTableau ButcherTableau::heun2() {
  return make("heun2", 2, {0, 0, 1, 0}, {0.5, 0.5}, {0, 1}, 2);
}

ButcherTableau ButcherTableau::ralston2() {
  return make("ralston2", 2, {0, 0, 2.0 / 3.0, 0}, {0.25, 0.75},
              {0, 2.0 / 3.0}, 2);
}

ButcherTableau ButcherTableau::kutta3() {
  return make("kutta3", 3, {0, 0, 0, 0.5, 0, 0, -1, 2, 0},
              {1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0}, {0, 0.5, 1}, 3);
}

ButcherTableau ButcherTableau::ssprk3() {
  return make("ssprk3", 3, {0, 0, 0, 1, 0, 0, 0.25, 0.25, 0},
              {1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0}, {0, 1, 0.5}, 3);
}

ButcherTableau ButcherTableau::classicRK4() {
  return make("rk4", 4,
              {0, 0, 0, 0, 0.5, 0, 0, 0, 0, 0.5, 0, 0, 0, 0, 1, 0},
              {1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0}, {0, 0.5, 0.5, 1},
              4);
}

ButcherTableau ButcherTableau::threeEighthsRK4() {
  return make("rk4-38", 4,
              {0, 0, 0, 0, 1.0 / 3.0, 0, 0, 0, -1.0 / 3.0, 1, 0, 0, 1, -1,
               1, 0},
              {0.125, 0.375, 0.375, 0.125}, {0, 1.0 / 3.0, 2.0 / 3.0, 1}, 4);
}

ButcherTableau ButcherTableau::bogackiShampine32() {
  return make("bs32", 4,
              {0, 0, 0, 0,
               0.5, 0, 0, 0,
               0, 0.75, 0, 0,
               2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0},
              {2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0}, {0, 0.5, 0.75, 1}, 3,
              {7.0 / 24.0, 0.25, 1.0 / 3.0, 0.125}, 2);
}

ButcherTableau ButcherTableau::fehlberg45() {
  return make(
      "rkf45", 6,
      {0, 0, 0, 0, 0, 0,
       0.25, 0, 0, 0, 0, 0,
       3.0 / 32, 9.0 / 32, 0, 0, 0, 0,
       1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197, 0, 0, 0,
       439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104, 0, 0,
       -8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40, 0},
      {25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104, -0.2, 0},
      {0, 0.25, 0.375, 12.0 / 13.0, 1, 0.5}, 4,
      {16.0 / 135, 0, 6656.0 / 12825, 28561.0 / 56430, -9.0 / 50,
       2.0 / 55},
      5);
}

ButcherTableau ButcherTableau::cashKarp45() {
  return make(
      "cashkarp45", 6,
      {0, 0, 0, 0, 0, 0,
       0.2, 0, 0, 0, 0, 0,
       3.0 / 40, 9.0 / 40, 0, 0, 0, 0,
       0.3, -0.9, 1.2, 0, 0, 0,
       -11.0 / 54, 2.5, -70.0 / 27, 35.0 / 27, 0, 0,
       1631.0 / 55296, 175.0 / 512, 575.0 / 13824, 44275.0 / 110592,
       253.0 / 4096, 0},
      {37.0 / 378, 0, 250.0 / 621, 125.0 / 594, 0, 512.0 / 1771},
      {0, 0.2, 0.3, 0.6, 1, 0.875}, 5,
      {2825.0 / 27648, 0, 18575.0 / 48384, 13525.0 / 55296, 277.0 / 14336,
       0.25},
      4);
}

ButcherTableau ButcherTableau::dormandPrince54() {
  return make(
      "dopri54", 7,
      {0, 0, 0, 0, 0, 0, 0,
       0.2, 0, 0, 0, 0, 0, 0,
       3.0 / 40, 9.0 / 40, 0, 0, 0, 0, 0,
       44.0 / 45, -56.0 / 15, 32.0 / 9, 0, 0, 0, 0,
       19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729, 0, 0,
       0,
       9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176,
       -5103.0 / 18656, 0, 0,
       35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784,
       11.0 / 84, 0},
      {35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84,
       0},
      {0, 0.2, 0.3, 0.8, 8.0 / 9.0, 1, 1}, 5,
      {5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200,
       187.0 / 2100, 1.0 / 40},
      4);
}

ButcherTableau ButcherTableau::gauss2() {
  const double S3 = std::sqrt(3.0);
  return make("gauss2", 2,
              {0.25, 0.25 - S3 / 6.0, 0.25 + S3 / 6.0, 0.25}, {0.5, 0.5},
              {0.5 - S3 / 6.0, 0.5 + S3 / 6.0}, 4);
}

ButcherTableau ButcherTableau::radauIIA2() {
  return make("radauIIA2", 2, {5.0 / 12, -1.0 / 12, 0.75, 0.25},
              {0.75, 0.25}, {1.0 / 3.0, 1}, 3);
}

ButcherTableau ButcherTableau::radauIIA3() {
  const double S6 = std::sqrt(6.0);
  return make(
      "radauIIA3", 3,
      {(88 - 7 * S6) / 360, (296 - 169 * S6) / 1800, (-2 + 3 * S6) / 225,
       (296 + 169 * S6) / 1800, (88 + 7 * S6) / 360, (-2 - 3 * S6) / 225,
       (16 - S6) / 36, (16 + S6) / 36, 1.0 / 9},
      {(16 - S6) / 36, (16 + S6) / 36, 1.0 / 9},
      {(4 - S6) / 10, (4 + S6) / 10, 1}, 5);
}

ButcherTableau ButcherTableau::lobattoIIIC3() {
  return make("lobattoIIIC3", 3,
              {1.0 / 6, -1.0 / 3, 1.0 / 6, 1.0 / 6, 5.0 / 12, -1.0 / 12,
               1.0 / 6, 2.0 / 3, 1.0 / 6},
              {1.0 / 6, 2.0 / 3, 1.0 / 6}, {0, 0.5, 1}, 4);
}

std::vector<ButcherTableau> ButcherTableau::allExplicit() {
  return {explicitEuler(),   heun2(),          ralston2(),
          kutta3(),          ssprk3(),         classicRK4(),
          threeEighthsRK4(), bogackiShampine32(), fehlberg45(),
          cashKarp45(),      dormandPrince54()};
}

std::vector<ButcherTableau> ButcherTableau::allImplicitBases() {
  return {gauss2(), radauIIA2(), radauIIA3(), lobattoIIIC3()};
}
