//===- ode/Registry.cpp - Named lookup of methods and IVPs -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/Registry.h"

#include "support/StringUtils.h"

using namespace ys;

Expected<ButcherTableau> ys::tableauByName(const std::string &Name) {
  for (const ButcherTableau &T : ButcherTableau::allExplicit())
    if (T.Name == Name)
      return T;
  for (const ButcherTableau &T : ButcherTableau::allImplicitBases())
    if (T.Name == Name)
      return T;
  return Error::failure(format("unknown method '%s'; known: %s",
                               Name.c_str(),
                               join(tableauNames(), ", ").c_str()));
}

std::vector<std::string> ys::tableauNames() {
  std::vector<std::string> Names;
  for (const ButcherTableau &T : ButcherTableau::allExplicit())
    Names.push_back(T.Name);
  for (const ButcherTableau &T : ButcherTableau::allImplicitBases())
    Names.push_back(T.Name);
  return Names;
}

Expected<RKVariant> ys::rkVariantByName(const std::string &Name) {
  if (Name == "stage-separate" || Name == "separate")
    return RKVariant::StageSeparate;
  if (Name == "fused-argument" || Name == "fused")
    return RKVariant::FusedArgument;
  if (Name == "fused-update")
    return RKVariant::FusedUpdate;
  return Error::failure(format(
      "unknown variant '%s' (stage-separate | fused-argument | "
      "fused-update)",
      Name.c_str()));
}

Expected<std::unique_ptr<IVP>> ys::ivpByName(const std::string &Name,
                                             long N) {
  if (N < 4)
    return Error::failure("IVP resolution must be >= 4");
  if (Name == "heat2d")
    return std::unique_ptr<IVP>(new Heat2DIVP(N));
  if (Name == "heat3d")
    return std::unique_ptr<IVP>(new Heat3DIVP(N));
  if (Name == "reaction-diffusion3d")
    return std::unique_ptr<IVP>(new ReactionDiffusion3DIVP(N));
  if (Name == "advection3d")
    return std::unique_ptr<IVP>(new Advection3DIVP(N));
  if (Name == "burgers3d")
    return std::unique_ptr<IVP>(new Burgers3DIVP(N));
  if (Name == "inverter-chain")
    return std::unique_ptr<IVP>(new InverterChainIVP(N));
  return Error::failure(format("unknown IVP '%s'; known: %s", Name.c_str(),
                               join(ivpNames(), ", ").c_str()));
}

std::vector<std::string> ys::ivpNames() {
  return {"heat2d",      "heat3d",        "reaction-diffusion3d",
          "advection3d", "burgers3d",     "inverter-chain"};
}
