//===- ode/Adaptive.h - Embedded-pair adaptive stepping ----------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive step-size control for embedded explicit RK pairs (RKF45,
/// DOPRI54, Cash-Karp, Bogacki-Shampine): the standard accept/reject loop
/// with the (err/tol)^(1/(p+1)) step-size update.  Offsite's motivating
/// use case is exactly these solvers; the adaptive driver exercises the
/// embedded-error machinery of ExplicitRKIntegrator.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_ADAPTIVE_H
#define YS_ODE_ADAPTIVE_H

#include "ode/ExplicitRK.h"

namespace ys {

/// Controller parameters and statistics.
struct AdaptiveOptions {
  double Tolerance = 1e-6;  ///< Absolute infinity-norm tolerance.
  double Safety = 0.9;
  double MinScale = 0.2;
  double MaxScale = 5.0;
  double MinStep = 1e-12;
  unsigned MaxSteps = 100000;
};

/// Outcome of an adaptive integration.
struct AdaptiveResult {
  double FinalTime = 0;
  unsigned AcceptedSteps = 0;
  unsigned RejectedSteps = 0;
  double FinalStep = 0;
  bool Converged = false; ///< Reached TEnd within MaxSteps and MinStep.
};

/// Integrates \p Problem from \p T0 to \p TEnd with adaptive steps using an
/// embedded pair.  \p Integrator must use the StageSeparate variant of a
/// tableau with embedded weights.  \p H0 is the initial step size.
AdaptiveResult integrateAdaptive(const ExplicitRKIntegrator &Integrator,
                                 const IVP &Problem, double T0, double TEnd,
                                 double H0, Grid &Y, RKWorkspace &WS,
                                 const AdaptiveOptions &Opts,
                                 ThreadPool *Pool = nullptr);

} // namespace ys

#endif // YS_ODE_ADAPTIVE_H
