//===- ode/IVP.h - Initial value problems ------------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Initial value problems y' = f(t, y) whose right-hand sides are grid
/// operators — the workloads Offsite tunes explicit ODE methods for.  An
/// IVP exposes its structure to the tooling:
///
///  * stencil form f(y) = S(y) + g(y_center): a linear constant-coefficient
///    stencil plus an optional pointwise term.  RHS sweeps of such IVPs are
///    executable by KernelExecutor / fusable by the RK variants and
///    modelable by the ECM model;
///  * otherwise only the generic evalRHS is available (variant A), and
///    rhsStencil() serves purely as the performance-model proxy.
///
/// Provided problems: Heat2D/Heat3D (pure stencil), ReactionDiffusion3D
/// (stencil + nonlinear pointwise term), Advection3D (asymmetric upwind
/// stencil), and InverterChain (banded nonlinear chain, non-stencil).
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_IVP_H
#define YS_ODE_IVP_H

#include "stencil/Grid.h"
#include "stencil/StencilSpec.h"

#include <memory>
#include <string>

namespace ys {

/// An initial value problem over a 3-D grid state.
class IVP {
public:
  virtual ~IVP();

  virtual std::string name() const = 0;
  virtual GridDims dims() const = 0;

  /// Halo width required by the RHS (>= stencil radius).
  virtual int halo() const;

  /// Fills \p Y with the initial condition (halo = boundary values).
  virtual void initialCondition(Grid &Y) const = 0;

  /// A stable step size for the provided dims (used by benchmarks).
  virtual double suggestedDt() const = 0;

  /// True if f(y) == rhsStencil()(y) + pointwise(y_center).
  virtual bool hasStencilForm() const { return true; }

  /// The linear stencil part (or, for non-stencil IVPs, a structural proxy
  /// used only by the performance model).
  virtual const StencilSpec &rhsStencil() const = 0;

  /// Pointwise term g(u) added to the stencil result.  Only meaningful
  /// when hasPointwise().
  virtual double pointwise(double U) const {
    (void)U;
    return 0.0;
  }
  virtual bool hasPointwise() const { return false; }

  /// Generic RHS evaluation Out = f(T, Y) over the interior.  The default
  /// implementation applies rhsStencil() plus the pointwise term with the
  /// reference executor; non-stencil IVPs must override.
  virtual void evalRHS(double T, const Grid &Y, Grid &Out) const;
};

/// 2-D heat equation u' = alpha * Lap(u) on the unit square (Dirichlet 0).
class Heat2DIVP : public IVP {
public:
  Heat2DIVP(long N, double Alpha = 1.0);
  std::string name() const override { return "heat2d"; }
  GridDims dims() const override { return {N, N, 1}; }
  void initialCondition(Grid &Y) const override;
  double suggestedDt() const override;
  const StencilSpec &rhsStencil() const override { return Spec; }

  /// Exact solution of the *semi-discrete* system for the default initial
  /// condition (discrete sine mode), evaluated at time T.
  void exactSolution(double T, Grid &Y) const;

private:
  long N;
  double Alpha;
  double H; ///< Grid spacing 1/(N+1).
  StencilSpec Spec;
};

/// 3-D heat equation u' = alpha * Lap(u) on the unit cube (Dirichlet 0).
class Heat3DIVP : public IVP {
public:
  Heat3DIVP(long N, double Alpha = 1.0);
  std::string name() const override { return "heat3d"; }
  GridDims dims() const override { return {N, N, N}; }
  void initialCondition(Grid &Y) const override;
  double suggestedDt() const override;
  const StencilSpec &rhsStencil() const override { return Spec; }

  /// Exact semi-discrete solution for the default initial condition.
  void exactSolution(double T, Grid &Y) const;

private:
  long N;
  double Alpha;
  double H;
  StencilSpec Spec;
};

/// Reaction-diffusion u' = Lap(u) + u - u^3 (Allen-Cahn type):
/// stencil plus nonlinear pointwise term.
class ReactionDiffusion3DIVP : public IVP {
public:
  ReactionDiffusion3DIVP(long N, double Diffusion = 1.0);
  std::string name() const override { return "reaction-diffusion3d"; }
  GridDims dims() const override { return {N, N, N}; }
  void initialCondition(Grid &Y) const override;
  double suggestedDt() const override;
  const StencilSpec &rhsStencil() const override { return Spec; }
  bool hasPointwise() const override { return true; }
  double pointwise(double U) const override { return U - U * U * U; }

private:
  long N;
  double Diffusion;
  double H;
  StencilSpec Spec;
};

/// Linear advection u' = -(vx ux + vy uy + vz uz), first-order upwind.
class Advection3DIVP : public IVP {
public:
  Advection3DIVP(long N, double Vx = 1.0, double Vy = 0.5, double Vz = 0.25);
  std::string name() const override { return "advection3d"; }
  GridDims dims() const override { return {N, N, N}; }
  void initialCondition(Grid &Y) const override;
  double suggestedDt() const override;
  const StencilSpec &rhsStencil() const override { return Spec; }

private:
  long N;
  double Vx, Vy, Vz;
  double H;
  StencilSpec Spec;
};

/// Chain of N CMOS-style inverters, the classic non-stencil Offsite IVP:
///   y_0' = (uIn(t)   - y_0)/tau
///   y_i' = (uOp - y_i - g(y_{i-1}))/tau,  g(v) = beta * v^2 / (1 + v^2).
/// Banded (bandwidth 1) and nonlinear in the neighbor, so only the generic
/// RHS path applies; rhsStencil() is the model proxy.
class InverterChainIVP : public IVP {
public:
  explicit InverterChainIVP(long N);
  std::string name() const override { return "inverter-chain"; }
  GridDims dims() const override { return {N, 1, 1}; }
  int halo() const override { return 1; }
  void initialCondition(Grid &Y) const override;
  double suggestedDt() const override;
  bool hasStencilForm() const override { return false; }
  const StencilSpec &rhsStencil() const override { return ProxySpec; }
  void evalRHS(double T, const Grid &Y, Grid &Out) const override;

private:
  double uIn(double T) const;
  long N;
  double Tau = 1.0;
  double UOp = 5.0;
  double Beta = 4.0;
  StencilSpec ProxySpec;
};

/// Viscous Burgers equation u' = -u * (ux + uy + uz) + nu * Lap(u) with
/// central differences: the advection term multiplies the *center* value
/// into neighbor differences, which is outside the linear-stencil +
/// pointwise form — like InverterChain it exercises the generic RHS path,
/// but on a genuine 3-D stencil access pattern.
class Burgers3DIVP : public IVP {
public:
  Burgers3DIVP(long N, double Viscosity = 0.05);
  std::string name() const override { return "burgers3d"; }
  GridDims dims() const override { return {N, N, N}; }
  void initialCondition(Grid &Y) const override;
  double suggestedDt() const override;
  bool hasStencilForm() const override { return false; }
  const StencilSpec &rhsStencil() const override { return ProxySpec; }
  void evalRHS(double T, const Grid &Y, Grid &Out) const override;

private:
  long N;
  double Nu;
  double H;
  StencilSpec ProxySpec; ///< Model proxy: r1 star + advection flops.
};

/// All built-in IVPs at a benchmark-friendly size.
std::vector<std::unique_ptr<IVP>> allBuiltinIVPs(long N3d, long N1d);

} // namespace ys

#endif // YS_ODE_IVP_H
