//===- ode/Stability.h - RK stability analysis -------------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear stability analysis of Runge-Kutta methods: evaluates the
/// stability function R(z) = 1 + z b^T (I - zA)^{-1} 1 and derives the
/// real-axis stability limit, which (together with the spectral bound of a
/// discrete operator) yields the largest stable time step — the quantity
/// Offsite needs to compare methods at equal accuracy budgets.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_STABILITY_H
#define YS_ODE_STABILITY_H

#include "ode/ButcherTableau.h"
#include "stencil/StencilSpec.h"

#include <complex>

namespace ys {

/// Evaluates the stability function R(z) of \p TB at a complex point.
/// Works for explicit and implicit tableaus (dense linear solve).
std::complex<double> stabilityFunction(const ButcherTableau &TB,
                                       std::complex<double> Z);

/// Largest X >= 0 with |R(-t)| <= 1 for all t in [0, X] (the negative
/// real-axis stability interval), found by scan + bisection to \p Tol.
/// Returns \p SearchLimit if the whole searched interval is stable
/// (A-stable implicit methods).
double realAxisStabilityLimit(const ButcherTableau &TB, double Tol = 1e-6,
                              double SearchLimit = 100.0);

/// Spectral bound |lambda_max| of the (negated) discrete operator of a
/// linear constant-coefficient stencil: max over grid modes of
/// |sum_p c_p * e^{i k.off_p}|, estimated by sampling the extreme modes.
double stencilSpectralBound(const StencilSpec &Spec);

/// Largest stable time step of \p TB applied to the semi-discretization
/// with RHS \p Spec: realAxisStabilityLimit / spectral bound.  (Valid for
/// operators with (near-)real negative spectra, e.g. diffusion.)
double maxStableTimeStep(const ButcherTableau &TB, const StencilSpec &Spec);

} // namespace ys

#endif // YS_ODE_STABILITY_H
