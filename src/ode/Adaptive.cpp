//===- ode/Adaptive.cpp - Embedded-pair adaptive stepping ------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/Adaptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ys;

AdaptiveResult ys::integrateAdaptive(const ExplicitRKIntegrator &Integrator,
                                     const IVP &Problem, double T0,
                                     double TEnd, double H0, Grid &Y,
                                     RKWorkspace &WS,
                                     const AdaptiveOptions &Opts,
                                     ThreadPool *Pool) {
  assert(Integrator.tableau().hasEmbedded() &&
         "adaptive stepping needs an embedded pair");
  assert(Integrator.variant() == RKVariant::StageSeparate &&
         "error estimation is implemented for the stage-separate variant");

  Integrator.prepareWorkspace(Problem, WS);
  Grid Backup(Y.dims(), Y.halo(), Y.fold());
  Backup.copyHaloFrom(Y);

  AdaptiveResult R;
  double T = T0;
  double H = H0;
  unsigned EmbOrder = std::min(Integrator.tableau().Order,
                               Integrator.tableau().EmbeddedOrder);
  double Exponent = 1.0 / (EmbOrder + 1.0);

  for (unsigned StepIdx = 0; StepIdx < Opts.MaxSteps && T < TEnd;
       ++StepIdx) {
    H = std::min(H, TEnd - T);
    if (H < Opts.MinStep) {
      R.FinalTime = T;
      R.FinalStep = H;
      return R; // Converged == false: step collapsed.
    }
    Backup.copyInteriorFrom(Y);
    Integrator.step(Problem, T, H, Y, WS, Pool);
    double Err = Integrator.lastErrorEstimate();

    if (Err <= Opts.Tolerance) {
      T += H;
      ++R.AcceptedSteps;
    } else {
      Y.copyInteriorFrom(Backup);
      ++R.RejectedSteps;
    }

    double Scale = Err > 0.0
                       ? Opts.Safety * std::pow(Opts.Tolerance / Err,
                                                Exponent)
                       : Opts.MaxScale;
    H *= std::clamp(Scale, Opts.MinScale, Opts.MaxScale);
  }

  R.FinalTime = T;
  R.FinalStep = H;
  R.Converged = T >= TEnd - 1e-14;
  return R;
}
