//===- ode/IVP.cpp - Initial value problems --------------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/IVP.h"

#include "codegen/KernelExecutor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ys;

IVP::~IVP() = default;

int IVP::halo() const { return std::max(1, rhsStencil().radius()); }

void IVP::evalRHS(double T, const Grid &Y, Grid &Out) const {
  (void)T;
  assert(hasStencilForm() && "generic evalRHS needs the stencil form; "
                             "non-stencil IVPs must override");
  KernelExecutor::runReference(rhsStencil(), {&Y}, Out);
  if (!hasPointwise())
    return;
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X)
        Out.at(X, Yc, Z) += pointwise(Y.at(X, Yc, Z));
}

//===----------------------------------------------------------------------===//
// Heat2D
//===----------------------------------------------------------------------===//

Heat2DIVP::Heat2DIVP(long N, double Alpha)
    : N(N), Alpha(Alpha), H(1.0 / static_cast<double>(N + 1)) {
  double Scale = Alpha / (H * H);
  Spec = StencilSpec::star2d(1, -4.0 * Scale, Scale);
}

void Heat2DIVP::initialCondition(Grid &Y) const {
  const double Pi = std::acos(-1.0);
  Y.fillFunction([&](long X, long Yc, long) {
    return std::sin(Pi * (X + 1) * H) * std::sin(Pi * (Yc + 1) * H);
  });
}

double Heat2DIVP::suggestedDt() const {
  // Forward-Euler stability bound for the 5-point Laplacian: h^2/(4 alpha).
  return 0.2 * H * H / Alpha;
}

void Heat2DIVP::exactSolution(double T, Grid &Y) const {
  // The discrete sine mode is an eigenvector of the discrete Laplacian
  // with eigenvalue -(4 alpha/h^2) sin^2(pi h / 2) per dimension.
  const double Pi = std::acos(-1.0);
  double S = std::sin(Pi * H / 2.0);
  double Lambda = -2.0 * (4.0 * Alpha / (H * H)) * S * S;
  double Decay = std::exp(Lambda * T);
  initialCondition(Y);
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X)
        Y.at(X, Yc, Z) *= Decay;
}

//===----------------------------------------------------------------------===//
// Heat3D
//===----------------------------------------------------------------------===//

Heat3DIVP::Heat3DIVP(long N, double Alpha)
    : N(N), Alpha(Alpha), H(1.0 / static_cast<double>(N + 1)) {
  double Scale = Alpha / (H * H);
  Spec = StencilSpec::star3d(1, -6.0 * Scale, Scale);
}

void Heat3DIVP::initialCondition(Grid &Y) const {
  const double Pi = std::acos(-1.0);
  Y.fillFunction([&](long X, long Yc, long Z) {
    return std::sin(Pi * (X + 1) * H) * std::sin(Pi * (Yc + 1) * H) *
           std::sin(Pi * (Z + 1) * H);
  });
}

double Heat3DIVP::suggestedDt() const { return 0.15 * H * H / Alpha; }

void Heat3DIVP::exactSolution(double T, Grid &Y) const {
  const double Pi = std::acos(-1.0);
  double S = std::sin(Pi * H / 2.0);
  // Per dimension the discrete sine mode has eigenvalue
  // -(4 alpha / h^2) sin^2(pi h / 2).
  double Lambda = -3.0 * (4.0 * Alpha / (H * H)) * S * S;
  double Decay = std::exp(Lambda * T);
  initialCondition(Y);
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X)
        Y.at(X, Yc, Z) *= Decay;
}

//===----------------------------------------------------------------------===//
// ReactionDiffusion3D
//===----------------------------------------------------------------------===//

ReactionDiffusion3DIVP::ReactionDiffusion3DIVP(long N, double Diffusion)
    : N(N), Diffusion(Diffusion), H(1.0 / static_cast<double>(N + 1)) {
  double Scale = Diffusion / (H * H);
  Spec = StencilSpec::star3d(1, -6.0 * Scale, Scale);
  Spec.ExtraFlopsPerLup = 3; // u - u^3: two muls, one sub.
}

void ReactionDiffusion3DIVP::initialCondition(Grid &Y) const {
  Rng R(7);
  Y.fillRandom(R);
  // Scale into the bistable wells' basin.
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X)
        Y.at(X, Yc, Z) *= 0.5;
}

double ReactionDiffusion3DIVP::suggestedDt() const {
  return 0.15 * H * H / Diffusion;
}

//===----------------------------------------------------------------------===//
// Advection3D
//===----------------------------------------------------------------------===//

Advection3DIVP::Advection3DIVP(long N, double Vx, double Vy, double Vz)
    : N(N), Vx(Vx), Vy(Vy), Vz(Vz), H(1.0 / static_cast<double>(N + 1)) {
  // First-order upwind for positive velocities:
  //   u' = -v * (u(x) - u(x-1)) / h  per dimension.
  assert(Vx >= 0 && Vy >= 0 && Vz >= 0 && "upwind assumes v >= 0");
  std::vector<StencilPoint> Pts;
  double Center = -(Vx + Vy + Vz) / H;
  Pts.push_back({0, 0, 0, Center, 0});
  if (Vx > 0)
    Pts.push_back({-1, 0, 0, Vx / H, 0});
  if (Vy > 0)
    Pts.push_back({0, -1, 0, Vy / H, 0});
  if (Vz > 0)
    Pts.push_back({0, 0, -1, Vz / H, 0});
  Spec = StencilSpec("advect3d-upwind", std::move(Pts));
}

void Advection3DIVP::initialCondition(Grid &Y) const {
  // A smooth bump in the lower corner.
  Y.fillFunction([&](long X, long Yc, long Z) {
    double Dx = (X + 1) * H - 0.3;
    double Dy = (Yc + 1) * H - 0.3;
    double Dz = (Z + 1) * H - 0.3;
    return std::exp(-40.0 * (Dx * Dx + Dy * Dy + Dz * Dz));
  });
}

double Advection3DIVP::suggestedDt() const {
  double VMax = std::max({Vx, Vy, Vz, 1e-12});
  return 0.5 * H / VMax; // CFL.
}

//===----------------------------------------------------------------------===//
// InverterChain
//===----------------------------------------------------------------------===//

InverterChainIVP::InverterChainIVP(long N) : N(N) {
  // Structural proxy for the performance model: bandwidth-1 chain with a
  // handful of pointwise flops for the nonlinearity.
  ProxySpec = StencilSpec(
      "inverter-proxy",
      {{0, 0, 0, 1.0, 0}, {-1, 0, 0, 1.0, 0}});
  ProxySpec.ExtraFlopsPerLup = 6;
}

double InverterChainIVP::uIn(double T) const {
  // A smooth pulse driving the first inverter.
  double Phase = T - std::floor(T);
  return Phase < 0.5 ? 5.0 : 0.0;
}

void InverterChainIVP::initialCondition(Grid &Y) const {
  for (long X = 0; X < N; ++X)
    Y.at(X, 0, 0) = (X % 2 == 0) ? 0.0 : UOp;
  Y.fillHalo(0.0);
}

double InverterChainIVP::suggestedDt() const { return 0.05 * Tau; }

void InverterChainIVP::evalRHS(double T, const Grid &Y, Grid &Out) const {
  auto G = [&](double V) { return Beta * V * V / (1.0 + V * V); };
  Out.at(0, 0, 0) = (uIn(T) - Y.at(0, 0, 0)) / Tau;
  for (long X = 1; X < N; ++X)
    Out.at(X, 0, 0) = (UOp - Y.at(X, 0, 0) - G(Y.at(X - 1, 0, 0))) / Tau;
}

//===----------------------------------------------------------------------===//
// Burgers3D
//===----------------------------------------------------------------------===//

Burgers3DIVP::Burgers3DIVP(long N, double Viscosity)
    : N(N), Nu(Viscosity), H(1.0 / static_cast<double>(N + 1)) {
  double Scale = Nu / (H * H);
  ProxySpec = StencilSpec::star3d(1, -6.0 * Scale, Scale);
  // Advection adds ~3 diffs + 3 muls + adds per LUP.
  ProxySpec.ExtraFlopsPerLup = 8;
}

void Burgers3DIVP::initialCondition(Grid &Y) const {
  const double Pi = std::acos(-1.0);
  Y.fillFunction([&](long X, long Yc, long Z) {
    return std::sin(Pi * (X + 1) * H) * std::sin(Pi * (Yc + 1) * H) *
           std::sin(Pi * (Z + 1) * H);
  });
}

double Burgers3DIVP::suggestedDt() const {
  // Diffusion bound dominates for the default viscosity/size.
  return 0.15 * H * H / std::max(Nu, 1e-12);
}

void Burgers3DIVP::evalRHS(double T, const Grid &Y, Grid &Out) const {
  (void)T;
  double InvH2 = Nu / (H * H);
  double Inv2H = 1.0 / (2.0 * H);
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X) {
        double U = Y.at(X, Yc, Z);
        double Lap = Y.at(X + 1, Yc, Z) + Y.at(X - 1, Yc, Z) +
                     Y.at(X, Yc + 1, Z) + Y.at(X, Yc - 1, Z) +
                     Y.at(X, Yc, Z + 1) + Y.at(X, Yc, Z - 1) - 6.0 * U;
        double Grad = (Y.at(X + 1, Yc, Z) - Y.at(X - 1, Yc, Z)) +
                      (Y.at(X, Yc + 1, Z) - Y.at(X, Yc - 1, Z)) +
                      (Y.at(X, Yc, Z + 1) - Y.at(X, Yc, Z - 1));
        Out.at(X, Yc, Z) = InvH2 * Lap - U * Inv2H * Grad;
      }
}

std::vector<std::unique_ptr<IVP>> ys::allBuiltinIVPs(long N3d, long N1d) {
  std::vector<std::unique_ptr<IVP>> IVPs;
  IVPs.push_back(std::make_unique<Heat2DIVP>(N3d * 4));
  IVPs.push_back(std::make_unique<Heat3DIVP>(N3d));
  IVPs.push_back(std::make_unique<ReactionDiffusion3DIVP>(N3d));
  IVPs.push_back(std::make_unique<Advection3DIVP>(N3d));
  IVPs.push_back(std::make_unique<Burgers3DIVP>(N3d));
  IVPs.push_back(std::make_unique<InverterChainIVP>(N1d));
  return IVPs;
}
