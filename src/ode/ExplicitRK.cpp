//===- ode/ExplicitRK.cpp - Explicit Runge-Kutta integrator ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/ExplicitRK.h"

#include "codegen/KernelExecutor.h"
#include "ode/AxpyLoops.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ys;

const char *ys::rkVariantName(RKVariant V) {
  switch (V) {
  case RKVariant::StageSeparate:
    return "stage-separate";
  case RKVariant::FusedArgument:
    return "fused-argument";
  case RKVariant::FusedUpdate:
    return "fused-update";
  }
  return "unknown";
}

ExplicitRKIntegrator::ExplicitRKIntegrator(ButcherTableau Tableau,
                                           RKVariant Variant,
                                           KernelConfig Config)
    : TB(std::move(Tableau)), Variant(Variant), Config(Config) {
  assert(TB.isExplicit() && "explicit integrator needs an explicit tableau");
  assert(TB.checkConsistency().empty() && "inconsistent tableau");
}

bool ExplicitRKIntegrator::supports(const IVP &Problem) const {
  if (Variant == RKVariant::StageSeparate)
    return true;
  return Problem.hasStencilForm();
}

void ExplicitRKIntegrator::prepareWorkspace(const IVP &Problem,
                                            RKWorkspace &WS) const {
  GridDims Dims = Problem.dims();
  int Halo = Problem.halo();
  Fold F = Config.VectorFold;
  auto needsRealloc = [&](const Grid &G) {
    return !(G.dims() == Dims) || G.halo() != Halo || !(G.fold() == F);
  };
  if (WS.K.size() != TB.Stages ||
      (!WS.K.empty() && needsRealloc(WS.K.front()))) {
    WS.K.clear();
    for (unsigned S = 0; S < TB.Stages; ++S)
      WS.K.emplace_back(Dims, Halo, F);
  }
  if (needsRealloc(WS.Arg))
    WS.Arg = Grid(Dims, Halo, F);
  if (needsRealloc(WS.Next))
    WS.Next = Grid(Dims, Halo, F);
}

namespace {

/// Out = stencil(Y) + pointwise(Y) for stencil-form IVPs under a kernel
/// config; falls back to the IVP's own RHS otherwise.
void evalRHSFast(const IVP &Problem, const KernelConfig &Config, double T,
                 const Grid &Y, Grid &Out, ThreadPool *Pool) {
  if (!Problem.hasStencilForm()) {
    Problem.evalRHS(T, Y, Out);
    return;
  }
  KernelExecutor Exec(Problem.rhsStencil(), Config);
  Exec.runSweep({&Y}, Out, Pool);
  if (!Problem.hasPointwise())
    return;
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X)
        Out.at(X, Yc, Z) += Problem.pointwise(Y.at(X, Yc, Z));
}

} // namespace

void ExplicitRKIntegrator::stepStageSeparate(const IVP &Problem, double T,
                                             double H, Grid &Y,
                                             RKWorkspace &WS,
                                             ThreadPool *Pool) const {
  unsigned S = TB.Stages;
  WS.Arg.copyHaloFrom(Y);

  for (unsigned I = 0; I < S; ++I) {
    // Collect this stage's nonzero coefficients.
    ode_detail::TermList Terms;
    for (unsigned J = 0; J < I; ++J)
      if (TB.a(I, J) != 0.0)
        Terms.push_back({&WS.K[J], TB.a(I, J)});

    const Grid *ArgGrid = &Y;
    if (!Terms.empty()) {
      // Arg = Y + h * sum_j a_ij K_j (axpy sweep).
      ode_detail::axpyInterior(Y, Terms, H, WS.Arg);
      ArgGrid = &WS.Arg;
    }
    evalRHSFast(Problem, Config, T + TB.c(I) * H, *ArgGrid, WS.K[I], Pool);
  }

  // Update sweep: Y += h * sum b_i K_i; embedded error alongside.
  bool Embedded = TB.hasEmbedded();
  ode_detail::TermList UpdateTerms, ErrTerms;
  for (unsigned I = 0; I < S; ++I) {
    if (TB.b(I) != 0.0)
      UpdateTerms.push_back({&WS.K[I], TB.b(I)});
    if (Embedded && TB.b(I) - TB.b2(I) != 0.0)
      ErrTerms.push_back({&WS.K[I], TB.b(I) - TB.b2(I)});
  }
  double MaxErr = ode_detail::updateInterior(Y, UpdateTerms, ErrTerms, H);
  LastErrorEstimate = Embedded ? MaxErr : 0.0;
}

void ExplicitRKIntegrator::stepFused(const IVP &Problem, double T, double H,
                                     Grid &Y, RKWorkspace &WS,
                                     ThreadPool *Pool, bool FuseUpdate) const {
  (void)T;
  (void)Pool;
  assert(Problem.hasStencilForm() && "fused variants need the stencil form");
  const StencilSpec &Spec = Problem.rhsStencil();
  const std::vector<StencilPoint> &Points = Spec.points();
  const GridDims &D = Y.dims();
  unsigned S = TB.Stages;
  unsigned NumPoints = Spec.numPoints();
  bool Pointwise = Problem.hasPointwise();
  if (FuseUpdate)
    WS.Next.copyHaloFrom(Y);

  bool FastPath = Y.hasScalarLayout();

  for (unsigned I = 0; I < S; ++I) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J < I; ++J)
      if (TB.a(I, J) != 0.0)
        Terms.push_back({J, TB.a(I, J)});

    bool LastStage = I + 1 == S;
    bool DoUpdate = FuseUpdate && LastStage;

    if (FastPath) {
      // Rolling-window fused kernel (the shape of Offsite's generated
      // fused code): the stage argument Y + h*sum a_ij K_j is computed
      // once per cell into a ring of 2r+1 cache-resident planes; the RHS
      // stencil reads neighbors from the ring.  FP operation order per
      // value is identical to the stage-separate variant, so results are
      // bit-identical.
      int Radius = Spec.radius();
      int Halo = Y.halo();
      long PadX = Y.padX(), PadY = Y.padY();
      size_t PlaneElems = static_cast<size_t>(PadX) * PadY;
      unsigned RingSize = static_cast<unsigned>(2 * Radius + 1);
      std::vector<std::vector<double>> Ring(RingSize);
      for (auto &Plane : Ring)
        Plane.assign(PlaneElems, 0.0);

      size_t NT = Terms.size();
      const double *TBase[16];
      double TCoeff[16];
      assert(NT <= 16 && "stage term table overflow");
      for (size_t J = 0; J < NT; ++J) {
        TBase[J] = WS.K[Terms[J].first].data();
        TCoeff[J] = Terms[J].second;
      }
      const double *Yd = Y.data();
      double *Ki = WS.K[I].data();
      double *NextD = FuseUpdate ? WS.Next.data() : nullptr;
      const double *UBase[16];
      double UCoeff[16];
      size_t NU = 0;
      if (DoUpdate)
        for (unsigned B = 0; B < S; ++B)
          if (TB.b(B) != 0.0) {
            UBase[NU] = WS.K[B].data();
            UCoeff[NU] = TB.b(B);
            ++NU;
          }

      // Computes the argument plane for interior z-coordinate Zp into its
      // ring slot (whole padded plane, including x/y halo).
      auto fillArgPlane = [&](long Zp) {
        unsigned Slot =
            static_cast<unsigned>((Zp + Radius + RingSize) % RingSize);
        double *Dst = Ring[Slot].data();
        size_t SlabBase = static_cast<size_t>(Zp + Halo) * PlaneElems;
        for (size_t E = 0; E < PlaneElems; ++E) {
          double Acc = 0.0;
          for (size_t J = 0; J < NT; ++J)
            Acc += TCoeff[J] * TBase[J][SlabBase + E];
          Dst[E] = Yd[SlabBase + E] + H * Acc;
        }
      };

      for (long Zp = -Radius; Zp < Radius; ++Zp)
        fillArgPlane(Zp);

      for (long Zo = 0; Zo < D.Nz; ++Zo) {
        fillArgPlane(Zo + Radius);
        // Per-point plane base pointers for this output plane.
        const double *PointPlane[512];
        long PointRowOff[512];
        double Coeff[512];
        assert(NumPoints <= 512 && "point table overflow");
        for (unsigned P = 0; P < NumPoints; ++P) {
          unsigned Slot = static_cast<unsigned>(
              (Zo + Points[P].Dz + Radius + RingSize) % RingSize);
          PointPlane[P] = Ring[Slot].data();
          PointRowOff[P] = Points[P].Dy * PadX + Points[P].Dx;
          Coeff[P] = Points[P].Coeff;
        }
        unsigned CenterSlot =
            static_cast<unsigned>((Zo + Radius + RingSize) % RingSize);
        const double *CenterPlane = Ring[CenterSlot].data();

        for (long Yc = 0; Yc < D.Ny; ++Yc) {
          size_t Row = Y.linearIndex(0, Yc, Zo);
          long PlaneRow = (Yc + Halo) * PadX + Halo;
          for (long X = 0; X < D.Nx; ++X) {
            double Acc = 0.0;
            for (unsigned P = 0; P < NumPoints; ++P)
              Acc += Coeff[P] * PointPlane[P][PlaneRow + PointRowOff[P] + X];
            if (Pointwise)
              Acc += Problem.pointwise(CenterPlane[PlaneRow + X]);
            size_t Idx = Row + X;
            Ki[Idx] = Acc;
            if (DoUpdate) {
              double Upd = 0.0;
              for (size_t U = 0; U < NU; ++U)
                Upd += UCoeff[U] * UBase[U][Idx];
              NextD[Idx] = Yd[Idx] + H * Upd;
            }
          }
        }
      }
      continue;
    }

    // Layout-generic path.  Stage argument value at a neighbor
    // coordinate, matching the axpy expression of the stage-separate
    // variant term by term.
    auto argAt = [&](long X, long Yc, long Z) {
      double Acc = 0.0;
      for (const auto &[J, Aij] : Terms)
        Acc += Aij * WS.K[J].at(X, Yc, Z);
      return Y.at(X, Yc, Z) + H * Acc;
    };

    for (long Z = 0; Z < D.Nz; ++Z)
      for (long Yc = 0; Yc < D.Ny; ++Yc)
        for (long X = 0; X < D.Nx; ++X) {
          double Acc = 0.0;
          for (const StencilPoint &P : Points)
            Acc += P.Coeff * argAt(X + P.Dx, Yc + P.Dy, Z + P.Dz);
          if (Pointwise)
            Acc += Problem.pointwise(argAt(X, Yc, Z));
          WS.K[I].at(X, Yc, Z) = Acc;
          if (DoUpdate) {
            double Upd = 0.0;
            for (unsigned B = 0; B < S; ++B)
              if (TB.b(B) != 0.0)
                Upd += TB.b(B) * WS.K[B].at(X, Yc, Z);
            WS.Next.at(X, Yc, Z) = Y.at(X, Yc, Z) + H * Upd;
          }
        }
  }

  if (FuseUpdate) {
    std::swap(Y, WS.Next);
    LastErrorEstimate = 0.0;
    return;
  }

  // Separate update sweep (FusedArgument).
  ode_detail::TermList UpdateTerms;
  for (unsigned I = 0; I < S; ++I)
    if (TB.b(I) != 0.0)
      UpdateTerms.push_back({&WS.K[I], TB.b(I)});
  ode_detail::updateInterior(Y, UpdateTerms, {}, H);
  LastErrorEstimate = 0.0;
}

void ExplicitRKIntegrator::step(const IVP &Problem, double T, double H,
                                Grid &Y, RKWorkspace &WS,
                                ThreadPool *Pool) const {
  assert(supports(Problem) && "variant unsupported for this IVP");
  assert(Y.dims() == Problem.dims() && "state dims mismatch");
  assert(WS.K.size() == TB.Stages && "workspace not prepared");
  assert(WS.K[0].fold() == Y.fold() && WS.K[0].halo() == Y.halo() &&
         "workspace geometry mismatch; call prepareWorkspace");
  switch (Variant) {
  case RKVariant::StageSeparate:
    stepStageSeparate(Problem, T, H, Y, WS, Pool);
    return;
  case RKVariant::FusedArgument:
    stepFused(Problem, T, H, Y, WS, Pool, /*FuseUpdate=*/false);
    return;
  case RKVariant::FusedUpdate:
    stepFused(Problem, T, H, Y, WS, Pool, /*FuseUpdate=*/true);
    return;
  }
}

double ExplicitRKIntegrator::integrate(const IVP &Problem, double T0,
                                       double H, int Steps, Grid &Y,
                                       RKWorkspace &WS,
                                       ThreadPool *Pool) const {
  prepareWorkspace(Problem, WS);
  double T = T0;
  for (int StepIdx = 0; StepIdx < Steps; ++StepIdx) {
    step(Problem, T, H, Y, WS, Pool);
    T = T0 + (StepIdx + 1) * H;
  }
  return T;
}

RKStepStructure ExplicitRKIntegrator::stepStructure(const IVP &Problem) const {
  RKStepStructure St;
  const StencilSpec &Spec = Problem.rhsStencil();
  unsigned S = TB.Stages;
  unsigned RhsFlops = Spec.flopsPerLup();

  auto nnzRow = [&](unsigned I) {
    unsigned N = 0;
    for (unsigned J = 0; J < I; ++J)
      if (TB.a(I, J) != 0.0)
        ++N;
    return N;
  };
  unsigned NnzB = 0;
  for (unsigned I = 0; I < S; ++I)
    if (TB.b(I) != 0.0)
      ++NnzB;

  for (unsigned I = 0; I < S; ++I) {
    unsigned Nnz = nnzRow(I);
    if (Variant == RKVariant::StageSeparate) {
      if (Nnz > 0) {
        // Arg = Y + h * sum a_ij K_j: center reads of Y and the K_j.
        RKStepStructure::Sweep Axpy;
        Axpy.What = format("axpy-arg stage %u", I);
        Axpy.CenterInputs = Nnz + 1;
        Axpy.FlopsPerLup = 2 * Nnz;
        St.Sweeps.push_back(Axpy);
      }
      RKStepStructure::Sweep Rhs;
      Rhs.What = format("rhs stage %u", I);
      Rhs.StencilInputs = 1;
      Rhs.FlopsPerLup = RhsFlops;
      Rhs.IsRhs = true;
      St.Sweeps.push_back(Rhs);
    } else {
      bool DoUpdate = Variant == RKVariant::FusedUpdate && I + 1 == S;
      // Rolling-window fused sweep: the argument is materialized once per
      // cell into a cache-resident plane ring, so the state carries the
      // stencil access pattern (the ring's plane-window demand) while the
      // stage grids stream once at the center.
      RKStepStructure::Sweep Fused;
      Fused.What = format("fused rhs stage %u", I);
      Fused.StencilInputs = 1;
      Fused.CenterInputs = Nnz;
      Fused.FlopsPerLup = RhsFlops + 2 * Nnz;
      Fused.IsRhs = true;
      if (DoUpdate) {
        // The update reads the b-weighted stage grids at the center;
        // stages already streaming for the argument (a_Ij != 0) and the
        // stage being produced add no new stream.
        for (unsigned B = 0; B + 1 < S; ++B)
          if (TB.b(B) != 0.0 && TB.a(I, B) == 0.0)
            ++Fused.CenterInputs;
        Fused.Outputs = 2; // K_last and the new state.
        Fused.FlopsPerLup += 2 * NnzB;
      }
      St.Sweeps.push_back(Fused);
    }
  }
  if (Variant != RKVariant::FusedUpdate) {
    RKStepStructure::Sweep Upd;
    Upd.What = "update";
    Upd.CenterInputs = NnzB + 1;
    Upd.FlopsPerLup = 2 * NnzB;
    St.Sweeps.push_back(Upd);
  }

  St.GridsAllocated = S + 2 + (Variant == RKVariant::FusedUpdate ? 1 : 0);
  return St;
}
