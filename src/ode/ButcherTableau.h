//===- ode/ButcherTableau.h - Runge-Kutta tableaus ---------------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Butcher tableaus for Runge-Kutta methods: the explicit methods Offsite
/// tunes (fixed-step and embedded pairs) and the implicit collocation
/// methods (Radau IIA, Lobatto IIIC, Gauss) that serve as base methods of
/// the PIRK predictor-corrector schemes.  Includes consistency and
/// order-condition checks used by the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_BUTCHERTABLEAU_H
#define YS_ODE_BUTCHERTABLEAU_H

#include <string>
#include <vector>

namespace ys {

/// A Runge-Kutta Butcher tableau.
struct ButcherTableau {
  std::string Name;
  unsigned Stages = 0;
  std::vector<double> A;  ///< Stages x Stages, row-major.
  std::vector<double> B;  ///< Weights (size Stages).
  std::vector<double> B2; ///< Embedded weights (empty if none).
  std::vector<double> C;  ///< Nodes (size Stages).
  unsigned Order = 0;
  unsigned EmbeddedOrder = 0;

  double a(unsigned I, unsigned J) const { return A[I * Stages + J]; }
  double b(unsigned I) const { return B[I]; }
  double b2(unsigned I) const { return B2[I]; }
  double c(unsigned I) const { return C[I]; }

  bool hasEmbedded() const { return !B2.empty(); }

  /// True if A is strictly lower triangular.
  bool isExplicit() const;

  /// Number of nonzero a(i,j) entries (the axpy work of stage arguments).
  unsigned numNonzeroA() const;

  /// Checks row-sum consistency (c_i == sum_j a_ij), weight consistency
  /// (sum b == 1) and the classical order conditions up to
  /// min(Order, 4).  Returns an empty string when all hold (tolerance
  /// 1e-12), else a diagnostic.
  std::string checkConsistency() const;

  /// \name Explicit methods (Offsite's tuning targets).
  /// @{
  static ButcherTableau explicitEuler();    ///< Order 1.
  static ButcherTableau heun2();            ///< Order 2.
  static ButcherTableau ralston2();         ///< Order 2 (min error bound).
  static ButcherTableau kutta3();           ///< Order 3.
  static ButcherTableau ssprk3();           ///< Order 3, SSP.
  static ButcherTableau classicRK4();       ///< Order 4.
  static ButcherTableau threeEighthsRK4();  ///< Order 4 (3/8 rule).
  static ButcherTableau bogackiShampine32();///< Order 3(2) embedded.
  static ButcherTableau fehlberg45();       ///< Order 4(5) embedded (RKF45).
  static ButcherTableau cashKarp45();       ///< Order 5(4) embedded.
  static ButcherTableau dormandPrince54();  ///< Order 5(4) embedded (DOPRI5).
  /// @}

  /// \name Implicit collocation bases for PIRK.
  /// @{
  static ButcherTableau gauss2();       ///< 2-stage Gauss-Legendre, order 4.
  static ButcherTableau radauIIA2();    ///< 2-stage Radau IIA, order 3.
  static ButcherTableau radauIIA3();    ///< 3-stage Radau IIA, order 5.
  static ButcherTableau lobattoIIIC3(); ///< 3-stage Lobatto IIIC, order 4.
  /// @}

  /// All built-in explicit tableaus.
  static std::vector<ButcherTableau> allExplicit();
  /// All built-in implicit (PIRK base) tableaus.
  static std::vector<ButcherTableau> allImplicitBases();
};

} // namespace ys

#endif // YS_ODE_BUTCHERTABLEAU_H
