//===- ode/ExplicitRK.h - Explicit Runge-Kutta integrator --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit Runge-Kutta time integration over grid IVPs, with the
/// implementation variants Offsite enumerates.  All variants compute the
/// bit-identical update (same operation order per point); they differ in
/// how the work is organized over memory — which is exactly what the
/// paper's tuning selects between:
///
///  * StageSeparate: materialize each stage argument grid with an axpy
///    sweep, then one RHS sweep per stage, then one update sweep.
///    Always available, maximal memory traffic.
///  * FusedArgument: rebuild the stage argument on the fly inside the RHS
///    sweep (once per stencil point), eliminating the argument grids and
///    their sweeps at the cost of extra flops.  Requires the stencil form.
///  * FusedUpdate: FusedArgument plus the final state update folded into
///    the last stage sweep.  Requires the stencil form.
///
/// The integrator reports its sweep/traffic structure so the Offsite layer
/// can predict variant cost with the ECM model.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_EXPLICITRK_H
#define YS_ODE_EXPLICITRK_H

#include "codegen/KernelConfig.h"
#include "ode/ButcherTableau.h"
#include "ode/IVP.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace ys {

/// Implementation-variant selector.
enum class RKVariant {
  StageSeparate,
  FusedArgument,
  FusedUpdate,
};

const char *rkVariantName(RKVariant V);

/// Reusable per-integrator grid workspace.
struct RKWorkspace {
  std::vector<Grid> K; ///< One grid per stage.
  Grid Arg;            ///< Stage-argument buffer (StageSeparate).
  Grid Next;           ///< New-state buffer (FusedUpdate).
};

/// Structural cost of one step (input to the Offsite predictor).
struct RKStepStructure {
  /// One grid sweep of a step.  Inputs are split by access pattern:
  /// stencil inputs are traversed with the RHS offset pattern (the state
  /// and, in fused variants, the stage grids whose argument is rebuilt at
  /// every offset); center inputs are read at offset zero only (axpy and
  /// update operands).
  struct Sweep {
    std::string What;
    unsigned StencilInputs = 0;
    unsigned CenterInputs = 0;
    unsigned Outputs = 1;
    unsigned FlopsPerLup = 0;
    bool IsRhs = false; ///< Applies the RHS stencil (has its radius).

    unsigned gridsTouched() const {
      return StencilInputs + CenterInputs + Outputs;
    }
  };
  std::vector<Sweep> Sweeps;
  unsigned GridsAllocated = 0;
};

/// Fixed-step explicit RK integrator over a single-grid IVP.
class ExplicitRKIntegrator {
public:
  /// \p Tableau must be explicit.  \p Config controls the execution of
  /// RHS sweeps (blocking/threads) for stencil-form IVPs.
  ExplicitRKIntegrator(ButcherTableau Tableau, RKVariant Variant,
                       KernelConfig Config = KernelConfig());

  const ButcherTableau &tableau() const { return TB; }
  RKVariant variant() const { return Variant; }

  /// True if \p Problem supports this variant.
  bool supports(const IVP &Problem) const;

  /// Allocates (or reuses) workspace for \p Problem.
  void prepareWorkspace(const IVP &Problem, RKWorkspace &WS) const;

  /// Advances Y by one step of size H at time T.
  void step(const IVP &Problem, double T, double H, Grid &Y, RKWorkspace &WS,
            ThreadPool *Pool = nullptr) const;

  /// Advances Y by \p Steps fixed steps from \p T0; returns the final time.
  double integrate(const IVP &Problem, double T0, double H, int Steps,
                   Grid &Y, RKWorkspace &WS, ThreadPool *Pool = nullptr) const;

  /// The step's sweep structure for \p Problem (for the cost model).
  RKStepStructure stepStructure(const IVP &Problem) const;

  /// Embedded-pair error estimate of the last step() call; only valid if
  /// the tableau hasEmbedded() and the variant is StageSeparate.
  double lastErrorEstimate() const { return LastErrorEstimate; }

private:
  void stepStageSeparate(const IVP &Problem, double T, double H, Grid &Y,
                         RKWorkspace &WS, ThreadPool *Pool) const;
  void stepFused(const IVP &Problem, double T, double H, Grid &Y,
                 RKWorkspace &WS, ThreadPool *Pool, bool FuseUpdate) const;

  ButcherTableau TB;
  RKVariant Variant;
  KernelConfig Config;
  mutable double LastErrorEstimate = 0.0;
};

} // namespace ys

#endif // YS_ODE_EXPLICITRK_H
