//===- ode/PIRK.cpp - Parallel iterated Runge-Kutta methods ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/PIRK.h"

#include "codegen/KernelExecutor.h"
#include "ode/AxpyLoops.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace ys;

PIRKIntegrator::PIRKIntegrator(ButcherTableau Base, unsigned Corrector,
                               RKVariant Variant, KernelConfig Config)
    : TB(std::move(Base)), M(Corrector), Variant(Variant), Config(Config) {
  assert(TB.checkConsistency().empty() && "inconsistent base tableau");
  assert(Variant != RKVariant::FusedUpdate &&
         "fused-update is not defined for PIRK (update needs K^(M) of all "
         "stages)");
}

unsigned PIRKIntegrator::order() const {
  return std::min(TB.Order, M + 1);
}

bool PIRKIntegrator::supports(const IVP &Problem) const {
  if (Variant == RKVariant::StageSeparate)
    return true;
  return Problem.hasStencilForm();
}

void PIRKIntegrator::prepareWorkspace(const IVP &Problem,
                                      PIRKWorkspace &WS) const {
  GridDims Dims = Problem.dims();
  int Halo = Problem.halo();
  Fold F = Config.VectorFold;
  auto needsRealloc = [&](const Grid &G) {
    return !(G.dims() == Dims) || G.halo() != Halo || !(G.fold() == F);
  };
  auto prepareBank = [&](std::vector<Grid> &Bank) {
    if (Bank.size() != TB.Stages ||
        (!Bank.empty() && needsRealloc(Bank.front()))) {
      Bank.clear();
      for (unsigned S = 0; S < TB.Stages; ++S)
        Bank.emplace_back(Dims, Halo, F);
    }
  };
  prepareBank(WS.KPrev);
  prepareBank(WS.KNext);
  if (needsRealloc(WS.Arg))
    WS.Arg = Grid(Dims, Halo, F);
}

namespace {

void evalRHSFast(const IVP &Problem, const KernelConfig &Config, double T,
                 const Grid &Y, Grid &Out, ThreadPool *Pool) {
  if (!Problem.hasStencilForm()) {
    Problem.evalRHS(T, Y, Out);
    return;
  }
  KernelExecutor Exec(Problem.rhsStencil(), Config);
  Exec.runSweep({&Y}, Out, Pool);
  if (!Problem.hasPointwise())
    return;
  const GridDims &D = Y.dims();
  for (long Z = 0; Z < D.Nz; ++Z)
    for (long Yc = 0; Yc < D.Ny; ++Yc)
      for (long X = 0; X < D.Nx; ++X)
        Out.at(X, Yc, Z) += Problem.pointwise(Y.at(X, Yc, Z));
}

} // namespace

void PIRKIntegrator::step(const IVP &Problem, double T, double H, Grid &Y,
                          PIRKWorkspace &WS, ThreadPool *Pool) const {
  const GridDims &D = Y.dims();
  unsigned S = TB.Stages;
  WS.Arg.copyHaloFrom(Y);

  // Predictor: K^(0)_i = f(t + c_i h, y_n).  The RHS of autonomous grid
  // IVPs is time-independent, but we evaluate per stage anyway to keep the
  // general contract.
  for (unsigned I = 0; I < S; ++I)
    evalRHSFast(Problem, Config, T + TB.c(I) * H, Y, WS.KPrev[I], Pool);

  // Corrector iterations.
  for (unsigned Iter = 0; Iter < M; ++Iter) {
    for (unsigned I = 0; I < S; ++I) {
      ode_detail::TermList Terms;
      for (unsigned J = 0; J < S; ++J)
        if (TB.a(I, J) != 0.0)
          Terms.push_back({&WS.KPrev[J], TB.a(I, J)});

      if (Variant == RKVariant::StageSeparate) {
        ode_detail::axpyInterior(Y, Terms, H, WS.Arg);
        evalRHSFast(Problem, Config, T + TB.c(I) * H, WS.Arg, WS.KNext[I],
                    Pool);
        continue;
      }

      // Fused argument: rebuild the argument per stencil point.
      const StencilSpec &Spec = Problem.rhsStencil();
      const std::vector<StencilPoint> &Points = Spec.points();
      unsigned NumPoints = Spec.numPoints();
      bool Pointwise = Problem.hasPointwise();

      if (Y.hasScalarLayout()) {
        // Rolling-window fused kernel; see ExplicitRK.cpp for the scheme.
        int Radius = Spec.radius();
        int Halo = Y.halo();
        long PadX = Y.padX(), PadY = Y.padY();
        size_t PlaneElems = static_cast<size_t>(PadX) * PadY;
        unsigned RingSize = static_cast<unsigned>(2 * Radius + 1);
        std::vector<std::vector<double>> Ring(RingSize);
        for (auto &Plane : Ring)
          Plane.assign(PlaneElems, 0.0);

        size_t NT = Terms.size();
        const double *TBase[16];
        double TCoeff[16];
        assert(NT <= 16 && "stage term table overflow");
        for (size_t J = 0; J < NT; ++J) {
          TBase[J] = Terms[J].first->data();
          TCoeff[J] = Terms[J].second;
        }
        const double *Yd = Y.data();
        double *Ki = WS.KNext[I].data();

        auto fillArgPlane = [&](long Zp) {
          unsigned Slot =
              static_cast<unsigned>((Zp + Radius + RingSize) % RingSize);
          double *Dst = Ring[Slot].data();
          size_t SlabBase = static_cast<size_t>(Zp + Halo) * PlaneElems;
          for (size_t E = 0; E < PlaneElems; ++E) {
            double Acc = 0.0;
            for (size_t J = 0; J < NT; ++J)
              Acc += TCoeff[J] * TBase[J][SlabBase + E];
            Dst[E] = Yd[SlabBase + E] + H * Acc;
          }
        };

        for (long Zp = -Radius; Zp < Radius; ++Zp)
          fillArgPlane(Zp);

        for (long Zo = 0; Zo < D.Nz; ++Zo) {
          fillArgPlane(Zo + Radius);
          const double *PointPlane[512];
          long PointRowOff[512];
          double Coeff[512];
          assert(NumPoints <= 512 && "point table overflow");
          for (unsigned P = 0; P < NumPoints; ++P) {
            unsigned Slot = static_cast<unsigned>(
                (Zo + Points[P].Dz + Radius + RingSize) % RingSize);
            PointPlane[P] = Ring[Slot].data();
            PointRowOff[P] = Points[P].Dy * PadX + Points[P].Dx;
            Coeff[P] = Points[P].Coeff;
          }
          unsigned CenterSlot =
              static_cast<unsigned>((Zo + Radius + RingSize) % RingSize);
          const double *CenterPlane = Ring[CenterSlot].data();

          for (long Yc = 0; Yc < D.Ny; ++Yc) {
            size_t Row = Y.linearIndex(0, Yc, Zo);
            long PlaneRow = (Yc + Halo) * PadX + Halo;
            for (long X = 0; X < D.Nx; ++X) {
              double Acc = 0.0;
              for (unsigned P = 0; P < NumPoints; ++P)
                Acc +=
                    Coeff[P] * PointPlane[P][PlaneRow + PointRowOff[P] + X];
              if (Pointwise)
                Acc += Problem.pointwise(CenterPlane[PlaneRow + X]);
              Ki[Row + X] = Acc;
            }
          }
        }
        continue;
      }

      auto argAt = [&](long X, long Yc, long Z) {
        double Acc = 0.0;
        for (const auto &[G, Aij] : Terms)
          Acc += Aij * G->at(X, Yc, Z);
        return Y.at(X, Yc, Z) + H * Acc;
      };
      for (long Z = 0; Z < D.Nz; ++Z)
        for (long Yc = 0; Yc < D.Ny; ++Yc)
          for (long X = 0; X < D.Nx; ++X) {
            double Acc = 0.0;
            for (const StencilPoint &P : Points)
              Acc += P.Coeff * argAt(X + P.Dx, Yc + P.Dy, Z + P.Dz);
            if (Pointwise)
              Acc += Problem.pointwise(argAt(X, Yc, Z));
            WS.KNext[I].at(X, Yc, Z) = Acc;
          }
    }
    std::swap(WS.KPrev, WS.KNext);
  }

  // Update: y += h sum b_i K^(M)_i (the final values live in KPrev).
  ode_detail::TermList UpdateTerms;
  for (unsigned I = 0; I < S; ++I)
    if (TB.b(I) != 0.0)
      UpdateTerms.push_back({&WS.KPrev[I], TB.b(I)});
  ode_detail::updateInterior(Y, UpdateTerms, {}, H);
}

double PIRKIntegrator::integrate(const IVP &Problem, double T0, double H,
                                 int Steps, Grid &Y, PIRKWorkspace &WS,
                                 ThreadPool *Pool) const {
  prepareWorkspace(Problem, WS);
  double T = T0;
  for (int StepIdx = 0; StepIdx < Steps; ++StepIdx) {
    step(Problem, T, H, Y, WS, Pool);
    T = T0 + (StepIdx + 1) * H;
  }
  return T;
}

RKStepStructure PIRKIntegrator::stepStructure(const IVP &Problem) const {
  RKStepStructure St;
  const StencilSpec &Spec = Problem.rhsStencil();
  unsigned S = TB.Stages;
  unsigned RhsFlops = Spec.flopsPerLup();
  unsigned NnzA = TB.numNonzeroA();
  unsigned NnzPerRow = (NnzA + S - 1) / S; // Average; full rows for PIRK.

  for (unsigned I = 0; I < S; ++I) {
    RKStepStructure::Sweep Pred;
    Pred.What = format("predictor stage %u", I);
    Pred.StencilInputs = 1;
    Pred.FlopsPerLup = RhsFlops;
    Pred.IsRhs = true;
    St.Sweeps.push_back(Pred);
  }
  for (unsigned Iter = 0; Iter < M; ++Iter)
    for (unsigned I = 0; I < S; ++I) {
      if (Variant == RKVariant::StageSeparate) {
        RKStepStructure::Sweep Axpy;
        Axpy.What = format("axpy-arg it%u stage %u", Iter, I);
        Axpy.CenterInputs = NnzPerRow + 1;
        Axpy.FlopsPerLup = 2 * NnzPerRow;
        St.Sweeps.push_back(Axpy);
        RKStepStructure::Sweep Rhs;
        Rhs.What = format("rhs it%u stage %u", Iter, I);
        Rhs.StencilInputs = 1;
        Rhs.FlopsPerLup = RhsFlops;
        Rhs.IsRhs = true;
        St.Sweeps.push_back(Rhs);
      } else {
        // Rolling-window fused corrector sweep (see ExplicitRK.cpp).
        RKStepStructure::Sweep Fused;
        Fused.What = format("fused rhs it%u stage %u", Iter, I);
        Fused.StencilInputs = 1;
        Fused.CenterInputs = NnzPerRow;
        Fused.FlopsPerLup = RhsFlops + 2 * NnzPerRow;
        Fused.IsRhs = true;
        St.Sweeps.push_back(Fused);
      }
    }
  unsigned NnzB = 0;
  for (unsigned I = 0; I < S; ++I)
    if (TB.b(I) != 0.0)
      ++NnzB;
  RKStepStructure::Sweep Upd;
  Upd.What = "update";
  Upd.CenterInputs = NnzB + 1;
  Upd.FlopsPerLup = 2 * NnzB;
  St.Sweeps.push_back(Upd);
  St.GridsAllocated = 2 * S + 2;
  return St;
}
