//===- ode/Stability.cpp - RK stability analysis ----------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/Stability.h"

#include "stencil/StencilSpec.h"

#include <cassert>
#include <cmath>
#include <vector>

using namespace ys;

std::complex<double> ys::stabilityFunction(const ButcherTableau &TB,
                                           std::complex<double> Z) {
  unsigned S = TB.Stages;
  using C = std::complex<double>;

  // Solve (I - z A) W = 1 with dense Gaussian elimination (small S).
  std::vector<C> M(static_cast<size_t>(S) * S);
  std::vector<C> W(S, C(1.0, 0.0));
  for (unsigned I = 0; I < S; ++I)
    for (unsigned J = 0; J < S; ++J)
      M[I * S + J] = (I == J ? C(1.0) : C(0.0)) - Z * TB.a(I, J);

  for (unsigned Col = 0; Col < S; ++Col) {
    // Partial pivoting.
    unsigned Pivot = Col;
    double Best = std::abs(M[Col * S + Col]);
    for (unsigned Row = Col + 1; Row < S; ++Row)
      if (std::abs(M[Row * S + Col]) > Best) {
        Best = std::abs(M[Row * S + Col]);
        Pivot = Row;
      }
    if (Best == 0.0)
      return C(1e30, 0.0); // Singular: treat as wildly unstable.
    if (Pivot != Col) {
      for (unsigned J = 0; J < S; ++J)
        std::swap(M[Col * S + J], M[Pivot * S + J]);
      std::swap(W[Col], W[Pivot]);
    }
    for (unsigned Row = Col + 1; Row < S; ++Row) {
      C Factor = M[Row * S + Col] / M[Col * S + Col];
      for (unsigned J = Col; J < S; ++J)
        M[Row * S + J] -= Factor * M[Col * S + J];
      W[Row] -= Factor * W[Col];
    }
  }
  for (int Row = static_cast<int>(S) - 1; Row >= 0; --Row) {
    C Sum = W[Row];
    for (unsigned J = Row + 1; J < S; ++J)
      Sum -= M[Row * S + J] * W[J];
    W[Row] = Sum / M[Row * S + Row];
  }

  C R(1.0, 0.0);
  for (unsigned I = 0; I < S; ++I)
    R += Z * TB.b(I) * W[I];
  return R;
}

double ys::realAxisStabilityLimit(const ButcherTableau &TB, double Tol,
                                  double SearchLimit) {
  auto Stable = [&](double T) {
    return std::abs(stabilityFunction(TB, {-T, 0.0})) <= 1.0 + 1e-12;
  };

  // Scan outward for the first unstable point.
  double Step = 0.05;
  double LastStable = 0.0;
  double FirstUnstable = -1.0;
  for (double T = Step; T <= SearchLimit; T += Step) {
    if (Stable(T)) {
      LastStable = T;
    } else {
      FirstUnstable = T;
      break;
    }
  }
  if (FirstUnstable < 0)
    return SearchLimit; // Stable on the whole searched interval.

  // Bisect [LastStable, FirstUnstable].
  double Lo = LastStable, Hi = FirstUnstable;
  while (Hi - Lo > Tol) {
    double Mid = 0.5 * (Lo + Hi);
    if (Stable(Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Lo;
}

double ys::stencilSpectralBound(const StencilSpec &Spec) {
  // Sample the symbol sum_p c_p e^{i(kx dx + ky dy + kz dz)} over a grid
  // of wavenumbers including the extreme modes (0 and pi per axis).
  const int Samples = 17;
  const double Pi = std::acos(-1.0);
  double MaxMag = 0.0;
  for (int Ix = 0; Ix < Samples; ++Ix)
    for (int Iy = 0; Iy < Samples; ++Iy)
      for (int Iz = 0; Iz < Samples; ++Iz) {
        double Kx = Pi * Ix / (Samples - 1);
        double Ky = Pi * Iy / (Samples - 1);
        double Kz = Pi * Iz / (Samples - 1);
        std::complex<double> Symbol(0.0, 0.0);
        for (const StencilPoint &P : Spec.points())
          Symbol += P.Coeff *
                    std::exp(std::complex<double>(
                        0.0, Kx * P.Dx + Ky * P.Dy + Kz * P.Dz));
        MaxMag = std::max(MaxMag, std::abs(Symbol));
      }
  return MaxMag;
}

double ys::maxStableTimeStep(const ButcherTableau &TB,
                             const StencilSpec &Spec) {
  double Spectral = stencilSpectralBound(Spec);
  if (Spectral <= 0.0)
    return 1e30;
  return realAxisStabilityLimit(TB) / Spectral;
}
