//===- ode/PIRK.h - Parallel iterated Runge-Kutta methods --------*- C++ -*-===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PIRK methods (parallel iterated Runge-Kutta): fixed-point iteration of
/// an implicit collocation method's stage system,
///
///   K^(0)_i   = f(t + c_i h, y_n)
///   K^(m)_i   = f(t + c_i h, y_n + h sum_j a_ij K^(m-1)_j)
///   y_{n+1}   = y_n + h sum_i b_i K^(M)_i ,
///
/// the explicit ODE method class Offsite was built around (Korch/Rauber).
/// The convergence order is min(base order, M + 1).  All stages of one
/// corrector iteration are independent, which is what makes the method
/// "parallel" — and makes its sweeps ideal stencil fusion candidates.
///
/// Implementation variants mirror ExplicitRK: StageSeparate materializes
/// stage arguments, FusedArgument folds them into the RHS sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef YS_ODE_PIRK_H
#define YS_ODE_PIRK_H

#include "codegen/KernelConfig.h"
#include "ode/ButcherTableau.h"
#include "ode/ExplicitRK.h"
#include "ode/IVP.h"
#include "support/ThreadPool.h"

namespace ys {

/// Workspace: two stage-value banks (current and previous iteration).
struct PIRKWorkspace {
  std::vector<Grid> KPrev;
  std::vector<Grid> KNext;
  Grid Arg;
};

/// Fixed-step PIRK integrator.
class PIRKIntegrator {
public:
  /// \p Base is the (implicit) collocation tableau; \p Corrector the number
  /// of corrector iterations M >= 0.
  PIRKIntegrator(ButcherTableau Base, unsigned Corrector, RKVariant Variant,
                 KernelConfig Config = KernelConfig());

  const ButcherTableau &base() const { return TB; }
  unsigned correctorSteps() const { return M; }
  RKVariant variant() const { return Variant; }

  /// Theoretical convergence order: min(base order, M + 1).
  unsigned order() const;

  bool supports(const IVP &Problem) const;
  void prepareWorkspace(const IVP &Problem, PIRKWorkspace &WS) const;

  void step(const IVP &Problem, double T, double H, Grid &Y,
            PIRKWorkspace &WS, ThreadPool *Pool = nullptr) const;

  double integrate(const IVP &Problem, double T0, double H, int Steps,
                   Grid &Y, PIRKWorkspace &WS,
                   ThreadPool *Pool = nullptr) const;

  /// Sweep structure per step (for the Offsite cost model).
  RKStepStructure stepStructure(const IVP &Problem) const;

private:
  ButcherTableau TB;
  unsigned M;
  RKVariant Variant;
  KernelConfig Config;
};

} // namespace ys

#endif // YS_ODE_PIRK_H
