//===- tests/GridTest.cpp - grid storage tests -----------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/Grid.h"
#include "codegen/KernelExecutor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace ys;

TEST(Grid, DimsAndPadding) {
  Grid G({10, 8, 6}, 2);
  EXPECT_EQ(G.padX(), 14);
  EXPECT_EQ(G.padY(), 12);
  EXPECT_EQ(G.padZ(), 10);
  EXPECT_EQ(G.allocElems(), 14u * 12 * 10);
  EXPECT_TRUE(G.hasScalarLayout());
}

TEST(Grid, FoldedPaddingRoundsUp) {
  Fold F;
  F.X = 4;
  F.Y = 2;
  F.Z = 1;
  Grid G({10, 7, 5}, 1, F);
  // 10+2=12 -> 12 (mult of 4); 7+2=9 -> 10 (mult of 2); 5+2=7 -> 7.
  EXPECT_EQ(G.padX(), 12);
  EXPECT_EQ(G.padY(), 10);
  EXPECT_EQ(G.padZ(), 7);
  EXPECT_FALSE(G.hasScalarLayout());
}

TEST(Grid, ScalarIndexInjective) {
  Grid G({5, 4, 3}, 1);
  std::set<size_t> Seen;
  for (long Z = -1; Z < 4; ++Z)
    for (long Y = -1; Y < 5; ++Y)
      for (long X = -1; X < 6; ++X)
        EXPECT_TRUE(Seen.insert(G.linearIndex(X, Y, Z)).second);
  EXPECT_EQ(Seen.size(), static_cast<size_t>(7 * 6 * 5));
}

TEST(Grid, ScalarNeighborOffsetMatchesIndexDelta) {
  Grid G({8, 8, 8}, 2);
  long Off = G.scalarNeighborOffset(1, -1, 2);
  size_t Base = G.linearIndex(3, 3, 3);
  EXPECT_EQ(static_cast<long>(G.linearIndex(4, 2, 5)) -
                static_cast<long>(Base),
            Off);
}

TEST(Grid, WriteReadRoundTrip) {
  Grid G({6, 5, 4}, 1);
  double V = 0;
  for (long Z = 0; Z < 4; ++Z)
    for (long Y = 0; Y < 5; ++Y)
      for (long X = 0; X < 6; ++X)
        G.at(X, Y, Z) = V++;
  V = 0;
  for (long Z = 0; Z < 4; ++Z)
    for (long Y = 0; Y < 5; ++Y)
      for (long X = 0; X < 6; ++X)
        EXPECT_EQ(G.at(X, Y, Z), V++);
}

TEST(Grid, FillAndSum) {
  Grid G({4, 4, 4}, 1);
  G.fill(2.0);
  EXPECT_DOUBLE_EQ(G.interiorSum(), 2.0 * 64);
}

TEST(Grid, FillFunctionSetsHaloZero) {
  Grid G({4, 4, 4}, 1);
  G.fill(9.0);
  G.fillFunction([](long X, long, long) { return X + 1.0; });
  EXPECT_EQ(G.at(-1, 0, 0), 0.0);
  EXPECT_EQ(G.at(4, 0, 0), 0.0);
  EXPECT_EQ(G.at(0, -1, 2), 0.0);
  EXPECT_EQ(G.at(2, 0, 0), 3.0);
}

TEST(Grid, FillHaloKeepsInterior) {
  Grid G({3, 3, 3}, 1);
  G.fill(1.0);
  G.fillHalo(7.0);
  EXPECT_EQ(G.at(1, 1, 1), 1.0);
  EXPECT_EQ(G.at(-1, 1, 1), 7.0);
  EXPECT_EQ(G.at(3, 3, 3), 7.0);
}

TEST(Grid, FillRandomDeterministicInRange) {
  Grid A({5, 5, 5}, 1), B({5, 5, 5}, 1);
  Rng R1(3), R2(3);
  A.fillRandom(R1);
  B.fillRandom(R2);
  EXPECT_EQ(Grid::maxAbsDiffInterior(A, B), 0.0);
  for (long Z = 0; Z < 5; ++Z)
    for (long Y = 0; Y < 5; ++Y)
      for (long X = 0; X < 5; ++X) {
        EXPECT_GE(A.at(X, Y, Z), -1.0);
        EXPECT_LT(A.at(X, Y, Z), 1.0);
      }
}

TEST(Grid, CopyInteriorAcrossLayouts) {
  Fold F;
  F.X = 2;
  F.Y = 2;
  F.Z = 2;
  Grid Scalar({6, 6, 6}, 1);
  Grid Folded({6, 6, 6}, 1, F);
  Rng R(5);
  Scalar.fillRandom(R);
  Folded.copyInteriorFrom(Scalar);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Scalar, Folded), 0.0);
}

TEST(Grid, CopyHaloFrom) {
  Grid A({4, 4, 4}, 1), B({4, 4, 4}, 1);
  A.fill(1.0);
  B.fill(0.0);
  A.fillHalo(3.0);
  B.copyHaloFrom(A);
  EXPECT_EQ(B.at(-1, 0, 0), 3.0);
  EXPECT_EQ(B.at(0, 0, 0), 0.0); // Interior untouched.
}

TEST(Grid, MaxAbsDiff) {
  Grid A({3, 3, 1}, 0), B({3, 3, 1}, 0);
  A.fill(1.0);
  B.fill(1.0);
  B.at(2, 1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(Grid::maxAbsDiffInterior(A, B), 0.5);
}

TEST(Grid, FootprintBytes) {
  Grid G({10, 10, 10}, 1);
  EXPECT_EQ(G.footprintBytes(), 12ull * 12 * 12 * 8);
}

//===----------------------------------------------------------------------===//
// Folded layout property sweep: index mapping is a bijection and the
// accessors round-trip for every fold of 8 elements.
//===----------------------------------------------------------------------===//

struct FoldParam {
  int X, Y, Z;
};

class FoldLayoutTest : public ::testing::TestWithParam<FoldParam> {};

TEST_P(FoldLayoutTest, IndexBijective) {
  FoldParam P = GetParam();
  Fold F;
  F.X = P.X;
  F.Y = P.Y;
  F.Z = P.Z;
  Grid G({9, 7, 5}, 2, F);
  std::set<size_t> Seen;
  for (long Z = -2; Z < 7; ++Z)
    for (long Y = -2; Y < 9; ++Y)
      for (long X = -2; X < 11; ++X) {
        size_t Idx = G.linearIndex(X, Y, Z);
        EXPECT_LT(Idx, G.allocElems());
        EXPECT_TRUE(Seen.insert(Idx).second)
            << "collision at " << X << "," << Y << "," << Z;
      }
}

TEST_P(FoldLayoutTest, RoundTripValues) {
  FoldParam P = GetParam();
  Fold F;
  F.X = P.X;
  F.Y = P.Y;
  F.Z = P.Z;
  Grid G({8, 6, 4}, 1, F);
  for (long Z = 0; Z < 4; ++Z)
    for (long Y = 0; Y < 6; ++Y)
      for (long X = 0; X < 8; ++X)
        G.at(X, Y, Z) = X * 100 + Y * 10 + Z;
  for (long Z = 0; Z < 4; ++Z)
    for (long Y = 0; Y < 6; ++Y)
      for (long X = 0; X < 8; ++X)
        EXPECT_EQ(G.at(X, Y, Z), X * 100 + Y * 10 + Z);
}

INSTANTIATE_TEST_SUITE_P(
    Folds, FoldLayoutTest,
    ::testing::Values(FoldParam{1, 1, 1}, FoldParam{8, 1, 1},
                      FoldParam{4, 2, 1}, FoldParam{2, 2, 2},
                      FoldParam{1, 8, 1}, FoldParam{2, 4, 1},
                      FoldParam{4, 1, 2}, FoldParam{1, 2, 4}));

TEST(Grid, PeriodicHaloWrapsValues) {
  Grid G({4, 3, 2}, 1);
  G.fillFunction([](long X, long Y, long Z) {
    return X * 100.0 + Y * 10.0 + Z;
  });
  G.applyPeriodicHalo();
  EXPECT_EQ(G.at(-1, 0, 0), G.at(3, 0, 0));
  EXPECT_EQ(G.at(4, 1, 1), G.at(0, 1, 1));
  EXPECT_EQ(G.at(0, -1, 0), G.at(0, 2, 0));
  EXPECT_EQ(G.at(2, 1, 2), G.at(2, 1, 0));
  // Corner wraps in all dims.
  EXPECT_EQ(G.at(-1, -1, -1), G.at(3, 2, 1));
}

TEST(Grid, PeriodicUpwindAdvectionConservesMass) {
  // Forward-Euler upwind advection on a periodic torus conserves the sum
  // exactly (telescoping differences).
  GridDims Dims{8, 6, 4};
  StencilSpec S("upwind", {{0, 0, 0, -1.0, 0}, {-1, 0, 0, 1.0, 0}});
  Grid U(Dims, 1), F(Dims, 1);
  Rng R(17);
  U.fillRandom(R);
  double Mass0 = U.interiorSum();
  for (int Step = 0; Step < 5; ++Step) {
    U.applyPeriodicHalo();
    KernelExecutor::runReference(S, {&U}, F);
    for (long Z = 0; Z < Dims.Nz; ++Z)
      for (long Y = 0; Y < Dims.Ny; ++Y)
        for (long X = 0; X < Dims.Nx; ++X)
          U.at(X, Y, Z) += 0.3 * F.at(X, Y, Z);
  }
  EXPECT_NEAR(U.interiorSum(), Mass0, 1e-10);
}

#include "stencil/GridNorms.h"

TEST(GridNorms, KnownValues) {
  Grid G({2, 2, 1}, 0);
  G.at(0, 0, 0) = 3.0;
  G.at(1, 0, 0) = -4.0;
  G.at(0, 1, 0) = 0.0;
  G.at(1, 1, 0) = 0.0;
  EXPECT_DOUBLE_EQ(normInf(G), 4.0);
  EXPECT_DOUBLE_EQ(normL2(G), std::sqrt(25.0 / 4.0));
  EXPECT_DOUBLE_EQ(normL1(G), 7.0 / 4.0);
  MinMax MM = interiorMinMax(G);
  EXPECT_DOUBLE_EQ(MM.Min, -4.0);
  EXPECT_DOUBLE_EQ(MM.Max, 3.0);
}

TEST(GridNorms, NormInequalities) {
  Grid G({6, 5, 4}, 1);
  Rng R(13);
  G.fillRandom(R);
  // L1 <= L2 <= Linf for normalized discrete norms.
  EXPECT_LE(normL1(G), normL2(G) + 1e-15);
  EXPECT_LE(normL2(G), normInf(G) + 1e-15);
  EXPECT_GT(normL1(G), 0.0);
}

TEST(GridNorms, DiffNorms) {
  Grid A({4, 4, 4}, 0), B({4, 4, 4}, 0);
  A.fill(1.0);
  B.fill(1.0);
  B.at(2, 2, 2) = 3.0;
  EXPECT_DOUBLE_EQ(diffNormInf(A, B), 2.0);
  EXPECT_DOUBLE_EQ(diffNormL2(A, B), std::sqrt(4.0 / 64.0));
}
