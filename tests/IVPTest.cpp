//===- tests/IVPTest.cpp - initial value problem tests ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/IVP.h"
#include "ode/ExplicitRK.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

TEST(IVP, Heat2DBasics) {
  Heat2DIVP P(16);
  EXPECT_EQ(P.dims().Nz, 1);
  EXPECT_EQ(P.halo(), 1);
  EXPECT_TRUE(P.hasStencilForm());
  EXPECT_FALSE(P.hasPointwise());
  EXPECT_EQ(P.rhsStencil().numPoints(), 5u);
}

TEST(IVP, Heat2DRHSMatchesFiniteDifference) {
  // For the interior of a quadratic field u = x^2 (grid-index based),
  // the discrete Laplacian along x is exactly 2/h^2 and 0 along y.
  long N = 12;
  Heat2DIVP P(N);
  double H = 1.0 / (N + 1);
  Grid Y(P.dims(), P.halo());
  // Use interior-only values; pick a row away from boundaries.
  Y.fillFunction([&](long X, long, long) {
    double Xc = (X + 1) * H;
    return Xc * Xc;
  });
  // Extend into the x halo so the FD is exact at tested points.
  for (long Yc = -1; Yc <= N; ++Yc) {
    double X0 = 0.0, X1 = (N + 1) * H;
    Y.at(-1, Yc, 0) = X0 * X0;
    Y.at(N, Yc, 0) = X1 * X1;
  }
  // y halo must replicate the row value for d2/dy2 = 0.
  for (long X = 0; X < N; ++X) {
    double Xc = (X + 1) * H;
    Y.at(X, -1, 0) = Xc * Xc;
    Y.at(X, N, 0) = Xc * Xc;
  }
  Grid Out(P.dims(), P.halo());
  P.evalRHS(0.0, Y, Out);
  EXPECT_NEAR(Out.at(5, 6, 0), 2.0, 1e-6);
  EXPECT_NEAR(Out.at(1, 1, 0), 2.0, 1e-6);
}

TEST(IVP, Heat3DExactSolutionDecays) {
  Heat3DIVP P(8);
  Grid Y0(P.dims(), P.halo()), Y1(P.dims(), P.halo());
  P.exactSolution(0.0, Y0);
  double T = P.suggestedDt() * 50;
  P.exactSolution(T, Y1);
  EXPECT_LT(std::abs(Y1.at(4, 4, 4)), std::abs(Y0.at(4, 4, 4)));
  EXPECT_GT(Y0.interiorSum(), 0.0);
}

TEST(IVP, Heat3DExactSolutionIsRHSEigenfunction) {
  // d/dt u = lambda u for the discrete sine mode: evalRHS(exact(0)) must
  // equal lambda * exact(0).
  long N = 10;
  Heat3DIVP P(N);
  Grid Y(P.dims(), P.halo()), F(P.dims(), P.halo());
  P.exactSolution(0.0, Y);
  P.evalRHS(0.0, Y, F);
  // Recover lambda from the decay of the exact solution over dt.
  double Dt = 1e-3 * P.suggestedDt();
  Grid Ydt(P.dims(), P.halo());
  P.exactSolution(Dt, Ydt);
  double Lambda =
      std::log(Ydt.at(3, 4, 5) / Y.at(3, 4, 5)) / Dt;
  EXPECT_NEAR(F.at(3, 4, 5), Lambda * Y.at(3, 4, 5),
              std::abs(Lambda * Y.at(3, 4, 5)) * 1e-6 + 1e-9);
}

TEST(IVP, ReactionDiffusionPointwise) {
  ReactionDiffusion3DIVP P(8);
  EXPECT_TRUE(P.hasPointwise());
  EXPECT_DOUBLE_EQ(P.pointwise(0.0), 0.0);
  EXPECT_DOUBLE_EQ(P.pointwise(2.0), 2.0 - 8.0);
  EXPECT_GT(P.rhsStencil().ExtraFlopsPerLup, 0u);
}

TEST(IVP, ReactionDiffusionRHSIncludesReaction) {
  ReactionDiffusion3DIVP P(6);
  Grid Y(P.dims(), P.halo()), Out(P.dims(), P.halo());
  Y.fill(0.5); // Uniform field: Laplacian is zero in the deep interior.
  Grid OutUniform(P.dims(), P.halo());
  P.evalRHS(0.0, Y, OutUniform);
  EXPECT_NEAR(OutUniform.at(2, 2, 2), P.pointwise(0.5), 1e-9);
  (void)Out;
}

TEST(IVP, AdvectionUpwindStructure) {
  Advection3DIVP P(8);
  const StencilSpec &S = P.rhsStencil();
  EXPECT_EQ(S.numPoints(), 4u); // Center + 3 upwind neighbors.
  EXPECT_EQ(S.radius(), 1);
  // All neighbor offsets are on the negative side (upwind for v > 0).
  for (const StencilPoint &Pt : S.points())
    EXPECT_LE(Pt.Dx + Pt.Dy + Pt.Dz, 0);
}

TEST(IVP, AdvectionConservesConstantField) {
  Advection3DIVP P(8);
  Grid Y(P.dims(), P.halo()), Out(P.dims(), P.halo());
  Y.fill(3.0); // Constant everywhere incl. halo.
  P.evalRHS(0.0, Y, Out);
  EXPECT_NEAR(Out.at(4, 4, 4), 0.0, 1e-12);
}

TEST(IVP, InverterChainStructure) {
  InverterChainIVP P(64);
  EXPECT_FALSE(P.hasStencilForm());
  EXPECT_EQ(P.dims().Nx, 64);
  EXPECT_EQ(P.dims().Ny, 1);
  EXPECT_EQ(P.halo(), 1);
  EXPECT_EQ(P.rhsStencil().radius(), 1); // Model proxy.
}

TEST(IVP, InverterChainRHSIsBanded) {
  // Changing y_i must affect only f_i and f_{i+1}.
  InverterChainIVP P(32);
  Grid Y(P.dims(), P.halo()), F0(P.dims(), P.halo()),
      F1(P.dims(), P.halo());
  P.initialCondition(Y);
  P.evalRHS(0.2, Y, F0);
  Y.at(10, 0, 0) += 0.125;
  P.evalRHS(0.2, Y, F1);
  for (long I = 0; I < 32; ++I) {
    bool Affected = I == 10 || I == 11;
    if (Affected)
      EXPECT_NE(F0.at(I, 0, 0), F1.at(I, 0, 0)) << I;
    else
      EXPECT_EQ(F0.at(I, 0, 0), F1.at(I, 0, 0)) << I;
  }
}

TEST(IVP, InverterChainEquilibratesTowardRails) {
  // With zero input the first inverter decays toward uIn/UOp rails; just
  // verify the RHS drives values into [0, UOp].
  InverterChainIVP P(16);
  Grid Y(P.dims(), P.halo()), F(P.dims(), P.halo());
  P.initialCondition(Y);
  P.evalRHS(0.0, Y, F);
  for (long I = 0; I < 16; ++I)
    EXPECT_TRUE(std::isfinite(F.at(I, 0, 0)));
}

TEST(IVP, SuggestedDtScalesWithResolution) {
  Heat3DIVP Coarse(8), Fine(16);
  EXPECT_GT(Coarse.suggestedDt(), Fine.suggestedDt() * 3.0);
}

TEST(IVP, AllBuiltinFactory) {
  auto IVPs = allBuiltinIVPs(8, 128);
  ASSERT_EQ(IVPs.size(), 6u);
  for (const auto &P : IVPs) {
    EXPECT_FALSE(P->name().empty());
    EXPECT_GT(P->suggestedDt(), 0.0);
    Grid Y(P->dims(), P->halo());
    P->initialCondition(Y);
    Grid F(P->dims(), P->halo());
    P->evalRHS(0.0, Y, F);
  }
}

TEST(IVP, BurgersStructure) {
  Burgers3DIVP P(8);
  EXPECT_FALSE(P.hasStencilForm());
  EXPECT_EQ(P.rhsStencil().radius(), 1);
  EXPECT_GT(P.rhsStencil().ExtraFlopsPerLup, 0u);
}

TEST(IVP, BurgersConstantFieldPureDiffusionFixedPoint) {
  // For a field constant everywhere (incl. halo), both Lap and Grad
  // vanish: f(u) == 0.
  Burgers3DIVP P(8);
  Grid Y(P.dims(), P.halo()), Out(P.dims(), P.halo());
  Y.fill(2.0);
  P.evalRHS(0.0, Y, Out);
  EXPECT_NEAR(Out.at(4, 4, 4), 0.0, 1e-12);
}

TEST(IVP, BurgersAdvectionTermHasRightSign) {
  // With u > 0 and a positive gradient, -u * grad term must be negative;
  // kill diffusion with a linear-in-x field (Lap == 0).
  long N = 8;
  Burgers3DIVP P(N);
  Grid Y(P.dims(), P.halo()), Out(P.dims(), P.halo());
  for (long Z = -1; Z <= N; ++Z)
    for (long Yc = -1; Yc <= N; ++Yc)
      for (long X = -1; X <= N; ++X)
        Y.at(X, Yc, Z) = 1.0 + 0.1 * X;
  P.evalRHS(0.0, Y, Out);
  EXPECT_LT(Out.at(4, 4, 4), 0.0);
}

TEST(IVP, BurgersIntegratesStably) {
  Burgers3DIVP P(10);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(ButcherTableau::heun2(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  Integ.integrate(P, 0.0, P.suggestedDt(), 10, Y, WS);
  for (long X = 0; X < 10; ++X)
    EXPECT_TRUE(std::isfinite(Y.at(X, 5, 5)));
}
