//===- tests/PIRKTest.cpp - PIRK integrator tests ----------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/PIRK.h"

#include "ode/IVP.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

namespace {

double heatErrorPIRK(const ButcherTableau &Base, unsigned M, RKVariant V,
                     int Steps) {
  Heat2DIVP P(10);
  double TEnd = P.suggestedDt() * 24;
  double H = TEnd / Steps;
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  PIRKIntegrator Integ(Base, M, V);
  PIRKWorkspace WS;
  Integ.integrate(P, 0.0, H, Steps, Y, WS);
  Grid Exact(P.dims(), P.halo());
  P.exactSolution(TEnd, Exact);
  return Grid::maxAbsDiffInterior(Y, Exact);
}

double empiricalOrderPIRK(const ButcherTableau &Base, unsigned M,
                          int BaseSteps) {
  double E1 = heatErrorPIRK(Base, M, RKVariant::StageSeparate, BaseSteps);
  double E2 =
      heatErrorPIRK(Base, M, RKVariant::StageSeparate, BaseSteps * 2);
  return std::log2(E1 / E2);
}

} // namespace

TEST(PIRK, TheoreticalOrderFormula) {
  PIRKIntegrator P0(ButcherTableau::radauIIA2(), 0,
                    RKVariant::StageSeparate);
  EXPECT_EQ(P0.order(), 1u);
  PIRKIntegrator P2(ButcherTableau::radauIIA2(), 2,
                    RKVariant::StageSeparate);
  EXPECT_EQ(P2.order(), 3u); // min(3, 2+1).
  PIRKIntegrator P9(ButcherTableau::radauIIA2(), 9,
                    RKVariant::StageSeparate);
  EXPECT_EQ(P9.order(), 3u); // Capped by the base order.
}

TEST(PIRK, PredictorOnlyIsFirstOrder) {
  double Order = empiricalOrderPIRK(ButcherTableau::gauss2(), 0, 64);
  EXPECT_NEAR(Order, 1.0, 0.3);
}

TEST(PIRK, OneCorrectionIsSecondOrder) {
  double Order = empiricalOrderPIRK(ButcherTableau::gauss2(), 1, 32);
  EXPECT_NEAR(Order, 2.0, 0.35);
}

TEST(PIRK, ThreeCorrectionsReachFourthOrderWithGaussBase) {
  double Order = empiricalOrderPIRK(ButcherTableau::gauss2(), 3, 8);
  EXPECT_GT(Order, 3.2); // min(4, 3+1) = 4 within noise.
}

TEST(PIRK, MoreCorrectorIterationsMoreAccurate) {
  double E0 = heatErrorPIRK(ButcherTableau::radauIIA2(), 0,
                            RKVariant::StageSeparate, 32);
  double E1 = heatErrorPIRK(ButcherTableau::radauIIA2(), 1,
                            RKVariant::StageSeparate, 32);
  double E2 = heatErrorPIRK(ButcherTableau::radauIIA2(), 2,
                            RKVariant::StageSeparate, 32);
  EXPECT_LT(E1, E0);
  EXPECT_LT(E2, E1);
}

TEST(PIRK, FusedVariantMatchesStageSeparate) {
  Heat3DIVP Problem(6);
  double H = Problem.suggestedDt();
  Grid YRef(Problem.dims(), Problem.halo());
  Problem.initialCondition(YRef);
  Grid YVar(Problem.dims(), Problem.halo());
  YVar.copyInteriorFrom(YRef);

  PIRKIntegrator Ref(ButcherTableau::lobattoIIIC3(), 2,
                     RKVariant::StageSeparate);
  PIRKWorkspace WSRef;
  Ref.integrate(Problem, 0.0, H, 2, YRef, WSRef);

  PIRKIntegrator Var(ButcherTableau::lobattoIIIC3(), 2,
                     RKVariant::FusedArgument);
  PIRKWorkspace WSVar;
  Var.integrate(Problem, 0.0, H, 2, YVar, WSVar);

  EXPECT_EQ(Grid::maxAbsDiffInterior(YRef, YVar), 0.0);
}

TEST(PIRK, SupportsNonStencilOnlyStageSeparate) {
  InverterChainIVP P(16);
  PIRKIntegrator Sep(ButcherTableau::radauIIA2(), 1,
                     RKVariant::StageSeparate);
  PIRKIntegrator Fused(ButcherTableau::radauIIA2(), 1,
                       RKVariant::FusedArgument);
  EXPECT_TRUE(Sep.supports(P));
  EXPECT_FALSE(Fused.supports(P));
}

TEST(PIRK, StepStructureScalesWithCorrector) {
  Heat3DIVP P(6);
  PIRKIntegrator M1(ButcherTableau::radauIIA3(), 1,
                    RKVariant::StageSeparate);
  PIRKIntegrator M3(ButcherTableau::radauIIA3(), 3,
                    RKVariant::StageSeparate);
  RKStepStructure S1 = M1.stepStructure(P);
  RKStepStructure S3 = M3.stepStructure(P);
  // Each extra corrector iteration adds 2 sweeps per stage (axpy + rhs).
  EXPECT_EQ(S3.Sweeps.size() - S1.Sweeps.size(), 2u * 2 * 3);
}

TEST(PIRK, IntegratesInverterChainStably) {
  InverterChainIVP P(32);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  PIRKIntegrator Integ(ButcherTableau::radauIIA2(), 2,
                       RKVariant::StageSeparate);
  PIRKWorkspace WS;
  Integ.integrate(P, 0.0, P.suggestedDt(), 40, Y, WS);
  for (long I = 0; I < 32; ++I)
    EXPECT_TRUE(std::isfinite(Y.at(I, 0, 0)));
}
