//===- tests/ReportTest.cpp - Offsite report tests ----------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "offsite/Report.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

struct Fixture {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model{M};
  OffsiteTuner Tuner{Model, 1};
  Heat3DIVP Problem{16};

  std::vector<VariantPrediction> ranked() {
    return Tuner.rank(Tuner.enumerateRK(ButcherTableau::heun2(), Problem),
                      Problem);
  }
};

} // namespace

TEST(Report, WorkingSetScalesWithStages) {
  Fixture F;
  ODEVariant Heun;
  Heun.Tableau = ButcherTableau::heun2();
  ODEVariant Rk4;
  Rk4.Tableau = ButcherTableau::classicRK4();
  VariantWorkingSet A = variantWorkingSet(Heun, F.Problem);
  VariantWorkingSet B = variantWorkingSet(Rk4, F.Problem);
  EXPECT_GT(B.GridsAllocated, A.GridsAllocated);
  EXPECT_EQ(A.BytesPerGrid, 18ull * 18 * 18 * 8);
  EXPECT_EQ(A.TotalBytes, A.BytesPerGrid * A.GridsAllocated);
}

TEST(Report, CsvHasHeaderAndRows) {
  Fixture F;
  auto Ranked = F.ranked();
  std::string Csv = rankingToCsv(Ranked, F.Problem);
  EXPECT_NE(Csv.find("rank,variant,sweeps_per_step"), std::string::npos);
  // Header + one line per variant.
  size_t Lines = 0;
  for (char C : Csv)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, Ranked.size() + 1);
  EXPECT_NE(Csv.find("heun2/"), std::string::npos);
}

TEST(Report, CsvRanksAscending) {
  Fixture F;
  std::string Csv = rankingToCsv(F.ranked(), F.Problem);
  EXPECT_NE(Csv.find("\n1,"), std::string::npos);
  EXPECT_NE(Csv.find("\n2,"), std::string::npos);
}

TEST(Report, MarkdownRendersTable) {
  Fixture F;
  std::string Md = rankingToMarkdown(F.ranked(), F.Problem);
  EXPECT_NE(Md.find("| rank | variant |"), std::string::npos);
  EXPECT_NE(Md.find("| 1 | heun2/"), std::string::npos);
  EXPECT_NE(Md.find("KiB"), std::string::npos);
}

TEST(Report, ValidationCsvAlignsColumns) {
  Fixture F;
  auto Vs = F.Tuner.enumerateRK(ButcherTableau::heun2(), F.Problem);
  RankingValidation V = F.Tuner.validate(Vs, F.Problem, 1, 1);
  std::string Csv = validationToCsv(V);
  EXPECT_NE(Csv.find("measured_seconds_per_step"), std::string::npos);
  size_t Lines = 0;
  for (char C : Csv)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, V.Predicted.size() + 1);
}

TEST(Report, PirkVariantsSupported) {
  Fixture F;
  ODEVariant V;
  V.IsPIRK = true;
  V.Tableau = ButcherTableau::radauIIA2();
  V.Corrector = 2;
  VariantWorkingSet WS = variantWorkingSet(V, F.Problem);
  EXPECT_EQ(WS.GridsAllocated, 2u * 2 + 2); // Two stage banks + Y + Arg.
}
