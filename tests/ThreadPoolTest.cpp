//===- tests/ThreadPoolTest.cpp - tile scheduler tests ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the work-stealing tile scheduler: exact tile coverage,
/// stealing under skewed tile costs, thread-count capping, reentrancy
/// serialization, and clean shutdown.  These run under ThreadSanitizer via
/// the `concurrency` ctest label.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace ys;

namespace {

TEST(ThreadPoolTiles, CoversExactPartition) {
  ThreadPool Pool(4);
  const long NZ = 7, NY = 5; // Not divisible by the thread count.
  std::vector<std::atomic<int>> Hits(NZ * NY);
  Pool.parallelForTiles(NZ, NY, [&](unsigned, long Z, long Y) {
    ASSERT_GE(Z, 0);
    ASSERT_LT(Z, NZ);
    ASSERT_GE(Y, 0);
    ASSERT_LT(Y, NY);
    Hits[Z * NY + Y]++;
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
  EXPECT_EQ(Pool.stats().totalRun(), static_cast<unsigned long long>(NZ * NY));
}

TEST(ThreadPoolTiles, SingleTileRunsInline) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelForTiles(1, 1, [&](unsigned T, long Z, long Y) {
    EXPECT_EQ(T, 0u);
    EXPECT_EQ(Z, 0);
    EXPECT_EQ(Y, 0);
    Count++;
  });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTiles, EmptyTileGridIsNoop) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelForTiles(0, 8, [&](unsigned, long, long) { Count++; });
  Pool.parallelForTiles(8, 0, [&](unsigned, long, long) { Count++; });
  EXPECT_EQ(Count.load(), 0);
}

TEST(ThreadPoolTiles, MaxWorkersCapsParticipants) {
  ThreadPool Pool(4);
  std::mutex M;
  std::set<unsigned> ThreadsSeen;
  Pool.parallelForTiles(
      8, 8,
      [&](unsigned T, long, long) {
        std::lock_guard<std::mutex> Lock(M);
        ThreadsSeen.insert(T);
      },
      /*MaxWorkers=*/2);
  EXPECT_LE(ThreadsSeen.size(), 2u);
  for (unsigned T : ThreadsSeen)
    EXPECT_LT(T, 2u);
  // Stats agree: only the first two slots may have run tasks.
  PoolStats S = Pool.stats();
  ASSERT_EQ(S.Threads.size(), 4u);
  EXPECT_EQ(S.Threads[2].TasksRun, 0ull);
  EXPECT_EQ(S.Threads[3].TasksRun, 0ull);
  EXPECT_EQ(S.totalRun(), 64ull);
}

// Stealing under skewed tile costs.  Tile (0,0) is seeded to thread 0 and
// blocks until every other tile has finished; thread 0's remaining tiles
// can therefore only be completed by other threads stealing them.  Without
// a steal path this test deadlocks (and times out) instead of passing.
TEST(ThreadPoolTiles, StealsUnderSkewedTileCosts) {
  ThreadPool Pool(4);
  const long NZ = 4, NY = 4;
  const int Total = NZ * NY;
  std::atomic<int> OthersDone{0};
  std::vector<std::atomic<int>> Hits(Total);
  Pool.parallelForTiles(NZ, NY, [&](unsigned, long Z, long Y) {
    Hits[Z * NY + Y]++;
    if (Z == 0 && Y == 0) {
      while (OthersDone.load() < Total - 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      OthersDone++;
    }
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
  EXPECT_GT(Pool.stats().totalStolen(), 0ull);
}

// Regression test for the nested-parallelFor deadlock: a task calling back
// into the pool must serialize instead of deadlocking on the join state.
TEST(ThreadPoolTiles, ReentrantUseSerializes) {
  ThreadPool Pool(4);
  std::atomic<long> Inner{0};
  Pool.parallelForTiles(4, 2, [&](unsigned, long, long) {
    Pool.parallelFor(0, 10, [&](long) { Inner++; });
  });
  EXPECT_EQ(Inner.load(), 8 * 10);
}

TEST(ThreadPoolTiles, NestedAcrossPoolsSerializes) {
  ThreadPool Outer(4);
  ThreadPool InnerPool(2);
  std::atomic<long> Count{0};
  Outer.parallelForTiles(4, 4, [&](unsigned, long, long) {
    InnerPool.parallelFor(0, 5, [&](long) { Count++; });
  });
  EXPECT_EQ(Count.load(), 16 * 5);
}

TEST(ThreadPoolTiles, ShutdownWhileIdle) {
  // Construct and destroy pools that never receive work; the destructor
  // must not hang or touch freed state.
  for (int I = 0; I < 8; ++I) {
    ThreadPool Pool(3);
    (void)Pool;
  }
  // And one that worked, then idles before destruction.
  ThreadPool Pool(4);
  std::atomic<int> N{0};
  Pool.parallelForTiles(2, 2, [&](unsigned, long, long) { N++; });
  EXPECT_EQ(N.load(), 4);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

TEST(ThreadPoolTiles, ReusableAcrossJobs) {
  ThreadPool Pool(4);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<long> Sum{0};
    Pool.parallelForTiles(5, 3, [&](unsigned, long Z, long Y) {
      Sum += Z * 3 + Y;
    });
    EXPECT_EQ(Sum.load(), 105); // 0 + 1 + ... + 14.
  }
}

TEST(ThreadPoolTiles, ChunkedWrapperHonorsMaxParts) {
  ThreadPool Pool(4);
  std::mutex M;
  std::vector<std::pair<long, long>> Ranges;
  Pool.parallelForChunked(
      0, 100,
      [&](unsigned, long B, long E) {
        std::lock_guard<std::mutex> Lock(M);
        Ranges.push_back({B, E});
      },
      /*MaxParts=*/2);
  EXPECT_EQ(Ranges.size(), 2u);
  long Total = 0;
  for (auto &[B, E] : Ranges)
    Total += E - B;
  EXPECT_EQ(Total, 100);
}

TEST(ThreadPoolTiles, StatsResetAndBusyTime) {
  ThreadPool Pool(2);
  Pool.parallelForTiles(4, 4, [&](unsigned, long, long) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.totalRun(), 16ull);
  EXPECT_GT(S.totalBusySeconds(), 0.0);
  EXPECT_FALSE(S.str().empty());
  Pool.resetStats();
  EXPECT_EQ(Pool.stats().totalRun(), 0ull);
}

TEST(ThreadPoolTiles, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPoolTiles, UnparseableYsThreadsFallsBackWithWarning) {
  const char *Old = std::getenv("YS_THREADS");
  std::string Saved = Old ? Old : "";
  // Garbage and non-positive values fall back to hardware concurrency
  // (and warn once to stderr) instead of silently running serial.
  setenv("YS_THREADS", "abc", 1);
  unsigned Fallback = ThreadPool::defaultThreadCount();
  EXPECT_GE(Fallback, 1u);
  setenv("YS_THREADS", "-3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), Fallback);
  setenv("YS_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), Fallback);
  setenv("YS_THREADS", "8nope", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), Fallback);
  setenv("YS_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  if (Old)
    setenv("YS_THREADS", Saved.c_str(), 1);
  else
    unsetenv("YS_THREADS");
}

} // namespace
