//===- tests/SmallPiecesTest.cpp - small-utility coverage ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelConfig.h"
#include "ecm/ECMModel.h"
#include "stencil/Grid.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace ys;

TEST(SmallPieces, FoldStr) {
  Fold F;
  EXPECT_EQ(F.str(), "1x1x1");
  F.X = 4;
  F.Y = 2;
  EXPECT_EQ(F.str(), "4x2x1");
  EXPECT_EQ(F.elems(), 8);
  EXPECT_FALSE(F.isScalar());
}

TEST(SmallPieces, GridDimsStrAndLups) {
  GridDims D{512, 256, 128};
  EXPECT_EQ(D.str(), "512x256x128");
  EXPECT_EQ(D.lups(), 512L * 256 * 128);
}

TEST(SmallPieces, BlockSizeStrForms) {
  BlockSize B;
  EXPECT_EQ(B.str(), "unblocked");
  B.Y = 16;
  EXPECT_EQ(B.str(), "Nx16xN");
  B.X = 8;
  B.Z = 4;
  EXPECT_EQ(B.str(), "8x16x4");
}

TEST(SmallPieces, BlockSizeResolvedClampsToDims) {
  BlockSize B;
  B.X = 1000;
  B.Y = 0;
  B.Z = 7;
  BlockSize R = B.resolved({64, 32, 16});
  EXPECT_EQ(R.X, 64);
  EXPECT_EQ(R.Y, 32);
  EXPECT_EQ(R.Z, 7);
}

TEST(SmallPieces, KernelConfigStrMentionsEverything) {
  KernelConfig C;
  C.VectorFold.X = 4;
  C.Block.Y = 8;
  C.WavefrontDepth = 4;
  C.Threads = 16;
  C.StreamingStores = true;
  std::string S = C.str();
  EXPECT_NE(S.find("fold=4x1x1"), std::string::npos);
  EXPECT_NE(S.find("block=Nx8xN"), std::string::npos);
  EXPECT_NE(S.find("wf=4"), std::string::npos);
  EXPECT_NE(S.find("threads=16"), std::string::npos);
  EXPECT_NE(S.find("nt"), std::string::npos);
}

TEST(SmallPieces, KernelConfigEquality) {
  KernelConfig A, B;
  EXPECT_TRUE(A == B);
  B.Block.Y = 4;
  EXPECT_FALSE(A == B);
}

TEST(SmallPieces, EcmPredictionAtZeroCores) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  KernelConfig C;
  ECMPrediction P =
      Model.predict(StencilSpec::heat3d(), {512, 512, 256}, C);
  // Cores == 0 is treated as 1.
  EXPECT_DOUBLE_EQ(P.mlupsAtCores(0), P.mlupsAtCores(1));
}

TEST(SmallPieces, TrafficPredictionStr) {
  MachineModel M = MachineModel::cascadeLakeSP();
  LayerConditionAnalysis LC(M);
  TrafficPrediction T =
      LC.analyze(StencilSpec::heat3d(), {512, 512, 256}, KernelConfig());
  std::string S = T.str();
  EXPECT_NE(S.find("B0="), std::string::npos);
  EXPECT_NE(S.find("reuse="), std::string::npos);
}

TEST(SmallPieces, InCoreTimeStr) {
  MachineModel M = MachineModel::rome();
  InCoreModel IC(M);
  std::string S = IC.analyze(StencilSpec::heat3d(), KernelConfig()).str();
  EXPECT_NE(S.find("TOL="), std::string::npos);
  EXPECT_NE(S.find("vec iters"), std::string::npos);
}

TEST(SmallPieces, TableEmptyRender) {
  Table T({"only", "header"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| only | header |"), std::string::npos);
  EXPECT_EQ(T.numRows(), 0u);
}

TEST(SmallPieces, StencilPointSameOffset) {
  StencilPoint A{1, 2, 3, 0.5, 0};
  StencilPoint B{1, 2, 3, 9.0, 0};
  StencilPoint C{1, 2, 3, 0.5, 1};
  EXPECT_TRUE(A.sameOffset(B)); // Coefficient irrelevant.
  EXPECT_FALSE(A.sameOffset(C)); // Grid matters.
}

TEST(SmallPieces, GridMoveSemantics) {
  Grid A({8, 8, 8}, 1);
  A.at(3, 3, 3) = 42.0;
  const double *Ptr = A.data();
  Grid B = std::move(A);
  EXPECT_EQ(B.data(), Ptr);
  EXPECT_EQ(B.at(3, 3, 3), 42.0);
}
