//===- tests/OffsiteTest.cpp - Offsite tuner tests ---------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "offsite/Offsite.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

ECMModel &clxModel() {
  static MachineModel M = MachineModel::cascadeLakeSP();
  static ECMModel Model(M);
  return Model;
}

} // namespace

TEST(KendallTau, PerfectAgreement) {
  EXPECT_DOUBLE_EQ(kendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
}

TEST(KendallTau, PerfectDisagreement) {
  EXPECT_DOUBLE_EQ(kendallTau({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(KendallTau, PartialAgreement) {
  double Tau = kendallTau({1, 2, 3, 4}, {1, 3, 2, 4});
  EXPECT_GT(Tau, 0.0);
  EXPECT_LT(Tau, 1.0);
}

TEST(KendallTau, ShortSequences) {
  EXPECT_DOUBLE_EQ(kendallTau({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(kendallTau({1.0}, {2.0}), 1.0);
}

TEST(Offsite, EnumerateRKVariantCount) {
  OffsiteTuner Tuner(clxModel());
  Heat3DIVP P(64);
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::classicRK4(), P);
  // 3 fusion variants x {unblocked [, analytic]}.
  EXPECT_GE(Vs.size(), 3u);
  EXPECT_LE(Vs.size(), 6u);
  for (const ODEVariant &V : Vs) {
    EXPECT_FALSE(V.IsPIRK);
    EXPECT_FALSE(V.Name.empty());
  }
}

TEST(Offsite, EnumerateRKNonStencilRestriction) {
  OffsiteTuner Tuner(clxModel());
  InverterChainIVP P(1024);
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::classicRK4(), P);
  for (const ODEVariant &V : Vs)
    EXPECT_EQ(V.Variant, RKVariant::StageSeparate);
}

TEST(Offsite, EnumeratePIRK) {
  OffsiteTuner Tuner(clxModel());
  Heat3DIVP P(64);
  std::vector<ODEVariant> Vs =
      Tuner.enumeratePIRK(ButcherTableau::radauIIA2(), 2, P);
  ASSERT_GE(Vs.size(), 2u);
  for (const ODEVariant &V : Vs) {
    EXPECT_TRUE(V.IsPIRK);
    EXPECT_EQ(V.Corrector, 2u);
  }
}

TEST(Offsite, SweepModelSpecRhs) {
  RKStepStructure::Sweep Sweep;
  Sweep.What = "fused rhs";
  Sweep.IsRhs = true;
  Sweep.StencilInputs = 3; // State + 2 stage grids.
  Sweep.FlopsPerLup = 40;
  StencilSpec Rhs = StencilSpec::star3d(1);
  StencilSpec S = OffsiteTuner::sweepModelSpec(Sweep, Rhs);
  EXPECT_EQ(S.numInputGrids(), 3u);
  EXPECT_EQ(S.numPoints(), 3u * Rhs.numPoints());
  EXPECT_EQ(S.radius(), Rhs.radius());
  EXPECT_GE(S.flopsPerLup(), 40u);
}

TEST(Offsite, SweepModelSpecAxpy) {
  RKStepStructure::Sweep Sweep;
  Sweep.What = "axpy";
  Sweep.IsRhs = false;
  Sweep.CenterInputs = 4;
  Sweep.FlopsPerLup = 6;
  StencilSpec S =
      OffsiteTuner::sweepModelSpec(Sweep, StencilSpec::star3d(1));
  EXPECT_EQ(S.numInputGrids(), 4u);
  EXPECT_EQ(S.radius(), 0);
  // The spec's intrinsic flop count (4 muls + 3 adds) already covers the
  // declared 6 flops; the model uses whichever is larger.
  EXPECT_EQ(S.flopsPerLup(), 7u);
}

TEST(Offsite, SweepModelSpecMixedWithTwoOutputs) {
  RKStepStructure::Sweep Sweep;
  Sweep.What = "fused rhs+update";
  Sweep.IsRhs = true;
  Sweep.StencilInputs = 2;
  Sweep.CenterInputs = 2;
  Sweep.Outputs = 2;
  Sweep.FlopsPerLup = 50;
  StencilSpec Rhs = StencilSpec::star3d(1);
  StencilSpec S = OffsiteTuner::sweepModelSpec(Sweep, Rhs);
  EXPECT_EQ(S.numInputGrids(), 4u);
  EXPECT_EQ(S.OutputGrids, 2u);
  EXPECT_EQ(S.numPoints(), 2u * Rhs.numPoints() + 2u);
}

TEST(Offsite, PredictsFusedFasterThanSeparate) {
  // Memory-bound regime: fewer sweeps must win in predicted time.
  OffsiteTuner Tuner(clxModel(), /*Cores=*/20);
  Heat3DIVP P(256);
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::classicRK4(), P);
  double SecSeparate = -1, SecFusedUpd = -1;
  for (const ODEVariant &V : Vs) {
    if (!V.Config.Block.isUnblocked())
      continue;
    VariantPrediction Pred = Tuner.predict(V, P);
    if (V.Variant == RKVariant::StageSeparate)
      SecSeparate = Pred.SecondsPerStep;
    if (V.Variant == RKVariant::FusedUpdate)
      SecFusedUpd = Pred.SecondsPerStep;
  }
  ASSERT_GT(SecSeparate, 0);
  ASSERT_GT(SecFusedUpd, 0);
  EXPECT_LT(SecFusedUpd, SecSeparate);
}

TEST(Offsite, RankSortsByPredictedTime) {
  OffsiteTuner Tuner(clxModel(), 20);
  Heat3DIVP P(128);
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::fehlberg45(), P);
  std::vector<VariantPrediction> Ranked = Tuner.rank(Vs, P);
  ASSERT_EQ(Ranked.size(), Vs.size());
  for (size_t I = 1; I < Ranked.size(); ++I)
    EXPECT_LE(Ranked[I - 1].SecondsPerStep, Ranked[I].SecondsPerStep);
}

TEST(Offsite, PredictionScalesWithStageCount) {
  OffsiteTuner Tuner(clxModel(), 1);
  Heat3DIVP P(64);
  ODEVariant Euler;
  Euler.Tableau = ButcherTableau::explicitEuler();
  ODEVariant Rk4;
  Rk4.Tableau = ButcherTableau::classicRK4();
  double SecEuler = Tuner.predict(Euler, P).SecondsPerStep;
  double SecRk4 = Tuner.predict(Rk4, P).SecondsPerStep;
  EXPECT_GT(SecRk4, SecEuler * 3.0);
}

TEST(Offsite, MeasureAndValidateSmallProblem) {
  OffsiteTuner Tuner(clxModel(), 1);
  Heat3DIVP P(16); // Small so the test stays fast.
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::heun2(), P);
  RankingValidation R = Tuner.validate(Vs, P, 1, 1);
  ASSERT_EQ(R.MeasuredSeconds.size(), Vs.size());
  for (double Sec : R.MeasuredSeconds)
    EXPECT_GT(Sec, 0.0);
  EXPECT_GE(R.KendallTau, -1.0);
  EXPECT_LE(R.KendallTau, 1.0);
  EXPECT_GE(R.PredictedBestMeasuredRank, 1u);
  EXPECT_GE(R.SpeedupOverWorst, 1.0);
}
