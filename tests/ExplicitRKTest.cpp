//===- tests/ExplicitRKTest.cpp - RK integrator tests -----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/ExplicitRK.h"

#include "ode/IVP.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

namespace {

/// Integrates Heat2D (semi-discrete exact solution available) over a fixed
/// horizon with the given step count and returns the max-norm error.
double heatError(const ButcherTableau &TB, RKVariant V, int Steps) {
  Heat2DIVP P(10);
  double TEnd = P.suggestedDt() * 32; // Stable for all tested methods.
  double H = TEnd / Steps;
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(TB, V);
  RKWorkspace WS;
  Integ.integrate(P, 0.0, H, Steps, Y, WS);
  Grid Exact(P.dims(), P.halo());
  P.exactSolution(TEnd, Exact);
  return Grid::maxAbsDiffInterior(Y, Exact);
}

/// Empirical convergence order from halving the step size.
double empiricalOrder(const ButcherTableau &TB, int BaseSteps) {
  double E1 = heatError(TB, RKVariant::StageSeparate, BaseSteps);
  double E2 = heatError(TB, RKVariant::StageSeparate, BaseSteps * 2);
  return std::log2(E1 / E2);
}

} // namespace

TEST(ExplicitRK, EulerIsFirstOrder) {
  double Order = empiricalOrder(ButcherTableau::explicitEuler(), 64);
  EXPECT_NEAR(Order, 1.0, 0.25);
}

TEST(ExplicitRK, HeunIsSecondOrder) {
  double Order = empiricalOrder(ButcherTableau::heun2(), 32);
  EXPECT_NEAR(Order, 2.0, 0.3);
}

TEST(ExplicitRK, Kutta3IsThirdOrder) {
  // 32+ steps keep lambda*h inside the RK3 stability region for the
  // highest grid mode, so rounding-seeded modes cannot pollute the error.
  double Order = empiricalOrder(ButcherTableau::kutta3(), 32);
  EXPECT_NEAR(Order, 3.0, 0.4);
}

TEST(ExplicitRK, RK4IsFourthOrder) {
  double Order = empiricalOrder(ButcherTableau::classicRK4(), 32);
  EXPECT_NEAR(Order, 4.0, 0.6);
}

TEST(ExplicitRK, HigherOrderIsMoreAccurate) {
  double E1 = heatError(ButcherTableau::explicitEuler(),
                        RKVariant::StageSeparate, 32);
  double E2 = heatError(ButcherTableau::heun2(), RKVariant::StageSeparate,
                        32);
  double E4 = heatError(ButcherTableau::classicRK4(),
                        RKVariant::StageSeparate, 32);
  EXPECT_LT(E2, E1);
  EXPECT_LT(E4, E2);
}

//===----------------------------------------------------------------------===//
// Variant equivalence: every fusion variant computes the same step.
//===----------------------------------------------------------------------===//

struct VariantCase {
  const char *Tableau;
  RKVariant Variant;
};

namespace {

ButcherTableau tableauByName(const std::string &Name) {
  for (const ButcherTableau &T : ButcherTableau::allExplicit())
    if (T.Name == Name)
      return T;
  ADD_FAILURE() << "unknown tableau " << Name;
  return ButcherTableau::explicitEuler();
}

} // namespace

class VariantEquivalence : public ::testing::TestWithParam<VariantCase> {};

TEST_P(VariantEquivalence, MatchesStageSeparateOnHeat3D) {
  VariantCase P = GetParam();
  ButcherTableau TB = tableauByName(P.Tableau);
  Heat3DIVP Problem(8);
  double H = Problem.suggestedDt();

  Grid YRef(Problem.dims(), Problem.halo());
  Problem.initialCondition(YRef);
  Grid YVar(Problem.dims(), Problem.halo());
  YVar.copyInteriorFrom(YRef);

  ExplicitRKIntegrator Ref(TB, RKVariant::StageSeparate);
  RKWorkspace WSRef;
  Ref.integrate(Problem, 0.0, H, 3, YRef, WSRef);

  ExplicitRKIntegrator Var(TB, P.Variant);
  ASSERT_TRUE(Var.supports(Problem));
  RKWorkspace WSVar;
  Var.integrate(Problem, 0.0, H, 3, YVar, WSVar);

  EXPECT_EQ(Grid::maxAbsDiffInterior(YRef, YVar), 0.0);
}

TEST_P(VariantEquivalence, MatchesStageSeparateOnReactionDiffusion) {
  VariantCase P = GetParam();
  ButcherTableau TB = tableauByName(P.Tableau);
  ReactionDiffusion3DIVP Problem(6);
  double H = Problem.suggestedDt();

  Grid YRef(Problem.dims(), Problem.halo());
  Problem.initialCondition(YRef);
  Grid YVar(Problem.dims(), Problem.halo());
  YVar.copyInteriorFrom(YRef);

  ExplicitRKIntegrator Ref(TB, RKVariant::StageSeparate);
  RKWorkspace WSRef;
  Ref.integrate(Problem, 0.0, H, 2, YRef, WSRef);

  ExplicitRKIntegrator Var(TB, P.Variant);
  RKWorkspace WSVar;
  Var.integrate(Problem, 0.0, H, 2, YVar, WSVar);

  EXPECT_EQ(Grid::maxAbsDiffInterior(YRef, YVar), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantEquivalence,
    ::testing::Values(VariantCase{"heun2", RKVariant::FusedArgument},
                      VariantCase{"heun2", RKVariant::FusedUpdate},
                      VariantCase{"kutta3", RKVariant::FusedArgument},
                      VariantCase{"rk4", RKVariant::FusedArgument},
                      VariantCase{"rk4", RKVariant::FusedUpdate},
                      VariantCase{"rkf45", RKVariant::FusedArgument},
                      VariantCase{"dopri54", RKVariant::FusedUpdate}));

TEST(ExplicitRK, FusedVariantsUnsupportedForNonStencil) {
  InverterChainIVP P(32);
  ExplicitRKIntegrator Fused(ButcherTableau::heun2(),
                             RKVariant::FusedArgument);
  EXPECT_FALSE(Fused.supports(P));
  ExplicitRKIntegrator Separate(ButcherTableau::heun2(),
                                RKVariant::StageSeparate);
  EXPECT_TRUE(Separate.supports(P));
}

TEST(ExplicitRK, IntegratesInverterChain) {
  InverterChainIVP P(32);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(ButcherTableau::classicRK4(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  Integ.integrate(P, 0.0, P.suggestedDt(), 50, Y, WS);
  for (long I = 0; I < 32; ++I) {
    EXPECT_TRUE(std::isfinite(Y.at(I, 0, 0)));
    EXPECT_GE(Y.at(I, 0, 0), -1.0);
    EXPECT_LE(Y.at(I, 0, 0), 6.0);
  }
}

TEST(ExplicitRK, EmbeddedErrorEstimateTracksStepSize) {
  Heat2DIVP P(10);
  ExplicitRKIntegrator Integ(ButcherTableau::fehlberg45(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  Integ.prepareWorkspace(P, WS);
  double H = P.suggestedDt();

  Grid Y1(P.dims(), P.halo());
  P.initialCondition(Y1);
  Integ.step(P, 0.0, H, Y1, WS);
  double ErrSmall = Integ.lastErrorEstimate();

  Grid Y2(P.dims(), P.halo());
  P.initialCondition(Y2);
  Integ.step(P, 0.0, 8 * H, Y2, WS);
  double ErrLarge = Integ.lastErrorEstimate();

  EXPECT_GT(ErrSmall, 0.0);
  EXPECT_GT(ErrLarge, ErrSmall * 4);
}

TEST(ExplicitRK, StepStructureStageSeparate) {
  Heat3DIVP P(8);
  ExplicitRKIntegrator Integ(ButcherTableau::classicRK4(),
                             RKVariant::StageSeparate);
  RKStepStructure St = Integ.stepStructure(P);
  // RK4: 3 axpy sweeps + 4 RHS sweeps + 1 update = 8.
  EXPECT_EQ(St.Sweeps.size(), 8u);
  unsigned RhsCount = 0;
  for (const auto &S : St.Sweeps)
    RhsCount += S.IsRhs ? 1 : 0;
  EXPECT_EQ(RhsCount, 4u);
}

TEST(ExplicitRK, StepStructureFusedHasFewerSweeps) {
  Heat3DIVP P(8);
  ExplicitRKIntegrator Sep(ButcherTableau::classicRK4(),
                           RKVariant::StageSeparate);
  ExplicitRKIntegrator FusedArg(ButcherTableau::classicRK4(),
                                RKVariant::FusedArgument);
  ExplicitRKIntegrator FusedUpd(ButcherTableau::classicRK4(),
                                RKVariant::FusedUpdate);
  EXPECT_LT(FusedArg.stepStructure(P).Sweeps.size(),
            Sep.stepStructure(P).Sweeps.size());
  EXPECT_LT(FusedUpd.stepStructure(P).Sweeps.size(),
            FusedArg.stepStructure(P).Sweeps.size());
}

TEST(ExplicitRK, WorkspaceReusedAcrossCalls) {
  Heat3DIVP P(6);
  ExplicitRKIntegrator Integ(ButcherTableau::heun2(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  Integ.prepareWorkspace(P, WS);
  const double *KPtr = WS.K[0].data();
  Integ.prepareWorkspace(P, WS); // Same shape: no reallocation.
  EXPECT_EQ(WS.K[0].data(), KPtr);
}

TEST(ExplicitRK, BlockedConfigSameResult) {
  Heat3DIVP P(10);
  KernelConfig Blocked;
  Blocked.Block.Y = 4;
  Blocked.Block.Z = 4;
  Grid YA(P.dims(), P.halo()), YB(P.dims(), P.halo());
  P.initialCondition(YA);
  YB.copyInteriorFrom(YA);
  RKWorkspace WSA, WSB;
  ExplicitRKIntegrator A(ButcherTableau::classicRK4(),
                         RKVariant::StageSeparate);
  ExplicitRKIntegrator B(ButcherTableau::classicRK4(),
                         RKVariant::StageSeparate, Blocked);
  A.integrate(P, 0.0, P.suggestedDt(), 2, YA, WSA);
  B.integrate(P, 0.0, P.suggestedDt(), 2, YB, WSB);
  EXPECT_EQ(Grid::maxAbsDiffInterior(YA, YB), 0.0);
}
