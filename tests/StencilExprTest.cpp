//===- tests/StencilExprTest.cpp - expression AST tests --------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilExpr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace ys;

namespace {

/// Builds the 7-point heat expression: 0.5*u + 1/12 * (6 neighbors).
Expr heatExpr() {
  Expr U = Expr::load(0, 0, 0, 0);
  Expr Sum = Expr::load(0, 1, 0, 0) + Expr::load(0, -1, 0, 0) +
             Expr::load(0, 0, 1, 0) + Expr::load(0, 0, -1, 0) +
             Expr::load(0, 0, 0, 1) + Expr::load(0, 0, 0, -1);
  return 0.5 * U + (1.0 / 12.0) * Sum;
}

} // namespace

TEST(StencilExpr, KindAndSize) {
  Expr E = Expr::load(0, 1, 0, 0) + Expr::constant(2.0);
  EXPECT_EQ(E.kind(), ExprKind::Add);
  EXPECT_EQ(E.size(), 3u);
}

TEST(StencilExpr, FlopsCounting) {
  Expr E = heatExpr();
  // 5 adds inside Sum + 2 muls + 1 outer add = 8.
  EXPECT_EQ(E.flops(), 8u);
}

TEST(StencilExpr, PrintsReadableText) {
  Expr E = 2.0 * Expr::load(0, 1, -1, 0);
  EXPECT_EQ(E.str(), "(2 * u0[x+1,y-1,z])");
  Expr N = -Expr::load(1, 0, 0, 2);
  EXPECT_EQ(N.str(), "(-u1[x,y,z+2])");
}

TEST(StencilExpr, LinearizeSimple) {
  Expr E = 2.0 * Expr::load(0, 1, 0, 0) - Expr::load(0, 0, 0, 0);
  auto PointsOr = E.linearize();
  ASSERT_TRUE(static_cast<bool>(PointsOr));
  ASSERT_EQ(PointsOr->size(), 2u);
}

TEST(StencilExpr, LinearizeMergesRepeatedOffsets) {
  Expr U = Expr::load(0, 0, 0, 0);
  Expr E = U + U + 3.0 * U;
  auto PointsOr = E.linearize();
  ASSERT_TRUE(static_cast<bool>(PointsOr));
  ASSERT_EQ(PointsOr->size(), 1u);
  EXPECT_DOUBLE_EQ((*PointsOr)[0].Coeff, 5.0);
}

TEST(StencilExpr, LinearizeCancellationDropsTerm) {
  Expr U = Expr::load(0, 1, 0, 0);
  Expr V = Expr::load(0, 0, 0, 0);
  Expr E = (U + V) - U;
  auto PointsOr = E.linearize();
  ASSERT_TRUE(static_cast<bool>(PointsOr));
  ASSERT_EQ(PointsOr->size(), 1u);
  EXPECT_EQ((*PointsOr)[0].Dx, 0);
}

TEST(StencilExpr, LinearizeRejectsNonlinear) {
  Expr U = Expr::load(0, 0, 0, 0);
  auto PointsOr = (U * U).linearize();
  EXPECT_FALSE(static_cast<bool>(PointsOr));
}

TEST(StencilExpr, LinearizeRejectsConstantTerm) {
  Expr E = Expr::load(0, 0, 0, 0) + 1.5;
  auto PointsOr = E.linearize();
  EXPECT_FALSE(static_cast<bool>(PointsOr));
}

TEST(StencilExpr, LinearizeRejectsZero) {
  Expr U = Expr::load(0, 0, 0, 0);
  auto PointsOr = (U - U).linearize();
  EXPECT_FALSE(static_cast<bool>(PointsOr));
}

TEST(StencilExpr, ConstantFoldingThroughMul) {
  Expr E = Expr::constant(2.0) * (Expr::constant(3.0) *
                                  Expr::load(0, 0, 1, 0));
  auto PointsOr = E.linearize();
  ASSERT_TRUE(static_cast<bool>(PointsOr));
  EXPECT_DOUBLE_EQ((*PointsOr)[0].Coeff, 6.0);
}

TEST(StencilExpr, ToSpecNamesAndValidates) {
  auto SpecOr = heatExpr().toSpec("heat");
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  EXPECT_EQ(SpecOr->name(), "heat");
  EXPECT_EQ(SpecOr->numPoints(), 7u);
  EXPECT_EQ(SpecOr->validate(), "");
  EXPECT_EQ(SpecOr->radius(), 1);
}

TEST(StencilExpr, EvaluateMatchesLinearization) {
  Expr E = heatExpr();
  auto PointsOr = E.linearize();
  ASSERT_TRUE(static_cast<bool>(PointsOr));

  // A deterministic synthetic field.
  auto Field = [](unsigned G, int Dx, int Dy, int Dz) {
    return 0.1 * G + std::sin(Dx + 2.0 * Dy - Dz + 0.3);
  };

  double Direct = E.evaluate(Field);
  double FromPoints = 0;
  for (const StencilPoint &P : *PointsOr)
    FromPoints += P.Coeff * Field(P.GridIdx, P.Dx, P.Dy, P.Dz);
  EXPECT_NEAR(Direct, FromPoints, 1e-14);
}

TEST(StencilExpr, EvaluateSubNegMul) {
  Expr E = -(Expr::load(0, 0, 0, 0) - Expr::constant(2.0)) *
           Expr::constant(3.0);
  double V = E.evaluate([](unsigned, int, int, int) { return 5.0; });
  EXPECT_DOUBLE_EQ(V, -(5.0 - 2.0) * 3.0);
}

TEST(StencilExpr, MultiGridLinearize) {
  Expr E = Expr::load(0, 0, 0, 0) + 0.5 * Expr::load(1, 0, 0, 0);
  auto SpecOr = E.toSpec("axpy");
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  EXPECT_EQ(SpecOr->numInputGrids(), 2u);
}

TEST(StencilExpr, DivisionByConstantLinearizes) {
  Expr E = (Expr::load(0, 1, 0, 0) + Expr::load(0, -1, 0, 0)) / 4.0;
  auto PointsOr = E.linearize();
  ASSERT_TRUE(static_cast<bool>(PointsOr));
  for (const StencilPoint &P : *PointsOr)
    EXPECT_DOUBLE_EQ(P.Coeff, 0.25);
  EXPECT_EQ(E.str(), "((u0[x+1,y,z] + u0[x-1,y,z]) / 4)");
}

TEST(StencilExpr, DivisionByGridRejected) {
  Expr E = Expr::load(0, 0, 0, 0) / Expr::load(0, 1, 0, 0);
  auto PointsOr = E.linearize();
  ASSERT_FALSE(static_cast<bool>(PointsOr));
  EXPECT_NE(PointsOr.takeError().message().find("division"),
            std::string::npos);
}

TEST(StencilExpr, DivisionByZeroRejected) {
  Expr E = Expr::load(0, 0, 0, 0) / 0.0;
  EXPECT_FALSE(static_cast<bool>(E.linearize()));
}

TEST(StencilExpr, DivisionEvaluates) {
  Expr E = Expr::constant(10.0) / Expr::constant(4.0);
  EXPECT_DOUBLE_EQ(E.evaluate([](unsigned, int, int, int) { return 0.0; }),
                   2.5);
}

TEST(StencilExpr, SimplifyFoldsConstants) {
  Expr E = (Expr::constant(2.0) * Expr::constant(3.0) +
            Expr::constant(4.0)) /
           Expr::constant(2.0);
  Expr S = E.simplified();
  ASSERT_EQ(S.kind(), ExprKind::Const);
  EXPECT_EQ(S.str(), "5");
}

TEST(StencilExpr, SimplifyDropsIdentities) {
  Expr U = Expr::load(0, 0, 0, 0);
  EXPECT_EQ((U + Expr::constant(0.0)).simplified().str(), "u0[x,y,z]");
  EXPECT_EQ((Expr::constant(1.0) * U).simplified().str(), "u0[x,y,z]");
  EXPECT_EQ((U / Expr::constant(1.0)).simplified().str(), "u0[x,y,z]");
  EXPECT_EQ((-(-U)).simplified().str(), "u0[x,y,z]");
}

TEST(StencilExpr, SimplifyCollapsesMulByZero) {
  Expr U = Expr::load(0, 1, 0, 0);
  Expr S = (Expr::constant(0.0) * U).simplified();
  ASSERT_EQ(S.kind(), ExprKind::Const);
  EXPECT_DOUBLE_EQ(S.node()->Value, 0.0);
}

TEST(StencilExpr, SimplifyPreservesValue) {
  Expr U = Expr::load(0, 1, 0, 0);
  Expr V = Expr::load(0, 0, 0, 0);
  Expr E = (2.0 * U + Expr::constant(0.0)) -
           (Expr::constant(1.0) * V) / Expr::constant(1.0) +
           Expr::constant(3.0) * Expr::constant(0.5);
  Expr S = E.simplified();
  EXPECT_LT(S.size(), E.size());
  auto Field = [](unsigned, int Dx, int, int) { return 1.5 + Dx; };
  EXPECT_DOUBLE_EQ(E.evaluate(Field), S.evaluate(Field));
}
