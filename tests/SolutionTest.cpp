//===- tests/SolutionTest.cpp - stencil solution tests -----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solution/StencilSolution.h"

#include "codegen/KernelExecutor.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

const char *ChainDsl = R"(
  stencil chain {
    grid u, k1, k2;
    k1[x,y,z] = u[x+1,y,z] + u[x-1,y,z] - 2 * u[x,y,z];
    k2[x,y,z] = k1[x,y+1,z] + k1[x,y-1,z] - 2 * k1[x,y,z];
  }
)";

const char *FusableDsl = R"(
  stencil step {
    grid u, k, v;
    k[x,y,z] = u[x+1,y,z] - u[x-1,y,z];
    v[x,y,z] = u[x,y,z] + 0.5 * k[x,y,z];
  }
)";

} // namespace

TEST(StencilSolution, CreatesGridsAndPlan) {
  auto SolOr = StencilSolution::fromDslSource(ChainDsl, {12, 10, 8});
  ASSERT_TRUE(static_cast<bool>(SolOr)) << SolOr.takeError().message();
  StencilSolution &Sol = *SolOr;
  EXPECT_EQ(Sol.bundle().numGrids(), 3u);
  EXPECT_EQ(Sol.halo(), 1);
  // Dependent at nonzero offsets: two separate sweeps.
  ASSERT_EQ(Sol.plan().size(), 2u);
  EXPECT_NE(Sol.gridByName("u"), nullptr);
  EXPECT_NE(Sol.gridByName("k2"), nullptr);
  EXPECT_EQ(Sol.gridByName("nope"), nullptr);
}

TEST(StencilSolution, FusableEquationsShareASweep) {
  auto SolOr = StencilSolution::fromDslSource(FusableDsl, {10, 10, 4});
  ASSERT_TRUE(static_cast<bool>(SolOr));
  ASSERT_EQ(SolOr->plan().size(), 1u);
  EXPECT_EQ(SolOr->plan()[0].Equations.size(), 2u);
  EXPECT_EQ(SolOr->plan()[0].ModelSpec.OutputGrids, 2u);
  std::string Desc = SolOr->describePlan();
  EXPECT_NE(Desc.find("fused k, v"), std::string::npos);
}

TEST(StencilSolution, RunMatchesManualSweeps) {
  auto SolOr = StencilSolution::fromDslSource(ChainDsl, {12, 10, 8});
  ASSERT_TRUE(static_cast<bool>(SolOr));
  StencilSolution &Sol = *SolOr;
  Rng R(3);
  Sol.gridByName("u")->fillRandom(R);

  // Manual reference: apply the two equations in order on copies.
  Grid U({12, 10, 8}, 1), K1({12, 10, 8}, 1), K2({12, 10, 8}, 1);
  U.copyInteriorFrom(*Sol.gridByName("u"));
  const auto &Eqs = Sol.bundle().equations();
  KernelExecutor::runReference(Eqs[0].Spec, {&U, &K1, &K2}, K1);
  KernelExecutor::runReference(Eqs[1].Spec, {&U, &K1, &K2}, K2);

  Sol.run();
  EXPECT_EQ(Grid::maxAbsDiffInterior(*Sol.gridByName("k1"), K1), 0.0);
  EXPECT_EQ(Grid::maxAbsDiffInterior(*Sol.gridByName("k2"), K2), 0.0);
}

TEST(StencilSolution, FusedRunMatchesUnfusedSemantics) {
  auto SolOr = StencilSolution::fromDslSource(FusableDsl, {9, 8, 7});
  ASSERT_TRUE(static_cast<bool>(SolOr));
  StencilSolution &Sol = *SolOr;
  Rng R(5);
  Sol.gridByName("u")->fillRandom(R);
  Grid U({9, 8, 7}, 1), K({9, 8, 7}, 1), V({9, 8, 7}, 1);
  U.copyInteriorFrom(*Sol.gridByName("u"));
  const auto &Eqs = Sol.bundle().equations();
  KernelExecutor::runReference(Eqs[0].Spec, {&U, &K, &V}, K);
  KernelExecutor::runReference(Eqs[1].Spec, {&U, &K, &V}, V);

  Sol.run();
  EXPECT_EQ(Grid::maxAbsDiffInterior(*Sol.gridByName("k"), K), 0.0);
  EXPECT_EQ(Grid::maxAbsDiffInterior(*Sol.gridByName("v"), V), 0.0);
}

TEST(StencilSolution, BlockedConfigSameResult) {
  KernelConfig Blocked;
  Blocked.Block.Y = 4;
  auto A = StencilSolution::fromDslSource(ChainDsl, {12, 12, 12});
  auto B = StencilSolution::fromDslSource(ChainDsl, {12, 12, 12}, Blocked);
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  Rng R1(9), R2(9);
  A->gridByName("u")->fillRandom(R1);
  B->gridByName("u")->fillRandom(R2);
  A->runSteps(2);
  B->runSteps(2);
  EXPECT_EQ(Grid::maxAbsDiffInterior(*A->gridByName("k2"),
                                     *B->gridByName("k2")),
            0.0);
}

TEST(StencilSolution, ThreadedRunSameResult) {
  ThreadPool Pool(3);
  KernelConfig Threaded;
  Threaded.Threads = 3;
  auto A = StencilSolution::fromDslSource(ChainDsl, {14, 12, 10});
  auto B =
      StencilSolution::fromDslSource(ChainDsl, {14, 12, 10}, Threaded);
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  Rng R1(11), R2(11);
  A->gridByName("u")->fillRandom(R1);
  B->gridByName("u")->fillRandom(R2);
  A->run();
  B->run(&Pool);
  EXPECT_EQ(Grid::maxAbsDiffInterior(*A->gridByName("k2"),
                                     *B->gridByName("k2")),
            0.0);
}

TEST(StencilSolution, PredictsPositiveTimeAndFusionHelps) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  GridDims Dims{256, 256, 128};
  auto Fused = StencilSolution::fromDslSource(FusableDsl, Dims);
  ASSERT_TRUE(static_cast<bool>(Fused));
  double SecFused = Fused->predictSecondsPerStep(Model, 20);
  EXPECT_GT(SecFused, 0.0);

  // The same program with an artificial dependence that blocks fusion
  // needs two sweeps and more predicted time.
  const char *Unfusable = R"(
    stencil step2 {
      grid u, k, v;
      k[x,y,z] = u[x+1,y,z] - u[x-1,y,z];
      v[x,y,z] = u[x,y,z] + 0.5 * k[x+1,y,z];
    }
  )";
  auto Split = StencilSolution::fromDslSource(Unfusable, Dims);
  ASSERT_TRUE(static_cast<bool>(Split));
  ASSERT_EQ(Split->plan().size(), 2u);
  EXPECT_GT(Split->predictSecondsPerStep(Model, 20), SecFused);
}

TEST(StencilSolution, ChecksumTracksState) {
  auto SolOr = StencilSolution::fromDslSource(FusableDsl, {8, 8, 8});
  ASSERT_TRUE(static_cast<bool>(SolOr));
  double Empty = SolOr->checksum();
  EXPECT_EQ(Empty, 0.0);
  SolOr->gridByName("u")->fill(1.0);
  SolOr->run();
  EXPECT_NE(SolOr->checksum(), 0.0);
}

TEST(StencilSolution, RejectsInvalidBundle) {
  BundleEquation Eq;
  Eq.OutputGrid = 7; // Out of range.
  Eq.Spec = StencilSpec::star3d(1);
  StencilBundle Bad("bad", {"u"}, {Eq});
  auto SolOr = StencilSolution::create(Bad, {8, 8, 8});
  EXPECT_FALSE(static_cast<bool>(SolOr));
}

TEST(StencilSolution, ThreadedFusedGroupSameResult) {
  ThreadPool Pool(3);
  KernelConfig Threaded;
  Threaded.Threads = 3;
  auto A = StencilSolution::fromDslSource(FusableDsl, {12, 11, 10});
  auto B = StencilSolution::fromDslSource(FusableDsl, {12, 11, 10},
                                          Threaded);
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  ASSERT_EQ(A->plan().size(), 1u); // Fused group.
  Rng R1(13), R2(13);
  A->gridByName("u")->fillRandom(R1);
  B->gridByName("u")->fillRandom(R2);
  A->run();
  B->run(&Pool);
  EXPECT_EQ(Grid::maxAbsDiffInterior(*A->gridByName("v"),
                                     *B->gridByName("v")),
            0.0);
}
