//===- tests/GridNormsTest.cpp - norm/reduction unit tests -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencil/GridNorms.h"

#include "support/ThreadPool.h"
#include "verify/GridPatterns.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

/// 2x2x1 grid with halo 1 and hand-pickable interior values.
Grid makeSmall(double V00, double V10, double V01, double V11) {
  Grid G({2, 2, 1}, 1);
  G.at(0, 0, 0) = V00;
  G.at(1, 0, 0) = V10;
  G.at(0, 1, 0) = V01;
  G.at(1, 1, 0) = V11;
  return G;
}

} // namespace

TEST(GridNorms, HandComputedValues) {
  // Interior {3, -4, 0, 12}: Linf = 12, L1 = 19/4, L2 = sqrt(169/4).
  Grid G = makeSmall(3.0, -4.0, 0.0, 12.0);
  EXPECT_DOUBLE_EQ(normInf(G), 12.0);
  EXPECT_DOUBLE_EQ(normL1(G), 4.75);
  EXPECT_DOUBLE_EQ(normL2(G), 6.5);
  MinMax MM = interiorMinMax(G);
  EXPECT_DOUBLE_EQ(MM.Min, -4.0);
  EXPECT_DOUBLE_EQ(MM.Max, 12.0);

  Grid Zero({2, 2, 1}, 1);
  EXPECT_DOUBLE_EQ(diffNormInf(G, Zero), 12.0);
  EXPECT_DOUBLE_EQ(diffNormL2(G, Zero), 6.5);
  EXPECT_DOUBLE_EQ(diffNormL2(G, G), 0.0);
}

TEST(GridNorms, HaloIsExcluded) {
  Grid G = makeSmall(3.0, -4.0, 0.0, 12.0);
  double Inf = normInf(G), L1 = normL1(G), L2 = normL2(G);
  G.fillHalo(1e9); // Must not leak into any interior reduction.
  EXPECT_DOUBLE_EQ(normInf(G), Inf);
  EXPECT_DOUBLE_EQ(normL1(G), L1);
  EXPECT_DOUBLE_EQ(normL2(G), L2);
  MinMax MM = interiorMinMax(G);
  EXPECT_DOUBLE_EQ(MM.Min, -4.0);
  EXPECT_DOUBLE_EQ(MM.Max, 12.0);

  Grid H = makeSmall(3.0, -4.0, 0.0, 12.0);
  H.fillHalo(-1e9);
  EXPECT_DOUBLE_EQ(diffNormInf(G, H), 0.0);
  EXPECT_DOUBLE_EQ(diffNormL2(G, H), 0.0);
}

TEST(GridNorms, FoldedLayoutAgreesWithScalar) {
  GridDims Dims{11, 6, 5};
  Grid S(Dims, 2);
  fillPattern(S, GridPattern::Random, 17);
  Grid F(Dims, 2, {4, 1, 1});
  fillPattern(F, GridPattern::Random, 17);
  EXPECT_DOUBLE_EQ(normInf(S), normInf(F));
  EXPECT_DOUBLE_EQ(normL1(S), normL1(F));
  EXPECT_DOUBLE_EQ(normL2(S), normL2(F));
  EXPECT_DOUBLE_EQ(diffNormInf(S, F), 0.0);
}

TEST(GridNorms, NumaFirstTouchedGridMatchesPlain) {
  // First-touch placement changes which thread faults each page, never
  // the values: reductions over a pool-touched grid must be identical.
  GridDims Dims{16, 8, 6};
  ThreadPool Pool(2);
  Grid Plain(Dims, 1);
  Grid Touched(Dims, 1, Fold(), &Pool, /*ZTile=*/2, /*YTile=*/4);
  fillPattern(Plain, GridPattern::Smooth, 23);
  fillPattern(Touched, GridPattern::Smooth, 23);
  EXPECT_DOUBLE_EQ(normInf(Plain), normInf(Touched));
  EXPECT_DOUBLE_EQ(normL1(Plain), normL1(Touched));
  EXPECT_DOUBLE_EQ(normL2(Plain), normL2(Touched));
  EXPECT_DOUBLE_EQ(diffNormInf(Plain, Touched), 0.0);
}

TEST(GridNorms, OneCellGrid) {
  Grid G({1, 1, 1}, 1);
  G.at(0, 0, 0) = -5.0;
  EXPECT_DOUBLE_EQ(normInf(G), 5.0);
  EXPECT_DOUBLE_EQ(normL1(G), 5.0);
  EXPECT_DOUBLE_EQ(normL2(G), 5.0);
  MinMax MM = interiorMinMax(G);
  EXPECT_DOUBLE_EQ(MM.Min, -5.0);
  EXPECT_DOUBLE_EQ(MM.Max, -5.0);
}

TEST(GridNorms, DefaultConstructedGridIsSafeZero) {
  // A default-constructed Grid claims dims {1,1,1} but owns no storage;
  // every reduction must return zero instead of reading it.
  Grid Empty;
  EXPECT_EQ(Empty.allocElems(), 0u);
  EXPECT_DOUBLE_EQ(normInf(Empty), 0.0);
  EXPECT_DOUBLE_EQ(normL1(Empty), 0.0);
  EXPECT_DOUBLE_EQ(normL2(Empty), 0.0);
  MinMax MM = interiorMinMax(Empty);
  EXPECT_DOUBLE_EQ(MM.Min, 0.0);
  EXPECT_DOUBLE_EQ(MM.Max, 0.0);
  Grid AlsoEmpty;
  EXPECT_DOUBLE_EQ(diffNormInf(Empty, AlsoEmpty), 0.0);
  EXPECT_DOUBLE_EQ(diffNormL2(Empty, AlsoEmpty), 0.0);
  EXPECT_DOUBLE_EQ(Empty.interiorSum(), 0.0);
}
