//===- tests/IntegrationTest.cpp - cross-module integration tests ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end paths across module boundaries: DSL text through the
/// solution layer against the cache simulator and the ECM model, the
/// Offsite pipeline against real integrators, and a few cross-cutting
/// behaviors (workspace/layout changes, pool reuse) that unit tests
/// don't reach.
///
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"
#include "ecm/ECMModel.h"
#include "ode/Adaptive.h"
#include "ode/Registry.h"
#include "offsite/Database.h"
#include "offsite/Offsite.h"
#include "solution/StencilSolution.h"
#include "tuner/MeasureHarness.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

TEST(Integration, DslToModelToSimulatorAgree) {
  // A DSL-defined stencil must get the same memory-traffic prediction as
  // its hand-built twin, and both must match the simulator.
  const char *Dsl = R"(
    stencil star2 {
      grid u, unew;
      unew[x,y,z] = u[x+2,y,z] + u[x-2,y,z] + u[x+1,y,z] + u[x-1,y,z]
                  + u[x,y+2,z] + u[x,y-2,z] + u[x,y+1,z] + u[x,y-1,z]
                  + u[x,y,z+2] + u[x,y,z-2] + u[x,y,z+1] + u[x,y,z-1]
                  - 12 * u[x,y,z];
    }
  )";
  auto SolOr = StencilSolution::fromDslSource(Dsl, {96, 96, 48});
  ASSERT_TRUE(static_cast<bool>(SolOr));
  ASSERT_EQ(SolOr->plan().size(), 1u);
  const StencilSpec &FromDsl = SolOr->plan()[0].ModelSpec;
  StencilSpec Builtin = StencilSpec::star3d(2);
  EXPECT_EQ(FromDsl.numPoints(), Builtin.numPoints());
  EXPECT_EQ(FromDsl.radius(), Builtin.radius());

  MachineModel M = MachineModel::cascadeLakeSP();
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  ECMModel Model(M);
  GridDims Dims{96, 96, 48};
  double PredDsl =
      Model.predict(FromDsl, Dims, {}).Traffic.BytesPerLup.back();
  double PredBuiltin =
      Model.predict(Builtin, Dims, {}).Traffic.BytesPerLup.back();
  EXPECT_DOUBLE_EQ(PredDsl, PredBuiltin);

  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  TraceTraffic T = StencilTraceRunner(Builtin, Dims, {}).run(Sim, 2);
  EXPECT_LT(std::abs(PredBuiltin - T.BytesPerLup.back()),
            0.3 * T.BytesPerLup.back());
}

TEST(Integration, OffsitePipelineConsistentWithDirectIntegration) {
  // The variant the tuner measures must behave exactly like a directly
  // constructed integrator.
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  OffsiteTuner Tuner(Model, 1);
  Heat3DIVP Problem(12);
  std::vector<ODEVariant> Vs =
      Tuner.enumerateRK(ButcherTableau::heun2(), Problem);
  ASSERT_FALSE(Vs.empty());
  const ODEVariant &V = Vs.front();

  Grid YA(Problem.dims(), Problem.halo(), V.Config.VectorFold);
  Problem.initialCondition(YA);
  ExplicitRKIntegrator Integ(V.Tableau, V.Variant, V.Config);
  RKWorkspace WS;
  double H = Problem.suggestedDt();
  Integ.integrate(Problem, 0.0, H, 5, YA, WS);

  Grid Exact(Problem.dims(), Problem.halo());
  Problem.exactSolution(5 * H, Exact);
  EXPECT_LT(Grid::maxAbsDiffInterior(YA, Exact), 1e-4);
}

TEST(Integration, DatabaseRecordsMatchTunerRanking) {
  MachineModel M = MachineModel::rome();
  ECMModel Model(M);
  OffsiteTuner Tuner(Model, M.CoresPerSocket);
  Heat3DIVP Problem(32);
  std::vector<VariantPrediction> Ranked =
      Tuner.rank(Tuner.enumerateRK(ButcherTableau::classicRK4(), Problem),
                 Problem);

  TuningDatabase Db;
  TuningRecord R;
  R.Machine = M.Name;
  R.Method = "rk4";
  R.Problem = Problem.name();
  R.Dims = Problem.dims();
  R.Cores = M.CoresPerSocket;
  R.VariantName = Ranked.front().Variant.Name;
  R.PredictedSecondsPerStep = Ranked.front().SecondsPerStep;
  Db.insert(R);

  auto Reloaded = TuningDatabase::deserialize(Db.serialize());
  ASSERT_TRUE(static_cast<bool>(Reloaded));
  const TuningRecord *Hit = Reloaded->lookup(M.Name, "rk4", "heat3d",
                                             Problem.dims(),
                                             M.CoresPerSocket);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->VariantName, Ranked.front().Variant.Name);
}

TEST(Integration, MeasureHarnessSurvivesFoldChanges) {
  // Switching folds mid-tuning reallocates buffers transparently.
  MeasureHarness H(StencilSpec::heat3d(), {24, 24, 24}, 1, 1);
  KernelConfig Scalar;
  KernelConfig Folded;
  Folded.VectorFold.X = 4;
  Folded.VectorFold.Y = 2;
  EXPECT_GT(H.measure(Scalar), 0.0);
  EXPECT_GT(H.measure(Folded), 0.0);
  EXPECT_GT(H.measure(Scalar), 0.0);
  EXPECT_GE(H.totalKernelRuns(), 3u);
}

TEST(Integration, PoolSharedAcrossSubsystems) {
  // One pool drives the executor, a solution and an integrator in turn.
  ThreadPool Pool(3);
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{16, 16, 16};
  KernelConfig C;
  C.Threads = 3;

  Grid In(Dims, 1), Out(Dims, 1);
  Rng R(2);
  In.fillRandom(R);
  KernelExecutor Exec(S, C);
  Exec.runSweep({&In}, Out, &Pool);

  auto SolOr = StencilSolution::fromDslSource(
      "stencil s { grid u, v; v[x,y,z] = u[x+1,y,z] - u[x,y,z]; }", Dims,
      C);
  ASSERT_TRUE(static_cast<bool>(SolOr));
  SolOr->grid(0).fillRandom(R);
  SolOr->run(&Pool);

  Heat3DIVP Problem(16);
  ExplicitRKIntegrator Integ(ButcherTableau::heun2(),
                             RKVariant::StageSeparate, C);
  RKWorkspace WS;
  Grid Y(Problem.dims(), Problem.halo());
  Problem.initialCondition(Y);
  Integ.integrate(Problem, 0.0, Problem.suggestedDt(), 2, Y, WS, &Pool);
  EXPECT_TRUE(std::isfinite(Y.at(8, 8, 8)));
}

TEST(Integration, AdaptiveOnHeat3DMeetsExactSolution) {
  Heat3DIVP P(8);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(ButcherTableau::dormandPrince54(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  AdaptiveOptions Opts;
  Opts.Tolerance = 1e-9;
  double TEnd = P.suggestedDt() * 12;
  AdaptiveResult R = integrateAdaptive(Integ, P, 0.0, TEnd,
                                       P.suggestedDt() / 2, Y, WS, Opts);
  ASSERT_TRUE(R.Converged);
  Grid Exact(P.dims(), P.halo());
  P.exactSolution(TEnd, Exact);
  EXPECT_LT(Grid::maxAbsDiffInterior(Y, Exact), 1e-6);
}

TEST(Integration, RegistryDrivenSweepOverMethodsAndIvps) {
  // Every explicit method integrates every stencil-form IVP for a step
  // without blowing up (the CLI's whole input space).
  for (const ButcherTableau &TB : ButcherTableau::allExplicit()) {
    for (const std::string &Name : {std::string("heat3d"),
                                    std::string("reaction-diffusion3d")}) {
      auto IvpOr = ivpByName(Name, 8);
      ASSERT_TRUE(static_cast<bool>(IvpOr));
      IVP &Problem = **IvpOr;
      Grid Y(Problem.dims(), Problem.halo());
      Problem.initialCondition(Y);
      ExplicitRKIntegrator Integ(TB, RKVariant::StageSeparate);
      RKWorkspace WS;
      Integ.integrate(Problem, 0.0, Problem.suggestedDt(), 2, Y, WS);
      EXPECT_TRUE(std::isfinite(Y.at(4, 4, 4))) << TB.Name << " " << Name;
    }
  }
}
