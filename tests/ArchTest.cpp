//===- tests/ArchTest.cpp - machine model tests ----------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"

#include <gtest/gtest.h>

using namespace ys;

TEST(MachineModel, AllBuiltinsValidate) {
  for (const MachineModel &M : MachineModel::allBuiltin())
    EXPECT_EQ(M.validate(), "") << M.Name;
}

TEST(MachineModel, CascadeLakeParameters) {
  MachineModel M = MachineModel::cascadeLakeSP();
  EXPECT_EQ(M.Core.SimdBits, 512u);
  EXPECT_EQ(M.Core.simdDoubles(), 8u);
  EXPECT_EQ(M.Core.FmaPorts, 2u);
  EXPECT_EQ(M.CoresPerSocket, 20u);
  ASSERT_EQ(M.numLevels(), 3u);
  EXPECT_EQ(M.level(0).SizeBytes, 32ull * 1024);
  EXPECT_EQ(M.level(1).SizeBytes, 1024ull * 1024);
  EXPECT_TRUE(M.level(2).Shared);
  EXPECT_EQ(M.level(2).SharingCores, 20u);
}

TEST(MachineModel, RomeParameters) {
  MachineModel M = MachineModel::rome();
  EXPECT_EQ(M.Core.SimdBits, 256u);
  EXPECT_EQ(M.Core.simdDoubles(), 4u);
  EXPECT_EQ(M.CoresPerSocket, 64u);
  // Rome's L3 is per-CCX: shared by 4 cores only.
  EXPECT_TRUE(M.level(2).Shared);
  EXPECT_EQ(M.level(2).SharingCores, 4u);
  EXPECT_GT(M.Memory.BandwidthGBs, MachineModel::cascadeLakeSP()
                                        .Memory.BandwidthGBs);
}

TEST(MachineModel, MemBytesPerCycle) {
  MachineModel M = MachineModel::cascadeLakeSP();
  // 115 GB/s at 2.5 GHz = 46 B/cy.
  EXPECT_NEAR(M.memBytesPerCycle(), 46.0, 0.01);
}

TEST(MachineModel, LastLevelIndex) {
  EXPECT_EQ(MachineModel::cascadeLakeSP().lastLevel(), 2u);
}

TEST(MachineModel, FindBuiltinCaseInsensitive) {
  ASSERT_NE(MachineModel::findBuiltin("cascadelakesp"), nullptr);
  ASSERT_NE(MachineModel::findBuiltin("Rome"), nullptr);
  EXPECT_EQ(MachineModel::findBuiltin("Rome")->Name, "Rome");
  EXPECT_EQ(MachineModel::findBuiltin("nonexistent"), nullptr);
}

TEST(MachineModel, ValidateCatchesMissingName) {
  MachineModel M = MachineModel::rome();
  M.Name.clear();
  EXPECT_NE(M.validate(), "");
}

TEST(MachineModel, ValidateCatchesShrinkingCaches) {
  MachineModel M = MachineModel::rome();
  M.Caches[1].SizeBytes = 1024; // Smaller than L1.
  EXPECT_NE(M.validate(), "");
}

TEST(MachineModel, ValidateCatchesZeroBandwidth) {
  MachineModel M = MachineModel::rome();
  M.Memory.BandwidthGBs = 0;
  EXPECT_NE(M.validate(), "");
}

TEST(MachineModel, ValidateCatchesBadSimdWidth) {
  MachineModel M = MachineModel::rome();
  M.Core.SimdBits = 100;
  EXPECT_NE(M.validate(), "");
}

TEST(MachineModel, SkylakeAndZen3Variants) {
  MachineModel Skx = MachineModel::skylakeSP();
  EXPECT_EQ(Skx.Core.SimdBits, 512u);
  MachineModel Z3 = MachineModel::zen3();
  EXPECT_EQ(Z3.level(2).SharingCores, 8u);
  EXPECT_GT(Z3.Memory.BandwidthGBs, MachineModel::rome().Memory.BandwidthGBs);
}
