//===- tests/TuningStrategyTest.cpp - tuning strategy tests -----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningStrategy.h"

#include "ecm/BlockingSelector.h"
#include "tuner/MeasureHarness.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

namespace {

/// A deterministic synthetic objective over the candidate space: peaks at
/// By == 32, Bz == 8, depth 1; smooth elsewhere.  Counts invocations.
struct SyntheticObjective {
  mutable unsigned Calls = 0;

  double operator()(const KernelConfig &C) const {
    ++Calls;
    double Score = 1000.0;
    Score -= std::abs(static_cast<double>(C.Block.Y) - 32.0);
    Score -= 2.0 * std::abs(static_cast<double>(C.Block.Z) - 8.0);
    Score -= 50.0 * (C.WavefrontDepth - 1);
    return Score;
  }
};

std::vector<KernelConfig> space() {
  return BlockingSelector::candidateSpace({256, 256, 256}, KernelConfig(),
                                          /*EnableWavefront=*/true);
}

} // namespace

TEST(TuningStrategy, ExhaustiveFindsGlobalOptimum) {
  SyntheticObjective Obj;
  ExhaustiveStrategy S;
  std::vector<KernelConfig> Space = space();
  TuningResult R = S.tune(Space, [&](const KernelConfig &C) {
    return Obj(C);
  });
  EXPECT_EQ(R.Measurements, Space.size());
  EXPECT_EQ(R.Best.Block.Y, 32);
  EXPECT_EQ(R.Best.Block.Z, 8);
  EXPECT_EQ(R.Best.WavefrontDepth, 1);
  EXPECT_TRUE(R.BestWasMeasured);
  EXPECT_EQ(R.MeasuredLog.size(), Space.size());
}

TEST(TuningStrategy, RandomMeasuresExactlyKDistinct) {
  SyntheticObjective Obj;
  RandomStrategy S(10, /*Seed=*/42);
  TuningResult R = S.tune(space(), [&](const KernelConfig &C) {
    return Obj(C);
  });
  EXPECT_EQ(R.Measurements, 10u);
  // Without replacement: all measured configs distinct.
  for (size_t I = 0; I < R.MeasuredLog.size(); ++I)
    for (size_t J = I + 1; J < R.MeasuredLog.size(); ++J)
      EXPECT_FALSE(R.MeasuredLog[I].first == R.MeasuredLog[J].first);
}

TEST(TuningStrategy, RandomIsDeterministicPerSeed) {
  SyntheticObjective Obj;
  RandomStrategy A(5, 7), B(5, 7);
  TuningResult RA = A.tune(space(), [&](const KernelConfig &C) {
    return Obj(C);
  });
  TuningResult RB = B.tune(space(), [&](const KernelConfig &C) {
    return Obj(C);
  });
  ASSERT_EQ(RA.MeasuredLog.size(), RB.MeasuredLog.size());
  for (size_t I = 0; I < RA.MeasuredLog.size(); ++I)
    EXPECT_TRUE(RA.MeasuredLog[I].first == RB.MeasuredLog[I].first);
}

TEST(TuningStrategy, HierarchicalCheaperThanExhaustive) {
  SyntheticObjective Obj;
  HierarchicalStrategy S;
  std::vector<KernelConfig> Space = space();
  TuningResult R = S.tune(Space, [&](const KernelConfig &C) {
    return Obj(C);
  });
  EXPECT_LT(R.Measurements, Space.size() / 2);
  EXPECT_GT(R.Measurements, 3u);
  // The synthetic objective is separable, so coordinate descent finds the
  // optimum.
  EXPECT_EQ(R.Best.Block.Y, 32);
  EXPECT_EQ(R.Best.Block.Z, 8);
}

TEST(TuningStrategy, HierarchicalSweepsTheScheduleStage) {
  // An objective that rewards the diamond schedule: coordinate descent
  // must reach it through the stage-4 schedule sweep even though stages
  // 1-3 settle on a wavefront config first.
  struct DiamondLover {
    mutable unsigned Calls = 0;
    double operator()(const KernelConfig &C) const {
      ++Calls;
      double Score = 1000.0;
      Score -= std::abs(static_cast<double>(C.Block.Y) - 32.0);
      Score -= 2.0 * std::abs(static_cast<double>(C.Block.Z) - 8.0);
      Score -= 10.0 * std::abs(C.WavefrontDepth - 4.0);
      if (C.Sched == Schedule::Diamond)
        Score += 25.0;
      return Score;
    }
  } Obj;
  HierarchicalStrategy S;
  std::vector<KernelConfig> Space = space();
  TuningResult R = S.tune(Space, [&](const KernelConfig &C) {
    return Obj(C);
  });
  EXPECT_LT(R.Measurements, Space.size() / 2);
  EXPECT_EQ(R.Best.Sched, Schedule::Diamond) << R.Best.str();
  EXPECT_EQ(R.Best.WavefrontDepth, 4);
}

TEST(TuningStrategy, ModelGuidedRunsNothing) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ModelGuidedStrategy S(Model, StencilSpec::star3d(2), {256, 256, 256});
  unsigned MeasureCalls = 0;
  TuningResult R = S.tune(space(), [&](const KernelConfig &) {
    ++MeasureCalls;
    return 0.0;
  });
  EXPECT_EQ(MeasureCalls, 0u);
  EXPECT_EQ(R.Measurements, 0u);
  EXPECT_FALSE(R.BestWasMeasured);
  EXPECT_EQ(R.ModelEvaluations, space().size());
  EXPECT_GT(R.BestMlups, 0.0);
}

TEST(TuningStrategy, ModelGuidedTopKMeasuresShortlist) {
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  ModelGuidedStrategy S(Model, StencilSpec::star3d(2), {256, 256, 256}, 1,
                        /*VerifyTopK=*/3);
  SyntheticObjective Obj;
  TuningResult R = S.tune(space(), [&](const KernelConfig &C) {
    return Obj(C);
  });
  EXPECT_EQ(R.Measurements, 3u);
  EXPECT_TRUE(R.BestWasMeasured);
}

TEST(TuningStrategy, ModelGuidedPicksGoodConfigOnModelObjective) {
  // When the ground truth IS the model, the strategy must find the true
  // argmax (sanity of the ranking plumbing).
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  StencilSpec Spec = StencilSpec::star3d(4);
  GridDims Dims{512, 512, 256};
  ModelGuidedStrategy S(Model, Spec, Dims);
  TuningResult R = S.tune(space(), [](const KernelConfig &) {
    return 0.0;
  });
  ECMPrediction Best = Model.predict(Spec, Dims, R.Best);
  for (const KernelConfig &C : space()) {
    ECMPrediction P = Model.predict(Spec, Dims, C);
    EXPECT_LE(P.MLupsSaturated, Best.MLupsSaturated * 1.001);
  }
}

TEST(MeasureHarness, MeasuresRealKernels) {
  MeasureHarness H(StencilSpec::heat3d(), {32, 32, 32}, /*Repeats=*/2,
                   /*SweepsPerRepeat=*/1);
  KernelConfig C;
  double Mlups = H.measure(C);
  EXPECT_GT(Mlups, 0.1);
  EXPECT_GT(H.totalKernelRuns(), 0u);
}

TEST(MeasureHarness, TrafficProxyPrefersBlockedConfig) {
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{128, 128, 24};
  MeasureFn Proxy = makeTrafficProxyMeasurer(S, Dims, M);
  KernelConfig Unblocked;
  KernelConfig Blocked;
  Blocked.Block.Y = 16;
  EXPECT_GT(Proxy(Blocked), Proxy(Unblocked));
}

#include "tuner/OnlineTuner.h"

TEST(OnlineTuner, ResultMatchesPlainStepping) {
  // Every trial is a real timestep, so the tuned run must equal plain
  // stepping bit for bit regardless of which candidates were tried.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{14, 12, 16};
  Grid URef(Dims, 1);
  Rng R(3);
  URef.fillRandom(R);
  Grid UTuned(Dims, 1);
  UTuned.copyInteriorFrom(URef);
  Grid S1(Dims, 1), S2(Dims, 1);

  const int Steps = 12;
  KernelExecutor Plain(S, KernelConfig());
  Plain.runTimeSteps(URef, S1, Steps);

  KernelConfig A; // Unblocked.
  KernelConfig B;
  B.Block.Y = 4;
  KernelConfig C;
  C.WavefrontDepth = 2;
  C.Block.Z = 4;
  OnlineTuner Tuner(S, {A, B, C}, 2);
  OnlineTuner::Result Result = Tuner.run(UTuned, S2, Steps);

  EXPECT_EQ(Grid::maxAbsDiffInterior(URef, UTuned), 0.0);
  EXPECT_EQ(Result.TrialsRun, 3u);
  EXPECT_GT(Result.TuningSteps, 0);
  EXPECT_LE(Result.TuningSteps, Steps);
  EXPECT_EQ(Result.TrialLog.size(), 3u);
}

TEST(OnlineTuner, PicksACandidateAndLogsTimes) {
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{24, 24, 24};
  Grid U(Dims, 2), Scratch(Dims, 2);
  Rng R(5);
  U.fillRandom(R);
  KernelConfig A;
  KernelConfig B;
  B.Block.Y = 8;
  OnlineTuner Tuner(S, {A, B}, 1);
  OnlineTuner::Result Result = Tuner.run(U, Scratch, 10);
  EXPECT_TRUE(Result.Best == A || Result.Best == B);
  for (const auto &[Cfg, Sec] : Result.TrialLog)
    EXPECT_GT(Sec, 0.0);
}

TEST(OnlineTuner, RunsUntimedWarmupBeforeTrials) {
  // Regression test: the first candidate used to be timed with cold
  // caches/pages while later candidates ran warm, biasing selection.  The
  // tuner now runs one untimed warm-up trial before the rotation, so with
  // two candidates and StepsPerTrial=2 the tuning phase consumes
  // 3 * 2 = 6 steps (warm-up + two timed trials), not 4.
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{12, 12, 12};
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(9);
  U.fillRandom(R);
  KernelConfig A;
  KernelConfig B;
  B.Block.Y = 4;
  OnlineTuner Tuner(S, {A, B}, 2);
  OnlineTuner::Result Result = Tuner.run(U, Scratch, 20);
  EXPECT_EQ(Result.WarmupSteps, 2);
  EXPECT_EQ(Result.TrialsRun, 2u);
  EXPECT_EQ(Result.TuningSteps, 6); // Warm-up steps are real, so counted.
  EXPECT_EQ(Result.TrialLog.size(), 2u);
}

TEST(OnlineTuner, SkipsWarmupWhenStepsScarce) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{10, 10, 10};
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(2);
  U.fillRandom(R);
  OnlineTuner Tuner(S, {KernelConfig()}, 2);
  // 3 steps: warm-up (2) + trial (2) would not fit, so no warm-up runs
  // and the single candidate still gets its timed trial.
  OnlineTuner::Result Result = Tuner.run(U, Scratch, 3);
  EXPECT_EQ(Result.WarmupSteps, 0);
  EXPECT_EQ(Result.TrialsRun, 1u);
}

TEST(OnlineTuner, StopsTrialsWhenStepsRunOut) {
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{10, 10, 10};
  Grid U(Dims, 1), Scratch(Dims, 1);
  Rng R(1);
  U.fillRandom(R);
  std::vector<KernelConfig> Many(10);
  for (size_t I = 0; I < Many.size(); ++I)
    Many[I].Block.Y = static_cast<long>(I + 1);
  OnlineTuner Tuner(S, Many, 2);
  OnlineTuner::Result Result = Tuner.run(U, Scratch, 5);
  EXPECT_LE(Result.TrialsRun, 2u); // Only 5 steps available.
}
