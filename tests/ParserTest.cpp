//===- tests/ParserTest.cpp - stencil DSL front-end tests --------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

const char *HeatSource = R"(
# 7-point heat kernel
stencil heat3d {
  grid u, unew;
  param alpha = 0.1;
  unew[x,y,z] = (1 - 6*alpha) * u[x,y,z]
              + alpha * (u[x+1,y,z] + u[x-1,y,z]
                       + u[x,y+1,z] + u[x,y-1,z]
                       + u[x,y,z+1] + u[x,y,z-1]);
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenizesKeywordsAndPunctuation) {
  Lexer L("stencil s { grid u; }");
  std::vector<Token> Toks;
  ASSERT_TRUE(L.lexAll(Toks));
  ASSERT_EQ(Toks.size(), 8u); // incl. EOF.
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwStencil);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[2].Kind, TokenKind::LBrace);
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwGrid);
  EXPECT_EQ(Toks[6].Kind, TokenKind::RBrace);
  EXPECT_EQ(Toks[7].Kind, TokenKind::EndOfFile);
}

TEST(Lexer, NumbersIntegerFloatExponent) {
  Lexer L("1 2.5 0.125 1e3 2.5e-2");
  std::vector<Token> Toks;
  ASSERT_TRUE(L.lexAll(Toks));
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_DOUBLE_EQ(Toks[0].NumberValue, 1.0);
  EXPECT_DOUBLE_EQ(Toks[1].NumberValue, 2.5);
  EXPECT_DOUBLE_EQ(Toks[2].NumberValue, 0.125);
  EXPECT_DOUBLE_EQ(Toks[3].NumberValue, 1000.0);
  EXPECT_DOUBLE_EQ(Toks[4].NumberValue, 0.025);
}

TEST(Lexer, CommentsBothStyles) {
  Lexer L("a # to end of line\nb // c-style\nc");
  std::vector<Token> Toks;
  ASSERT_TRUE(L.lexAll(Toks));
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[2].Text, "c");
}

TEST(Lexer, TracksLocations) {
  Lexer L("a\n  b");
  std::vector<Token> Toks;
  ASSERT_TRUE(L.lexAll(Toks));
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(Lexer, RejectsInvalidCharacter) {
  Lexer L("a $ b");
  std::vector<Token> Toks;
  EXPECT_FALSE(L.lexAll(Toks));
  EXPECT_NE(L.errorMessage().find("unexpected character"),
            std::string::npos);
  EXPECT_NE(L.errorMessage().find("1:3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser: valid inputs
//===----------------------------------------------------------------------===//

TEST(Parser, ParsesHeatKernel) {
  auto DefOr = Parser::parseSingle(HeatSource);
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
  EXPECT_EQ(DefOr->Name, "heat3d");
  ASSERT_EQ(DefOr->GridNames.size(), 2u);
  EXPECT_DOUBLE_EQ(DefOr->Params.at("alpha"), 0.1);
  EXPECT_EQ(DefOr->Bundle.numEquations(), 1u);
}

TEST(Parser, HeatKernelLowersToSevenPoints) {
  auto DefOr = Parser::parseSingle(HeatSource);
  ASSERT_TRUE(static_cast<bool>(DefOr));
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr)) << SpecOr.takeError().message();
  EXPECT_EQ(SpecOr->numPoints(), 7u);
  EXPECT_EQ(SpecOr->radius(), 1);
  EXPECT_EQ(SpecOr->shape(), StencilShape::Star);
  // Center coefficient is 1 - 6*alpha = 0.4.
  for (const StencilPoint &P : SpecOr->points())
    if (P.Dx == 0 && P.Dy == 0 && P.Dz == 0) {
      EXPECT_NEAR(P.Coeff, 0.4, 1e-12);
    }
}

TEST(Parser, ParamArithmeticFoldsIntoCoefficients) {
  auto DefOr = Parser::parseSingle(R"(
    stencil scaled {
      grid u, v;
      param c = 2;
      v[x,y,z] = c * c * u[x+1,y,z] - c * u[x,y,z];
    }
  )");
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  for (const StencilPoint &P : SpecOr->points()) {
    if (P.Dx == 1)
      EXPECT_DOUBLE_EQ(P.Coeff, 4.0);
    else
      EXPECT_DOUBLE_EQ(P.Coeff, -2.0);
  }
}

TEST(Parser, NegativeParamAndUnaryMinus) {
  auto DefOr = Parser::parseSingle(R"(
    stencil neg {
      grid u, v;
      param w = -0.5;
      v[x,y,z] = -u[x,y,z] + w * u[x-1,y,z];
    }
  )");
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  for (const StencilPoint &P : SpecOr->points())
    EXPECT_LT(P.Coeff, 0.0);
}

TEST(Parser, MultiEquationBundle) {
  auto DefOr = Parser::parseSingle(R"(
    stencil twostage {
      grid u, k1, k2;
      k1[x,y,z] = u[x+1,y,z] - u[x-1,y,z];
      k2[x,y,z] = k1[x+1,y,z] - k1[x-1,y,z];
    }
  )");
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
  EXPECT_EQ(DefOr->Bundle.numEquations(), 2u);
  EXPECT_TRUE(DefOr->Bundle.dependsOn(1, 0));
  EXPECT_EQ(DefOr->Bundle.chainedHalo(), 2);
  // singleSpec refuses multi-equation definitions.
  EXPECT_FALSE(static_cast<bool>(DefOr->singleSpec()));
}

TEST(Parser, MultipleDefinitionsInOneFile) {
  auto AllOr = Parser::parse(R"(
    stencil a { grid u, v; v[x,y,z] = u[x,y,z]; }
    stencil b { grid u, v; v[x,y,z] = u[x+1,y,z]; }
  )");
  ASSERT_TRUE(static_cast<bool>(AllOr));
  ASSERT_EQ(AllOr->size(), 2u);
  EXPECT_EQ((*AllOr)[0].Name, "a");
  EXPECT_EQ((*AllOr)[1].Name, "b");
}

TEST(Parser, MultiGridReads) {
  auto DefOr = Parser::parseSingle(R"(
    stencil axpy {
      grid y, k, out;
      out[x,y,z] = y[x,y,z] + 0.5 * k[x,y,z];
    }
  )");
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  EXPECT_EQ(SpecOr->numInputGrids(), 2u);
}

//===----------------------------------------------------------------------===//
// Parser: diagnostics
//===----------------------------------------------------------------------===//

namespace {

std::string parseError(const std::string &Source) {
  auto R = Parser::parse(Source);
  if (R)
    return std::string();
  return R.takeError().message();
}

} // namespace

/// Out-of-namespace alias usable by tests appended below.
static std::string parseErrorPublic(const std::string &Source) {
  return parseError(Source);
}

TEST(Parser, DiagnosesUnknownGrid) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x,y,z] = w[x,y,z]; }");
  EXPECT_NE(E.find("unknown grid 'w'"), std::string::npos);
}

TEST(Parser, DiagnosesUnknownParam) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x,y,z] = beta * u[x,y,z]; }");
  EXPECT_NE(E.find("unknown identifier 'beta'"), std::string::npos);
}

TEST(Parser, DiagnosesAxisOrder) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x,y,z] = u[y,x,z]; }");
  EXPECT_NE(E.find("expected axis 'x'"), std::string::npos);
}

TEST(Parser, DiagnosesLhsOffsets) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x+1,y,z] = u[x,y,z]; }");
  EXPECT_NE(E.find("left-hand-side"), std::string::npos);
}

TEST(Parser, DiagnosesNonlinearEquation) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x,y,z] = u[x,y,z] * u[x+1,y,z]; }");
  EXPECT_NE(E.find("not a linear"), std::string::npos);
}

TEST(Parser, DiagnosesMissingSemicolon) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x,y,z] = u[x,y,z] }");
  EXPECT_NE(E.find("expected ';'"), std::string::npos);
}

TEST(Parser, DiagnosesUnterminatedDefinition) {
  std::string E = parseError("stencil s { grid u, v;");
  EXPECT_NE(E.find("unterminated"), std::string::npos);
}

TEST(Parser, DiagnosesDuplicateGrid) {
  std::string E = parseError("stencil s { grid u, u; }");
  EXPECT_NE(E.find("already declared"), std::string::npos);
}

TEST(Parser, DiagnosesFractionalOffset) {
  std::string E = parseError(
      "stencil s { grid u, v; v[x,y,z] = u[x+1.5,y,z]; }");
  EXPECT_NE(E.find("offsets must be integers"), std::string::npos);
}

TEST(Parser, DiagnosesSelfReferenceWithOffset) {
  // In-place stencil: u reads itself at an offset -> bundle validation.
  std::string E = parseError(
      "stencil s { grid u; u[x,y,z] = u[x+1,y,z]; }");
  EXPECT_NE(E.find("in-place"), std::string::npos);
}

TEST(Parser, DiagnosesEmptyInput) {
  std::string E = parseError("   # just a comment\n");
  EXPECT_NE(E.find("no stencil definitions"), std::string::npos);
}

TEST(Parser, ErrorsCarryLocations) {
  std::string E = parseError("stencil s {\n  grid u, v;\n  v[x,y,z] = "
                             "w[x,y,z];\n}");
  EXPECT_NE(E.find("3:"), std::string::npos); // Error on line 3.
}

//===----------------------------------------------------------------------===//
// Round-trip: parsed stencils drive the executor.
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"

TEST(Parser, ParsedSpecExecutesLikeBuiltin) {
  auto DefOr = Parser::parseSingle(R"(
    stencil star {
      grid u, v;
      v[x,y,z] = -6 * u[x,y,z]
               + u[x+1,y,z] + u[x-1,y,z]
               + u[x,y+1,z] + u[x,y-1,z]
               + u[x,y,z+1] + u[x,y,z-1];
    }
  )");
  ASSERT_TRUE(static_cast<bool>(DefOr));
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));

  StencilSpec Builtin = StencilSpec::star3d(1, -6.0, 1.0);
  GridDims Dims{10, 10, 10};
  Grid In(Dims, 1), OutParsed(Dims, 1), OutBuiltin(Dims, 1);
  Rng R(3);
  In.fillRandom(R);
  KernelExecutor::runReference(*SpecOr, {&In}, OutParsed);
  KernelExecutor::runReference(Builtin, {&In}, OutBuiltin);
  EXPECT_LT(Grid::maxAbsDiffInterior(OutParsed, OutBuiltin), 1e-12);
}

TEST(Parser, DivisionInEquations) {
  auto DefOr = Parser::parseSingle(R"(
    stencil avg {
      grid u, v;
      v[x,y,z] = (u[x+1,y,z] + u[x-1,y,z] + 2 * u[x,y,z]) / 4;
    }
  )");
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  for (const StencilPoint &P : SpecOr->points()) {
    if (P.Dx == 0)
      EXPECT_DOUBLE_EQ(P.Coeff, 0.5);
    else
      EXPECT_DOUBLE_EQ(P.Coeff, 0.25);
  }
}

TEST(Parser, DivisionByGridDiagnosed) {
  std::string E = parseErrorPublic(
      "stencil s { grid u, v; v[x,y,z] = u[x,y,z] / u[x+1,y,z]; }");
  EXPECT_NE(E.find("division"), std::string::npos);
}

TEST(Parser, CommentSlashSlashStillWorksWithDivision) {
  auto DefOr = Parser::parseSingle(
      "stencil s { grid u, v; // comment\n"
      "  v[x,y,z] = u[x,y,z] / 2; }");
  ASSERT_TRUE(static_cast<bool>(DefOr)) << DefOr.takeError().message();
}
