//===- tests/AdaptiveTest.cpp - adaptive stepping tests ---------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/Adaptive.h"

#include "ode/IVP.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

namespace {

AdaptiveResult runAdaptive(double Tol, double H0, Grid &Y, Heat2DIVP &P,
                           double TEnd) {
  ExplicitRKIntegrator Integ(ButcherTableau::fehlberg45(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  AdaptiveOptions Opts;
  Opts.Tolerance = Tol;
  return integrateAdaptive(Integ, P, 0.0, TEnd, H0, Y, WS, Opts);
}

} // namespace

TEST(Adaptive, ReachesFinalTime) {
  Heat2DIVP P(10);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  double TEnd = P.suggestedDt() * 20;
  AdaptiveResult R = runAdaptive(1e-7, P.suggestedDt(), Y, P, TEnd);
  EXPECT_TRUE(R.Converged);
  EXPECT_NEAR(R.FinalTime, TEnd, 1e-12);
  EXPECT_GT(R.AcceptedSteps, 0u);
}

TEST(Adaptive, SolutionMeetsToleranceScale) {
  Heat2DIVP P(10);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  double TEnd = P.suggestedDt() * 20;
  AdaptiveResult R = runAdaptive(1e-8, P.suggestedDt() / 4, Y, P, TEnd);
  ASSERT_TRUE(R.Converged);
  Grid Exact(P.dims(), P.halo());
  P.exactSolution(TEnd, Exact);
  // Global error within a couple orders of magnitude of the per-step tol.
  EXPECT_LT(Grid::maxAbsDiffInterior(Y, Exact), 1e-5);
}

TEST(Adaptive, OversizedInitialStepGetsRejected) {
  Heat2DIVP P(10);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  double TEnd = P.suggestedDt() * 10;
  // Start with a wildly unstable step: the controller must reject and
  // shrink.
  AdaptiveResult R = runAdaptive(1e-8, P.suggestedDt() * 100, Y, P, TEnd);
  EXPECT_GT(R.RejectedSteps, 0u);
  EXPECT_TRUE(R.Converged);
}

TEST(Adaptive, TighterToleranceCostsMoreSteps) {
  Heat2DIVP P(10);
  double TEnd = P.suggestedDt() * 20;
  Grid Y1(P.dims(), P.halo());
  P.initialCondition(Y1);
  AdaptiveResult Loose = runAdaptive(1e-5, P.suggestedDt(), Y1, P, TEnd);
  Grid Y2(P.dims(), P.halo());
  P.initialCondition(Y2);
  AdaptiveResult Tight = runAdaptive(1e-10, P.suggestedDt(), Y2, P, TEnd);
  EXPECT_GT(Tight.AcceptedSteps + Tight.RejectedSteps,
            Loose.AcceptedSteps + Loose.RejectedSteps);
}

TEST(Adaptive, RejectionRestoresState) {
  // With an enormous tolerance, nothing is rejected; with zero-ish
  // tolerance everything is; ensure the state stays finite either way.
  Heat2DIVP P(8);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(ButcherTableau::cashKarp45(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  AdaptiveOptions Opts;
  Opts.Tolerance = 1e-30; // Unsatisfiable.
  Opts.MaxSteps = 20;
  AdaptiveResult R = integrateAdaptive(Integ, P, 0.0, 1.0,
                                       P.suggestedDt(), Y, WS, Opts);
  EXPECT_FALSE(R.Converged);
  for (long X = 0; X < 8; ++X)
    EXPECT_TRUE(std::isfinite(Y.at(X, 0, 0)));
}

TEST(Adaptive, WorksWithBogackiShampine) {
  Heat2DIVP P(8);
  Grid Y(P.dims(), P.halo());
  P.initialCondition(Y);
  ExplicitRKIntegrator Integ(ButcherTableau::bogackiShampine32(),
                             RKVariant::StageSeparate);
  RKWorkspace WS;
  AdaptiveOptions Opts;
  Opts.Tolerance = 1e-6;
  double TEnd = P.suggestedDt() * 10;
  AdaptiveResult R = integrateAdaptive(Integ, P, 0.0, TEnd,
                                       P.suggestedDt(), Y, WS, Opts);
  EXPECT_TRUE(R.Converged);
}
