//===- tests/MeasureHarnessTest.cpp - measurement-harness tests ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/MeasureHarness.h"

#include "arch/MachineModel.h"
#include "support/ThreadPool.h"
#include "tuner/TuningCache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

using namespace ys;

namespace {

/// RAII save/override/restore of one environment variable.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    const char *Old = std::getenv(Name);
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~ScopedEnv() {
    if (HadOld)
      setenv(Name.c_str(), OldValue.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }

private:
  std::string Name;
  std::string OldValue;
  bool HadOld = false;
};

} // namespace

TEST(MeasureHarness, ReturnsFinitePositiveMlups) {
  MeasureHarness H(StencilSpec::heat3d(), {16, 8, 6}, /*Repeats=*/2,
                   /*SweepsPerRepeat=*/1);
  double Mlups = H.measure(KernelConfig());
  EXPECT_GT(Mlups, 0.0);
  EXPECT_TRUE(std::isfinite(Mlups)); // Timer floor: never inf.
}

TEST(MeasureHarness, WarmupRunsAreExcludedFromTheRepeatCount) {
  // measureSeconds performs one untimed warm-up invocation plus Repeats
  // timed ones; the kernel-run counter sees all of them, the statistics
  // only the timed repeats.
  const unsigned Repeats = 3, Sweeps = 2;
  MeasureHarness H(StencilSpec::heat3d(), {12, 8, 6}, Repeats, Sweeps);
  EXPECT_EQ(H.totalKernelRuns(), 0u);
  H.measure(KernelConfig());
  EXPECT_EQ(H.totalKernelRuns(), (Repeats + 1) * Sweeps);
  H.measure(KernelConfig());
  EXPECT_EQ(H.totalKernelRuns(), 2 * (Repeats + 1) * Sweeps);
}

TEST(MeasureHarness, CacheServesRepeatMeasurements) {
  TuningCache Cache;
  MachineModel M = MachineModel::cascadeLakeSP();
  MeasureHarness H(StencilSpec::heat3d(), {12, 8, 6}, 2, 1);
  H.attachCache(&Cache, M);

  KernelConfig C;
  C.Block = {4, 4, 4};
  double First = H.measure(C);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(H.cachedMeasurements(), 0u);
  unsigned RunsAfterFirst = H.totalKernelRuns();

  // The repeat is answered from the cache: same number, no kernel runs.
  double Second = H.measure(C);
  EXPECT_EQ(Second, First);
  EXPECT_EQ(H.cachedMeasurements(), 1u);
  EXPECT_EQ(H.totalKernelRuns(), RunsAfterFirst);

  // A different configuration is a different fingerprint.
  KernelConfig Other;
  Other.Block = {3, 5, 2};
  H.measure(Other);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(H.cachedMeasurements(), 1u);
  EXPECT_GT(H.totalKernelRuns(), RunsAfterFirst);
}

TEST(MeasureHarness, MeasurerBindsToTheHarness) {
  TuningCache Cache;
  MachineModel M = MachineModel::rome();
  MeasureHarness H(StencilSpec::heat3d(), {10, 8, 6}, 2, 1);
  H.attachCache(&Cache, M);
  MeasureFn Fn = H.measurer();
  double A = Fn(KernelConfig());
  double B = Fn(KernelConfig());
  EXPECT_EQ(A, B); // Second call served from the attached cache.
  EXPECT_EQ(H.cachedMeasurements(), 1u);
}

TEST(MeasureHarness, MultiInputStencilMeasures) {
  StencilSpec S("pair", {{0, 0, 0, 0.5, 0},
                         {1, 0, 0, 0.25, 0},
                         {0, 0, 0, -1.5, 1},
                         {0, 0, 1, 2.0, 1}});
  ASSERT_EQ(S.numInputGrids(), 2u);
  MeasureHarness H(S, {12, 8, 6}, 2, 2);
  double Mlups = H.measure(KernelConfig());
  EXPECT_GT(Mlups, 0.0);
  EXPECT_TRUE(std::isfinite(Mlups));
  EXPECT_EQ(H.totalKernelRuns(), 3u * 2u); // (warm-up + 2 repeats) x sweeps.
}

TEST(MeasureHarness, YsThreadsControlsTheDefaultThreadCount) {
  {
    ScopedEnv E("YS_THREADS", "3");
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    // Serial configs fingerprint under the environment default...
    KernelConfig Serial;
    EXPECT_EQ(TuningCache::effectiveThreads(Serial), 3u);
    // ...while an explicit thread count wins over the environment.
    KernelConfig Threaded;
    Threaded.Threads = 2;
    EXPECT_EQ(TuningCache::effectiveThreads(Threaded), 2u);
  }
  {
    // Garbage and non-positive values fall back to the hardware default.
    unsigned HW = [] {
      ScopedEnv Unset("YS_THREADS", nullptr);
      return ThreadPool::defaultThreadCount();
    }();
    EXPECT_GE(HW, 1u);
    ScopedEnv E("YS_THREADS", "definitely-not-a-number");
    EXPECT_EQ(ThreadPool::defaultThreadCount(), HW);
    ScopedEnv E0("YS_THREADS", "0");
    EXPECT_EQ(ThreadPool::defaultThreadCount(), HW);
    ScopedEnv ENeg("YS_THREADS", "-4");
    EXPECT_EQ(ThreadPool::defaultThreadCount(), HW);
  }
}

TEST(MeasureHarness, YsThreadsChangesTheCacheFingerprint) {
  // The effective worker count is part of every fingerprint, so changing
  // YS_THREADS must never serve a number measured under a different
  // thread setup.
  StencilSpec S = StencilSpec::heat3d();
  std::string Id = "test-machine#0";
  KernelConfig C;
  std::string FpA, FpB;
  {
    ScopedEnv E("YS_THREADS", "1");
    FpA = TuningCache::fingerprint(S, Id, {8, 8, 8}, C,
                                   TuningCache::effectiveThreads(C));
  }
  {
    ScopedEnv E("YS_THREADS", "2");
    FpB = TuningCache::fingerprint(S, Id, {8, 8, 8}, C,
                                   TuningCache::effectiveThreads(C));
  }
  EXPECT_NE(FpA, FpB);
}
