//===- tests/CacheSimTest.cpp - cache simulator tests -----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"
#include "cachesim/StencilTrace.h"

#include <cmath>

#include <gtest/gtest.h>

using namespace ys;

namespace {

CacheSimLevelConfig level(const char *Name, unsigned long long Size,
                          unsigned Assoc = 8) {
  CacheSimLevelConfig C;
  C.Name = Name;
  C.SizeBytes = Size;
  C.Associativity = Assoc;
  C.LineBytes = 64;
  return C;
}

} // namespace

TEST(CacheLevelSim, ColdMissThenHit) {
  CacheLevelSim L(level("L1", 32 * 1024));
  EXPECT_FALSE(L.access(100, false));
  bool HasEvict = false;
  uint64_t Evicted = 0;
  L.insert(100, false, HasEvict, Evicted);
  EXPECT_FALSE(HasEvict);
  EXPECT_TRUE(L.access(100, false));
  EXPECT_EQ(L.stats().Hits, 1u);
  EXPECT_EQ(L.stats().Misses, 1u);
}

TEST(CacheLevelSim, LruEvictsOldest) {
  // 1 set x 2 ways: size = 2 lines, assoc 2.
  CacheLevelSim L(level("tiny", 128, 2));
  ASSERT_EQ(L.numSets(), 1u);
  bool HasEvict;
  uint64_t Evicted;
  L.insert(1, false, HasEvict, Evicted);
  L.insert(2, false, HasEvict, Evicted);
  EXPECT_TRUE(L.access(1, false)); // 1 becomes MRU.
  L.insert(3, false, HasEvict, Evicted); // Evicts 2 (LRU).
  EXPECT_TRUE(L.access(1, false));
  EXPECT_TRUE(L.access(3, false));
  EXPECT_FALSE(L.access(2, false));
}

TEST(CacheLevelSim, DirtyEvictionReported) {
  CacheLevelSim L(level("tiny", 128, 2));
  bool HasEvict;
  uint64_t Evicted;
  L.insert(1, /*Dirty=*/true, HasEvict, Evicted);
  L.insert(2, false, HasEvict, Evicted);
  L.insert(3, false, HasEvict, Evicted); // Evicts dirty line 1.
  EXPECT_TRUE(HasEvict);
  EXPECT_EQ(Evicted, 1u);
  EXPECT_EQ(L.stats().WritebackLines, 1u);
}

TEST(CacheLevelSim, InsertRefreshesExistingLine) {
  CacheLevelSim L(level("tiny", 128, 2));
  bool HasEvict;
  uint64_t Evicted;
  L.insert(1, false, HasEvict, Evicted);
  L.insert(2, false, HasEvict, Evicted);
  L.insert(1, true, HasEvict, Evicted); // Refresh: 1 becomes MRU + dirty.
  EXPECT_FALSE(HasEvict);
  L.insert(3, false, HasEvict, Evicted); // Should evict 2 (LRU), not 1.
  EXPECT_TRUE(L.access(1, false));
  EXPECT_FALSE(L.access(2, false));
}

TEST(CacheLevelSim, MarkDirtyAndInvalidate) {
  CacheLevelSim L(level("L", 1024));
  bool HasEvict;
  uint64_t Evicted;
  EXPECT_FALSE(L.markDirtyIfPresent(5));
  L.insert(5, false, HasEvict, Evicted);
  EXPECT_TRUE(L.markDirtyIfPresent(5));
  L.invalidate(5);
  EXPECT_FALSE(L.access(5, false));
}

TEST(CacheHierarchySim, SequentialStreamTrafficMatchesFootprint) {
  // Stream 1 MiB through a 32 KiB / 256 KiB hierarchy: every boundary sees
  // the full footprint once (cold).
  CacheHierarchySim Sim({level("L1", 32 * 1024), level("L2", 256 * 1024)});
  const unsigned N = 1 << 17; // 128K doubles = 1 MiB.
  for (unsigned I = 0; I < N; ++I)
    Sim.load(static_cast<uint64_t>(I) * 8);
  HierarchyTraffic T = Sim.traffic();
  EXPECT_EQ(T.BoundaryBytes[0], N * 8ull);
  EXPECT_EQ(T.BoundaryBytes[1], N * 8ull);
  EXPECT_EQ(T.MemStoreBytes, 0ull);
}

TEST(CacheHierarchySim, RepeatedSmallWorkingSetStaysInL1) {
  CacheHierarchySim Sim({level("L1", 32 * 1024), level("L2", 256 * 1024)});
  const unsigned N = 1024; // 8 KiB working set.
  for (int Round = 0; Round < 10; ++Round)
    for (unsigned I = 0; I < N; ++I)
      Sim.load(static_cast<uint64_t>(I) * 8);
  HierarchyTraffic T = Sim.traffic();
  // Only the cold fill crosses the boundaries.
  EXPECT_EQ(T.BoundaryBytes[0], N * 8ull);
  EXPECT_EQ(T.BoundaryBytes[1], N * 8ull);
  // 10 rounds x 1024 accesses, 1 miss per line (8 doubles/line).
  EXPECT_EQ(Sim.level(0).stats().Hits, 10 * N - N / 8);
}

TEST(CacheHierarchySim, MediumWorkingSetServedByL2) {
  CacheHierarchySim Sim({level("L1", 32 * 1024), level("L2", 256 * 1024)});
  const unsigned N = 16 * 1024; // 128 KiB: fits L2, not L1.
  for (int Round = 0; Round < 4; ++Round)
    for (unsigned I = 0; I < N; ++I)
      Sim.load(static_cast<uint64_t>(I) * 8);
  HierarchyTraffic T = Sim.traffic();
  // Memory sees only the cold fill; L1<->L2 sees it every round.
  EXPECT_EQ(T.BoundaryBytes[1], N * 8ull);
  EXPECT_EQ(T.BoundaryBytes[0], 4ull * N * 8);
}

TEST(CacheHierarchySim, WriteAllocateLoadsLine) {
  CacheHierarchySim Sim({level("L1", 32 * 1024)});
  Sim.store(0);
  HierarchyTraffic T = Sim.traffic();
  // The store missed: one line loaded (write-allocate), nothing written
  // back yet (line still resident and dirty).
  EXPECT_EQ(T.MemLoadBytes, 64ull);
  EXPECT_EQ(T.MemStoreBytes, 0ull);
}

TEST(CacheHierarchySim, DirtyLinesWrittenBackOnEviction) {
  // Write a 64 KiB region through a 32 KiB L1: first half gets evicted
  // dirty while the second half streams in.
  CacheHierarchySim Sim({level("L1", 32 * 1024)});
  const unsigned N = 8192; // 64 KiB of doubles.
  for (unsigned I = 0; I < N; ++I)
    Sim.store(static_cast<uint64_t>(I) * 8);
  HierarchyTraffic T = Sim.traffic();
  EXPECT_EQ(T.MemLoadBytes, N * 8ull); // Write-allocates.
  // At least half the footprint must have been written back already.
  EXPECT_GE(T.MemStoreBytes, N * 8ull / 2);
}

TEST(CacheHierarchySim, MultiLineAccessTouchesBothLines) {
  CacheHierarchySim Sim({level("L1", 32 * 1024)});
  Sim.access(60, 8, false); // Straddles lines 0 and 1.
  EXPECT_EQ(Sim.level(0).stats().Misses, 2u);
}

TEST(CacheHierarchySim, FromMachinePerCoreShare) {
  MachineModel M = MachineModel::cascadeLakeSP();
  CacheHierarchySim Full = CacheHierarchySim::fromMachine(M, false);
  CacheHierarchySim Share = CacheHierarchySim::fromMachine(M, true);
  EXPECT_EQ(Full.level(2).config().SizeBytes, M.level(2).SizeBytes);
  EXPECT_EQ(Share.level(2).config().SizeBytes,
            M.level(2).SizeBytes / M.level(2).SharingCores);
  // Private levels unchanged.
  EXPECT_EQ(Share.level(0).config().SizeBytes, M.level(0).SizeBytes);
}

TEST(CacheHierarchySim, ResetClearsState) {
  CacheHierarchySim Sim({level("L1", 1024)});
  Sim.store(0);
  Sim.reset();
  HierarchyTraffic T = Sim.traffic();
  EXPECT_EQ(T.BoundaryBytes[0], 0ull);
  EXPECT_EQ(Sim.level(0).stats().Accesses, 0ull);
}

TEST(CacheHierarchySim, InclusiveFillPopulatesInnerLevels) {
  CacheHierarchySim Sim({level("L1", 32 * 1024), level("L2", 256 * 1024)});
  Sim.load(0);
  // Second access hits L1 directly.
  Sim.load(8);
  EXPECT_EQ(Sim.level(0).stats().Hits, 1u);
  EXPECT_EQ(Sim.level(1).stats().Accesses, 1u); // Only the first miss.
}

//===----------------------------------------------------------------------===//
// Victim (exclusive) last level.
//===----------------------------------------------------------------------===//

namespace {

CacheHierarchySim victimHierarchy() {
  return CacheHierarchySim({level("L1", 8 * 1024),
                            level("L2", 32 * 1024),
                            level("L3", 64 * 1024, 16)},
                           /*VictimLLC=*/true);
}

} // namespace

TEST(VictimLLC, MemoryFillsBypassTheLLC) {
  CacheHierarchySim Sim = victimHierarchy();
  Sim.load(0);
  // The line went to L1/L2 only; the LLC saw a miss and no fill.
  EXPECT_EQ(Sim.level(2).stats().Misses, 1u);
  EXPECT_EQ(Sim.level(2).stats().FillLines, 0u);
  EXPECT_EQ(Sim.level(0).stats().FillLines, 1u);
  EXPECT_EQ(Sim.level(1).stats().FillLines, 1u);
}

TEST(VictimLLC, EvictedLinesEnterAndHitInTheLLC) {
  CacheHierarchySim Sim = victimHierarchy();
  // Stream 48 KiB: overflows L2 (32K), victims land in the 64K LLC.
  const unsigned N = 6 * 1024;
  for (unsigned I = 0; I < N; ++I)
    Sim.load(static_cast<uint64_t>(I) * 8);
  unsigned long long LlcFills = Sim.level(2).stats().FillLines;
  EXPECT_GT(LlcFills, 0ull);
  // Second pass: the head of the stream was evicted from L2 but lives in
  // the LLC -> LLC hits with no extra memory fills for those lines.
  unsigned long long MemBefore = Sim.traffic().MemLoadBytes;
  for (unsigned I = 0; I < N; ++I)
    Sim.load(static_cast<uint64_t>(I) * 8);
  EXPECT_GT(Sim.level(2).stats().Hits, 0ull);
  EXPECT_LT(Sim.traffic().MemLoadBytes - MemBefore, N * 8ull / 2);
}

TEST(VictimLLC, ExclusiveCapacityExceedsInclusive) {
  // Working set of 80 KiB: fits L2+L3 (96K) exclusively, but not the
  // 64K inclusive LLC alone.  The exclusive hierarchy serves the second
  // pass without memory traffic; the inclusive one cannot.
  const unsigned N = 10 * 1024; // 80 KiB of doubles.
  auto Stream = [&](CacheHierarchySim &Sim) {
    for (int Round = 0; Round < 3; ++Round)
      for (unsigned I = 0; I < N; ++I)
        Sim.load(static_cast<uint64_t>(I) * 8);
    return Sim.traffic().MemLoadBytes;
  };
  CacheHierarchySim Exclusive = victimHierarchy();
  CacheHierarchySim Inclusive({level("L1", 8 * 1024),
                               level("L2", 32 * 1024),
                               level("L3", 64 * 1024, 16)});
  unsigned long long MemEx = Stream(Exclusive);
  unsigned long long MemIn = Stream(Inclusive);
  EXPECT_LT(MemEx, MemIn);
  // Exclusive: only the cold pass misses.
  EXPECT_LT(MemEx, N * 8ull * 3 / 2);
}

TEST(VictimLLC, DirtyVictimsReachMemoryExactlyOnce) {
  CacheHierarchySim Sim = victimHierarchy();
  // Write a 160 KiB region (beyond L2+L3): dirty lines cascade L1 -> L2
  // -> LLC -> memory.
  const unsigned N = 20 * 1024;
  for (unsigned I = 0; I < N; ++I)
    Sim.store(static_cast<uint64_t>(I) * 8);
  HierarchyTraffic T = Sim.traffic();
  // Everything written that no longer fits on chip must have been
  // written back; resident dirty lines (~96 KiB) remain.
  unsigned long long Footprint = N * 8ull;
  EXPECT_GT(T.MemStoreBytes, Footprint / 3);
  EXPECT_LE(T.MemStoreBytes, Footprint);
  EXPECT_EQ(T.MemLoadBytes, Footprint); // Write-allocate fills.
}

TEST(VictimLLC, FromMachineHonorsVictimFlag) {
  MachineModel M = MachineModel::cascadeLakeSP();
  CacheHierarchySim A = CacheHierarchySim::fromMachine(M, false, true);
  EXPECT_TRUE(A.victimLLC());
  CacheHierarchySim B = CacheHierarchySim::fromMachine(M, false, false);
  EXPECT_FALSE(B.victimLLC());
}

TEST(VictimLLC, MultiSweepStoreShareIsOneThird) {
  // Streaming heat3d moves 24 B/LUP at the memory boundary: an 8 B read
  // of the input, an 8 B write-allocate fill of the output line, and its
  // 8 B writeback.  The store share of that traffic must stay near 1/3
  // under the exclusive organization too — dirty lines detour through
  // the victim LLC but still reach memory exactly once.
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  CacheHierarchySim Exc = CacheHierarchySim::fromMachine(M, false, true);
  StencilTraceRunner Runner(StencilSpec::heat3d(), GridDims{96, 96, 64},
                            KernelConfig());
  Runner.run(Exc, 3);
  HierarchyTraffic T = Exc.traffic();
  double Share = static_cast<double>(T.MemStoreBytes) /
                 static_cast<double>(T.MemLoadBytes + T.MemStoreBytes);
  EXPECT_GT(Share, 0.25) << "stores " << T.MemStoreBytes << " loads "
                         << T.MemLoadBytes;
  EXPECT_LT(Share, 0.40) << "stores " << T.MemStoreBytes << " loads "
                         << T.MemLoadBytes;
}

TEST(VictimLLC, MultiSweepWritebackAccountingIsConserved) {
  // Accounting invariants of a multi-sweep victim-LLC replay: every
  // memory writeback is an LLC dirty eviction (lines leave the chip only
  // through the exclusive last level), per-level lookups balance, and
  // the writeback volume is bounded by the dirtied footprint minus what
  // can still be resident on chip.
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  CacheHierarchySim Exc = CacheHierarchySim::fromMachine(M, false, true);
  GridDims Dims{96, 96, 64};
  const int Sweeps = 3;
  TraceTraffic T =
      StencilTraceRunner(StencilSpec::heat3d(), Dims, KernelConfig())
          .run(Exc, Sweeps);
  HierarchyTraffic H = Exc.traffic();
  unsigned LineBytes = Exc.level(0).config().LineBytes;
  EXPECT_EQ(H.MemStoreBytes,
            Exc.level(2).stats().WritebackLines * LineBytes);
  for (unsigned L = 0; L < 3; ++L) {
    const CacheLevelStats &S = Exc.level(L).stats();
    EXPECT_EQ(S.Hits + S.Misses, S.Accesses) << "level " << L;
  }
  // Each sweep dirties the full output grid once; everything beyond the
  // on-chip capacity must have been written back.
  unsigned long long StoreFootprint = T.Lups * 8ull; // Lups spans sweeps.
  unsigned long long Capacity = 0;
  for (unsigned L = 0; L < 3; ++L)
    Capacity += Exc.level(L).config().SizeBytes;
  EXPECT_LE(H.MemStoreBytes, StoreFootprint);
  EXPECT_GE(H.MemStoreBytes + 2 * Capacity, StoreFootprint);
}

TEST(VictimLLC, WavefrontTemporalBlockingCutsVictimMemoryTraffic) {
  // Temporal blocking must pay off under the exclusive organization as
  // well: a depth-2 wavefront keeps the intermediate sweep on chip (the
  // 384 KiB window fits the victim L3), so its memory traffic undercuts
  // two independent sweeps — and the victim writeback accounting stays
  // conserved under the blocked schedule.
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  GridDims Dims{64, 64, 64};
  KernelConfig Wave;
  Wave.WavefrontDepth = 2;
  Wave.Block.Z = 2;
  CacheHierarchySim Blocked = CacheHierarchySim::fromMachine(M, false, true);
  TraceTraffic WF = StencilTraceRunner(StencilSpec::heat3d(), Dims, Wave)
                        .runWavefront(Blocked);
  CacheHierarchySim Flat = CacheHierarchySim::fromMachine(M, false, true);
  TraceTraffic Sweep =
      StencilTraceRunner(StencilSpec::heat3d(), Dims, KernelConfig())
          .run(Flat, 2);
  EXPECT_LT(WF.BytesPerLup.back(), 0.8 * Sweep.BytesPerLup.back())
      << "wavefront " << WF.BytesPerLup.back() << " flat "
      << Sweep.BytesPerLup.back();
  HierarchyTraffic H = Blocked.traffic();
  unsigned LineBytes = Blocked.level(0).config().LineBytes;
  EXPECT_EQ(H.MemStoreBytes,
            Blocked.level(2).stats().WritebackLines * LineBytes);
}

TEST(VictimLLC, StencilTrafficCloseToInclusive) {
  // For streaming stencils the two organizations agree on memory traffic
  // (the documented justification for the inclusive default).
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  GridDims Dims{96, 96, 48};
  StencilSpec S = StencilSpec::heat3d();
  CacheHierarchySim Inc = CacheHierarchySim::fromMachine(M, false, false);
  CacheHierarchySim Exc = CacheHierarchySim::fromMachine(M, false, true);
  double MemInc =
      StencilTraceRunner(S, Dims, KernelConfig()).run(Inc, 3).BytesPerLup.back();
  double MemExc =
      StencilTraceRunner(S, Dims, KernelConfig()).run(Exc, 3).BytesPerLup.back();
  EXPECT_LT(std::abs(MemInc - MemExc), 0.25 * MemInc)
      << "inclusive " << MemInc << " exclusive " << MemExc;
}
