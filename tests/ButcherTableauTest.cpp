//===- tests/ButcherTableauTest.cpp - tableau consistency -------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ode/ButcherTableau.h"

#include <gtest/gtest.h>

using namespace ys;

class ExplicitTableauTest : public ::testing::TestWithParam<ButcherTableau> {
};

TEST_P(ExplicitTableauTest, ConsistentAndExplicit) {
  const ButcherTableau &T = GetParam();
  EXPECT_EQ(T.checkConsistency(), "") << T.Name;
  EXPECT_TRUE(T.isExplicit()) << T.Name;
  EXPECT_GE(T.Order, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllExplicit, ExplicitTableauTest,
    ::testing::ValuesIn(ButcherTableau::allExplicit()),
    [](const ::testing::TestParamInfo<ButcherTableau> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

class ImplicitTableauTest : public ::testing::TestWithParam<ButcherTableau> {
};

TEST_P(ImplicitTableauTest, ConsistentAndImplicit) {
  const ButcherTableau &T = GetParam();
  EXPECT_EQ(T.checkConsistency(), "") << T.Name;
  EXPECT_FALSE(T.isExplicit()) << T.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllImplicit, ImplicitTableauTest,
    ::testing::ValuesIn(ButcherTableau::allImplicitBases()),
    [](const ::testing::TestParamInfo<ButcherTableau> &Info) {
      return Info.param.Name;
    });

TEST(ButcherTableau, StageCounts) {
  EXPECT_EQ(ButcherTableau::explicitEuler().Stages, 1u);
  EXPECT_EQ(ButcherTableau::classicRK4().Stages, 4u);
  EXPECT_EQ(ButcherTableau::fehlberg45().Stages, 6u);
  EXPECT_EQ(ButcherTableau::dormandPrince54().Stages, 7u);
}

TEST(ButcherTableau, EmbeddedPairsPresent) {
  EXPECT_TRUE(ButcherTableau::fehlberg45().hasEmbedded());
  EXPECT_TRUE(ButcherTableau::dormandPrince54().hasEmbedded());
  EXPECT_TRUE(ButcherTableau::cashKarp45().hasEmbedded());
  EXPECT_TRUE(ButcherTableau::bogackiShampine32().hasEmbedded());
  EXPECT_FALSE(ButcherTableau::classicRK4().hasEmbedded());
}

TEST(ButcherTableau, NonzeroACounts) {
  EXPECT_EQ(ButcherTableau::explicitEuler().numNonzeroA(), 0u);
  EXPECT_EQ(ButcherTableau::classicRK4().numNonzeroA(), 3u);
  // Gauss 2-stage is dense: 4 nonzeros.
  EXPECT_EQ(ButcherTableau::gauss2().numNonzeroA(), 4u);
}

TEST(ButcherTableau, ConsistencyCatchesBadWeights) {
  ButcherTableau T = ButcherTableau::classicRK4();
  T.B[0] += 0.1;
  EXPECT_NE(T.checkConsistency(), "");
}

TEST(ButcherTableau, ConsistencyCatchesBadRowSums) {
  ButcherTableau T = ButcherTableau::classicRK4();
  T.C[1] = 0.7; // a(1,0) = 0.5 != c(1).
  EXPECT_NE(T.checkConsistency(), "");
}

TEST(ButcherTableau, ConsistencyCatchesBrokenOrderCondition) {
  // Keep sum(b)=1 and row sums, but break b.c = 1/2.
  ButcherTableau T = ButcherTableau::heun2();
  T.B = {0.4, 0.6}; // sum = 1 but b.c = 0.6 != 0.5.
  EXPECT_NE(T.checkConsistency(), "");
}

TEST(ButcherTableau, ConsistencyCatchesDimensionMismatch) {
  ButcherTableau T = ButcherTableau::heun2();
  T.B.pop_back();
  EXPECT_NE(T.checkConsistency(), "");
}

TEST(ButcherTableau, DormandPrinceFSAL) {
  // DOPRI54's last stage equals its b row (FSAL property).
  ButcherTableau T = ButcherTableau::dormandPrince54();
  for (unsigned J = 0; J < T.Stages; ++J)
    EXPECT_DOUBLE_EQ(T.a(6, J), T.b(J));
}
