//===- tests/ModelVsSimTest.cpp - ECM vs cache-simulator cross-check --------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper validates the analytic layer-condition traffic against LIKWID
/// hardware counters; here the cache simulator plays the counters' role.
/// These integration tests assert that the analytic per-boundary volumes
/// agree with the simulated ones across stencils and configurations — the
/// core evidence that "predict without running" is sound.
///
/// A custom machine model with small caches keeps simulated grids (and
/// test runtime) small while preserving the three-level structure.
///
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"
#include "ecm/ECMModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

namespace {

/// A miniature three-level machine: 16 KiB / 128 KiB / 1 MiB.
MachineModel miniMachine() {
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Mini";
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  return M;
}

/// Relative error helper.
double relErr(double Predicted, double Simulated) {
  if (Simulated == 0.0)
    return Predicted == 0.0 ? 0.0 : 1.0;
  return std::abs(Predicted - Simulated) / Simulated;
}

struct AgreementCase {
  const char *Name;
  int Radius;
  long By; // 0 = unblocked.
};

class MemoryTrafficAgreement
    : public ::testing::TestWithParam<AgreementCase> {};

} // namespace

TEST_P(MemoryTrafficAgreement, MemoryBytesWithin25Percent) {
  AgreementCase P = GetParam();
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(P.Radius);
  GridDims Dims{96, 96, 48};
  KernelConfig C;
  C.Block.Y = P.By;

  ECMModel Model(M);
  ECMPrediction Pred = Model.predict(S, Dims, C);

  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(S, Dims, C);
  TraceTraffic T = Runner.run(Sim, 3);

  double PredMem = Pred.Traffic.BytesPerLup.back();
  double SimMem = T.BytesPerLup.back();
  EXPECT_LT(relErr(PredMem, SimMem), 0.25)
      << P.Name << ": predicted " << PredMem << " B/LUP, simulated "
      << SimMem << " B/LUP";
}

INSTANTIATE_TEST_SUITE_P(
    Stencils, MemoryTrafficAgreement,
    ::testing::Values(AgreementCase{"heat-unblocked", 1, 0},
                      AgreementCase{"r2-unblocked", 2, 0},
                      AgreementCase{"r1-by16", 1, 16},
                      AgreementCase{"r2-by16", 2, 16}));

TEST(ModelVsSim, ReuseClassTransitionMatchesSimulator) {
  // Sweep the y-block size: the model's predicted L2 reuse transition
  // (plane -> row) must coincide with a jump in simulated L2<->L3 traffic.
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{128, 128, 24};
  ECMModel Model(M);

  double PrevSim = -1;
  for (long By : {8L, 16L, 64L, 128L}) {
    KernelConfig C;
    C.Block.Y = By;
    ECMPrediction Pred = Model.predict(S, Dims, C);
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
    TraceTraffic T = StencilTraceRunner(S, Dims, C).run(Sim, 2);
    double SimL2 = T.BytesPerLup[1];
    bool PredPlane = Pred.Traffic.LevelReuse[1] == ReuseClass::Plane;
    // The LC safety factor derates capacity by 2x, so predictions within
    // the [derated, full] capacity band may legitimately disagree with
    // the exact LRU simulator; assert only outside the gray zone.
    double FootprintRatio =
        static_cast<double>(Pred.Traffic.PlaneFootprintBytes) /
        static_cast<double>(M.Caches[1].SizeBytes);
    bool GrayZone = FootprintRatio > 0.5 && FootprintRatio < 1.5;
    if (!GrayZone) {
      // Model says plane reuse at L2 -> simulated traffic must be small
      // (input once + output), else clearly larger.
      if (PredPlane)
        EXPECT_LT(SimL2, 40.0) << "By=" << By;
      else
        EXPECT_GT(SimL2, 40.0) << "By=" << By;
    }
    if (PrevSim >= 0) {
      EXPECT_GE(SimL2, PrevSim * 0.8); // Larger blocks never much better.
    }
    PrevSim = SimL2;
  }
}

TEST(ModelVsSim, WavefrontTrafficReductionMatches) {
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{64, 64, 64};
  KernelConfig Wave;
  // Window: 2 buffers x 2 x (2+1) planes x 32 KiB = 384 KiB, inside the
  // model's derated 512 KiB L3 capacity.
  Wave.WavefrontDepth = 2;
  Wave.Block.Z = 2;

  ECMModel Model(M);
  ECMPrediction PredPlain = Model.predict(S, Dims, KernelConfig());
  ECMPrediction PredWave = Model.predict(S, Dims, Wave);
  double PredReduction = PredPlain.Traffic.BytesPerLup.back() /
                         PredWave.Traffic.BytesPerLup.back();

  CacheHierarchySim SimP = CacheHierarchySim::fromMachine(M);
  TraceTraffic TP = StencilTraceRunner(S, Dims, KernelConfig()).run(SimP, 4);
  CacheHierarchySim SimW = CacheHierarchySim::fromMachine(M);
  TraceTraffic TW = StencilTraceRunner(S, Dims, Wave).runWavefront(SimW);
  double SimReduction = TP.BytesPerLup.back() / TW.BytesPerLup.back();

  // Both must see a substantial reduction and agree within a factor ~1.6.
  EXPECT_GT(PredReduction, 1.4);
  EXPECT_GT(SimReduction, 1.4);
  EXPECT_LT(std::abs(std::log(PredReduction / SimReduction)),
            std::log(1.6))
      << "pred x" << PredReduction << " sim x" << SimReduction;
}

TEST(ModelVsSim, StoreTrafficShareIsCorrect) {
  // For the memory-bound heat stencil, stores (writeback) are 1/3 of
  // memory traffic (8 of 24 B/LUP); verify in the simulator.
  MachineModel M = miniMachine();
  GridDims Dims{96, 96, 48};
  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(StencilSpec::heat3d(), Dims, KernelConfig());
  Runner.run(Sim, 3);
  HierarchyTraffic T = Sim.traffic();
  double StoreShare = static_cast<double>(T.MemStoreBytes) /
                      (T.MemLoadBytes + T.MemStoreBytes);
  EXPECT_NEAR(StoreShare, 1.0 / 3.0, 0.07);
}
