//===- tests/ModelVsSimTest.cpp - ECM vs cache-simulator cross-check --------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper validates the analytic layer-condition traffic against LIKWID
/// hardware counters; here the cache simulator plays the counters' role.
/// These integration tests assert that the analytic per-boundary volumes
/// agree with the simulated ones across stencils and configurations — the
/// core evidence that "predict without running" is sound.
///
/// A custom machine model with small caches keeps simulated grids (and
/// test runtime) small while preserving the three-level structure.
///
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"
#include "ecm/ECMModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ys;

namespace {

/// A miniature three-level machine: 16 KiB / 128 KiB / 1 MiB.
MachineModel miniMachine() {
  MachineModel M = MachineModel::cascadeLakeSP();
  M.Name = "Mini";
  M.Caches[0].SizeBytes = 16 * 1024;
  M.Caches[1].SizeBytes = 128 * 1024;
  M.Caches[2].SizeBytes = 1024 * 1024;
  return M;
}

/// Relative error helper.
double relErr(double Predicted, double Simulated) {
  if (Simulated == 0.0)
    return Predicted == 0.0 ? 0.0 : 1.0;
  return std::abs(Predicted - Simulated) / Simulated;
}

struct AgreementCase {
  const char *Name;
  int Radius;
  long By; // 0 = unblocked.
};

class MemoryTrafficAgreement
    : public ::testing::TestWithParam<AgreementCase> {};

} // namespace

TEST_P(MemoryTrafficAgreement, MemoryBytesWithin25Percent) {
  AgreementCase P = GetParam();
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(P.Radius);
  GridDims Dims{96, 96, 48};
  KernelConfig C;
  C.Block.Y = P.By;

  ECMModel Model(M);
  ECMPrediction Pred = Model.predict(S, Dims, C);

  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(S, Dims, C);
  TraceTraffic T = Runner.run(Sim, 3);

  double PredMem = Pred.Traffic.BytesPerLup.back();
  double SimMem = T.BytesPerLup.back();
  EXPECT_LT(relErr(PredMem, SimMem), 0.25)
      << P.Name << ": predicted " << PredMem << " B/LUP, simulated "
      << SimMem << " B/LUP";
}

INSTANTIATE_TEST_SUITE_P(
    Stencils, MemoryTrafficAgreement,
    ::testing::Values(AgreementCase{"heat-unblocked", 1, 0},
                      AgreementCase{"r2-unblocked", 2, 0},
                      AgreementCase{"r1-by16", 1, 16},
                      AgreementCase{"r2-by16", 2, 16}));

TEST(ModelVsSim, ReuseClassTransitionMatchesSimulator) {
  // Sweep the y-block size: the model's predicted L2 reuse transition
  // (plane -> row) must coincide with a jump in simulated L2<->L3 traffic.
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{128, 128, 24};
  ECMModel Model(M);

  double PrevSim = -1;
  for (long By : {8L, 16L, 64L, 128L}) {
    KernelConfig C;
    C.Block.Y = By;
    ECMPrediction Pred = Model.predict(S, Dims, C);
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
    TraceTraffic T = StencilTraceRunner(S, Dims, C).run(Sim, 2);
    double SimL2 = T.BytesPerLup[1];
    bool PredPlane = Pred.Traffic.LevelReuse[1] == ReuseClass::Plane;
    // The LC safety factor derates capacity by 2x, so predictions within
    // the [derated, full] capacity band may legitimately disagree with
    // the exact LRU simulator; assert only outside the gray zone.
    double FootprintRatio =
        static_cast<double>(Pred.Traffic.PlaneFootprintBytes) /
        static_cast<double>(M.Caches[1].SizeBytes);
    bool GrayZone = FootprintRatio > 0.5 && FootprintRatio < 1.5;
    if (!GrayZone) {
      // Model says plane reuse at L2 -> simulated traffic must be small
      // (input once + output), else clearly larger.
      if (PredPlane)
        EXPECT_LT(SimL2, 40.0) << "By=" << By;
      else
        EXPECT_GT(SimL2, 40.0) << "By=" << By;
    }
    if (PrevSim >= 0) {
      EXPECT_GE(SimL2, PrevSim * 0.8); // Larger blocks never much better.
    }
    PrevSim = SimL2;
  }
}

TEST(ModelVsSim, WavefrontTrafficReductionMatches) {
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::heat3d();
  GridDims Dims{64, 64, 64};
  KernelConfig Wave;
  // Window: 2 buffers x 2 x (2+1) planes x 32 KiB = 384 KiB, inside the
  // model's derated 512 KiB L3 capacity.
  Wave.WavefrontDepth = 2;
  Wave.Block.Z = 2;

  ECMModel Model(M);
  ECMPrediction PredPlain = Model.predict(S, Dims, KernelConfig());
  ECMPrediction PredWave = Model.predict(S, Dims, Wave);
  double PredReduction = PredPlain.Traffic.BytesPerLup.back() /
                         PredWave.Traffic.BytesPerLup.back();

  CacheHierarchySim SimP = CacheHierarchySim::fromMachine(M);
  TraceTraffic TP = StencilTraceRunner(S, Dims, KernelConfig()).run(SimP, 4);
  CacheHierarchySim SimW = CacheHierarchySim::fromMachine(M);
  TraceTraffic TW = StencilTraceRunner(S, Dims, Wave).runWavefront(SimW);
  double SimReduction = TP.BytesPerLup.back() / TW.BytesPerLup.back();

  // Both must see a substantial reduction and agree within a factor ~1.6.
  EXPECT_GT(PredReduction, 1.4);
  EXPECT_GT(SimReduction, 1.4);
  EXPECT_LT(std::abs(std::log(PredReduction / SimReduction)),
            std::log(1.6))
      << "pred x" << PredReduction << " sim x" << SimReduction;
}

//===----------------------------------------------------------------------===//
// Sampled fast mode vs. exact full replay (the E14 staircase).
//===----------------------------------------------------------------------===//

namespace {

/// One point of the sampled-vs-full equivalence matrix.
struct SampledCase {
  const char *Name;
  bool Box; ///< box3d vs star3d.
  int Radius;
  GridDims Dims;
  long By, Bz;  ///< 0 = unblocked.
  bool Victim;  ///< Exclusive-LLC hierarchy.
};

class SampledVsFull : public ::testing::TestWithParam<SampledCase> {};

} // namespace

TEST_P(SampledVsFull, MemoryTrafficWithin10PercentOfFullReplay) {
  SampledCase P = GetParam();
  MachineModel M = miniMachine();
  StencilSpec S =
      P.Box ? StencilSpec::box3d(P.Radius) : StencilSpec::star3d(P.Radius);
  KernelConfig C;
  C.Block.Y = P.By;
  C.Block.Z = P.Bz;

  CacheHierarchySim SimFull =
      CacheHierarchySim::fromMachine(M, false, P.Victim);
  CacheHierarchySim SimSampled =
      CacheHierarchySim::fromMachine(M, false, P.Victim);
  StencilTraceRunner Runner(S, P.Dims, C);
  TraceTraffic Full = Runner.run(SimFull, 1);
  TraceTraffic Sampled = Runner.run(SimSampled, 1, SimMode::Sampled);

  ASSERT_TRUE(Sampled.Sampled)
      << P.Name << ": expected a sampled replay, got exact fallback: "
      << Sampled.FallbackReason;
  // planSampled admits grids with as few as 2x(warmup+measure) units,
  // so the replayed share can be exactly one half at the boundary.
  EXPECT_LE(Sampled.ReplayedLups, Full.Lups / 2) << P.Name;
  ASSERT_EQ(Sampled.BytesPerLup.size(), Full.BytesPerLup.size());
  for (size_t I = 0; I < Full.BytesPerLup.size(); ++I)
    EXPECT_LT(relErr(Sampled.BytesPerLup[I], Full.BytesPerLup[I]), 0.10)
        << P.Name << " boundary " << I << ": sampled "
        << Sampled.BytesPerLup[I] << " vs full " << Full.BytesPerLup[I];
}

// Grid sizes sit firmly on staircase steps (outside the L3 gray zones,
// working set >= 2x total capacity) so sampling must engage; the gray
// boundary sizes themselves are covered by the fallback tests below.
INSTANTIATE_TEST_SUITE_P(
    Staircase, SampledVsFull,
    ::testing::Values(
        SampledCase{"star-r1", false, 1, {96, 96, 64}, 0, 0, false},
        SampledCase{"star-r2", false, 2, {96, 96, 64}, 0, 0, false},
        SampledCase{"star-r3", false, 3, {80, 80, 56}, 0, 0, false},
        SampledCase{"box-r1", true, 1, {96, 96, 64}, 0, 0, false},
        SampledCase{"box-r2", true, 2, {80, 80, 48}, 0, 0, false},
        SampledCase{"box-r3", true, 3, {80, 80, 56}, 0, 0, false},
        SampledCase{"star-r2-row-regime", false, 2, {192, 192, 48}, 0, 0,
                    false},
        SampledCase{"star-r2-by16", false, 2, {128, 128, 64}, 16, 0, false},
        SampledCase{"star-r2-bz8", false, 2, {96, 96, 128}, 0, 8, false},
        SampledCase{"star-r2-victim", false, 2, {96, 96, 64}, 0, 0, true},
        SampledCase{"box-r1-victim", true, 1, {96, 96, 64}, 0, 0, true}));

TEST(SampledVsFullFallback, RegimeBoundarySizesDeclineSampling) {
  // Grid sizes whose plane footprint lands in the outermost level's gray
  // zone (the staircase mid-step) must be declined by the plan.
  MachineModel M = miniMachine();
  struct Boundary {
    bool Box;
    int Radius;
    GridDims Dims;
  } Cases[] = {
      {false, 2, {128, 128, 64}}, // 6 planes x 128^2 x 8 = 768K vs 1M L3.
      {false, 1, {144, 144, 64}}, // 4 planes x 144^2 x 8 = 648K vs 1M L3.
      {true, 3, {96, 96, 64}},    // 8 planes x 96^2 x 8 = 576K vs 1M L3.
  };
  for (const Boundary &B : Cases) {
    StencilSpec S =
        B.Box ? StencilSpec::box3d(B.Radius) : StencilSpec::star3d(B.Radius);
    CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
    StencilTraceRunner Runner(S, B.Dims, KernelConfig());
    StencilTraceRunner::SamplePlan Plan = Runner.planSampled(Sim);
    EXPECT_FALSE(Plan.UseSampling) << B.Dims.str();
    EXPECT_NE(Plan.Reason.find("gray zone"), std::string::npos)
        << B.Dims.str() << ": " << Plan.Reason;
  }
}

TEST(SampledVsFullFallback, ResidentWorkingSetDeclinesSampling) {
  MachineModel M = miniMachine();
  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(StencilSpec::star3d(2), {24, 24, 24},
                            KernelConfig());
  StencilTraceRunner::SamplePlan Plan = Runner.planSampled(Sim);
  EXPECT_FALSE(Plan.UseSampling);
  EXPECT_NE(Plan.Reason.find("working set"), std::string::npos)
      << Plan.Reason;
}

TEST(SampledVsFullFallback, DegenerateBlocksDeclineSampling) {
  // A z-block of half the grid leaves two sample units — no room for an
  // interior warmup+measure window.
  MachineModel M = miniMachine();
  KernelConfig C;
  C.Block.Z = 32;
  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(StencilSpec::star3d(2), {96, 96, 64}, C);
  StencilTraceRunner::SamplePlan Plan = Runner.planSampled(Sim);
  EXPECT_FALSE(Plan.UseSampling);
  EXPECT_NE(Plan.Reason.find("sample units"), std::string::npos)
      << Plan.Reason;
}

TEST(SampledVsFullFallback, ExactFallbackMatchesFullReplayExactly) {
  // When sampling is requested but declined, the result must be the exact
  // replay, bit for bit, with the reason attached.
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{32, 32, 32};
  CacheHierarchySim SimA = CacheHierarchySim::fromMachine(M);
  CacheHierarchySim SimB = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(S, Dims, KernelConfig());
  TraceTraffic Fallback = Runner.run(SimA, 2, SimMode::Sampled);
  TraceTraffic Full = Runner.run(SimB, 2);

  EXPECT_FALSE(Fallback.Sampled);
  EXPECT_FALSE(Fallback.FallbackReason.empty());
  EXPECT_EQ(Fallback.Lups, Full.Lups);
  EXPECT_EQ(Fallback.ReplayedLups, Full.Lups);
  ASSERT_EQ(Fallback.BytesPerLup.size(), Full.BytesPerLup.size());
  for (size_t I = 0; I < Full.BytesPerLup.size(); ++I)
    EXPECT_EQ(Fallback.BytesPerLup[I], Full.BytesPerLup[I]);
}

TEST(SampledVsFull, FullModeBitIdenticalToLegacyRun) {
  // SimMode::Full must not perturb the historical simulator in any way:
  // identical traffic and identical per-level counters.
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{48, 48, 32};
  KernelConfig C;
  C.Block.Y = 16;
  CacheHierarchySim SimA = CacheHierarchySim::fromMachine(M);
  CacheHierarchySim SimB = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(S, Dims, C);
  TraceTraffic Legacy = Runner.run(SimA, 3);
  TraceTraffic Full = Runner.run(SimB, 3, SimMode::Full);

  EXPECT_EQ(Legacy.Lups, Full.Lups);
  ASSERT_EQ(Legacy.BytesPerLup.size(), Full.BytesPerLup.size());
  for (size_t I = 0; I < Legacy.BytesPerLup.size(); ++I)
    EXPECT_EQ(Legacy.BytesPerLup[I], Full.BytesPerLup[I]);
  for (unsigned L = 0; L < SimA.numLevels(); ++L) {
    const CacheLevelStats &A = SimA.level(L).stats();
    const CacheLevelStats &B = SimB.level(L).stats();
    EXPECT_EQ(A.Accesses, B.Accesses) << "level " << L;
    EXPECT_EQ(A.Hits, B.Hits) << "level " << L;
    EXPECT_EQ(A.Misses, B.Misses) << "level " << L;
    EXPECT_EQ(A.FillLines, B.FillLines) << "level " << L;
    EXPECT_EQ(A.WritebackLines, B.WritebackLines) << "level " << L;
  }
}

TEST(SampledVsFull, DeepGridReplaysAtMostATenthOfTheLups) {
  // The acceptance pin: on a deep streaming grid the sampled mode must
  // replay <= 1/10 of the lattice updates (the deterministic counterpart
  // of the >=10x wall-clock gate in bench_e4) while staying within 10%
  // of the exact memory-boundary traffic.
  MachineModel M = miniMachine();
  StencilSpec S = StencilSpec::star3d(2);
  GridDims Dims{96, 96, 224};
  CacheHierarchySim SimFull = CacheHierarchySim::fromMachine(M);
  CacheHierarchySim SimSampled = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(S, Dims, KernelConfig());
  TraceTraffic Full = Runner.run(SimFull, 1);
  TraceTraffic Sampled = Runner.run(SimSampled, 1, SimMode::Sampled);

  ASSERT_TRUE(Sampled.Sampled) << Sampled.FallbackReason;
  EXPECT_LE(Sampled.ReplayedLups * 10, Sampled.Lups);
  EXPECT_LT(relErr(Sampled.BytesPerLup.back(), Full.BytesPerLup.back()),
            0.10);
}

TEST(ModelVsSim, StoreTrafficShareIsCorrect) {
  // For the memory-bound heat stencil, stores (writeback) are 1/3 of
  // memory traffic (8 of 24 B/LUP); verify in the simulator.
  MachineModel M = miniMachine();
  GridDims Dims{96, 96, 48};
  CacheHierarchySim Sim = CacheHierarchySim::fromMachine(M);
  StencilTraceRunner Runner(StencilSpec::heat3d(), Dims, KernelConfig());
  Runner.run(Sim, 3);
  HierarchyTraffic T = Sim.traffic();
  double StoreShare = static_cast<double>(T.MemStoreBytes) /
                      (T.MemLoadBytes + T.MemStoreBytes);
  EXPECT_NEAR(StoreShare, 1.0 / 3.0, 0.07);
}
