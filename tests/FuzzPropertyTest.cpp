//===- tests/FuzzPropertyTest.cpp - randomized property tests ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Randomized sweeps over generated stencils / configurations / inputs,
/// asserting the library's core invariants rather than specific values:
/// executor paths equal the reference, the cache simulator's counters are
/// self-consistent, the ECM model respects its structural monotonicities,
/// and the DSL front end never crashes on mutated inputs.
///
//===----------------------------------------------------------------------===//

#include "cachesim/StencilTrace.h"
#include "codegen/DomainDecomposition.h"
#include "codegen/KernelExecutor.h"
#include "ecm/ECMModel.h"
#include "frontend/Parser.h"
#include "support/Random.h"
#include "verify/GridPatterns.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace ys;

namespace {

/// Generates a random valid single-grid stencil with radius <= 3.
StencilSpec randomSpec(Rng &R) {
  int Radius = 1 + static_cast<int>(R.nextBounded(3));
  unsigned NumPoints = 3 + static_cast<unsigned>(R.nextBounded(12));
  std::set<std::tuple<int, int, int>> Seen;
  std::vector<StencilPoint> Points;
  Seen.insert({0, 0, 0});
  Points.push_back({0, 0, 0, R.nextDouble(-2.0, 2.0), 0});
  while (Points.size() < NumPoints) {
    int Dx = static_cast<int>(R.nextBounded(2 * Radius + 1)) - Radius;
    int Dy = static_cast<int>(R.nextBounded(2 * Radius + 1)) - Radius;
    int Dz = static_cast<int>(R.nextBounded(2 * Radius + 1)) - Radius;
    if (!Seen.insert({Dx, Dy, Dz}).second)
      continue;
    Points.push_back({Dx, Dy, Dz, R.nextDouble(-1.0, 1.0), 0});
  }
  return StencilSpec("fuzz", std::move(Points));
}

/// Generates a random kernel configuration (scalar or folded layout).
KernelConfig randomConfig(Rng &R) {
  KernelConfig C;
  long Blocks[] = {0, 2, 3, 5, 8, 16};
  C.Block.X = Blocks[R.nextBounded(6)];
  C.Block.Y = Blocks[R.nextBounded(6)];
  C.Block.Z = Blocks[R.nextBounded(6)];
  if (R.nextBounded(2) == 0) {
    Fold Folds[] = {{1, 1, 1}, {4, 1, 1}, {2, 2, 1}, {1, 2, 2}};
    C.VectorFold = Folds[R.nextBounded(4)];
  }
  // ~1 in 3 configs are temporal, spread over all three temporal
  // schedules and a few fusion depths.  Paths that ignore the schedule
  // (single sweeps, trace replays without runTemporal) must keep working
  // when these fields are set.
  if (R.nextBounded(3) == 0) {
    Schedule Scheds[] = {Schedule::Wavefront, Schedule::Diamond,
                         Schedule::DeepTemporal};
    C.Sched = Scheds[R.nextBounded(3)];
    C.WavefrontDepth = 2 + static_cast<int>(R.nextBounded(3));
  }
  return C;
}

} // namespace

class FuzzSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeed, ExecutorMatchesReference) {
  Rng R(GetParam());
  StencilSpec Spec = randomSpec(R);
  ASSERT_EQ(Spec.validate(), "");
  KernelConfig Config = randomConfig(R);
  GridDims Dims{static_cast<long>(8 + R.nextBounded(12)),
                static_cast<long>(8 + R.nextBounded(10)),
                static_cast<long>(8 + R.nextBounded(8))};

  int Halo = Spec.radius();
  Grid In(Dims, Halo, Config.VectorFold);
  const uint64_t FillSeed = GetParam() ^ 0xabcdef;
  fillPattern(In, GridPattern::Random, FillSeed);
  Grid OutRef(Dims, Halo, Config.VectorFold);
  Grid OutCfg(Dims, Halo, Config.VectorFold);
  KernelExecutor::runReference(Spec, {&In}, OutRef);
  KernelExecutor Exec(Spec, Config);
  Exec.runSweep({&In}, OutCfg);
  EXPECT_EQ(Grid::maxAbsDiffInterior(OutRef, OutCfg), 0.0)
      << "config " << Config.str() << " pattern=random seed=" << FillSeed
      << " (test seed " << GetParam() << ")";
}

TEST_P(FuzzSeed, TemporalSchedulesMatchPlainStepping) {
  Rng R(GetParam());
  // Every temporal schedule must reproduce plain stepping bit for bit on
  // random specs, step counts, depths, and z blockings.
  StencilSpec Spec = randomSpec(R);
  GridDims Dims{10, 9, static_cast<long>(8 + R.nextBounded(10))};
  int Steps = 2 + static_cast<int>(R.nextBounded(5));
  int Depth = 2 + static_cast<int>(R.nextBounded(3));

  int Halo = Spec.radius();
  Grid U0(Dims, Halo);
  const uint64_t FillSeed = GetParam() * 31 + 7;
  fillPattern(U0, GridPattern::Random, FillSeed);

  Grid UPlain(Dims, Halo);
  UPlain.copyInteriorFrom(U0);
  Grid S1(Dims, Halo), S2(Dims, Halo);
  KernelExecutor Plain(Spec, KernelConfig());
  Plain.runTimeSteps(UPlain, S1, Steps);

  for (Schedule Sched : {Schedule::Wavefront, Schedule::Diamond,
                         Schedule::DeepTemporal}) {
    KernelConfig Cfg;
    Cfg.Sched = Sched;
    Cfg.WavefrontDepth = Depth;
    if (Sched != Schedule::DeepTemporal)
      Cfg.Block.Z = 1 + static_cast<long>(R.nextBounded(6));
    ASSERT_EQ(Cfg.validate(), "");

    Grid UT(Dims, Halo);
    UT.copyInteriorFrom(U0);
    KernelExecutor Exec(Spec, Cfg);
    Exec.runTimeSteps(UT, S2, Steps);
    EXPECT_EQ(Grid::maxAbsDiffInterior(UPlain, UT), 0.0)
        << "sched=" << scheduleName(Sched) << " steps=" << Steps
        << " depth=" << Depth << " pattern=random seed=" << FillSeed
        << " (test seed " << GetParam() << ")";
  }
}

TEST_P(FuzzSeed, TemporalTraceMatchesExecutorLupCount) {
  Rng R(GetParam());
  // The trace replay of a temporal schedule must account exactly
  // Depth * Nx*Ny*Nz lattice updates per macro step and report nonzero
  // traffic at every cache boundary it models.
  StencilSpec Spec = randomSpec(R);
  KernelConfig Cfg;
  Schedule Scheds[] = {Schedule::Wavefront, Schedule::Diamond,
                       Schedule::DeepTemporal};
  Cfg.Sched = Scheds[R.nextBounded(3)];
  Cfg.WavefrontDepth = 2 + static_cast<int>(R.nextBounded(3));
  if (Cfg.Sched != Schedule::DeepTemporal)
    Cfg.Block.Z = 1 + static_cast<long>(R.nextBounded(6));
  ASSERT_EQ(Cfg.validate(), "");
  GridDims Dims{static_cast<long>(16 + R.nextBounded(8)),
                static_cast<long>(12 + R.nextBounded(6)),
                static_cast<long>(10 + R.nextBounded(8))};

  CacheHierarchySim Sim({{"L1", 8 * 1024, 8, 64},
                         {"L2", 64 * 1024, 8, 64}});
  StencilTraceRunner Runner(Spec, Dims, Cfg);
  TraceTraffic T = Runner.runTemporal(Sim);
  EXPECT_EQ(T.Lups, static_cast<unsigned long long>(Cfg.WavefrontDepth) *
                        Dims.Nx * Dims.Ny * Dims.Nz)
      << "sched=" << scheduleName(Cfg.Sched) << " (test seed "
      << GetParam() << ")";
  for (double B : T.BytesPerLup)
    EXPECT_GT(B, 0.0) << scheduleName(Cfg.Sched);
}

TEST_P(FuzzSeed, DistributedMatchesMonolithic) {
  Rng R(GetParam());
  // A rank-decomposed run with deep halos must be bit-identical to the
  // monolithic sweep on the owned planes — for random rank counts, halo
  // depths (k * radius), schedules, folds, and both exchange paths — and
  // one exchange must amortize k = Halo/radius fused sweeps.
  StencilSpec Spec = randomSpec(R);
  GridDims Dims{static_cast<long>(8 + R.nextBounded(8)),
                static_cast<long>(8 + R.nextBounded(6)),
                static_cast<long>(10 + R.nextBounded(10))};
  unsigned Ranks = 2 + static_cast<unsigned>(R.nextBounded(3));
  int Steps = 2 + static_cast<int>(R.nextBounded(4));
  int Radius = Spec.radius();

  KernelConfig Cfg;
  Schedule Scheds[] = {Schedule::Wavefront, Schedule::Wavefront,
                      Schedule::Diamond, Schedule::DeepTemporal};
  int Pick = static_cast<int>(R.nextBounded(4));
  if (Pick > 0)
    Cfg.Sched = Scheds[Pick];
  if (R.nextBounded(2) == 0) {
    Fold Folds[] = {{1, 1, 1}, {4, 1, 1}, {2, 2, 1}, {1, 2, 2}};
    Cfg.VectorFold = Folds[R.nextBounded(4)];
  }
  int Halo;
  if (Cfg.isTemporal()) {
    // Temporal schedules step distributed with Halo = depth * radius.
    Cfg.WavefrontDepth = 2 + static_cast<int>(R.nextBounded(2));
    if (Cfg.Sched != Schedule::DeepTemporal)
      Cfg.Block.Z = 1 + static_cast<long>(R.nextBounded(4));
    Halo = Radius * Cfg.WavefrontDepth;
  } else {
    // Plain sweeps take any halo depth: k sweeps per exchange.
    Halo = Radius * (1 + static_cast<int>(R.nextBounded(3)));
  }
  ASSERT_EQ(Cfg.validate(), "");
  ASSERT_EQ(DecomposedGrid::validateParams(Dims, Ranks, Halo), "");

  std::string Ctx = "seed=" + std::to_string(GetParam()) + " dims=" +
                    Dims.str() + " ranks=" + std::to_string(Ranks) +
                    " halo=" + std::to_string(Halo) + " steps=" +
                    std::to_string(Steps) + " config=" + Cfg.str();

  Grid Init(Dims, Radius);
  const uint64_t FillSeed = GetParam() * 131 + 17;
  fillPattern(Init, GridPattern::Random, FillSeed);

  Grid URef(Dims, Radius), SRef(Dims, Radius);
  URef.copyInteriorFrom(Init);
  KernelExecutor Mono(Spec, Cfg);
  Mono.runTimeSteps(URef, SRef, Steps);

  ThreadPool Pool(3);
  for (ExchangeMode Mode :
       {ExchangeMode::Serial, ExchangeMode::Overlapped}) {
    DecomposedGrid U(Dims, Ranks, Halo, Cfg.VectorFold);
    DecomposedGrid V(Dims, Ranks, Halo, Cfg.VectorFold);
    U.scatter(Init);
    V.scatter(Init);
    DistributedStepper Stepper(Spec, Cfg);
    Stepper.setExchangeMode(Mode);
    Stepper.runTimeSteps(U, V, Steps, &Pool);
    Grid Out(Dims, Radius);
    U.gather(Out);
    const char *ModeName =
        Mode == ExchangeMode::Serial ? "serial" : "overlapped";
    EXPECT_EQ(Grid::maxAbsDiffInterior(URef, Out), 0.0)
        << Ctx << " mode=" << ModeName;
    int K = Stepper.stepsPerExchange(Halo);
    EXPECT_EQ(Stepper.exchangeRounds(),
              static_cast<unsigned long long>((Steps + K - 1) / K))
        << Ctx << " mode=" << ModeName;
    EXPECT_GT(U.haloBytesExchanged(), 0ull) << Ctx << " mode=" << ModeName;
  }
}

TEST_P(FuzzSeed, CacheSimCountersSelfConsistent) {
  Rng R(GetParam());
  CacheHierarchySim Sim({{"L1", 4 * 1024, 4, 64},
                         {"L2", 32 * 1024, 8, 64}});
  unsigned long long Accesses = 2000 + R.nextBounded(3000);
  for (unsigned long long I = 0; I < Accesses; ++I) {
    uint64_t Addr = R.nextBounded(256 * 1024);
    bool Write = R.nextBounded(3) == 0;
    Sim.access(Addr, 8, Write);
  }
  for (unsigned L = 0; L < Sim.numLevels(); ++L) {
    const CacheLevelStats &S = Sim.level(L).stats();
    EXPECT_EQ(S.Hits + S.Misses, S.Accesses);
    EXPECT_EQ(S.FillLines, S.Misses); // Every miss fills inclusively.
  }
  // Outer level only sees inner misses.
  EXPECT_EQ(Sim.level(1).stats().Accesses, Sim.level(0).stats().Misses);
  HierarchyTraffic T = Sim.traffic();
  for (unsigned long long B : T.BoundaryBytes)
    EXPECT_EQ(B % 64, 0ull);
}

TEST_P(FuzzSeed, EcmStructuralInvariants) {
  Rng R(GetParam());
  StencilSpec Spec = randomSpec(R);
  MachineModel M = MachineModel::cascadeLakeSP();
  ECMModel Model(M);
  GridDims Dims{256, 256, 128};
  KernelConfig Config = randomConfig(R);
  ECMPrediction P = Model.predict(Spec, Dims, Config);

  EXPECT_GE(P.TECM, P.InCore.TOL);
  EXPECT_GE(P.TECM, P.InCore.TnOL);
  for (size_t I = 1; I < P.Traffic.BytesPerLup.size(); ++I)
    EXPECT_LE(P.Traffic.BytesPerLup[I], P.Traffic.BytesPerLup[I - 1]);
  EXPECT_GE(P.SaturationCores, 1u);
  EXPECT_LE(P.SaturationCores, M.CoresPerSocket);
  EXPECT_GT(P.MLupsSingleCore, 0.0);
  EXPECT_LE(P.mlupsAtCores(1), P.mlupsAtCores(M.CoresPerSocket) + 1e-9);

  // More memory bandwidth can never predict slower.
  MachineModel M2 = M;
  M2.Memory.BandwidthGBs *= 2.0;
  ECMModel Faster(M2);
  EXPECT_GE(Faster.predict(Spec, Dims, Config).MLupsSaturated + 1e-9,
            P.MLupsSaturated);

  // Larger caches can never predict more traffic.
  MachineModel M3 = M;
  for (CacheLevelModel &L : M3.Caches)
    L.SizeBytes *= 4;
  ECMModel Bigger(M3);
  ECMPrediction P3 = Bigger.predict(Spec, Dims, Config);
  for (size_t I = 0; I < P.Traffic.BytesPerLup.size(); ++I)
    EXPECT_LE(P3.Traffic.BytesPerLup[I],
              P.Traffic.BytesPerLup[I] + 1e-9);
}

TEST_P(FuzzSeed, ParserNeverCrashesOnMutatedInput) {
  const std::string Valid =
      "stencil s { grid u, v; param a = 0.5;\n"
      "  v[x,y,z] = a * (u[x+1,y,z] + u[x-1,y,z]) - u[x,y,z]; }";
  Rng R(GetParam());
  for (int Round = 0; Round < 50; ++Round) {
    std::string Mutated = Valid;
    unsigned Edits = 1 + R.nextBounded(4);
    for (unsigned E = 0; E < Edits; ++E) {
      size_t Pos = R.nextBounded(Mutated.size());
      switch (R.nextBounded(3)) {
      case 0:
        Mutated.erase(Pos, 1);
        break;
      case 1:
        Mutated.insert(Pos, 1, "{}[]();=+-*,xyz123 "[R.nextBounded(19)]);
        break;
      default:
        Mutated[Pos] = "{}[]();=+-*,abz019 "[R.nextBounded(19)];
        break;
      }
    }
    // Must terminate and either succeed or produce a diagnostic; the
    // point is exercising the error paths without crashing.
    auto Result = Parser::parse(Mutated);
    if (!Result) {
      EXPECT_FALSE(Result.takeError().message().empty());
    }
  }
}

TEST_P(FuzzSeed, TraceTrafficBoundedByWorstCase) {
  Rng R(GetParam());
  StencilSpec Spec = randomSpec(R);
  GridDims Dims{24, 20, 12};
  CacheHierarchySim Sim({{"L1", 8 * 1024, 8, 64},
                         {"L2", 64 * 1024, 8, 64}});
  StencilTraceRunner Runner(Spec, Dims, KernelConfig());
  TraceTraffic T = Runner.run(Sim, 1);
  // Worst case: every point access misses (points * 8B) plus the output
  // (load + store), plus cold halo.
  double WorstCase = (Spec.numPoints() + 2.0) * 8.0 * 2.0;
  for (double B : T.BytesPerLup)
    EXPECT_LE(B, WorstCase);
  EXPECT_GT(T.BytesPerLup.back(), 0.0);
}

TEST_P(FuzzSeed, SampledTrafficMatchesFullOrFallsBackExactly) {
  // The sampled fast mode's contract over random (stencil, dims, config)
  // tuples: either it samples and the memory-boundary traffic lands
  // within 10% of the exact replay, or it declines with an explicit
  // reason and reproduces the exact replay bit for bit.
  Rng R(GetParam());
  StencilSpec Spec = randomSpec(R);
  KernelConfig Config = randomConfig(R);
  GridDims Dims{static_cast<long>(40 + 8 * R.nextBounded(5)),
                static_cast<long>(40 + 8 * R.nextBounded(5)),
                static_cast<long>(32 + 16 * R.nextBounded(5))};
  // Small hierarchy so random grids mostly stream (sampling engages) but
  // resident/gray cases still occur across seeds (fallback engages).
  auto makeSim = [] {
    return CacheHierarchySim({{"L1", 8 * 1024, 8, 64},
                              {"L2", 32 * 1024, 8, 64},
                              {"L3", 256 * 1024, 16, 64}});
  };
  CacheHierarchySim SimFull = makeSim(), SimSampled = makeSim();
  StencilTraceRunner Runner(Spec, Dims, Config);
  TraceTraffic Full = Runner.run(SimFull, 1);
  TraceTraffic Sampled = Runner.run(SimSampled, 1, SimMode::Sampled);

  std::string Ctx = "seed=" + std::to_string(GetParam()) + " dims=" +
                    Dims.str() + " config=" + Config.str();
  ASSERT_EQ(Sampled.BytesPerLup.size(), Full.BytesPerLup.size()) << Ctx;
  if (Sampled.Sampled) {
    EXPECT_TRUE(Sampled.FallbackReason.empty()) << Ctx;
    EXPECT_LT(Sampled.ReplayedLups, Full.Lups) << Ctx;
    double FullMem = Full.BytesPerLup.back();
    double SampledMem = Sampled.BytesPerLup.back();
    EXPECT_LE(std::abs(SampledMem - FullMem), 0.10 * FullMem)
        << Ctx << ": sampled mem " << SampledMem << " vs full " << FullMem;
  } else {
    EXPECT_FALSE(Sampled.FallbackReason.empty()) << Ctx;
    EXPECT_EQ(Sampled.ReplayedLups, Full.Lups) << Ctx;
    for (size_t I = 0; I < Full.BytesPerLup.size(); ++I)
      EXPECT_EQ(Sampled.BytesPerLup[I], Full.BytesPerLup[I])
          << Ctx << " boundary " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));
