//===- tests/KernelPlanTest.cpp - compiled kernel plan tests ---------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the compiled-kernel-plan layer: the fold-linear offset
/// invariant on edge folds and non-dividing dims, direct plan execution
/// against the reference, unit-stride point detection, SIMD target
/// selection (YS_SIMD parsing/override/fallback), and the plan-lifecycle
/// regressions (one build per geometry, rebuild on geometry or target
/// change — never one per tile).
///
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"
#include "codegen/KernelPlan.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace ys;

//===----------------------------------------------------------------------===//
// Fold-linear offset tables (the math the plans are built on)
//===----------------------------------------------------------------------===//

TEST(FoldLinearIndexing, NeighborOffsetMatchesLinearIndexEverywhere) {
  // blockBaseIndex(V) + foldNeighborOffset(L, D) must equal the linear
  // index of the neighbor, for every block, lane, and in-halo delta —
  // including folds that do not divide the padded extents.
  const Fold Folds[] = {{1, 1, 1}, {8, 1, 1}, {3, 2, 1}, {2, 2, 2}};
  const GridDims Dims{7, 5, 4}; // Non-multiples of every fold above.
  const int Halo = 2;
  for (const Fold &F : Folds) {
    SCOPED_TRACE(F.str());
    Grid G(Dims, Halo, F);
    for (long Z = 0; Z < Dims.Nz; ++Z)
      for (long Y = 0; Y < Dims.Ny; ++Y)
        for (long X = 0; X < Dims.Nx; ++X) {
          // Recover (block, lane) of this cell from its padded coords.
          long Gx = X + Halo, Gy = Y + Halo, Gz = Z + Halo;
          long Vx = Gx / F.X, Vy = Gy / F.Y, Vz = Gz / F.Z;
          int Lane = static_cast<int>(((Gz % F.Z) * F.Y + Gy % F.Y) * F.X +
                                      Gx % F.X);
          size_t Base = G.blockBaseIndex(Vx, Vy, Vz);
          ASSERT_EQ(Base + static_cast<size_t>(G.foldNeighborOffset(
                               Lane, 0, 0, 0)),
                    G.linearIndex(X, Y, Z));
          for (int Dz = -Halo; Dz <= Halo; ++Dz)
            for (int Dy = -Halo; Dy <= Halo; ++Dy)
              for (int Dx = -Halo; Dx <= Halo; ++Dx) {
                long Off = G.foldNeighborOffset(Lane, Dx, Dy, Dz);
                ASSERT_EQ(static_cast<long>(Base) + Off,
                          static_cast<long>(
                              G.linearIndex(X + Dx, Y + Dy, Z + Dz)))
                    << "cell (" << X << "," << Y << "," << Z
                    << ") delta (" << Dx << "," << Dy << "," << Dz << ")";
              }
        }
  }
}

TEST(FoldLinearIndexing, LaneCoordsRoundTrip) {
  Grid G({8, 8, 8}, 1, {2, 2, 2});
  for (int Lane = 0; Lane < G.foldElems(); ++Lane) {
    int Ix, Iy, Iz;
    G.laneCoords(Lane, Ix, Iy, Iz);
    EXPECT_EQ((Iz * 2 + Iy) * 2 + Ix, Lane);
  }
}

//===----------------------------------------------------------------------===//
// SIMD target selection
//===----------------------------------------------------------------------===//

TEST(SimdTargets, NamesParseAndRoundTrip) {
  EXPECT_EQ(parseSimdTarget("scalar"), SimdTarget::Scalar);
  EXPECT_EQ(parseSimdTarget("avx2"), SimdTarget::AVX2);
  EXPECT_EQ(parseSimdTarget("avx512"), SimdTarget::AVX512);
  EXPECT_EQ(parseSimdTarget("avx512f"), SimdTarget::AVX512);
  EXPECT_FALSE(parseSimdTarget("sse").has_value());
  EXPECT_FALSE(parseSimdTarget("").has_value());
  for (SimdTarget T : availableSimdTargets())
    EXPECT_EQ(parseSimdTarget(simdTargetName(T)), T);
}

TEST(SimdTargets, WidthsAndAvailabilityOrdering) {
  EXPECT_EQ(simdTargetDoubles(SimdTarget::Scalar), 1u);
  EXPECT_EQ(simdTargetDoubles(SimdTarget::AVX2), 4u);
  EXPECT_EQ(simdTargetDoubles(SimdTarget::AVX512), 8u);
  const std::vector<SimdTarget> &Avail = availableSimdTargets();
  ASSERT_FALSE(Avail.empty());
  EXPECT_EQ(Avail.front(), SimdTarget::Scalar); // Always compiled in.
  for (size_t I = 1; I < Avail.size(); ++I)
    EXPECT_LT(simdTargetDoubles(Avail[I - 1]), simdTargetDoubles(Avail[I]));
  EXPECT_EQ(bestSimdTarget(), Avail.back());
}

TEST(SimdTargets, EnvOverrideAndFallback) {
  ASSERT_EQ(setenv("YS_SIMD", "scalar", 1), 0);
  EXPECT_EQ(selectSimdTarget(), SimdTarget::Scalar);
  // An unknown name falls back to the widest available target (with a
  // one-time warning) instead of failing.
  ASSERT_EQ(setenv("YS_SIMD", "definitely-not-a-target", 1), 0);
  EXPECT_EQ(selectSimdTarget(), bestSimdTarget());
  unsetenv("YS_SIMD");
  EXPECT_EQ(selectSimdTarget(), bestSimdTarget());
}

//===----------------------------------------------------------------------===//
// Plan construction and direct execution
//===----------------------------------------------------------------------===//

namespace {

void fillDeterministic(Grid &G, uint64_t Seed) {
  Rng R(Seed);
  G.fillRandom(R);
}

} // namespace

TEST(KernelPlan, DirectRunMatchesReferenceOnNonDividingFold) {
  // The plan executed standalone (construct, bind, runRange over the
  // whole interior) must reproduce the reference exactly, on a fold that
  // divides neither extent.
  StencilSpec Spec = StencilSpec::star3d(2);
  GridDims Dims{11, 7, 5};
  KernelConfig C;
  C.VectorFold = {8, 1, 1};
  Grid In(Dims, 2, C.VectorFold), Out(Dims, 2, C.VectorFold);
  fillDeterministic(In, 7);
  Grid Ref(Dims, 2);
  const Grid *InScalarPtr = &In;
  KernelExecutor::runReference(Spec, {InScalarPtr}, Ref);

  for (SimdTarget T : availableSimdTargets()) {
    SCOPED_TRACE(simdTargetName(T));
    KernelPlan Plan(Spec, C, In, T);
    EXPECT_EQ(Plan.target(), T);
    EXPECT_TRUE(Plan.matchesGeometry(Out));
    const Grid *InPtr = &In;
    Plan.bind(&InPtr, 1, Out);
    Plan.runRange(0, Dims.Nz, 0, Dims.Ny, 0, Dims.Nx);
    EXPECT_EQ(Grid::maxAbsDiffInterior(Ref, Out), 0.0);
  }
}

TEST(KernelPlan, GeometryMismatchDetected) {
  StencilSpec Spec = StencilSpec::heat3d();
  KernelConfig C;
  C.VectorFold = {2, 2, 1};
  Grid Proto({10, 8, 6}, 1, C.VectorFold);
  KernelPlan Plan(Spec, C, Proto, SimdTarget::Scalar);
  EXPECT_TRUE(Plan.matchesGeometry(Proto));
  Grid OtherDims({12, 8, 6}, 1, C.VectorFold);
  EXPECT_FALSE(Plan.matchesGeometry(OtherDims));
  Grid OtherFold({10, 8, 6}, 1, Fold{4, 1, 1});
  EXPECT_FALSE(Plan.matchesGeometry(OtherFold));
  Grid OtherHalo({10, 8, 6}, 2, C.VectorFold);
  EXPECT_FALSE(Plan.matchesGeometry(OtherHalo));
}

TEST(KernelPlan, UnitStridePointDetection) {
  // An x-only fold stores x contiguously (consecutive x blocks are
  // foldElems() apart), so every heat3d point — x neighbors included —
  // loads with unit stride.  A 2-D fold breaks that for the x and y
  // neighbors: their lane offsets wrap inside the fold, leaving only the
  // center and z neighbors (whole-block shifts) unit-stride.
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{16, 8, 8};
  {
    KernelConfig C;
    C.VectorFold = {8, 1, 1};
    Grid Proto(Dims, 1, C.VectorFold);
    KernelPlan Plan(Spec, C, Proto, SimdTarget::Scalar);
    EXPECT_EQ(Plan.numUnitStridePoints(), 7u);
  }
  {
    KernelConfig C;
    C.VectorFold = {2, 2, 1};
    Grid Proto(Dims, 1, C.VectorFold);
    KernelPlan Plan(Spec, C, Proto, SimdTarget::Scalar);
    EXPECT_EQ(Plan.numUnitStridePoints(), 3u);
  }
}

//===----------------------------------------------------------------------===//
// Plan lifecycle in the executor (the per-tile allocation regression)
//===----------------------------------------------------------------------===//

TEST(KernelPlanLifecycle, OneBuildPerRunTimeSteps) {
  // Regression: plan construction must happen once per geometry, not
  // once per tile or per sweep.  A blocked multi-step run over many
  // cache blocks still costs exactly one build.
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{12, 10, 8};
  KernelConfig C;
  C.VectorFold = {4, 1, 1};
  C.Block = {4, 4, 2}; // 3 x 3 x 4 = 36 block ranges per sweep.
  KernelExecutor Exec(Spec, C);
  EXPECT_EQ(Exec.planBuilds(), 0u);

  Grid U(Dims, 1, C.VectorFold), V(Dims, 1, C.VectorFold);
  fillDeterministic(U, 3);
  V.copyHaloFrom(U);
  Exec.runTimeSteps(U, V, 5);
  EXPECT_EQ(Exec.planBuilds(), 1u);

  // Further runs on the same geometry reuse the plan.
  Exec.runTimeSteps(U, V, 3);
  const Grid *UPtr = &U;
  Exec.runSweep(&UPtr, 1, V);
  EXPECT_EQ(Exec.planBuilds(), 1u);

  // A different geometry forces exactly one rebuild.
  Grid U2({8, 8, 8}, 1, C.VectorFold), V2({8, 8, 8}, 1, C.VectorFold);
  fillDeterministic(U2, 4);
  V2.copyHaloFrom(U2);
  Exec.runTimeSteps(U2, V2, 2);
  EXPECT_EQ(Exec.planBuilds(), 2u);
}

TEST(KernelPlanLifecycle, WavefrontAlsoBuildsOnce) {
  StencilSpec Spec = StencilSpec::star3d(1);
  GridDims Dims{10, 8, 12};
  KernelConfig C;
  C.VectorFold = {2, 2, 1};
  C.WavefrontDepth = 3;
  C.Block = {0, 4, 4};
  KernelExecutor Exec(Spec, C);
  Grid U(Dims, 1, C.VectorFold), V(Dims, 1, C.VectorFold);
  fillDeterministic(U, 9);
  V.copyHaloFrom(U);
  Exec.runTimeSteps(U, V, 6); // Two macro-steps.
  EXPECT_EQ(Exec.planBuilds(), 1u);
}

TEST(KernelPlanLifecycle, SimdTargetChangeRebuilds) {
  const std::vector<SimdTarget> &Avail = availableSimdTargets();
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{10, 6, 6};
  KernelConfig C;
  C.VectorFold = {4, 1, 1};
  KernelExecutor Exec(Spec, C);
  Grid U(Dims, 1, C.VectorFold), V(Dims, 1, C.VectorFold);
  fillDeterministic(U, 5);
  V.copyHaloFrom(U);

  ASSERT_EQ(setenv("YS_SIMD", "scalar", 1), 0);
  Exec.runTimeSteps(U, V, 2);
  EXPECT_EQ(Exec.planBuilds(), 1u);
  EXPECT_EQ(Exec.planTarget(), SimdTarget::Scalar);

  if (Avail.size() > 1) {
    // Switching the override invalidates the cached plan...
    ASSERT_EQ(setenv("YS_SIMD", simdTargetName(Avail.back()), 1), 0);
    Exec.runTimeSteps(U, V, 2);
    EXPECT_EQ(Exec.planBuilds(), 2u);
    EXPECT_EQ(Exec.planTarget(), Avail.back());
    // ...and a repeat on the same target does not.
    Exec.runTimeSteps(U, V, 2);
    EXPECT_EQ(Exec.planBuilds(), 2u);
  }
  unsetenv("YS_SIMD");
}
