//===- tests/JitCompilerTest.cpp - runtime JIT backend tests ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The `jit`-labeled ctest suite: the runtime JIT backend end to end.
/// Compiles SourceEmitter output with the system compiler, dlopens the
/// result, and checks the executed kernels bit-identical against the
/// ReferenceInterpreter — including the full VariantChecker matrix forced
/// onto the jit backend.  Also the cache-behavior contract (a warm
/// content-addressed store serves repeat builds with zero compiler
/// invocations, in-process and across JitCompiler instances), the
/// no-compiler-available fallback to kernel plans, and the regression
/// that every emitted (stencil x config) translation unit — wavefront
/// drivers included — compiles and links standalone.
///
/// Every test that needs the system compiler skips (GTEST_SKIP) when none
/// is available, so the suite stays green in compilerless sandboxes.
///
//===----------------------------------------------------------------------===//

#include "codegen/JitCompiler.h"
#include "codegen/KernelExecutor.h"
#include "codegen/SourceEmitter.h"
#include "verify/GridPatterns.h"
#include "verify/ReferenceInterpreter.h"
#include "verify/VariantChecker.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

using namespace ys;

namespace {

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

/// A fresh private cache directory under the gtest temp dir.
std::string freshCacheDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + "/ys-jit-test-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Restores the process-wide JitRuntime to its environment-derived
/// configuration when a test that reconfigured it ends (however it ends).
struct JitRuntimeGuard {
  ~JitRuntimeGuard() { JitRuntime::configure(JitCompiler::Config()); }
};

/// Skips the calling test when no system compiler works in this sandbox.
#define YS_REQUIRE_COMPILER(Jit)                                            \
  do {                                                                      \
    if (!(Jit).available())                                                 \
      GTEST_SKIP() << "no working C++ compiler in this environment";        \
  } while (0)

} // namespace

//===----------------------------------------------------------------------===//
// Backend naming and selection
//===----------------------------------------------------------------------===//

TEST(KernelBackendNames, RoundTripAndRejects) {
  EXPECT_STREQ(kernelBackendName(KernelBackend::Plan), "plan");
  EXPECT_STREQ(kernelBackendName(KernelBackend::Jit), "jit");
  EXPECT_EQ(parseKernelBackend("plan"), KernelBackend::Plan);
  EXPECT_EQ(parseKernelBackend("jit"), KernelBackend::Jit);
  EXPECT_EQ(parseKernelBackend("JIT"), KernelBackend::Jit); // Case-blind.
  EXPECT_FALSE(parseKernelBackend("llvm").has_value());
  EXPECT_FALSE(parseKernelBackend("").has_value());
}

TEST(KernelBackendNames, EnvSelection) {
  ASSERT_EQ(setenv("YS_BACKEND", "jit", 1), 0);
  EXPECT_EQ(selectKernelBackend(), KernelBackend::Jit);
  ASSERT_EQ(setenv("YS_BACKEND", "plan", 1), 0);
  EXPECT_EQ(selectKernelBackend(), KernelBackend::Plan);
  // Unknown value: warn (once) and fall back to plans rather than abort.
  ASSERT_EQ(setenv("YS_BACKEND", "no-such-backend", 1), 0);
  EXPECT_EQ(selectKernelBackend(), KernelBackend::Plan);
  unsetenv("YS_BACKEND");
  EXPECT_EQ(selectKernelBackend(), KernelBackend::Plan);
}

TEST(JitCompilerConfig, CacheDirEnvOverride) {
  ASSERT_EQ(setenv("YS_JIT_CACHE", "/some/explicit/dir", 1), 0);
  EXPECT_EQ(JitCompiler::defaultCacheDir(), "/some/explicit/dir");
  unsetenv("YS_JIT_CACHE");
  // Next preference: a yasksite-jit directory next to the tuning cache.
  ASSERT_EQ(setenv("YS_TUNE_CACHE", "/var/cache/ys/tuning.json", 1), 0);
  EXPECT_EQ(JitCompiler::defaultCacheDir(), "/var/cache/ys/yasksite-jit");
  unsetenv("YS_TUNE_CACHE");
  EXPECT_TRUE(contains(JitCompiler::defaultCacheDir(), "yasksite-jit-"));
}

//===----------------------------------------------------------------------===//
// Direct compile + execute of the emitted JIT range kernel
//===----------------------------------------------------------------------===//

TEST(JitCompiler, CompileAndRunEmittedRangeKernel) {
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("range-kernel");
  JitCompiler Jit(Cfg);
  YS_REQUIRE_COMPILER(Jit);

  const StencilSpec Spec = StencilSpec::heat3d();
  const GridDims Dims{11, 9, 7};
  Grid In(Dims, 1), Want(Dims, 1), Got(Dims, 1);
  fillPattern(In, GridPattern::Random, 17);
  Want.copyHaloFrom(In);
  Got.copyHaloFrom(In);
  KernelExecutor::runReference(Spec, {&In}, Want);

  JitGeometry G(In);
  std::string Source = SourceEmitter::emitJitTranslationUnit(Spec, G);
  Expected<JitKernel> Kernel =
      Jit.compile(Source, SourceEmitter::jitKernelSymbol());
  ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.takeError().message();

  const double *Ins[] = {In.data()};
  Kernel->rangeKernel()(Ins, Got.data(), 0, Dims.Nz, 0, Dims.Ny, 0,
                        Dims.Nx);

  CellDivergence Div;
  EXPECT_FALSE(findFirstDivergence(Want, Got, UlpTolerance(), Div))
      << "first divergence at (" << Div.X << "," << Div.Y << "," << Div.Z
      << "): got " << Div.Got << " want " << Div.Want;
}

TEST(JitCompiler, FoldedGeometryBitIdentical) {
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("folded");
  JitCompiler Jit(Cfg);
  YS_REQUIRE_COMPILER(Jit);

  const StencilSpec Spec = StencilSpec::star3d(2);
  const GridDims Dims{10, 9, 6};
  // Folds that do not divide the extents, so edge fold blocks are partial.
  const Fold Folds[] = {{4, 1, 1}, {2, 2, 1}, {1, 2, 2}};
  for (const Fold &F : Folds) {
    SCOPED_TRACE(F.str());
    Grid In(Dims, 2, F), Want(Dims, 2, F), Got(Dims, 2, F);
    fillPattern(In, GridPattern::Random, 3);
    Want.copyHaloFrom(In);
    Got.copyHaloFrom(In);
    KernelExecutor::runReference(Spec, {&In}, Want);

    JitGeometry G(In);
    Expected<JitKernel> Kernel =
        Jit.compile(SourceEmitter::emitJitTranslationUnit(Spec, G),
                    SourceEmitter::jitKernelSymbol());
    ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.takeError().message();
    const double *Ins[] = {In.data()};
    Kernel->rangeKernel()(Ins, Got.data(), 0, Dims.Nz, 0, Dims.Ny, 0,
                          Dims.Nx);
    CellDivergence Div;
    EXPECT_FALSE(findFirstDivergence(Want, Got, UlpTolerance(), Div))
        << "(" << Div.X << "," << Div.Y << "," << Div.Z << ") got "
        << Div.Got << " want " << Div.Want;
  }
}

TEST(JitCompiler, CompileErrorCarriesDiagnostics) {
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("bad-source");
  JitCompiler Jit(Cfg);
  YS_REQUIRE_COMPILER(Jit);
  Expected<JitKernel> K = Jit.compile("this is not C++\n", "nope");
  ASSERT_FALSE(static_cast<bool>(K));
  EXPECT_TRUE(contains(K.takeError().message(), "compiler exited"));
  EXPECT_EQ(Jit.stats().Failures, 1u);
  // A failed compile must not poison the cache: no .so under the key.
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(Cfg.CacheDir) /
      ("ys-jit-" + Jit.fingerprint("this is not C++\n") + ".so")));
}

//===----------------------------------------------------------------------===//
// The content-addressed cache contract
//===----------------------------------------------------------------------===//

TEST(JitCache, WarmCacheMeansZeroCompilerInvocations) {
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("warm");
  JitCompiler Jit(Cfg);
  YS_REQUIRE_COMPILER(Jit);

  const StencilSpec Spec = StencilSpec::heat3d();
  JitGeometry G = JitGeometry::forDims({8, 8, 8}, 1, Fold{1, 1, 1});
  std::string Source = SourceEmitter::emitJitTranslationUnit(Spec, G);

  // Cold: exactly one compiler process.
  ASSERT_TRUE(static_cast<bool>(
      Jit.compile(Source, SourceEmitter::jitKernelSymbol())));
  JitStats S = Jit.stats();
  EXPECT_EQ(S.Invocations, 1u);
  EXPECT_EQ(S.MemoryHits, 0u);
  EXPECT_EQ(S.DiskHits, 0u);

  // Warm, same instance: served from the in-process handle map.
  ASSERT_TRUE(static_cast<bool>(
      Jit.compile(Source, SourceEmitter::jitKernelSymbol())));
  S = Jit.stats();
  EXPECT_EQ(S.Invocations, 1u);
  EXPECT_EQ(S.MemoryHits, 1u);

  // Warm, fresh instance (a new process in spirit): served from disk,
  // still zero additional compiler invocations.
  JitCompiler Second(Cfg);
  ASSERT_TRUE(static_cast<bool>(
      Second.compile(Source, SourceEmitter::jitKernelSymbol())));
  S = Second.stats();
  EXPECT_EQ(S.Invocations, 0u);
  EXPECT_EQ(S.DiskHits, 1u);

  // The store is content-addressed: source and object live under the
  // fingerprint key, and no temp files are left behind.
  std::string Key = Jit.fingerprint(Source);
  std::filesystem::path Dir(Cfg.CacheDir);
  EXPECT_TRUE(std::filesystem::exists(Dir / ("ys-jit-" + Key + ".so")));
  EXPECT_TRUE(std::filesystem::exists(Dir / ("ys-jit-" + Key + ".cpp")));
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    EXPECT_FALSE(contains(Entry.path().filename().string(), ".tmp."))
        << Entry.path();
}

TEST(JitCache, FingerprintCoversSourceAndFlags) {
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("fingerprint");
  JitCompiler A(Cfg);
  YS_REQUIRE_COMPILER(A);
  // Different source -> different key; different flags -> different key
  // even for identical source (stale objects can never be served).
  EXPECT_NE(A.fingerprint("int a;\n"), A.fingerprint("int b;\n"));
  JitCompiler::Config Cfg2 = Cfg;
  Cfg2.Flags.push_back("-DYS_SOMETHING");
  JitCompiler B(Cfg2);
  EXPECT_NE(A.fingerprint("int a;\n"), B.fingerprint("int a;\n"));
}

//===----------------------------------------------------------------------===//
// KernelExecutor dispatch through the jit backend
//===----------------------------------------------------------------------===//

TEST(JitExecutor, TimeSteppingBitIdenticalAndOneBuild) {
  JitRuntimeGuard Guard;
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("executor");
  JitRuntime::configure(Cfg);
  YS_REQUIRE_COMPILER(JitRuntime::instance());

  const StencilSpec Spec = StencilSpec::heat3d();
  const GridDims Dims{12, 10, 8};
  Grid Ref(Dims, 1);
  fillPattern(Ref, GridPattern::Random, 5);
  ReferenceInterpreter(Spec).runTimeSteps(Ref, 3);

  KernelConfig C;
  C.Block.Y = 4; // Blocking stays executor-side; same .so either way.
  KernelExecutor Exec(Spec, C);
  Exec.setBackend(KernelBackend::Jit);
  EXPECT_EQ(Exec.backend(), KernelBackend::Jit);

  Grid U(Dims, 1), Scratch(Dims, 1);
  fillPattern(U, GridPattern::Random, 5);
  Scratch.copyHaloFrom(U);
  Exec.runTimeSteps(U, Scratch, 3);

  EXPECT_EQ(Exec.activeBackend(), KernelBackend::Jit);
  EXPECT_EQ(Exec.jitBuilds(), 1u);
  CellDivergence Div;
  EXPECT_FALSE(findFirstDivergence(Ref, U, UlpTolerance(), Div))
      << "(" << Div.X << "," << Div.Y << "," << Div.Z << ") got "
      << Div.Got << " want " << Div.Want;

  // Same geometry again: the compiled kernel is reused, not rebuilt.
  Exec.runTimeSteps(U, Scratch, 1);
  EXPECT_EQ(Exec.jitBuilds(), 1u);
}

TEST(JitExecutor, OneObjectServesEveryBlockingVariant) {
  JitRuntimeGuard Guard;
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("shared-object");
  JitRuntime::configure(Cfg);
  YS_REQUIRE_COMPILER(JitRuntime::instance());
  JitRuntime::instance().resetStats();

  // Blocking/wavefront/thread axes live in the executor, so every scalar
  // heat3d variant on one geometry shares a single compiled object.
  const StencilSpec Spec = StencilSpec::heat3d();
  const GridDims Dims{11, 9, 7};
  Grid Want(Dims, 1);
  fillPattern(Want, GridPattern::Random, 9);
  ReferenceInterpreter(Spec).runTimeSteps(Want, 2);

  KernelConfig Variants[3];
  Variants[1].Block = {4, 3, 2};
  Variants[2].WavefrontDepth = 2;
  Variants[2].Block.Z = 4;
  for (const KernelConfig &C : Variants) {
    SCOPED_TRACE(C.str());
    KernelExecutor Exec(Spec, C);
    Exec.setBackend(KernelBackend::Jit);
    Grid U(Dims, 1), Scratch(Dims, 1);
    fillPattern(U, GridPattern::Random, 9);
    Scratch.copyHaloFrom(U);
    Exec.runTimeSteps(U, Scratch, 2);
    EXPECT_EQ(Exec.activeBackend(), KernelBackend::Jit);
    CellDivergence Div;
    EXPECT_FALSE(findFirstDivergence(Want, U, UlpTolerance(), Div));
  }
  JitStats S = JitRuntime::instance().stats();
  EXPECT_EQ(S.Invocations, 1u); // One compile...
  EXPECT_EQ(S.MemoryHits, 2u);  // ...two in-process reuses.
}

TEST(JitExecutor, MissingCompilerFallsBackToPlans) {
  JitRuntimeGuard Guard;
  JitCompiler::Config Broken;
  Broken.Compiler = "/no/such/compiler-binary";
  Broken.CacheDir = freshCacheDir("broken");
  JitRuntime::configure(Broken);
  ASSERT_FALSE(JitRuntime::instance().available());

  const StencilSpec Spec = StencilSpec::heat3d();
  const GridDims Dims{9, 8, 7};
  Grid In(Dims, 1), Want(Dims, 1), Got(Dims, 1);
  fillPattern(In, GridPattern::Random, 2);
  Want.copyHaloFrom(In);
  Got.copyHaloFrom(In);
  KernelExecutor::runReference(Spec, {&In}, Want);

  KernelExecutor Exec(Spec, KernelConfig());
  Exec.setBackend(KernelBackend::Jit);
  Exec.runSweep({&In}, Got); // Warns once, falls back, still correct.
  EXPECT_EQ(Exec.backend(), KernelBackend::Jit);      // The request...
  EXPECT_EQ(Exec.activeBackend(), KernelBackend::Plan); // ...vs reality.
  EXPECT_EQ(Exec.jitBuilds(), 0u);
  CellDivergence Div;
  EXPECT_FALSE(findFirstDivergence(Want, Got, UlpTolerance(), Div));
}

//===----------------------------------------------------------------------===//
// The full variant matrix through the jit backend
//===----------------------------------------------------------------------===//

TEST(JitVariantMatrix, EveryVariantBitIdenticalViaJit) {
  JitRuntimeGuard Guard;
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("matrix");
  JitRuntime::configure(Cfg);
  YS_REQUIRE_COMPILER(JitRuntime::instance());
  JitRuntime::instance().resetStats();

  CheckOptions CO;
  CO.Steps = 2;
  CO.Patterns = {GridPattern::Random, GridPattern::BoundaryStress};
  CO.Backend = KernelBackend::Jit;
  VariantChecker Checker(StencilSpec::star3d(2), {11, 10, 9}, CO);
  CheckReport Report = Checker.checkAll();
  EXPECT_TRUE(Report.ok()) << Report.summary();
  EXPECT_TRUE(Report.Rejected.empty());
  // With a working compiler every comparison must actually run JITted
  // code — a silent fallback to plans would make this suite vacuous.
  EXPECT_EQ(Report.JitComparisons, Report.ComparisonsRun);
  EXPECT_TRUE(contains(Report.summary(), "via jit backend"));

  // The whole matrix needs one compile per distinct (fold, geometry),
  // not one per variant: blocking/threads/wavefront reuse the object.
  JitStats S = JitRuntime::instance().stats();
  EXPECT_GT(S.Invocations, 0u);
  EXPECT_LT(S.Invocations, Report.VariantsChecked);
  EXPECT_EQ(S.Failures, 0u);
}

//===----------------------------------------------------------------------===//
// Every emitted (stencil x config) TU compiles and links standalone
//===----------------------------------------------------------------------===//

TEST(JitEmittedVariants, EveryEnumeratedTranslationUnitCompiles) {
  // Regression for the emitter bugs that blocked compilation: truncated
  // coefficients and the wavefront driver referencing an undefined
  // kernel_<name>_slab.  Every TU the emitter can produce for the
  // curated variant space must build as a standalone shared object with
  // its kernel resolvable by dlsym.  Optimization is irrelevant here, so
  // -O0 keeps the matrix fast.
  JitCompiler::Config Cfg;
  Cfg.CacheDir = freshCacheDir("emitted-tus");
  Cfg.Flags = {"-O0", "-ffp-contract=off", "-fopenmp-simd", "-fPIC",
               "-shared"};
  JitCompiler Jit(Cfg);
  YS_REQUIRE_COMPILER(Jit);

  struct Case {
    StencilSpec Spec;
    const char *Symbol;
  };
  const Case Cases[] = {
      {StencilSpec::heat3d(), "kernel_heat3d"},
      {StencilSpec::star3d(2), "kernel_star3d_r2"},
  };
  SourceEmitter::Options Opts;
  Opts.EmitExternC = true; // dlsym needs unmangled names.

  unsigned Compiled = 0, WavefrontTUs = 0;
  for (const Case &TC : Cases) {
    VariantChecker Checker(TC.Spec, {8, 8, 8});
    std::set<std::string> Seen; // Many configs emit the same TU text.
    for (const KernelConfig &C : Checker.enumerateConfigs()) {
      std::string Src =
          SourceEmitter::emitTranslationUnit(TC.Spec, C, Opts);
      if (!Seen.insert(Src).second)
        continue;
      SCOPED_TRACE(std::string(TC.Symbol) + " " + C.str());
      Expected<JitKernel> K = Jit.compile(Src, TC.Symbol);
      ASSERT_TRUE(static_cast<bool>(K)) << K.takeError().message();
      EXPECT_TRUE(static_cast<bool>(*K));
      ++Compiled;
      if (C.WavefrontDepth > 1 && C.VectorFold.isScalar())
        ++WavefrontTUs;
    }
  }
  // The matrix must include wavefront TUs (the ones that used to emit a
  // call to a slab kernel that was never defined).
  EXPECT_GT(WavefrontTUs, 0u);
  EXPECT_GT(Compiled, 4u);
  EXPECT_EQ(Jit.stats().Failures, 0u);
}
