//===- tests/SupportTest.cpp - support library tests ----------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AlignedBuffer.h"
#include "support/Error.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <set>

using namespace ys;

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtils, FormatBasic) {
  EXPECT_EQ(format("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(StringUtils, FormatLongStrings) {
  std::string Long(500, 'a');
  EXPECT_EQ(format("%s!", Long.c_str()), Long + "!");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtils, HumanBytes) {
  EXPECT_EQ(humanBytes(512), "512 B");
  EXPECT_EQ(humanBytes(32ull * 1024), "32.0 KiB");
  EXPECT_EQ(humanBytes(27ull * 1024 * 1024 + 512 * 1024), "27.5 MiB");
  EXPECT_EQ(humanBytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(StringUtils, TrimmedDouble) {
  EXPECT_EQ(trimmedDouble(1.5, 3), "1.5");
  EXPECT_EQ(trimmedDouble(2.0, 3), "2");
  EXPECT_EQ(trimmedDouble(0.125, 6), "0.125");
  EXPECT_EQ(trimmedDouble(-0.5, 2), "-0.5");
}

TEST(StringUtils, RoundTripDouble) {
  // Shortest representation for exactly representable values...
  EXPECT_EQ(roundTripDouble(0.5), "0.5");
  EXPECT_EQ(roundTripDouble(2.0), "2");
  EXPECT_EQ(roundTripDouble(-0.25), "-0.25");
  // ...and exact round-trip for everything else, digits as needed.
  const double Cases[] = {1.0 / 3.0,  1e-12,     0.1, -2.0 / 7.0,
                          1.0 + 1e-15, 6.283185307179586};
  for (double V : Cases) {
    SCOPED_TRACE(V);
    std::string S = roundTripDouble(V);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
  }
}

TEST(StringUtils, FingerprintRaw64) {
  // 16 hex digits, deterministic, and content-sensitive.  The empty-input
  // value is pinned: it is the offset basis every existing on-disk
  // tuning-cache and JIT-object key was derived from, so changing the
  // hash constants would silently orphan all cached state.  (The basis is
  // a historical variant, not the canonical FNV-1a one — kept for
  // exactly that compatibility reason.)
  EXPECT_EQ(fingerprintRaw64("").size(), 16u);
  EXPECT_EQ(fingerprintRaw64("abc"), fingerprintRaw64("abc"));
  EXPECT_NE(fingerprintRaw64("abc"), fingerprintRaw64("abd"));
  EXPECT_EQ(fingerprintRaw64(""), "14650fb0739d0383");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("heat3d-r1", "heat"));
  EXPECT_FALSE(startsWith("heat", "heat3d"));
  EXPECT_TRUE(startsWith("", ""));
}

TEST(StringUtils, Split) {
  std::vector<std::string> Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("abc", ',').size(), 1u);
}

TEST(StringUtils, ToLower) {
  EXPECT_EQ(toLower("CascadeLakeSP"), "cascadelakesp");
  EXPECT_EQ(toLower("already"), "already");
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(Table, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(Out.find("| long-name | 22    |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"x"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| x | "), std::string::npos);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(Table, SeparatorRow) {
  Table T({"h"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  std::string Out = T.render();
  // Header rule + one separator = at least two rule lines.
  size_t First = Out.find("|--");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("|--", First + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDiffer) {
  Rng A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, DoubleInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble(-3.0, 5.0);
    EXPECT_GE(V, -3.0);
    EXPECT_LT(V, 5.0);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
  for (uint64_t V : Seen)
    EXPECT_LT(V, 8u);
}

//===----------------------------------------------------------------------===//
// AlignedBuffer
//===----------------------------------------------------------------------===//

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<double> Buf(100);
  EXPECT_EQ(Buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Buf.data()) % 64, 0u);
}

TEST(AlignedBuffer, ZeroFills) {
  AlignedBuffer<double> Buf(16);
  Buf.zero();
  for (size_t I = 0; I < Buf.size(); ++I)
    EXPECT_EQ(Buf[I], 0.0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> A(8);
  A[0] = 3.5;
  double *Ptr = A.data();
  AlignedBuffer<double> B = std::move(A);
  EXPECT_EQ(B.data(), Ptr);
  EXPECT_EQ(B[0], 3.5);
  EXPECT_TRUE(A.empty());
}

TEST(AlignedBuffer, OddSizeRoundsAllocation) {
  // 7 doubles = 56 bytes, not a multiple of 64; must not crash.
  AlignedBuffer<double> Buf(7);
  Buf.zero();
  Buf[6] = 1.0;
  EXPECT_EQ(Buf[6], 1.0);
}

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(Error, SuccessAndFailure) {
  Error S = Error::success();
  EXPECT_FALSE(static_cast<bool>(S));
  Error F = Error::failure("boom");
  EXPECT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F.message(), "boom");
}

TEST(Expected, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
}

TEST(Expected, HoldsError) {
  Expected<int> E(Error::failure("nope"));
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.takeError().message(), "nope");
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, SingleThreadInline) {
  ThreadPool Pool(1);
  std::vector<int> Hits(10, 0);
  Pool.parallelFor(0, 10, [&](long I) { Hits[I]++; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(0, 1000, [&](long I) { Hits[I]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, ChunkedRangesPartition) {
  ThreadPool Pool(3);
  std::mutex M;
  std::vector<std::pair<long, long>> Ranges;
  Pool.parallelForChunked(0, 100, [&](unsigned, long B, long E) {
    std::lock_guard<std::mutex> Lock(M);
    Ranges.push_back({B, E});
  });
  long Total = 0;
  for (auto &[B, E] : Ranges) {
    EXPECT_LT(B, E);
    Total += E - B;
  }
  EXPECT_EQ(Total, 100);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(5, 5, [&](long) { Count++; });
  EXPECT_EQ(Count.load(), 0);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool Pool(4);
  for (int Round = 0; Round < 20; ++Round) {
    std::atomic<long> Sum{0};
    Pool.parallelFor(0, 100, [&](long I) { Sum += I; });
    EXPECT_EQ(Sum.load(), 4950);
  }
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Hits(3);
  Pool.parallelFor(0, 3, [&](long I) { Hits[I]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

TEST(Timer, NonNegativeAndMonotonic) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
}

TEST(Timer, MeasureSecondsStats) {
  TimingStats S = measureSeconds([] {}, 5);
  EXPECT_EQ(S.Repeats, 5u);
  EXPECT_LE(S.Min, S.Median);
  EXPECT_LE(S.Median, S.Max);
  EXPECT_GE(S.Mean, 0.0);
}

TEST(StringUtils, ParseLongAcceptsIntegers) {
  EXPECT_EQ(*parseLong("42"), 42);
  EXPECT_EQ(*parseLong("-7"), -7);
  EXPECT_EQ(*parseLong("0"), 0);
  EXPECT_EQ(*parseLong("+5"), 5);
}

TEST(StringUtils, ParseLongRejectsGarbage) {
  EXPECT_FALSE(static_cast<bool>(parseLong("")));
  EXPECT_FALSE(static_cast<bool>(parseLong(" 5")));
  EXPECT_FALSE(static_cast<bool>(parseLong("5 ")));
  EXPECT_FALSE(static_cast<bool>(parseLong("12junk")));
  EXPECT_FALSE(static_cast<bool>(parseLong("abc")));
  EXPECT_FALSE(static_cast<bool>(parseLong("2.5")));
  EXPECT_FALSE(static_cast<bool>(parseLong("-")));
  EXPECT_FALSE(static_cast<bool>(parseLong("999999999999999999999999")));
}

TEST(StringUtils, ParseUnsignedRejectsNegatives) {
  EXPECT_EQ(*parseUnsigned("18446744073709551615"), ~0ull);
  EXPECT_EQ(*parseUnsigned("0"), 0ull);
  // strtoull would silently wrap these; the checked parser must not.
  EXPECT_FALSE(static_cast<bool>(parseUnsigned("-1")));
  EXPECT_FALSE(static_cast<bool>(parseUnsigned("-0")));
  EXPECT_FALSE(static_cast<bool>(parseUnsigned("18446744073709551616")));
  EXPECT_FALSE(static_cast<bool>(parseUnsigned("1x")));
}

TEST(StringUtils, ParseDoubleChecksRangeAndTail) {
  EXPECT_DOUBLE_EQ(*parseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parseDouble("-2e-3"), -2e-3);
  EXPECT_FALSE(static_cast<bool>(parseDouble("")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("0.1.2")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("1e999")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("nan")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("inf")));
}
