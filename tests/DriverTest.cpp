//===- tests/DriverTest.cpp - CLI driver tests -------------------------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace ys;

namespace {

std::string run(std::vector<std::string> Args, int ExpectCode = 0) {
  std::string Out;
  int Code = runDriver(Args, Out);
  EXPECT_EQ(Code, ExpectCode) << Out;
  return Out;
}

} // namespace

TEST(DriverHelpers, ParseDimsCube) {
  auto D = parseDims("128");
  ASSERT_TRUE(static_cast<bool>(D));
  EXPECT_EQ(D->Nx, 128);
  EXPECT_EQ(D->Ny, 128);
  EXPECT_EQ(D->Nz, 128);
}

TEST(DriverHelpers, ParseDimsExplicit) {
  auto D = parseDims("512x256x128");
  ASSERT_TRUE(static_cast<bool>(D));
  EXPECT_EQ(D->Nx, 512);
  EXPECT_EQ(D->Ny, 256);
  EXPECT_EQ(D->Nz, 128);
}

TEST(DriverHelpers, ParseDimsRejectsGarbage) {
  EXPECT_FALSE(static_cast<bool>(parseDims("12ab")));
  EXPECT_FALSE(static_cast<bool>(parseDims("1x2")));
  EXPECT_FALSE(static_cast<bool>(parseDims("0")));
  EXPECT_FALSE(static_cast<bool>(parseDims("-4")));
}

TEST(DriverHelpers, ParseFold) {
  auto F = parseFold("4x2x1");
  ASSERT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F->X, 4);
  EXPECT_EQ(F->Y, 2);
  EXPECT_EQ(F->Z, 1);
  EXPECT_FALSE(static_cast<bool>(parseFold("4x2")));
  EXPECT_FALSE(static_cast<bool>(parseFold("0x2x1")));
}

TEST(DriverHelpers, ResolveBuiltinStencils) {
  auto Heat = resolveStencil("heat3d");
  ASSERT_TRUE(static_cast<bool>(Heat));
  EXPECT_EQ(Heat->numPoints(), 7u);
  auto Star = resolveStencil("star3d:3");
  ASSERT_TRUE(static_cast<bool>(Star));
  EXPECT_EQ(Star->radius(), 3);
  auto Box = resolveStencil("box3d:2");
  ASSERT_TRUE(static_cast<bool>(Box));
  EXPECT_EQ(Box->numPoints(), 125u);
  EXPECT_FALSE(static_cast<bool>(resolveStencil("star3d:99")));
  EXPECT_FALSE(static_cast<bool>(resolveStencil("nonsense")));
}

TEST(DriverHelpers, ResolveStencilFromDslFile) {
  std::string Path = testing::TempDir() + "/drv_test.stencil";
  {
    std::ofstream F(Path);
    F << "stencil mine { grid u, v; v[x,y,z] = u[x+1,y,z] - u[x,y,z]; }";
  }
  auto Spec = resolveStencil(Path);
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.takeError().message();
  EXPECT_EQ(Spec->numPoints(), 2u);
  std::remove(Path.c_str());
}

TEST(Driver, HelpAndUsage) {
  std::string Out = run({"help"});
  EXPECT_NE(Out.find("usage: yasksite"), std::string::npos);
  std::string Empty;
  EXPECT_EQ(runDriver({}, Empty), 1);
}

TEST(Driver, MachinesListsBuiltins) {
  std::string Out = run({"machines"});
  EXPECT_NE(Out.find("CascadeLakeSP"), std::string::npos);
  EXPECT_NE(Out.find("Rome"), std::string::npos);
}

TEST(Driver, StencilsListsBuiltins) {
  std::string Out = run({"stencils"});
  EXPECT_NE(Out.find("heat3d"), std::string::npos);
  EXPECT_NE(Out.find("star3d:R"), std::string::npos);
}

TEST(Driver, PredictOutputsECM) {
  std::string Out =
      run({"predict", "heat3d", "--machine", "rome", "--dims", "256"});
  EXPECT_NE(Out.find("machine  : Rome"), std::string::npos);
  EXPECT_NE(Out.find("cy/CL"), std::string::npos);
  EXPECT_NE(Out.find("MLUP/s"), std::string::npos);
}

TEST(Driver, PredictHonorsOptions) {
  std::string Out = run({"predict", "star3d:2", "--by", "16", "--fold",
                         "8x1x1", "--nt", "--cores", "4"});
  EXPECT_NE(Out.find("block=Nx16xN"), std::string::npos);
  EXPECT_NE(Out.find("fold=8x1x1"), std::string::npos);
  EXPECT_NE(Out.find("at 4 cores"), std::string::npos);
}

TEST(Driver, TuneReportsChoices) {
  std::string Out = run({"tune", "star3d:4", "--dims", "512"});
  EXPECT_NE(Out.find("analytic LC"), std::string::npos);
  EXPECT_NE(Out.find("model argmax"), std::string::npos);
  EXPECT_NE(Out.find("zero kernel runs"), std::string::npos);
}

TEST(Driver, EmitProducesSource) {
  std::string Out = run({"emit", "heat3d", "--by", "8"});
  EXPECT_NE(Out.find("void kernel_heat3d("), std::string::npos);
  EXPECT_NE(Out.find("#define IDX3"), std::string::npos);
}

TEST(Driver, TraceReportsBoundaries) {
  std::string Out = run({"trace", "heat3d", "--dims", "48x48x24",
                         "--sweeps", "1"});
  EXPECT_NE(Out.find("memory"), std::string::npos);
  EXPECT_NE(Out.find("bytes/LUP"), std::string::npos);
}

TEST(Driver, PredictSimModeFlagControlsTheCrossCheck) {
  // Default is "auto": the predict output carries the simulator
  // cross-check line (a cheap exact replay for this small grid).
  std::string Auto = run({"predict", "heat3d", "--dims", "48x48x32"});
  EXPECT_NE(Auto.find("sim check:"), std::string::npos);
  std::string Off =
      run({"predict", "heat3d", "--dims", "48x48x32", "--sim-mode", "off"});
  EXPECT_EQ(Off.find("sim check:"), std::string::npos) << Off;
  std::string Out;
  EXPECT_EQ(runDriver({"predict", "heat3d", "--sim-mode", "bogus"}, Out), 1);
  EXPECT_NE(Out.find("unknown --sim-mode"), std::string::npos);
}

TEST(Driver, TraceSampledReportsReplayShareAndFallsBackWhenResident) {
  // A streaming grid samples: the trace reports how little of the grid
  // was actually replayed.
  std::string Sampled = run({"trace", "heat3d", "--dims", "256x256x128",
                             "--sweeps", "2", "--sim-mode", "sampled"});
  EXPECT_NE(Sampled.find("sampled replay:"), std::string::npos) << Sampled;
  EXPECT_NE(Sampled.find("bytes/LUP"), std::string::npos);
  // A cache-resident grid falls back to the exact replay with a reason.
  std::string Resident = run({"trace", "heat3d", "--dims", "32",
                              "--sim-mode", "sampled"});
  EXPECT_NE(Resident.find("exact fallback:"), std::string::npos) << Resident;
}

TEST(Driver, ValidateHonorsSimMode) {
  std::string Out = run({"validate", "heat3d", "--dims", "256x256x128",
                         "--sim-mode", "sampled"});
  EXPECT_NE(Out.find("(sampled simulation:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("sim steady-state"), std::string::npos);
}

TEST(Driver, ParseSummarizesDsl) {
  std::string Path = testing::TempDir() + "/drv_parse.stencil";
  {
    std::ofstream F(Path);
    F << "stencil two { grid u, k1, k2;\n"
         "  k1[x,y,z] = u[x+1,y,z] - u[x-1,y,z];\n"
         "  k2[x,y,z] = k1[x,y,z] + u[x,y,z]; }";
  }
  std::string Out = run({"parse", Path});
  EXPECT_NE(Out.find("stencil two"), std::string::npos);
  EXPECT_NE(Out.find("2 equations"), std::string::npos);
  EXPECT_NE(Out.find("fusion groups"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Driver, ErrorsOnUnknownCommand) {
  std::string Out;
  EXPECT_EQ(runDriver({"frobnicate"}, Out), 1);
  EXPECT_NE(Out.find("unknown command"), std::string::npos);
}

TEST(Driver, ErrorsOnUnknownMachine) {
  std::string Out;
  EXPECT_EQ(runDriver({"predict", "heat3d", "--machine", "vax"}, Out), 1);
  EXPECT_NE(Out.find("unknown machine"), std::string::npos);
}

TEST(Driver, ErrorsOnBadOption) {
  std::string Out;
  EXPECT_EQ(runDriver({"predict", "heat3d", "--bogus"}, Out), 1);
  EXPECT_NE(Out.find("unknown or incomplete option"), std::string::npos);
}

TEST(Driver, ErrorsOnMissingStencil) {
  std::string Out;
  EXPECT_EQ(runDriver({"predict"}, Out), 1);
  EXPECT_NE(Out.find("missing stencil"), std::string::npos);
}

TEST(Driver, RunExecutesBuiltinStencil) {
  std::string Out = run({"run", "heat3d", "--dims", "24", "--sweeps", "2"});
  EXPECT_NE(Out.find("sweep 0: unew"), std::string::npos);
  EXPECT_NE(Out.find("ran 2 steps"), std::string::npos);
  EXPECT_NE(Out.find("checksum"), std::string::npos);
  EXPECT_NE(Out.find("predicted on CascadeLakeSP"), std::string::npos);
}

TEST(Driver, RunExecutesMultiEquationDsl) {
  std::string Path = testing::TempDir() + "/drv_run.stencil";
  {
    std::ofstream F(Path);
    F << "stencil two { grid u, k, v;\n"
         "  k[x,y,z] = u[x+1,y,z] - u[x-1,y,z];\n"
         "  v[x,y,z] = u[x,y,z] + 0.25 * k[x,y,z]; }";
  }
  std::string Out = run({"run", Path, "--dims", "16", "--machine", "rome"});
  EXPECT_NE(Out.find("fused k, v"), std::string::npos);
  EXPECT_NE(Out.find("predicted on Rome"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Driver, RunReportsDslErrors) {
  std::string Path = testing::TempDir() + "/drv_bad.stencil";
  {
    std::ofstream F(Path);
    F << "stencil bad { grid u; u[x,y,z] = u[x+1,y,z]; }";
  }
  std::string Out;
  EXPECT_EQ(runDriver({"run", Path}, Out), 1);
  EXPECT_NE(Out.find("in-place"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Driver, ValidateComparesModelAndSimulator) {
  std::string Out = run({"validate", "heat3d", "--dims", "48x48x24",
                         "--sweeps", "4"});
  EXPECT_NE(Out.find("predicted B/LUP"), std::string::npos);
  EXPECT_NE(Out.find("sim steady-state"), std::string::npos);
  EXPECT_NE(Out.find("verdict:"), std::string::npos);
}

TEST(Driver, VerifyChecksVariantsAgainstOracle) {
  std::string Out = run({"verify", "heat3d", "--dims", "10x8x6",
                         "--seeds", "1,2", "--patterns", "random,impulse"});
  EXPECT_NE(Out.find("all match the reference interpreter"),
            std::string::npos);
  EXPECT_NE(Out.find("2 pattern(s) x 2 seed(s)"), std::string::npos);
}

TEST(Driver, VerifyRejectsBadArguments) {
  std::string Out;
  EXPECT_NE(runDriver({"verify", "heat3d", "--patterns", "nope"}, Out), 0);
  EXPECT_NE(Out.find("nope"), std::string::npos);
  Out.clear();
  EXPECT_NE(runDriver({"verify", "heat3d", "--seeds", "1,x"}, Out), 0);
  Out.clear();
  // An invalid explicit config is rejected with the validate() text.
  EXPECT_NE(runDriver({"verify", "heat3d", "--wf", "0"}, Out), 0);
  EXPECT_NE(Out.find("wavefront"), std::string::npos);
}

TEST(Driver, ScheduleFlagSelectsTemporalSchedules) {
  // Valid schedules flow through to the config (visible in the echoed
  // config string) and run end to end on the temporal paths.
  std::string Out = run({"predict", "heat3d", "--dims", "256", "--bz", "8",
                         "--wf", "4", "--schedule", "diamond"});
  EXPECT_NE(Out.find("sched=diamond"), std::string::npos) << Out;

  Out = run({"verify", "heat3d", "--dims", "10x8x6", "--wf", "3",
             "--schedule", "deep-temporal", "--seeds", "1"});
  EXPECT_NE(Out.find("all match the reference interpreter"),
            std::string::npos)
      << Out;

  Out = run({"trace", "heat3d", "--dims", "24x20x16", "--bz", "4", "--wf",
             "2", "--schedule", "diamond"});
  EXPECT_NE(Out.find("bytes/LUP"), std::string::npos) << Out;
}

TEST(Driver, ScheduleFlagRejectsBadCombinations) {
  std::string Out;
  EXPECT_NE(runDriver({"predict", "heat3d", "--schedule", "zigzag"}, Out),
            0);
  EXPECT_NE(Out.find("unknown schedule"), std::string::npos) << Out;
  Out.clear();
  // Sweep cannot fuse timesteps: validate() rejects the combination.
  EXPECT_NE(runDriver({"verify", "heat3d", "--schedule", "sweep", "--wf",
                       "2"},
                      Out),
            0);
  EXPECT_NE(Out.find("sweep"), std::string::npos) << Out;
}

TEST(Driver, PredictAsmFlagEmitsPseudoAssembly) {
  std::string Out = run({"predict", "heat3d", "--fold", "8x1x1", "--asm"});
  EXPECT_NE(Out.find("vfmadd"), std::string::npos);
  EXPECT_NE(Out.find("T_nOL"), std::string::npos);
}

TEST(Driver, RejectsGarbageNumericOptionValues) {
  // Every numeric flag fed garbage must produce a per-flag diagnostic
  // instead of silently running with 0 (the old atoi behavior).
  struct Case {
    const char *Flag;
    const char *Value;
  };
  const Case Cases[] = {
      {"--bx", "12junk"},  {"--by", "abc"},     {"--bz", ""},
      {"--wf", "abc"},     {"--cores", "xyz"},  {"--sweeps", "2.5"},
      {"--n", "1e3"},      {"--steps", "ten"},  {"--repeats", "-"},
      {"--cores", "99999999999999999999"},
  };
  for (const Case &C : Cases) {
    std::string Out;
    EXPECT_NE(runDriver({"tune", "heat3d", C.Flag, C.Value}, Out), 0)
        << C.Flag << "=" << C.Value;
    EXPECT_NE(Out.find(format("invalid %s value", C.Flag)),
              std::string::npos)
        << Out;
  }
  std::string Out;
  EXPECT_NE(runDriver({"verify", "heat3d", "--tol-ulps", "-1"}, Out), 0);
  EXPECT_NE(Out.find("invalid --tol-ulps value"), std::string::npos);
  Out.clear();
  EXPECT_NE(runDriver({"verify", "heat3d", "--tol-abs", "0.1.2"}, Out), 0);
  EXPECT_NE(Out.find("invalid --tol-abs value"), std::string::npos);
}

TEST(Driver, EqualsFormOptionsAccepted) {
  // --flag=value is equivalent to --flag value.
  std::string Out = run({"predict", "heat3d", "--dims=64", "--cores=2"});
  EXPECT_NE(Out.find("64x64x64"), std::string::npos);
  EXPECT_NE(Out.find("at 2 cores"), std::string::npos);
  Out.clear();
  EXPECT_NE(runDriver({"tune", "heat3d", "--wf=abc"}, Out), 0);
  EXPECT_NE(Out.find("invalid --wf value"), std::string::npos);
  // A flag in the stencil slot is a missing stencil, and its value is
  // still checked first.
  Out.clear();
  EXPECT_NE(runDriver({"tune", "--wf=abc"}, Out), 0);
  EXPECT_NE(Out.find("invalid --wf value"), std::string::npos);
  Out.clear();
  EXPECT_NE(runDriver({"tune", "--wf=4"}, Out), 0);
  EXPECT_NE(Out.find("missing stencil argument"), std::string::npos);
}

TEST(Driver, StencilListingMatchesResolver) {
  // Every advertised builtin must resolve (R standing for a radius).
  std::string Out = run({"stencils"});
  for (std::string Name : builtinStencilNames()) {
    EXPECT_NE(Out.find(Name), std::string::npos) << Name;
    size_t Colon = Name.find(':');
    if (Colon != std::string::npos) {
      EXPECT_EQ(Name.substr(Colon), ":R")
          << "parameterized builtins advertise a single radius: " << Name;
      Name = Name.substr(0, Colon) + ":2";
    }
    auto SpecOr = resolveStencil(Name);
    EXPECT_TRUE(static_cast<bool>(SpecOr))
        << Name << ": " << SpecOr.takeError().message();
  }
}

TEST(Driver, RejectsGarbageStencilRadius) {
  std::string Out;
  EXPECT_NE(runDriver({"predict", "star3d:abc"}, Out), 0);
  EXPECT_NE(Out.find("invalid star3d radius 'abc'"), std::string::npos);
  Out.clear();
  EXPECT_NE(runDriver({"predict", "longrange:2x"}, Out), 0);
  EXPECT_NE(Out.find("invalid longrange radius"), std::string::npos);
}
