//===- tests/VerifyTest.cpp - differential verification suite ----------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The `verify`-labeled ctest suite: sweeps the curated KernelConfig
/// variant space (folds, cache blocks incl. degenerate/non-dividing/
/// oversized, sweep vs. wavefront, thread counts 1/2/max) for star and
/// box stencils at radii 1-4 and checks every variant against the
/// golden ReferenceInterpreter on the seeded input patterns.  Also the
/// unit tests of the harness itself: ULP distance, pattern determinism
/// and fold-independence, divergence localization, and the
/// KernelConfig block-size validation/clamping regressions.
///
/// This binary is what the ASan+UBSan preset (tools/run_sanitizer_checks.sh)
/// runs, so every variant path is also exercised under sanitizers.
///
//===----------------------------------------------------------------------===//

#include "codegen/KernelExecutor.h"
#include "codegen/KernelPlan.h"
#include "support/ThreadPool.h"
#include "verify/GridPatterns.h"
#include "verify/ReferenceInterpreter.h"
#include "verify/VariantChecker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

using namespace ys;

//===----------------------------------------------------------------------===//
// ULP distance and tolerance
//===----------------------------------------------------------------------===//

TEST(UlpDistance, BasicProperties) {
  EXPECT_EQ(ulpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(ulpDistance(0.0, -0.0), 0u); // Signed zeros compare equal.
  EXPECT_EQ(ulpDistance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulpDistance(std::nextafter(1.0, 2.0), 1.0), 1u); // Symmetric.
  double X = 1.0;
  for (int I = 0; I < 5; ++I)
    X = std::nextafter(X, 2.0);
  EXPECT_EQ(ulpDistance(1.0, X), 5u);
  // Opposite signs and NaNs are maximally distant.
  EXPECT_EQ(ulpDistance(1.0, -1.0), UINT64_MAX);
  EXPECT_EQ(ulpDistance(std::numeric_limits<double>::quiet_NaN(), 1.0),
            UINT64_MAX);
}

TEST(UlpDistance, ToleranceSemantics) {
  UlpTolerance Exact;
  EXPECT_TRUE(withinTolerance(2.5, 2.5, Exact));
  EXPECT_FALSE(withinTolerance(2.5, std::nextafter(2.5, 3.0), Exact));

  UlpTolerance Ulps;
  Ulps.MaxUlps = 2;
  EXPECT_TRUE(withinTolerance(2.5, std::nextafter(2.5, 3.0), Ulps));
  EXPECT_FALSE(withinTolerance(2.5, 2.6, Ulps));

  UlpTolerance Abs;
  Abs.AbsTol = 0.2;
  EXPECT_TRUE(withinTolerance(2.5, 2.6, Abs));
  EXPECT_FALSE(withinTolerance(2.5, 2.8, Abs));
  // NaN never passes a finite tolerance.
  EXPECT_FALSE(withinTolerance(std::numeric_limits<double>::quiet_NaN(),
                               1.0, Abs));
}

//===----------------------------------------------------------------------===//
// Seeded grid patterns
//===----------------------------------------------------------------------===//

TEST(GridPatterns, NamesRoundTrip) {
  for (GridPattern P : allGridPatterns()) {
    auto Parsed = patternByName(patternName(P));
    ASSERT_TRUE(static_cast<bool>(Parsed)) << patternName(P);
    EXPECT_EQ(*Parsed, P);
  }
  EXPECT_FALSE(static_cast<bool>(patternByName("no-such-pattern")));
}

TEST(GridPatterns, DeterministicAndSeedSensitive) {
  GridDims Dims{9, 7, 5};
  for (GridPattern P : allGridPatterns()) {
    SCOPED_TRACE(patternName(P));
    Grid A(Dims, 2), B(Dims, 2), C(Dims, 2);
    fillPattern(A, P, 7);
    fillPattern(B, P, 7);
    fillPattern(C, P, 8);
    EXPECT_EQ(Grid::maxAbsDiffInterior(A, B), 0.0);
    // A different seed must change the contents (the impulse pattern
    // keeps its center spike, so compare the whole grid via sums too).
    bool Differs = Grid::maxAbsDiffInterior(A, C) > 0.0 ||
                   A.interiorSum() != C.interiorSum();
    if (P != GridPattern::Smooth) // Smooth phases could collide; still...
      EXPECT_TRUE(Differs);
  }
}

TEST(GridPatterns, FoldIndependentLogicalContents) {
  // The same (pattern, seed) must produce identical logical values in
  // every storage fold — the property variant comparison rests on.
  GridDims Dims{10, 6, 5};
  const Fold Folds[] = {{4, 1, 1}, {2, 2, 1}, {1, 2, 2}};
  for (GridPattern P : allGridPatterns()) {
    SCOPED_TRACE(patternName(P));
    Grid Scalar(Dims, 2);
    fillPattern(Scalar, P, 42);
    for (const Fold &F : Folds) {
      Grid Folded(Dims, 2, F);
      fillPattern(Folded, P, 42);
      EXPECT_EQ(Grid::maxAbsDiffInterior(Scalar, Folded), 0.0)
          << "fold " << F.str();
      // Halo cells must agree too (boundary values feed every sweep).
      for (long Z = -2; Z < Dims.Nz + 2; ++Z)
        for (long Y = -2; Y < Dims.Ny + 2; ++Y)
          for (long X = -2; X < Dims.Nx + 2; ++X)
            ASSERT_EQ(Scalar.at(X, Y, Z), Folded.at(X, Y, Z))
                << "fold " << F.str() << " halo cell (" << X << "," << Y
                << "," << Z << ")";
    }
  }
}

TEST(GridPatterns, BoundaryStressHasLargeHaloSmallInterior) {
  Grid G({6, 6, 6}, 1);
  fillPattern(G, GridPattern::BoundaryStress, 3);
  for (long Z = 0; Z < 6; ++Z)
    for (long Y = 0; Y < 6; ++Y)
      for (long X = 0; X < 6; ++X)
        ASSERT_LT(std::fabs(G.at(X, Y, Z)), 0.2)
            << "(" << X << "," << Y << "," << Z << ")";
  EXPECT_GE(std::fabs(G.at(-1, 0, 0)), 1024.0);
  EXPECT_GE(std::fabs(G.at(6, 5, 5)), 1024.0);
}

//===----------------------------------------------------------------------===//
// Reference interpreter
//===----------------------------------------------------------------------===//

TEST(ReferenceInterpreter, MatchesIndependentTripleLoop) {
  // Two independently written oracles (expression-tree walk here,
  // KernelExecutor::runReference's flat triple loop) must agree exactly.
  for (int R = 1; R <= 3; ++R) {
    SCOPED_TRACE(R);
    StencilSpec S = StencilSpec::star3d(R);
    GridDims Dims{12, 9, 8};
    Grid In(Dims, R);
    fillPattern(In, GridPattern::Random, 11);
    Grid A(Dims, R), B(Dims, R);
    KernelExecutor::runReference(S, {&In}, A);
    ReferenceInterpreter(S).runSweep({&In}, B);
    EXPECT_EQ(Grid::maxAbsDiffInterior(A, B), 0.0);
  }
}

TEST(ReferenceInterpreter, ExprTreeShape) {
  StencilSpec S = StencilSpec::heat3d();
  ReferenceInterpreter Interp(S);
  // Sum of coeff*load per point: N muls, N-1 adds.
  EXPECT_EQ(Interp.expression().flops(), 2 * S.numPoints() - 1);
}

TEST(ReferenceInterpreter, TimeSteppingDirichletHalo) {
  // A pure-halo input must propagate inward exactly one radius per step.
  StencilSpec S("shift", {{-1, 0, 0, 1.0, 0}});
  GridDims Dims{6, 1, 1};
  Grid U(Dims, 1);
  U.fillHalo(0.0);
  U.at(-1, 0, 0) = 5.0; // Left boundary value.
  ReferenceInterpreter Interp(S);
  Interp.runTimeSteps(U, 3);
  EXPECT_EQ(U.at(0, 0, 0), 5.0);
  EXPECT_EQ(U.at(1, 0, 0), 5.0);
  EXPECT_EQ(U.at(2, 0, 0), 5.0);
  EXPECT_EQ(U.at(3, 0, 0), 0.0);
}

//===----------------------------------------------------------------------===//
// Divergence localization
//===----------------------------------------------------------------------===//

TEST(FindFirstDivergence, ReportsExactCellAndValues) {
  GridDims Dims{8, 6, 4};
  Grid A(Dims, 0), B(Dims, 0);
  fillPattern(A, GridPattern::Random, 5);
  B.copyInteriorFrom(A);
  CellDivergence Div;
  UlpTolerance Exact;
  EXPECT_FALSE(findFirstDivergence(A, B, Exact, Div));

  B.at(3, 2, 1) += 1e-9; // Tamper with one cell.
  ASSERT_TRUE(findFirstDivergence(A, B, Exact, Div));
  EXPECT_EQ(Div.X, 3);
  EXPECT_EQ(Div.Y, 2);
  EXPECT_EQ(Div.Z, 1);
  EXPECT_EQ(Div.Want, A.at(3, 2, 1));
  EXPECT_EQ(Div.Got, B.at(3, 2, 1));
  EXPECT_GT(Div.Ulps, 0u);

  // A loose absolute tolerance accepts the same tampering.
  UlpTolerance Loose;
  Loose.AbsTol = 1e-6;
  EXPECT_FALSE(findFirstDivergence(A, B, Loose, Div));
}

TEST(VariantChecker, DetectsAnInjectedBug) {
  // Self-test of the harness: a config list containing a "variant" the
  // executor runs correctly plus a tampered comparison must fail.  Here
  // we simulate a miscompiled variant by checking against a *different*
  // stencil's oracle — every pattern/seed must diverge.
  StencilSpec Wrong = StencilSpec::star3d(1, -5.9, 1.0);
  GridDims Dims{8, 7, 6};
  CheckOptions CO;
  CO.Steps = 1;
  CO.Patterns = {GridPattern::Random};
  VariantChecker Checker(Wrong, Dims, CO);
  // Run the checker normally: it must pass against its own oracle...
  CheckReport Good = Checker.check({KernelConfig()});
  EXPECT_TRUE(Good.ok());
  // ...and the report of a broken comparison carries the failing cell.
  Grid Ref(Dims, 1), Got(Dims, 1);
  fillPattern(Ref, GridPattern::Random, 1);
  Got.copyInteriorFrom(Ref);
  Got.at(0, 0, 0) = Ref.at(0, 0, 0) + 0.5;
  CellDivergence Div;
  ASSERT_TRUE(findFirstDivergence(Ref, Got, UlpTolerance(), Div));
  EXPECT_EQ(Div.X, 0);
  EXPECT_EQ(Div.Ulps, ulpDistance(Div.Got, Div.Want));
}

//===----------------------------------------------------------------------===//
// KernelConfig validation / block clamping (regression)
//===----------------------------------------------------------------------===//

TEST(KernelConfigValidate, RejectsMalformedConfigs) {
  KernelConfig C;
  EXPECT_EQ(C.validate(), "");

  KernelConfig Neg;
  Neg.Block.Y = -3;
  EXPECT_NE(Neg.validate().find("negative"), std::string::npos);

  KernelConfig BadWf;
  BadWf.WavefrontDepth = 0;
  EXPECT_NE(BadWf.validate().find("wavefront"), std::string::npos);

  KernelConfig NoThreads;
  NoThreads.Threads = 0;
  EXPECT_NE(NoThreads.validate().find("thread"), std::string::npos);

  KernelConfig BadFold;
  BadFold.VectorFold = {0, 1, 1};
  EXPECT_NE(BadFold.validate().find("fold"), std::string::npos);
}

TEST(KernelConfigValidate, OversizedAndZeroBlocksClampToDomain) {
  GridDims Dims{10, 7, 5};
  // Oversized extents clamp; zero expands to the full extent.  Either
  // way the executor must iterate every cell exactly once.
  KernelConfig Over;
  Over.Block = {100, 700, 50};
  EXPECT_EQ(Over.validate(), "");
  BlockSize R = Over.Block.resolved(Dims);
  EXPECT_EQ(R.X, 10);
  EXPECT_EQ(R.Y, 7);
  EXPECT_EQ(R.Z, 5);
  BlockSize Z = BlockSize().resolved(Dims);
  EXPECT_EQ(Z.X, 10);
  EXPECT_EQ(Z.Y, 7);
  EXPECT_EQ(Z.Z, 5);

  StencilSpec S = StencilSpec::heat3d();
  Grid In(Dims, 1);
  fillPattern(In, GridPattern::Random, 9);
  Grid Ref(Dims, 1), Out(Dims, 1);
  KernelExecutor::runReference(S, {&In}, Ref);
  KernelExecutor Exec(S, Over);
  Exec.runSweep({&In}, Out);
  EXPECT_EQ(Grid::maxAbsDiffInterior(Ref, Out), 0.0);
}

TEST(KernelConfigValidate, CheckerRejectsInvalidInsteadOfRunning) {
  StencilSpec S = StencilSpec::heat3d();
  CheckOptions CO;
  CO.Steps = 1;
  CO.Patterns = {GridPattern::Impulse};
  VariantChecker Checker(S, {6, 6, 6}, CO);
  KernelConfig Bad;
  Bad.Block.X = -1;
  CheckReport Report = Checker.check({KernelConfig(), Bad});
  EXPECT_TRUE(Report.ok());
  EXPECT_EQ(Report.VariantsChecked, 1u);
  ASSERT_EQ(Report.Rejected.size(), 1u);
  EXPECT_NE(Report.Rejected[0].second.find("negative"), std::string::npos);
  EXPECT_NE(Report.summary().find("rejected"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The variant-space matrix: star + box, radii 1-4
//===----------------------------------------------------------------------===//

namespace {

struct MatrixCase {
  const char *Kind; // "star" or "box"
  int Radius;
};

class VerifyMatrix : public ::testing::TestWithParam<MatrixCase> {};

std::string matrixName(const ::testing::TestParamInfo<MatrixCase> &Info) {
  return std::string(Info.param.Kind) + "_r" +
         std::to_string(Info.param.Radius);
}

} // namespace

TEST_P(VerifyMatrix, AllVariantsMatchOracle) {
  const MatrixCase &MC = GetParam();
  StencilSpec Spec = std::string(MC.Kind) == "star"
                         ? StencilSpec::star3d(MC.Radius)
                         : StencilSpec::box3d(MC.Radius);
  // Keep the interior a few cells wider than the radius in each dim and
  // deliberately non-divisible by the block sizes; shrink with radius so
  // the box-r4 (729-point) case stays fast.
  long N = MC.Radius <= 2 ? 11 : 9;
  GridDims Dims{N, N - 1, N - 2};

  CheckOptions CO;
  CO.Steps = 2;
  CO.Seeds = {1, 2};
  // >= 3 seeded patterns per the acceptance bar; all four are cheap.
  CO.Patterns = allGridPatterns();

  VariantChecker Checker(Spec, Dims, CO);
  std::vector<KernelConfig> Configs = Checker.enumerateConfigs();
  // The curated space must cover every axis the tuner explores.
  bool HasFold = false, HasBlock = false, HasWavefront = false,
       HasThreads = false, HasOversized = false;
  for (const KernelConfig &C : Configs) {
    HasFold |= !C.VectorFold.isScalar();
    HasBlock |= !C.Block.isUnblocked();
    HasWavefront |= C.WavefrontDepth > 1;
    HasThreads |= C.Threads > 1;
    HasOversized |= C.Block.X > Dims.Nx || C.Block.Y > Dims.Ny ||
                    C.Block.Z > Dims.Nz;
  }
  EXPECT_TRUE(HasFold);
  EXPECT_TRUE(HasBlock);
  EXPECT_TRUE(HasWavefront);
  EXPECT_TRUE(HasThreads);
  EXPECT_TRUE(HasOversized);

  CheckReport Report = Checker.checkAll();
  EXPECT_TRUE(Report.Rejected.empty());
  EXPECT_EQ(Report.VariantsChecked, Configs.size());
  EXPECT_EQ(Report.ComparisonsRun,
            Configs.size() * CO.Seeds.size() * CO.Patterns.size());
  EXPECT_TRUE(Report.ok()) << Report.summary();
}

INSTANTIATE_TEST_SUITE_P(StarAndBox, VerifyMatrix,
                         ::testing::Values(MatrixCase{"star", 1},
                                           MatrixCase{"star", 2},
                                           MatrixCase{"star", 3},
                                           MatrixCase{"star", 4},
                                           MatrixCase{"box", 1},
                                           MatrixCase{"box", 2},
                                           MatrixCase{"box", 3},
                                           MatrixCase{"box", 4}),
                         matrixName);

TEST(VerifyMatrix, FoldedFastPathBitwiseAcrossSimdTargets) {
  // The folded compiled-plan fast path must be bit-identical to the
  // golden interpreter on every SIMD dispatch target this binary can run,
  // for both a multi-axis fold and the full AVX-512-width {8,1,1} fold
  // (which does not divide the x extent here, so partial fold blocks run
  // on both edges).  Each target is forced via YS_SIMD.
  StencilSpec Spec = StencilSpec::heat3d();
  GridDims Dims{11, 10, 9};
  Grid Ref(Dims, 1);
  fillPattern(Ref, GridPattern::Random, 3);
  ReferenceInterpreter(Spec).runTimeSteps(Ref, 2);

  const Fold Folds[] = {{2, 2, 1}, {8, 1, 1}};
  for (SimdTarget T : availableSimdTargets()) {
    SCOPED_TRACE(simdTargetName(T));
    ASSERT_EQ(setenv("YS_SIMD", simdTargetName(T), 1), 0);
    for (const Fold &F : Folds) {
      SCOPED_TRACE(F.str());
      KernelConfig C;
      C.VectorFold = F;
      KernelExecutor Exec(Spec, C);
      Grid Out(Dims, 1, F), Scratch(Dims, 1, F);
      fillPattern(Out, GridPattern::Random, 3);
      Scratch.copyHaloFrom(Out);
      Exec.runTimeSteps(Out, Scratch, 2);
      EXPECT_EQ(Exec.planTarget(), T);
      CellDivergence Div;
      EXPECT_FALSE(findFirstDivergence(Ref, Out, UlpTolerance(), Div))
          << "first divergence at (" << Div.X << "," << Div.Y << ","
          << Div.Z << "): got " << Div.Got << " want " << Div.Want;
    }
  }
  unsetenv("YS_SIMD");
}

TEST(VerifyMatrix, JitBackendMatchesOracleWhenCompilerAvailable) {
  // The same differential harness, forced onto the runtime-JIT backend.
  // With a system compiler every comparison must run JIT-compiled code
  // and still be bit-identical; without one the executors fall back to
  // plans and the matrix must stay green (JitComparisons then reads 0).
  CheckOptions CO;
  CO.Steps = 2;
  CO.Patterns = {GridPattern::Random, GridPattern::BoundaryStress};
  CO.Backend = KernelBackend::Jit;
  VariantChecker Checker(StencilSpec::heat3d(), {11, 10, 9}, CO);
  CheckReport Report = Checker.checkAll();
  EXPECT_TRUE(Report.ok()) << Report.summary();
  if (JitRuntime::instance().available()) {
    EXPECT_EQ(Report.JitComparisons, Report.ComparisonsRun);
    EXPECT_NE(Report.summary().find("via jit backend"), std::string::npos);
  } else {
    EXPECT_EQ(Report.JitComparisons, 0u);
  }
}

TEST(VerifyMatrix, MultiInputStencilSweepMode) {
  // Two-grid stencil: the checker falls back to single-sweep comparisons
  // and enumerates no wavefront variants.
  StencilSpec S("two-grid", {{0, 0, 0, 0.5, 0},
                             {1, 0, 0, 0.25, 0},
                             {0, 0, 0, -1.5, 1},
                             {0, 1, 0, 2.0, 1}});
  ASSERT_EQ(S.numInputGrids(), 2u);
  CheckOptions CO;
  CO.Patterns = {GridPattern::Random, GridPattern::Smooth,
                 GridPattern::BoundaryStress};
  VariantChecker Checker(S, {9, 8, 7}, CO);
  for (const KernelConfig &C : Checker.enumerateConfigs())
    EXPECT_EQ(C.WavefrontDepth, 1) << C.str();
  CheckReport Report = Checker.checkAll();
  EXPECT_TRUE(Report.ok()) << Report.summary();
  EXPECT_GT(Report.VariantsChecked, 10u);
}

TEST(VerifyMatrix, SharedPoolAndExplicitThreadAxis) {
  // Passing an external pool must give the same verdict; 2-D and 1-D
  // stencils ride the same harness.
  ThreadPool Pool(2);
  for (const char *Name : {"heat2d", "line"}) {
    StencilSpec S = std::string(Name) == "heat2d" ? StencilSpec::heat2d()
                                                  : StencilSpec::line1d(2);
    CheckOptions CO;
    CO.Steps = 2;
    CO.Patterns = {GridPattern::Random, GridPattern::Impulse,
                   GridPattern::BoundaryStress};
    CO.MaxThreads = 2;
    VariantChecker Checker(S, {12, 5, 3}, CO);
    CheckReport Report = Checker.checkAll(&Pool);
    EXPECT_TRUE(Report.ok()) << Name << "\n" << Report.summary();
  }
}
