//===- tests/SourceEmitterTest.cpp - code emission golden tests ------------===//
//
// Part of the YaskSite reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/SourceEmitter.h"

#include <gtest/gtest.h>

using namespace ys;

namespace {

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

} // namespace

TEST(SourceEmitter, ExpressionForHeat) {
  std::string E = SourceEmitter::emitExpression(StencilSpec::heat3d());
  EXPECT_TRUE(contains(E, "0.5 * u0[IDX3(x, y, z)]"));
  EXPECT_TRUE(contains(E, "u0[IDX3(x + 1, y, z)]"));
  EXPECT_TRUE(contains(E, "u0[IDX3(x, y - 1, z)]"));
  EXPECT_TRUE(contains(E, "u0[IDX3(x, y, z + 1)]"));
}

TEST(SourceEmitter, UnitCoefficientOmitsMultiply) {
  StencilSpec S("s", {{1, 0, 0, 1.0, 0}});
  std::string E = SourceEmitter::emitExpression(S);
  EXPECT_EQ(E, "u0[IDX3(x + 1, y, z)]");
}

TEST(SourceEmitter, UnblockedKernelStructure) {
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::heat3d(), KernelConfig());
  EXPECT_TRUE(contains(Src, "void kernel_heat3d("));
  EXPECT_TRUE(contains(Src, "const double * __restrict u0"));
  EXPECT_TRUE(contains(Src, "#pragma omp parallel for schedule(static)"));
  EXPECT_TRUE(contains(Src, "#pragma omp simd"));
  EXPECT_TRUE(contains(Src, "for (long z = 0; z < Nz; ++z)"));
  EXPECT_FALSE(contains(Src, "zb")); // No blocking loops.
}

TEST(SourceEmitter, BlockedKernelStructure) {
  KernelConfig C;
  C.Block.X = 32;
  C.Block.Y = 16;
  C.Block.Z = 8;
  std::string Src = SourceEmitter::emitKernel(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "for (long zb = 0; zb < Nz; zb += 8)"));
  EXPECT_TRUE(contains(Src, "for (long yb = 0; yb < Ny; yb += 16)"));
  EXPECT_TRUE(contains(Src, "for (long xb = 0; xb < Nx; xb += 32)"));
  EXPECT_TRUE(contains(Src, "collapse(2)"));
  EXPECT_TRUE(contains(Src, "std::min(zb + 8, Nz)"));
}

TEST(SourceEmitter, FoldedKernelStructure) {
  KernelConfig C;
  C.VectorFold = {2, 2, 1};
  std::string Src = SourceEmitter::emitKernel(StencilSpec::heat3d(), C);
  // Fold-block signature instead of raw extents.
  EXPECT_TRUE(contains(Src, "long NVx, long NVy, long NVz"));
  // Per-point fold-linear offset tables, built once before the sweep.
  EXPECT_TRUE(contains(Src, "off0[FOLD_ELEMS]"));
  EXPECT_TRUE(contains(Src, "off0[l] = FOLD_OFF(ix, iy, iz)"));
  EXPECT_TRUE(contains(Src, "FOLD_OFF(ix + 1, iy, iz)"));
  // Vectorized lane loop accumulating per fold block.
  EXPECT_TRUE(contains(Src, "#pragma omp simd"));
  EXPECT_TRUE(contains(Src, "double acc[FOLD_ELEMS];"));
  EXPECT_TRUE(contains(Src, "acc[l] += 0.5 * u0[base + off0[l]];"));
  EXPECT_TRUE(contains(Src, "out[base + l] = acc[l];"));
  EXPECT_TRUE(contains(
      Src, "const long base = ((vz * NVy + vy) * NVx + vx) * FOLD_ELEMS;"));
  // Folded kernels never use the scalar index macro.
  EXPECT_FALSE(contains(Src, "IDX3"));
}

TEST(SourceEmitter, FoldedBlockedKernelIteratesVectorBlocks) {
  KernelConfig C;
  C.VectorFold = {4, 2, 1};
  C.Block.X = 32;
  C.Block.Y = 16;
  C.Block.Z = 8;
  std::string Src = SourceEmitter::emitKernel(StencilSpec::heat3d(), C);
  // Block sizes are converted to fold-block units (ceil-div by the fold).
  EXPECT_TRUE(contains(Src, "vxb += 8"));
  EXPECT_TRUE(contains(Src, "vyb += 8"));
  EXPECT_TRUE(contains(Src, "vzb += 8"));
  EXPECT_TRUE(contains(Src, "collapse(2)"));
}

TEST(SourceEmitter, FoldedTranslationUnitDefinesFoldMacros) {
  KernelConfig C;
  C.VectorFold = {2, 2, 1};
  std::string Src =
      SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "#define FOLD_X 2"));
  EXPECT_TRUE(contains(Src, "#define FOLD_Y 2"));
  EXPECT_TRUE(contains(Src, "#define FOLD_Z 1"));
  EXPECT_TRUE(contains(Src, "#define FOLD_ELEMS 4"));
  EXPECT_TRUE(contains(Src, "#define FOLD_DIV"));
  EXPECT_TRUE(contains(Src, "#define FOLD_OFF"));
  EXPECT_FALSE(contains(Src, "#define IDX3"));
}

TEST(SourceEmitter, ScalarEmissionUnchangedByFoldSupport) {
  // Default (scalar-fold) configs keep the classic IDX3 loop nest.
  std::string Src = SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(),
                                                       KernelConfig());
  EXPECT_TRUE(contains(Src, "#define IDX3"));
  EXPECT_FALSE(contains(Src, "FOLD_OFF"));
  EXPECT_FALSE(contains(Src, "NVx"));
}

TEST(SourceEmitter, OptionsControlPragmas) {
  SourceEmitter::Options Opts;
  Opts.EmitOpenMP = false;
  Opts.EmitSimdPragma = false;
  Opts.EmitRestrict = false;
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::heat3d(), KernelConfig(), Opts);
  EXPECT_FALSE(contains(Src, "#pragma"));
  EXPECT_FALSE(contains(Src, "__restrict"));
}

TEST(SourceEmitter, CustomFunctionName) {
  SourceEmitter::Options Opts;
  Opts.FunctionName = "my_kernel";
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::heat3d(), KernelConfig(), Opts);
  EXPECT_TRUE(contains(Src, "void my_kernel("));
}

TEST(SourceEmitter, DashesMangledInNames) {
  std::string Src =
      SourceEmitter::emitKernel(StencilSpec::star3d(2), KernelConfig());
  EXPECT_TRUE(contains(Src, "void kernel_star3d_r2("));
}

TEST(SourceEmitter, MultiGridSignature) {
  StencilSpec S("two", {{0, 0, 0, 1.0, 0}, {0, 0, 0, 0.5, 1}});
  std::string Src = SourceEmitter::emitKernel(S, KernelConfig());
  EXPECT_TRUE(contains(Src, "u0"));
  EXPECT_TRUE(contains(Src, "u1"));
}

TEST(SourceEmitter, TranslationUnitHeader) {
  KernelConfig C;
  C.WavefrontDepth = 4;
  std::string Src =
      SourceEmitter::emitTranslationUnit(StencilSpec::heat3d(), C);
  EXPECT_TRUE(contains(Src, "// stencil   : heat3d (star, radius 1"));
  EXPECT_TRUE(contains(Src, "#define IDX3"));
  EXPECT_TRUE(contains(Src, "#include <algorithm>"));
  EXPECT_TRUE(contains(Src, "temporal wavefront depth 4"));
  EXPECT_TRUE(contains(Src, "flops/LUP"));
}

TEST(SourceEmitter, EmittedSourceParsesAsCpp) {
  // Smoke-check the emitted TU contains balanced braces.
  std::string Src = SourceEmitter::emitTranslationUnit(
      StencilSpec::star3d(2), KernelConfig());
  long Balance = 0;
  for (char Ch : Src) {
    if (Ch == '{')
      ++Balance;
    if (Ch == '}')
      --Balance;
    EXPECT_GE(Balance, 0);
  }
  EXPECT_EQ(Balance, 0);
}

TEST(SourceEmitter, PingPongDriver) {
  std::string Src = SourceEmitter::emitTimeStepDriver(
      StencilSpec::heat3d(), KernelConfig());
  EXPECT_TRUE(contains(Src, "void drive_kernel_heat3d("));
  EXPECT_TRUE(contains(Src, "std::swap(even, odd);"));
  EXPECT_FALSE(contains(Src, "frontier"));
}

TEST(SourceEmitter, WavefrontDriverFrontierSchedule) {
  KernelConfig C;
  C.WavefrontDepth = 4;
  C.Block.Z = 8;
  std::string Src =
      SourceEmitter::emitTimeStepDriver(StencilSpec::star3d(2), C);
  EXPECT_TRUE(contains(Src, "depth 4, radius 2, z-block 8"));
  EXPECT_TRUE(contains(Src, "long frontier[4 + 1]"));
  EXPECT_TRUE(contains(Src, "frontier[s - 1] - 2"));
  EXPECT_TRUE(contains(Src, "while (frontier[4] < Nz)"));
  EXPECT_TRUE(contains(Src, "kernel_star3d_r2_slab"));
}

TEST(SourceEmitter, WavefrontDriverClampsBlockToRadius) {
  KernelConfig C;
  C.WavefrontDepth = 2;
  C.Block.Z = 1; // Below radius+1: must be clamped for progress.
  std::string Src =
      SourceEmitter::emitTimeStepDriver(StencilSpec::star3d(2), C);
  EXPECT_TRUE(contains(Src, "z-block 3"));
}

#include "frontend/Parser.h"

TEST(SourceEmitter, DslRoundTripPreservesPoints) {
  for (const StencilSpec &Orig :
       {StencilSpec::heat3d(), StencilSpec::star3d(3),
        StencilSpec::box3d(1), StencilSpec::longRange(4)}) {
    std::string Dsl = SourceEmitter::emitDsl(Orig);
    auto DefOr = Parser::parseSingle(Dsl);
    ASSERT_TRUE(static_cast<bool>(DefOr))
        << Orig.name() << ": " << DefOr.takeError().message() << "\n"
        << Dsl;
    auto SpecOr = DefOr->singleSpec();
    ASSERT_TRUE(static_cast<bool>(SpecOr)) << Orig.name();
    EXPECT_EQ(SpecOr->numPoints(), Orig.numPoints()) << Orig.name();
    // Every original point must reappear with the same coefficient.
    for (const StencilPoint &P : Orig.points()) {
      bool Found = false;
      for (const StencilPoint &Q : SpecOr->points())
        if (P.sameOffset(Q)) {
          EXPECT_DOUBLE_EQ(P.Coeff, Q.Coeff) << Orig.name();
          Found = true;
        }
      EXPECT_TRUE(Found) << Orig.name();
    }
  }
}

TEST(SourceEmitter, DslRoundTripMultiGrid) {
  StencilSpec S("axpy", {{0, 0, 0, 1.0, 0}, {0, 0, 0, -0.5, 1}});
  std::string Dsl = SourceEmitter::emitDsl(S);
  auto DefOr = Parser::parseSingle(Dsl);
  ASSERT_TRUE(static_cast<bool>(DefOr)) << Dsl;
  auto SpecOr = DefOr->singleSpec();
  ASSERT_TRUE(static_cast<bool>(SpecOr));
  EXPECT_EQ(SpecOr->numInputGrids(), 2u);
}

TEST(SourceEmitter, DslEmissionManglesName) {
  std::string Dsl = SourceEmitter::emitDsl(StencilSpec::star3d(2));
  EXPECT_NE(Dsl.find("stencil star3d_r2 {"), std::string::npos);
}
